//! Criterion end-to-end comparison: one calibrated SPEC stand-in run
//! through each MDA handling mechanism (wall-clock of the whole simulated
//! run — the unit the experiment binaries aggregate).

use bridge_dbt::{Dbt, DbtConfig, MdaStrategy};
use bridge_workloads::spec::{benchmark, InputSet, Scale};
use bridge_workloads::{build, Workload};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn run(w: &Workload, cfg: DbtConfig) -> u64 {
    let mut dbt = Dbt::new(cfg);
    w.load_into(&mut dbt);
    dbt.run(10_000_000_000).expect("halts").cycles()
}

fn bench_mechanisms(c: &mut Criterion) {
    let bench = benchmark("433.milc").expect("in catalog");
    let spec = bench.workload(Scale::test());
    let w = build(&spec, InputSet::Ref);
    let train = {
        let tw = build(&spec, InputSet::Train);
        let (_, p) = bridge_dbt::engine::profile_program(
            &tw.program,
            &tw.data,
            Some(tw.stack_top),
            &bridge_sim::CostModel::es40(),
            10_000_000_000,
        )
        .expect("train halts");
        p.to_static_profile()
    };

    let mut g = c.benchmark_group("milc_mechanisms");
    g.sample_size(10);
    for strategy in MdaStrategy::ALL {
        g.bench_function(strategy.name(), |b| {
            b.iter(|| {
                let mut cfg = DbtConfig::new(strategy);
                if strategy == MdaStrategy::StaticProfiling {
                    cfg = cfg.with_static_profile(train.clone());
                }
                black_box(run(&w, cfg))
            })
        });
    }
    g.finish();
}

fn bench_dpeh_options(c: &mut Criterion) {
    let bench = benchmark("410.bwaves").expect("in catalog");
    let w = build(&bench.workload(Scale::test()), InputSet::Ref);
    let mut g = c.benchmark_group("bwaves_dpeh_options");
    g.sample_size(10);
    for (name, cfg) in [
        ("dpeh", DbtConfig::new(MdaStrategy::Dpeh)),
        (
            "dpeh+retranslate",
            DbtConfig::new(MdaStrategy::Dpeh).with_retranslate(true),
        ),
        (
            "dpeh+multiversion",
            DbtConfig::new(MdaStrategy::Dpeh).with_multiversion(true),
        ),
        (
            "dpeh+rearrange",
            DbtConfig::new(MdaStrategy::Dpeh).with_rearrange(true),
        ),
        (
            "dpeh-nochain",
            DbtConfig::new(MdaStrategy::Dpeh).with_chaining(false),
        ),
    ] {
        g.bench_function(name, |b| b.iter(|| black_box(run(&w, cfg.clone()))));
    }
    g.finish();
}

criterion_group!(benches, bench_mechanisms, bench_dpeh_options);
criterion_main!(benches);
