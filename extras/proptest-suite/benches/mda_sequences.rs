//! Criterion microbenchmarks of the three ways a misaligned access can be
//! served on the host: a plain aligned access, the branch-free MDA code
//! sequence, and a trap + software fixup. The cycle-model ratios between
//! these three are the economics the whole paper rests on; this bench
//! measures the *simulator's* wall-clock cost of each path.

use bridge_alpha::builder::CodeBuilder;
use bridge_alpha::insn::{BrOp, MemOp, OpFn};
use bridge_alpha::mda_seq::{emit_unaligned_load, AccessWidth, SeqTemps};
use bridge_alpha::reg::Reg;
use bridge_alpha::PAL_HALT;
use bridge_sim::cost::CostModel;
use bridge_sim::cpu::Machine;
use bridge_sim::trap::Exit;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const CODE: u64 = 0x1_0000_0000;
const ITERS: i32 = 1_000;

/// Builds a loop performing `ITERS` loads of the given flavour and returns
/// the machine ready to run.
fn machine_with_loop(misaligned: bool, use_sequence: bool) -> Machine {
    let addr: i32 = if misaligned { 0x1_0002 } else { 0x1_0000 };
    let mut b = CodeBuilder::new(CODE);
    b.load_imm32(Reg::R2, addr);
    b.load_imm32(Reg::R3, ITERS);
    let top = b.new_label();
    b.bind(top);
    if use_sequence {
        emit_unaligned_load(
            &mut b,
            AccessWidth::W4,
            Reg::R1,
            Reg::R2,
            0,
            true,
            &SeqTemps::default(),
        );
    } else {
        b.mem(MemOp::Ldl, Reg::R1, 0, Reg::R2);
    }
    b.op_lit(OpFn::Subq, Reg::R3, 1, Reg::R3);
    b.br_label(BrOp::Bne, Reg::R3, top);
    b.call_pal(PAL_HALT);
    let words = b.finish().expect("loop builds");
    let mut m = Machine::without_caches(CostModel::flat());
    m.write_code(CODE, &words);
    m
}

fn bench_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("mda_access_paths");

    g.bench_function("aligned_plain_ldl", |bch| {
        bch.iter(|| {
            let mut m = machine_with_loop(false, false);
            m.set_pc(CODE);
            assert_eq!(m.run(u64::MAX), Exit::Halted);
            black_box(m.stats().cycles)
        })
    });

    g.bench_function("misaligned_sequence", |bch| {
        bch.iter(|| {
            let mut m = machine_with_loop(true, true);
            m.set_pc(CODE);
            assert_eq!(m.run(u64::MAX), Exit::Halted);
            black_box(m.stats().cycles)
        })
    });

    g.bench_function("misaligned_trap_fixup", |bch| {
        bch.iter(|| {
            let mut m = machine_with_loop(true, false);
            m.set_pc(CODE);
            // Emulate the OS fixup loop: resume past each trap.
            loop {
                match m.run(u64::MAX) {
                    Exit::Halted => break,
                    Exit::Unaligned(info) => {
                        let raw = m.mem().read_int(info.addr, info.size);
                        m.set_reg(Reg::R1, raw as u32 as i32 as i64 as u64);
                        m.set_pc(info.pc + 4);
                    }
                    other => panic!("unexpected exit {other:?}"),
                }
            }
            black_box(m.stats().cycles)
        })
    });

    g.finish();
}

/// Sanity-check the simulated cycle ratios once (not a Criterion metric,
/// but keeps the bench meaningful if cost models drift).
fn bench_cycle_ratios(c: &mut Criterion) {
    c.bench_function("cycle_ratio_assertions", |bch| {
        bch.iter(|| {
            let run = |mis: bool, seq: bool| {
                let mut m = machine_with_loop(mis, seq);
                m.set_pc(CODE);
                if mis && !seq {
                    loop {
                        match m.run(u64::MAX) {
                            Exit::Halted => break,
                            Exit::Unaligned(info) => {
                                let c = m.cost().unaligned_fixup;
                                m.charge(c);
                                let raw = m.mem().read_int(info.addr, info.size);
                                m.set_reg(Reg::R1, raw as u32 as i32 as i64 as u64);
                                m.set_pc(info.pc + 4);
                            }
                            other => panic!("unexpected exit {other:?}"),
                        }
                    }
                } else {
                    assert_eq!(m.run(u64::MAX), Exit::Halted);
                }
                m.stats().cycles
            };
            let aligned = run(false, false);
            let sequence = run(true, true);
            let trap = run(true, false);
            assert!(sequence > aligned, "sequence must cost more than aligned");
            assert!(trap > 20 * sequence, "trap must dwarf the sequence");
            black_box((aligned, sequence, trap))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_paths, bench_cycle_ratios
}
criterion_main!(benches);
