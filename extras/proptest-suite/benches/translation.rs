//! Criterion microbenchmarks of the DBT's own machinery: block
//! translation throughput, phase-1 interpretation throughput, and host
//! simulator execution throughput. These bound how long the paper-scale
//! experiments take and catch performance regressions in the translator.

use bridge_dbt::interp::interp_block;
use bridge_dbt::profile::{Profile, SiteId};
use bridge_dbt::translator::{translate_block, SiteAccess, SitePlan};
use bridge_sim::cost::CostModel;
use bridge_sim::cpu::Machine;
use bridge_sim::mem::Memory;
use bridge_sim::trap::Exit;
use bridge_x86::asm::Assembler;
use bridge_x86::cond::Cond;
use bridge_x86::insn::{AluOp, Ext, MemRef, Width};
use bridge_x86::reg::Reg32::*;
use bridge_x86::state::CpuState;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

const ENTRY: u32 = 0x40_0000;

/// A representative hot block: mixed ALU, loads, stores, and a loop branch.
fn hot_block_memory() -> Memory {
    let mut a = Assembler::new(ENTRY);
    a.mov_ri(Ecx, 1000);
    let top = a.here_label();
    a.alu_rm(AluOp::Add, Eax, MemRef::base_disp(Ebx, 0));
    a.load(Width::W2, Ext::Sign, Edx, MemRef::base_disp(Ebx, 8));
    a.store(Width::W4, Eax, MemRef::base_disp(Ebx, 16));
    a.alu_rr(AluOp::Xor, Edx, Eax);
    a.alu_ri(AluOp::Sub, Ecx, 1);
    a.jcc(Cond::Ne, top);
    a.hlt();
    let image = a.finish().expect("assembles");
    let mut mem = Memory::new();
    mem.write_bytes(u64::from(ENTRY), &image);
    mem
}

fn bench_translation(c: &mut Criterion) {
    let mem = hot_block_memory();
    let mut g = c.benchmark_group("translator");
    g.throughput(Throughput::Elements(6)); // guest instructions per block
    for (name, plan) in [
        ("all_normal", SitePlan::Normal),
        ("all_sequence", SitePlan::Sequence),
        ("all_multiversion", SitePlan::MultiVersion),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut p = |_: SiteId, _: SiteAccess| plan;
                let tb = translate_block(&mem, ENTRY + 5, 0x1_0000_0000, 64, &mut p)
                    .expect("translates");
                black_box(tb.words.len())
            })
        });
    }
    g.finish();
}

fn bench_interpreter(c: &mut Criterion) {
    let mem = hot_block_memory();
    let cost = CostModel::flat();
    let mut g = c.benchmark_group("interpreter");
    g.throughput(Throughput::Elements(6));
    g.bench_function("hot_block", |b| {
        b.iter(|| {
            let mut m = mem.clone();
            let mut st = CpuState::new(ENTRY + 5);
            st.set_reg(Ecx, 2);
            st.set_reg(Ebx, 0x10_0000);
            let mut profile = Profile::new();
            let out = interp_block(&mut st, &mut m, &mut profile, &cost).expect("interps");
            black_box(out.guest_insns)
        })
    });
    g.finish();
}

fn bench_host_machine(c: &mut Criterion) {
    // Host loop: 10k iterations of a 4-instruction loop.
    use bridge_alpha::builder::CodeBuilder;
    use bridge_alpha::insn::{BrOp, OpFn};
    use bridge_alpha::reg::Reg;
    let mut b = CodeBuilder::new(0x1_0000_0000);
    b.load_imm32(Reg::R1, 10_000);
    let top = b.new_label();
    b.bind(top);
    b.op(OpFn::Addq, Reg::R2, Reg::R1, Reg::R2);
    b.op_lit(OpFn::Subq, Reg::R1, 1, Reg::R1);
    b.br_label(BrOp::Bne, Reg::R1, top);
    b.call_pal(bridge_alpha::PAL_HALT);
    let words = b.finish().expect("builds");

    let mut g = c.benchmark_group("host_machine");
    g.throughput(Throughput::Elements(30_000));
    g.bench_function("without_caches", |bch| {
        bch.iter(|| {
            let mut m = Machine::without_caches(CostModel::flat());
            m.write_code(0x1_0000_0000, &words);
            m.set_pc(0x1_0000_0000);
            assert_eq!(m.run(u64::MAX), Exit::Halted);
            black_box(m.stats().insns)
        })
    });
    g.bench_function("with_es40_caches", |bch| {
        bch.iter(|| {
            let mut m = Machine::new();
            m.write_code(0x1_0000_0000, &words);
            m.set_pc(0x1_0000_0000);
            assert_eq!(m.run(u64::MAX), Exit::Halted);
            black_box(m.stats().insns)
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_translation, bench_interpreter, bench_host_machine
}
criterion_main!(benches);
