//! Empty library target: this crate exists only to host the proptest
//! integration tests under `tests/` and the criterion benches under
//! `benches/`, outside the offline default workspace.
