#![allow(clippy::needless_range_loop)] // byte-index loops mirror the oracle's math

//! Property tests for the Alpha subset: word-level encode/decode
//! roundtrips, decoder totality, and the MDA sequences' equivalence with
//! direct unaligned memory semantics for arbitrary values and alignments.

use bridge_alpha::builder::CodeBuilder;
use bridge_alpha::decode::decode;
use bridge_alpha::encode::encode;
use bridge_alpha::insn::{BrOp, Insn, JumpKind, MemOp, OpFn, Rb};
use bridge_alpha::mda_seq::{emit_unaligned_load, emit_unaligned_store, AccessWidth, SeqTemps};
use bridge_alpha::op;
use bridge_alpha::reg::Reg;
use proptest::prelude::*;

fn reg() -> impl Strategy<Value = Reg> {
    prop::sample::select(Reg::ALL.to_vec())
}

fn mem_op() -> impl Strategy<Value = MemOp> {
    prop::sample::select(vec![
        MemOp::Lda,
        MemOp::Ldah,
        MemOp::Ldbu,
        MemOp::Ldwu,
        MemOp::Ldl,
        MemOp::Ldq,
        MemOp::LdqU,
        MemOp::Stb,
        MemOp::Stw,
        MemOp::Stl,
        MemOp::Stq,
        MemOp::StqU,
    ])
}

fn br_op() -> impl Strategy<Value = BrOp> {
    prop::sample::select(vec![
        BrOp::Br,
        BrOp::Bsr,
        BrOp::Beq,
        BrOp::Bne,
        BrOp::Blt,
        BrOp::Ble,
        BrOp::Bgt,
        BrOp::Bge,
        BrOp::Blbc,
        BrOp::Blbs,
    ])
}

fn op_fn() -> impl Strategy<Value = OpFn> {
    prop::sample::select(OpFn::ALL.to_vec())
}

fn insn() -> impl Strategy<Value = Insn> {
    prop_oneof![
        (mem_op(), reg(), reg(), any::<i16>()).prop_map(|(op, ra, rb, disp)| Insn::Mem {
            op,
            ra,
            rb,
            disp
        }),
        (br_op(), reg(), -(1i32 << 20)..(1i32 << 20)).prop_map(|(op, ra, disp)| Insn::Br {
            op,
            ra,
            disp
        }),
        (
            prop::sample::select(vec![JumpKind::Jmp, JumpKind::Jsr, JumpKind::Ret]),
            reg(),
            reg()
        )
            .prop_map(|(kind, ra, rb)| Insn::Jmp { kind, ra, rb }),
        (op_fn(), reg(), reg(), reg()).prop_map(|(op, ra, rb, rc)| Insn::Op {
            op,
            ra,
            rb: Rb::Reg(rb),
            rc
        }),
        (op_fn(), reg(), any::<u8>(), reg()).prop_map(|(op, ra, lit, rc)| Insn::Op {
            op,
            ra,
            rb: Rb::Lit(lit),
            rc
        }),
        (0u32..(1 << 26)).prop_map(|func| Insn::CallPal { func }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4096, ..ProptestConfig::default() })]

    #[test]
    fn encode_decode_roundtrip(insn in insn()) {
        let word = encode(&insn);
        prop_assert_eq!(decode(word), Ok(insn), "word {:#010x}", word);
    }

    #[test]
    fn decoder_is_total(word in any::<u32>()) {
        let _ = decode(word); // must never panic
    }

    #[test]
    fn decode_encode_is_identity_when_decodable(word in any::<u32>()) {
        if let Ok(insn) = decode(word) {
            // Re-encoding may canonicalize SBZ bits but must stay decodable
            // to the same instruction.
            let word2 = encode(&insn);
            prop_assert_eq!(decode(word2), Ok(insn));
        }
    }
}

/// Executes an instruction list over a register file and byte memory —
/// the oracle for sequence equivalence.
fn run_fragment(insns: &[Insn], regs: &mut [u64; 32], mem: &mut [u8]) {
    for insn in insns {
        match *insn {
            Insn::Mem { op, ra, rb, disp } => {
                let addr = regs[rb.index()].wrapping_add(disp as i64 as u64);
                match op {
                    MemOp::Lda => regs[ra.index()] = addr,
                    MemOp::Ldah => {
                        regs[ra.index()] =
                            regs[rb.index()].wrapping_add(((disp as i64) << 16) as u64)
                    }
                    MemOp::LdqU => {
                        let a = (addr & !7) as usize;
                        regs[ra.index()] = u64::from_le_bytes(mem[a..a + 8].try_into().unwrap());
                    }
                    MemOp::StqU => {
                        let a = (addr & !7) as usize;
                        mem[a..a + 8].copy_from_slice(&regs[ra.index()].to_le_bytes());
                    }
                    other => panic!("sequences use only lda/ldq_u/stq_u, got {other:?}"),
                }
            }
            Insn::Op { op, ra, rb, rc } => {
                let av = regs[ra.index()];
                let bv = match rb {
                    Rb::Reg(r) => regs[r.index()],
                    Rb::Lit(l) => u64::from(l),
                };
                regs[rc.index()] = op::eval(op, av, bv);
            }
            other => panic!("unexpected instruction {other:?}"),
        }
        regs[31] = 0;
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 1024, ..ProptestConfig::default() })]

    #[test]
    fn unaligned_load_sequence_equals_memory_semantics(
        offset in 0u64..24,
        width in prop::sample::select(vec![AccessWidth::W2, AccessWidth::W4, AccessWidth::W8]),
        sext in any::<bool>(),
        payload in prop::collection::vec(any::<u8>(), 48),
        disp in -8i16..8,
    ) {
        let mut mem = vec![0u8; 96];
        mem[16..64].copy_from_slice(&payload);
        let mut regs = [0u64; 32];
        let base = 24 + offset;
        regs[2] = (base as i64 - i64::from(disp)) as u64;

        let mut b = CodeBuilder::new(0x1000);
        emit_unaligned_load(&mut b, width, Reg::R1, Reg::R2, disp, sext, &SeqTemps::default());
        let insns = b.finish_insns().expect("builds");
        run_fragment(&insns, &mut regs, &mut mem);

        let n = width.bytes() as usize;
        let mut raw = 0u64;
        for i in 0..n {
            raw |= u64::from(mem[base as usize + i]) << (8 * i);
        }
        let expect = match (width, sext) {
            (AccessWidth::W2, true) => raw as u16 as i16 as i64 as u64,
            (AccessWidth::W4, true) => raw as u32 as i32 as i64 as u64,
            _ => raw,
        };
        prop_assert_eq!(regs[1], expect);
    }

    #[test]
    fn unaligned_store_sequence_equals_memory_semantics(
        offset in 0u64..24,
        width in prop::sample::select(vec![AccessWidth::W2, AccessWidth::W4, AccessWidth::W8]),
        value in any::<u64>(),
        background in any::<u8>(),
        disp in -8i16..8,
    ) {
        let mut mem = vec![background; 96];
        let mut regs = [0u64; 32];
        let base = 24 + offset;
        regs[2] = (base as i64 - i64::from(disp)) as u64;
        regs[4] = value;

        let mut b = CodeBuilder::new(0x1000);
        emit_unaligned_store(&mut b, width, Reg::R4, Reg::R2, disp, &SeqTemps::default());
        let insns = b.finish_insns().expect("builds");
        run_fragment(&insns, &mut regs, &mut mem);

        let n = width.bytes() as usize;
        for (i, &byte) in mem.iter().enumerate() {
            if (base as usize..base as usize + n).contains(&i) {
                prop_assert_eq!(byte, (value >> (8 * (i - base as usize))) as u8,
                                "data byte {}", i);
            } else {
                prop_assert_eq!(byte, background, "byte {} clobbered", i);
            }
        }
        // The source register must be preserved.
        prop_assert_eq!(regs[4], value);
    }
}

/// Byte-level oracle for the byte-manipulation instructions: every
/// `ext*`/`ins*`/`msk*`/`zap*` result must equal a per-byte recomputation.
mod byte_zapper_oracle {
    use super::*;

    fn bytes_of(v: u64) -> [u8; 8] {
        v.to_le_bytes()
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 2048, ..ProptestConfig::default() })]

        #[test]
        fn zap_clears_exactly_the_masked_bytes(av in any::<u64>(), mask in any::<u8>()) {
            let z = op::eval(OpFn::Zap, av, u64::from(mask));
            let zn = op::eval(OpFn::Zapnot, av, u64::from(mask));
            let src = bytes_of(av);
            for i in 0..8 {
                let bit = mask & (1 << i) != 0;
                let zb = bytes_of(z)[i];
                let znb = bytes_of(zn)[i];
                prop_assert_eq!(zb, if bit { 0 } else { src[i] });
                prop_assert_eq!(znb, if bit { src[i] } else { 0 });
            }
        }

        #[test]
        fn extract_low_selects_a_byte_window(av in any::<u64>(), bl in 0u64..8) {
            // ext?l: bytes bl.. of av, truncated to the operand width.
            let src = bytes_of(av);
            for (op, width) in [
                (OpFn::Extbl, 1usize),
                (OpFn::Extwl, 2),
                (OpFn::Extll, 4),
                (OpFn::Extql, 8),
            ] {
                let got = op::eval(op, av, bl);
                let gb = bytes_of(got);
                for i in 0..8 {
                    let want = if i < width && bl as usize + i < 8 {
                        src[bl as usize + i]
                    } else {
                        0
                    };
                    prop_assert_eq!(gb[i], want, "{:?} bl={} byte {}", op, bl, i);
                }
            }
        }

        #[test]
        fn insert_low_places_a_byte_window(av in any::<u64>(), bl in 0u64..8) {
            let src = bytes_of(av);
            for (op, width) in [
                (OpFn::Insbl, 1usize),
                (OpFn::Inswl, 2),
                (OpFn::Insll, 4),
                (OpFn::Insql, 8),
            ] {
                let got = op::eval(op, av, bl);
                let gb = bytes_of(got);
                for i in 0..8 {
                    let from = i as i64 - bl as i64;
                    let want = if (0..width as i64).contains(&from) {
                        src[from as usize]
                    } else {
                        0
                    };
                    prop_assert_eq!(gb[i], want, "{:?} bl={} byte {}", op, bl, i);
                }
            }
        }

        #[test]
        fn mask_low_and_high_partition_the_quad(av in any::<u64>(), bl in 0u64..8) {
            // msk?l clears the window within the low quad; msk?h clears the
            // spill-over within the high quad. Together (for the same
            // operand width) they must clear exactly `width` bytes of a
            // 16-byte buffer starting at offset bl.
            for (lo, hi, width) in [
                (OpFn::Mskwl, OpFn::Mskwh, 2usize),
                (OpFn::Mskll, OpFn::Msklh, 4),
                (OpFn::Mskql, OpFn::Mskqh, 8),
            ] {
                let l = op::eval(lo, av, bl);
                let h = op::eval(hi, av, bl);
                let src = bytes_of(av);
                for i in 0..8 {
                    let in_lo_window = i >= bl as usize && i < bl as usize + width;
                    prop_assert_eq!(
                        bytes_of(l)[i],
                        if in_lo_window { 0 } else { src[i] },
                        "{:?} bl={} byte {}", lo, bl, i
                    );
                    let in_hi_window = i + 8 < bl as usize + width;
                    prop_assert_eq!(
                        bytes_of(h)[i],
                        if in_hi_window { 0 } else { src[i] },
                        "{:?} bl={} byte {}", hi, bl, i
                    );
                }
            }
        }
    }
}
