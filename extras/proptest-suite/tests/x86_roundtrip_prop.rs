//! Property tests: every encodable instruction decodes back to itself, at
//! any address, and the decoder never panics on arbitrary bytes.

use bridge_x86::cond::Cond;
use bridge_x86::decode::decode;
use bridge_x86::encode::encode_to_vec;
use bridge_x86::insn::{AluOp, Ext, Insn, MemRef, Scale, ShiftOp, Width};
use bridge_x86::reg::{Reg32, RegMm};
use proptest::prelude::*;

fn reg32() -> impl Strategy<Value = Reg32> {
    prop::sample::select(Reg32::ALL.to_vec())
}

fn low_byte_reg() -> impl Strategy<Value = Reg32> {
    prop::sample::select(vec![Reg32::Eax, Reg32::Ecx, Reg32::Edx, Reg32::Ebx])
}

fn non_esp_reg() -> impl Strategy<Value = Reg32> {
    prop::sample::select(
        Reg32::ALL
            .iter()
            .copied()
            .filter(|r| *r != Reg32::Esp)
            .collect::<Vec<_>>(),
    )
}

fn regmm() -> impl Strategy<Value = RegMm> {
    prop::sample::select(RegMm::ALL.to_vec())
}

fn scale() -> impl Strategy<Value = Scale> {
    prop::sample::select(vec![Scale::S1, Scale::S2, Scale::S4, Scale::S8])
}

fn mem_ref() -> impl Strategy<Value = MemRef> {
    (
        prop::option::of(reg32()),
        prop::option::of((non_esp_reg(), scale())),
        any::<i32>(),
    )
        .prop_map(|(base, index, disp)| MemRef { base, index, disp })
}

fn alu_op() -> impl Strategy<Value = AluOp> {
    prop::sample::select(AluOp::ALL.to_vec())
}

fn rm_alu_op() -> impl Strategy<Value = AluOp> {
    prop::sample::select(vec![
        AluOp::Add,
        AluOp::Sub,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Cmp,
    ])
}

fn load_width() -> impl Strategy<Value = (Width, Ext)> {
    prop::sample::select(vec![
        (Width::W1, Ext::Zero),
        (Width::W1, Ext::Sign),
        (Width::W2, Ext::Zero),
        (Width::W2, Ext::Sign),
        (Width::W4, Ext::Zero),
    ])
}

fn cond() -> impl Strategy<Value = Cond> {
    prop::sample::select(Cond::ALL.to_vec())
}

fn insn() -> impl Strategy<Value = Insn> {
    prop_oneof![
        (reg32(), any::<i32>()).prop_map(|(dst, imm)| Insn::MovRI { dst, imm }),
        (reg32(), reg32()).prop_map(|(dst, src)| Insn::MovRR { dst, src }),
        (load_width(), reg32(), mem_ref()).prop_map(|((width, ext), dst, src)| Insn::Load {
            width,
            ext,
            dst,
            src
        }),
        (reg32(), mem_ref()).prop_map(|(src, dst)| Insn::Store {
            width: Width::W4,
            src,
            dst
        }),
        (reg32(), mem_ref()).prop_map(|(src, dst)| Insn::Store {
            width: Width::W2,
            src,
            dst
        }),
        (low_byte_reg(), mem_ref()).prop_map(|(src, dst)| Insn::Store {
            width: Width::W1,
            src,
            dst
        }),
        (regmm(), mem_ref()).prop_map(|(dst, src)| Insn::MovqLoad { dst, src }),
        (regmm(), mem_ref()).prop_map(|(src, dst)| Insn::MovqStore { src, dst }),
        (reg32(), mem_ref()).prop_map(|(dst, src)| Insn::Lea { dst, src }),
        (alu_op(), reg32(), reg32()).prop_map(|(op, dst, src)| Insn::AluRR { op, dst, src }),
        (alu_op(), reg32(), any::<i32>()).prop_map(|(op, dst, imm)| Insn::AluRI { op, dst, imm }),
        (rm_alu_op(), reg32(), mem_ref()).prop_map(|(op, dst, src)| Insn::AluRM { op, dst, src }),
        (alu_op(), mem_ref(), reg32()).prop_map(|(op, dst, src)| Insn::AluMR { op, dst, src }),
        (
            prop::sample::select(vec![ShiftOp::Shl, ShiftOp::Shr, ShiftOp::Sar]),
            reg32(),
            any::<u8>()
        )
            .prop_map(|(op, dst, amount)| Insn::Shift { op, dst, amount }),
        (reg32(), reg32()).prop_map(|(dst, src)| Insn::ImulRR { dst, src }),
        (reg32(), mem_ref()).prop_map(|(dst, src)| Insn::ImulRM { dst, src }),
        reg32().prop_map(|dst| Insn::Neg { dst }),
        reg32().prop_map(|dst| Insn::Not { dst }),
        (reg32(), reg32()).prop_map(|(a, b)| Insn::Xchg { a, b }),
        reg32().prop_map(|src| Insn::Push { src }),
        reg32().prop_map(|dst| Insn::Pop { dst }),
        (cond(), any::<u32>()).prop_map(|(cond, target)| Insn::Jcc { cond, target }),
        any::<u32>().prop_map(|target| Insn::Jmp { target }),
        any::<u32>().prop_map(|target| Insn::Call { target }),
        (cond(), low_byte_reg()).prop_map(|(cond, dst)| Insn::Setcc { cond, dst }),
        (cond(), reg32(), reg32()).prop_map(|(cond, dst, src)| Insn::Cmovcc { cond, dst, src }),
        Just(Insn::RepMovsd),
        Just(Insn::Ret),
        Just(Insn::Nop),
        Just(Insn::Hlt),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 2048, ..ProptestConfig::default() })]

    #[test]
    fn encode_decode_roundtrip(insn in insn(), addr in any::<u32>()) {
        let bytes = encode_to_vec(&insn, addr).expect("generated instructions are encodable");
        prop_assert!(bytes.len() <= 15, "x86 instructions are at most 15 bytes");
        let d = decode(&bytes, addr).expect("own encodings decode");
        prop_assert_eq!(d.insn, insn, "bytes: {:02x?}", bytes);
        prop_assert_eq!(d.len as usize, bytes.len());
    }

    #[test]
    fn decoder_is_total_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..16),
                                           addr in any::<u32>()) {
        // Must never panic; errors are fine.
        let _ = decode(&bytes, addr);
    }

    #[test]
    fn decoding_is_prefix_stable(insn in insn(), addr in any::<u32>(), junk in any::<u8>()) {
        // Appending bytes after a valid instruction does not change its
        // decoding (instruction boundaries are self-delimiting).
        let mut bytes = encode_to_vec(&insn, addr).expect("encodable");
        let len = bytes.len();
        bytes.push(junk);
        let d = decode(&bytes, addr).expect("still decodes");
        prop_assert_eq!(d.insn, insn);
        prop_assert_eq!(d.len as usize, len);
    }
}
