//! Differential testing: randomly generated guest programs must produce
//! identical guest-visible state and memory under the reference interpreter
//! and under the DBT with **every** MDA handling strategy and option
//! combination — including deliberately misaligned stacks and data bases.

use digitalbridge::dbt::engine::{states_equivalent, GuestProgram};
use digitalbridge::dbt::interp::run_interp_only;
use digitalbridge::dbt::{Dbt, DbtConfig, MdaStrategy, Profile, StaticProfile};
use digitalbridge::sim::{CostModel, Machine, Memory};
use digitalbridge::x86::asm::Assembler;
use digitalbridge::x86::cond::Cond;
use digitalbridge::x86::insn::{AluOp, Ext, MemRef, Scale, ShiftOp, Width};
use digitalbridge::x86::reg::{Reg32, RegMm};
use digitalbridge::x86::state::CpuState;
use proptest::prelude::*;

const ENTRY: u32 = 0x0040_0000;
const BASE1: u32 = 0x0010_0000;
const BASE2: u32 = 0x0011_0000;
const STACK: u32 = 0x00F0_0000;

/// Registers a body op may overwrite (loop counter and base registers are
/// reserved).
const WRITABLE: [Reg32; 4] = [Reg32::Eax, Reg32::Edx, Reg32::Edi, Reg32::Ebp];
/// Registers a body op may read.
const READABLE: [Reg32; 6] = [
    Reg32::Eax,
    Reg32::Edx,
    Reg32::Edi,
    Reg32::Ebp,
    Reg32::Ebx,
    Reg32::Esi,
];

#[derive(Debug, Clone)]
enum BodyOp {
    AluRR(AluOp, Reg32, Reg32),
    AluRI(AluOp, Reg32, i32),
    Shift(ShiftOp, Reg32, u8),
    Imul(Reg32, Reg32),
    MovRI(Reg32, i32),
    MovRR(Reg32, Reg32),
    Lea(Reg32, u8, Scale, i32),
    Load(Width, Ext, Reg32, bool, i32),
    Store(Width, Reg32, bool, i32),
    AluRM(AluOp, Reg32, bool, i32),
    AluMR(AluOp, bool, i32, Reg32),
    MovqLoad(RegMm, bool, i32),
    MovqStore(RegMm, bool, i32),
    PushPop(Reg32),
    Neg(Reg32),
    Not(Reg32),
    Xchg(Reg32, Reg32),
    Setcc(Cond, Reg32),
    Cmovcc(Cond, Reg32, Reg32),
}

fn alu_op() -> impl Strategy<Value = AluOp> {
    prop::sample::select(AluOp::ALL.to_vec())
}

fn wreg() -> impl Strategy<Value = Reg32> {
    prop::sample::select(WRITABLE.to_vec())
}

fn rreg() -> impl Strategy<Value = Reg32> {
    prop::sample::select(READABLE.to_vec())
}

fn disp() -> impl Strategy<Value = i32> {
    0..120i32
}

fn body_op() -> impl Strategy<Value = BodyOp> {
    prop_oneof![
        (alu_op(), wreg(), rreg()).prop_map(|(o, d, s)| BodyOp::AluRR(o, d, s)),
        (alu_op(), wreg(), any::<i32>()).prop_map(|(o, d, i)| BodyOp::AluRI(o, d, i)),
        (
            prop::sample::select(vec![ShiftOp::Shl, ShiftOp::Shr, ShiftOp::Sar]),
            wreg(),
            0u8..40
        )
            .prop_map(|(o, d, a)| BodyOp::Shift(o, d, a)),
        (wreg(), rreg()).prop_map(|(d, s)| BodyOp::Imul(d, s)),
        (wreg(), any::<i32>()).prop_map(|(d, i)| BodyOp::MovRI(d, i)),
        (wreg(), rreg()).prop_map(|(d, s)| BodyOp::MovRR(d, s)),
        (
            wreg(),
            0u8..2,
            prop::sample::select(vec![Scale::S1, Scale::S2, Scale::S4, Scale::S8]),
            -64i32..64
        )
            .prop_map(|(d, b, s, off)| BodyOp::Lea(d, b, s, off)),
        (
            prop::sample::select(vec![Width::W1, Width::W2, Width::W4]),
            prop::sample::select(vec![Ext::Zero, Ext::Sign]),
            wreg(),
            any::<bool>(),
            disp()
        )
            .prop_map(|(w, e, d, b, off)| BodyOp::Load(w, e, d, b, off)),
        (
            prop::sample::select(vec![Width::W1, Width::W2, Width::W4]),
            prop::sample::select(vec![Reg32::Eax, Reg32::Edx]), // byte-safe
            any::<bool>(),
            disp()
        )
            .prop_map(|(w, s, b, off)| BodyOp::Store(w, s, b, off)),
        (
            // `test r32, m32` has no reg-destination encoding (C-VALIDATE:
            // the encoder rejects it), so AluRM draws from the others.
            prop::sample::select(vec![
                AluOp::Add,
                AluOp::Sub,
                AluOp::And,
                AluOp::Or,
                AluOp::Xor,
                AluOp::Cmp,
            ]),
            wreg(),
            any::<bool>(),
            disp()
        )
            .prop_map(|(o, d, b, off)| BodyOp::AluRM(o, d, b, off)),
        (alu_op(), any::<bool>(), disp(), rreg())
            .prop_map(|(o, b, off, s)| BodyOp::AluMR(o, b, off, s)),
        (
            prop::sample::select(RegMm::ALL.to_vec()),
            any::<bool>(),
            disp()
        )
            .prop_map(|(m, b, off)| BodyOp::MovqLoad(m, b, off)),
        (
            prop::sample::select(RegMm::ALL.to_vec()),
            any::<bool>(),
            disp()
        )
            .prop_map(|(m, b, off)| BodyOp::MovqStore(m, b, off)),
        rreg().prop_map(BodyOp::PushPop),
        wreg().prop_map(BodyOp::Neg),
        wreg().prop_map(BodyOp::Not),
        (wreg(), wreg()).prop_map(|(a, b)| BodyOp::Xchg(a, b)),
        (
            prop::sample::select(Cond::ALL.to_vec()),
            prop::sample::select(vec![Reg32::Eax, Reg32::Edx]),
        )
            .prop_map(|(c, d)| BodyOp::Setcc(c, d)),
        (prop::sample::select(Cond::ALL.to_vec()), wreg(), rreg())
            .prop_map(|(c, d, s)| BodyOp::Cmovcc(c, d, s)),
    ]
}

fn mem_ref(base2: bool, off: i32) -> MemRef {
    MemRef::base_disp(if base2 { Reg32::Esi } else { Reg32::Ebx }, off)
}

#[derive(Debug, Clone)]
struct RandomProgram {
    ops: Vec<BodyOp>,
    iters: u8,
    base1_off: u8,
    base2_off: u8,
    stack_misaligned: bool,
}

fn random_program() -> impl Strategy<Value = RandomProgram> {
    (
        prop::collection::vec(body_op(), 1..22),
        2u8..14,
        0u8..8,
        0u8..8,
        any::<bool>(),
    )
        .prop_map(
            |(ops, iters, base1_off, base2_off, stack_misaligned)| RandomProgram {
                ops,
                iters,
                base1_off,
                base2_off,
                stack_misaligned,
            },
        )
}

fn assemble(p: &RandomProgram) -> GuestProgram {
    let mut a = Assembler::new(ENTRY);
    a.mov_ri(Reg32::Ecx, i32::from(p.iters));
    let top = a.here_label();
    a.mov_ri(Reg32::Ebx, (BASE1 + u32::from(p.base1_off)) as i32);
    a.mov_ri(Reg32::Esi, (BASE2 + u32::from(p.base2_off)) as i32);
    for op in &p.ops {
        match *op {
            BodyOp::AluRR(o, d, s) => a.alu_rr(o, d, s),
            BodyOp::AluRI(o, d, i) => a.alu_ri(o, d, i),
            BodyOp::Shift(o, d, amt) => a.shift(o, d, amt),
            BodyOp::Imul(d, s) => a.imul_rr(d, s),
            BodyOp::MovRI(d, i) => a.mov_ri(d, i),
            BodyOp::MovRR(d, s) => a.mov_rr(d, s),
            BodyOp::Lea(d, b, s, off) => a.lea(
                d,
                MemRef::base_index(
                    if b == 0 { Reg32::Ebx } else { Reg32::Esi },
                    Reg32::Ecx,
                    s,
                    off,
                ),
            ),
            BodyOp::Load(w, e, d, b, off) => a.load(w, e, d, mem_ref(b, off)),
            BodyOp::Store(w, s, b, off) => a.store(w, s, mem_ref(b, off)),
            BodyOp::AluRM(o, d, b, off) => a.alu_rm(o, d, mem_ref(b, off)),
            BodyOp::AluMR(o, b, off, s) => a.alu_mr(o, mem_ref(b, off), s),
            BodyOp::MovqLoad(m, b, off) => a.movq_load(m, mem_ref(b, off)),
            BodyOp::MovqStore(m, b, off) => a.movq_store(m, mem_ref(b, off)),
            BodyOp::PushPop(r) => {
                a.push(r);
                a.pop(if WRITABLE.contains(&r) { r } else { Reg32::Edi });
            }
            BodyOp::Neg(d) => a.emit(digitalbridge::x86::insn::Insn::Neg { dst: d }),
            BodyOp::Not(d) => a.emit(digitalbridge::x86::insn::Insn::Not { dst: d }),
            BodyOp::Xchg(x, y) => a.emit(digitalbridge::x86::insn::Insn::Xchg { a: x, b: y }),
            BodyOp::Setcc(c, d) => a.setcc(c, d),
            BodyOp::Cmovcc(c, d, s) => a.cmovcc(c, d, s),
        }
    }
    a.alu_ri(AluOp::Sub, Reg32::Ecx, 1);
    a.jcc(Cond::Ne, top);
    a.hlt();
    GuestProgram::new(ENTRY, a.finish().expect("random program assembles"))
}

fn initial_data() -> Vec<(u32, Vec<u8>)> {
    let fill = |seed: u8| {
        (0..512u32)
            .map(|i| (i as u8).wrapping_mul(13).wrapping_add(seed))
            .collect()
    };
    vec![(BASE1, fill(3)), (BASE2, fill(101))]
}

fn stack_top(p: &RandomProgram) -> u32 {
    if p.stack_misaligned {
        STACK - 2
    } else {
        STACK
    }
}

/// Reference run: interpreter over plain memory.
fn run_reference(prog: &GuestProgram, p: &RandomProgram) -> (CpuState, Memory) {
    let mut mem = Memory::new();
    mem.write_bytes(u64::from(ENTRY), prog.image());
    for (addr, bytes) in initial_data() {
        mem.write_bytes(u64::from(addr), &bytes);
    }
    let mut state = CpuState::new(ENTRY);
    state.set_reg(Reg32::Esp, stack_top(p));
    let mut profile = Profile::new();
    let halted = run_interp_only(
        &mut state,
        &mut mem,
        &mut profile,
        &CostModel::flat(),
        10_000_000,
    )
    .expect("reference decodes");
    assert!(halted, "reference must halt");
    (state, mem)
}

fn run_dbt(prog: &GuestProgram, p: &RandomProgram, cfg: DbtConfig) -> (CpuState, Vec<u8>) {
    let mut dbt = Dbt::with_machine(cfg, Machine::without_caches(CostModel::flat()));
    dbt.load(prog);
    dbt.set_stack(stack_top(p));
    for (addr, bytes) in initial_data() {
        dbt.write_guest_memory(addr, &bytes);
    }
    let report = dbt.run(500_000_000).expect("dbt run halts");
    let mut window = vec![0u8; 1024 + 64];
    dbt.machine()
        .mem()
        .read_bytes(u64::from(BASE1), &mut window[..512]);
    dbt.machine()
        .mem()
        .read_bytes(u64::from(BASE2), &mut window[512..1024]);
    dbt.machine()
        .mem()
        .read_bytes(u64::from(STACK - 64), &mut window[1024..]);
    (report.final_state, window)
}

fn reference_window(mem: &Memory) -> Vec<u8> {
    let mut window = vec![0u8; 1024 + 64];
    mem.read_bytes(u64::from(BASE1), &mut window[..512]);
    mem.read_bytes(u64::from(BASE2), &mut window[512..1024]);
    mem.read_bytes(u64::from(STACK - 64), &mut window[1024..]);
    window
}

fn all_configs() -> Vec<(&'static str, DbtConfig)> {
    vec![
        (
            "direct",
            DbtConfig::new(MdaStrategy::Direct).with_threshold(2),
        ),
        (
            "static-empty",
            DbtConfig::new(MdaStrategy::StaticProfiling)
                .with_threshold(2)
                .with_static_profile(StaticProfile::new()),
        ),
        (
            "dynamic",
            DbtConfig::new(MdaStrategy::DynamicProfiling).with_threshold(2),
        ),
        (
            "eh",
            DbtConfig::new(MdaStrategy::ExceptionHandling).with_threshold(2),
        ),
        (
            "eh-rearrange",
            DbtConfig::new(MdaStrategy::ExceptionHandling)
                .with_threshold(2)
                .with_rearrange(true),
        ),
        ("dpeh", DbtConfig::new(MdaStrategy::Dpeh).with_threshold(2)),
        (
            "dpeh-all-options",
            DbtConfig::new(MdaStrategy::Dpeh)
                .with_threshold(2)
                .with_retranslate(true)
                .with_multiversion(true),
        ),
        (
            "dpeh-nochain",
            DbtConfig::new(MdaStrategy::Dpeh)
                .with_threshold(2)
                .with_chaining(false),
        ),
        ("dpeh-adaptive", {
            // A tiny reversion threshold so reversion actually fires
            // within short property-test programs.
            let mut c = DbtConfig::new(MdaStrategy::Dpeh)
                .with_threshold(2)
                .with_adaptive_reversion(true);
            c.reversion_threshold = 3;
            c
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn every_strategy_matches_the_reference(p in random_program()) {
        let prog = assemble(&p);
        let (ref_state, ref_mem) = run_reference(&prog, &p);
        let ref_window = reference_window(&ref_mem);
        for (name, cfg) in all_configs() {
            let (state, window) = run_dbt(&prog, &p, cfg);
            prop_assert!(
                states_equivalent(&state, &ref_state),
                "{name}: registers diverge\n dbt: {:x?}\n ref: {:x?}\n mm dbt {:x?} ref {:x?}\n prog {:?}",
                state.regs, ref_state.regs, state.mm, ref_state.mm, p
            );
            prop_assert!(
                window == ref_window,
                "{name}: memory diverges at offset {:?}",
                window.iter().zip(&ref_window).position(|(a, b)| a != b)
            );
        }
    }
}

/// A deterministic regression corpus of tricky shapes (kept cheap so it
/// always runs, even when proptest shrinks are disabled).
#[test]
fn handwritten_corpus() {
    let corpus = vec![
        // Misaligned RMW storm.
        RandomProgram {
            ops: vec![
                BodyOp::AluMR(AluOp::Add, false, 1, Reg32::Eax),
                BodyOp::AluMR(AluOp::Xor, true, 3, Reg32::Edx),
                BodyOp::AluMR(AluOp::Sub, false, 5, Reg32::Edi),
                BodyOp::AluMR(AluOp::Cmp, true, 7, Reg32::Ebp),
            ],
            iters: 9,
            base1_off: 1,
            base2_off: 3,
            stack_misaligned: true,
        },
        // 8-byte traffic through all MMX registers.
        RandomProgram {
            ops: (0..8)
                .map(|i| BodyOp::MovqLoad(RegMm::from_index(i), i % 2 == 0, i as i32 * 8 + 1))
                .chain((0..8).map(|i| {
                    BodyOp::MovqStore(RegMm::from_index(i), i % 2 == 1, i as i32 * 8 + 64)
                }))
                .collect(),
            iters: 5,
            base1_off: 7,
            base2_off: 2,
            stack_misaligned: false,
        },
        // Flag-sensitive arithmetic around the loop branch.
        RandomProgram {
            ops: vec![
                BodyOp::AluRI(AluOp::Add, Reg32::Eax, i32::MAX),
                BodyOp::Shift(ShiftOp::Shl, Reg32::Edx, 31),
                BodyOp::AluRR(AluOp::Cmp, Reg32::Eax, Reg32::Edx),
                BodyOp::Imul(Reg32::Edi, Reg32::Ebp),
                BodyOp::Shift(ShiftOp::Sar, Reg32::Ebp, 33), // masks to 1
            ],
            iters: 13,
            base1_off: 0,
            base2_off: 0,
            stack_misaligned: true,
        },
    ];
    for p in corpus {
        let prog = assemble(&p);
        let (ref_state, ref_mem) = run_reference(&prog, &p);
        let ref_window = reference_window(&ref_mem);
        for (name, cfg) in all_configs() {
            let (state, window) = run_dbt(&prog, &p, cfg);
            assert!(
                states_equivalent(&state, &ref_state),
                "{name} diverged on corpus case {p:?}"
            );
            assert_eq!(window, ref_window, "{name} memory diverged on {p:?}");
        }
    }
}
