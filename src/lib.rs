//! DigitalBridge-RS — a from-scratch reproduction of *"An Evaluation of
//! Misaligned Data Access Handling Mechanisms in Dynamic Binary Translation
//! Systems"* (Li, Wu, Hsu — CGO 2009).
//!
//! This facade crate re-exports the workspace:
//!
//! * [`x86`] — the guest ISA (decoder, encoder, assembler, semantics);
//! * [`alpha`] — the host ISA (encodings, MDA code sequences);
//! * [`sim`] — the Alpha-ES40-style host machine simulator with
//!   misalignment traps and cache/cycle cost models;
//! * [`dbt`] — the two-phase dynamic binary translator with all five MDA
//!   handling mechanisms (the paper's contribution);
//! * [`workloads`] — SPEC CPU2000/2006 stand-in workloads calibrated to the
//!   paper's Table I/III/IV;
//! * [`trace`] — structured tracing and per-site MDA telemetry (event ring,
//!   guest-PC site table, cycle-bucket phase timelines, JSONL sink,
//!   streaming full-fidelity sinks, trace scanning and cross-run diffing);
//! * [`metrics`] — zero-dependency metrics registry (counters, gauges,
//!   log2 histograms) with JSON and Prometheus-style exposition;
//! * [`serve`] — the multi-guest sharded execution service (bounded work
//!   queue, worker pool, shared read-only training profiles, deterministic
//!   result aggregation).
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory and
//! substitutions, and `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! # Quickstart
//!
//! ```
//! use digitalbridge::dbt::{Dbt, DbtConfig};
//! use digitalbridge::dbt::config::MdaStrategy;
//! use digitalbridge::workloads::kernels::memcpy_unaligned;
//!
//! // An unaligned memcpy under the paper's proposed DPEH mechanism.
//! let kernel = memcpy_unaligned(0x10_0001, 0x20_0000, 256);
//! let mut dbt = Dbt::new(DbtConfig::new(MdaStrategy::Dpeh).with_threshold(10));
//! kernel.load_into(&mut dbt);
//! let report = dbt.run(50_000_000).expect("kernel halts");
//! println!("{report}");
//! assert_eq!(report.final_state.reg(digitalbridge::x86::reg::Reg32::Eax), 64);
//! ```

pub use bridge_alpha as alpha;
pub use bridge_dbt as dbt;
pub use bridge_metrics as metrics;
pub use bridge_serve as serve;
pub use bridge_sim as sim;
pub use bridge_trace as trace;
pub use bridge_workloads as workloads;
pub use bridge_x86 as x86;

/// The paper's five MDA handling mechanisms, re-exported for convenience.
pub use bridge_dbt::config::MdaStrategy;
/// The engine itself, re-exported for convenience.
pub use bridge_dbt::Dbt;
/// The engine configuration, re-exported for convenience.
pub use bridge_dbt::DbtConfig;
