//! Merging per-guest site tables from a multi-guest run.
//!
//! The execution service runs N independent guests, each with its own
//! [`Tracer`]; this module folds their site tables into one view keyed by
//! `(guest, pc)`. The key is the guest's *request slot index*, never the
//! worker thread that happened to execute it — worker assignment is a
//! scheduling accident, the slot index is part of the batch's identity.
//! That choice is what makes the merged table deterministic: the same
//! batch produces byte-identical JSONL whether it ran on one shard or
//! eight.

use crate::{jsonl, SiteTelemetry, Tracer};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Schema tag written in the merged table's `meta` line.
pub const MERGED_SCHEMA: &str = "bridge-trace-merged/1";

/// A multi-guest site table: per-site telemetry keyed by
/// `(guest index, guest PC)`, with deterministic iteration and export.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MergedSiteTable {
    rows: BTreeMap<(u64, u32), SiteTelemetry>,
}

impl MergedSiteTable {
    /// An empty table.
    pub fn new() -> MergedSiteTable {
        MergedSiteTable::default()
    }

    /// Folds one guest's site table in under index `guest`. Adding the
    /// same guest twice merges row-wise (counters accumulate). The index
    /// is `u64` so any batch slot fits without a narrowing cast — a
    /// `slot as u32` at the call site used to alias slots 2^32 apart
    /// into one row.
    pub fn add_guest(&mut self, guest: u64, tracer: &Tracer) {
        for (pc, s) in tracer.sites() {
            self.rows.entry((guest, pc)).or_default().merge(s);
        }
    }

    /// Number of `(guest, pc)` rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no guest contributed any site.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Rows in `(guest, pc)` order.
    pub fn rows(&self) -> impl Iterator<Item = ((u64, u32), &SiteTelemetry)> {
        self.rows.iter().map(|(k, s)| (*k, s))
    }

    /// Collapses across guests: one row per guest PC, counters summed,
    /// first-occurrence cycles taking the earliest across guests.
    pub fn collapse_by_pc(&self) -> BTreeMap<u32, SiteTelemetry> {
        let mut out: BTreeMap<u32, SiteTelemetry> = BTreeMap::new();
        for (&(_, pc), s) in &self.rows {
            out.entry(pc).or_default().merge(s);
        }
        out
    }

    /// The `n` hottest PCs across all guests, ordered by
    /// `cycles_attributed` descending, then trap count descending, then
    /// PC ascending (see [`hot_n`]).
    pub fn hot_sites(&self, n: usize) -> Vec<(u32, SiteTelemetry)> {
        hot_n(self.collapse_by_pc().into_iter(), n)
    }

    /// Serializes the table as JSONL: a `meta` line, then one
    /// `merged_site` line per `(guest, pc)` row in key order. Output is a
    /// pure function of the table contents.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let guests = self
            .rows
            .keys()
            .map(|&(g, _)| g)
            .collect::<std::collections::BTreeSet<u64>>()
            .len();
        let _ = writeln!(
            out,
            "{{\"type\":\"meta\",\"schema\":\"{MERGED_SCHEMA}\",\"rows\":{},\"guests\":{guests}}}",
            self.rows.len(),
        );
        for (&(guest, pc), s) in &self.rows {
            let _ = writeln!(
                out,
                "{{\"type\":\"merged_site\",\"guest\":{guest},\"pc\":{pc},{}}}",
                jsonl::site_body(s),
            );
        }
        out
    }
}

/// The `n` hottest entries of a `(pc, telemetry)` sequence, ordered by
/// `cycles_attributed` descending, then trap count descending, then PC
/// ascending. Every level is deterministic: two sites that cost the same
/// and trapped the same always come out in PC order, so hot-site tables
/// are reproducible across runs and platforms.
pub fn hot_n(
    sites: impl Iterator<Item = (u32, SiteTelemetry)>,
    n: usize,
) -> Vec<(u32, SiteTelemetry)> {
    let mut v: Vec<(u32, SiteTelemetry)> = sites.collect();
    v.sort_by(|a, b| {
        b.1.cycles_attributed
            .cmp(&a.1.cycles_attributed)
            .then(b.1.traps.cmp(&a.1.traps))
            .then(a.0.cmp(&b.0))
    });
    v.truncate(n);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TraceConfig, TraceEvent};

    fn guest_tracer(pc: u32, traps: u64, cost: u64) -> Tracer {
        let mut t = Tracer::new(&TraceConfig::default().with_bucket_cycles(100));
        for i in 0..traps {
            t.record(
                10 + i,
                TraceEvent::Trap {
                    site_pc: pc,
                    slot: 0,
                    cycles: cost,
                },
            );
        }
        t
    }

    #[test]
    fn rows_keyed_by_guest_then_pc() {
        let mut m = MergedSiteTable::new();
        m.add_guest(1, &guest_tracer(0x80, 1, 10));
        m.add_guest(0, &guest_tracer(0x40, 2, 10));
        let keys: Vec<(u64, u32)> = m.rows().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![(0, 0x40), (1, 0x80)]);
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
    }

    #[test]
    fn collapse_sums_across_guests() {
        let mut m = MergedSiteTable::new();
        m.add_guest(0, &guest_tracer(0x40, 2, 10));
        m.add_guest(1, &guest_tracer(0x40, 3, 10));
        let collapsed = m.collapse_by_pc();
        assert_eq!(collapsed.len(), 1);
        let s = &collapsed[&0x40];
        assert_eq!(s.traps, 5);
        assert_eq!(s.cycles_attributed, 50);
        assert_eq!(s.first_trap_cycle, Some(10));
    }

    #[test]
    fn hot_sites_order_by_cost_then_pc() {
        let mut m = MergedSiteTable::new();
        m.add_guest(0, &guest_tracer(0x40, 1, 100));
        m.add_guest(0, &guest_tracer(0x80, 4, 100));
        m.add_guest(1, &guest_tracer(0x90, 1, 100));
        let hot = m.hot_sites(2);
        assert_eq!(hot.len(), 2);
        assert_eq!(hot[0].0, 0x80, "most cycles first");
        assert_eq!(hot[1].0, 0x40, "tie broken by PC ascending");
    }

    /// Regression for the full tie-break chain: equal attributed cycles
    /// order by trap count descending, and equal cycles *and* traps order
    /// by PC ascending — on both the merged table and the per-run tracer.
    #[test]
    fn hot_sites_tie_break_is_fully_deterministic() {
        // 0x90: 2 traps x 50 = 100 cycles; 0x40/0x80: 1 trap x 100 = 100.
        let mut m = MergedSiteTable::new();
        m.add_guest(0, &guest_tracer(0x80, 1, 100));
        m.add_guest(0, &guest_tracer(0x90, 2, 50));
        m.add_guest(0, &guest_tracer(0x40, 1, 100));
        let hot: Vec<u32> = m.hot_sites(3).into_iter().map(|(pc, _)| pc).collect();
        assert_eq!(
            hot,
            vec![0x90, 0x40, 0x80],
            "equal cycles: more traps first, then PC ascending"
        );

        // Same ordering out of a single tracer's hot_sites.
        let mut t = Tracer::new(&TraceConfig::default().with_bucket_cycles(100));
        for (pc, traps, cost) in [(0x80u32, 1u64, 100u64), (0x90, 2, 50), (0x40, 1, 100)] {
            for i in 0..traps {
                t.record(
                    10 + i,
                    TraceEvent::Trap {
                        site_pc: pc,
                        slot: 0,
                        cycles: cost,
                    },
                );
            }
        }
        let hot: Vec<u32> = t.hot_sites(3).into_iter().map(|(pc, _)| pc).collect();
        assert_eq!(hot, vec![0x90, 0x40, 0x80]);
    }

    /// Regression: the guest key is `u64`, so slot indices 2^32 apart
    /// stay distinct rows. Under the old `u32` key (and the `slot as
    /// u32` cast at the serve call site) both guests below aliased to
    /// index 1 and their telemetry merged into a single row.
    #[test]
    fn guest_indices_past_u32_do_not_alias() {
        let mut m = MergedSiteTable::new();
        m.add_guest(1, &guest_tracer(0x40, 2, 10));
        m.add_guest((1u64 << 32) | 1, &guest_tracer(0x40, 3, 10));
        assert_eq!(m.len(), 2, "high slot must not collapse onto slot 1");
        let keys: Vec<(u64, u32)> = m.rows().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![(1, 0x40), ((1u64 << 32) | 1, 0x40)]);
        // Each row keeps its own counters rather than a silent merge.
        let traps: Vec<u64> = m.rows().map(|(_, s)| s.traps).collect();
        assert_eq!(traps, vec![2, 3]);
        // The JSONL export round-trips the full 64-bit index.
        let s = m.to_jsonl();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(jsonl::u64_field(lines[0], "guests"), Some(2));
        assert_eq!(jsonl::u64_field(lines[2], "guest"), Some((1u64 << 32) | 1));
    }

    #[test]
    fn jsonl_is_deterministic_and_scannable() {
        let mut a = MergedSiteTable::new();
        a.add_guest(1, &guest_tracer(0x80, 1, 10));
        a.add_guest(0, &guest_tracer(0x40, 2, 10));
        // Same contents, different insertion order.
        let mut b = MergedSiteTable::new();
        b.add_guest(0, &guest_tracer(0x40, 2, 10));
        b.add_guest(1, &guest_tracer(0x80, 1, 10));
        assert_eq!(a.to_jsonl(), b.to_jsonl());

        let s = a.to_jsonl();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(jsonl::line_type(lines[0]), Some("meta"));
        assert_eq!(jsonl::str_field(lines[0], "schema"), Some(MERGED_SCHEMA));
        assert_eq!(jsonl::u64_field(lines[0], "rows"), Some(2));
        assert_eq!(jsonl::u64_field(lines[0], "guests"), Some(2));
        assert_eq!(jsonl::line_type(lines[1]), Some("merged_site"));
        assert_eq!(jsonl::u64_field(lines[1], "guest"), Some(0));
        assert_eq!(jsonl::u64_field(lines[1], "pc"), Some(0x40));
        assert_eq!(jsonl::u64_field(lines[1], "traps"), Some(2));
    }
}
