//! Structured tracing and per-site MDA telemetry for DigitalBridge-RS.
//!
//! The paper's whole argument is *temporal and per-site*: the adaptive
//! mechanisms (Exception Handling, DPEH) win because misaligned sites are
//! discovered one trap at a time and patched, while the profiling-based
//! mechanisms keep trapping at every un-caught site forever. End-of-run
//! aggregates cannot show that; this crate records *when* and *where*
//! things happened:
//!
//! * [`TraceEvent`] — compact enum events for every engine decision point
//!   (translation, retranslation, misalignment trap, EH patch,
//!   rearrangement, reversion, phase transition, IBTC hit/miss, RAS hit,
//!   chain backpatch, cache invalidate/flush), each stamped with the
//!   simulated cycle count and guest-PC attribution and kept in a bounded
//!   ring buffer ([`Tracer`]);
//! * [`SiteTelemetry`] — a per-guest-PC table (traps seen, misaligned
//!   executions, cycles attributed to handling, first-trap cycle, patch
//!   cycle) reproducing the paper's site-level story;
//! * [`Timeline`] — fixed-width cycle-bucket histograms of trap rate,
//!   monitor exits, patches and guest progress, which make the adaptive
//!   convergence curve of EH/DPEH (traps decay to zero after the last
//!   patch) vs. the flat trap rate of dynamic profiling directly visible;
//! * [`jsonl`] — a zero-dependency JSONL sink plus the line-scanning
//!   helpers tests and tools use to read it back;
//! * [`span`] — hierarchical request-scoped spans (parent IDs, dual
//!   wall + simulated-cycle timestamps) with JSONL, Chrome trace-event
//!   and folded-stack flamegraph exports.
//!
//! A disabled tracer ([`Tracer::disabled`]) reduces every record call to a
//! single predictable branch and allocates nothing — and recording never
//! charges simulated cycles, so traced and untraced runs produce identical
//! experiment tables by construction (asserted by the perf harness and the
//! `trace_timeline` integration tests).

pub mod diff;
pub mod jsonl;
pub mod merge;
pub mod scan;
pub mod sink;
pub mod site;
pub mod span;
pub mod timeline;
pub mod watch;

pub use diff::TraceDiff;
pub use merge::MergedSiteTable;
pub use scan::ScannedTrace;
pub use sink::{SinkSummary, StreamingJsonl, TraceSink};
pub use site::SiteTelemetry;
pub use span::{SpanConfig, SpanId, SpanKind, SpanRecord, SpanRecorder};
pub use timeline::{ConvergenceVerdict, Timeline};
pub use watch::{
    SiteTransition, SiteVerdict, SiteWatch, SiteWatchStats, WatchConfig, WatchSink, WindowEvidence,
};

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

/// Tuning knobs for a [`Tracer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceConfig {
    /// Maximum records retained in the event ring; the oldest records are
    /// evicted (and counted as dropped) beyond this. Aggregates — the site
    /// table and the timelines — are cumulative and unaffected by
    /// eviction, so memory stays bounded on arbitrarily long runs.
    pub ring_capacity: usize,
    /// Width of one timeline bucket in simulated cycles.
    pub bucket_cycles: u64,
    /// Maximum number of timeline buckets; activity past the end
    /// accumulates in the last bucket and sets
    /// [`Timeline::truncated`](timeline::Timeline::truncated).
    pub max_buckets: usize,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig {
            ring_capacity: 1 << 16,
            bucket_cycles: 1 << 15,
            max_buckets: 4096,
        }
    }
}

impl TraceConfig {
    /// Builder-style: set the timeline bucket width in cycles.
    pub fn with_bucket_cycles(mut self, cycles: u64) -> TraceConfig {
        self.bucket_cycles = cycles.max(1);
        self
    }

    /// Builder-style: set the event-ring capacity.
    pub fn with_ring_capacity(mut self, cap: usize) -> TraceConfig {
        self.ring_capacity = cap;
        self
    }
}

/// One engine event. Guest-PC attribution is carried inline; events that
/// summarize batched machine work ([`TraceEvent::InCacheHits`]) carry
/// counts instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A block was translated and installed.
    BlockTranslated {
        /// Guest PC of the block entry.
        guest_pc: u32,
    },
    /// A block crossed its trap threshold and was invalidated for
    /// retranslation (§IV-C).
    Retranslation {
        /// Guest PC of the block entry.
        block_pc: u32,
    },
    /// The very first translation of the run: the program left the
    /// interpret-and-profile phase (the two-phase engine's phase 1 → 2
    /// transition; under DPEH this is where profiling decisions freeze and
    /// the exception handler takes over discovery).
    PhaseTransition {
        /// Guest PC of the first translated block.
        guest_pc: u32,
    },
    /// A misalignment trap was delivered to the engine's handler.
    Trap {
        /// Guest PC of the faulting instruction.
        site_pc: u32,
        /// Access slot within the instruction (0 or 1).
        slot: u8,
        /// Cycles the trap delivery itself cost (kernel entry + signal).
        cycles: u64,
    },
    /// The OS-style software fixup emulated the access (the
    /// profiling-based mechanisms' per-occurrence failure mode).
    OsFixup {
        /// Guest PC of the faulting instruction.
        site_pc: u32,
        /// Cycles the fixup cost on top of trap delivery.
        cycles: u64,
    },
    /// The exception handler patched the site into a branch to an MDA
    /// stub (§IV, Figure 5).
    EhPatch {
        /// Guest PC of the patched instruction.
        site_pc: u32,
        /// Access slot within the instruction (0 or 1).
        slot: u8,
        /// Cycles charged for stub build + code patch.
        cycles: u64,
    },
    /// The handler retranslated the block with the site inlined (§IV-A).
    Rearrangement {
        /// Guest PC of the containing block.
        block_pc: u32,
        /// Guest PC of the discovered site.
        site_pc: u32,
        /// Cycles charged for the relocation work.
        cycles: u64,
    },
    /// Figure 8 adaptive code observed a long aligned streak and reverted
    /// the site to a plain access.
    Reversion {
        /// Guest PC of the reverted site.
        site_pc: u32,
    },
    /// Translated code exited to the monitor for dispatch.
    MonitorExit {
        /// Guest PC being dispatched to.
        next_pc: u32,
    },
    /// An inline IBTC probe missed and paid the monitor round-trip.
    IbtcMiss {
        /// Guest PC the probe was resolving.
        next_pc: u32,
    },
    /// Batched in-cache dispatch hits since the last machine exit (the
    /// emitted probes bump counter registers; the engine reads the deltas).
    InCacheHits {
        /// Transfers resolved by the inline IBTC probe.
        ibtc: u64,
        /// Returns resolved by the shadow return stack.
        ras: u64,
    },
    /// An exit slot was backpatched into a direct branch.
    ChainBackpatch {
        /// Guest PC of the chaining block.
        block_pc: u32,
        /// Guest PC of the chain target.
        target_pc: u32,
    },
    /// A translated block was invalidated (code write, rearrangement,
    /// retranslation or reversion).
    CacheInvalidate {
        /// Guest PC of the removed block.
        block_pc: u32,
    },
    /// The whole code cache was flushed (allocation pressure).
    CacheFlush {
        /// Number of blocks discarded.
        blocks: u64,
    },
    /// A shared-cache entry was evicted under capacity pressure (LRU
    /// policy). Emitted exactly once per evicted block, by the engine
    /// whose allocation forced the eviction.
    CacheEvict {
        /// Guest PC of the evicted block.
        block_pc: u32,
    },
    /// A persistent AOT translation image was validated and restored
    /// into a shared cache at warm start. Emitted once per restored
    /// image by the serving layer (cycle 0 — before any engine runs).
    ImageLoad {
        /// Number of translated blocks restored from the artifact.
        blocks: u64,
    },
    /// An engine's install was served by a block restored from an AOT
    /// image instead of invoking the translator.
    ImageHit {
        /// Guest PC of the preloaded block.
        block_pc: u32,
    },
    /// A persistent artifact was present but failed validation (bad
    /// magic, version, checksum, or stale key) and was rejected whole —
    /// the context falls back to fresh translation.
    ImageReject {
        /// Stable reject code (`ImageError::code` in `bridge-dbt`).
        code: u32,
    },
    /// The network edge admitted a request into the bounded work queue
    /// (recorded by the serving layer at cycle 0 — admission happens in
    /// the wall domain, before any engine runs).
    EdgeAdmit {
        /// Submitting tenant.
        tenant: u32,
        /// Client-assigned request id, echoed in the response.
        id: u64,
    },
    /// The edge shed a request instead of queuing it: the queue was
    /// full, the tenant was over quota, or the listener was shutting
    /// down. The client received a typed rejection.
    EdgeShed {
        /// Submitting tenant.
        tenant: u32,
        /// Client-assigned request id.
        id: u64,
        /// Stable shed code (`EdgeStatus` discriminant in `bridge-serve`).
        code: u32,
    },
    /// A request's deadline expired — at admission, or while it sat in
    /// the queue (in which case it was dropped at dispatch, *never*
    /// executed).
    EdgeDeadline {
        /// Submitting tenant.
        tenant: u32,
        /// Client-assigned request id.
        id: u64,
        /// Wall microseconds the request had waited when it was shed.
        waited_us: u64,
    },
}

impl TraceEvent {
    /// Short machine-readable kind tag (the JSONL `kind` field).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::BlockTranslated { .. } => "translate",
            TraceEvent::Retranslation { .. } => "retranslate",
            TraceEvent::PhaseTransition { .. } => "phase",
            TraceEvent::Trap { .. } => "trap",
            TraceEvent::OsFixup { .. } => "os_fixup",
            TraceEvent::EhPatch { .. } => "patch",
            TraceEvent::Rearrangement { .. } => "rearrange",
            TraceEvent::Reversion { .. } => "reversion",
            TraceEvent::MonitorExit { .. } => "monitor_exit",
            TraceEvent::IbtcMiss { .. } => "ibtc_miss",
            TraceEvent::InCacheHits { .. } => "in_cache_hits",
            TraceEvent::ChainBackpatch { .. } => "chain",
            TraceEvent::CacheInvalidate { .. } => "invalidate",
            TraceEvent::CacheFlush { .. } => "flush",
            TraceEvent::CacheEvict { .. } => "evict",
            TraceEvent::ImageLoad { .. } => "image_load",
            TraceEvent::ImageHit { .. } => "image_hit",
            TraceEvent::ImageReject { .. } => "image_reject",
            TraceEvent::EdgeAdmit { .. } => "edge_admit",
            TraceEvent::EdgeShed { .. } => "edge_shed",
            TraceEvent::EdgeDeadline { .. } => "edge_deadline",
        }
    }

    /// The guest PC this event is attributed to, when it has one.
    pub fn guest_pc(&self) -> Option<u32> {
        match *self {
            TraceEvent::BlockTranslated { guest_pc } => Some(guest_pc),
            TraceEvent::Retranslation { block_pc } => Some(block_pc),
            TraceEvent::PhaseTransition { guest_pc } => Some(guest_pc),
            TraceEvent::Trap { site_pc, .. } => Some(site_pc),
            TraceEvent::OsFixup { site_pc, .. } => Some(site_pc),
            TraceEvent::EhPatch { site_pc, .. } => Some(site_pc),
            TraceEvent::Rearrangement { site_pc, .. } => Some(site_pc),
            TraceEvent::Reversion { site_pc } => Some(site_pc),
            TraceEvent::MonitorExit { next_pc } => Some(next_pc),
            TraceEvent::IbtcMiss { next_pc } => Some(next_pc),
            TraceEvent::InCacheHits { .. } => None,
            TraceEvent::ChainBackpatch { block_pc, .. } => Some(block_pc),
            TraceEvent::CacheInvalidate { block_pc } => Some(block_pc),
            TraceEvent::CacheFlush { .. } => None,
            TraceEvent::CacheEvict { block_pc } => Some(block_pc),
            TraceEvent::ImageLoad { .. } => None,
            TraceEvent::ImageHit { block_pc } => Some(block_pc),
            TraceEvent::ImageReject { .. } => None,
            TraceEvent::EdgeAdmit { .. } => None,
            TraceEvent::EdgeShed { .. } => None,
            TraceEvent::EdgeDeadline { .. } => None,
        }
    }
}

/// One ring entry: an event stamped with the simulated cycle count at
/// which the engine recorded it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Simulated cycles at record time (after the event's cost was
    /// charged, so the timestamp includes the handling work).
    pub cycle: u64,
    /// The event.
    pub event: TraceEvent,
}

/// The recorder: a bounded event ring plus cumulative aggregates (site
/// table, timelines). Construct with [`Tracer::new`] to record or
/// [`Tracer::disabled`] for the no-op used on default runs.
///
/// With a [`TraceSink`] attached ([`Tracer::set_sink`]), ring evictions
/// stream to the sink instead of being dropped, and
/// [`Tracer::finish_sink`] drains the retained tail — full-fidelity event
/// streams under the same bounded memory.
pub struct Tracer {
    enabled: bool,
    ring_capacity: usize,
    ring: VecDeque<TraceRecord>,
    dropped: u64,
    streamed: u64,
    sites: BTreeMap<u32, SiteTelemetry>,
    timeline: Timeline,
    sink: Option<Box<dyn TraceSink>>,
    finished_sink: Option<Box<dyn TraceSink>>,
    sink_error: Option<String>,
}

/// Clones the recorder state. Sinks are not cloneable (they own writers);
/// a clone starts with no sink attached — which is exactly what snapshot
/// clones (`Dbt::trace_snapshot`) want.
impl Clone for Tracer {
    fn clone(&self) -> Tracer {
        Tracer {
            enabled: self.enabled,
            ring_capacity: self.ring_capacity,
            ring: self.ring.clone(),
            dropped: self.dropped,
            streamed: self.streamed,
            sites: self.sites.clone(),
            timeline: self.timeline.clone(),
            sink: None,
            finished_sink: None,
            sink_error: self.sink_error.clone(),
        }
    }
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled)
            .field("ring_capacity", &self.ring_capacity)
            .field("ring_len", &self.ring.len())
            .field("dropped", &self.dropped)
            .field("streamed", &self.streamed)
            .field("sites", &self.sites.len())
            .field("sink", &self.sink.is_some())
            .field("sink_error", &self.sink_error)
            .finish_non_exhaustive()
    }
}

impl Tracer {
    /// An enabled tracer with the given bounds.
    pub fn new(cfg: &TraceConfig) -> Tracer {
        Tracer {
            enabled: true,
            ring_capacity: cfg.ring_capacity.max(1),
            ring: VecDeque::new(),
            dropped: 0,
            streamed: 0,
            sites: BTreeMap::new(),
            timeline: Timeline::new(cfg.bucket_cycles, cfg.max_buckets),
            sink: None,
            finished_sink: None,
            sink_error: None,
        }
    }

    /// The no-op tracer: every record call is one predictable branch, no
    /// allocation ever happens.
    pub fn disabled() -> Tracer {
        Tracer {
            enabled: false,
            ring_capacity: 0,
            ring: VecDeque::new(),
            dropped: 0,
            streamed: 0,
            sites: BTreeMap::new(),
            timeline: Timeline::new(1, 0),
            sink: None,
            finished_sink: None,
            sink_error: None,
        }
    }

    /// Whether this tracer records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one event at `cycle`. On a disabled tracer this is a no-op.
    #[inline(always)]
    pub fn record(&mut self, cycle: u64, event: TraceEvent) {
        if !self.enabled {
            return;
        }
        self.record_enabled(cycle, event);
    }

    #[cold]
    fn record_enabled(&mut self, cycle: u64, event: TraceEvent) {
        match event {
            TraceEvent::Trap {
                site_pc, cycles, ..
            } => {
                let s = self.sites.entry(site_pc).or_default();
                s.traps += 1;
                s.cycles_attributed += cycles;
                s.first_trap_cycle.get_or_insert(cycle);
                self.timeline.bump_trap(cycle);
            }
            TraceEvent::OsFixup { site_pc, cycles } => {
                let s = self.sites.entry(site_pc).or_default();
                s.os_fixups += 1;
                s.cycles_attributed += cycles;
            }
            TraceEvent::EhPatch {
                site_pc, cycles, ..
            } => {
                let s = self.sites.entry(site_pc).or_default();
                s.patches += 1;
                s.cycles_attributed += cycles;
                s.patch_cycle.get_or_insert(cycle);
                self.timeline.bump_patch(cycle);
            }
            TraceEvent::Rearrangement {
                site_pc, cycles, ..
            } => {
                let s = self.sites.entry(site_pc).or_default();
                s.rearrangements += 1;
                s.cycles_attributed += cycles;
                s.patch_cycle.get_or_insert(cycle);
                self.timeline.bump_patch(cycle);
            }
            TraceEvent::Reversion { site_pc } => {
                self.sites.entry(site_pc).or_default().reversions += 1;
            }
            TraceEvent::MonitorExit { .. } => self.timeline.bump_monitor_exit(cycle),
            _ => {}
        }
        if self.ring.len() == self.ring_capacity {
            let old = self.ring.pop_front().expect("ring at capacity >= 1");
            self.flush_evicted(&old);
        }
        self.ring.push_back(TraceRecord { cycle, event });
    }

    /// Routes one evicted record: to the sink when one is attached (a
    /// failing sink is detached and its error kept), to the dropped
    /// counter otherwise.
    fn flush_evicted(&mut self, old: &TraceRecord) {
        match self.sink.as_mut() {
            Some(sink) => {
                if let Err(e) = sink.emit(old) {
                    self.sink_error = Some(e.to_string());
                    self.sink = None;
                    self.dropped += 1;
                } else {
                    self.streamed += 1;
                }
            }
            None => self.dropped += 1,
        }
    }

    /// Adds `guest_insns` of guest progress ending at `cycle` to the
    /// timeline (the MIPS series). No-op when disabled or zero.
    #[inline(always)]
    pub fn progress(&mut self, cycle: u64, guest_insns: u64) {
        if !self.enabled || guest_insns == 0 {
            return;
        }
        self.timeline.add_insns(cycle, guest_insns);
    }

    /// Folds a run's per-site execution profile into the telemetry table
    /// (the engine calls this once at snapshot time): `execs` dynamic
    /// executions, `mdas` of them misaligned — the MDA sequences executed
    /// or emulated at the site.
    pub fn merge_profile_site(&mut self, pc: u32, execs: u64, mdas: u64) {
        if !self.enabled || (execs == 0 && mdas == 0) {
            return;
        }
        let s = self.sites.entry(pc).or_default();
        s.execs += execs;
        s.mdas += mdas;
    }

    /// The per-site telemetry table, ordered by guest PC (deterministic).
    pub fn sites(&self) -> impl Iterator<Item = (u32, &SiteTelemetry)> {
        self.sites.iter().map(|(pc, s)| (*pc, s))
    }

    /// Telemetry for one guest PC.
    pub fn site(&self, pc: u32) -> Option<&SiteTelemetry> {
        self.sites.get(&pc)
    }

    /// The `n` hottest sites, ordered by `cycles_attributed` descending,
    /// then trap count descending, then guest PC ascending — fully
    /// deterministic even when sites tie on both cost and traps.
    pub fn hot_sites(&self, n: usize) -> Vec<(u32, SiteTelemetry)> {
        merge::hot_n(self.sites().map(|(pc, s)| (pc, *s)), n)
    }

    /// The cycle-bucket timelines.
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// The retained event records, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceRecord> {
        self.ring.iter()
    }

    /// Number of retained event records.
    pub fn event_count(&self) -> usize {
        self.ring.len()
    }

    /// Records evicted from the ring (aggregates still include them).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Records streamed to the attached sink (evictions so far, plus the
    /// final drain once [`Tracer::finish_sink`] runs).
    pub fn streamed(&self) -> u64 {
        self.streamed
    }

    /// The error that detached the sink, if its writer ever failed.
    /// Evictions after a sink failure fall back to counted drops.
    pub fn sink_error(&self) -> Option<&str> {
        self.sink_error.as_deref()
    }

    /// Attaches a streaming sink; subsequent ring evictions are emitted to
    /// it in order instead of being dropped. Returns `false` (and drops
    /// the sink) on a disabled tracer — nothing will ever be recorded, so
    /// an empty trace file would be a lie. Replaces any prior sink without
    /// finishing it.
    ///
    /// Sink I/O is host-side only: attaching one never charges simulated
    /// cycles, preserving the traced==untraced accounting contract.
    pub fn set_sink(&mut self, sink: Box<dyn TraceSink>) -> bool {
        if !self.enabled {
            return false;
        }
        self.sink = Some(sink);
        self.sink_error = None;
        true
    }

    /// Completes the stream: drains the retained ring (oldest first) into
    /// the sink — so the sink has seen *every* record of the run exactly
    /// once — then hands the sink the aggregate state via
    /// [`TraceSink::finish`]. The ring itself is left intact for
    /// in-memory snapshots.
    ///
    /// Returns `None` when no sink is attached, otherwise the summary or
    /// the I/O error message. The sink is detached either way; recover a
    /// buffered sink's bytes with [`Tracer::take_sink_output`].
    pub fn finish_sink(&mut self) -> Option<Result<SinkSummary, String>> {
        let mut sink = self.sink.take()?;
        for rec in &self.ring {
            match sink.emit(rec) {
                Ok(()) => self.streamed += 1,
                Err(e) => {
                    let msg = e.to_string();
                    self.sink_error = Some(msg.clone());
                    return Some(Err(msg));
                }
            }
        }
        if let Err(e) = sink.finish(self) {
            let msg = e.to_string();
            self.sink_error = Some(msg.clone());
            return Some(Err(msg));
        }
        self.finished_sink = Some(sink);
        Some(Ok(SinkSummary {
            events: self.streamed,
            sites: self.sites.len(),
            buckets: self.timeline.active_buckets(),
        }))
    }

    /// Recovers the bytes of a finished in-memory [`StreamingJsonl`]
    /// sink (one constructed over a `Vec<u8>`). `None` when the sink was
    /// never finished or writes elsewhere. Used by tests and tools that
    /// stream to memory.
    pub fn take_sink_output(&mut self) -> Option<Vec<u8>> {
        let sink = self.finished_sink.take()?;
        sink.into_any()
            .downcast::<StreamingJsonl<Vec<u8>>>()
            .ok()
            .map(|s| s.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracer(bucket: u64, ring: usize) -> Tracer {
        Tracer::new(
            &TraceConfig::default()
                .with_bucket_cycles(bucket)
                .with_ring_capacity(ring),
        )
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::disabled();
        t.record(
            100,
            TraceEvent::Trap {
                site_pc: 0x40,
                slot: 0,
                cycles: 1000,
            },
        );
        t.progress(100, 50);
        t.merge_profile_site(0x40, 10, 5);
        assert!(!t.is_enabled());
        assert_eq!(t.event_count(), 0);
        assert_eq!(t.sites().count(), 0);
        assert_eq!(t.timeline().active_buckets(), 0);
    }

    #[test]
    fn site_table_accumulates_and_orders_by_pc() {
        let mut t = tracer(100, 16);
        t.record(
            50,
            TraceEvent::Trap {
                site_pc: 0x80,
                slot: 0,
                cycles: 1000,
            },
        );
        t.record(
            60,
            TraceEvent::Trap {
                site_pc: 0x40,
                slot: 1,
                cycles: 1000,
            },
        );
        t.record(
            70,
            TraceEvent::EhPatch {
                site_pc: 0x40,
                slot: 1,
                cycles: 334,
            },
        );
        t.merge_profile_site(0x40, 9, 3);
        let pcs: Vec<u32> = t.sites().map(|(pc, _)| pc).collect();
        assert_eq!(pcs, vec![0x40, 0x80]);
        let s = t.site(0x40).unwrap();
        assert_eq!(s.traps, 1);
        assert_eq!(s.patches, 1);
        assert_eq!(s.first_trap_cycle, Some(60));
        assert_eq!(s.patch_cycle, Some(70));
        assert_eq!(s.cycles_attributed, 1334);
        assert_eq!((s.execs, s.mdas), (9, 3));
        assert_eq!(t.site(0x80).unwrap().patch_cycle, None);
    }

    #[test]
    fn ring_is_bounded_but_aggregates_are_not() {
        let mut t = tracer(10, 4);
        for i in 0..10u64 {
            t.record(
                i,
                TraceEvent::Trap {
                    site_pc: 0x10,
                    slot: 0,
                    cycles: 1,
                },
            );
        }
        assert_eq!(t.event_count(), 4);
        assert_eq!(t.dropped(), 6);
        // The site table and timeline saw all ten.
        assert_eq!(t.site(0x10).unwrap().traps, 10);
        assert_eq!(t.timeline().traps().iter().sum::<u64>(), 10);
        // Oldest evicted first.
        assert_eq!(t.events().next().unwrap().cycle, 6);
    }

    #[test]
    fn first_trap_cycle_sticks() {
        let mut t = tracer(100, 16);
        t.record(
            10,
            TraceEvent::Trap {
                site_pc: 1,
                slot: 0,
                cycles: 5,
            },
        );
        t.record(
            20,
            TraceEvent::Trap {
                site_pc: 1,
                slot: 0,
                cycles: 5,
            },
        );
        assert_eq!(t.site(1).unwrap().first_trap_cycle, Some(10));
        assert_eq!(t.site(1).unwrap().traps, 2);
    }

    #[test]
    fn event_kind_and_pc_attribution() {
        let ev = TraceEvent::EhPatch {
            site_pc: 0x1234,
            slot: 0,
            cycles: 1,
        };
        assert_eq!(ev.kind(), "patch");
        assert_eq!(ev.guest_pc(), Some(0x1234));
        assert_eq!(TraceEvent::CacheFlush { blocks: 3 }.guest_pc(), None);
        assert_eq!(
            TraceEvent::InCacheHits { ibtc: 1, ras: 2 }.kind(),
            "in_cache_hits"
        );
    }
}
