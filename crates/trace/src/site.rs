//! Per-site telemetry: everything the tracer attributes to one guest PC.

/// Telemetry accumulated for one guest instruction address. The event
/// counters come from the engine's trap/patch path; `execs`/`mdas` are
/// folded in from the run's execution profile at snapshot time (see
/// [`Tracer::merge_profile_site`](crate::Tracer::merge_profile_site)), so
/// the table tells the site's whole story: how often it ran misaligned,
/// when it was discovered, when it was patched, and what the handling
/// cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SiteTelemetry {
    /// Misalignment traps delivered for this PC.
    pub traps: u64,
    /// Per-occurrence OS software fixups (profiling-based strategies).
    pub os_fixups: u64,
    /// Exception-handler stub patches applied here.
    pub patches: u64,
    /// Inline rearrangements triggered by this site.
    pub rearrangements: u64,
    /// Figure 8 adaptive reversions back to a plain access.
    pub reversions: u64,
    /// Simulated cycle of the first trap at this PC (discovery time).
    pub first_trap_cycle: Option<u64>,
    /// Simulated cycle of the first patch/rearrangement (fix time). The
    /// gap to [`first_trap_cycle`](SiteTelemetry::first_trap_cycle) is the
    /// site's discovery-to-fix latency.
    pub patch_cycle: Option<u64>,
    /// Cycles attributed to handling this site: trap deliveries, fixup
    /// emulation, stub builds and relocations.
    pub cycles_attributed: u64,
    /// Dynamic executions of this site's accesses observed by profiling
    /// (interpretation plus trap discoveries).
    pub execs: u64,
    /// How many of those executions were misaligned — the MDA sequences
    /// executed (or emulated) at this site.
    pub mdas: u64,
}

impl SiteTelemetry {
    /// Cycles between discovery (first trap) and fix (first patch), if
    /// both happened.
    pub fn discovery_to_fix_cycles(&self) -> Option<u64> {
        match (self.first_trap_cycle, self.patch_cycle) {
            (Some(t), Some(p)) => Some(p.saturating_sub(t)),
            _ => None,
        }
    }

    /// Whether anything at all was attributed to this site.
    pub fn is_empty(&self) -> bool {
        *self == SiteTelemetry::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discovery_to_fix_latency() {
        let s = SiteTelemetry {
            first_trap_cycle: Some(1_000),
            patch_cycle: Some(1_400),
            ..SiteTelemetry::default()
        };
        assert_eq!(s.discovery_to_fix_cycles(), Some(400));
        assert!(!s.is_empty());
        assert_eq!(SiteTelemetry::default().discovery_to_fix_cycles(), None);
        assert!(SiteTelemetry::default().is_empty());
    }
}
