//! Per-site telemetry: everything the tracer attributes to one guest PC.

/// Telemetry accumulated for one guest instruction address. The event
/// counters come from the engine's trap/patch path; `execs`/`mdas` are
/// folded in from the run's execution profile at snapshot time (see
/// [`Tracer::merge_profile_site`](crate::Tracer::merge_profile_site)), so
/// the table tells the site's whole story: how often it ran misaligned,
/// when it was discovered, when it was patched, and what the handling
/// cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SiteTelemetry {
    /// Misalignment traps delivered for this PC.
    pub traps: u64,
    /// Per-occurrence OS software fixups (profiling-based strategies).
    pub os_fixups: u64,
    /// Exception-handler stub patches applied here.
    pub patches: u64,
    /// Inline rearrangements triggered by this site.
    pub rearrangements: u64,
    /// Figure 8 adaptive reversions back to a plain access.
    pub reversions: u64,
    /// Simulated cycle of the first trap at this PC (discovery time).
    pub first_trap_cycle: Option<u64>,
    /// Simulated cycle of the first patch/rearrangement (fix time). The
    /// gap to [`first_trap_cycle`](SiteTelemetry::first_trap_cycle) is the
    /// site's discovery-to-fix latency.
    pub patch_cycle: Option<u64>,
    /// Cycles attributed to handling this site: trap deliveries, fixup
    /// emulation, stub builds and relocations.
    pub cycles_attributed: u64,
    /// Dynamic executions of this site's accesses observed by profiling
    /// (interpretation plus trap discoveries).
    pub execs: u64,
    /// How many of those executions were misaligned — the MDA sequences
    /// executed (or emulated) at this site.
    pub mdas: u64,
}

impl SiteTelemetry {
    /// Cycles between discovery (first trap) and fix (first patch), if
    /// both happened in that order. A patch recorded *before* the first
    /// trap (a statically pre-patched site) has no discovery-to-fix
    /// latency, so out-of-order timestamps yield `None` rather than a
    /// misleading `0`.
    pub fn discovery_to_fix_cycles(&self) -> Option<u64> {
        match (self.first_trap_cycle, self.patch_cycle) {
            (Some(t), Some(p)) if p >= t => Some(p - t),
            _ => None,
        }
    }

    /// Accumulates `other` into `self`: counters add, first-occurrence
    /// cycles take the earliest of the two. Used when collapsing per-guest
    /// site tables that share a PC.
    pub fn merge(&mut self, other: &SiteTelemetry) {
        self.traps += other.traps;
        self.os_fixups += other.os_fixups;
        self.patches += other.patches;
        self.rearrangements += other.rearrangements;
        self.reversions += other.reversions;
        self.first_trap_cycle = min_opt(self.first_trap_cycle, other.first_trap_cycle);
        self.patch_cycle = min_opt(self.patch_cycle, other.patch_cycle);
        self.cycles_attributed += other.cycles_attributed;
        self.execs += other.execs;
        self.mdas += other.mdas;
    }

    /// Whether anything at all was attributed to this site.
    pub fn is_empty(&self) -> bool {
        *self == SiteTelemetry::default()
    }
}

fn min_opt(a: Option<u64>, b: Option<u64>) -> Option<u64> {
    match (a, b) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (x, None) | (None, x) => x,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discovery_to_fix_latency() {
        let s = SiteTelemetry {
            first_trap_cycle: Some(1_000),
            patch_cycle: Some(1_400),
            ..SiteTelemetry::default()
        };
        assert_eq!(s.discovery_to_fix_cycles(), Some(400));
        assert!(!s.is_empty());
        assert_eq!(SiteTelemetry::default().discovery_to_fix_cycles(), None);
        assert!(SiteTelemetry::default().is_empty());
    }

    /// Regression: a site patched before its first trap (statically
    /// pre-patched) used to report a latency of `Some(0)` via
    /// `saturating_sub`, indistinguishable from a genuinely instant fix.
    #[test]
    fn prepatched_site_has_no_discovery_latency() {
        let s = SiteTelemetry {
            first_trap_cycle: Some(1_400),
            patch_cycle: Some(1_000),
            ..SiteTelemetry::default()
        };
        assert_eq!(s.discovery_to_fix_cycles(), None);
        // Same-cycle discovery and fix is genuinely zero latency.
        let z = SiteTelemetry {
            first_trap_cycle: Some(1_000),
            patch_cycle: Some(1_000),
            ..SiteTelemetry::default()
        };
        assert_eq!(z.discovery_to_fix_cycles(), Some(0));
    }

    #[test]
    fn merge_adds_counters_and_keeps_earliest_cycles() {
        let mut a = SiteTelemetry {
            traps: 2,
            patches: 1,
            first_trap_cycle: Some(500),
            patch_cycle: None,
            cycles_attributed: 100,
            execs: 10,
            mdas: 4,
            ..SiteTelemetry::default()
        };
        let b = SiteTelemetry {
            traps: 3,
            os_fixups: 7,
            first_trap_cycle: Some(300),
            patch_cycle: Some(900),
            cycles_attributed: 50,
            execs: 5,
            mdas: 5,
            ..SiteTelemetry::default()
        };
        a.merge(&b);
        assert_eq!(a.traps, 5);
        assert_eq!(a.os_fixups, 7);
        assert_eq!(a.patches, 1);
        assert_eq!(a.first_trap_cycle, Some(300));
        assert_eq!(a.patch_cycle, Some(900));
        assert_eq!(a.cycles_attributed, 150);
        assert_eq!(a.execs, 15);
        assert_eq!(a.mdas, 9);
    }
}
