//! Cross-run trace diffing: Table III as a data structure.
//!
//! Two traces of the *same workload* under different MDA strategies (or
//! engine knobs) align naturally by guest PC — the kernel image is
//! identical, so site 0x40 in run A is the same instruction as site 0x40
//! in run B — and by timeline bucket when the two runs used the same
//! bucket width. [`diff`] produces per-site trap/fixup/patch deltas, a
//! bucket-by-bucket trap delta series, and the pair of
//! [`ConvergenceVerdict`]s, which together answer the paper's central
//! question in one comparison: did the adaptive mechanism trap less and
//! converge where the profiling-based one kept trapping?
//!
//! Sign convention: every delta is `b - a` ("how much more run B did").
//! Diffing an exception-handling run as `a` against a dynamic-profiling
//! run as `b` therefore yields positive trap deltas at under-profiled
//! sites — the direction the paper predicts.

use crate::scan::ScannedTrace;
use crate::timeline::ConvergenceVerdict;

/// Per-site comparison row: one guest PC present in either run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteDelta {
    /// The guest PC both runs are aligned on.
    pub pc: u32,
    /// Trap count delta (`b - a`).
    pub traps: i64,
    /// OS-fixup delta (`b - a`) — the per-occurrence cost signature.
    pub os_fixups: i64,
    /// Patch + rearrangement delta (`b - a`) — the one-time-fix signature.
    pub patches: i64,
    /// Attributed-cycles delta (`b - a`).
    pub cycles_attributed: i64,
    /// Whether the site exists in run A / run B (a site missing from one
    /// run is itself signal: the other strategy discovered it).
    pub in_a: bool,
    /// See `in_a`.
    pub in_b: bool,
}

impl SiteDelta {
    /// Whether the two runs disagree on anything at this site.
    pub fn is_changed(&self) -> bool {
        self.traps != 0 || self.os_fixups != 0 || self.patches != 0 || self.cycles_attributed != 0
    }
}

/// The comparison of two scanned traces.
#[derive(Debug, Clone)]
pub struct TraceDiff {
    /// One row per guest PC in the union of both site tables, PC order.
    pub sites: Vec<SiteDelta>,
    /// Per-bucket trap delta (`b - a`), when both runs share a bucket
    /// width; `None` when the widths differ (buckets don't align).
    pub bucket_traps: Option<Vec<i64>>,
    /// The shared bucket width, when bucket deltas are present.
    pub bucket_cycles: Option<u64>,
    /// Run A's trap-rate verdict.
    pub verdict_a: ConvergenceVerdict,
    /// Run B's trap-rate verdict.
    pub verdict_b: ConvergenceVerdict,
    /// Total trap delta across all sites (`b - a`).
    pub total_traps: i64,
    /// Total attributed-cycles delta (`b - a`).
    pub total_cycles: i64,
}

impl TraceDiff {
    /// Whether the two runs reach different convergence verdicts — e.g.
    /// EH converged where dynamic profiling never patched.
    pub fn verdict_changed(&self) -> bool {
        self.verdict_a != self.verdict_b
    }

    /// Rows where the runs actually disagree, PC order.
    pub fn changed_sites(&self) -> impl Iterator<Item = &SiteDelta> {
        self.sites.iter().filter(|s| s.is_changed())
    }
}

/// Diffs two scanned traces of the same workload. All deltas are
/// `b - a`; alignment is by guest PC (site table) and by bucket index
/// (timelines, only when the bucket widths match).
pub fn diff(a: &ScannedTrace, b: &ScannedTrace) -> TraceDiff {
    let d = |x: u64, y: u64| y as i64 - x as i64;
    let mut pcs: Vec<u32> = a.sites.keys().chain(b.sites.keys()).copied().collect();
    pcs.sort_unstable();
    pcs.dedup();

    let sites: Vec<SiteDelta> = pcs
        .into_iter()
        .map(|pc| {
            let sa = a.sites.get(&pc).copied().unwrap_or_default();
            let sb = b.sites.get(&pc).copied().unwrap_or_default();
            SiteDelta {
                pc,
                traps: d(sa.traps, sb.traps),
                os_fixups: d(sa.os_fixups, sb.os_fixups),
                patches: d(
                    sa.patches + sa.rearrangements,
                    sb.patches + sb.rearrangements,
                ),
                cycles_attributed: d(sa.cycles_attributed, sb.cycles_attributed),
                in_a: a.sites.contains_key(&pc),
                in_b: b.sites.contains_key(&pc),
            }
        })
        .collect();

    let aligned = a.timeline.bucket_cycles() == b.timeline.bucket_cycles();
    let bucket_traps = aligned.then(|| {
        let (ta, tb) = (a.timeline.traps(), b.timeline.traps());
        (0..ta.len().max(tb.len()))
            .map(|i| {
                d(
                    ta.get(i).copied().unwrap_or(0),
                    tb.get(i).copied().unwrap_or(0),
                )
            })
            .collect()
    });

    TraceDiff {
        total_traps: sites.iter().map(|s| s.traps).sum(),
        total_cycles: sites.iter().map(|s| s.cycles_attributed).sum(),
        bucket_cycles: aligned.then(|| a.timeline.bucket_cycles()),
        bucket_traps,
        verdict_a: a.timeline.verdict(),
        verdict_b: b.timeline.verdict(),
        sites,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{jsonl, TraceConfig, TraceEvent, Tracer};

    fn scan_of(t: &Tracer) -> ScannedTrace {
        ScannedTrace::scan(&jsonl::to_string(t))
    }

    fn tracer() -> Tracer {
        Tracer::new(&TraceConfig::default().with_bucket_cycles(100))
    }

    #[test]
    fn aligns_by_pc_and_signs_deltas_b_minus_a() {
        // Run A (EH-like): one trap at 0x40, then a patch — done.
        let mut a = tracer();
        a.record(
            10,
            TraceEvent::Trap {
                site_pc: 0x40,
                slot: 0,
                cycles: 1000,
            },
        );
        a.record(
            20,
            TraceEvent::EhPatch {
                site_pc: 0x40,
                slot: 0,
                cycles: 334,
            },
        );
        // Run B (dynamic-profiling-like): traps at 0x40 forever, plus a
        // site 0x80 run A never touched.
        let mut b = tracer();
        for i in 0..5u64 {
            b.record(
                10 + i * 50,
                TraceEvent::Trap {
                    site_pc: 0x40,
                    slot: 0,
                    cycles: 1000,
                },
            );
            b.record(
                12 + i * 50,
                TraceEvent::OsFixup {
                    site_pc: 0x40,
                    cycles: 500,
                },
            );
        }
        b.record(
            400,
            TraceEvent::Trap {
                site_pc: 0x80,
                slot: 0,
                cycles: 1000,
            },
        );

        let delta = diff(&scan_of(&a), &scan_of(&b));
        assert_eq!(delta.sites.len(), 2, "union of PCs");
        let s40 = &delta.sites[0];
        assert_eq!(s40.pc, 0x40);
        assert_eq!(s40.traps, 4, "B trapped 4 more times at the shared site");
        assert_eq!(s40.os_fixups, 5);
        assert_eq!(s40.patches, -1, "A patched, B never did");
        assert!(s40.in_a && s40.in_b);
        let s80 = &delta.sites[1];
        assert!(!s80.in_a && s80.in_b, "B-only site is flagged");
        assert_eq!(delta.total_traps, 5);
        assert!(delta.total_cycles > 0);

        // Verdicts: A converged, B never patched — the paper's contrast.
        assert_eq!(delta.verdict_a, ConvergenceVerdict::Converged);
        assert_eq!(delta.verdict_b, ConvergenceVerdict::NoPatches);
        assert!(delta.verdict_changed());
        assert_eq!(delta.changed_sites().count(), 2);

        // Bucket alignment: same width, so the trap series diffs per
        // bucket; A's lone trap is in bucket 0.
        let buckets = delta.bucket_traps.as_ref().unwrap();
        assert_eq!(delta.bucket_cycles, Some(100));
        assert_eq!(buckets[0], 1, "B trapped twice in bucket 0, A once");
        assert!(buckets[1..].iter().all(|&d| d >= 0));
    }

    #[test]
    fn mismatched_bucket_widths_skip_bucket_deltas() {
        let a = tracer();
        let b = Tracer::new(&TraceConfig::default().with_bucket_cycles(200));
        let delta = diff(&scan_of(&a), &scan_of(&b));
        assert!(delta.bucket_traps.is_none());
        assert_eq!(delta.bucket_cycles, None);
        assert!(delta.sites.is_empty());
    }

    #[test]
    fn identical_traces_diff_to_zero() {
        let mut a = tracer();
        a.record(
            10,
            TraceEvent::Trap {
                site_pc: 0x40,
                slot: 0,
                cycles: 1000,
            },
        );
        let delta = diff(&scan_of(&a), &scan_of(&a));
        assert_eq!(delta.total_traps, 0);
        assert_eq!(delta.changed_sites().count(), 0);
        assert!(!delta.verdict_changed());
        assert!(delta.bucket_traps.unwrap().iter().all(|&d| d == 0));
    }
}
