//! JSONL sink and line-scanning reader for traces.
//!
//! One self-describing JSON object per line, in a fixed order: a `meta`
//! header, the per-site table (ordered by guest PC), the timeline buckets
//! (ordered by index), then the retained events (oldest first). The format
//! is hand-rolled — no serde in-tree — and flat enough that the scanning
//! helpers below ([`u64_field`], [`str_field`]) read it back without a
//! JSON parser, which is what the integration tests and `trace_report` do.

use crate::{TraceEvent, TraceRecord, Tracer};
use std::fmt::Write as _;
use std::io;

/// Schema tag written in the `meta` line.
pub const SCHEMA: &str = "bridge-trace/1";

/// Serializes the tracer to JSONL.
pub fn to_string(t: &Tracer) -> String {
    let mut out = String::new();
    let tl = t.timeline();
    let _ = writeln!(
        out,
        "{{\"type\":\"meta\",\"schema\":\"{SCHEMA}\",\"bucket_cycles\":{},\"buckets\":{},\
         \"truncated\":{},\"folded_traps\":{},\"sites\":{},\"ring_events\":{},\"dropped\":{}}}",
        tl.bucket_cycles(),
        tl.active_buckets(),
        tl.truncated(),
        tl.folded_traps(),
        t.sites().count(),
        t.event_count(),
        t.dropped(),
    );
    for (pc, s) in t.sites() {
        let _ = writeln!(out, "{{\"type\":\"site\",\"pc\":{pc},{}}}", site_body(s));
    }
    let buckets = tl.active_buckets();
    for i in 0..buckets {
        let _ = writeln!(
            out,
            "{{\"type\":\"bucket\",\"index\":{i},\"traps\":{},\"monitor_exits\":{},\
             \"patches\":{},\"guest_insns\":{}}}",
            at(tl.traps(), i),
            at(tl.monitor_exits(), i),
            at(tl.patches(), i),
            at(tl.guest_insns(), i),
        );
    }
    for rec in t.events() {
        push_event_line(&mut out, rec);
    }
    out
}

/// One `event` JSONL line (newline-terminated) for a single record — the
/// shared layout between the whole-tracer serializer above and the
/// incremental streaming sink ([`crate::sink::StreamingJsonl`]).
pub fn event_line(rec: &TraceRecord) -> String {
    let mut out = String::with_capacity(96);
    push_event_line(&mut out, rec);
    out
}

/// Appends one `event` line to `out` without touching the formatting
/// machinery or allocating. This is the hot path of full-fidelity
/// streaming — the sink serializes every ring-evicted record through it,
/// so it must cost nanoseconds, not a `format!` call.
pub fn push_event_line(out: &mut String, rec: &TraceRecord) {
    out.push_str("{\"type\":\"event\",\"cycle\":");
    push_u64(out, rec.cycle);
    out.push_str(",\"kind\":\"");
    out.push_str(rec.event.kind());
    out.push_str("\",\"pc\":");
    match rec.event.guest_pc() {
        Some(pc) => push_u64(out, u64::from(pc)),
        None => out.push_str("null"),
    }
    match rec.event {
        TraceEvent::Trap { cycles, slot, .. } | TraceEvent::EhPatch { cycles, slot, .. } => {
            out.push_str(",\"slot\":");
            push_u64(out, u64::from(slot));
            out.push_str(",\"cost\":");
            push_u64(out, cycles);
        }
        TraceEvent::OsFixup { cycles, .. } => {
            out.push_str(",\"cost\":");
            push_u64(out, cycles);
        }
        TraceEvent::Rearrangement {
            block_pc, cycles, ..
        } => {
            out.push_str(",\"block\":");
            push_u64(out, u64::from(block_pc));
            out.push_str(",\"cost\":");
            push_u64(out, cycles);
        }
        TraceEvent::InCacheHits { ibtc, ras } => {
            out.push_str(",\"ibtc\":");
            push_u64(out, ibtc);
            out.push_str(",\"ras\":");
            push_u64(out, ras);
        }
        TraceEvent::ChainBackpatch { target_pc, .. } => {
            out.push_str(",\"target\":");
            push_u64(out, u64::from(target_pc));
        }
        TraceEvent::CacheFlush { blocks } | TraceEvent::ImageLoad { blocks } => {
            out.push_str(",\"blocks\":");
            push_u64(out, blocks);
        }
        TraceEvent::ImageReject { code } => {
            out.push_str(",\"code\":");
            push_u64(out, u64::from(code));
        }
        TraceEvent::EdgeAdmit { tenant, id } => {
            out.push_str(",\"tenant\":");
            push_u64(out, u64::from(tenant));
            out.push_str(",\"id\":");
            push_u64(out, id);
        }
        TraceEvent::EdgeShed { tenant, id, code } => {
            out.push_str(",\"tenant\":");
            push_u64(out, u64::from(tenant));
            out.push_str(",\"id\":");
            push_u64(out, id);
            out.push_str(",\"code\":");
            push_u64(out, u64::from(code));
        }
        TraceEvent::EdgeDeadline {
            tenant,
            id,
            waited_us,
        } => {
            out.push_str(",\"tenant\":");
            push_u64(out, u64::from(tenant));
            out.push_str(",\"id\":");
            push_u64(out, id);
            out.push_str(",\"waited_us\":");
            push_u64(out, waited_us);
        }
        _ => {}
    }
    out.push_str("}\n");
}

/// Appends `v` in decimal. u64::MAX is 20 digits, so the stack buffer
/// always fits.
fn push_u64(out: &mut String, mut v: u64) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    out.push_str(std::str::from_utf8(&buf[i..]).expect("decimal digits are ASCII"));
}

/// Writes the tracer as JSONL to `w`.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write<W: io::Write>(t: &Tracer, w: &mut W) -> io::Result<()> {
    w.write_all(to_string(t).as_bytes())
}

/// The shared field tail of a site line (everything after the key
/// fields), used by both the per-run sink above and the merged
/// multi-guest table ([`crate::merge::MergedSiteTable::to_jsonl`]) so
/// readers scan one layout.
pub(crate) fn site_body(s: &crate::SiteTelemetry) -> String {
    format!(
        "\"traps\":{},\"os_fixups\":{},\"patches\":{},\
         \"rearrangements\":{},\"reversions\":{},\"first_trap_cycle\":{},\
         \"patch_cycle\":{},\"cycles_attributed\":{},\"execs\":{},\"mdas\":{}",
        s.traps,
        s.os_fixups,
        s.patches,
        s.rearrangements,
        s.reversions,
        opt(s.first_trap_cycle),
        opt(s.patch_cycle),
        s.cycles_attributed,
        s.execs,
        s.mdas,
    )
}

fn opt(v: Option<u64>) -> String {
    match v {
        Some(v) => v.to_string(),
        None => "null".to_string(),
    }
}

fn at(v: &[u64], i: usize) -> u64 {
    v.get(i).copied().unwrap_or(0)
}

/// Scans a JSONL line for `"key":<number>`; `null` and absent both yield
/// `None`.
pub fn u64_field(line: &str, key: &str) -> Option<u64> {
    let raw = raw_field(line, key)?;
    raw.parse::<u64>().ok()
}

/// Scans a JSONL line for `"key":"value"`, returning the unquoted value.
pub fn str_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let raw = raw_field(line, key)?;
    raw.strip_prefix('"')?.strip_suffix('"')
}

/// The `type` tag of a JSONL line.
pub fn line_type(line: &str) -> Option<&str> {
    str_field(line, "type")
}

/// Scans a JSONL line for `"key":` and returns the raw value token —
/// quoted strings keep their quotes, numbers and `null`/booleans come back
/// verbatim. The building block under [`u64_field`] / [`str_field`],
/// exposed for scanners that need to distinguish `null` from absent.
pub fn raw_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let at = line.find(&needle)? + needle.len();
    let rest = &line[at..];
    let end = if let Some(quoted) = rest.strip_prefix('"') {
        quoted.find('"').map(|i| i + 2)?
    } else {
        rest.find([',', '}']).unwrap_or(rest.len())
    };
    Some(rest[..end].trim())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceConfig;

    fn sample() -> Tracer {
        let mut t = Tracer::new(
            &TraceConfig::default()
                .with_bucket_cycles(100)
                .with_ring_capacity(8),
        );
        t.record(
            10,
            TraceEvent::Trap {
                site_pc: 0x40,
                slot: 0,
                cycles: 1000,
            },
        );
        t.record(
            20,
            TraceEvent::EhPatch {
                site_pc: 0x40,
                slot: 0,
                cycles: 334,
            },
        );
        t.record(150, TraceEvent::MonitorExit { next_pc: 0x44 });
        t.record(160, TraceEvent::InCacheHits { ibtc: 5, ras: 2 });
        t.progress(180, 400);
        t.merge_profile_site(0x40, 12, 7);
        t
    }

    #[test]
    fn roundtrip_via_scanners() {
        let s = to_string(&sample());
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(line_type(lines[0]), Some("meta"));
        assert_eq!(str_field(lines[0], "schema"), Some(SCHEMA));
        assert_eq!(u64_field(lines[0], "bucket_cycles"), Some(100));
        assert_eq!(u64_field(lines[0], "sites"), Some(1));

        let site = lines.iter().find(|l| line_type(l) == Some("site")).unwrap();
        assert_eq!(u64_field(site, "pc"), Some(0x40));
        assert_eq!(u64_field(site, "traps"), Some(1));
        assert_eq!(u64_field(site, "patch_cycle"), Some(20));
        assert_eq!(u64_field(site, "execs"), Some(12));
        assert_eq!(u64_field(site, "mdas"), Some(7));

        let buckets: Vec<&&str> = lines
            .iter()
            .filter(|l| line_type(l) == Some("bucket"))
            .collect();
        assert_eq!(buckets.len(), 2);
        assert_eq!(u64_field(buckets[0], "traps"), Some(1));
        assert_eq!(u64_field(buckets[0], "patches"), Some(1));
        assert_eq!(u64_field(buckets[1], "monitor_exits"), Some(1));
        assert_eq!(u64_field(buckets[1], "guest_insns"), Some(400));

        let events: Vec<&&str> = lines
            .iter()
            .filter(|l| line_type(l) == Some("event"))
            .collect();
        assert_eq!(events.len(), 4);
        assert_eq!(str_field(events[0], "kind"), Some("trap"));
        assert_eq!(u64_field(events[0], "cost"), Some(1000));
        assert_eq!(str_field(events[3], "kind"), Some("in_cache_hits"));
        assert_eq!(u64_field(events[3], "ibtc"), Some(5));
        assert_eq!(u64_field(events[3], "pc"), None, "no attribution is null");
    }

    #[test]
    fn serialization_is_deterministic() {
        assert_eq!(to_string(&sample()), to_string(&sample()));
    }

    #[test]
    fn write_matches_to_string() {
        let t = sample();
        let mut buf = Vec::new();
        write(&t, &mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), to_string(&t));
    }
}
