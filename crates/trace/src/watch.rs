//! Per-site re-divergence watch: continuous online classification of
//! MDA sites from the event stream.
//!
//! The paper's temporal argument (Table III / Figure 16) is that a site
//! which looked aligned during profiling can turn misaligned in steady
//! state — and only *continuous* per-site observation catches the turn.
//! [`SiteWatch`] consumes the tracer's event stream incrementally (via
//! the existing [`TraceSink`] path — no second ring) and folds each
//! site's trap/fixup/patch activity into rolling windows of
//! `window_cycles` simulated cycles. Closing a window advances a small
//! per-site verdict machine:
//!
//! - a window whose `traps + fixups` reach
//!   [`WatchConfig::rediverge_traps`] with no patch activity means the
//!   installed strategy is paying per-occurrence cost again — the site
//!   is [`SiteVerdict::Rediverged`], and the transition carries the
//!   closed window as [`WindowEvidence`];
//! - a window with patch activity (EH patch, rearrangement) is a
//!   hand-off in progress: the verdict holds and the quiet streak
//!   restarts;
//! - after any patch has landed, [`WatchConfig::quiet_windows`]
//!   consecutive windows with no site activity (gap windows count)
//!   mean the strategy absorbed the site: [`SiteVerdict::Converged`];
//! - low non-zero activity holds the current verdict — the watch never
//!   flaps on a single stray trap.
//!
//! Verdict *changes* are recorded as typed [`SiteTransition`]s — the
//! detection signal the closed-loop auto-tuning roadmap item needs.
//! Everything is keyed by guest PC and driven by simulated cycles, so a
//! watch over a run is a pure function of the event stream: replaying a
//! streamed JSONL trace through [`SiteWatch::observe_kind`] offline
//! (`trace_report --watch`) reproduces the live verdicts exactly, and
//! watching a run never charges simulated cycles.

use crate::sink::TraceSink;
use crate::{TraceEvent, TraceRecord, Tracer};
use std::collections::BTreeMap;
use std::io;
use std::sync::{Arc, Mutex};

/// Rolling-window parameters for a [`SiteWatch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchConfig {
    /// Window length in simulated cycles.
    pub window_cycles: u64,
    /// `traps + fixups` within one window that flag a site
    /// [`SiteVerdict::Rediverged`] (when the window saw no patch).
    pub rediverge_traps: u64,
    /// Consecutive quiet windows after a patch that flag a site
    /// [`SiteVerdict::Converged`].
    pub quiet_windows: u64,
    /// Bound on tracked sites; activity at further PCs is counted in
    /// [`SiteWatch::ignored_sites`] but not classified.
    pub max_sites: usize,
}

impl Default for WatchConfig {
    fn default() -> WatchConfig {
        WatchConfig {
            window_cycles: 1 << 15,
            rediverge_traps: 4,
            quiet_windows: 2,
            max_sites: 256,
        }
    }
}

impl WatchConfig {
    /// Builder-style: set the window length (min 1 cycle).
    pub fn with_window_cycles(mut self, cycles: u64) -> WatchConfig {
        self.window_cycles = cycles.max(1);
        self
    }

    /// Builder-style: set the re-divergence trap threshold (min 1).
    pub fn with_rediverge_traps(mut self, traps: u64) -> WatchConfig {
        self.rediverge_traps = traps.max(1);
        self
    }

    /// Builder-style: set the convergence quiet-window count (min 1).
    pub fn with_quiet_windows(mut self, windows: u64) -> WatchConfig {
        self.quiet_windows = windows.max(1);
        self
    }

    /// Builder-style: set the tracked-site bound (min 1).
    pub fn with_max_sites(mut self, sites: usize) -> WatchConfig {
        self.max_sites = sites.max(1);
        self
    }
}

/// Online classification of one site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteVerdict {
    /// Not enough window evidence either way (every site starts here).
    Indeterminate,
    /// A patch landed and the site has been quiet since — the installed
    /// strategy absorbed it.
    Converged,
    /// The site is paying per-occurrence trap cost again in steady
    /// state — the profiling-time decision no longer holds.
    Rediverged,
}

impl SiteVerdict {
    /// Stable lowercase tag (JSON, dashboard).
    pub fn tag(self) -> &'static str {
        match self {
            SiteVerdict::Indeterminate => "indeterminate",
            SiteVerdict::Converged => "converged",
            SiteVerdict::Rediverged => "rediverged",
        }
    }
}

/// The closed window that triggered a verdict transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowEvidence {
    /// First cycle of the closed window.
    pub window_start_cycle: u64,
    /// Window length in cycles.
    pub window_cycles: u64,
    /// Traps delivered for the site within the window.
    pub traps: u64,
    /// OS-style fixups within the window.
    pub fixups: u64,
    /// Patch-class events (EH patch, rearrangement) within the window.
    pub patches: u64,
    /// `traps + fixups` scaled to events per Mcycle.
    pub rate_per_mcycle: u64,
}

/// One verdict change at one site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteTransition {
    /// Guest PC of the site.
    pub pc: u32,
    /// The verdict entered.
    pub verdict: SiteVerdict,
    /// The window whose close produced the transition.
    pub evidence: WindowEvidence,
}

/// Cumulative per-site totals alongside the live verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteWatchStats {
    /// Current verdict.
    pub verdict: SiteVerdict,
    /// Traps ever observed at the site.
    pub traps: u64,
    /// Fixups ever observed.
    pub fixups: u64,
    /// Patch-class events ever observed.
    pub patches: u64,
    /// Times the site entered [`SiteVerdict::Rediverged`].
    pub rediverge_count: u64,
}

#[derive(Debug, Clone)]
struct SiteState {
    // Open-window accumulators.
    cur_window: u64,
    w_traps: u64,
    w_fixups: u64,
    w_patches: u64,
    // Verdict machine.
    verdict: SiteVerdict,
    patched_ever: bool,
    quiet_streak: u64,
    // Cumulative totals.
    traps: u64,
    fixups: u64,
    patches: u64,
    rediverge_count: u64,
}

impl SiteState {
    fn new(window: u64) -> SiteState {
        SiteState {
            cur_window: window,
            w_traps: 0,
            w_fixups: 0,
            w_patches: 0,
            verdict: SiteVerdict::Indeterminate,
            patched_ever: false,
            quiet_streak: 0,
            traps: 0,
            fixups: 0,
            patches: 0,
            rediverge_count: 0,
        }
    }
}

/// Rolling per-PC trap-rate windows over the event stream, with typed
/// verdict transitions. Feed it live via [`SiteWatch::observe`] (or as
/// a [`WatchSink`] on the tracer's sink path), or replay a JSONL trace
/// through [`SiteWatch::observe_kind`]; both produce identical
/// verdicts for the same stream.
#[derive(Debug, Clone)]
pub struct SiteWatch {
    cfg: WatchConfig,
    sites: BTreeMap<u32, SiteState>,
    transitions: Vec<SiteTransition>,
    last_cycle: u64,
    events: u64,
    windows_closed: u64,
    ignored_sites: u64,
    sealed: bool,
}

impl SiteWatch {
    /// An empty watch.
    pub fn new(cfg: WatchConfig) -> SiteWatch {
        SiteWatch {
            cfg,
            sites: BTreeMap::new(),
            transitions: Vec::new(),
            last_cycle: 0,
            events: 0,
            windows_closed: 0,
            ignored_sites: 0,
            sealed: false,
        }
    }

    /// The configuration the watch was built with.
    pub fn config(&self) -> WatchConfig {
        self.cfg
    }

    /// Feeds one live event. Events without site relevance (dispatch,
    /// cache traffic, edge admission) are ignored; cycles still drive
    /// window closes via [`SiteWatch::advance`] at the call site.
    pub fn observe(&mut self, cycle: u64, event: &TraceEvent) {
        let (kind, pc) = (event.kind(), event.guest_pc());
        self.observe_kind(cycle, kind, pc);
    }

    /// Kind-tag entry point shared by live observation and offline
    /// JSONL replay (`kind` is the event line's `kind` field). Unknown
    /// kinds and site-less events are ignored, so replaying a stream
    /// with future event kinds degrades gracefully.
    pub fn observe_kind(&mut self, cycle: u64, kind: &str, pc: Option<u32>) {
        if self.sealed {
            return;
        }
        self.last_cycle = self.last_cycle.max(cycle);
        let class = match kind {
            "trap" => 0u8,
            "os_fixup" => 1,
            "patch" | "rearrange" => 2,
            _ => return,
        };
        let Some(pc) = pc else { return };
        self.events += 1;
        let window = cycle / self.cfg.window_cycles;
        if !self.sites.contains_key(&pc) {
            if self.sites.len() >= self.cfg.max_sites {
                self.ignored_sites += 1;
                return;
            }
            self.sites.insert(pc, SiteState::new(window));
        }
        // Close any windows the stream skipped past for this site, then
        // account the event into the (possibly fresh) open window.
        Self::roll_to(
            &self.cfg,
            &mut self.transitions,
            &mut self.windows_closed,
            pc,
            self.sites.get_mut(&pc).expect("just ensured"),
            window,
        );
        let s = self.sites.get_mut(&pc).expect("just ensured");
        match class {
            0 => {
                s.w_traps += 1;
                s.traps += 1;
            }
            1 => {
                s.w_fixups += 1;
                s.fixups += 1;
            }
            _ => {
                s.w_patches += 1;
                s.patches += 1;
            }
        }
    }

    /// Advances simulated time without an event: closes every site
    /// window that `cycle` has moved past. Call this at engine progress
    /// points so quiet sites converge even when nothing fires.
    pub fn advance(&mut self, cycle: u64) {
        if self.sealed {
            return;
        }
        self.last_cycle = self.last_cycle.max(cycle);
        let window = cycle / self.cfg.window_cycles;
        for (&pc, s) in self.sites.iter_mut() {
            Self::roll_to(
                &self.cfg,
                &mut self.transitions,
                &mut self.windows_closed,
                pc,
                s,
                window,
            );
        }
    }

    /// Closes every open window (treating the final partial window as
    /// complete) and freezes the watch. Idempotent; further observes
    /// are ignored.
    pub fn seal(&mut self) {
        if self.sealed {
            return;
        }
        let final_window = self.last_cycle / self.cfg.window_cycles;
        for (&pc, s) in self.sites.iter_mut() {
            // Roll to the final window, then close it too.
            Self::roll_to(
                &self.cfg,
                &mut self.transitions,
                &mut self.windows_closed,
                pc,
                s,
                final_window,
            );
            Self::close_one(
                &self.cfg,
                &mut self.transitions,
                &mut self.windows_closed,
                pc,
                s,
            );
            s.cur_window += 1;
        }
        self.sealed = true;
    }

    /// Whether [`SiteWatch::seal`] has run.
    pub fn is_sealed(&self) -> bool {
        self.sealed
    }

    /// Closes site windows up to (not including) `target`, bulk-settling
    /// fully quiet gap windows.
    fn roll_to(
        cfg: &WatchConfig,
        transitions: &mut Vec<SiteTransition>,
        windows_closed: &mut u64,
        pc: u32,
        s: &mut SiteState,
        target: u64,
    ) {
        if target <= s.cur_window {
            return;
        }
        Self::close_one(cfg, transitions, windows_closed, pc, s);
        let gap = target - s.cur_window - 1;
        if gap > 0 {
            // Gap windows are quiet by construction: settle the streak
            // in bulk and place the convergence crossing precisely.
            *windows_closed += gap;
            let before = s.quiet_streak;
            s.quiet_streak = s.quiet_streak.saturating_add(gap);
            if s.patched_ever
                && s.verdict != SiteVerdict::Converged
                && s.quiet_streak >= cfg.quiet_windows
            {
                let crossing = s.cur_window + 1 + (cfg.quiet_windows - before - 1);
                s.verdict = SiteVerdict::Converged;
                transitions.push(SiteTransition {
                    pc,
                    verdict: SiteVerdict::Converged,
                    evidence: WindowEvidence {
                        window_start_cycle: crossing * cfg.window_cycles,
                        window_cycles: cfg.window_cycles,
                        traps: 0,
                        fixups: 0,
                        patches: 0,
                        rate_per_mcycle: 0,
                    },
                });
            }
        }
        s.cur_window = target;
    }

    /// Closes the site's current open window and steps the verdict
    /// machine with its counts.
    fn close_one(
        cfg: &WatchConfig,
        transitions: &mut Vec<SiteTransition>,
        windows_closed: &mut u64,
        pc: u32,
        s: &mut SiteState,
    ) {
        *windows_closed += 1;
        let (t, f, p) = (s.w_traps, s.w_fixups, s.w_patches);
        s.w_traps = 0;
        s.w_fixups = 0;
        s.w_patches = 0;
        let evidence = WindowEvidence {
            window_start_cycle: s.cur_window * cfg.window_cycles,
            window_cycles: cfg.window_cycles,
            traps: t,
            fixups: f,
            patches: p,
            rate_per_mcycle: ((t + f) as u128 * 1_000_000 / cfg.window_cycles as u128) as u64,
        };
        if p > 0 {
            // Hand-off in progress: the strategy is absorbing the site.
            s.patched_ever = true;
            s.quiet_streak = 0;
        } else if t + f >= cfg.rediverge_traps {
            s.quiet_streak = 0;
            if s.verdict != SiteVerdict::Rediverged {
                s.verdict = SiteVerdict::Rediverged;
                s.rediverge_count += 1;
                transitions.push(SiteTransition {
                    pc,
                    verdict: SiteVerdict::Rediverged,
                    evidence,
                });
            }
        } else if t + f == 0 {
            s.quiet_streak += 1;
            if s.patched_ever
                && s.verdict != SiteVerdict::Converged
                && s.quiet_streak >= cfg.quiet_windows
            {
                s.verdict = SiteVerdict::Converged;
                transitions.push(SiteTransition {
                    pc,
                    verdict: SiteVerdict::Converged,
                    evidence,
                });
            }
        } else {
            // Low non-zero activity: hold the verdict, break the streak.
            s.quiet_streak = 0;
        }
    }

    /// Current verdict for one site.
    pub fn verdict(&self, pc: u32) -> Option<SiteVerdict> {
        self.sites.get(&pc).map(|s| s.verdict)
    }

    /// Every tracked site with totals and verdict, PC-ordered.
    pub fn sites(&self) -> impl Iterator<Item = (u32, SiteWatchStats)> + '_ {
        self.sites.iter().map(|(&pc, s)| {
            (
                pc,
                SiteWatchStats {
                    verdict: s.verdict,
                    traps: s.traps,
                    fixups: s.fixups,
                    patches: s.patches,
                    rediverge_count: s.rediverge_count,
                },
            )
        })
    }

    /// All verdict transitions in stream order.
    pub fn transitions(&self) -> &[SiteTransition] {
        &self.transitions
    }

    /// Sites currently classified [`SiteVerdict::Rediverged`].
    pub fn rediverged_sites(&self) -> usize {
        self.sites
            .values()
            .filter(|s| s.verdict == SiteVerdict::Rediverged)
            .count()
    }

    /// Sites currently classified [`SiteVerdict::Converged`].
    pub fn converged_sites(&self) -> usize {
        self.sites
            .values()
            .filter(|s| s.verdict == SiteVerdict::Converged)
            .count()
    }

    /// Tracked sites.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// Site-relevant events observed.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Windows closed across all sites (gap windows included).
    pub fn windows_closed(&self) -> u64 {
        self.windows_closed
    }

    /// Events at PCs beyond the [`WatchConfig::max_sites`] bound.
    pub fn ignored_sites(&self) -> u64 {
        self.ignored_sites
    }

    /// Latest cycle the watch has seen.
    pub fn last_cycle(&self) -> u64 {
        self.last_cycle
    }

    /// Folds another watch's per-site totals and transitions into this
    /// one (fleet aggregation serve-side). Verdicts merge pessimistic:
    /// `Rediverged` beats `Converged` beats `Indeterminate`.
    pub fn merge(&mut self, other: &SiteWatch) {
        for (pc, stats) in other.sites() {
            if !self.sites.contains_key(&pc) && self.sites.len() >= self.cfg.max_sites {
                self.ignored_sites += 1;
                continue;
            }
            let s = self
                .sites
                .entry(pc)
                .or_insert_with(|| SiteState::new(other.last_cycle / self.cfg.window_cycles));
            s.traps += stats.traps;
            s.fixups += stats.fixups;
            s.patches += stats.patches;
            s.rediverge_count += stats.rediverge_count;
            let rank = |v: SiteVerdict| match v {
                SiteVerdict::Indeterminate => 0,
                SiteVerdict::Converged => 1,
                SiteVerdict::Rediverged => 2,
            };
            if rank(stats.verdict) > rank(s.verdict) {
                s.verdict = stats.verdict;
            }
        }
        self.transitions.extend_from_slice(&other.transitions);
        self.events += other.events;
        self.windows_closed += other.windows_closed;
        self.ignored_sites += other.ignored_sites;
        self.last_cycle = self.last_cycle.max(other.last_cycle);
    }
}

/// [`TraceSink`] adapter: feeds every record leaving the tracer into a
/// shared [`SiteWatch`] and seals it at finish — continuous per-site
/// classification on the existing sink path, no second ring.
pub struct WatchSink(pub Arc<Mutex<SiteWatch>>);

impl TraceSink for WatchSink {
    fn emit(&mut self, rec: &TraceRecord) -> io::Result<()> {
        self.0
            .lock()
            .expect("watch lock")
            .observe(rec.cycle, &rec.event);
        Ok(())
    }

    fn finish(&mut self, _tracer: &Tracer) -> io::Result<()> {
        self.0.lock().expect("watch lock").seal();
        Ok(())
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceConfig;

    fn cfg() -> WatchConfig {
        WatchConfig::default()
            .with_window_cycles(100)
            .with_rediverge_traps(4)
            .with_quiet_windows(2)
    }

    fn trap(pc: u32) -> TraceEvent {
        TraceEvent::Trap {
            site_pc: pc,
            slot: 0,
            cycles: 10,
        }
    }

    fn fixup(pc: u32) -> TraceEvent {
        TraceEvent::OsFixup {
            site_pc: pc,
            cycles: 20,
        }
    }

    fn patch(pc: u32) -> TraceEvent {
        TraceEvent::EhPatch {
            site_pc: pc,
            slot: 0,
            cycles: 30,
        }
    }

    /// The dynamic-profiling failure mode: a site quiet through the
    /// profiling window starts trapping per occurrence in steady state.
    /// The verdict lands within one window of the phase change.
    #[test]
    fn steady_state_trap_storm_rediverges_within_one_window() {
        let mut w = SiteWatch::new(cfg());
        // Window 0: profiling, site quiet (unrelated site translates).
        w.observe(10, &TraceEvent::BlockTranslated { guest_pc: 0x10 });
        // Window 1: the phase change — per-occurrence trap+fixup storm.
        for i in 0..4u64 {
            w.observe(100 + i * 10, &trap(0x40));
            w.observe(105 + i * 10, &fixup(0x40));
        }
        assert_eq!(w.verdict(0x40), Some(SiteVerdict::Indeterminate));
        // The window closes as cycle time moves past it.
        w.advance(200);
        assert_eq!(w.verdict(0x40), Some(SiteVerdict::Rediverged));
        let t = w.transitions();
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].pc, 0x40);
        assert_eq!(t[0].verdict, SiteVerdict::Rediverged);
        assert_eq!(t[0].evidence.window_start_cycle, 100);
        assert_eq!(t[0].evidence.traps, 4);
        assert_eq!(t[0].evidence.fixups, 4);
        assert_eq!(t[0].evidence.patches, 0);
        assert_eq!(t[0].evidence.rate_per_mcycle, 80_000, "8 per 100 cycles");
        assert_eq!(w.rediverged_sites(), 1);
    }

    /// The EH hand-off: one trap, one patch, then silence — the site
    /// converges after the configured quiet streak.
    #[test]
    fn patched_then_quiet_site_converges() {
        let mut w = SiteWatch::new(cfg());
        w.observe(10, &trap(0x40));
        w.observe(15, &patch(0x40));
        w.advance(120); // closes window 0: patched, hold
        assert_eq!(w.verdict(0x40), Some(SiteVerdict::Indeterminate));
        w.advance(220); // quiet window 1
        assert_eq!(w.verdict(0x40), Some(SiteVerdict::Indeterminate));
        w.advance(320); // quiet window 2 → streak reaches 2
        assert_eq!(w.verdict(0x40), Some(SiteVerdict::Converged));
        let t = w.transitions();
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].verdict, SiteVerdict::Converged);
        assert_eq!(w.converged_sites(), 1);
    }

    /// A long event gap counts as quiet windows in bulk, and the
    /// convergence crossing lands at the right window.
    #[test]
    fn gap_windows_count_toward_the_quiet_streak() {
        let mut w = SiteWatch::new(cfg());
        w.observe(10, &trap(0x40));
        w.observe(15, &patch(0x40));
        // Next event is 50 windows later: the gap alone converges it.
        w.observe(5010, &trap(0x40));
        assert_eq!(w.verdict(0x40), Some(SiteVerdict::Converged));
        let t = w.transitions();
        assert_eq!(t.len(), 1);
        // Patched window 0 closed, quiet windows 1 and 2 crossed the
        // streak threshold at window 2.
        assert_eq!(t[0].evidence.window_start_cycle, 200);
    }

    /// Re-divergence after convergence: the strategy hand-off story in
    /// both directions, and the rediverge counter tracks entries.
    #[test]
    fn converged_site_can_rediverge_again() {
        let mut w = SiteWatch::new(cfg());
        w.observe(10, &trap(0x40));
        w.observe(15, &patch(0x40));
        w.advance(320); // converged via two quiet windows
        assert_eq!(w.verdict(0x40), Some(SiteVerdict::Converged));
        for i in 0..5u64 {
            w.observe(400 + i, &trap(0x40));
        }
        w.advance(520);
        assert_eq!(w.verdict(0x40), Some(SiteVerdict::Rediverged));
        let stats: Vec<_> = w.sites().collect();
        assert_eq!(stats[0].1.rediverge_count, 1);
        assert_eq!(stats[0].1.traps, 6);
        assert_eq!(stats[0].1.patches, 1);
        assert_eq!(w.transitions().len(), 2);
    }

    /// One stray trap per window never flips a verdict (hysteresis).
    #[test]
    fn low_activity_holds_the_verdict() {
        let mut w = SiteWatch::new(cfg());
        for win in 0..10u64 {
            w.observe(win * 100 + 10, &trap(0x40));
        }
        w.seal();
        assert_eq!(w.verdict(0x40), Some(SiteVerdict::Indeterminate));
        assert!(w.transitions().is_empty());
    }

    /// Seal closes the final partial window so short runs still classify.
    #[test]
    fn seal_closes_the_partial_window() {
        let mut w = SiteWatch::new(cfg());
        for i in 0..6u64 {
            w.observe(10 + i, &trap(0x40));
        }
        assert_eq!(w.verdict(0x40), Some(SiteVerdict::Indeterminate));
        w.seal();
        assert_eq!(w.verdict(0x40), Some(SiteVerdict::Rediverged));
        assert!(w.is_sealed());
        // Sealed watches ignore further input.
        w.observe(1000, &patch(0x40));
        assert_eq!(w.events(), 6);
    }

    /// The site bound is enforced; overflow is counted, not classified.
    #[test]
    fn max_sites_bound_is_enforced() {
        let mut w = SiteWatch::new(cfg().with_max_sites(2));
        w.observe(10, &trap(0x40));
        w.observe(11, &trap(0x44));
        w.observe(12, &trap(0x48));
        w.observe(13, &trap(0x4c));
        assert_eq!(w.site_count(), 2);
        assert_eq!(w.ignored_sites(), 2);
        assert!(w.verdict(0x48).is_none());
    }

    /// Replaying kind tags (the JSONL path) matches live observation.
    #[test]
    fn kind_replay_matches_live_observation() {
        let mut live = SiteWatch::new(cfg());
        let mut replay = SiteWatch::new(cfg());
        let events: Vec<(u64, TraceEvent)> = (0..20u64)
            .map(|i| {
                let e = match i % 3 {
                    0 => trap(0x40 + (i as u32 % 2) * 4),
                    1 => fixup(0x40),
                    _ => patch(0x44),
                };
                (i * 37, e)
            })
            .collect();
        for (cycle, e) in &events {
            live.observe(*cycle, e);
            replay.observe_kind(*cycle, e.kind(), e.guest_pc());
        }
        live.seal();
        replay.seal();
        assert_eq!(live.transitions(), replay.transitions());
        assert_eq!(
            live.sites().collect::<Vec<_>>(),
            replay.sites().collect::<Vec<_>>()
        );
        // Unknown kinds are ignored, not fatal.
        let mut w = SiteWatch::new(cfg());
        w.observe_kind(10, "hologram", Some(0x40));
        assert_eq!(w.events(), 0);
    }

    /// The sink path: a tracer with a [`WatchSink`] feeds the watch on
    /// every ring eviction and the final drain, then seals it.
    #[test]
    fn watch_sink_rides_the_tracer_sink_path() {
        let watch = Arc::new(Mutex::new(SiteWatch::new(cfg())));
        let mut t = Tracer::new(
            &TraceConfig::default()
                .with_bucket_cycles(100)
                .with_ring_capacity(4),
        );
        assert!(t.set_sink(Box::new(WatchSink(Arc::clone(&watch)))));
        for i in 0..8u64 {
            t.record(100 + i * 5, trap(0x40));
        }
        t.record(400, patch(0x40));
        t.finish_sink().expect("sink attached").expect("no error");
        let w = watch.lock().unwrap();
        assert!(w.is_sealed());
        assert_eq!(w.events(), 9, "evictions + final drain, nothing lost");
        assert_eq!(w.verdict(0x40), Some(SiteVerdict::Rediverged));
    }

    /// Fleet merge folds totals and takes the pessimistic verdict.
    #[test]
    fn merge_is_pessimistic_and_additive() {
        let mut a = SiteWatch::new(cfg());
        a.observe(10, &trap(0x40));
        a.observe(15, &patch(0x40));
        a.advance(320);
        a.seal();
        assert_eq!(a.verdict(0x40), Some(SiteVerdict::Converged));

        let mut b = SiteWatch::new(cfg());
        for i in 0..5u64 {
            b.observe(100 + i, &trap(0x40));
            b.observe(200 + i, &trap(0x48));
        }
        b.seal();
        assert_eq!(b.verdict(0x40), Some(SiteVerdict::Rediverged));

        let mut fleet = SiteWatch::new(cfg());
        fleet.merge(&a);
        fleet.merge(&b);
        assert_eq!(fleet.verdict(0x40), Some(SiteVerdict::Rediverged));
        assert_eq!(fleet.verdict(0x48), Some(SiteVerdict::Rediverged));
        let stats: BTreeMap<u32, SiteWatchStats> = fleet.sites().collect();
        assert_eq!(stats[&0x40].traps, 6);
        assert_eq!(stats[&0x40].patches, 1);
        assert_eq!(fleet.transitions().len(), 3);
    }
}
