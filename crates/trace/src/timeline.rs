//! Phase timelines: fixed-width cycle-bucket histograms.
//!
//! Four series share one bucketing: misalignment traps, monitor exits,
//! patches (stub patches + rearrangements), and guest instructions
//! retired. Together they show the temporal behavior the paper argues
//! from — the adaptive mechanisms' trap rate decays to zero after the
//! last patch, while dynamic profiling's per-occurrence trap rate tracks
//! the workload forever.

/// The four-way classification of a run's trap-rate curve, shared by
/// `trace_report` and the cross-run diff so both render (and compare) the
/// same verdicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConvergenceVerdict {
    /// At least one patch happened and no trap follows the last patch
    /// bucket: the adaptive mechanisms' decay-to-zero signature.
    Converged,
    /// Patches happened but traps continued afterwards.
    NotConverged,
    /// Traps were folded past the end of a truncated timeline into the
    /// last-patch bucket; their ordering against the final patches is
    /// unknowable, so no claim is made.
    Indeterminate,
    /// No patch ever happened — nothing to converge *to* (Direct and the
    /// profiling-based mechanisms on fully-covered workloads).
    NoPatches,
}

impl ConvergenceVerdict {
    /// Stable lower-case label for reports and JSONL.
    pub fn label(&self) -> &'static str {
        match self {
            ConvergenceVerdict::Converged => "converged",
            ConvergenceVerdict::NotConverged => "not_converged",
            ConvergenceVerdict::Indeterminate => "indeterminate",
            ConvergenceVerdict::NoPatches => "no_patches",
        }
    }
}

/// Cycle-bucket histograms over one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Timeline {
    bucket_cycles: u64,
    max_buckets: usize,
    traps: Vec<u64>,
    monitor_exits: Vec<u64>,
    patches: Vec<u64>,
    guest_insns: Vec<u64>,
    truncated: bool,
    folded_traps: u64,
}

impl Timeline {
    /// Empty timeline with `bucket_cycles`-wide buckets, at most
    /// `max_buckets` of them.
    pub fn new(bucket_cycles: u64, max_buckets: usize) -> Timeline {
        Timeline {
            bucket_cycles: bucket_cycles.max(1),
            max_buckets,
            traps: Vec::new(),
            monitor_exits: Vec::new(),
            patches: Vec::new(),
            guest_insns: Vec::new(),
            truncated: false,
            folded_traps: 0,
        }
    }

    /// The bucket width in cycles.
    pub fn bucket_cycles(&self) -> u64 {
        self.bucket_cycles
    }

    /// Whether activity ran past the last bucket (and was folded into it).
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// Traps whose true cycle lies past the last bucket, folded into it.
    /// Their real position relative to the final patches is unknowable, so
    /// [`Timeline::trap_rate_converged`] refuses to count them as
    /// pre-patch.
    pub fn folded_traps(&self) -> u64 {
        self.folded_traps
    }

    /// The bucket index for `cycle`, clamped to the final bucket; the flag
    /// says whether the clamp fired (the count is folded).
    fn bucket_index(&mut self, cycle: u64) -> Option<(usize, bool)> {
        if self.max_buckets == 0 {
            return None;
        }
        let idx = (cycle / self.bucket_cycles) as usize;
        if idx >= self.max_buckets {
            self.truncated = true;
            Some((self.max_buckets - 1, true))
        } else {
            Some((idx, false))
        }
    }

    fn bump(&mut self, series: Series, cycle: u64, n: u64) {
        let Some((idx, folded)) = self.bucket_index(cycle) else {
            return;
        };
        if folded && matches!(series, Series::Traps) {
            self.folded_traps += n;
        }
        let v = match series {
            Series::Traps => &mut self.traps,
            Series::MonitorExits => &mut self.monitor_exits,
            Series::Patches => &mut self.patches,
            Series::GuestInsns => &mut self.guest_insns,
        };
        if v.len() <= idx {
            v.resize(idx + 1, 0);
        }
        v[idx] += n;
    }

    /// Counts one misalignment trap at `cycle`.
    pub fn bump_trap(&mut self, cycle: u64) {
        self.bump(Series::Traps, cycle, 1);
    }

    /// Counts one monitor exit at `cycle`.
    pub fn bump_monitor_exit(&mut self, cycle: u64) {
        self.bump(Series::MonitorExits, cycle, 1);
    }

    /// Counts one patch (stub patch or rearrangement) at `cycle`.
    pub fn bump_patch(&mut self, cycle: u64) {
        self.bump(Series::Patches, cycle, 1);
    }

    /// Adds guest progress ending at `cycle`.
    pub fn add_insns(&mut self, cycle: u64, n: u64) {
        self.bump(Series::GuestInsns, cycle, n);
    }

    /// Trap counts per bucket (trailing empty buckets omitted).
    pub fn traps(&self) -> &[u64] {
        &self.traps
    }

    /// Monitor-exit counts per bucket.
    pub fn monitor_exits(&self) -> &[u64] {
        &self.monitor_exits
    }

    /// Patch counts per bucket.
    pub fn patches(&self) -> &[u64] {
        &self.patches
    }

    /// Guest instructions retired per bucket (the MIPS-proxy series).
    pub fn guest_insns(&self) -> &[u64] {
        &self.guest_insns
    }

    /// Number of buckets any series reaches (the run's active span).
    pub fn active_buckets(&self) -> usize {
        self.traps
            .len()
            .max(self.monitor_exits.len())
            .max(self.patches.len())
            .max(self.guest_insns.len())
    }

    /// Index of the last bucket containing a patch, if any patch happened.
    pub fn last_patch_bucket(&self) -> Option<usize> {
        self.patches.iter().rposition(|&p| p > 0)
    }

    /// Total traps in buckets strictly after `bucket`.
    pub fn traps_after(&self, bucket: usize) -> u64 {
        self.traps.iter().skip(bucket + 1).sum()
    }

    /// The adaptive-convergence predicate: at least one patch happened,
    /// and no bucket after the last patch bucket contains a trap — the
    /// trap-rate series decays to zero once discovery completes.
    ///
    /// Folded traps (activity past the last bucket, clamped into it) have
    /// no usable ordering against the final patches: when the last patch
    /// sits in the final bucket too, they land *in* the last-patch bucket
    /// and would be invisible to [`Timeline::traps_after`]. A timeline in
    /// that state refuses to claim convergence rather than guess.
    pub fn trap_rate_converged(&self) -> bool {
        matches!(self.verdict(), ConvergenceVerdict::Converged)
    }

    /// The full classification behind [`Timeline::trap_rate_converged`],
    /// distinguishing *why* a run did not converge.
    pub fn verdict(&self) -> ConvergenceVerdict {
        match self.last_patch_bucket() {
            Some(b) => {
                if self.folded_traps > 0 && b + 1 == self.max_buckets {
                    ConvergenceVerdict::Indeterminate
                } else if self.traps_after(b) == 0 {
                    ConvergenceVerdict::Converged
                } else {
                    ConvergenceVerdict::NotConverged
                }
            }
            None => ConvergenceVerdict::NoPatches,
        }
    }

    /// Reconstructs a timeline from serialized bucket series (the JSONL
    /// scanner's path back to [`Timeline::verdict`]). All series are
    /// bucket-indexed from zero; `truncated` timelines set `max_buckets`
    /// to the active length so the folded-trap ambiguity check still
    /// fires, un-truncated ones leave headroom so nothing looks folded.
    pub fn from_parts(
        bucket_cycles: u64,
        traps: Vec<u64>,
        monitor_exits: Vec<u64>,
        patches: Vec<u64>,
        guest_insns: Vec<u64>,
        truncated: bool,
        folded_traps: u64,
    ) -> Timeline {
        let active = traps
            .len()
            .max(monitor_exits.len())
            .max(patches.len())
            .max(guest_insns.len());
        Timeline {
            bucket_cycles: bucket_cycles.max(1),
            max_buckets: if truncated { active } else { active + 1 },
            traps,
            monitor_exits,
            patches,
            guest_insns,
            truncated,
            folded_traps,
        }
    }
}

#[derive(Clone, Copy)]
enum Series {
    Traps,
    MonitorExits,
    Patches,
    GuestInsns,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_by_cycle() {
        let mut t = Timeline::new(100, 16);
        t.bump_trap(0);
        t.bump_trap(99);
        t.bump_trap(100);
        t.add_insns(250, 40);
        assert_eq!(t.traps(), &[2, 1]);
        assert_eq!(t.guest_insns(), &[0, 0, 40]);
        assert_eq!(t.active_buckets(), 3);
        assert!(!t.truncated());
    }

    #[test]
    fn overflow_folds_into_last_bucket() {
        let mut t = Timeline::new(10, 3);
        t.bump_trap(5);
        t.bump_trap(1_000);
        t.bump_trap(2_000);
        assert_eq!(t.traps(), &[1, 0, 2]);
        assert!(t.truncated());
        assert_eq!(t.folded_traps(), 2);
    }

    /// Regression: a truncated timeline folds post-patch traps into the
    /// final bucket; when that bucket is also the last-patch bucket,
    /// `traps_after` cannot see them and the pre-fix predicate claimed
    /// convergence despite the run still trapping.
    #[test]
    fn truncated_timeline_refuses_convergence() {
        let mut t = Timeline::new(10, 3);
        t.bump_trap(5);
        t.bump_patch(25); // last patch lands in the final bucket (index 2)
        t.bump_trap(1_000); // post-patch trap, folded into bucket 2
        assert!(t.truncated());
        assert_eq!(t.folded_traps(), 1);
        assert_eq!(t.last_patch_bucket(), Some(2));
        // The folded trap is invisible to traps_after — that was the bug.
        assert_eq!(t.traps_after(2), 0);
        assert!(!t.trap_rate_converged());

        // When the last patch is NOT in the final bucket, folded traps are
        // already counted by traps_after and convergence logic is unchanged.
        let mut u = Timeline::new(10, 3);
        u.bump_trap(5);
        u.bump_patch(6); // last patch in bucket 0
        u.bump_trap(1_000); // folded into bucket 2, visible to traps_after(0)
        assert_eq!(u.traps_after(0), 1);
        assert!(!u.trap_rate_converged());

        // A truncated timeline with no folded traps may still converge:
        // only guest progress ran past the end, every trap was on time.
        let mut v = Timeline::new(10, 3);
        v.bump_trap(5);
        v.bump_patch(6);
        v.add_insns(1_000, 50); // truncates the timeline, but not a trap
        assert!(v.truncated());
        assert_eq!(v.folded_traps(), 0);
        assert!(v.trap_rate_converged());
    }

    #[test]
    fn convergence_predicate() {
        let mut t = Timeline::new(10, 64);
        t.bump_trap(5);
        t.bump_patch(6);
        t.bump_trap(15);
        t.bump_patch(16);
        t.add_insns(95, 10); // run continues trap-free
        assert_eq!(t.last_patch_bucket(), Some(1));
        assert_eq!(t.traps_after(1), 0);
        assert!(t.trap_rate_converged());

        // A flat trap series (no patch ever) does not converge.
        let mut flat = Timeline::new(10, 64);
        for c in (0..100).step_by(10) {
            flat.bump_trap(c);
        }
        assert!(!flat.trap_rate_converged());
        assert_eq!(flat.last_patch_bucket(), None);

        // Traps after the last patch break convergence.
        t.bump_trap(95);
        assert!(!t.trap_rate_converged());
    }

    #[test]
    fn zero_max_buckets_records_nothing() {
        let mut t = Timeline::new(10, 0);
        t.bump_trap(5);
        assert_eq!(t.active_buckets(), 0);
    }

    /// Property over a spread of widths: an event landing exactly on a
    /// bucket edge (`cycle == k * width`) is counted once, in the *later*
    /// bucket `k`, never in bucket `k - 1` — and `k * width - 1` lands in
    /// bucket `k - 1`. Totals are conserved either way.
    #[test]
    fn bucket_edges_count_once_in_the_later_bucket() {
        for width in [1u64, 2, 3, 7, 16, 100, 1 << 15] {
            for k in [1usize, 2, 5, 9] {
                let mut t = Timeline::new(width, 64);
                t.bump_trap(k as u64 * width);
                assert_eq!(
                    t.traps().iter().sum::<u64>(),
                    1,
                    "width {width} k {k}: edge event counted exactly once"
                );
                assert_eq!(
                    t.traps().iter().position(|&n| n > 0),
                    Some(k),
                    "width {width} k {k}: edge event belongs to the later bucket"
                );

                // One cycle before the edge stays in the earlier bucket
                // (degenerate at width 1, where every cycle is an edge).
                if width > 1 {
                    let mut u = Timeline::new(width, 64);
                    u.bump_trap(k as u64 * width - 1);
                    assert_eq!(u.traps().iter().position(|&n| n > 0), Some(k - 1));
                    assert_eq!(u.traps().iter().sum::<u64>(), 1);
                }
            }
        }
    }

    #[test]
    fn verdict_classifies_all_four_outcomes() {
        let mut converged = Timeline::new(10, 64);
        converged.bump_trap(5);
        converged.bump_patch(6);
        assert_eq!(converged.verdict(), ConvergenceVerdict::Converged);
        assert_eq!(converged.verdict().label(), "converged");

        let mut not = converged.clone();
        not.bump_trap(500);
        assert_eq!(not.verdict(), ConvergenceVerdict::NotConverged);

        let mut indet = Timeline::new(10, 3);
        indet.bump_patch(25);
        indet.bump_trap(1_000); // folded into the last-patch bucket
        assert_eq!(indet.verdict(), ConvergenceVerdict::Indeterminate);

        let flat = Timeline::new(10, 64);
        assert_eq!(flat.verdict(), ConvergenceVerdict::NoPatches);
    }

    /// `from_parts` must round-trip the verdict through serialized series.
    #[test]
    fn from_parts_preserves_verdicts() {
        // Converged: trap in bucket 0, patch in bucket 1, progress after.
        let t = Timeline::from_parts(
            10,
            vec![1, 0],
            vec![],
            vec![0, 1],
            vec![0, 0, 0, 9],
            false,
            0,
        );
        assert_eq!(t.verdict(), ConvergenceVerdict::Converged);
        assert_eq!(t.bucket_cycles(), 10);
        assert_eq!(t.active_buckets(), 4);

        // Truncated with folded traps and the last patch in the final
        // bucket: the ambiguity check must survive reconstruction.
        let u = Timeline::from_parts(10, vec![1, 0, 2], vec![], vec![0, 0, 1], vec![], true, 2);
        assert!(u.truncated());
        assert_eq!(u.verdict(), ConvergenceVerdict::Indeterminate);

        // Un-truncated reconstruction leaves headroom: a patch in the last
        // active bucket is not mistaken for the folded-trap case.
        let v = Timeline::from_parts(10, vec![1], vec![], vec![0, 1], vec![], false, 0);
        assert_eq!(v.verdict(), ConvergenceVerdict::Converged);
    }
}
