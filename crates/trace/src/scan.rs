//! Whole-trace scanner: reads a JSONL trace back into aggregate form.
//!
//! Accepts both trace layouts — the in-memory serializer's
//! `bridge-trace/1` (aggregates first, retained events last) and the
//! streaming sink's `bridge-trace-stream/1` (events first, aggregates and
//! a `summary` line at finish) — since both use the same line shapes. The
//! scanner rebuilds the site table and the [`Timeline`] series, counts
//! events, and *counts* everything it cannot interpret instead of
//! silently skipping it: unknown schema versions, unknown record types
//! and malformed lines all land in [`ScanWarnings`], which `trace_report`
//! prints so a reader knows when a trace was written by a newer tool.
//!
//! The scanner is the input side of the cross-run diff
//! ([`crate::diff`]): two scanned traces of the same workload align by
//! guest PC and by timeline bucket.

use crate::{jsonl, SiteTelemetry, Timeline};
use std::collections::BTreeMap;

/// Schema versions this scanner knows how to interpret.
pub const KNOWN_SCHEMAS: [&str; 2] = [jsonl::SCHEMA, crate::sink::STREAM_SCHEMA];

/// Counts of lines the scanner could not fully interpret. Non-zero values
/// do not abort the scan — known line shapes are still read — but they
/// mean the trace holds more than this reader understands.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanWarnings {
    /// Lines declaring a schema version outside [`KNOWN_SCHEMAS`].
    pub unknown_schema: u64,
    /// Lines whose `type` tag is not a known record type.
    pub unknown_records: u64,
    /// Lines with no parsable `type` tag at all (or a known type missing
    /// its key fields).
    pub malformed: u64,
}

impl ScanWarnings {
    /// Whether anything at all was skipped or only partially read.
    pub fn any(&self) -> bool {
        self.unknown_schema > 0 || self.unknown_records > 0 || self.malformed > 0
    }

    /// Total problematic lines.
    pub fn total(&self) -> u64 {
        self.unknown_schema + self.unknown_records + self.malformed
    }
}

/// A trace read back from JSONL: the aggregate state needed for reports
/// and diffs, plus the scan's warning counters.
#[derive(Debug, Clone)]
pub struct ScannedTrace {
    /// The schema tag of the first `meta` line, if one was present.
    pub schema: Option<String>,
    /// Per-site telemetry keyed by guest PC.
    pub sites: BTreeMap<u32, SiteTelemetry>,
    /// The reconstructed timeline (bucket series + truncation state).
    pub timeline: Timeline,
    /// `event` lines seen.
    pub events: u64,
    /// Records the writer evicted without streaming (from the
    /// `meta`/`summary` line's `dropped` field).
    pub dropped: u64,
    /// What the scanner could not interpret.
    pub warnings: ScanWarnings,
}

impl ScannedTrace {
    /// Scans a whole JSONL document. Never fails: unreadable lines are
    /// counted in [`ScannedTrace::warnings`] and skipped. Empty input
    /// yields an empty trace with zero warnings.
    pub fn scan(text: &str) -> ScannedTrace {
        let mut schema: Option<String> = None;
        let mut sites: BTreeMap<u32, SiteTelemetry> = BTreeMap::new();
        let mut traps: Vec<u64> = Vec::new();
        let mut monitor_exits: Vec<u64> = Vec::new();
        let mut patches: Vec<u64> = Vec::new();
        let mut guest_insns: Vec<u64> = Vec::new();
        let mut bucket_cycles: u64 = 1;
        let mut truncated = false;
        let mut folded_traps: u64 = 0;
        let mut events: u64 = 0;
        let mut dropped: u64 = 0;
        let mut warnings = ScanWarnings::default();

        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            let Some(ty) = jsonl::line_type(line) else {
                warnings.malformed += 1;
                continue;
            };
            match ty {
                "meta" | "summary" => {
                    match jsonl::str_field(line, "schema") {
                        Some(s) if KNOWN_SCHEMAS.contains(&s) => {
                            schema.get_or_insert_with(|| s.to_string());
                        }
                        Some(s) => {
                            warnings.unknown_schema += 1;
                            schema.get_or_insert_with(|| s.to_string());
                        }
                        None => warnings.malformed += 1,
                    }
                    if let Some(v) = jsonl::u64_field(line, "bucket_cycles") {
                        bucket_cycles = v;
                    }
                    if jsonl::raw_field(line, "truncated") == Some("true") {
                        truncated = true;
                    }
                    if let Some(v) = jsonl::u64_field(line, "folded_traps") {
                        folded_traps = v;
                    }
                    if let Some(v) = jsonl::u64_field(line, "dropped") {
                        dropped = v;
                    }
                }
                "site" => match jsonl::u64_field(line, "pc") {
                    Some(pc) => {
                        sites.insert(pc as u32, scan_site(line));
                    }
                    None => warnings.malformed += 1,
                },
                "bucket" => match jsonl::u64_field(line, "index") {
                    Some(i) => {
                        let i = i as usize;
                        set_at(&mut traps, i, jsonl::u64_field(line, "traps"));
                        set_at(
                            &mut monitor_exits,
                            i,
                            jsonl::u64_field(line, "monitor_exits"),
                        );
                        set_at(&mut patches, i, jsonl::u64_field(line, "patches"));
                        set_at(&mut guest_insns, i, jsonl::u64_field(line, "guest_insns"));
                    }
                    None => warnings.malformed += 1,
                },
                "event" => events += 1,
                // The merged multi-guest table shares the scanner helpers
                // but not this aggregate shape.
                _ => warnings.unknown_records += 1,
            }
        }

        ScannedTrace {
            schema,
            sites,
            timeline: Timeline::from_parts(
                bucket_cycles,
                traps,
                monitor_exits,
                patches,
                guest_insns,
                truncated,
                folded_traps,
            ),
            events,
            dropped,
            warnings,
        }
    }

    /// Total traps across all sites.
    pub fn total_traps(&self) -> u64 {
        self.sites.values().map(|s| s.traps).sum()
    }
}

fn scan_site(line: &str) -> SiteTelemetry {
    let f = |key| jsonl::u64_field(line, key).unwrap_or(0);
    SiteTelemetry {
        traps: f("traps"),
        os_fixups: f("os_fixups"),
        patches: f("patches"),
        rearrangements: f("rearrangements"),
        reversions: f("reversions"),
        first_trap_cycle: jsonl::u64_field(line, "first_trap_cycle"),
        patch_cycle: jsonl::u64_field(line, "patch_cycle"),
        cycles_attributed: f("cycles_attributed"),
        execs: f("execs"),
        mdas: f("mdas"),
    }
}

fn set_at(v: &mut Vec<u64>, i: usize, n: Option<u64>) {
    let Some(n) = n else { return };
    if v.len() <= i {
        v.resize(i + 1, 0);
    }
    v[i] = n;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{sink::StreamingJsonl, ConvergenceVerdict, TraceConfig, TraceEvent, Tracer};

    fn sample_tracer() -> Tracer {
        let mut t = Tracer::new(
            &TraceConfig::default()
                .with_bucket_cycles(100)
                .with_ring_capacity(8),
        );
        t.record(
            10,
            TraceEvent::Trap {
                site_pc: 0x40,
                slot: 0,
                cycles: 1000,
            },
        );
        t.record(
            20,
            TraceEvent::EhPatch {
                site_pc: 0x40,
                slot: 0,
                cycles: 334,
            },
        );
        t.record(150, TraceEvent::MonitorExit { next_pc: 0x44 });
        t.progress(180, 400);
        t.merge_profile_site(0x40, 12, 7);
        t
    }

    #[test]
    fn scan_roundtrips_the_aggregate_serializer() {
        let t = sample_tracer();
        let scanned = ScannedTrace::scan(&jsonl::to_string(&t));
        assert_eq!(scanned.schema.as_deref(), Some(jsonl::SCHEMA));
        assert!(!scanned.warnings.any());
        assert_eq!(scanned.events, 3);
        assert_eq!(scanned.sites.len(), 1);
        let s = &scanned.sites[&0x40];
        assert_eq!((s.traps, s.patches, s.execs, s.mdas), (1, 1, 12, 7));
        assert_eq!(s.patch_cycle, Some(20));
        // The serializer writes every bucket up to the active span, so a
        // series may come back padded with trailing zeros; the *content*
        // must round-trip exactly.
        assert_eq!(scanned.timeline.traps()[..1], t.timeline().traps()[..]);
        assert_eq!(scanned.timeline.traps()[1..], [0]);
        assert_eq!(
            scanned.timeline.guest_insns(),
            t.timeline().guest_insns(),
            "the longest series is unpadded"
        );
        assert_eq!(scanned.timeline.verdict(), t.timeline().verdict());
        assert_eq!(scanned.timeline.verdict(), ConvergenceVerdict::Converged);
    }

    #[test]
    fn scan_roundtrips_the_streaming_sink() {
        let mut t = sample_tracer();
        t.set_sink(Box::new(StreamingJsonl::new(Vec::new())));
        // Re-record through the streaming path to exercise evictions.
        for i in 0..20u64 {
            t.record(
                200 + i,
                TraceEvent::Trap {
                    site_pc: 0x80,
                    slot: 1,
                    cycles: 10,
                },
            );
        }
        t.finish_sink().unwrap().unwrap();
        let text = String::from_utf8(t.take_sink_output().unwrap()).unwrap();
        let scanned = ScannedTrace::scan(&text);
        assert_eq!(scanned.schema.as_deref(), Some(crate::sink::STREAM_SCHEMA));
        assert!(!scanned.warnings.any());
        // Streaming is full fidelity: all 23 records (3 before attach, 20
        // after) reach the sink — the pre-attach ones via later eviction.
        assert_eq!(scanned.events, 23);
        assert_eq!(scanned.dropped, 0);
        assert_eq!(scanned.sites[&0x80].traps, 20);
        assert_eq!(scanned.total_traps(), 21);
    }

    /// Satellite: unknown schema versions are a *counted warning*, not a
    /// silent skip — and known line shapes in the same file still load.
    #[test]
    fn unknown_schema_is_counted_not_silent() {
        let text = "{\"type\":\"meta\",\"schema\":\"bridge-trace/99\",\"bucket_cycles\":50}\n\
                    {\"type\":\"site\",\"pc\":64,\"traps\":3,\"cycles_attributed\":30}\n\
                    {\"type\":\"hologram\",\"pc\":1}\n\
                    not json at all\n";
        let scanned = ScannedTrace::scan(text);
        assert_eq!(scanned.warnings.unknown_schema, 1);
        assert_eq!(scanned.warnings.unknown_records, 1);
        assert_eq!(scanned.warnings.malformed, 1);
        assert_eq!(scanned.warnings.total(), 3);
        assert!(scanned.warnings.any());
        // The declared (unknown) schema is still reported for diagnostics,
        // and the site line was read anyway.
        assert_eq!(scanned.schema.as_deref(), Some("bridge-trace/99"));
        assert_eq!(scanned.sites[&64].traps, 3);
        assert_eq!(scanned.timeline.bucket_cycles(), 50);
    }

    #[test]
    fn empty_input_scans_clean() {
        let scanned = ScannedTrace::scan("");
        assert!(!scanned.warnings.any());
        assert_eq!(scanned.events, 0);
        assert!(scanned.sites.is_empty());
        assert_eq!(scanned.schema, None);
    }
}
