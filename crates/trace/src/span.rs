//! Hierarchical spans: the causal, request-scoped layer over the flat
//! event ring.
//!
//! A [`SpanRecord`] is an interval, not a point: it has a start and end in
//! the *simulated-cycle* domain, optionally a start and end in the host
//! *wall-clock* domain, a kind ([`SpanKind`]), an optional guest-PC
//! attribution, and a parent ID — so a whole run folds into a tree
//! (strategy → run → translate/execute/trap-fixup per TB, or request →
//! queue-wait/dispatch/warm-start in the serving layer). The
//! [`SpanRecorder`] keeps completed spans in a bounded ring (oldest
//! evicted and counted, like the event ring) and renders them three ways:
//!
//! * [`SpanRecorder::to_jsonl`] — one self-describing JSON object per
//!   line, schema [`SCHEMA`] (`bridge-trace-span/1`);
//! * [`SpanRecorder::to_chrome_json`] — a Chrome trace-event / Perfetto
//!   JSON document of `ph:"X"` complete events in the cycle domain, one
//!   track per span tree;
//! * [`SpanRecorder::folded`] — inferno-compatible folded-stack text
//!   (`frame;frame;frame self_cycles` per line) for flamegraph tooling.
//!
//! Purity contract, same as the event tracer: recording never charges
//! simulated cycles and a disabled recorder reduces every call to one
//! predictable branch, so span-instrumented runs produce byte-identical
//! stats and artifacts to bare runs. Wall-clock stamps are opt-in
//! ([`SpanConfig::wall_clock`]) precisely because they make the *span
//! artifact itself* nondeterministic; everything cycle-domain — the
//! JSONL with wall stamps off, the Chrome export, the folded stacks — is
//! a pure function of the simulated execution.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt::Write as _;
use std::hash::{BuildHasherDefault, Hasher};
use std::time::Instant;

/// Schema tag written in the `span_meta` JSONL line.
pub const SCHEMA: &str = "bridge-trace-span/1";

/// What a span measures. Engine kinds come first (per-TB work inside one
/// `Dbt`), then the serving layer's request-lifecycle kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SpanKind {
    /// One whole `Dbt::run` invocation (the engine's root span).
    Run,
    /// Decode + emit + install of one translation block (includes the
    /// charged translation cycles).
    Translate,
    /// One in-cache execution segment (entry to the translated code
    /// until the machine exits to the monitor).
    Execute,
    /// One misalignment-trap handling episode: trap delivery through the
    /// strategy's response (OS fixup, EH patch, or rearrangement).
    TrapFixup,
    /// A block install served from a restored AOT image instead of the
    /// translator.
    ImageRestore,
    /// One request's whole lifetime in the serving layer.
    Request,
    /// Request admission into the bounded work queue.
    Enqueue,
    /// Time between enqueue and a shard picking the request up (joined
    /// to the `serve.queue.wait_us` histogram).
    QueueWait,
    /// A vCPU shard executing the request (wraps the engine run).
    Dispatch,
    /// Per-context warm start: image-store lookup, validation, restore.
    WarmStart,
    /// Slot-ordered aggregation of per-guest reports into the batch
    /// report.
    Aggregate,
}

impl SpanKind {
    /// Short machine-readable tag (the JSONL `kind` field and the flame
    /// frame name).
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Run => "run",
            SpanKind::Translate => "translate",
            SpanKind::Execute => "execute",
            SpanKind::TrapFixup => "trap_fixup",
            SpanKind::ImageRestore => "image_restore",
            SpanKind::Request => "request",
            SpanKind::Enqueue => "enqueue",
            SpanKind::QueueWait => "queue_wait",
            SpanKind::Dispatch => "dispatch",
            SpanKind::WarmStart => "warm_start",
            SpanKind::Aggregate => "aggregate",
        }
    }
}

/// Opaque handle to an open span. The disabled recorder hands out
/// [`SpanId::NONE`], which every other call ignores — callers never
/// branch on enablement themselves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(u64);

impl SpanId {
    /// The null handle (disabled recorder, or "no parent").
    pub const NONE: SpanId = SpanId(0);

    /// Whether this handle refers to a real span.
    pub fn is_some(self) -> bool {
        self.0 != 0
    }
}

/// One completed span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Recorder-unique ID, starting at 1.
    pub id: u64,
    /// Enclosing span's ID, 0 for roots.
    pub parent: u64,
    /// What was measured.
    pub kind: SpanKind,
    /// Guest-PC attribution, when the work has one.
    pub guest_pc: Option<u32>,
    /// Simulated cycles at span start.
    pub start_cycle: u64,
    /// Simulated cycles at span end (`>= start_cycle`).
    pub end_cycle: u64,
    /// Microseconds since the recorder's epoch at start, when wall
    /// stamping is on.
    pub wall_start_us: Option<u64>,
    /// Microseconds since the recorder's epoch at end.
    pub wall_end_us: Option<u64>,
}

impl SpanRecord {
    /// Simulated-cycle extent.
    pub fn cycles(&self) -> u64 {
        self.end_cycle.saturating_sub(self.start_cycle)
    }

    /// The flame/Chrome frame name: `kind@0xPC` when attributed, bare
    /// kind otherwise.
    pub fn frame(&self) -> String {
        match self.guest_pc {
            Some(pc) => format!("{}@0x{pc:x}", self.kind.name()),
            None => self.kind.name().to_string(),
        }
    }
}

/// Tuning knobs for a [`SpanRecorder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanConfig {
    /// Maximum completed spans retained; the oldest are evicted (and
    /// counted as dropped) beyond this.
    pub ring_capacity: usize,
    /// Whether to stamp spans with host wall-clock offsets. Off by
    /// default: wall stamps make the span artifact nondeterministic,
    /// which engine-side consumers (deterministic flame output, byte-diff
    /// tests) must not see. The serving layer turns it on for its
    /// wall-domain request lifecycle, following the `serve.queue.wait_us`
    /// precedent.
    pub wall_clock: bool,
}

impl Default for SpanConfig {
    fn default() -> SpanConfig {
        SpanConfig {
            ring_capacity: 1 << 16,
            wall_clock: false,
        }
    }
}

impl SpanConfig {
    /// Builder-style: set the completed-span ring capacity.
    pub fn with_ring_capacity(mut self, cap: usize) -> SpanConfig {
        self.ring_capacity = cap;
        self
    }

    /// Builder-style: turn host wall-clock stamping on or off.
    pub fn with_wall_clock(mut self, on: bool) -> SpanConfig {
        self.wall_clock = on;
        self
    }
}

/// An open span awaiting its `end` call.
#[derive(Debug, Clone, Copy)]
struct OpenSpan {
    id: u64,
    parent: u64,
    kind: SpanKind,
    guest_pc: Option<u32>,
    start_cycle: u64,
    wall_start_us: Option<u64>,
}

/// The span recorder: an open-span stack (parents are inferred from
/// nesting) over a bounded ring of completed spans.
#[derive(Debug, Clone)]
pub struct SpanRecorder {
    enabled: bool,
    scope: String,
    ring_capacity: usize,
    spans: VecDeque<SpanRecord>,
    open: Vec<OpenSpan>,
    dropped: u64,
    next_id: u64,
    epoch: Option<Instant>,
}

impl SpanRecorder {
    /// An enabled recorder with the given bounds.
    pub fn new(cfg: &SpanConfig) -> SpanRecorder {
        SpanRecorder {
            enabled: true,
            scope: String::new(),
            ring_capacity: cfg.ring_capacity.max(1),
            spans: VecDeque::new(),
            open: Vec::new(),
            dropped: 0,
            next_id: 1,
            epoch: cfg.wall_clock.then(Instant::now),
        }
    }

    /// The no-op recorder: every call is one predictable branch, nothing
    /// allocates.
    pub fn disabled() -> SpanRecorder {
        SpanRecorder {
            enabled: false,
            scope: String::new(),
            ring_capacity: 0,
            spans: VecDeque::new(),
            open: Vec::new(),
            dropped: 0,
            next_id: 1,
            epoch: None,
        }
    }

    /// Whether this recorder records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Sets the scope label — the root frame of every folded stack
    /// (engine runs use the strategy name, the serving layer uses
    /// `serve`).
    pub fn set_scope(&mut self, scope: &str) {
        if self.enabled {
            self.scope = scope.to_string();
        }
    }

    /// The scope label.
    pub fn scope(&self) -> &str {
        &self.scope
    }

    /// Opens a span at `cycle`, parented to the innermost still-open
    /// span. Returns [`SpanId::NONE`] on a disabled recorder.
    #[inline(always)]
    pub fn start(&mut self, cycle: u64, kind: SpanKind, guest_pc: Option<u32>) -> SpanId {
        if !self.enabled {
            return SpanId::NONE;
        }
        self.start_enabled(cycle, kind, guest_pc)
    }

    fn start_enabled(&mut self, cycle: u64, kind: SpanKind, guest_pc: Option<u32>) -> SpanId {
        let id = self.next_id;
        self.next_id += 1;
        let parent = self.open.last().map_or(0, |o| o.id);
        self.open.push(OpenSpan {
            id,
            parent,
            kind,
            guest_pc,
            start_cycle: cycle,
            wall_start_us: self.now_us(),
        });
        SpanId(id)
    }

    /// Closes the span `id` at `cycle` and commits it to the ring. Spans
    /// may close out of stack order (a parent finishing while a child is
    /// still open adopts nothing — the child keeps its recorded parent).
    /// Unknown or [`SpanId::NONE`] handles are ignored.
    #[inline(always)]
    pub fn end(&mut self, id: SpanId, cycle: u64) {
        if !self.enabled || !id.is_some() {
            return;
        }
        self.end_enabled(id, cycle);
    }

    fn end_enabled(&mut self, id: SpanId, cycle: u64) {
        let Some(pos) = self.open.iter().rposition(|o| o.id == id.0) else {
            return;
        };
        let o = self.open.remove(pos);
        let wall_end_us = self.now_us();
        self.commit(SpanRecord {
            id: o.id,
            parent: o.parent,
            kind: o.kind,
            guest_pc: o.guest_pc,
            start_cycle: o.start_cycle,
            end_cycle: cycle.max(o.start_cycle),
            wall_start_us: o.wall_start_us,
            wall_end_us,
        });
    }

    /// Records a closed span in one call (leaf work with no interior
    /// children), parented to the innermost open span. Used for
    /// zero-extent marks like image-restore installs.
    #[inline(always)]
    pub fn complete(&mut self, kind: SpanKind, guest_pc: Option<u32>, start: u64, end: u64) {
        if !self.enabled {
            return;
        }
        let id = self.next_id;
        self.next_id += 1;
        let parent = self.open.last().map_or(0, |o| o.id);
        let wall = self.now_us();
        self.commit(SpanRecord {
            id,
            parent,
            kind,
            guest_pc,
            start_cycle: start,
            end_cycle: end.max(start),
            wall_start_us: wall,
            wall_end_us: wall,
        });
    }

    /// Opens a span at `cycle` under an explicit `parent`, bypassing
    /// innermost-open inference. Concurrent callers sharing one recorder
    /// behind a lock (serve shards) use this: the open-span stack would
    /// interleave across requests there, so each caller threads its own
    /// parent handle instead. Close with [`SpanRecorder::end`] as usual.
    pub fn start_at(
        &mut self,
        cycle: u64,
        kind: SpanKind,
        guest_pc: Option<u32>,
        parent: SpanId,
    ) -> SpanId {
        if !self.enabled {
            return SpanId::NONE;
        }
        let id = self.next_id;
        self.next_id += 1;
        self.open.push(OpenSpan {
            id,
            parent: parent.0,
            kind,
            guest_pc,
            start_cycle: cycle,
            wall_start_us: self.now_us(),
        });
        SpanId(id)
    }

    /// Records a closed span with explicit parent, cycle extent, and wall
    /// extent in one call. The serving layer joins externally measured
    /// intervals this way (queue wait: wall start captured at enqueue,
    /// wall end at dispatch). Wall stamps are dropped unless wall-clock
    /// stamping is enabled on this recorder, so a wall-free configuration
    /// stays wall-free no matter what callers pass.
    #[allow(clippy::too_many_arguments)]
    pub fn complete_with(
        &mut self,
        kind: SpanKind,
        guest_pc: Option<u32>,
        parent: SpanId,
        start_cycle: u64,
        end_cycle: u64,
        wall_start_us: Option<u64>,
        wall_end_us: Option<u64>,
    ) {
        if !self.enabled {
            return;
        }
        let id = self.next_id;
        self.next_id += 1;
        let stamped = self.epoch.is_some();
        self.commit(SpanRecord {
            id,
            parent: parent.0,
            kind,
            guest_pc,
            start_cycle,
            end_cycle: end_cycle.max(start_cycle),
            wall_start_us: if stamped { wall_start_us } else { None },
            wall_end_us: if stamped { wall_end_us } else { None },
        });
    }

    /// Microseconds elapsed since this recorder's epoch; `None` when
    /// wall-clock stamping is off (or the recorder is disabled). Callers
    /// capture these to feed [`SpanRecorder::complete_with`].
    pub fn now_epoch_us(&self) -> Option<u64> {
        self.now_us()
    }

    fn commit(&mut self, rec: SpanRecord) {
        if self.spans.len() == self.ring_capacity {
            self.spans.pop_front();
            self.dropped += 1;
        }
        self.spans.push_back(rec);
    }

    fn now_us(&self) -> Option<u64> {
        self.epoch.map(|e| e.elapsed().as_micros() as u64)
    }

    /// Merges another recorder's completed spans as a subtree under
    /// `parent` (pass [`SpanId::NONE`] to merge at the root). IDs are
    /// remapped into this recorder's sequence; the child's root spans are
    /// re-parented to `parent`. The serving layer uses this to join each
    /// request's engine spans to its request span.
    pub fn adopt(&mut self, child: &SpanRecorder, parent: SpanId) {
        if !self.enabled {
            return;
        }
        let mut remap: FxMap<u64> =
            FxMap::with_capacity_and_hasher(child.spans.len(), Default::default());
        for rec in &child.spans {
            remap.insert(rec.id, self.next_id);
            self.next_id += 1;
        }
        for rec in &child.spans {
            let mut r = *rec;
            r.id = remap[&rec.id];
            r.parent = remap.get(&rec.parent).copied().unwrap_or(parent.0);
            self.commit(r);
        }
        self.dropped += child.dropped;
    }

    /// Completed spans, oldest-committed first.
    pub fn spans(&self) -> impl Iterator<Item = &SpanRecord> {
        self.spans.iter()
    }

    /// Number of completed spans retained.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether no span was ever completed.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Spans evicted from the ring.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Spans started but not yet ended.
    pub fn open_count(&self) -> usize {
        self.open.len()
    }

    /// Serializes the completed spans as JSONL: a `span_meta` header then
    /// one `span` line per record, oldest first. With wall stamping off
    /// this is a pure function of the simulated execution.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"type\":\"span_meta\",\"schema\":\"{SCHEMA}\",\"scope\":\"{}\",\
             \"spans\":{},\"dropped\":{},\"open\":{}}}",
            self.scope,
            self.spans.len(),
            self.dropped,
            self.open.len(),
        );
        for rec in &self.spans {
            let _ = writeln!(
                out,
                "{{\"type\":\"span\",\"id\":{},\"parent\":{},\"kind\":\"{}\",\"pc\":{},\
                 \"start_cycle\":{},\"end_cycle\":{},\"wall_start_us\":{},\"wall_end_us\":{}}}",
                rec.id,
                opt_u64(if rec.parent == 0 {
                    None
                } else {
                    Some(rec.parent)
                }),
                rec.kind.name(),
                opt_u64(rec.guest_pc.map(u64::from)),
                rec.start_cycle,
                rec.end_cycle,
                opt_u64(rec.wall_start_us),
                opt_u64(rec.wall_end_us),
            );
        }
        out
    }

    /// Renders the completed spans as a Chrome trace-event / Perfetto
    /// JSON document: `ph:"X"` complete events with `ts`/`dur` in the
    /// *cycle* domain (cycles render as microseconds in the viewer — the
    /// scale is arbitrary, the attribution exact and deterministic).
    /// Each span tree gets its own `tid` track (the root ancestor's ID),
    /// so overlapping requests from different shards stay readable.
    pub fn to_chrome_json(&self) -> String {
        let parent_of: HashMap<u64, u64> = self.spans.iter().map(|r| (r.id, r.parent)).collect();
        let root_of = |mut id: u64| -> u64 {
            let mut hops = 0;
            while let Some(&p) = parent_of.get(&id) {
                if p == 0 || hops > 64 {
                    break;
                }
                id = p;
                hops += 1;
            }
            id
        };
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        for (i, rec) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":1,\"tid\":{},\"args\":{{\"id\":{},\"parent\":{},\"pc\":{}}}}}",
                rec.frame(),
                rec.kind.name(),
                rec.start_cycle,
                rec.cycles(),
                root_of(rec.id),
                rec.id,
                opt_u64(if rec.parent == 0 {
                    None
                } else {
                    Some(rec.parent)
                }),
                match rec.guest_pc {
                    Some(pc) => format!("\"0x{pc:x}\""),
                    None => "null".to_string(),
                },
            );
        }
        out.push_str("]}");
        out
    }

    /// Folds the span tree into inferno-compatible folded-stack text:
    /// one `frame;frame;frame self_cycles` line per distinct stack, the
    /// weight being the span's *self* cycles (extent minus children's
    /// extents, clamped at zero). Stacks are rooted at the scope label,
    /// aggregated, and emitted in lexicographic order — deterministic
    /// across runs of the same workload.
    pub fn folded(&self) -> String {
        let by_id: FxMap<&SpanRecord> = self.spans.iter().map(|r| (r.id, r)).collect();
        let mut child_cycles: FxMap<u64> = FxMap::default();
        for rec in &self.spans {
            if rec.parent != 0 && by_id.contains_key(&rec.parent) {
                *child_cycles.entry(rec.parent).or_insert(0) += rec.cycles();
            }
        }
        // Ancestor paths are memoized by id — a child's path is its
        // parent's path plus one frame — and leaves (the vast majority:
        // one execute span per in-cache segment) are formatted into a
        // reused scratch buffer and looked up borrowed, so the table
        // costs O(spans) string work with no per-leaf allocation on
        // repeated stacks. This is the hot half of the <10% span-leg
        // budget the perf harness asserts.
        let mut paths: FxMap<String> = FxMap::default();
        let mut folded: BTreeMap<String, u64> = BTreeMap::new();
        let mut scratch = String::new();
        for rec in &self.spans {
            let self_cycles = rec
                .cycles()
                .saturating_sub(child_cycles.get(&rec.id).copied().unwrap_or(0));
            if self_cycles == 0 {
                continue;
            }
            scratch.clear();
            // A parent evicted from the ring truncates the walk: the
            // stack re-roots at the survivor.
            if rec.parent != 0 && by_id.contains_key(&rec.parent) {
                ensure_ancestor_path(rec.parent, &by_id, &mut paths, &self.scope);
                scratch.push_str(&paths[&rec.parent]);
            } else {
                scratch.push_str(&self.scope);
            }
            if !scratch.is_empty() {
                scratch.push(';');
            }
            push_frame(&mut scratch, rec);
            match folded.get_mut(scratch.as_str()) {
                Some(total) => *total += self_cycles,
                None => {
                    folded.insert(scratch.clone(), self_cycles);
                }
            }
        }
        let mut out = String::new();
        for (stack, cycles) in folded {
            let _ = writeln!(out, "{stack} {cycles}");
        }
        out
    }
}

/// Multiply-rotate hasher for the u64-keyed span maps (the same Fx
/// scheme as `bridge_sim::hashing`, duplicated so this crate stays
/// dependency-free). SipHash's DoS resistance buys nothing here — every
/// key is a recorder-assigned sequential ID — and its cost sits on the
/// folded()/adopt() per-span path.
#[derive(Debug, Clone, Copy, Default)]
struct FxU64 {
    hash: u64,
}

impl Hasher for FxU64 {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.hash = (self.hash.rotate_left(5) ^ v).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

type FxMap<V> = HashMap<u64, V, BuildHasherDefault<FxU64>>;

/// Guarantees `paths` holds the root-to-`id` frame path, walking up to
/// the nearest memoized ancestor (or the root, or the first parent
/// missing from the ring) and filling the chain downward. `id` must be
/// present in `by_id`.
fn ensure_ancestor_path(
    id: u64,
    by_id: &FxMap<&SpanRecord>,
    paths: &mut FxMap<String>,
    scope: &str,
) {
    if paths.contains_key(&id) {
        return;
    }
    let mut pending: Vec<&SpanRecord> = Vec::new();
    let mut cur = id;
    let mut hops = 0;
    let mut path = loop {
        if let Some(p) = paths.get(&cur) {
            break p.clone();
        }
        match by_id.get(&cur) {
            Some(r) => {
                pending.push(r);
                if r.parent == 0 || hops > 64 {
                    break scope.to_string();
                }
                cur = r.parent;
                hops += 1;
            }
            None => break scope.to_string(),
        }
    };
    for r in pending.iter().rev() {
        if !path.is_empty() {
            path.push(';');
        }
        push_frame(&mut path, r);
        paths.insert(r.id, path.clone());
    }
}

/// Appends `kind@0xPC` (or the bare kind) without `format!` machinery;
/// must stay byte-identical to [`SpanRecord::frame`].
fn push_frame(out: &mut String, rec: &SpanRecord) {
    out.push_str(rec.kind.name());
    if let Some(pc) = rec.guest_pc {
        out.push_str("@0x");
        let mut buf = [0u8; 8];
        let mut i = buf.len();
        let mut v = pc;
        loop {
            i -= 1;
            buf[i] = b"0123456789abcdef"[(v & 0xf) as usize];
            v >>= 4;
            if v == 0 {
                break;
            }
        }
        out.push_str(std::str::from_utf8(&buf[i..]).expect("hex digits are ASCII"));
    }
}

fn opt_u64(v: Option<u64>) -> String {
    match v {
        Some(v) => v.to_string(),
        None => "null".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recorder() -> SpanRecorder {
        let mut r = SpanRecorder::new(&SpanConfig::default());
        r.set_scope("eh");
        r
    }

    /// A two-level tree: run(0..1000) containing translate@0x40(100..250)
    /// and execute@0x40(250..900) which itself contains
    /// trap_fixup@0x44(400..700).
    fn sample() -> SpanRecorder {
        let mut r = recorder();
        let run = r.start(0, SpanKind::Run, None);
        let t = r.start(100, SpanKind::Translate, Some(0x40));
        r.end(t, 250);
        let e = r.start(250, SpanKind::Execute, Some(0x40));
        let f = r.start(400, SpanKind::TrapFixup, Some(0x44));
        r.end(f, 700);
        r.end(e, 900);
        r.complete(SpanKind::ImageRestore, Some(0x48), 900, 900);
        r.end(run, 1000);
        r
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let mut r = SpanRecorder::disabled();
        let id = r.start(0, SpanKind::Run, None);
        assert_eq!(id, SpanId::NONE);
        r.end(id, 100);
        r.complete(SpanKind::Translate, Some(0x40), 0, 50);
        r.set_scope("eh");
        assert!(!r.is_enabled());
        assert!(r.is_empty());
        assert_eq!(r.open_count(), 0);
        assert_eq!(r.scope(), "");
    }

    #[test]
    fn nesting_assigns_parents() {
        let r = sample();
        assert_eq!(r.len(), 5);
        assert_eq!(r.open_count(), 0);
        let spans: Vec<&SpanRecord> = r.spans().collect();
        // Commit order is end order: translate, trap_fixup, execute,
        // image_restore, run.
        let translate = spans[0];
        let fixup = spans[1];
        let execute = spans[2];
        let restore = spans[3];
        let run = spans[4];
        assert_eq!(run.kind, SpanKind::Run);
        assert_eq!(run.parent, 0);
        assert_eq!(translate.parent, run.id);
        assert_eq!(execute.parent, run.id);
        assert_eq!(fixup.parent, execute.id);
        assert_eq!(
            restore.parent, run.id,
            "complete() nests under the open top"
        );
        assert_eq!(fixup.cycles(), 300);
        assert_eq!(restore.cycles(), 0);
    }

    #[test]
    fn out_of_order_end_is_tolerated() {
        let mut r = recorder();
        let a = r.start(0, SpanKind::Run, None);
        let b = r.start(10, SpanKind::Execute, Some(0x40));
        r.end(a, 100); // parent first
        r.end(b, 50);
        r.end(b, 60); // double-end ignored
        r.end(SpanId::NONE, 70);
        assert_eq!(r.len(), 2);
        let spans: Vec<&SpanRecord> = r.spans().collect();
        assert_eq!(spans[0].kind, SpanKind::Run);
        assert_eq!(spans[1].parent, spans[0].id, "recorded parent survives");
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let mut r = SpanRecorder::new(&SpanConfig::default().with_ring_capacity(3));
        for i in 0..10u64 {
            r.complete(SpanKind::Execute, Some(0x40), i * 10, i * 10 + 5);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 7);
        assert_eq!(r.spans().next().unwrap().start_cycle, 70);
    }

    #[test]
    fn jsonl_layout_and_determinism() {
        let r = sample();
        let out = r.to_jsonl();
        assert_eq!(out, sample().to_jsonl(), "wall stamps off => pure");
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(crate::jsonl::line_type(lines[0]), Some("span_meta"));
        assert_eq!(crate::jsonl::str_field(lines[0], "schema"), Some(SCHEMA));
        assert_eq!(crate::jsonl::str_field(lines[0], "scope"), Some("eh"));
        assert_eq!(crate::jsonl::u64_field(lines[0], "spans"), Some(5));
        assert_eq!(crate::jsonl::u64_field(lines[0], "dropped"), Some(0));
        let span = lines[1];
        assert_eq!(crate::jsonl::line_type(span), Some("span"));
        assert_eq!(crate::jsonl::str_field(span, "kind"), Some("translate"));
        assert_eq!(crate::jsonl::u64_field(span, "pc"), Some(0x40));
        assert_eq!(crate::jsonl::u64_field(span, "start_cycle"), Some(100));
        assert_eq!(crate::jsonl::u64_field(span, "end_cycle"), Some(250));
        assert_eq!(crate::jsonl::u64_field(span, "wall_start_us"), None);
        let run = lines[5];
        assert_eq!(crate::jsonl::str_field(run, "kind"), Some("run"));
        assert_eq!(crate::jsonl::raw_field(run, "parent"), Some("null"));
    }

    #[test]
    fn wall_stamps_are_optional_and_monotone() {
        let mut r = SpanRecorder::new(&SpanConfig::default().with_wall_clock(true));
        let a = r.start(0, SpanKind::Request, None);
        r.end(a, 10);
        let rec = r.spans().next().unwrap();
        let (s, e) = (rec.wall_start_us.unwrap(), rec.wall_end_us.unwrap());
        assert!(e >= s);
    }

    #[test]
    fn folded_stacks_attribute_self_cycles() {
        let out = sample().folded();
        assert_eq!(out, sample().folded(), "deterministic");
        let lines: Vec<&str> = out.lines().collect();
        // run self = 1000 - (150 translate + 650 execute) = 200;
        // execute self = 650 - 300 fixup = 350; image_restore has zero
        // self and is omitted.
        assert!(lines.contains(&"eh;run 200"), "{out}");
        assert!(lines.contains(&"eh;run;translate@0x40 150"), "{out}");
        assert!(lines.contains(&"eh;run;execute@0x40 350"), "{out}");
        assert!(
            lines.contains(&"eh;run;execute@0x40;trap_fixup@0x44 300"),
            "{out}"
        );
        assert_eq!(lines.len(), 4, "zero-self spans omitted: {out}");
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted, "lexicographic order");
    }

    #[test]
    fn chrome_export_shape() {
        let out = sample().to_chrome_json();
        assert_eq!(out, sample().to_chrome_json(), "deterministic");
        assert!(out.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(out.ends_with("]}"));
        assert!(out.contains(
            "\"name\":\"trap_fixup@0x44\",\"cat\":\"trap_fixup\",\"ph\":\"X\",\
             \"ts\":400,\"dur\":300"
        ));
        // Every span in the sample tree shares the run root's track.
        let tid_count = out.matches("\"tid\":1,").count() + out.matches("\"tid\":1}").count();
        assert_eq!(out.matches("\"ph\":\"X\"").count(), 5);
        assert_eq!(tid_count, 5, "one track per tree: {out}");
    }

    #[test]
    fn adopt_remaps_ids_and_reparents_roots() {
        let mut parent = SpanRecorder::new(&SpanConfig::default());
        parent.set_scope("serve");
        let req = parent.start(0, SpanKind::Request, None);
        let child = sample();
        parent.adopt(&child, req);
        parent.end(req, 2000);
        assert_eq!(parent.len(), 6);
        let ids: Vec<u64> = parent.spans().map(|r| r.id).collect();
        assert_eq!(ids.len(), {
            let mut d = ids.clone();
            d.dedup();
            d.len()
        });
        let adopted_run = parent
            .spans()
            .find(|r| r.kind == SpanKind::Run)
            .expect("child root adopted");
        let req_rec = parent
            .spans()
            .find(|r| r.kind == SpanKind::Request)
            .expect("request span");
        assert_eq!(adopted_run.parent, req_rec.id);
        let fixup = parent
            .spans()
            .find(|r| r.kind == SpanKind::TrapFixup)
            .unwrap();
        let exec = parent
            .spans()
            .find(|r| r.kind == SpanKind::Execute)
            .unwrap();
        assert_eq!(fixup.parent, exec.id, "interior links survive remap");
        // The folded view now roots at the request.
        assert!(parent
            .folded()
            .contains("serve;request;run;execute@0x40 350"));
    }

    #[test]
    fn explicit_parent_spans_ignore_the_open_stack() {
        let mut rec = SpanRecorder::new(&SpanConfig::default());
        rec.set_scope("serve");
        // Two interleaved "requests" sharing one recorder: innermost-open
        // inference would cross-link them; explicit parents must not.
        let a = rec.start_at(0, SpanKind::Request, None, SpanId::NONE);
        let b = rec.start_at(0, SpanKind::Request, None, SpanId::NONE);
        let da = rec.start_at(0, SpanKind::Dispatch, None, a);
        rec.complete_with(SpanKind::QueueWait, None, b, 0, 0, Some(5), Some(9));
        rec.end(da, 100);
        rec.end(b, 120);
        rec.end(a, 150);
        let wait = rec
            .spans()
            .find(|r| r.kind == SpanKind::QueueWait)
            .expect("queue-wait span");
        let dispatch = rec
            .spans()
            .find(|r| r.kind == SpanKind::Dispatch)
            .expect("dispatch span");
        let (ra, rb): (Vec<&SpanRecord>, Vec<&SpanRecord>) = rec
            .spans()
            .filter(|r| r.kind == SpanKind::Request)
            .partition(|r| r.end_cycle == 150);
        assert_eq!(dispatch.parent, ra[0].id);
        assert_eq!(wait.parent, rb[0].id);
        assert_eq!(ra[0].parent, 0);
        assert_eq!(rb[0].parent, 0);
        // Wall stamps are honoured only when the recorder stamps walls.
        assert_eq!(wait.wall_start_us, None);
        let mut stamped = SpanRecorder::new(&SpanConfig::default().with_wall_clock(true));
        stamped.complete_with(
            SpanKind::QueueWait,
            None,
            SpanId::NONE,
            0,
            0,
            Some(5),
            Some(9),
        );
        let w = stamped.spans().next().unwrap();
        assert_eq!((w.wall_start_us, w.wall_end_us), (Some(5), Some(9)));
    }
}
