//! Streaming trace sinks: full-fidelity traces under bounded memory.
//!
//! The event ring bounds the tracer's memory, which means long runs evict
//! their oldest records — exactly the discovery-phase evidence the paper's
//! temporal argument hinges on. A [`TraceSink`] attached to the tracer
//! receives every record the ring evicts, *in order*, at the moment of
//! eviction, and the remaining ring is drained into it at
//! [`Tracer::finish_sink`] time — so the sink sees the complete event
//! stream oldest-first while the tracer's resident memory never exceeds
//! the ring capacity.
//!
//! [`StreamingJsonl`] is the standard sink: incremental JSONL over any
//! [`io::Write`], emitting the same event-line layout as the in-memory
//! serializer ([`crate::jsonl::to_string`]) plus the aggregate site table,
//! buckets and a trailing `summary` line at finish. Its output is a pure
//! function of the recorded event sequence, so two identical runs produce
//! byte-identical trace files — the property the cross-run diff tool and
//! the determinism tests rely on.
//!
//! Sink I/O happens purely on the host side: attaching a sink never
//! charges simulated cycles, so traced-and-streamed runs keep the
//! traced==untraced accounting contract.
//!
//! [`Tracer::finish_sink`]: crate::Tracer::finish_sink

use crate::{jsonl, TraceRecord, Tracer};
use std::io;

/// Schema tag written in a streaming trace's `meta` line. The body layout
/// (event/site/bucket lines) is shared with `bridge-trace/1`; the distinct
/// tag records that events precede aggregates and that a `summary` line
/// closes the file.
pub const STREAM_SCHEMA: &str = "bridge-trace-stream/1";

/// A destination for trace records leaving the tracer. Implementations
/// must be `Send`: the execution service moves tracers across worker
/// threads.
pub trait TraceSink: Send {
    /// Receives one record. Called for each ring eviction as it happens
    /// and once per retained record at finish time, oldest first — the
    /// concatenation of all `emit` calls is the run's complete, ordered
    /// event stream.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; the tracer detaches the sink on the first
    /// error and surfaces it via [`Tracer::sink_error`].
    ///
    /// [`Tracer::sink_error`]: crate::Tracer::sink_error
    fn emit(&mut self, rec: &TraceRecord) -> io::Result<()>;

    /// Called exactly once after the final `emit`, with the tracer's
    /// aggregate state (site table, timeline, counts).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    fn finish(&mut self, tracer: &Tracer) -> io::Result<()>;

    /// Type-erasure escape hatch: lets callers recover a concrete finished
    /// sink (e.g. the buffer of a `StreamingJsonl<Vec<u8>>`) via
    /// [`Tracer::take_sink_output`](crate::Tracer::take_sink_output).
    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any>;
}

/// What a finished sink processed, returned by
/// [`Tracer::finish_sink`](crate::Tracer::finish_sink).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SinkSummary {
    /// Total records emitted to the sink (streamed evictions + the final
    /// ring drain) — the full-fidelity event count.
    pub events: u64,
    /// Sites in the aggregate table at finish.
    pub sites: usize,
    /// Active timeline buckets at finish.
    pub buckets: usize,
}

/// Incremental JSONL writer: a `meta` header, then one `event` line per
/// record as it arrives, then (at finish) the site table, the timeline
/// buckets and a closing `summary` line with the totals a reader needs to
/// verify it got the whole stream.
pub struct StreamingJsonl<W: io::Write + Send> {
    w: W,
    events: u64,
    header_written: bool,
    /// Reused per-event line buffer: `emit` is the full-fidelity hot
    /// path, so it must not allocate per record.
    line: String,
}

impl<W: io::Write + Send> StreamingJsonl<W> {
    /// A sink over `w`. The header line is written lazily with the first
    /// record (or at finish, for a run that recorded nothing).
    pub fn new(w: W) -> StreamingJsonl<W> {
        StreamingJsonl {
            w,
            events: 0,
            header_written: false,
            line: String::with_capacity(128),
        }
    }

    /// Events emitted so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Consumes the sink, returning the writer.
    pub fn into_inner(self) -> W {
        self.w
    }

    fn ensure_header(&mut self) -> io::Result<()> {
        if !self.header_written {
            writeln!(
                self.w,
                "{{\"type\":\"meta\",\"schema\":\"{STREAM_SCHEMA}\"}}"
            )?;
            self.header_written = true;
        }
        Ok(())
    }
}

impl<W: io::Write + Send + 'static> TraceSink for StreamingJsonl<W> {
    fn emit(&mut self, rec: &TraceRecord) -> io::Result<()> {
        self.ensure_header()?;
        self.line.clear();
        jsonl::push_event_line(&mut self.line, rec);
        self.w.write_all(self.line.as_bytes())?;
        self.events += 1;
        Ok(())
    }

    fn finish(&mut self, tracer: &Tracer) -> io::Result<()> {
        self.ensure_header()?;
        for (pc, s) in tracer.sites() {
            writeln!(
                self.w,
                "{{\"type\":\"site\",\"pc\":{pc},{}}}",
                jsonl::site_body(s)
            )?;
        }
        let tl = tracer.timeline();
        let at = |v: &[u64], i: usize| v.get(i).copied().unwrap_or(0);
        for i in 0..tl.active_buckets() {
            writeln!(
                self.w,
                "{{\"type\":\"bucket\",\"index\":{i},\"traps\":{},\"monitor_exits\":{},\
                 \"patches\":{},\"guest_insns\":{}}}",
                at(tl.traps(), i),
                at(tl.monitor_exits(), i),
                at(tl.patches(), i),
                at(tl.guest_insns(), i),
            )?;
        }
        writeln!(
            self.w,
            "{{\"type\":\"summary\",\"schema\":\"{STREAM_SCHEMA}\",\"events\":{},\
             \"sites\":{},\"buckets\":{},\"bucket_cycles\":{},\"truncated\":{},\
             \"folded_traps\":{},\"dropped\":{}}}",
            self.events,
            tracer.sites().count(),
            tl.active_buckets(),
            tl.bucket_cycles(),
            tl.truncated(),
            tl.folded_traps(),
            tracer.dropped(),
        )?;
        self.w.flush()
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TraceConfig, TraceEvent};

    fn trap(pc: u32) -> TraceEvent {
        TraceEvent::Trap {
            site_pc: pc,
            slot: 0,
            cycles: 10,
        }
    }

    fn small_ring_tracer() -> Tracer {
        Tracer::new(
            &TraceConfig::default()
                .with_bucket_cycles(100)
                .with_ring_capacity(4),
        )
    }

    #[test]
    fn evicted_records_stream_in_order_and_nothing_is_lost() {
        let mut t = small_ring_tracer();
        assert!(t.set_sink(Box::new(StreamingJsonl::new(Vec::new()))));
        for i in 0..10u64 {
            t.record(i, trap(0x40));
        }
        // Six evictions went to the sink, not to the floor.
        assert_eq!(t.dropped(), 0);
        assert_eq!(t.streamed(), 6);
        let summary = t.finish_sink().expect("sink attached").expect("no error");
        assert_eq!(summary.events, 10, "evictions + final drain");
        assert_eq!(summary.sites, 1);
        // The ring itself still holds the newest four for snapshots.
        assert_eq!(t.event_count(), 4);
    }

    #[test]
    fn streamed_jsonl_is_complete_ordered_and_deterministic() {
        let run = || {
            let mut t = small_ring_tracer();
            t.set_sink(Box::new(StreamingJsonl::new(Vec::new())));
            for i in 0..12u64 {
                t.record(i * 3, trap(0x40 + (i as u32 % 2) * 4));
            }
            t.progress(40, 100);
            t.finish_sink().unwrap().unwrap();
            t.take_sink_output().expect("jsonl sink output")
        };
        let a = run();
        assert_eq!(a, run(), "byte-identical across identical runs");

        let text = String::from_utf8(a).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(jsonl::line_type(lines[0]), Some("meta"));
        assert_eq!(jsonl::str_field(lines[0], "schema"), Some(STREAM_SCHEMA));
        let cycles: Vec<u64> = lines
            .iter()
            .filter(|l| jsonl::line_type(l) == Some("event"))
            .map(|l| jsonl::u64_field(l, "cycle").unwrap())
            .collect();
        assert_eq!(cycles.len(), 12, "full fidelity past the ring capacity");
        assert!(cycles.windows(2).all(|w| w[0] <= w[1]), "oldest first");
        let summary = lines.last().unwrap();
        assert_eq!(jsonl::line_type(summary), Some("summary"));
        assert_eq!(jsonl::u64_field(summary, "events"), Some(12));
        assert_eq!(jsonl::u64_field(summary, "dropped"), Some(0));
    }

    #[test]
    fn sink_on_disabled_tracer_is_refused() {
        let mut t = Tracer::disabled();
        assert!(!t.set_sink(Box::new(StreamingJsonl::new(Vec::new()))));
        assert!(t.finish_sink().is_none());
    }

    #[test]
    fn empty_run_still_writes_header_and_summary() {
        let mut t = small_ring_tracer();
        t.set_sink(Box::new(StreamingJsonl::new(Vec::new())));
        t.finish_sink().unwrap().unwrap();
        let bytes = t.take_sink_output().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "meta + summary");
        assert_eq!(jsonl::u64_field(lines[1], "events"), Some(0));
    }

    /// An erroring writer detaches the sink and surfaces the error instead
    /// of panicking the record path.
    #[test]
    fn sink_error_detaches_and_is_surfaced() {
        struct Broken;
        impl io::Write for Broken {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk gone"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut t = small_ring_tracer();
        t.set_sink(Box::new(StreamingJsonl::new(Broken)));
        for i in 0..10u64 {
            t.record(i, trap(0x40));
        }
        assert!(t.sink_error().is_some_and(|e| e.contains("disk gone")));
        // Post-error evictions fall back to counted drops.
        assert!(t.dropped() > 0);
        assert!(t.finish_sink().is_none(), "sink already detached");
        // The aggregates are unaffected by the sink failure.
        assert_eq!(t.site(0x40).unwrap().traps, 10);
    }
}
