//! Rolling-window time-series and SLO burn-rate alerting over a
//! [`Registry`].
//!
//! The registry's instruments are cumulative: counters only grow,
//! histogram quantiles are since-birth. Continuous monitoring needs the
//! *windowed* view — what happened in the last tick, at what rate — so
//! [`TimeSeries`] keeps a fixed-capacity ring of [`Window`] records,
//! each a delta snapshot of every instrument between two ticks. The
//! caller decides what a tick is: the engine advances by simulated
//! cycles (deterministic), the serve layer calls
//! [`TimeSeries::tick`] explicitly per scrape or period (wall time).
//!
//! On top of the ring, [`AlertRules`] evaluates declarative [`SloSpec`]
//! objectives (windowed quantile below a bound, counter-ratio below a
//! ceiling, counter-delta below a ceiling) as **fast/slow burn-rate
//! rules**: an alert fires when every window of the short lookback
//! violates the objective *and* at least half of the long lookback
//! does; it resolves when the short lookback is fully clean. The two
//! lookbacks give the classic burn-rate hysteresis — a single bad
//! window cannot flap an alert, and a recovered system resolves within
//! `fast_windows` ticks. Transitions are typed [`Alert`] records and
//! the whole state renders as a `bridge-alerts/1` JSON document.
//!
//! Everything here is pure observation: nothing reads host time, and
//! ticking a registry never perturbs the instruments it samples.

use crate::{quantile_of, Registry, HISTOGRAM_BUCKETS};
use std::collections::{BTreeMap, VecDeque};

/// Schema tag of the JSON document [`AlertRules::to_json`] renders.
pub const ALERTS_SCHEMA: &str = "bridge-alerts/1";

/// One counter's view over a single window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterWindow {
    /// Instrument name as registered.
    pub name: String,
    /// Cumulative total at the window's closing tick.
    pub total: u64,
    /// Increase within the window (the full total on the first tick;
    /// a reset counter restarts the baseline like `HealthSampler`).
    pub delta: u64,
    /// `delta` scaled to events per 1e6 elapsed units (per second for
    /// microsecond ticks, per Mcycle for cycle ticks).
    pub rate_per_m: u64,
}

/// One gauge's view at a window's closing tick.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeWindow {
    /// Instrument name as registered.
    pub name: String,
    /// Level at the closing tick.
    pub value: i64,
    /// Highest level ever observed.
    pub high_watermark: i64,
}

/// One histogram's view over a single window: the sample delta and
/// conservative quantiles computed over *only the samples recorded in
/// this window* (bucket-count deltas, not since-birth counts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramWindow {
    /// Instrument name as registered.
    pub name: String,
    /// Samples recorded within the window.
    pub delta: u64,
    /// Windowed conservative p50 upper bound (0 when the window is
    /// empty).
    pub p50: u64,
    /// Windowed p90 upper bound.
    pub p90: u64,
    /// Windowed p99 upper bound.
    pub p99: u64,
}

/// One closed rolling window: every instrument's delta view between two
/// consecutive [`TimeSeries::tick`] calls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Window {
    /// Position in the registry-wide monotonic sample sequence
    /// ([`Registry::next_sample_seq`]) — shared with
    /// [`crate::HealthSampler`] snapshots.
    pub seq: u64,
    /// Window length in the caller's units (µs serve-side, simulated
    /// cycles engine-side).
    pub elapsed_units: u64,
    /// Counter views, name-ordered.
    pub counters: Vec<CounterWindow>,
    /// Gauge views, name-ordered.
    pub gauges: Vec<GaugeWindow>,
    /// Histogram views, name-ordered.
    pub histograms: Vec<HistogramWindow>,
}

impl Window {
    /// The named counter's delta within this window (0 if absent).
    pub fn counter_delta(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.delta)
    }

    /// The named histogram's windowed quantile (0 if absent or empty).
    pub fn hist_quantile(&self, name: &str, q: f64) -> u64 {
        self.histograms
            .iter()
            .find(|h| h.name == name)
            .map_or(0, |h| match q {
                q if q <= 0.50 => h.p50,
                q if q <= 0.90 => h.p90,
                _ => h.p99,
            })
    }
}

/// A fixed-capacity ring of rolling windows over one [`Registry`].
///
/// Not thread-safe by itself (wrap in a `Mutex` to share); one series
/// per registry, like [`crate::HealthSampler`].
#[derive(Debug)]
pub struct TimeSeries {
    capacity: usize,
    windows: VecDeque<Window>,
    last_counters: BTreeMap<String, u64>,
    last_buckets: BTreeMap<String, [u64; HISTOGRAM_BUCKETS]>,
    total_ticks: u64,
}

impl TimeSeries {
    /// An empty series retaining at most `capacity` windows (min 1).
    pub fn new(capacity: usize) -> TimeSeries {
        TimeSeries {
            capacity: capacity.max(1),
            windows: VecDeque::new(),
            last_counters: BTreeMap::new(),
            last_buckets: BTreeMap::new(),
            total_ticks: 0,
        }
    }

    /// Closes the current window: snapshots every instrument in
    /// `registry`, computes deltas against the previous tick, pushes the
    /// window into the ring (evicting the oldest past capacity) and
    /// returns it. `elapsed_units` is the window's length in the
    /// caller's units and is used only for rate derivation.
    pub fn tick(&mut self, registry: &Registry, elapsed_units: u64) -> &Window {
        let seq = registry.next_sample_seq();
        let rate = |delta: u64| {
            if elapsed_units == 0 {
                0
            } else {
                (delta as u128 * 1_000_000 / elapsed_units as u128) as u64
            }
        };
        let counters = registry
            .counters
            .lock()
            .expect("metrics lock")
            .iter()
            .map(|(name, c)| {
                let total = c.get();
                let prev = self.last_counters.insert(name.clone(), total).unwrap_or(0);
                let delta = if total < prev { total } else { total - prev };
                CounterWindow {
                    name: name.clone(),
                    total,
                    delta,
                    rate_per_m: rate(delta),
                }
            })
            .collect();
        let gauges = registry
            .gauges
            .lock()
            .expect("metrics lock")
            .iter()
            .map(|(name, g)| GaugeWindow {
                name: name.clone(),
                value: g.get(),
                high_watermark: g.high_watermark(),
            })
            .collect();
        let histograms = registry
            .histograms
            .lock()
            .expect("metrics lock")
            .iter()
            .map(|(name, h)| {
                let now = h.bucket_snapshot();
                let prev = self
                    .last_buckets
                    .insert(name.clone(), now)
                    .unwrap_or([0; HISTOGRAM_BUCKETS]);
                // Windowed bucket deltas; a reset histogram (bucket went
                // backwards) restarts the baseline at its reborn counts.
                let mut win = [0u64; HISTOGRAM_BUCKETS];
                let mut reset = false;
                for i in 0..HISTOGRAM_BUCKETS {
                    if now[i] < prev[i] {
                        reset = true;
                        break;
                    }
                    win[i] = now[i] - prev[i];
                }
                if reset {
                    win = now;
                }
                HistogramWindow {
                    name: name.clone(),
                    delta: win.iter().sum(),
                    p50: quantile_of(&win, 0.50),
                    p90: quantile_of(&win, 0.90),
                    p99: quantile_of(&win, 0.99),
                }
            })
            .collect();
        if self.windows.len() == self.capacity {
            self.windows.pop_front();
        }
        self.windows.push_back(Window {
            seq,
            elapsed_units,
            counters,
            gauges,
            histograms,
        });
        self.total_ticks += 1;
        self.windows.back().expect("just pushed")
    }

    /// Retained windows, oldest first.
    pub fn windows(&self) -> impl DoubleEndedIterator<Item = &Window> {
        self.windows.iter()
    }

    /// The most recently closed window.
    pub fn latest(&self) -> Option<&Window> {
        self.windows.back()
    }

    /// Windows currently retained.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// Whether no window has closed yet.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Ticks ever taken (including windows already evicted).
    pub fn total_ticks(&self) -> u64 {
        self.total_ticks
    }
}

/// What an [`SloSpec`] holds below its bound.
#[derive(Debug, Clone, PartialEq)]
pub enum SloKind {
    /// The named histogram's *windowed* `q`-quantile must stay below
    /// `bound` (e.g. `edge p99 exec_us < 1_000_000`). Empty windows read
    /// 0 and comply.
    QuantileBelow {
        /// Histogram name as registered.
        metric: String,
        /// Quantile in `0.0..=1.0` (snapped to p50/p90/p99).
        q: f64,
        /// Exclusive upper bound on the windowed quantile.
        bound: u64,
    },
    /// Per-window `num` delta over `den` delta must stay below
    /// `max_permille`/1000 (e.g. shed ratio < 5%). Windows with a zero
    /// denominator comply.
    RatioBelow {
        /// Numerator counter name.
        num: String,
        /// Denominator counter name.
        den: String,
        /// Exclusive ceiling in permille (parts per thousand).
        max_permille: u64,
    },
    /// The named counter's per-window delta must stay at or below
    /// `max_delta` (e.g. zero re-diverged sites per window).
    DeltaAtMost {
        /// Counter name as registered.
        metric: String,
        /// Inclusive ceiling on the per-window delta.
        max_delta: u64,
    },
}

/// A declarative SLO objective evaluated as a fast/slow burn-rate rule.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Stable rule name (JSON key, dashboard label).
    pub name: String,
    /// The objective.
    pub kind: SloKind,
    /// Short lookback: the alert fires only when **every** one of the
    /// last `fast_windows` windows violates, and resolves when none do.
    pub fast_windows: usize,
    /// Long lookback: firing additionally requires at least half of the
    /// last `slow_windows` windows to violate (burn-rate confirmation).
    pub slow_windows: usize,
}

impl SloSpec {
    /// A rule with 1-window fast and 4-window slow lookbacks.
    pub fn new(name: &str, kind: SloKind) -> SloSpec {
        SloSpec {
            name: name.to_string(),
            kind,
            fast_windows: 1,
            slow_windows: 4,
        }
    }

    /// Builder-style: set both lookbacks (each min 1; slow is raised to
    /// at least fast).
    pub fn with_lookbacks(mut self, fast: usize, slow: usize) -> SloSpec {
        self.fast_windows = fast.max(1);
        self.slow_windows = slow.max(self.fast_windows);
        self
    }

    /// Whether `window` violates the objective.
    pub fn violated(&self, window: &Window) -> bool {
        match &self.kind {
            SloKind::QuantileBelow { metric, q, bound } => {
                window.hist_quantile(metric, *q) >= *bound
            }
            SloKind::RatioBelow {
                num,
                den,
                max_permille,
            } => {
                let d = window.counter_delta(den);
                d > 0 && window.counter_delta(num) * 1000 / d >= *max_permille
            }
            SloKind::DeltaAtMost { metric, max_delta } => window.counter_delta(metric) > *max_delta,
        }
    }

    /// One-line description of the objective (dashboard / alert detail).
    pub fn objective(&self) -> String {
        match &self.kind {
            SloKind::QuantileBelow { metric, q, bound } => {
                format!("windowed p{:.0} {metric} < {bound}", q * 100.0)
            }
            SloKind::RatioBelow {
                num,
                den,
                max_permille,
            } => format!("{num}/{den} < {max_permille}permille"),
            SloKind::DeltaAtMost { metric, max_delta } => {
                format!("{metric} delta <= {max_delta} per window")
            }
        }
    }
}

/// Alert lifecycle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertState {
    /// The burn-rate rule is in violation.
    Firing,
    /// A previously firing rule has recovered.
    Resolved,
}

impl AlertState {
    /// Stable lowercase tag (JSON, metrics suffixes).
    pub fn tag(self) -> &'static str {
        match self {
            AlertState::Firing => "firing",
            AlertState::Resolved => "resolved",
        }
    }
}

/// One typed alert transition: the moment a rule changed state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alert {
    /// The rule's [`SloSpec::name`].
    pub slo: String,
    /// The state entered at this transition.
    pub state: AlertState,
    /// Sample sequence of the window that triggered the transition.
    pub seq: u64,
    /// Fraction of the fast lookback violating, in permille.
    pub fast_burn_permille: u64,
    /// Fraction of the slow lookback violating, in permille.
    pub slow_burn_permille: u64,
    /// Human-readable objective text.
    pub detail: String,
}

/// Live evaluation status of one rule (rendered in JSON and dashboard).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloStatus {
    /// Rule name.
    pub name: String,
    /// Whether the rule is currently firing.
    pub firing: bool,
    /// Fast-lookback burn in permille.
    pub fast_burn_permille: u64,
    /// Slow-lookback burn in permille.
    pub slow_burn_permille: u64,
    /// Objective text.
    pub objective: String,
}

/// A set of burn-rate rules with firing state and a transition log.
#[derive(Debug, Default)]
pub struct AlertRules {
    slos: Vec<SloSpec>,
    firing: Vec<bool>,
    transitions: Vec<Alert>,
}

/// Retained transition-log bound — old transitions beyond it are
/// dropped oldest-first (the counts in `serve.alerts.*` are cumulative).
const MAX_TRANSITIONS: usize = 1024;

impl AlertRules {
    /// An empty rule set.
    pub fn new() -> AlertRules {
        AlertRules::default()
    }

    /// Adds a rule (initially not firing).
    pub fn add(&mut self, spec: SloSpec) {
        self.slos.push(spec);
        self.firing.push(false);
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.slos.len()
    }

    /// Whether no rule is registered.
    pub fn is_empty(&self) -> bool {
        self.slos.is_empty()
    }

    /// Burn fraction in permille over the last `lookback` windows.
    fn burn_permille(spec: &SloSpec, ts: &TimeSeries, lookback: usize) -> u64 {
        let lookback = lookback.max(1);
        let considered: Vec<&Window> = ts.windows().rev().take(lookback).collect();
        if considered.is_empty() {
            return 0;
        }
        let violated = considered.iter().filter(|w| spec.violated(w)).count();
        (violated * 1000 / considered.len()) as u64
    }

    /// Evaluates every rule against the series' current ring and
    /// returns the transitions (newly fired / newly resolved) this
    /// evaluation produced. Firing requires a full fast-lookback burn
    /// (1000 permille) **and** at least a half slow-lookback burn, with
    /// the ring holding at least `fast_windows` windows; resolving
    /// requires a zero fast burn.
    pub fn evaluate(&mut self, ts: &TimeSeries) -> Vec<Alert> {
        let Some(latest_seq) = ts.latest().map(|w| w.seq) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for (spec, firing) in self.slos.iter().zip(self.firing.iter_mut()) {
            let fast = Self::burn_permille(spec, ts, spec.fast_windows);
            let slow = Self::burn_permille(spec, ts, spec.slow_windows);
            let next = if *firing {
                fast > 0 // hold until the fast lookback is fully clean
            } else {
                ts.len() >= spec.fast_windows && fast >= 1000 && slow >= 500
            };
            if next != *firing {
                *firing = next;
                out.push(Alert {
                    slo: spec.name.clone(),
                    state: if next {
                        AlertState::Firing
                    } else {
                        AlertState::Resolved
                    },
                    seq: latest_seq,
                    fast_burn_permille: fast,
                    slow_burn_permille: slow,
                    detail: spec.objective(),
                });
            }
        }
        for a in &out {
            self.transitions.push(a.clone());
        }
        if self.transitions.len() > MAX_TRANSITIONS {
            let drop = self.transitions.len() - MAX_TRANSITIONS;
            self.transitions.drain(..drop);
        }
        out
    }

    /// Current status of every rule against `ts` (no state change).
    pub fn statuses(&self, ts: &TimeSeries) -> Vec<SloStatus> {
        self.slos
            .iter()
            .zip(self.firing.iter())
            .map(|(spec, &firing)| SloStatus {
                name: spec.name.clone(),
                firing,
                fast_burn_permille: Self::burn_permille(spec, ts, spec.fast_windows),
                slow_burn_permille: Self::burn_permille(spec, ts, spec.slow_windows),
                objective: spec.objective(),
            })
            .collect()
    }

    /// Whether the named rule is currently firing.
    pub fn is_firing(&self, name: &str) -> bool {
        self.slos
            .iter()
            .position(|s| s.name == name)
            .is_some_and(|i| self.firing[i])
    }

    /// The retained transition log, oldest first.
    pub fn transitions(&self) -> &[Alert] {
        &self.transitions
    }

    /// Renders rule statuses and the transition log as a
    /// `bridge-alerts/1` JSON document (one object, deterministic
    /// ordering: rules in registration order, transitions oldest
    /// first).
    pub fn to_json(&self, ts: &TimeSeries) -> String {
        let mut out = String::from("{\"schema\":\"");
        out.push_str(ALERTS_SCHEMA);
        out.push_str(&format!(
            "\",\"seq\":{},\"windows\":{},\"ticks\":{},\"slos\":[",
            ts.latest().map_or(0, |w| w.seq),
            ts.len(),
            ts.total_ticks()
        ));
        for (i, s) in self.statuses(ts).iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"state\":\"{}\",\"fast_burn_permille\":{},\
                 \"slow_burn_permille\":{},\"objective\":\"{}\"}}",
                json_escape(&s.name),
                if s.firing { "firing" } else { "ok" },
                s.fast_burn_permille,
                s.slow_burn_permille,
                json_escape(&s.objective)
            ));
        }
        out.push_str("],\"transitions\":[");
        for (i, t) in self.transitions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"slo\":\"{}\",\"state\":\"{}\",\"seq\":{},\
                 \"fast_burn_permille\":{},\"slow_burn_permille\":{}}}",
                json_escape(&t.slo),
                t.state.tag(),
                t.seq,
                t.fast_burn_permille,
                t.slow_burn_permille
            ));
        }
        out.push_str("]}");
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' | '\\' => {
                out.push('\\');
                out.push(c);
            }
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_carry_deltas_and_windowed_quantiles() {
        let r = Registry::new();
        let c = r.counter("dbt.traps");
        let h = r.histogram("exec.us");
        let mut ts = TimeSeries::new(4);

        c.add(10);
        h.observe(5);
        let w1 = ts.tick(&r, 1000).clone();
        assert_eq!(w1.counter_delta("dbt.traps"), 10);
        assert_eq!(w1.counters[0].rate_per_m, 10_000, "10 per 1000 units");
        assert_eq!(w1.histograms[0].delta, 1);
        assert_eq!(w1.histograms[0].p99, 7, "bucket [4,7] upper bound");

        // The second window sees only what happened inside it: the
        // cumulative histogram now holds {5, 1000} but the windowed p50
        // reflects 1000 alone.
        c.add(2);
        h.observe(1000);
        let w2 = ts.tick(&r, 500).clone();
        assert_eq!(w2.counter_delta("dbt.traps"), 2);
        assert_eq!(w2.counters[0].total, 12);
        assert_eq!(w2.counters[0].rate_per_m, 4000, "2 per 500 units");
        assert_eq!(w2.histograms[0].delta, 1);
        assert_eq!(w2.histograms[0].p50, 1023, "windowed, not cumulative");
        assert!(w2.seq > w1.seq, "shared sequence advances per tick");

        // An empty window reads zero everywhere.
        let w3 = ts.tick(&r, 500).clone();
        assert_eq!(w3.counter_delta("dbt.traps"), 0);
        assert_eq!(w3.histograms[0].delta, 0);
        assert_eq!(w3.histograms[0].p99, 0);
    }

    #[test]
    fn ring_is_fixed_capacity() {
        let r = Registry::new();
        r.counter("x").inc();
        let mut ts = TimeSeries::new(3);
        for _ in 0..10 {
            ts.tick(&r, 1);
        }
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.capacity(), 3);
        assert_eq!(ts.total_ticks(), 10);
        // Oldest-first iteration covers exactly the last 3 ticks.
        let seqs: Vec<u64> = ts.windows().map(|w| w.seq).collect();
        assert_eq!(seqs, vec![8, 9, 10]);
        assert_eq!(ts.latest().unwrap().seq, 10);
    }

    #[test]
    fn burn_rate_fires_and_resolves_with_hysteresis() {
        let r = Registry::new();
        let shed = r.counter("edge.shed");
        let req = r.counter("edge.requests");
        let mut ts = TimeSeries::new(8);
        let mut rules = AlertRules::new();
        rules.add(
            SloSpec::new(
                "shed_ratio",
                SloKind::RatioBelow {
                    num: "edge.shed".into(),
                    den: "edge.requests".into(),
                    max_permille: 100, // < 10%
                },
            )
            .with_lookbacks(1, 4),
        );

        // Healthy window: 1 shed / 100 requests.
        req.add(100);
        shed.add(1);
        ts.tick(&r, 1000);
        assert!(rules.evaluate(&ts).is_empty());
        assert!(!rules.is_firing("shed_ratio"));

        // One fully burning window fires (fast=1 window at 1000‰,
        // slow=2 windows at 500‰).
        req.add(100);
        shed.add(50);
        ts.tick(&r, 1000);
        let fired = rules.evaluate(&ts);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].state, AlertState::Firing);
        assert_eq!(fired[0].fast_burn_permille, 1000);
        assert!(rules.is_firing("shed_ratio"));

        // Still violating: no new transition (level-triggered record,
        // edge-triggered log).
        req.add(100);
        shed.add(50);
        ts.tick(&r, 1000);
        assert!(rules.evaluate(&ts).is_empty());

        // One clean window resolves (fast lookback = 1 window).
        req.add(100);
        ts.tick(&r, 1000);
        let resolved = rules.evaluate(&ts);
        assert_eq!(resolved.len(), 1);
        assert_eq!(resolved[0].state, AlertState::Resolved);
        assert!(!rules.is_firing("shed_ratio"));

        // The log kept both transitions in order.
        let log = rules.transitions();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].state, AlertState::Firing);
        assert_eq!(log[1].state, AlertState::Resolved);
        assert!(log[0].seq < log[1].seq);
    }

    #[test]
    fn slow_lookback_suppresses_one_bad_window_in_a_long_history() {
        let r = Registry::new();
        let bad = r.counter("watch.rediverged");
        let mut ts = TimeSeries::new(16);
        let mut rules = AlertRules::new();
        rules.add(
            SloSpec::new(
                "rediverge",
                SloKind::DeltaAtMost {
                    metric: "watch.rediverged".into(),
                    max_delta: 0,
                },
            )
            .with_lookbacks(2, 8),
        );
        // Six clean windows of history.
        for _ in 0..6 {
            ts.tick(&r, 1);
            rules.evaluate(&ts);
        }
        // One violating window: fast lookback (2) is only half burnt.
        bad.inc();
        ts.tick(&r, 1);
        assert!(rules.evaluate(&ts).is_empty(), "one bad window cannot fire");
        // A second consecutive violation burns fast fully, but slow is
        // 2/8 = 250‰ < 500‰ — still suppressed.
        bad.inc();
        ts.tick(&r, 1);
        assert!(rules.evaluate(&ts).is_empty(), "slow burn not confirmed");
        // Sustained violation crosses the slow threshold and fires.
        let mut fired = false;
        for _ in 0..4 {
            bad.inc();
            ts.tick(&r, 1);
            fired |= !rules.evaluate(&ts).is_empty();
        }
        assert!(fired, "sustained burn fires");
        assert!(rules.is_firing("rediverge"));
    }

    #[test]
    fn quantile_slo_watches_the_windowed_tail() {
        let r = Registry::new();
        let h = r.histogram("edge.exec_us");
        let mut ts = TimeSeries::new(4);
        let mut rules = AlertRules::new();
        rules.add(SloSpec::new(
            "exec_p99",
            SloKind::QuantileBelow {
                metric: "edge.exec_us".into(),
                q: 0.99,
                bound: 1024,
            },
        ));
        // Slow history, then a fast window: the *windowed* p99 recovers
        // even though the cumulative p99 stays slow forever.
        for _ in 0..10 {
            h.observe(50_000);
        }
        ts.tick(&r, 1000);
        let t = rules.evaluate(&ts);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].state, AlertState::Firing);
        for _ in 0..10 {
            h.observe(10);
        }
        ts.tick(&r, 1000);
        let t = rules.evaluate(&ts);
        assert_eq!(t.len(), 1, "cumulative quantiles would never resolve");
        assert_eq!(t[0].state, AlertState::Resolved);
    }

    #[test]
    fn alerts_json_is_wellformed_and_deterministic() {
        let r = Registry::new();
        r.counter("watch.rediverged").inc();
        let mut ts = TimeSeries::new(4);
        let mut rules = AlertRules::new();
        rules.add(SloSpec::new(
            "redi\"verge",
            SloKind::DeltaAtMost {
                metric: "watch.rediverged".into(),
                max_delta: 0,
            },
        ));
        ts.tick(&r, 7);
        rules.evaluate(&ts);
        let doc = rules.to_json(&ts);
        assert!(doc.starts_with("{\"schema\":\"bridge-alerts/1\",\"seq\":1,\"windows\":1"));
        assert!(doc.contains("\"name\":\"redi\\\"verge\",\"state\":\"firing\""));
        assert!(doc.contains("\"transitions\":[{\"slo\":\"redi\\\"verge\",\"state\":\"firing\""));
        assert!(doc.ends_with("]}"));
        assert_eq!(doc, rules.to_json(&ts), "pure function of state");
        assert_eq!(doc.matches('\n').count(), 0, "single-line document");
    }

    #[test]
    fn transition_log_is_bounded() {
        let r = Registry::new();
        let c = r.counter("flap");
        let mut ts = TimeSeries::new(2);
        let mut rules = AlertRules::new();
        rules.add(SloSpec::new(
            "flappy",
            SloKind::DeltaAtMost {
                metric: "flap".into(),
                max_delta: 0,
            },
        ));
        // Alternate violating/clean windows to generate 2 transitions
        // per cycle; the log must stay bounded.
        for _ in 0..(MAX_TRANSITIONS) {
            c.inc();
            ts.tick(&r, 1);
            rules.evaluate(&ts);
            ts.tick(&r, 1);
            rules.evaluate(&ts);
        }
        assert!(rules.transitions().len() <= MAX_TRANSITIONS);
        assert_eq!(
            rules.transitions().last().unwrap().state,
            AlertState::Resolved,
            "newest transitions are the ones retained"
        );
    }
}
