//! Zero-dependency metrics for DigitalBridge-RS.
//!
//! Three instrument kinds, chosen for the simulator's needs:
//!
//! * [`Counter`] — monotonic `u64`, for event totals (traps delivered,
//!   requests served, memoization hits);
//! * [`Gauge`] — signed instantaneous level with a high watermark, for
//!   queue depth and other "current value" observations;
//! * [`Histogram`] — fixed 65-bucket log2 histogram over `u64` samples
//!   with exact count/sum and conservative p50/p90/p99 readout, for
//!   per-request cycle distributions.
//!
//! All instruments are lock-free atomics and `Sync`; a [`Registry`] hands
//! out `Arc`-shared instruments by name and renders the whole set two
//! ways: a `bridge-metrics/1` JSON document and a Prometheus-style text
//! exposition. Both orderings come from a `BTreeMap`, so exposition is
//! deterministic for deterministic inputs.
//!
//! Determinism contract: instruments measuring the *simulated-cycle*
//! domain (exec cycles, trap counts) are exactly reproducible run-to-run
//! because the simulator itself is. Nothing in this crate reads host
//! time — any wall-clock metric must be fed by the caller and is
//! nondeterministic by nature, which the caller should document.
//!
//! Histogram buckets are value-indexed: bucket 0 holds the sample `0`,
//! bucket `i >= 1` holds samples in `[2^(i-1), 2^i)`, i.e. upper bound
//! `2^i - 1`. Quantiles are *conservative*: [`Histogram::quantile`]
//! returns the inclusive upper bound of the bucket containing the
//! requested rank, so the true quantile is never under-reported.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Schema tag of the JSON document [`Registry::to_json`] renders.
pub const SCHEMA: &str = "bridge-metrics/1";

/// Number of histogram buckets: one for zero plus one per bit of `u64`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A monotonic event counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// An instantaneous signed level with a high watermark. `set`/`add`/`sub`
/// move the level; the watermark remembers the highest level ever
/// observed (useful for "peak queue depth" without sampling).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
    high: AtomicI64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the level.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
        self.high.fetch_max(v, Ordering::Relaxed);
    }

    /// Moves the level up by `n`.
    pub fn add(&self, n: i64) {
        let now = self.value.fetch_add(n, Ordering::Relaxed) + n;
        self.high.fetch_max(now, Ordering::Relaxed);
    }

    /// Moves the level down by `n`.
    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// The current level.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// The highest level ever set or reached via `add`.
    pub fn high_watermark(&self) -> i64 {
        self.high.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket log2 histogram over `u64` samples.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// The bucket index for sample `v`: 0 for zero, `ilog2(v) + 1` otherwise.
fn bucket_of(v: u64) -> usize {
    match v {
        0 => 0,
        n => n.ilog2() as usize + 1,
    }
}

/// Inclusive upper bound of bucket `i` (`2^i - 1`, saturating at
/// `u64::MAX` for the top bucket).
fn bucket_upper(i: usize) -> u64 {
    if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample.
    pub fn observe(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Exact sum of all samples (wrapping only past `u64::MAX` total).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean sample, zero when empty.
    pub fn mean(&self) -> u64 {
        match self.count() {
            0 => 0,
            n => self.sum() / n,
        }
    }

    /// The conservative `q`-quantile (`0.0..=1.0`): the inclusive upper
    /// bound of the bucket holding the sample of that rank. Zero when
    /// empty. Deterministic — a pure function of the recorded samples.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        u64::MAX
    }

    /// Median upper bound.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile upper bound.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile upper bound.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// `(inclusive upper bound, count)` for each non-empty bucket,
    /// ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((bucket_upper(i), n))
            })
            .collect()
    }
}

/// A named set of shared instruments. Cloning the `Arc`-wrapped registry
/// is the intended sharing pattern; instrument lookups are get-or-create
/// and hand back `Arc`s so hot paths can cache the handle and bypass the
/// name map entirely.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter named `name`, created at zero on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("metrics lock");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// The gauge named `name`, created at zero on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().expect("metrics lock");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// The histogram named `name`, created empty on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("metrics lock");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Number of registered instruments across all kinds.
    pub fn len(&self) -> usize {
        self.counters.lock().expect("metrics lock").len()
            + self.gauges.lock().expect("metrics lock").len()
            + self.histograms.lock().expect("metrics lock").len()
    }

    /// Whether no instrument was ever requested.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders the registry as a single-object `bridge-metrics/1` JSON
    /// document. Instruments appear in name order within their kind, so
    /// the document is a pure function of the recorded values.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"schema\":\"");
        out.push_str(SCHEMA);
        out.push_str("\",\"counters\":{");
        let counters = self.counters.lock().expect("metrics lock");
        for (i, (name, c)) in counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":{}", c.get()));
        }
        drop(counters);
        out.push_str("},\"gauges\":{");
        let gauges = self.gauges.lock().expect("metrics lock");
        for (i, (name, g)) in gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{name}\":{{\"value\":{},\"high_watermark\":{}}}",
                g.get(),
                g.high_watermark()
            ));
        }
        drop(gauges);
        out.push_str("},\"histograms\":{");
        let histograms = self.histograms.lock().expect("metrics lock");
        for (i, (name, h)) in histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{name}\":{{\"count\":{},\"sum\":{},\"mean\":{},\
                 \"p50\":{},\"p90\":{},\"p99\":{}}}",
                h.count(),
                h.sum(),
                h.mean(),
                h.p50(),
                h.p90(),
                h.p99()
            ));
        }
        drop(histograms);
        out.push_str("}}");
        out
    }

    /// Renders the registry as a Prometheus-style text exposition:
    /// `# TYPE` comment lines, counters and gauges as bare samples,
    /// histograms as cumulative `_bucket{le="..."}` series plus `_sum`
    /// and `_count`. Metric names are sanitized (`.` and `-` become `_`)
    /// to the conventional charset.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, c) in self.counters.lock().expect("metrics lock").iter() {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} counter\n{n} {}\n", c.get()));
        }
        for (name, g) in self.gauges.lock().expect("metrics lock").iter() {
            let n = sanitize(name);
            out.push_str(&format!(
                "# TYPE {n} gauge\n{n} {}\n{n}_high_watermark {}\n",
                g.get(),
                g.high_watermark()
            ));
        }
        for (name, h) in self.histograms.lock().expect("metrics lock").iter() {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} histogram\n"));
            let mut cumulative = 0u64;
            for (upper, count) in h.nonzero_buckets() {
                cumulative += count;
                out.push_str(&format!("{n}_bucket{{le=\"{upper}\"}} {cumulative}\n"));
            }
            out.push_str(&format!(
                "{n}_bucket{{le=\"+Inf\"}} {}\n{n}_sum {}\n{n}_count {}\n",
                h.count(),
                h.sum(),
                h.count()
            ));
        }
        out
    }
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| match c {
            'a'..='z' | 'A'..='Z' | '0'..='9' | '_' | ':' => c,
            _ => '_',
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_tracks_level_and_watermark() {
        let g = Gauge::new();
        g.add(5);
        g.add(3);
        g.sub(6);
        assert_eq!(g.get(), 2);
        assert_eq!(g.high_watermark(), 8);
        g.set(1);
        assert_eq!(g.high_watermark(), 8, "watermark never regresses");
    }

    #[test]
    fn histogram_buckets_are_log2_with_zero_bucket() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn quantiles_are_conservative_upper_bounds() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 100, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1106);
        assert_eq!(h.mean(), 221);
        // Rank 3 of 5 is the sample 3, bucket [2,3] → upper bound 3.
        assert_eq!(h.p50(), 3);
        // p90 → rank 5 → sample 1000, bucket [512,1023] → 1023.
        assert_eq!(h.p90(), 1023);
        assert_eq!(h.p99(), 1023);
        assert!(h.p99() >= 1000, "true quantile never under-reported");
        assert_eq!(Histogram::new().p50(), 0, "empty histogram reads zero");
    }

    #[test]
    fn registry_shares_instruments_by_name() {
        let r = Registry::new();
        r.counter("a.b").inc();
        r.counter("a.b").inc();
        assert_eq!(r.counter("a.b").get(), 2);
        assert_eq!(r.len(), 1);
        r.gauge("q").set(3);
        r.histogram("h").observe(7);
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
    }

    #[test]
    fn json_document_is_deterministic_and_ordered() {
        let build = || {
            let r = Registry::new();
            r.counter("z.traps").add(3);
            r.counter("a.requests").add(9);
            r.gauge("queue.depth").set(4);
            r.histogram("exec.cycles").observe(100);
            r.to_json()
        };
        let doc = build();
        assert_eq!(doc, build(), "pure function of recorded values");
        assert!(doc.starts_with("{\"schema\":\"bridge-metrics/1\""));
        assert!(
            doc.find("a.requests").unwrap() < doc.find("z.traps").unwrap(),
            "name order, not insertion order"
        );
        assert!(doc.contains("\"queue.depth\":{\"value\":4,\"high_watermark\":4}"));
        assert!(doc.contains("\"count\":1,\"sum\":100"));
        assert!(doc.ends_with("}}"));
    }

    #[test]
    fn prometheus_exposition_shape() {
        let r = Registry::new();
        r.counter("serve.requests").add(14);
        r.gauge("serve.queue-depth").set(2);
        let h = r.histogram("serve.exec_cycles");
        h.observe(5);
        h.observe(900);
        let text = r.to_prometheus();
        assert!(text.contains("# TYPE serve_requests counter\nserve_requests 14\n"));
        assert!(
            text.contains("serve_queue_depth 2\n"),
            "dots/dashes sanitized"
        );
        assert!(text.contains("# TYPE serve_exec_cycles histogram\n"));
        assert!(text.contains("serve_exec_cycles_bucket{le=\"7\"} 1\n"));
        assert!(
            text.contains("serve_exec_cycles_bucket{le=\"1023\"} 2\n"),
            "bucket counts are cumulative"
        );
        assert!(text.contains("serve_exec_cycles_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("serve_exec_cycles_sum 905\n"));
        assert!(text.contains("serve_exec_cycles_count 2\n"));
    }
}
