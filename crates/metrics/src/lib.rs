//! Zero-dependency metrics for DigitalBridge-RS.
//!
//! Three instrument kinds, chosen for the simulator's needs:
//!
//! * [`Counter`] — monotonic `u64`, for event totals (traps delivered,
//!   requests served, memoization hits);
//! * [`Gauge`] — signed instantaneous level with a high watermark, for
//!   queue depth and other "current value" observations;
//! * [`Histogram`] — fixed 65-bucket log2 histogram over `u64` samples
//!   with exact count/sum and conservative p50/p90/p99 readout, for
//!   per-request cycle distributions.
//!
//! All instruments are lock-free atomics and `Sync`; a [`Registry`] hands
//! out `Arc`-shared instruments by name and renders the whole set two
//! ways: a `bridge-metrics/1` JSON document and a Prometheus-style text
//! exposition. Both orderings come from a `BTreeMap`, so exposition is
//! deterministic for deterministic inputs.
//!
//! Determinism contract: instruments measuring the *simulated-cycle*
//! domain (exec cycles, trap counts) are exactly reproducible run-to-run
//! because the simulator itself is. Nothing in this crate reads host
//! time — any wall-clock metric must be fed by the caller and is
//! nondeterministic by nature, which the caller should document.
//!
//! Histogram buckets are value-indexed: bucket 0 holds the sample `0`,
//! bucket `i >= 1` holds samples in `[2^(i-1), 2^i)`, i.e. upper bound
//! `2^i - 1`. Quantiles are *conservative*: [`Histogram::quantile`]
//! returns the inclusive upper bound of the bucket containing the
//! requested rank, so the true quantile is never under-reported.

pub mod timeseries;

pub use timeseries::{
    Alert, AlertRules, AlertState, CounterWindow, GaugeWindow, HistogramWindow, SloKind, SloSpec,
    SloStatus, TimeSeries, Window, ALERTS_SCHEMA,
};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Schema tag of the JSON document [`Registry::to_json`] renders.
pub const SCHEMA: &str = "bridge-metrics/1";

/// Number of histogram buckets: one for zero plus one per bit of `u64`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A monotonic event counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// An instantaneous signed level with a high watermark. `set`/`add`/`sub`
/// move the level; the watermark remembers the highest level ever
/// observed (useful for "peak queue depth" without sampling).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
    high: AtomicI64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the level.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
        self.high.fetch_max(v, Ordering::Relaxed);
    }

    /// Moves the level up by `n`.
    pub fn add(&self, n: i64) {
        let now = self.value.fetch_add(n, Ordering::Relaxed) + n;
        self.high.fetch_max(now, Ordering::Relaxed);
    }

    /// Moves the level down by `n`.
    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// The current level.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// The highest level ever set or reached via `add`.
    pub fn high_watermark(&self) -> i64 {
        self.high.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket log2 histogram over `u64` samples.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// The bucket index for sample `v`: 0 for zero, `ilog2(v) + 1` otherwise.
fn bucket_of(v: u64) -> usize {
    match v {
        0 => 0,
        n => n.ilog2() as usize + 1,
    }
}

/// Inclusive upper bound of bucket `i` (`2^i - 1`, saturating at
/// `u64::MAX` for the top bucket).
fn bucket_upper(i: usize) -> u64 {
    if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample.
    pub fn observe(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Exact sum of all samples (wrapping only past `u64::MAX` total).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean sample, zero when empty.
    pub fn mean(&self) -> u64 {
        match self.count() {
            0 => 0,
            n => self.sum() / n,
        }
    }

    /// The conservative `q`-quantile (`0.0..=1.0`): the inclusive upper
    /// bound of the bucket holding the sample of that rank. Zero when
    /// empty. Deterministic — a pure function of the recorded samples.
    pub fn quantile(&self, q: f64) -> u64 {
        // Snapshot the buckets once and derive the total (and hence the
        // rank) from that snapshot. Reading `count()` separately would
        // race with a concurrent `observe` between the two loads and
        // could make the rank exceed the bucket sum, spuriously falling
        // through to `u64::MAX`.
        let snapshot: [u64; HISTOGRAM_BUCKETS] =
            std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed));
        let n: u64 = snapshot.iter().sum();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &b) in snapshot.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        unreachable!("rank <= snapshot sum by construction")
    }

    /// Median upper bound.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile upper bound.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile upper bound.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// `(inclusive upper bound, count)` for each non-empty bucket,
    /// ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((bucket_upper(i), n))
            })
            .collect()
    }

    /// A consistent point-in-time copy of every bucket count, for
    /// windowed (delta) quantile computation in [`timeseries`].
    pub(crate) fn bucket_snapshot(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }
}

/// The conservative `q`-quantile over an explicit bucket-count array
/// (same convention as [`Histogram::quantile`], but over a caller-built
/// snapshot — [`timeseries`] uses it on per-window bucket deltas).
pub(crate) fn quantile_of(buckets: &[u64; HISTOGRAM_BUCKETS], q: f64) -> u64 {
    let n: u64 = buckets.iter().sum();
    if n == 0 {
        return 0;
    }
    let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
    let mut seen = 0u64;
    for (i, &b) in buckets.iter().enumerate() {
        seen += b;
        if seen >= rank {
            return bucket_upper(i);
        }
    }
    unreachable!("rank <= bucket sum by construction")
}

/// A named set of shared instruments. Cloning the `Arc`-wrapped registry
/// is the intended sharing pattern; instrument lookups are get-or-create
/// and hand back `Arc`s so hot paths can cache the handle and bypass the
/// name map entirely.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    help: Mutex<BTreeMap<String, String>>,
    /// One monotonic sequence shared by *every* sampler of this registry
    /// — [`HealthSampler`] snapshots and [`timeseries::TimeSeries`]
    /// ticks both draw from it, so interleaved health/alert scrapes can
    /// be totally ordered no matter which thread produced them.
    sample_seq: AtomicU64,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Attaches a `# HELP` description to the instrument named `name`
    /// (by its registered, pre-sanitization name). Undescribed
    /// instruments fall back to their registered name as help text, so
    /// the exposition always carries a HELP line per family.
    pub fn describe(&self, name: &str, help: &str) {
        self.help
            .lock()
            .expect("metrics lock")
            .insert(name.to_string(), help.to_string());
    }

    fn help_for(&self, name: &str) -> String {
        self.help
            .lock()
            .expect("metrics lock")
            .get(name)
            .cloned()
            .unwrap_or_else(|| name.to_string())
    }

    /// Draws the next value from the registry-wide monotonic sample
    /// sequence (starts at 1). Every health snapshot and every
    /// time-series window tick over this registry consumes exactly one
    /// value, so sequence numbers totally order interleaved samplers.
    pub fn next_sample_seq(&self) -> u64 {
        self.sample_seq.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// The counter named `name`, created at zero on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("metrics lock");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// The gauge named `name`, created at zero on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().expect("metrics lock");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// The histogram named `name`, created empty on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("metrics lock");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Number of registered instruments across all kinds.
    pub fn len(&self) -> usize {
        self.counters.lock().expect("metrics lock").len()
            + self.gauges.lock().expect("metrics lock").len()
            + self.histograms.lock().expect("metrics lock").len()
    }

    /// Whether no instrument was ever requested.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders the registry as a single-object `bridge-metrics/1` JSON
    /// document. Instruments appear in name order within their kind, so
    /// the document is a pure function of the recorded values.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"schema\":\"");
        out.push_str(SCHEMA);
        out.push_str("\",\"counters\":{");
        let counters = self.counters.lock().expect("metrics lock");
        for (i, (name, c)) in counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":{}", c.get()));
        }
        drop(counters);
        out.push_str("},\"gauges\":{");
        let gauges = self.gauges.lock().expect("metrics lock");
        for (i, (name, g)) in gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{name}\":{{\"value\":{},\"high_watermark\":{}}}",
                g.get(),
                g.high_watermark()
            ));
        }
        drop(gauges);
        out.push_str("},\"histograms\":{");
        let histograms = self.histograms.lock().expect("metrics lock");
        for (i, (name, h)) in histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{name}\":{{\"count\":{},\"sum\":{},\"mean\":{},\
                 \"p50\":{},\"p90\":{},\"p99\":{}}}",
                h.count(),
                h.sum(),
                h.mean(),
                h.p50(),
                h.p90(),
                h.p99()
            ));
        }
        drop(histograms);
        out.push_str("}}");
        out
    }

    /// Renders the registry as a Prometheus-style text exposition: a
    /// `# HELP` line then a `# TYPE` line per family, counters and
    /// gauges as bare samples, histograms as cumulative
    /// `_bucket{le="..."}` series plus `_sum` and `_count`. Metric names
    /// are sanitized (`.` and `-` become `_`) to the conventional
    /// charset; HELP text is escaped per the exposition format
    /// (backslash and newline).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, c) in self.counters.lock().expect("metrics lock").iter() {
            let n = sanitize(name);
            let help = escape_help(&self.help_for(name));
            out.push_str(&format!(
                "# HELP {n} {help}\n# TYPE {n} counter\n{n} {}\n",
                c.get()
            ));
        }
        for (name, g) in self.gauges.lock().expect("metrics lock").iter() {
            let n = sanitize(name);
            let help = escape_help(&self.help_for(name));
            // The watermark is a distinct metric name, so it needs its
            // own `# TYPE` line — conformant scrapers reject a sample
            // whose name differs from the preceding TYPE declaration.
            out.push_str(&format!(
                "# HELP {n} {help}\n# TYPE {n} gauge\n{n} {}\n\
                 # HELP {n}_high_watermark {help} (high watermark)\n\
                 # TYPE {n}_high_watermark gauge\n{n}_high_watermark {}\n",
                g.get(),
                g.high_watermark()
            ));
        }
        for (name, h) in self.histograms.lock().expect("metrics lock").iter() {
            let n = sanitize(name);
            let help = escape_help(&self.help_for(name));
            out.push_str(&format!("# HELP {n} {help}\n# TYPE {n} histogram\n"));
            let mut cumulative = 0u64;
            for (upper, count) in h.nonzero_buckets() {
                cumulative += count;
                out.push_str(&format!("{n}_bucket{{le=\"{upper}\"}} {cumulative}\n"));
            }
            out.push_str(&format!(
                "{n}_bucket{{le=\"+Inf\"}} {}\n{n}_sum {}\n{n}_count {}\n",
                h.count(),
                h.sum(),
                h.count()
            ));
        }
        out
    }
}

/// Escapes help text for a `# HELP` line: backslash and newline are the
/// two characters the exposition format requires escaping in help text.
fn escape_help(help: &str) -> String {
    let mut out = String::with_capacity(help.len());
    for c in help.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Schema tag of the one-line JSON document [`HealthSnapshot::to_json_line`]
/// renders.
pub const HEALTH_SCHEMA: &str = "bridge-health/1";

/// Rolling-window view of one counter: the cumulative total, the delta
/// over the sampling window, and the derived per-second rate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterHealth {
    /// Instrument name as registered.
    pub name: String,
    /// Cumulative total at sample time.
    pub total: u64,
    /// Increase since the previous sample (the full total on the first).
    pub delta: u64,
    /// `delta` scaled to events per second over the window (integer,
    /// rounded down; zero when the window is zero).
    pub rate_per_sec: u64,
    /// The counter went *backwards* since the previous sample — the
    /// instrument was reset (its context evicted and rebuilt between
    /// samples). The baseline restarts: `delta` is the new total, not a
    /// clamped zero, and the JSON line carries a `"reset":true` marker.
    pub reset: bool,
}

/// Point-in-time view of one gauge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeHealth {
    /// Instrument name as registered.
    pub name: String,
    /// Current level.
    pub value: i64,
    /// Highest level ever observed.
    pub high_watermark: i64,
}

/// Rolling-window view of one histogram: cumulative quantiles plus the
/// sample delta over the window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramHealth {
    /// Instrument name as registered.
    pub name: String,
    /// Cumulative samples at sample time.
    pub count: u64,
    /// Samples recorded since the previous sample.
    pub delta: u64,
    /// Conservative cumulative quantile upper bounds.
    pub p50: u64,
    /// 90th percentile upper bound.
    pub p90: u64,
    /// 99th percentile upper bound.
    pub p99: u64,
}

/// One fleet-health observation: every instrument in a [`Registry`] at a
/// moment in time, with counter/histogram deltas and rates computed over
/// the window since the previous [`HealthSampler::sample`] call. Renders
/// as a single JSON line (`bridge-health/1`) so a fleet of contexts can
/// each append one line per sampling tick.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthSnapshot {
    /// Caller-supplied context label (e.g. `kernel/strategy/threshold`).
    pub context: String,
    /// Position in the registry-wide monotonic sample sequence
    /// ([`Registry::next_sample_seq`]) — shared with time-series window
    /// ticks, so interleaved health and alert scrapes can be totally
    /// ordered and out-of-order deltas detected.
    pub seq: u64,
    /// Window length in microseconds, as supplied by the caller. This
    /// crate never reads host time — wall windows are the caller's,
    /// simulated-cycle windows stay deterministic.
    pub window_us: u64,
    /// Counter views, name-ordered.
    pub counters: Vec<CounterHealth>,
    /// Gauge views, name-ordered.
    pub gauges: Vec<GaugeHealth>,
    /// Histogram views, name-ordered.
    pub histograms: Vec<HistogramHealth>,
}

impl HealthSnapshot {
    /// Renders the snapshot as one JSON line. Instruments appear in name
    /// order, so the line is a pure function of the sampled values.
    pub fn to_json_line(&self) -> String {
        let mut out = String::from("{\"schema\":\"");
        out.push_str(HEALTH_SCHEMA);
        out.push_str("\",\"context\":\"");
        for c in self.context.chars() {
            match c {
                '"' | '\\' => {
                    out.push('\\');
                    out.push(c);
                }
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push_str(&format!(
            "\",\"seq\":{},\"window_us\":{},\"counters\":{{",
            self.seq, self.window_us
        ));
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"total\":{},\"delta\":{},\"rate_per_sec\":{}{}}}",
                c.name,
                c.total,
                c.delta,
                c.rate_per_sec,
                if c.reset { ",\"reset\":true" } else { "" }
            ));
        }
        out.push_str("},\"gauges\":{");
        for (i, g) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"value\":{},\"high_watermark\":{}}}",
                g.name, g.value, g.high_watermark
            ));
        }
        out.push_str("},\"histograms\":{");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"delta\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
                h.name, h.count, h.delta, h.p50, h.p90, h.p99
            ));
        }
        out.push_str("}}");
        out
    }
}

/// Computes rolling-window deltas over successive looks at a [`Registry`].
/// Holds the previous sample's counter totals and histogram counts; each
/// [`HealthSampler::sample`] call returns the registry's current state
/// with deltas and rates relative to the last call (the first call's
/// deltas are the cumulative totals).
///
/// One sampler per registry: mixing registries would make deltas
/// meaningless. Not thread-safe by itself — wrap in a `Mutex` if several
/// threads sample the same window history.
#[derive(Debug, Default)]
pub struct HealthSampler {
    last_counters: BTreeMap<String, u64>,
    last_hist_counts: BTreeMap<String, u64>,
}

impl HealthSampler {
    /// A sampler with no history (first sample reports totals as deltas).
    pub fn new() -> HealthSampler {
        HealthSampler::default()
    }

    /// Samples every instrument in `registry` and advances the window.
    /// `window_us` is the wall (or simulated) time covered since the
    /// previous sample, used only for rate derivation. The snapshot is
    /// stamped with the registry's shared monotonic sample sequence.
    pub fn sample(&mut self, registry: &Registry, context: &str, window_us: u64) -> HealthSnapshot {
        let seq = registry.next_sample_seq();
        let rate = |delta: u64| {
            if window_us == 0 {
                0
            } else {
                (delta as u128 * 1_000_000 / window_us as u128) as u64
            }
        };
        let counters = registry
            .counters
            .lock()
            .expect("metrics lock")
            .iter()
            .map(|(name, c)| {
                let total = c.get();
                let prev = self.last_counters.insert(name.clone(), total).unwrap_or(0);
                // A counter that went backwards was reset (the context
                // behind it was evicted and rebuilt between samples).
                // Restart the baseline at zero — the window's delta is
                // everything the reborn counter accumulated — and say so,
                // instead of silently clamping the delta to zero.
                let reset = total < prev;
                let delta = if reset { total } else { total - prev };
                CounterHealth {
                    name: name.clone(),
                    total,
                    delta,
                    rate_per_sec: rate(delta),
                    reset,
                }
            })
            .collect();
        let gauges = registry
            .gauges
            .lock()
            .expect("metrics lock")
            .iter()
            .map(|(name, g)| GaugeHealth {
                name: name.clone(),
                value: g.get(),
                high_watermark: g.high_watermark(),
            })
            .collect();
        let histograms = registry
            .histograms
            .lock()
            .expect("metrics lock")
            .iter()
            .map(|(name, h)| {
                let count = h.count();
                let prev = self
                    .last_hist_counts
                    .insert(name.clone(), count)
                    .unwrap_or(0);
                HistogramHealth {
                    name: name.clone(),
                    count,
                    delta: count.saturating_sub(prev),
                    p50: h.p50(),
                    p90: h.p90(),
                    p99: h.p99(),
                }
            })
            .collect();
        HealthSnapshot {
            context: context.to_string(),
            seq,
            window_us,
            counters,
            gauges,
            histograms,
        }
    }
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| match c {
            'a'..='z' | 'A'..='Z' | '0'..='9' | '_' | ':' => c,
            _ => '_',
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_tracks_level_and_watermark() {
        let g = Gauge::new();
        g.add(5);
        g.add(3);
        g.sub(6);
        assert_eq!(g.get(), 2);
        assert_eq!(g.high_watermark(), 8);
        g.set(1);
        assert_eq!(g.high_watermark(), 8, "watermark never regresses");
    }

    #[test]
    fn histogram_buckets_are_log2_with_zero_bucket() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn quantiles_are_conservative_upper_bounds() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 100, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1106);
        assert_eq!(h.mean(), 221);
        // Rank 3 of 5 is the sample 3, bucket [2,3] → upper bound 3.
        assert_eq!(h.p50(), 3);
        // p90 → rank 5 → sample 1000, bucket [512,1023] → 1023.
        assert_eq!(h.p90(), 1023);
        assert_eq!(h.p99(), 1023);
        assert!(h.p99() >= 1000, "true quantile never under-reported");
        assert_eq!(Histogram::new().p50(), 0, "empty histogram reads zero");
    }

    #[test]
    fn registry_shares_instruments_by_name() {
        let r = Registry::new();
        r.counter("a.b").inc();
        r.counter("a.b").inc();
        assert_eq!(r.counter("a.b").get(), 2);
        assert_eq!(r.len(), 1);
        r.gauge("q").set(3);
        r.histogram("h").observe(7);
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
    }

    #[test]
    fn json_document_is_deterministic_and_ordered() {
        let build = || {
            let r = Registry::new();
            r.counter("z.traps").add(3);
            r.counter("a.requests").add(9);
            r.gauge("queue.depth").set(4);
            r.histogram("exec.cycles").observe(100);
            r.to_json()
        };
        let doc = build();
        assert_eq!(doc, build(), "pure function of recorded values");
        assert!(doc.starts_with("{\"schema\":\"bridge-metrics/1\""));
        assert!(
            doc.find("a.requests").unwrap() < doc.find("z.traps").unwrap(),
            "name order, not insertion order"
        );
        assert!(doc.contains("\"queue.depth\":{\"value\":4,\"high_watermark\":4}"));
        assert!(doc.contains("\"count\":1,\"sum\":100"));
        assert!(doc.ends_with("}}"));
    }

    #[test]
    fn prometheus_exposition_shape() {
        let r = Registry::new();
        r.counter("serve.requests").add(14);
        r.gauge("serve.queue-depth").set(2);
        let h = r.histogram("serve.exec_cycles");
        h.observe(5);
        h.observe(900);
        let text = r.to_prometheus();
        assert!(text.contains("# TYPE serve_requests counter\nserve_requests 14\n"));
        assert!(
            text.contains("serve_queue_depth 2\n"),
            "dots/dashes sanitized"
        );
        assert!(text.contains("# TYPE serve_exec_cycles histogram\n"));
        assert!(text.contains("serve_exec_cycles_bucket{le=\"7\"} 1\n"));
        assert!(
            text.contains("serve_exec_cycles_bucket{le=\"1023\"} 2\n"),
            "bucket counts are cumulative"
        );
        assert!(text.contains("serve_exec_cycles_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("serve_exec_cycles_sum 905\n"));
        assert!(text.contains("serve_exec_cycles_count 2\n"));
    }

    #[test]
    fn gauge_watermark_gets_its_own_type_line() {
        let r = Registry::new();
        r.gauge("queue.depth").set(7);
        let text = r.to_prometheus();
        assert!(text.contains("# TYPE queue_depth gauge\nqueue_depth 7\n"));
        assert!(
            text.contains(
                "# TYPE queue_depth_high_watermark gauge\nqueue_depth_high_watermark 7\n"
            ),
            "watermark series is a distinct metric and needs its own TYPE: {text}"
        );
    }

    #[test]
    fn empty_registry_expositions_are_empty_but_well_formed() {
        let r = Registry::new();
        assert!(r.is_empty());
        assert_eq!(
            r.to_json(),
            "{\"schema\":\"bridge-metrics/1\",\"counters\":{},\"gauges\":{},\"histograms\":{}}"
        );
        assert_eq!(r.to_prometheus(), "");
        let snap = HealthSampler::new().sample(&r, "empty", 0);
        assert_eq!(
            snap.to_json_line(),
            "{\"schema\":\"bridge-health/1\",\"context\":\"empty\",\"seq\":1,\"window_us\":0,\
             \"counters\":{},\"gauges\":{},\"histograms\":{}}"
        );
    }

    #[test]
    fn prometheus_every_sample_name_matches_a_type_declaration() {
        let r = Registry::new();
        r.counter("dbt.traps").add(3);
        r.gauge("serve.queue.depth").set(2);
        r.histogram("serve.exec_cycles").observe(100);
        r.histogram("serve.queue.wait_us").observe(0);
        let text = r.to_prometheus();
        // Parse line by line the way a conformant scraper does: every
        // sample must belong to the family most recently declared by a
        // `# TYPE` line (same name, or `name_bucket`/`name_sum`/`name_count`
        // for histograms), and every TYPE line is preceded by a HELP
        // line for the same family.
        let mut declared: Option<(String, String)> = None;
        let mut last_help: Option<String> = None;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# HELP ") {
                last_help = Some(
                    rest.split_whitespace()
                        .next()
                        .expect("HELP line has a name")
                        .to_string(),
                );
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let name = rest
                    .split_whitespace()
                    .next()
                    .expect("TYPE line has a name");
                assert_eq!(
                    last_help.as_deref(),
                    Some(name),
                    "every TYPE line is preceded by its family's HELP line"
                );
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut it = rest.split_whitespace();
                let name = it.next().expect("TYPE line has a name").to_string();
                let kind = it.next().expect("TYPE line has a kind").to_string();
                assert!(matches!(kind.as_str(), "counter" | "gauge" | "histogram"));
                declared = Some((name, kind));
                continue;
            }
            let sample_name = line
                .split([' ', '{'])
                .next()
                .expect("sample line has a name");
            let (family, kind) = declared.as_ref().expect("sample precedes any TYPE line");
            let ok = match kind.as_str() {
                "histogram" => {
                    sample_name == format!("{family}_bucket")
                        || sample_name == format!("{family}_sum")
                        || sample_name == format!("{family}_count")
                }
                _ => sample_name == family.as_str(),
            };
            assert!(ok, "sample `{sample_name}` under TYPE `{family}` ({kind})");
        }
    }

    #[test]
    fn quantile_is_torn_snapshot_free_under_concurrent_observe() {
        use std::sync::atomic::AtomicBool;
        let h = Arc::new(Histogram::new());
        h.observe(1); // never empty, so quantile always walks buckets
        let stop = Arc::new(AtomicBool::new(false));
        let writers: Vec<_> = (0..2)
            .map(|_| {
                let h = Arc::clone(&h);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut v = 1u64;
                    while !stop.load(Ordering::Relaxed) {
                        h.observe(v);
                        v = v.wrapping_mul(2999).wrapping_add(1) % 10_000;
                    }
                })
            })
            .collect();
        // Before the fix, `count()` could read a total larger than the
        // bucket sum seen by the walk, falling through to u64::MAX.
        for _ in 0..200_000 {
            let q = h.quantile(0.99);
            assert!(q <= bucket_upper(bucket_of(9_999)), "torn snapshot: {q}");
        }
        stop.store(true, Ordering::Relaxed);
        for w in writers {
            w.join().expect("writer thread");
        }
    }

    #[test]
    fn health_sampler_windows_deltas_and_rates() {
        let r = Registry::new();
        let c = r.counter("serve.requests");
        c.add(10);
        r.gauge("serve.queue.depth").set(3);
        let h = r.histogram("serve.exec_cycles");
        h.observe(100);
        let mut s = HealthSampler::new();
        let first = s.sample(&r, "ctx-a", 1_000_000);
        assert_eq!(first.counters[0].total, 10);
        assert_eq!(first.counters[0].delta, 10, "first window reports totals");
        assert_eq!(first.counters[0].rate_per_sec, 10);
        assert_eq!(first.histograms[0].delta, 1);
        c.add(5);
        h.observe(200);
        h.observe(300);
        let second = s.sample(&r, "ctx-a", 500_000);
        assert_eq!(second.counters[0].total, 15);
        assert_eq!(second.counters[0].delta, 5);
        assert_eq!(second.counters[0].rate_per_sec, 10, "5 events / 0.5s");
        assert_eq!(second.histograms[0].delta, 2);
        assert_eq!(second.gauges[0].value, 3);
        let line = second.to_json_line();
        assert!(line.starts_with("{\"schema\":\"bridge-health/1\",\"context\":\"ctx-a\""));
        assert!(line.contains("\"serve.requests\":{\"total\":15,\"delta\":5,\"rate_per_sec\":10}"));
        assert!(line.ends_with("}}"));
        assert_eq!(line.matches('\n').count(), 0, "one line per snapshot");
    }

    /// Regression: a counter that goes *backwards* between samples (its
    /// context was evicted and rebuilt, so the instrument restarted at
    /// zero) used to clamp to a silent zero delta. The sampler must flag
    /// the reset, restart the baseline, and report the reborn counter's
    /// accumulation as the window's delta.
    #[test]
    fn health_sampler_flags_counter_resets() {
        let mut s = HealthSampler::new();
        let r1 = Registry::new();
        r1.counter("cache.insertions").add(10);
        let first = s.sample(&r1, "ctx", 1_000_000);
        assert!(!first.counters[0].reset);
        assert!(!first.to_json_line().contains("\"reset\""));

        // The context is rebuilt: same instrument name, fresh counter
        // that has only accumulated 3 since its rebirth.
        let r2 = Registry::new();
        r2.counter("cache.insertions").add(3);
        let snap = s.sample(&r2, "ctx", 1_000_000);
        let c = &snap.counters[0];
        assert!(c.reset, "backwards counter must be reported as a reset");
        assert_eq!(c.total, 3);
        assert_eq!(c.delta, 3, "baseline restarts at zero, not clamped to 0");
        assert_eq!(c.rate_per_sec, 3);
        assert!(snap.to_json_line().contains(
            "\"cache.insertions\":{\"total\":3,\"delta\":3,\"rate_per_sec\":3,\"reset\":true}"
        ));

        // The next window resumes ordinary deltas from the new baseline.
        r2.counter("cache.insertions").add(2);
        let third = s.sample(&r2, "ctx", 1_000_000);
        assert!(!third.counters[0].reset);
        assert_eq!(third.counters[0].delta, 2);
    }

    #[test]
    fn health_context_labels_are_json_escaped() {
        let r = Registry::new();
        let snap = HealthSampler::new().sample(&r, "k\"ern\\el\n", 0);
        assert!(snap
            .to_json_line()
            .contains("\"context\":\"k\\\"ern\\\\el\\u000a\""));
    }

    /// Satellite: the exposition carries a `# HELP` line per family —
    /// described instruments use their description, undescribed ones
    /// fall back to the registered (pre-sanitization) name — and help
    /// text / metric names are escaped/sanitized.
    #[test]
    fn prometheus_help_lines_with_escaping() {
        let r = Registry::new();
        r.counter("dbt.traps").add(3);
        r.describe(
            "dbt.traps",
            "Misalignment traps delivered\nto the OS \\ handler",
        );
        r.gauge("queue.depth").set(2);
        r.counter("odd-name.with spaces").inc();
        let text = r.to_prometheus();
        // Described counter: help text with newline and backslash escaped.
        assert!(
            text.contains(
                "# HELP dbt_traps Misalignment traps delivered\\nto the OS \\\\ handler\n\
                 # TYPE dbt_traps counter\ndbt_traps 3\n"
            ),
            "escaped HELP precedes TYPE: {text}"
        );
        // Undescribed gauge: the registered dotted name is the help text,
        // and the watermark family gets its own HELP + TYPE pair.
        assert!(text.contains("# HELP queue_depth queue.depth\n# TYPE queue_depth gauge\n"));
        assert!(text.contains(
            "# HELP queue_depth_high_watermark queue.depth (high watermark)\n\
             # TYPE queue_depth_high_watermark gauge\n"
        ));
        // Name sanitization still applies to the sample and both comment
        // lines (label charset: [a-zA-Z0-9_:]).
        assert!(text.contains("# HELP odd_name_with_spaces odd-name.with spaces\n"));
        assert!(text.contains("# TYPE odd_name_with_spaces counter\nodd_name_with_spaces 1\n"));
        assert_eq!(escape_help("plain"), "plain");
    }

    /// Satellite fix: health snapshots and time-series ticks draw from
    /// ONE registry-wide monotonic sequence, so two racing scrapers can
    /// never observe duplicate or out-of-order sequence numbers.
    #[test]
    fn sample_seq_is_shared_and_monotonic_across_racing_scrapers() {
        let r = Arc::new(Registry::new());
        r.counter("serve.requests").add(1);
        let seqs: Vec<std::thread::JoinHandle<Vec<u64>>> = (0..2)
            .map(|i| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    let mut sampler = HealthSampler::new();
                    let mut ts = timeseries::TimeSeries::new(8);
                    let mut seen = Vec::new();
                    for _ in 0..500 {
                        // One scraper takes health snapshots, the other
                        // advances alert windows — the interleaving the
                        // shared sequence has to order.
                        if i == 0 {
                            seen.push(sampler.sample(&r, "ctx", 1000).seq);
                        } else {
                            seen.push(ts.tick(&r, 1000).seq);
                        }
                    }
                    seen
                })
            })
            .collect();
        let mut all: Vec<u64> = Vec::new();
        for h in seqs {
            let seen = h.join().expect("scraper thread");
            assert!(
                seen.windows(2).all(|w| w[0] < w[1]),
                "each scraper sees strictly increasing seqs"
            );
            all.extend(seen);
        }
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 1000, "no duplicate seq across racing scrapers");
        assert_eq!(*all.first().unwrap(), 1);
        assert_eq!(*all.last().unwrap(), 1000);
    }
}
