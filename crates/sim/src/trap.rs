//! Machine exits, traps and faults.

use std::fmt;

/// Details of a misalignment trap, delivered to the embedder exactly as the
/// OS would deliver a `SIGBUS`-style unaligned-access exception to the DBT's
/// registered handler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnalignedInfo {
    /// PC of the faulting instruction (not advanced — the handler decides
    /// how to resume).
    pub pc: u64,
    /// Faulting effective address.
    pub addr: u64,
    /// Access size in bytes.
    pub size: u32,
    /// Whether the access was a store.
    pub is_store: bool,
    /// The faulting instruction word, as the handler would read it from the
    /// exception context.
    pub insn_word: u32,
}

/// Hard machine faults (bugs in translated code or the embedder).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachineFault {
    /// Fetched a word that does not decode.
    IllegalInstruction {
        /// PC of the undecodable word.
        pc: u64,
        /// The word itself.
        word: u32,
    },
    /// An unknown PALcode function.
    UnknownPal {
        /// PC of the `call_pal`.
        pc: u64,
        /// The PAL function code.
        func: u32,
    },
    /// The fuel budget given to [`Machine::run`](crate::cpu::Machine::run)
    /// ran out.
    OutOfFuel,
}

impl fmt::Display for MachineFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineFault::IllegalInstruction { pc, word } => {
                write!(f, "illegal instruction {word:#010x} at {pc:#x}")
            }
            MachineFault::UnknownPal { pc, func } => {
                write!(f, "unknown PAL function {func:#x} at {pc:#x}")
            }
            MachineFault::OutOfFuel => write!(f, "fuel exhausted"),
        }
    }
}

/// Why [`Machine::run`](crate::cpu::Machine::run) returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exit {
    /// `call_pal halt` executed.
    Halted,
    /// `call_pal exit_monitor` executed: translated code returned control
    /// to the DBT dispatcher. PC points *after* the `call_pal`.
    Monitor,
    /// `call_pal request_monitor` executed: translated code asks the DBT
    /// for a service (Figure 8's adaptive reversion). PC points *after*
    /// the `call_pal`.
    Request,
    /// A memory instruction faulted on alignment. PC still points at the
    /// faulting instruction.
    Unaligned(UnalignedInfo),
    /// A hard fault.
    Fault(MachineFault),
}

impl Exit {
    /// Convenience: the unaligned-trap payload, if that is what this exit
    /// is.
    pub fn unaligned(&self) -> Option<&UnalignedInfo> {
        match self {
            Exit::Unaligned(info) => Some(info),
            _ => None,
        }
    }
}

impl fmt::Display for Exit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Exit::Halted => write!(f, "halted"),
            Exit::Monitor => write!(f, "monitor exit"),
            Exit::Request => write!(f, "monitor service request"),
            Exit::Unaligned(u) => write!(
                f,
                "unaligned {} of {} bytes at {:#x} (pc {:#x})",
                if u.is_store { "store" } else { "load" },
                u.size,
                u.addr,
                u.pc
            ),
            Exit::Fault(m) => write!(f, "fault: {m}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let info = UnalignedInfo {
            pc: 0x100,
            addr: 0x2002,
            size: 4,
            is_store: false,
            insn_word: 0,
        };
        assert!(Exit::Unaligned(info).to_string().contains("load"));
        assert!(Exit::Halted.to_string().contains("halted"));
        assert!(Exit::Fault(MachineFault::OutOfFuel)
            .to_string()
            .contains("fuel"));
        assert!(
            Exit::Fault(MachineFault::IllegalInstruction { pc: 4, word: 9 })
                .to_string()
                .contains("illegal")
        );
    }

    #[test]
    fn unaligned_accessor() {
        let info = UnalignedInfo {
            pc: 0,
            addr: 1,
            size: 2,
            is_store: true,
            insn_word: 3,
        };
        assert_eq!(Exit::Unaligned(info).unaligned(), Some(&info));
        assert_eq!(Exit::Halted.unaligned(), None);
    }
}
