//! Host machine simulator for DigitalBridge-RS.
//!
//! Models the paper's evaluation machine — a one-processor Alpha ES40 with
//! split 64 KB 2-way L1 caches and a 2 MB direct-mapped L2 — at the level of
//! detail the MDA-handling mechanisms differ on:
//!
//! * it **executes the encoded Alpha instruction words** placed in its
//!   memory by the translator (so code patching is real: the exception
//!   handler overwrites an instruction word and the machine fetches the new
//!   one),
//! * `ldl`/`stl`/`ldq`/`stq`/`ldwu`/`stw` **trap on misaligned addresses**,
//!   returning control to the embedder exactly as the OS would deliver a
//!   misalignment exception to the DBT's registered handler,
//! * a configurable [`CostModel`] charges cycles per instruction class, per
//!   cache outcome and per trap (~1000 cycles, the figure the paper cites),
//!   and
//! * the [`native`] module provides the x86-machine cost model used only to
//!   reproduce the paper's Figure 1 (native alignment-flag comparison).
//!
//! The simulator is deliberately single-threaded and deterministic.
//!
//! # Example
//!
//! ```
//! use bridge_sim::{Machine, Exit};
//! use bridge_alpha::{CodeBuilder, Reg, PAL_HALT};
//!
//! let mut b = CodeBuilder::new(0x8000_0000);
//! b.load_imm32(Reg::R1, 41);
//! b.op_lit(bridge_alpha::OpFn::Addq, Reg::R1, 1, Reg::R1);
//! b.call_pal(PAL_HALT);
//! let words = b.finish().expect("valid fragment");
//!
//! let mut m = Machine::new();
//! m.write_code(0x8000_0000, &words);
//! m.set_pc(0x8000_0000);
//! assert_eq!(m.run(1_000), Exit::Halted);
//! assert_eq!(m.reg(Reg::R1), 42);
//! ```

pub mod cache;
pub mod cost;
pub mod cpu;
pub mod hashing;
pub mod mem;
pub mod native;
pub mod stats;
pub mod trap;

pub use cache::Cache;
pub use cost::CostModel;
pub use cpu::Machine;
pub use mem::Memory;
pub use stats::Stats;
pub use trap::{Exit, MachineFault, UnalignedInfo};
