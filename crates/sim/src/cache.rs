//! Set-associative cache *cost* model (tags only, LRU replacement).
//!
//! The caches track which lines would be resident, not their contents; the
//! simulator uses hit/miss outcomes purely for cycle accounting. This is
//! what the paper's evaluation needs: the exception-handling mechanism's
//! code-locality effects (stubs far from their blocks) show up as extra
//! I-cache misses, and code rearrangement wins them back.

/// Sentinel for an empty way. Unreachable as a real tag: tags are
/// `addr >> line_shift >> set_bits`, far below `2^64 - 1` for any address
/// the simulator produces.
const EMPTY: u64 = u64::MAX;

/// A set-associative tag cache with LRU replacement.
///
/// Tags live in one flat array of `set_count * ways` slots — no per-set
/// `Vec`, no heap indirection on the access path. Within a set's slice the
/// resident tags are kept **contiguous at the end**, most recently used
/// last, with [`EMPTY`] slots at the front; this preserves the exact LRU
/// order (and therefore the exact hit/miss and eviction sequence) of a
/// naive push/remove representation.
#[derive(Debug, Clone)]
pub struct Cache {
    /// log2(line size)
    line_shift: u32,
    set_mask: u64,
    ways: usize,
    /// Flat `set_count * ways` tag slots; see struct docs for layout.
    tags: Vec<u64>,
}

impl Cache {
    /// Creates a cache of `size_bytes` with `ways` ways and `line_bytes`
    /// lines. All three must be powers of two and consistent.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is not a power-of-two or `ways` exceeds the
    /// number of lines.
    pub fn new(size_bytes: u64, ways: usize, line_bytes: u64) -> Cache {
        assert!(size_bytes.is_power_of_two(), "size must be a power of two");
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(
            ways.is_power_of_two(),
            "associativity must be a power of two"
        );
        let lines = size_bytes / line_bytes;
        assert!(ways as u64 <= lines, "more ways than lines");
        let set_count = lines / ways as u64;
        Cache {
            line_shift: line_bytes.trailing_zeros(),
            set_mask: set_count - 1,
            ways,
            tags: vec![EMPTY; (set_count as usize) * ways],
        }
    }

    /// 64 KB, 2-way, 64-byte lines: the ES40's L1 geometry (§V-A of the
    /// paper).
    pub fn es40_l1() -> Cache {
        Cache::new(64 * 1024, 2, 64)
    }

    /// 2 MB direct-mapped, 64-byte lines: the ES40's L2 geometry.
    pub fn es40_l2() -> Cache {
        Cache::new(2 * 1024 * 1024, 1, 64)
    }

    /// log2 of the line size (so embedders can reason about line
    /// granularity, e.g. the machine's same-line fetch fast path).
    #[inline]
    pub fn line_shift(&self) -> u32 {
        self.line_shift
    }

    #[inline]
    fn locate(&self, addr: u64) -> (usize, u64) {
        let line = addr >> self.line_shift;
        (
            (line & self.set_mask) as usize,
            line >> self.set_mask.count_ones(),
        )
    }

    /// Touches `addr`; returns `true` on hit. On miss the line is filled
    /// (evicting LRU).
    #[inline]
    pub fn access(&mut self, addr: u64) -> bool {
        let (set_idx, tag) = self.locate(addr);
        let base = set_idx * self.ways;
        let set = &mut self.tags[base..base + self.ways];
        // Direct-mapped fast path: one slot, no ordering to maintain.
        if set.len() == 1 {
            let hit = set[0] == tag;
            set[0] = tag;
            return hit;
        }
        // MRU-last scan from the back: the MRU slot hits most often.
        if let Some(pos) = set.iter().rposition(|&t| t == tag) {
            // Move to MRU (end), shifting intervening tags down one slot.
            set.copy_within(pos + 1.., pos);
            *set.last_mut().expect("ways >= 1") = tag;
            true
        } else {
            // Miss: shift the whole set down, dropping slot 0 — the LRU
            // resident tag when the set is full, an EMPTY slot otherwise —
            // and fill the MRU slot.
            set.copy_within(1.., 0);
            *set.last_mut().expect("ways >= 1") = tag;
            false
        }
    }

    /// Invalidates the line containing `addr` if resident (used when the
    /// DBT patches code).
    pub fn invalidate(&mut self, addr: u64) {
        let (set_idx, tag) = self.locate(addr);
        let base = set_idx * self.ways;
        let set = &mut self.tags[base..base + self.ways];
        if let Some(pos) = set.iter().position(|&t| t == tag) {
            // Shift older tags up into the gap, keeping residents
            // contiguous at the end in LRU order, and open an EMPTY slot
            // at the front.
            set.copy_within(..pos, 1);
            set[0] = EMPTY;
        }
    }

    /// Empties the cache.
    pub fn flush(&mut self) {
        self.tags.fill(EMPTY);
    }

    /// Number of resident lines (diagnostics).
    pub fn resident_lines(&self) -> usize {
        self.tags.iter().filter(|&&t| t != EMPTY).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_miss_then_hit() {
        let mut c = Cache::new(1024, 2, 64);
        assert!(!c.access(0x0));
        assert!(c.access(0x0));
        assert!(c.access(0x3F)); // same line
        assert!(!c.access(0x40)); // next line
    }

    #[test]
    fn lru_eviction_within_set() {
        // 2 sets of 2 ways, 64B lines → addresses 0x00, 0x80, 0x100 share set 0.
        let mut c = Cache::new(256, 2, 64);
        assert!(!c.access(0x000));
        assert!(!c.access(0x080));
        assert!(c.access(0x000)); // refresh LRU: now 0x080 is LRU
        assert!(!c.access(0x100)); // evicts 0x080
        assert!(c.access(0x000));
        assert!(!c.access(0x080)); // was evicted
    }

    #[test]
    fn direct_mapped_conflicts() {
        let mut c = Cache::new(128, 1, 64);
        assert!(!c.access(0x00));
        assert!(!c.access(0x80)); // conflicts with 0x00
        assert!(!c.access(0x00)); // conflict again
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = Cache::new(1024, 2, 64);
        c.access(0x200);
        assert!(c.access(0x200));
        c.invalidate(0x200);
        assert!(!c.access(0x200));
    }

    #[test]
    fn flush_empties() {
        let mut c = Cache::es40_l1();
        for a in (0..4096u64).step_by(64) {
            c.access(a);
        }
        assert!(c.resident_lines() > 0);
        c.flush();
        assert_eq!(c.resident_lines(), 0);
    }

    #[test]
    fn es40_geometries() {
        let l1 = Cache::es40_l1();
        let l2 = Cache::es40_l2();
        // Working set exactly the cache size stays resident under LRU.
        let mut l1m = l1.clone();
        for pass in 0..2 {
            for a in (0..64 * 1024u64).step_by(64) {
                let hit = l1m.access(a);
                if pass == 1 {
                    assert!(hit, "L1 should retain 64KB working set at {a:#x}");
                }
            }
        }
        let mut l2m = l2;
        for pass in 0..2 {
            for a in (0..2 * 1024 * 1024u64).step_by(64) {
                let hit = l2m.access(a);
                if pass == 1 {
                    assert!(hit, "L2 should retain 2MB working set at {a:#x}");
                }
            }
        }
        drop(l1);
    }
}
