//! Sparse paged byte-addressable memory shared by the guest image, guest
//! data, the DBT's code cache and the host machine.

use bridge_x86::exec::GuestMem;
use bridge_x86::insn::Width;
use std::collections::HashMap;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
const PAGE_MASK: u64 = (PAGE_SIZE - 1) as u64;

/// Sparse 64-bit-addressed memory. Unmapped bytes read as zero; writes
/// allocate pages on demand. All accesses may be unaligned — alignment
/// *policy* lives in the CPUs, not in memory.
#[derive(Debug, Default, Clone)]
pub struct Memory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl Memory {
    /// New empty memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Number of mapped pages (for diagnostics / footprint checks).
    pub fn mapped_pages(&self) -> usize {
        self.pages.len()
    }

    /// Reads one byte.
    #[inline]
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.pages.get(&(addr >> PAGE_SHIFT)) {
            Some(p) => p[(addr & PAGE_MASK) as usize],
            None => 0,
        }
    }

    /// Writes one byte, mapping the page if needed.
    #[inline]
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let page = self
            .pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0; PAGE_SIZE]));
        page[(addr & PAGE_MASK) as usize] = value;
    }

    /// Reads `size` bytes little-endian, zero-extended. `size` must be
    /// 1..=8.
    ///
    /// # Panics
    ///
    /// Panics if `size` is 0 or greater than 8.
    pub fn read_int(&self, addr: u64, size: u32) -> u64 {
        assert!((1..=8).contains(&size), "size must be 1..=8");
        // Fast path: whole access within one page.
        let off = (addr & PAGE_MASK) as usize;
        if off + size as usize <= PAGE_SIZE {
            if let Some(p) = self.pages.get(&(addr >> PAGE_SHIFT)) {
                let mut buf = [0u8; 8];
                buf[..size as usize].copy_from_slice(&p[off..off + size as usize]);
                return u64::from_le_bytes(buf);
            }
            return 0;
        }
        let mut v = 0u64;
        for i in 0..size {
            v |= u64::from(self.read_u8(addr.wrapping_add(u64::from(i)))) << (8 * i);
        }
        v
    }

    /// Writes the low `size` bytes of `value` little-endian.
    ///
    /// # Panics
    ///
    /// Panics if `size` is 0 or greater than 8.
    pub fn write_int(&mut self, addr: u64, size: u32, value: u64) {
        assert!((1..=8).contains(&size), "size must be 1..=8");
        let off = (addr & PAGE_MASK) as usize;
        if off + size as usize <= PAGE_SIZE {
            let page = self
                .pages
                .entry(addr >> PAGE_SHIFT)
                .or_insert_with(|| Box::new([0; PAGE_SIZE]));
            page[off..off + size as usize].copy_from_slice(&value.to_le_bytes()[..size as usize]);
            return;
        }
        for i in 0..size {
            self.write_u8(addr.wrapping_add(u64::from(i)), (value >> (8 * i)) as u8);
        }
    }

    /// Reads a 32-bit word (used for instruction fetch).
    #[inline]
    pub fn read_u32(&self, addr: u64) -> u32 {
        self.read_int(addr, 4) as u32
    }

    /// Writes a 32-bit word.
    #[inline]
    pub fn write_u32(&mut self, addr: u64, value: u32) {
        self.write_int(addr, 4, u64::from(value));
    }

    /// Reads a 64-bit quadword.
    #[inline]
    pub fn read_u64(&self, addr: u64) -> u64 {
        self.read_int(addr, 8)
    }

    /// Writes a 64-bit quadword.
    #[inline]
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        self.write_int(addr, 8, value);
    }

    /// Copies bytes out of memory.
    pub fn read_bytes(&self, addr: u64, buf: &mut [u8]) {
        for (i, b) in buf.iter_mut().enumerate() {
            *b = self.read_u8(addr.wrapping_add(i as u64));
        }
    }

    /// Copies bytes into memory.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u64), b);
        }
    }

    /// Formats `len` bytes starting at `addr` as a classic 16-byte-per-line
    /// hexdump with an ASCII gutter (diagnostics).
    pub fn hexdump(&self, addr: u64, len: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for line in 0..len.div_ceil(16) {
            let base = addr + 16 * line as u64;
            let _ = write!(out, "{base:#012x}  ");
            let n = 16.min(len - 16 * line);
            for i in 0..16 {
                if i < n {
                    let _ = write!(out, "{:02x} ", self.read_u8(base + i as u64));
                } else {
                    out.push_str("   ");
                }
                if i == 7 {
                    out.push(' ');
                }
            }
            out.push(' ');
            for i in 0..n {
                let b = self.read_u8(base + i as u64);
                out.push(if (0x20..0x7f).contains(&b) {
                    b as char
                } else {
                    '.'
                });
            }
            out.push('\n');
        }
        out
    }
}

impl GuestMem for Memory {
    fn load(&mut self, addr: u32, width: Width) -> u64 {
        self.read_int(u64::from(addr), width.bytes())
    }

    fn store(&mut self, addr: u32, width: Width, value: u64) {
        self.write_int(u64::from(addr), width.bytes(), value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_filled_by_default() {
        let m = Memory::new();
        assert_eq!(m.read_u8(0), 0);
        assert_eq!(m.read_u64(0xdead_beef), 0);
        assert_eq!(m.mapped_pages(), 0);
    }

    #[test]
    fn roundtrip_various_widths() {
        let mut m = Memory::new();
        m.write_int(0x1000, 1, 0xAB);
        m.write_int(0x2000, 2, 0xCDEF);
        m.write_int(0x3000, 4, 0x1234_5678);
        m.write_int(0x4000, 8, 0x1122_3344_5566_7788);
        assert_eq!(m.read_int(0x1000, 1), 0xAB);
        assert_eq!(m.read_int(0x2000, 2), 0xCDEF);
        assert_eq!(m.read_int(0x3000, 4), 0x1234_5678);
        assert_eq!(m.read_int(0x4000, 8), 0x1122_3344_5566_7788);
    }

    #[test]
    fn cross_page_access() {
        let mut m = Memory::new();
        let addr = (1 << PAGE_SHIFT) - 3; // 3 bytes before a page boundary
        m.write_int(addr, 8, 0x0807_0605_0403_0201);
        assert_eq!(m.read_int(addr, 8), 0x0807_0605_0403_0201);
        assert_eq!(m.read_u8(addr + 7), 0x08);
        assert_eq!(m.mapped_pages(), 2);
    }

    #[test]
    fn little_endian_layout() {
        let mut m = Memory::new();
        m.write_u32(0x100, 0xAABB_CCDD);
        assert_eq!(m.read_u8(0x100), 0xDD);
        assert_eq!(m.read_u8(0x103), 0xAA);
    }

    #[test]
    fn misaligned_accesses_allowed() {
        let mut m = Memory::new();
        m.write_int(0x1001, 4, 0xCAFE_BABE);
        assert_eq!(m.read_int(0x1001, 4), 0xCAFE_BABE);
        assert_eq!(m.read_int(0x1003, 2), 0xCAFE);
    }

    #[test]
    fn bytes_helpers() {
        let mut m = Memory::new();
        m.write_bytes(0x500, &[1, 2, 3, 4, 5]);
        let mut buf = [0u8; 5];
        m.read_bytes(0x500, &mut buf);
        assert_eq!(buf, [1, 2, 3, 4, 5]);
    }

    #[test]
    fn guest_mem_trait() {
        use bridge_x86::exec::GuestMem as _;
        let mut m = Memory::new();
        m.store(0x77, Width::W4, 0x0102_0304);
        assert_eq!(m.load(0x77, Width::W4), 0x0102_0304);
        assert_eq!(m.load(0x77, Width::W2), 0x0304);
    }

    #[test]
    #[should_panic(expected = "size must be 1..=8")]
    fn oversized_read_panics() {
        Memory::new().read_int(0, 9);
    }

    #[test]
    fn hexdump_format() {
        let mut m = Memory::new();
        m.write_bytes(0x1000, b"Hello, world!\x00\xff ABC");
        let dump = m.hexdump(0x1000, 20);
        assert_eq!(dump.lines().count(), 2);
        assert!(dump.contains("48 65 6c 6c 6f"), "{dump}");
        assert!(dump.contains("Hello, world!"), "{dump}");
        assert!(dump.contains('.'), "non-printables become dots: {dump}");
    }
}
