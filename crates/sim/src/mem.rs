//! Sparse paged byte-addressable memory shared by the guest image, guest
//! data, the DBT's code cache and the host machine.
//!
//! # Fast paths
//!
//! Memory sits on the simulator's hottest path (every guest load/store and
//! every code write), so the page table is tuned accordingly:
//!
//! * pages live in an [`FxHashMap`](crate::hashing::FxHashMap) rather than a
//!   SipHash map,
//! * a **last-page pointer cache** remembers the most recently touched page
//!   so consecutive accesses to the same 4 KB page (the overwhelmingly
//!   common case) skip the map probe entirely — used by every `&mut self`
//!   accessor, i.e. all writes plus the [`Memory::load_int`] /
//!   [`Memory::load_u32_aligned`] / [`Memory::load_u64_aligned`] read paths
//!   the machines use, and
//! * aligned `u32`/`u64` accessors serve instruction fetch and
//!   `ldl`/`stl`/`ldq`/`stq` without the page-straddle check or the
//!   byte-copy loop (a naturally aligned access can never cross a page).
//!
//! # Safety model
//!
//! Page payloads are `Box<UnsafeCell<[u8; PAGE_SIZE]>>`, giving every page a
//! stable heap address for the pointer cache to hold across map rehashes.
//! The invariants that make this sound:
//!
//! * pages are **never deallocated** while the `Memory` lives — there is no
//!   unmap/remove operation, so a cached pointer can never dangle;
//! * page contents and the pointer cache are only mutated inside
//!   `&mut self` methods; `&self` methods are strictly read-only. `Memory`
//!   therefore has no observable interior mutability and is `Send + Sync`
//!   like an ordinary data structure;
//! * `Clone` deep-copies the pages and resets the cache, so a clone never
//!   aliases its source.

use crate::hashing::FxHashMap;
use bridge_x86::exec::GuestMem;
use bridge_x86::insn::Width;
use std::cell::UnsafeCell;
use std::fmt;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
const PAGE_MASK: u64 = (PAGE_SIZE - 1) as u64;

/// Sentinel page index for an empty pointer cache. Unreachable as a real
/// index: a real index is `addr >> 12`, at most `2^52 - 1`.
const NO_PAGE: u64 = u64::MAX;

type Page = [u8; PAGE_SIZE];

/// Sparse 64-bit-addressed memory. Unmapped bytes read as zero; writes
/// allocate pages on demand. All accesses may be unaligned — alignment
/// *policy* lives in the CPUs, not in memory.
pub struct Memory {
    pages: FxHashMap<u64, Box<UnsafeCell<Page>>>,
    /// Last-page pointer cache: `(page index, payload pointer)`. Read and
    /// written only by `&mut self` methods.
    last: (u64, *mut Page),
}

// SAFETY: `Memory` owns its pages outright and the cached raw pointer only
// ever points into those owned allocations, so moving the whole `Memory`
// to another thread moves the pointee along with the pointer.
unsafe impl Send for Memory {}
// SAFETY: `&self` methods neither write page contents nor touch the
// pointer cache (see the module docs), so shared references permit only
// concurrent reads of plain bytes.
unsafe impl Sync for Memory {}

impl Default for Memory {
    fn default() -> Memory {
        Memory {
            pages: FxHashMap::default(),
            last: (NO_PAGE, std::ptr::null_mut()),
        }
    }
}

impl Clone for Memory {
    fn clone(&self) -> Memory {
        let pages = self
            .pages
            .iter()
            // SAFETY: `&self` guarantees no writer is active, so the page
            // contents are stable while we copy them.
            .map(|(&idx, cell)| (idx, Box::new(UnsafeCell::new(unsafe { *cell.get() }))))
            .collect();
        Memory {
            pages,
            last: (NO_PAGE, std::ptr::null_mut()),
        }
    }
}

impl fmt::Debug for Memory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Memory")
            .field("mapped_pages", &self.pages.len())
            .finish_non_exhaustive()
    }
}

impl Memory {
    /// New empty memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Number of mapped pages (for diagnostics / footprint checks).
    pub fn mapped_pages(&self) -> usize {
        self.pages.len()
    }

    /// Shared view of the page holding `idx`, if mapped (no cache).
    #[inline]
    fn page(&self, idx: u64) -> Option<&Page> {
        // SAFETY: `&self` methods never write, so shared access to the
        // payload is data-race free even with other `&self` readers.
        self.pages.get(&idx).map(|cell| unsafe { &*cell.get() })
    }

    /// Pointer to the page holding `idx`, if mapped, via the one-entry
    /// cache.
    #[inline]
    fn cached_page(&mut self, idx: u64) -> Option<*mut Page> {
        let (cached_idx, ptr) = self.last;
        if cached_idx == idx {
            return Some(ptr);
        }
        match self.pages.get(&idx) {
            Some(cell) => {
                let p = cell.get();
                self.last = (idx, p);
                Some(p)
            }
            None => None,
        }
    }

    /// Pointer to the page holding `idx`, mapping it zero-filled if needed.
    #[inline]
    fn cached_page_mut(&mut self, idx: u64) -> *mut Page {
        if let Some(p) = self.cached_page(idx) {
            return p;
        }
        let p = self
            .pages
            .entry(idx)
            .or_insert_with(|| Box::new(UnsafeCell::new([0; PAGE_SIZE])))
            .get();
        self.last = (idx, p);
        p
    }

    /// Reads one byte.
    #[inline]
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.page(addr >> PAGE_SHIFT) {
            Some(page) => page[(addr & PAGE_MASK) as usize],
            None => 0,
        }
    }

    /// Writes one byte, mapping the page if needed.
    #[inline]
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let p = self.cached_page_mut(addr >> PAGE_SHIFT);
        // SAFETY: `&mut self` gives exclusive access to the page payloads,
        // and the pointer is valid for the life of `self` (pages are never
        // deallocated).
        unsafe { (*p)[(addr & PAGE_MASK) as usize] = value }
    }

    /// Reads `size` bytes little-endian, zero-extended. `size` must be
    /// 1..=8.
    ///
    /// # Panics
    ///
    /// Panics if `size` is 0 or greater than 8.
    pub fn read_int(&self, addr: u64, size: u32) -> u64 {
        assert!((1..=8).contains(&size), "size must be 1..=8");
        // Fast path: whole access within one page.
        let off = (addr & PAGE_MASK) as usize;
        if off + size as usize <= PAGE_SIZE {
            return match self.page(addr >> PAGE_SHIFT) {
                Some(page) => read_le(page, off, size),
                None => 0,
            };
        }
        let mut v = 0u64;
        for i in 0..size {
            v |= u64::from(self.read_u8(addr.wrapping_add(u64::from(i)))) << (8 * i);
        }
        v
    }

    /// Reads like [`Memory::read_int`] but through the last-page pointer
    /// cache — the machines' load path.
    ///
    /// # Panics
    ///
    /// Panics if `size` is 0 or greater than 8.
    pub fn load_int(&mut self, addr: u64, size: u32) -> u64 {
        assert!((1..=8).contains(&size), "size must be 1..=8");
        let off = (addr & PAGE_MASK) as usize;
        if off + size as usize <= PAGE_SIZE {
            return match self.cached_page(addr >> PAGE_SHIFT) {
                // SAFETY: see `write_u8` for pointer validity; `&mut self`
                // excludes concurrent access.
                Some(p) => read_le(unsafe { &*p }, off, size),
                None => 0,
            };
        }
        let mut v = 0u64;
        for i in 0..size {
            v |= u64::from(self.read_u8(addr.wrapping_add(u64::from(i)))) << (8 * i);
        }
        v
    }

    /// [`Memory::load_int`] with a compile-time width: the byte count is a
    /// constant at every call site, so the in-page copy compiles to a
    /// single (possibly unaligned) load instead of a variable-length copy.
    /// This is the x86 interpreter's memory path — guest x86 accesses may
    /// be *misaligned* (that is the point of the paper) but still lie
    /// within one page almost always.
    #[inline]
    fn load_fixed<const N: usize>(&mut self, addr: u64) -> u64 {
        let off = (addr & PAGE_MASK) as usize;
        if off + N <= PAGE_SIZE {
            match self.cached_page(addr >> PAGE_SHIFT) {
                // SAFETY: see `write_u8` for pointer validity; `&mut self`
                // excludes concurrent access.
                Some(p) => {
                    let page = unsafe { &*p };
                    let mut buf = [0u8; 8];
                    buf[..N].copy_from_slice(&page[off..off + N]);
                    u64::from_le_bytes(buf)
                }
                None => 0,
            }
        } else {
            self.load_int(addr, N as u32)
        }
    }

    /// [`Memory::write_int`] with a compile-time width; see
    /// [`Memory::load_fixed`].
    #[inline]
    fn store_fixed<const N: usize>(&mut self, addr: u64, value: u64) {
        let off = (addr & PAGE_MASK) as usize;
        if off + N <= PAGE_SIZE {
            let p = self.cached_page_mut(addr >> PAGE_SHIFT);
            // SAFETY: see `write_u8`.
            let page = unsafe { &mut *p };
            page[off..off + N].copy_from_slice(&value.to_le_bytes()[..N]);
        } else {
            self.write_int(addr, N as u32, value);
        }
    }

    /// Writes the low `size` bytes of `value` little-endian.
    ///
    /// # Panics
    ///
    /// Panics if `size` is 0 or greater than 8.
    pub fn write_int(&mut self, addr: u64, size: u32, value: u64) {
        assert!((1..=8).contains(&size), "size must be 1..=8");
        let off = (addr & PAGE_MASK) as usize;
        if off + size as usize <= PAGE_SIZE {
            let p = self.cached_page_mut(addr >> PAGE_SHIFT);
            // SAFETY: see `write_u8`.
            let page = unsafe { &mut *p };
            page[off..off + size as usize].copy_from_slice(&value.to_le_bytes()[..size as usize]);
            return;
        }
        for i in 0..size {
            self.write_u8(addr.wrapping_add(u64::from(i)), (value >> (8 * i)) as u8);
        }
    }

    /// Reads a naturally aligned 32-bit word (instruction fetch, `ldl`).
    /// An aligned word can never straddle a page.
    ///
    /// # Panics
    ///
    /// Debug builds panic if `addr` is not 4-aligned.
    #[inline]
    pub fn read_u32_aligned(&self, addr: u64) -> u32 {
        debug_assert_eq!(addr & 3, 0, "read_u32_aligned requires 4-alignment");
        match self.page(addr >> PAGE_SHIFT) {
            Some(page) => {
                let off = (addr & PAGE_MASK) as usize;
                u32::from_le_bytes(page[off..off + 4].try_into().expect("4 bytes"))
            }
            None => 0,
        }
    }

    /// [`Memory::read_u32_aligned`] through the pointer cache — the
    /// machines' `ldl` fast path.
    ///
    /// # Panics
    ///
    /// Debug builds panic if `addr` is not 4-aligned.
    #[inline]
    pub fn load_u32_aligned(&mut self, addr: u64) -> u32 {
        debug_assert_eq!(addr & 3, 0, "load_u32_aligned requires 4-alignment");
        match self.cached_page(addr >> PAGE_SHIFT) {
            Some(p) => {
                let off = (addr & PAGE_MASK) as usize;
                // SAFETY: see `write_u8`.
                let page = unsafe { &*p };
                u32::from_le_bytes(page[off..off + 4].try_into().expect("4 bytes"))
            }
            None => 0,
        }
    }

    /// Writes a naturally aligned 32-bit word.
    ///
    /// # Panics
    ///
    /// Debug builds panic if `addr` is not 4-aligned.
    #[inline]
    pub fn write_u32_aligned(&mut self, addr: u64, value: u32) {
        debug_assert_eq!(addr & 3, 0, "write_u32_aligned requires 4-alignment");
        let p = self.cached_page_mut(addr >> PAGE_SHIFT);
        let off = (addr & PAGE_MASK) as usize;
        // SAFETY: see `write_u8`.
        let page = unsafe { &mut *p };
        page[off..off + 4].copy_from_slice(&value.to_le_bytes());
    }

    /// Reads a naturally aligned 64-bit quadword.
    ///
    /// # Panics
    ///
    /// Debug builds panic if `addr` is not 8-aligned.
    #[inline]
    pub fn read_u64_aligned(&self, addr: u64) -> u64 {
        debug_assert_eq!(addr & 7, 0, "read_u64_aligned requires 8-alignment");
        match self.page(addr >> PAGE_SHIFT) {
            Some(page) => {
                let off = (addr & PAGE_MASK) as usize;
                u64::from_le_bytes(page[off..off + 8].try_into().expect("8 bytes"))
            }
            None => 0,
        }
    }

    /// [`Memory::read_u64_aligned`] through the pointer cache — the
    /// machines' `ldq`/`ldq_u` fast path.
    ///
    /// # Panics
    ///
    /// Debug builds panic if `addr` is not 8-aligned.
    #[inline]
    pub fn load_u64_aligned(&mut self, addr: u64) -> u64 {
        debug_assert_eq!(addr & 7, 0, "load_u64_aligned requires 8-alignment");
        match self.cached_page(addr >> PAGE_SHIFT) {
            Some(p) => {
                let off = (addr & PAGE_MASK) as usize;
                // SAFETY: see `write_u8`.
                let page = unsafe { &*p };
                u64::from_le_bytes(page[off..off + 8].try_into().expect("8 bytes"))
            }
            None => 0,
        }
    }

    /// Writes a naturally aligned 64-bit quadword — the `stq`/`stq_u` fast
    /// path.
    ///
    /// # Panics
    ///
    /// Debug builds panic if `addr` is not 8-aligned.
    #[inline]
    pub fn write_u64_aligned(&mut self, addr: u64, value: u64) {
        debug_assert_eq!(addr & 7, 0, "write_u64_aligned requires 8-alignment");
        let p = self.cached_page_mut(addr >> PAGE_SHIFT);
        let off = (addr & PAGE_MASK) as usize;
        // SAFETY: see `write_u8`.
        let page = unsafe { &mut *p };
        page[off..off + 8].copy_from_slice(&value.to_le_bytes());
    }

    /// Reads a 32-bit word (any alignment).
    #[inline]
    pub fn read_u32(&self, addr: u64) -> u32 {
        if addr & 3 == 0 {
            self.read_u32_aligned(addr)
        } else {
            self.read_int(addr, 4) as u32
        }
    }

    /// Writes a 32-bit word (any alignment).
    #[inline]
    pub fn write_u32(&mut self, addr: u64, value: u32) {
        if addr & 3 == 0 {
            self.write_u32_aligned(addr, value);
        } else {
            self.write_int(addr, 4, u64::from(value));
        }
    }

    /// Reads a 64-bit quadword (any alignment).
    #[inline]
    pub fn read_u64(&self, addr: u64) -> u64 {
        if addr & 7 == 0 {
            self.read_u64_aligned(addr)
        } else {
            self.read_int(addr, 8)
        }
    }

    /// Writes a 64-bit quadword (any alignment).
    #[inline]
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        if addr & 7 == 0 {
            self.write_u64_aligned(addr, value);
        } else {
            self.write_int(addr, 8, value);
        }
    }

    /// Copies bytes out of memory.
    pub fn read_bytes(&self, addr: u64, buf: &mut [u8]) {
        for (i, b) in buf.iter_mut().enumerate() {
            *b = self.read_u8(addr.wrapping_add(i as u64));
        }
    }

    /// Copies bytes into memory.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u64), b);
        }
    }

    /// Formats `len` bytes starting at `addr` as a classic 16-byte-per-line
    /// hexdump with an ASCII gutter (diagnostics).
    pub fn hexdump(&self, addr: u64, len: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for line in 0..len.div_ceil(16) {
            let base = addr + 16 * line as u64;
            let _ = write!(out, "{base:#012x}  ");
            let n = 16.min(len - 16 * line);
            for i in 0..16 {
                if i < n {
                    let _ = write!(out, "{:02x} ", self.read_u8(base + i as u64));
                } else {
                    out.push_str("   ");
                }
                if i == 7 {
                    out.push(' ');
                }
            }
            out.push(' ');
            for i in 0..n {
                let b = self.read_u8(base + i as u64);
                out.push(if (0x20..0x7f).contains(&b) {
                    b as char
                } else {
                    '.'
                });
            }
            out.push('\n');
        }
        out
    }
}

/// Little-endian read of `size` bytes at `off` (caller ensures in-bounds).
#[inline]
fn read_le(page: &Page, off: usize, size: u32) -> u64 {
    let mut buf = [0u8; 8];
    buf[..size as usize].copy_from_slice(&page[off..off + size as usize]);
    u64::from_le_bytes(buf)
}

impl GuestMem for Memory {
    #[inline]
    fn load(&mut self, addr: u32, width: Width) -> u64 {
        let addr = u64::from(addr);
        match width {
            Width::W1 => self.load_fixed::<1>(addr),
            Width::W2 => self.load_fixed::<2>(addr),
            Width::W4 => self.load_fixed::<4>(addr),
            Width::W8 => self.load_fixed::<8>(addr),
        }
    }

    #[inline]
    fn store(&mut self, addr: u32, width: Width, value: u64) {
        let addr = u64::from(addr);
        match width {
            Width::W1 => self.store_fixed::<1>(addr, value),
            Width::W2 => self.store_fixed::<2>(addr, value),
            Width::W4 => self.store_fixed::<4>(addr, value),
            Width::W8 => self.store_fixed::<8>(addr, value),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_filled_by_default() {
        let m = Memory::new();
        assert_eq!(m.read_u8(0), 0);
        assert_eq!(m.read_u64(0xdead_beef), 0);
        assert_eq!(m.mapped_pages(), 0);
    }

    #[test]
    fn roundtrip_various_widths() {
        let mut m = Memory::new();
        m.write_int(0x1000, 1, 0xAB);
        m.write_int(0x2000, 2, 0xCDEF);
        m.write_int(0x3000, 4, 0x1234_5678);
        m.write_int(0x4000, 8, 0x1122_3344_5566_7788);
        assert_eq!(m.read_int(0x1000, 1), 0xAB);
        assert_eq!(m.read_int(0x2000, 2), 0xCDEF);
        assert_eq!(m.read_int(0x3000, 4), 0x1234_5678);
        assert_eq!(m.read_int(0x4000, 8), 0x1122_3344_5566_7788);
    }

    #[test]
    fn cross_page_access() {
        let mut m = Memory::new();
        let addr = (1 << PAGE_SHIFT) - 3; // 3 bytes before a page boundary
        m.write_int(addr, 8, 0x0807_0605_0403_0201);
        assert_eq!(m.read_int(addr, 8), 0x0807_0605_0403_0201);
        assert_eq!(m.load_int(addr, 8), 0x0807_0605_0403_0201);
        assert_eq!(m.read_u8(addr + 7), 0x08);
        assert_eq!(m.mapped_pages(), 2);
    }

    /// Table-driven: every size 1..=8 at every offset that straddles (and
    /// just misses) a page boundary must round-trip and agree with
    /// byte-at-a-time reads.
    #[test]
    fn page_boundary_matrix() {
        let boundary = 3u64 << PAGE_SHIFT;
        for size in 1..=8u32 {
            for back in 0..=size as u64 {
                let addr = boundary - back;
                let value = 0x1122_3344_5566_7788u64
                    .wrapping_mul(u64::from(size))
                    .wrapping_add(back);
                let mut m = Memory::new();
                m.write_int(addr, size, value);
                let expect = if size == 8 {
                    value
                } else {
                    value & ((1u64 << (8 * size)) - 1)
                };
                assert_eq!(
                    m.read_int(addr, size),
                    expect,
                    "size {size} at boundary-{back}"
                );
                assert_eq!(
                    m.load_int(addr, size),
                    expect,
                    "cached load, size {size} at boundary-{back}"
                );
                // Byte-at-a-time agreement (the slow path as oracle).
                let mut v = 0u64;
                for i in 0..size {
                    v |= u64::from(m.read_u8(addr + u64::from(i))) << (8 * i);
                }
                assert_eq!(v, expect, "byte oracle, size {size} at boundary-{back}");
                // Bytes outside the access stay zero.
                assert_eq!(m.read_u8(addr - 1), 0);
                assert_eq!(m.read_u8(addr + u64::from(size)), 0);
            }
        }
    }

    /// Table-driven: the aligned fast paths (both `&self` and cached
    /// `&mut self` flavours) must be observationally identical to the
    /// generic `read_int`/`write_int`.
    #[test]
    fn aligned_fast_paths_match_generic() {
        let cases: &[u64] = &[
            0x0,
            0x8,
            0x1000 - 8, // last aligned slot of a page
            0x1000,     // first slot of the next page
            0x7FFF_F000,
            0xFFFF_FFFF_F000,
        ];
        for &addr in cases {
            let mut a = Memory::new();
            let mut b = Memory::new();
            let v64 = 0xA1B2_C3D4_E5F6_0718u64 ^ addr;
            a.write_u64_aligned(addr, v64);
            b.write_int(addr, 8, v64);
            assert_eq!(a.read_u64_aligned(addr), b.read_int(addr, 8), "{addr:#x}");
            assert_eq!(a.load_u64_aligned(addr), v64, "{addr:#x}");
            assert_eq!(a.read_int(addr, 8), v64, "{addr:#x}");

            let v32 = (v64 >> 16) as u32;
            a.write_u32_aligned(addr + 4, v32);
            b.write_int(addr + 4, 4, u64::from(v32));
            assert_eq!(
                u64::from(a.read_u32_aligned(addr + 4)),
                b.read_int(addr + 4, 4),
                "{addr:#x}"
            );
            assert_eq!(a.load_u32_aligned(addr + 4), v32, "{addr:#x}");
        }
    }

    #[test]
    fn unmapped_aligned_reads_are_zero() {
        let mut m = Memory::new();
        assert_eq!(m.read_u32_aligned(0x4_0000), 0);
        assert_eq!(m.read_u64_aligned(0x4_0000), 0);
        assert_eq!(m.load_u32_aligned(0x4_0000), 0);
        assert_eq!(m.load_u64_aligned(0x4_0000), 0);
        assert_eq!(m.mapped_pages(), 0, "reads must not map pages");
    }

    #[test]
    fn pointer_cache_survives_interleaved_pages_and_growth() {
        // Alternate between two pages while mapping many more (forcing the
        // page map to rehash) — the cache must never serve stale data.
        let mut m = Memory::new();
        m.write_u64_aligned(0x1000, 111);
        m.write_u64_aligned(0x2000, 222);
        for i in 0..512u64 {
            m.write_u8(0x10_0000 + i * 4096, i as u8); // map 512 fresh pages
            assert_eq!(m.load_u64_aligned(0x1000), 111, "iteration {i}");
            assert_eq!(m.load_u64_aligned(0x2000), 222, "iteration {i}");
        }
        assert!(m.mapped_pages() >= 514);
    }

    #[test]
    fn clone_is_deep() {
        let mut a = Memory::new();
        a.write_u32(0x1000, 0xAABB_CCDD);
        let mut b = a.clone();
        b.write_u32(0x1000, 0x1111_2222);
        assert_eq!(a.read_u32(0x1000), 0xAABB_CCDD, "clone must not alias");
        assert_eq!(b.read_u32(0x1000), 0x1111_2222);
    }

    #[test]
    fn memory_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Memory>();
    }

    #[test]
    fn little_endian_layout() {
        let mut m = Memory::new();
        m.write_u32(0x100, 0xAABB_CCDD);
        assert_eq!(m.read_u8(0x100), 0xDD);
        assert_eq!(m.read_u8(0x103), 0xAA);
    }

    #[test]
    fn misaligned_accesses_allowed() {
        let mut m = Memory::new();
        m.write_int(0x1001, 4, 0xCAFE_BABE);
        assert_eq!(m.read_int(0x1001, 4), 0xCAFE_BABE);
        assert_eq!(m.read_int(0x1003, 2), 0xCAFE);
    }

    #[test]
    fn bytes_helpers() {
        let mut m = Memory::new();
        m.write_bytes(0x500, &[1, 2, 3, 4, 5]);
        let mut buf = [0u8; 5];
        m.read_bytes(0x500, &mut buf);
        assert_eq!(buf, [1, 2, 3, 4, 5]);
    }

    #[test]
    fn guest_mem_trait() {
        use bridge_x86::exec::GuestMem as _;
        let mut m = Memory::new();
        m.store(0x77, Width::W4, 0x0102_0304);
        assert_eq!(m.load(0x77, Width::W4), 0x0102_0304);
        assert_eq!(m.load(0x77, Width::W2), 0x0304);
    }

    #[test]
    #[should_panic(expected = "size must be 1..=8")]
    fn oversized_read_panics() {
        Memory::new().read_int(0, 9);
    }

    #[test]
    fn hexdump_format() {
        let mut m = Memory::new();
        m.write_bytes(0x1000, b"Hello, world!\x00\xff ABC");
        let dump = m.hexdump(0x1000, 20);
        assert_eq!(dump.lines().count(), 2);
        assert!(dump.contains("48 65 6c 6c 6f"), "{dump}");
        assert!(dump.contains("Hello, world!"), "{dump}");
        assert!(dump.contains('.'), "non-printables become dots: {dump}");
    }
}
