//! A fast, deterministic hasher for the simulator's hot lookup tables.
//!
//! The default `std` hasher (SipHash-1-3) is keyed and DoS-resistant, which
//! the simulator does not need: every map here is keyed by addresses the
//! simulator itself controls (page indices, block entry PCs). The
//! multiply-rotate scheme below (the well-known "Fx" hash from the Firefox
//! and rustc codebases) hashes a `u64` in a couple of cycles, which matters
//! when a map probe sits on the per-memory-access path.
//!
//! Determinism is also a feature in itself: unlike SipHash's per-process
//! random keys, iteration-independent hot paths behave identically across
//! runs, keeping wall-clock measurements stable.

use std::hash::{BuildHasherDefault, Hasher};

/// Seed constant: 2^64 / φ, the usual Fibonacci-hashing multiplier.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate hasher for integer-keyed maps.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, w: u64) {
        self.hash = (self.hash.rotate_left(5) ^ w).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`]-backed maps.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let h = |v: u64| {
            let mut h = FxHasher::default();
            h.write_u64(v);
            h.finish()
        };
        assert_eq!(h(0xDEAD_BEEF), h(0xDEAD_BEEF));
        assert_ne!(h(1), h(2));
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i * 4096, i as u32);
        }
        for i in 0..1000u64 {
            assert_eq!(m.get(&(i * 4096)), Some(&(i as u32)));
        }
        assert_eq!(m.get(&1), None);
    }

    #[test]
    fn byte_writes_cover_partial_chunks() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 4]);
        assert_ne!(a.finish(), b.finish());
    }
}
