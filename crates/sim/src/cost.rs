//! Cycle cost model for the host machine and the DBT runtime services.
//!
//! All values are configurable; [`CostModel::es40`] is the default used in
//! EXPERIMENTS.md. The *ratios* are what matter for reproducing the paper:
//! a misalignment trap costs ~1000 cycles (the paper cites "nearly 1K
//! cycles" via the FX!32 studies), an MDA code sequence costs ~7–11
//! straight-line instructions, and an aligned access costs one memory
//! instruction.

/// Cycle costs charged by [`Machine`](crate::cpu::Machine) and by the DBT
/// engine's runtime services.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostModel {
    /// Base cost of any instruction.
    pub insn_base: u64,
    /// Extra cycles for a load that hits L1.
    pub load_extra: u64,
    /// Extra cycles for a store that hits L1.
    pub store_extra: u64,
    /// Extra cycles for a taken branch (redirect bubble).
    pub branch_taken_extra: u64,
    /// Extra cycles for an L1 miss that hits L2 (either cache).
    pub l1_miss: u64,
    /// Extra cycles for an L2 miss (memory access).
    pub l2_miss: u64,
    /// Cycles for a misalignment trap: kernel entry, signal delivery to the
    /// DBT's handler and sigreturn — charged on *every* trap, before
    /// whatever the handler itself does.
    pub unaligned_trap: u64,
    /// Cycles the OS-style fixup handler spends emulating the access when
    /// no code is patched (decode + byte-wise access + writeback).
    pub unaligned_fixup: u64,
    /// Cycles per guest instruction executed by the DBT's interpreter
    /// (dispatch + operand decode + bookkeeping; the paper's phase 1).
    pub interp_per_guest_insn: u64,
    /// Extra interpreter cycles per memory operand (profiling
    /// instrumentation — the "light instrumentation" of Figure 4).
    pub interp_per_mem_access: u64,
    /// Translation cost per guest instruction (IR build + code selection +
    /// emission).
    pub translate_per_guest_insn: u64,
    /// Fixed translation cost per block (lookup, allocation, bookkeeping).
    pub translate_per_block: u64,
    /// Exception-handler work when patching a site: decode the faulting
    /// instruction and prepare the stub (excludes the per-word emission
    /// cost below and the trap delivery above).
    pub patch_base: u64,
    /// Cost per emitted or rewritten code word (stub emission, relocation).
    pub patch_per_word: u64,
    /// Cost of invalidating a translated block (unlinking, table updates).
    pub invalidate_block: u64,
    /// Dispatcher cost per monitor exit from translated code (block lookup
    /// + indirect transfer); chained blocks avoid it.
    pub dispatch: u64,
    /// Cost per IBTC/shadow-return-stack-resolved transfer that stays
    /// inside the code cache — the cheap alternative to [`dispatch`]
    /// (an indirect jump predicted by the probe, no monitor round-trip).
    ///
    /// [`dispatch`]: CostModel::dispatch
    pub in_cache_dispatch: u64,
}

impl CostModel {
    /// Cost model approximating the paper's Alpha ES40 / CentOS setup.
    pub fn es40() -> CostModel {
        CostModel {
            insn_base: 1,
            load_extra: 2,
            store_extra: 1,
            branch_taken_extra: 1,
            l1_miss: 12,
            l2_miss: 120,
            unaligned_trap: 1000,
            unaligned_fixup: 200,
            interp_per_guest_insn: 30,
            interp_per_mem_access: 6,
            translate_per_guest_insn: 260,
            translate_per_block: 800,
            patch_base: 320,
            patch_per_word: 14,
            invalidate_block: 220,
            dispatch: 24,
            in_cache_dispatch: 3,
        }
    }

    /// A cost model with all cache penalties zeroed, for tests that want
    /// deterministic instruction-proportional cycle counts.
    pub fn flat() -> CostModel {
        CostModel {
            insn_base: 1,
            load_extra: 0,
            store_extra: 0,
            branch_taken_extra: 0,
            l1_miss: 0,
            l2_miss: 0,
            unaligned_trap: 1000,
            unaligned_fixup: 200,
            interp_per_guest_insn: 30,
            interp_per_mem_access: 6,
            translate_per_guest_insn: 260,
            translate_per_block: 800,
            patch_base: 320,
            patch_per_word: 14,
            invalidate_block: 220,
            dispatch: 24,
            in_cache_dispatch: 3,
        }
    }
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel::es40()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trap_dwarfs_sequence() {
        let c = CostModel::es40();
        // The economics the whole paper rests on: trap cost must exceed the
        // MDA sequence cost by orders of magnitude, and the sequence must
        // cost more than a plain access.
        let plain_load = c.insn_base + c.load_extra;
        let mda_sequence = 7 * c.insn_base + 2 * (c.insn_base + c.load_extra);
        assert!(mda_sequence > plain_load);
        assert!(c.unaligned_trap > 20 * mda_sequence);
        // In-cache dispatch only pays off if it undercuts the monitor path.
        assert!(c.in_cache_dispatch < c.dispatch);
    }

    #[test]
    fn default_is_es40() {
        assert_eq!(CostModel::default(), CostModel::es40());
    }

    #[test]
    fn flat_has_no_cache_penalties() {
        let c = CostModel::flat();
        assert_eq!(c.l1_miss, 0);
        assert_eq!(c.l2_miss, 0);
        assert_eq!(c.load_extra, 0);
    }
}
