//! Native-x86 machine cost model, used only by the Figure 1 experiment.
//!
//! The paper's Figure 1 measures, on real x86 hardware, how much enforcing
//! data alignment with compiler flags (pathscale / icc) actually helps — and
//! finds ~1–2% mean speedup, because x86 hardware completes misaligned
//! accesses with only a small split-access penalty while the padding that
//! alignment requires grows the data working set. This module models exactly
//! that trade-off: misaligned accesses cost a little extra (and a second
//! cache access when they straddle a line), and the cache hierarchy makes
//! working-set growth visible.

use crate::cache::Cache;
use crate::cpu::block_engine_default;
use crate::hashing::FxHashMap;
use crate::mem::Memory;
use bridge_x86::decode::{decode, Decoded};
use bridge_x86::exec::{execute, Next};
use bridge_x86::state::CpuState;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

const LINE_BYTES: u64 = 64;

/// Maximum instructions per decoded trace (x86 insns are variable-length,
/// so this bounds decode waste, not bytes).
const TRACE_MAX_INSNS: usize = 32;

/// Cycle costs of the native x86 machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NativeCost {
    /// Base cost per instruction.
    pub insn_base: u64,
    /// Extra cycles per load (L1 hit).
    pub load_extra: u64,
    /// Extra cycles per store (L1 hit).
    pub store_extra: u64,
    /// Extra cycles for a taken branch.
    pub branch_taken_extra: u64,
    /// Extra cycles for an L1 miss that hits L2.
    pub l1_miss: u64,
    /// Extra cycles for an L2 miss.
    pub l2_miss: u64,
    /// Extra cycles for any misaligned access (hardware split).
    pub misaligned_extra: u64,
}

impl Default for NativeCost {
    fn default() -> NativeCost {
        NativeCost {
            insn_base: 1,
            load_extra: 2,
            store_extra: 1,
            branch_taken_extra: 1,
            l1_miss: 10,
            l2_miss: 100,
            // Mid-2000s x86 cores (the paper's era) paid roughly this much
            // for a split access even within a line.
            misaligned_extra: 3,
        }
    }
}

/// Statistics from a native run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NativeStats {
    /// Total cycles.
    pub cycles: u64,
    /// Guest instructions executed.
    pub insns: u64,
    /// Memory accesses performed.
    pub mem_accesses: u64,
    /// Misaligned accesses among them.
    pub mdas: u64,
    /// D-cache misses.
    pub dcache_misses: u64,
    /// L2 misses.
    pub l2_misses: u64,
}

/// Why the native machine stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NativeExit {
    /// The program executed `hlt`.
    Halted,
    /// Fuel ran out.
    OutOfFuel,
    /// Undecodable bytes at the given address.
    DecodeError {
        /// Address of the undecodable instruction.
        eip: u32,
    },
}

impl fmt::Display for NativeExit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NativeExit::Halted => write!(f, "halted"),
            NativeExit::OutOfFuel => write!(f, "out of fuel"),
            NativeExit::DecodeError { eip } => write!(f, "decode error at {eip:#x}"),
        }
    }
}

/// An x86 machine executing the guest program natively (no translation),
/// with hardware-handled misaligned accesses.
///
/// Like the Alpha [`Machine`](crate::cpu::Machine) it has a block-granular
/// engine: straight-line runs decode once into a dense trace of
/// [`Decoded`] instructions keyed by entry `eip`, executed with no
/// per-instruction map probe. Native code is never patched (there is no
/// `write_code` on this machine), so traces need no invalidation — the
/// same invariant the original per-instruction decode cache relied on.
#[derive(Debug)]
pub struct NativeMachine {
    mem: Memory,
    state: CpuState,
    cost: NativeCost,
    dcache: Cache,
    l2: Cache,
    stats: NativeStats,
    /// Per-instruction engine's decode cache — the pre-trace baseline,
    /// deliberately left on the default hasher so `run_legacy` stays
    /// byte-for-byte the original engine for perf comparisons.
    decode_cache: HashMap<u32, Decoded>,
    traces: FxHashMap<u32, Arc<Vec<Decoded>>>,
    use_traces: bool,
    /// D-cache line of the most recent data access, or `u64::MAX`. Data
    /// accesses are the *only* D-cache traffic (this machine has no
    /// modelled I-cache and never patches code), so an access to this line
    /// is a guaranteed MRU hit: it changes no LRU state, touches no L2 and
    /// bumps no counter — [`NativeMachine::data_access`] can return
    /// immediately with identical accounting.
    last_data_line: u64,
}

/// Batched counts of data accesses whose cycle charge is a per-kind
/// constant (`load_extra`/`store_extra`). The trace runner accumulates
/// these in registers and posts them to [`NativeStats`] on exit.
#[derive(Default)]
struct AccessTally {
    loads: u64,
    stores: u64,
}

impl NativeMachine {
    /// New machine with default costs, executing from `entry`.
    pub fn new(entry: u32) -> NativeMachine {
        NativeMachine::with_cost(entry, NativeCost::default())
    }

    /// New machine with explicit costs.
    pub fn with_cost(entry: u32, cost: NativeCost) -> NativeMachine {
        NativeMachine {
            mem: Memory::new(),
            state: CpuState::new(entry),
            cost,
            dcache: Cache::es40_l1(),
            l2: Cache::es40_l2(),
            stats: NativeStats::default(),
            decode_cache: HashMap::new(),
            traces: FxHashMap::default(),
            use_traces: block_engine_default(),
            last_data_line: u64::MAX,
        }
    }

    /// Selects the execution engine: `true` = trace engine, `false` =
    /// per-instruction engine. Identical results either way.
    pub fn set_traces(&mut self, on: bool) {
        self.use_traces = on;
        if !on {
            self.traces.clear();
        }
    }

    /// Memory access for loading the image and data.
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Guest CPU state.
    pub fn state(&self) -> &CpuState {
        &self.state
    }

    /// Mutable guest CPU state (e.g. to preset the stack pointer).
    pub fn state_mut(&mut self) -> &mut CpuState {
        &mut self.state
    }

    /// Run statistics.
    pub fn stats(&self) -> &NativeStats {
        &self.stats
    }

    fn data_access(&mut self, line_addr: u64) {
        // Same-line fast path; see the `last_data_line` field docs.
        if line_addr == self.last_data_line {
            return;
        }
        self.last_data_line = line_addr;
        if !self.dcache.access(line_addr) {
            self.stats.dcache_misses += 1;
            self.stats.cycles += self.cost.l1_miss;
            if !self.l2.access(line_addr) {
                self.stats.l2_misses += 1;
                self.stats.cycles += self.cost.l2_miss;
            }
        }
    }

    /// Executes one instruction; `None` to continue.
    pub fn step(&mut self) -> Option<NativeExit> {
        let eip = self.state.eip;
        let decoded = match self.decode_cache.get(&eip) {
            Some(d) => *d,
            None => {
                let mut buf = [0u8; 16];
                self.mem.read_bytes(u64::from(eip), &mut buf);
                match decode(&buf, eip) {
                    Ok(d) => {
                        self.decode_cache.insert(eip, d);
                        d
                    }
                    Err(_) => return Some(NativeExit::DecodeError { eip }),
                }
            }
        };
        self.exec_decoded(&decoded)
    }

    /// Executes one already-decoded instruction; shared by both engines.
    #[inline]
    fn exec_decoded(&mut self, decoded: &Decoded) -> Option<NativeExit> {
        self.stats.insns += 1;
        self.stats.cycles += self.cost.insn_base;
        self.exec_decoded_uncounted(decoded)
    }

    /// [`NativeMachine::exec_decoded`] without the per-instruction
    /// `insns`/`insn_base` bookkeeping — the trace runner batches those
    /// two counters and flushes them on exit, which is observation-
    /// equivalent because statistics are only read between runs.
    #[inline]
    fn exec_decoded_uncounted(&mut self, decoded: &Decoded) -> Option<NativeExit> {
        let mut tally = AccessTally::default();
        let exit = self.exec_decoded_tallied(decoded, &mut tally);
        self.flush_tally(&tally);
        exit
    }

    /// Adds a batched [`AccessTally`] to the statistics. Loads and stores
    /// each charge a fixed extra, so `n` of them can be charged as one
    /// multiply instead of `n` read-modify-writes.
    #[inline]
    fn flush_tally(&mut self, tally: &AccessTally) {
        self.stats.mem_accesses += tally.loads + tally.stores;
        self.stats.cycles +=
            tally.loads * self.cost.load_extra + tally.stores * self.cost.store_extra;
    }

    /// Executes one decoded instruction, accumulating per-access constant
    /// charges into `tally` instead of the statistics. Irregular charges
    /// (cache misses, misalignment, taken branches) still post directly.
    #[inline]
    fn exec_decoded_tallied(
        &mut self,
        decoded: &Decoded,
        tally: &mut AccessTally,
    ) -> Option<NativeExit> {
        let result = execute(&decoded.insn, decoded.len, &mut self.state, &mut self.mem);

        for acc in result.accesses.iter() {
            if acc.store {
                tally.stores += 1;
            } else {
                tally.loads += 1;
            }
            let first = u64::from(acc.addr);
            let last = first + u64::from(acc.width.bytes()) - 1;
            self.data_access(first & !(LINE_BYTES - 1));
            if acc.misaligned() {
                self.stats.mdas += 1;
                self.stats.cycles += self.cost.misaligned_extra;
                if last & !(LINE_BYTES - 1) != first & !(LINE_BYTES - 1) {
                    // Line-crossing split: second cache access.
                    self.data_access(last & !(LINE_BYTES - 1));
                }
            }
        }

        match result.next {
            Next::Halt => Some(NativeExit::Halted),
            Next::Jump(_) => {
                self.stats.cycles += self.cost.branch_taken_extra;
                None
            }
            Next::Fall => None,
        }
    }

    /// Runs until halt, decode error or `fuel` instructions, using the
    /// engine selected by [`NativeMachine::set_traces`].
    pub fn run(&mut self, fuel: u64) -> NativeExit {
        if self.use_traces {
            self.run_traces(fuel)
        } else {
            self.run_legacy(fuel)
        }
    }

    /// Runs on the per-instruction engine (the pre-trace baseline).
    pub fn run_legacy(&mut self, mut fuel: u64) -> NativeExit {
        loop {
            if fuel == 0 {
                return NativeExit::OutOfFuel;
            }
            fuel -= 1;
            if let Some(exit) = self.step() {
                return exit;
            }
        }
    }

    fn run_traces(&mut self, mut fuel: u64) -> NativeExit {
        // Per-instruction `insns`/`insn_base` accounting and the per-access
        // load/store constants are accumulated here and flushed at every
        // exit path — identical totals, several fewer memory
        // read-modify-writes per instruction.
        let mut executed: u64 = 0;
        let mut tally = AccessTally::default();
        macro_rules! exit_with {
            ($e:expr) => {{
                self.stats.insns += executed;
                self.stats.cycles += executed * self.cost.insn_base;
                self.flush_tally(&tally);
                return $e;
            }};
        }
        loop {
            let entry = self.state.eip;
            let trace = match self.traces.get(&entry) {
                Some(t) => Arc::clone(t),
                None => match self.decode_trace(entry) {
                    Some(t) => t,
                    None => {
                        // Undecodable bytes at the entry itself.
                        if fuel == 0 {
                            exit_with!(NativeExit::OutOfFuel);
                        }
                        exit_with!(NativeExit::DecodeError { eip: entry });
                    }
                },
            };
            // Re-enter the same trace without a map probe while control
            // keeps returning to its entry — the common case for tight
            // loops. Native code is never patched, so the cached `Arc`
            // cannot go stale.
            loop {
                for d in trace.iter() {
                    if fuel == 0 {
                        exit_with!(NativeExit::OutOfFuel);
                    }
                    fuel -= 1;
                    executed += 1;
                    let fall_through = self.state.eip.wrapping_add(d.len);
                    if let Some(exit) = self.exec_decoded_tallied(d, &mut tally) {
                        exit_with!(exit);
                    }
                    if self.state.eip != fall_through {
                        // Control transfer (taken branch / jump / call /
                        // ret): stop executing this trace here.
                        break;
                    }
                }
                if self.state.eip != entry {
                    break;
                }
            }
        }
    }

    /// Decodes the straight-line instruction run starting at `entry` into a
    /// cached trace. Returns `None` (caching nothing) if the entry bytes do
    /// not decode; a decode failure *after* at least one instruction ends
    /// the trace there, so executing the prefix falls through to the bad
    /// bytes and reports the error with exact accounting.
    fn decode_trace(&mut self, entry: u32) -> Option<Arc<Vec<Decoded>>> {
        let mut insns = Vec::new();
        let mut eip = entry;
        loop {
            let mut buf = [0u8; 16];
            self.mem.read_bytes(u64::from(eip), &mut buf);
            let d = match decode(&buf, eip) {
                Ok(d) => d,
                Err(_) => break,
            };
            eip = eip.wrapping_add(d.len);
            let ends = d.insn.ends_block();
            insns.push(d);
            if ends || insns.len() == TRACE_MAX_INSNS {
                break;
            }
        }
        if insns.is_empty() {
            return None;
        }
        let trace = Arc::new(insns);
        self.traces.insert(entry, Arc::clone(&trace));
        Some(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bridge_x86::asm::Assembler;
    use bridge_x86::insn::{AluOp, Ext, MemRef, Width};
    use bridge_x86::reg::Reg32::*;

    fn load_and_run(build: impl FnOnce(&mut Assembler), fuel: u64) -> (NativeMachine, NativeExit) {
        let entry = 0x40_0000;
        let mut a = Assembler::new(entry);
        build(&mut a);
        let image = a.finish().expect("assembles");
        let mut m = NativeMachine::new(entry);
        m.mem_mut().write_bytes(u64::from(entry), &image);
        let exit = m.run(fuel);
        (m, exit)
    }

    #[test]
    fn runs_simple_program() {
        let (m, exit) = load_and_run(
            |a| {
                a.mov_ri(Eax, 2);
                a.alu_ri(AluOp::Add, Eax, 40);
                a.hlt();
            },
            100,
        );
        assert_eq!(exit, NativeExit::Halted);
        assert_eq!(m.state().reg(Eax), 42);
        assert_eq!(m.stats().insns, 3);
    }

    #[test]
    fn counts_mdas_with_split_penalty() {
        let (m, exit) = load_and_run(
            |a| {
                a.mov_ri(Ebx, 0x1_0000);
                // Aligned load.
                a.load(Width::W4, Ext::Zero, Eax, MemRef::base_disp(Ebx, 0));
                // Misaligned, within one 64-byte line.
                a.load(Width::W4, Ext::Zero, Eax, MemRef::base_disp(Ebx, 2));
                // Misaligned, crossing a line boundary (offset 62..66).
                a.load(Width::W4, Ext::Zero, Eax, MemRef::base_disp(Ebx, 62));
                a.hlt();
            },
            100,
        );
        assert_eq!(exit, NativeExit::Halted);
        assert_eq!(m.stats().mem_accesses, 3);
        assert_eq!(m.stats().mdas, 2);
        // Two lines were touched; the line-crossing access touched line 2
        // as well. Compulsory misses: line at 0x10000 and line at 0x10040.
        assert_eq!(m.stats().dcache_misses, 2);
    }

    #[test]
    fn misaligned_costs_more_than_aligned() {
        let run = |offset: i32| {
            let (m, _) = load_and_run(
                |a| {
                    a.mov_ri(Ebx, 0x1_0000);
                    a.mov_ri(Ecx, 1000);
                    let top = a.here_label();
                    a.load(Width::W4, Ext::Zero, Eax, MemRef::base_disp(Ebx, offset));
                    a.alu_ri(AluOp::Sub, Ecx, 1);
                    a.jcc(bridge_x86::cond::Cond::Ne, top);
                    a.hlt();
                },
                100_000,
            );
            m.stats().cycles
        };
        let aligned = run(0);
        let misaligned = run(2);
        assert!(misaligned > aligned);
        // But only mildly so — the point of Figure 1 (every access in this
        // loop is misaligned, so the upper bound is generous).
        assert!((misaligned - aligned) as f64 / aligned as f64 <= 0.80);
    }

    /// Trace and per-instruction engines must agree on state and cycles.
    #[test]
    fn trace_engine_matches_legacy() {
        let build = |a: &mut Assembler| {
            a.mov_ri(Ebx, 0x1_0000);
            a.mov_ri(Ecx, 500);
            let top = a.here_label();
            a.load(Width::W4, Ext::Zero, Eax, MemRef::base_disp(Ebx, 2)); // MDA
            a.store(Width::W4, Eax, MemRef::base_disp(Ebx, 62)); // line-split MDA
            a.alu_ri(AluOp::Add, Ebx, 4);
            a.alu_ri(AluOp::Sub, Ecx, 1);
            a.jcc(bridge_x86::cond::Cond::Ne, top);
            a.hlt();
        };
        let run = |traces: bool| {
            let entry = 0x40_0000;
            let mut a = Assembler::new(entry);
            build(&mut a);
            let image = a.finish().expect("assembles");
            let mut m = NativeMachine::new(entry);
            m.set_traces(traces);
            m.mem_mut().write_bytes(u64::from(entry), &image);
            let exit = m.run(1_000_000);
            assert_eq!(exit, NativeExit::Halted);
            (*m.stats(), m.state().reg(Eax), m.state().eip)
        };
        let (fast, fast_eax, fast_eip) = run(true);
        let (slow, slow_eax, slow_eip) = run(false);
        assert_eq!(fast_eax, slow_eax);
        assert_eq!(fast_eip, slow_eip);
        assert_eq!(fast, slow, "stats must be identical across engines");
        assert!(fast.mdas > 0, "the loop exercises misaligned accesses");
    }

    #[test]
    fn decode_error_surfaces() {
        let entry = 0x40_0000;
        let mut m = NativeMachine::new(entry);
        m.mem_mut().write_bytes(u64::from(entry), &[0xCC]);
        assert_eq!(m.run(10), NativeExit::DecodeError { eip: entry });
    }

    #[test]
    fn fuel_runs_out() {
        let (_, exit) = load_and_run(
            |a| {
                let top = a.here_label();
                a.jmp(top);
            },
            50,
        );
        assert_eq!(exit, NativeExit::OutOfFuel);
    }
}
