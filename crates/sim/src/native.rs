//! Native-x86 machine cost model, used only by the Figure 1 experiment.
//!
//! The paper's Figure 1 measures, on real x86 hardware, how much enforcing
//! data alignment with compiler flags (pathscale / icc) actually helps — and
//! finds ~1–2% mean speedup, because x86 hardware completes misaligned
//! accesses with only a small split-access penalty while the padding that
//! alignment requires grows the data working set. This module models exactly
//! that trade-off: misaligned accesses cost a little extra (and a second
//! cache access when they straddle a line), and the cache hierarchy makes
//! working-set growth visible.

use crate::cache::Cache;
use crate::mem::Memory;
use bridge_x86::decode::{decode, Decoded};
use bridge_x86::exec::{execute, Next};
use bridge_x86::state::CpuState;
use std::collections::HashMap;
use std::fmt;

const LINE_BYTES: u64 = 64;

/// Cycle costs of the native x86 machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NativeCost {
    /// Base cost per instruction.
    pub insn_base: u64,
    /// Extra cycles per load (L1 hit).
    pub load_extra: u64,
    /// Extra cycles per store (L1 hit).
    pub store_extra: u64,
    /// Extra cycles for a taken branch.
    pub branch_taken_extra: u64,
    /// Extra cycles for an L1 miss that hits L2.
    pub l1_miss: u64,
    /// Extra cycles for an L2 miss.
    pub l2_miss: u64,
    /// Extra cycles for any misaligned access (hardware split).
    pub misaligned_extra: u64,
}

impl Default for NativeCost {
    fn default() -> NativeCost {
        NativeCost {
            insn_base: 1,
            load_extra: 2,
            store_extra: 1,
            branch_taken_extra: 1,
            l1_miss: 10,
            l2_miss: 100,
            // Mid-2000s x86 cores (the paper's era) paid roughly this much
            // for a split access even within a line.
            misaligned_extra: 3,
        }
    }
}

/// Statistics from a native run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NativeStats {
    /// Total cycles.
    pub cycles: u64,
    /// Guest instructions executed.
    pub insns: u64,
    /// Memory accesses performed.
    pub mem_accesses: u64,
    /// Misaligned accesses among them.
    pub mdas: u64,
    /// D-cache misses.
    pub dcache_misses: u64,
    /// L2 misses.
    pub l2_misses: u64,
}

/// Why the native machine stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NativeExit {
    /// The program executed `hlt`.
    Halted,
    /// Fuel ran out.
    OutOfFuel,
    /// Undecodable bytes at the given address.
    DecodeError {
        /// Address of the undecodable instruction.
        eip: u32,
    },
}

impl fmt::Display for NativeExit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NativeExit::Halted => write!(f, "halted"),
            NativeExit::OutOfFuel => write!(f, "out of fuel"),
            NativeExit::DecodeError { eip } => write!(f, "decode error at {eip:#x}"),
        }
    }
}

/// An x86 machine executing the guest program natively (no translation),
/// with hardware-handled misaligned accesses.
#[derive(Debug)]
pub struct NativeMachine {
    mem: Memory,
    state: CpuState,
    cost: NativeCost,
    dcache: Cache,
    l2: Cache,
    stats: NativeStats,
    decode_cache: HashMap<u32, Decoded>,
}

impl NativeMachine {
    /// New machine with default costs, executing from `entry`.
    pub fn new(entry: u32) -> NativeMachine {
        NativeMachine::with_cost(entry, NativeCost::default())
    }

    /// New machine with explicit costs.
    pub fn with_cost(entry: u32, cost: NativeCost) -> NativeMachine {
        NativeMachine {
            mem: Memory::new(),
            state: CpuState::new(entry),
            cost,
            dcache: Cache::es40_l1(),
            l2: Cache::es40_l2(),
            stats: NativeStats::default(),
            decode_cache: HashMap::new(),
        }
    }

    /// Memory access for loading the image and data.
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Guest CPU state.
    pub fn state(&self) -> &CpuState {
        &self.state
    }

    /// Mutable guest CPU state (e.g. to preset the stack pointer).
    pub fn state_mut(&mut self) -> &mut CpuState {
        &mut self.state
    }

    /// Run statistics.
    pub fn stats(&self) -> &NativeStats {
        &self.stats
    }

    fn data_access(&mut self, line_addr: u64) {
        if !self.dcache.access(line_addr) {
            self.stats.dcache_misses += 1;
            self.stats.cycles += self.cost.l1_miss;
            if !self.l2.access(line_addr) {
                self.stats.l2_misses += 1;
                self.stats.cycles += self.cost.l2_miss;
            }
        }
    }

    /// Executes one instruction; `None` to continue.
    pub fn step(&mut self) -> Option<NativeExit> {
        let eip = self.state.eip;
        let decoded = match self.decode_cache.get(&eip) {
            Some(d) => *d,
            None => {
                let mut buf = [0u8; 16];
                self.mem.read_bytes(u64::from(eip), &mut buf);
                match decode(&buf, eip) {
                    Ok(d) => {
                        self.decode_cache.insert(eip, d);
                        d
                    }
                    Err(_) => return Some(NativeExit::DecodeError { eip }),
                }
            }
        };

        self.stats.insns += 1;
        self.stats.cycles += self.cost.insn_base;
        let result = execute(&decoded.insn, decoded.len, &mut self.state, &mut self.mem);

        for acc in result.accesses.iter() {
            self.stats.mem_accesses += 1;
            self.stats.cycles += if acc.store {
                self.cost.store_extra
            } else {
                self.cost.load_extra
            };
            let first = u64::from(acc.addr);
            let last = first + u64::from(acc.width.bytes()) - 1;
            self.data_access(first & !(LINE_BYTES - 1));
            if acc.misaligned() {
                self.stats.mdas += 1;
                self.stats.cycles += self.cost.misaligned_extra;
                if last & !(LINE_BYTES - 1) != first & !(LINE_BYTES - 1) {
                    // Line-crossing split: second cache access.
                    self.data_access(last & !(LINE_BYTES - 1));
                }
            }
        }

        match result.next {
            Next::Halt => Some(NativeExit::Halted),
            Next::Jump(_) => {
                self.stats.cycles += self.cost.branch_taken_extra;
                None
            }
            Next::Fall => None,
        }
    }

    /// Runs until halt, decode error or `fuel` instructions.
    pub fn run(&mut self, mut fuel: u64) -> NativeExit {
        loop {
            if fuel == 0 {
                return NativeExit::OutOfFuel;
            }
            fuel -= 1;
            if let Some(exit) = self.step() {
                return exit;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bridge_x86::asm::Assembler;
    use bridge_x86::insn::{AluOp, Ext, MemRef, Width};
    use bridge_x86::reg::Reg32::*;

    fn load_and_run(build: impl FnOnce(&mut Assembler), fuel: u64) -> (NativeMachine, NativeExit) {
        let entry = 0x40_0000;
        let mut a = Assembler::new(entry);
        build(&mut a);
        let image = a.finish().expect("assembles");
        let mut m = NativeMachine::new(entry);
        m.mem_mut().write_bytes(u64::from(entry), &image);
        let exit = m.run(fuel);
        (m, exit)
    }

    #[test]
    fn runs_simple_program() {
        let (m, exit) = load_and_run(
            |a| {
                a.mov_ri(Eax, 2);
                a.alu_ri(AluOp::Add, Eax, 40);
                a.hlt();
            },
            100,
        );
        assert_eq!(exit, NativeExit::Halted);
        assert_eq!(m.state().reg(Eax), 42);
        assert_eq!(m.stats().insns, 3);
    }

    #[test]
    fn counts_mdas_with_split_penalty() {
        let (m, exit) = load_and_run(
            |a| {
                a.mov_ri(Ebx, 0x1_0000);
                // Aligned load.
                a.load(Width::W4, Ext::Zero, Eax, MemRef::base_disp(Ebx, 0));
                // Misaligned, within one 64-byte line.
                a.load(Width::W4, Ext::Zero, Eax, MemRef::base_disp(Ebx, 2));
                // Misaligned, crossing a line boundary (offset 62..66).
                a.load(Width::W4, Ext::Zero, Eax, MemRef::base_disp(Ebx, 62));
                a.hlt();
            },
            100,
        );
        assert_eq!(exit, NativeExit::Halted);
        assert_eq!(m.stats().mem_accesses, 3);
        assert_eq!(m.stats().mdas, 2);
        // Two lines were touched; the line-crossing access touched line 2
        // as well. Compulsory misses: line at 0x10000 and line at 0x10040.
        assert_eq!(m.stats().dcache_misses, 2);
    }

    #[test]
    fn misaligned_costs_more_than_aligned() {
        let run = |offset: i32| {
            let (m, _) = load_and_run(
                |a| {
                    a.mov_ri(Ebx, 0x1_0000);
                    a.mov_ri(Ecx, 1000);
                    let top = a.here_label();
                    a.load(Width::W4, Ext::Zero, Eax, MemRef::base_disp(Ebx, offset));
                    a.alu_ri(AluOp::Sub, Ecx, 1);
                    a.jcc(bridge_x86::cond::Cond::Ne, top);
                    a.hlt();
                },
                100_000,
            );
            m.stats().cycles
        };
        let aligned = run(0);
        let misaligned = run(2);
        assert!(misaligned > aligned);
        // But only mildly so — the point of Figure 1 (every access in this
        // loop is misaligned, so the upper bound is generous).
        assert!((misaligned - aligned) as f64 / aligned as f64 <= 0.80);
    }

    #[test]
    fn decode_error_surfaces() {
        let entry = 0x40_0000;
        let mut m = NativeMachine::new(entry);
        m.mem_mut().write_bytes(u64::from(entry), &[0xCC]);
        assert_eq!(m.run(10), NativeExit::DecodeError { eip: entry });
    }

    #[test]
    fn fuel_runs_out() {
        let (_, exit) = load_and_run(
            |a| {
                let top = a.here_label();
                a.jmp(top);
            },
            50,
        );
        assert_eq!(exit, NativeExit::OutOfFuel);
    }
}
