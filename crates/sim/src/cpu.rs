//! The host CPU: fetches, decodes and executes encoded Alpha words from
//! simulated memory, with alignment enforcement and cycle accounting.
//!
//! # Execution engines
//!
//! The machine has two functionally identical engines:
//!
//! * the **superblock engine** (default) decodes straight-line runs of
//!   instruction words into dense [`Superblock`]s keyed by entry PC and
//!   executes them with zero per-instruction map probes, and
//! * the **per-instruction engine** ([`Machine::run_legacy`], or
//!   [`Machine::step`]) decodes one word at a time through a
//!   decoded-instruction map — kept for single-stepping embedders and as
//!   the baseline the perf harness compares against.
//!
//! Both engines charge *exactly* the same cycles, cache accesses and
//! counters per architectural instruction: the superblock cache is a
//! decode-amortisation, not a timing change. Code patching through
//! [`Machine::write_code`] / [`Machine::patch_code_word`] invalidates every
//! superblock overlapping the patched word, so — exactly as with the
//! per-instruction engine — a patch takes effect on the very next fetch of
//! the patched address. This is the property the exception-handling MDA
//! mechanisms rely on (DESIGN.md §"Execution engine").

use crate::cache::Cache;
use crate::cost::CostModel;
use crate::hashing::FxHashMap;
use crate::mem::Memory;
use crate::stats::Stats;
use crate::trap::{Exit, MachineFault, UnalignedInfo};
use bridge_alpha::insn::{Insn, MemOp, Rb};
use bridge_alpha::reg::Reg;
use bridge_alpha::{decode, op, PAL_EXIT_MONITOR, PAL_HALT, PAL_REQUEST_MONITOR};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Maximum instructions per superblock. Bounds re-decode waste after a
/// patch and keeps a block within at most two 4 KB pages.
const SB_MAX_INSNS: usize = 64;

/// Page granularity of the superblock invalidation index. Independent of
/// [`Memory`]'s internal page size — it is just a partition of the address
/// space for finding blocks that overlap a patched word.
const SB_PAGE_SHIFT: u32 = 12;

/// Process-wide default for whether new [`Machine`]s use the superblock
/// engine. Exists so the perf harness can build *identical* experiment code
/// on both engines without threading a flag through every constructor.
static BLOCK_ENGINE_DEFAULT: AtomicBool = AtomicBool::new(true);

/// Sets the engine newly constructed [`Machine`]s (and
/// [`NativeMachine`](crate::native::NativeMachine)s) default to:
/// `true` = superblock/trace engine, `false` = per-instruction engine.
/// Existing machines are unaffected; see [`Machine::set_superblocks`].
pub fn set_block_engine_default(on: bool) {
    BLOCK_ENGINE_DEFAULT.store(on, Ordering::Relaxed);
}

/// Current process-wide engine default (see [`set_block_engine_default`]).
pub fn block_engine_default() -> bool {
    BLOCK_ENGINE_DEFAULT.load(Ordering::Relaxed)
}

/// A decoded straight-line run of instructions starting at [`Superblock::entry`].
///
/// Ends at (and includes) the first control-flow instruction, or earlier at
/// [`SB_MAX_INSNS`] or just before an undecodable word. Immutable once
/// built; shared by `Arc` so execution never borrows the block cache.
#[derive(Debug)]
struct Superblock {
    entry: u64,
    insns: Vec<Insn>,
}

impl Superblock {
    /// One past the address of the last instruction word.
    #[inline]
    fn end(&self) -> u64 {
        self.entry + 4 * self.insns.len() as u64
    }
}

/// Superblock cache plus the page-granular index used to invalidate
/// precisely on code patches.
#[derive(Debug, Clone, Default)]
struct SbCache {
    blocks: FxHashMap<u64, Arc<Superblock>>,
    /// Page index → entry PCs of blocks overlapping that page. Entries may
    /// be stale (block already removed); they are dropped lazily on the
    /// next scan of the page.
    by_page: FxHashMap<u64, Vec<u64>>,
}

impl SbCache {
    fn clear(&mut self) {
        self.blocks.clear();
        self.by_page.clear();
    }
}

/// The simulated Alpha machine.
///
/// Executes real encoded instruction words out of its [`Memory`], so the
/// DBT's code patching takes effect on the very next fetch of the patched
/// address. See the crate docs for an example.
#[derive(Debug, Clone)]
pub struct Machine {
    mem: Memory,
    regs: [u64; 32],
    pc: u64,
    cost: CostModel,
    icache: Option<Cache>,
    dcache: Option<Cache>,
    l2: Option<Cache>,
    stats: Stats,
    /// Decoded-instruction cache for the per-instruction engine. Sound
    /// because *all* code writes go through [`Machine::write_code`], which
    /// invalidates it; guest stores cannot reach the code-cache region (it
    /// lies above the 32-bit guest address space). Purely a simulator
    /// speedup — no cycle effect. Deliberately a default-hasher `HashMap`:
    /// this is the pre-superblock engine preserved byte-for-byte as the
    /// perf harness's baseline.
    decoded: HashMap<u64, Insn>,
    /// Superblock cache for the block engine; same soundness argument,
    /// with precise overlap invalidation in [`Machine::write_code`].
    sb: SbCache,
    use_superblocks: bool,
    /// D-cache line of the most recent data access, or `u64::MAX`. Data
    /// accesses through [`Machine::data_cost`] are the only D-cache
    /// traffic, so an access to this line is a guaranteed MRU hit: no LRU
    /// state change and no L2 traffic, letting `data_cost` charge the hit
    /// without walking the cache model. Reset when the D-cache is flushed.
    last_data_line: u64,
}

impl Machine {
    /// Machine with the ES40 cost model and cache geometry.
    pub fn new() -> Machine {
        Machine::with_cost(CostModel::es40())
    }

    /// Machine with a custom cost model and the ES40 cache geometry.
    pub fn with_cost(cost: CostModel) -> Machine {
        Machine {
            mem: Memory::new(),
            regs: [0; 32],
            pc: 0,
            cost,
            icache: Some(Cache::es40_l1()),
            dcache: Some(Cache::es40_l1()),
            l2: Some(Cache::es40_l2()),
            stats: Stats::new(),
            decoded: HashMap::new(),
            sb: SbCache::default(),
            use_superblocks: block_engine_default(),
            last_data_line: u64::MAX,
        }
    }

    /// Machine without cache modelling (cycle counts become purely
    /// instruction-proportional; useful for deterministic tests).
    pub fn without_caches(cost: CostModel) -> Machine {
        Machine {
            icache: None,
            dcache: None,
            l2: None,
            ..Machine::with_cost(cost)
        }
    }

    /// The cost model in use.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Shared access to memory.
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Mutable access to memory (guest data, image loading).
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Reads an integer register (`R31` reads as zero).
    #[inline]
    pub fn reg(&self, r: Reg) -> u64 {
        if r.is_zero() {
            0
        } else {
            self.regs[r.index()]
        }
    }

    /// Writes an integer register (`R31` writes are discarded).
    #[inline]
    pub fn set_reg(&mut self, r: Reg, v: u64) {
        if !r.is_zero() {
            self.regs[r.index()] = v;
        }
    }

    /// Current program counter.
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Sets the program counter.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is not 4-aligned.
    pub fn set_pc(&mut self, pc: u64) {
        assert_eq!(pc & 3, 0, "pc must be 4-aligned");
        self.pc = pc;
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Selects the execution engine for subsequent [`Machine::run`] calls:
    /// `true` = superblock engine, `false` = per-instruction engine. Both
    /// produce identical architectural state and cycle counts.
    pub fn set_superblocks(&mut self, on: bool) {
        self.use_superblocks = on;
        if !on {
            self.sb.clear();
        }
    }

    /// Number of superblocks currently cached (diagnostics).
    pub fn superblock_count(&self) -> usize {
        self.sb.blocks.len()
    }

    /// Charges extra cycles (used by the DBT engine for its runtime
    /// services: interpretation, translation, handler work).
    pub fn charge(&mut self, cycles: u64) {
        self.stats.cycles += cycles;
    }

    /// Adds an externally raised misalignment trap to the counters (the OS
    /// fixup path, where the engine emulates the access in software rather
    /// than resuming through patched code).
    pub fn count_external_trap(&mut self) {
        self.stats.unaligned_traps += 1;
    }

    /// Writes instruction words at `addr` (4-aligned) and invalidates the
    /// corresponding I-cache lines, as the DBT's code-cache writes must.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 4-aligned.
    pub fn write_code(&mut self, addr: u64, words: &[u32]) {
        assert_eq!(addr & 3, 0, "code must be 4-aligned");
        for (i, &w) in words.iter().enumerate() {
            let a = addr + 4 * i as u64;
            // Invalidate *before* the write lands: once this returns, no
            // engine may serve a pre-patch decode of `a`.
            self.invalidate_superblocks_at(a);
            self.decoded.remove(&a);
            self.mem.write_u32_aligned(a, w);
            if let Some(ic) = &mut self.icache {
                ic.invalidate(a);
            }
        }
    }

    /// Drops every cached superblock whose instruction range covers `addr`.
    ///
    /// This is the block engine's correctness contract with code patching:
    /// the EH mechanisms overwrite live translated code and the next fetch
    /// of the patched address must see the new word.
    fn invalidate_superblocks_at(&mut self, addr: u64) {
        let SbCache { blocks, by_page } = &mut self.sb;
        if let Some(entries) = by_page.get_mut(&(addr >> SB_PAGE_SHIFT)) {
            entries.retain(|&entry| match blocks.get(&entry) {
                Some(b) => {
                    if addr >= b.entry && addr < b.end() {
                        blocks.remove(&entry);
                        // The entry may linger in the *other* page's list
                        // when the block straddled a boundary; that copy is
                        // dropped lazily on that page's next scan.
                        false
                    } else {
                        true
                    }
                }
                None => false, // stale: block removed via another page
            });
        }
    }

    /// Overwrites a single instruction word (the exception handler's patch
    /// primitive) and invalidates its I-cache line.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 4-aligned.
    pub fn patch_code_word(&mut self, addr: u64, word: u32) {
        self.write_code(addr, &[word]);
    }

    /// Flushes all cache state (used between benchmark runs).
    pub fn flush_caches(&mut self) {
        for c in [&mut self.icache, &mut self.dcache, &mut self.l2]
            .into_iter()
            .flatten()
        {
            c.flush();
        }
        self.last_data_line = u64::MAX;
    }

    fn fetch_cost(&mut self, pc: u64) {
        self.stats.cycles += self.cost.insn_base;
        if self.icache.is_some() {
            self.stats.icache_accesses += 1;
        }
        self.fetch_walk(pc);
    }

    /// The I-cache walk of [`Machine::fetch_cost`] *without* the
    /// per-instruction `insn_base`/`icache_accesses` charges — those are
    /// batched by the superblock runner and flushed on exit.
    #[inline]
    fn fetch_walk(&mut self, pc: u64) {
        if let Some(ic) = &mut self.icache {
            if !ic.access(pc) {
                self.stats.icache_misses += 1;
                self.stats.cycles += self.cost.l1_miss;
                if let Some(l2) = &mut self.l2 {
                    self.stats.l2_accesses += 1;
                    if !l2.access(pc) {
                        self.stats.l2_misses += 1;
                        self.stats.cycles += self.cost.l2_miss;
                    }
                }
            }
        }
    }

    fn data_cost(&mut self, addr: u64, is_store: bool) {
        self.stats.cycles += if is_store {
            self.cost.store_extra
        } else {
            self.cost.load_extra
        };
        if let Some(dc) = &mut self.dcache {
            self.stats.dcache_accesses += 1;
            // Same-line fast path; see the `last_data_line` field docs.
            let line = addr >> dc.line_shift();
            if line == self.last_data_line {
                return;
            }
            self.last_data_line = line;
            if !dc.access(addr) {
                self.stats.dcache_misses += 1;
                self.stats.cycles += self.cost.l1_miss;
                if let Some(l2) = &mut self.l2 {
                    self.stats.l2_accesses += 1;
                    if !l2.access(addr) {
                        self.stats.l2_misses += 1;
                        self.stats.cycles += self.cost.l2_miss;
                    }
                }
            }
        }
    }

    /// Executes one instruction through the per-instruction engine.
    /// Returns `None` to continue, or the exit / trap that stopped the
    /// machine. On an [`Exit::Unaligned`] the PC still addresses the
    /// faulting instruction.
    pub fn step(&mut self) -> Option<Exit> {
        let pc = self.pc;
        self.fetch_cost(pc);
        self.stats.insns += 1;
        let insn = match self.decoded.get(&pc) {
            Some(i) => *i,
            None => {
                let word = self.mem.read_u32_aligned(pc);
                match decode(word) {
                    Ok(i) => {
                        self.decoded.insert(pc, i);
                        i
                    }
                    Err(_) => {
                        return Some(Exit::Fault(MachineFault::IllegalInstruction { pc, word }));
                    }
                }
            }
        };
        self.exec_insn(pc, insn)
    }

    /// Executes one already-decoded instruction at `pc`. Shared by both
    /// engines; charges data-side costs and updates the PC exactly as the
    /// original per-instruction interpreter did.
    #[inline]
    fn exec_insn(&mut self, pc: u64, insn: Insn) -> Option<Exit> {
        match insn {
            Insn::Mem { op, ra, rb, disp } => {
                let ea = self.reg(rb).wrapping_add(disp as i64 as u64);
                match op {
                    MemOp::Lda => self.set_reg(ra, ea),
                    MemOp::Ldah => {
                        let v = self.reg(rb).wrapping_add(((disp as i64) << 16) as u64);
                        self.set_reg(ra, v);
                    }
                    _ => {
                        let align = op.required_alignment();
                        if align > 1 && ea & u64::from(align - 1) != 0 {
                            self.stats.unaligned_traps += 1;
                            self.stats.cycles += self.cost.unaligned_trap;
                            return Some(Exit::Unaligned(UnalignedInfo {
                                pc,
                                addr: ea,
                                size: op.size(),
                                is_store: op.is_store(),
                                // The handler reads the faulting word from
                                // the exception context.
                                insn_word: self.mem.read_u32(pc),
                            }));
                        }
                        let access_addr = match op {
                            MemOp::LdqU | MemOp::StqU => ea & !7,
                            _ => ea,
                        };
                        self.data_cost(access_addr, op.is_store());
                        // Width-specialised accesses: after the alignment
                        // check (or the ldq_u/stq_u mask) 4- and 8-byte
                        // accesses are naturally aligned, so the aligned
                        // page-cached fast paths apply.
                        if op.is_store() {
                            self.stats.stores += 1;
                            let v = self.reg(ra);
                            match op.size() {
                                8 => self.mem.write_u64_aligned(access_addr, v),
                                4 => self.mem.write_u32_aligned(access_addr, v as u32),
                                size => self.mem.write_int(access_addr, size, v),
                            }
                        } else {
                            self.stats.loads += 1;
                            let raw = match op.size() {
                                8 => self.mem.load_u64_aligned(access_addr),
                                4 => u64::from(self.mem.load_u32_aligned(access_addr)),
                                size => self.mem.load_int(access_addr, size),
                            };
                            let v = match op {
                                MemOp::Ldl => raw as u32 as i32 as i64 as u64,
                                _ => raw,
                            };
                            self.set_reg(ra, v);
                        }
                    }
                }
                self.pc = pc.wrapping_add(4);
            }
            Insn::Br { op, ra, disp } => {
                let link = pc.wrapping_add(4);
                let taken = op.taken(self.reg(ra));
                if op.is_unconditional() {
                    self.set_reg(ra, link);
                }
                if taken {
                    self.stats.taken_branches += 1;
                    self.stats.cycles += self.cost.branch_taken_extra;
                    self.pc = bridge_alpha::builder::branch_target(pc, disp);
                } else {
                    self.pc = link;
                }
            }
            Insn::Jmp { ra, rb, .. } => {
                let link = pc.wrapping_add(4);
                let target = self.reg(rb) & !3;
                self.set_reg(ra, link);
                self.stats.taken_branches += 1;
                self.stats.cycles += self.cost.branch_taken_extra;
                self.pc = target;
            }
            Insn::Op { op, ra, rb, rc } => {
                let av = self.reg(ra);
                let bv = match rb {
                    Rb::Reg(r) => self.reg(r),
                    Rb::Lit(l) => u64::from(l),
                };
                if op.is_cmov() {
                    if op.cmov_taken(av) {
                        self.set_reg(rc, bv);
                    }
                } else {
                    self.set_reg(rc, op::eval(op, av, bv));
                }
                self.pc = pc.wrapping_add(4);
            }
            Insn::CallPal { func } => {
                self.pc = pc.wrapping_add(4);
                return match func {
                    PAL_HALT => Some(Exit::Halted),
                    PAL_EXIT_MONITOR => Some(Exit::Monitor),
                    PAL_REQUEST_MONITOR => Some(Exit::Request),
                    _ => Some(Exit::Fault(MachineFault::UnknownPal { pc, func })),
                };
            }
        }
        None
    }

    /// Runs until an exit, a trap, or `fuel` instructions have executed,
    /// using the engine selected by [`Machine::set_superblocks`].
    pub fn run(&mut self, fuel: u64) -> Exit {
        if self.use_superblocks {
            self.run_superblocks(fuel)
        } else {
            self.run_legacy(fuel)
        }
    }

    /// Runs on the per-instruction engine regardless of the engine
    /// selection (the pre-superblock baseline; also what the perf harness
    /// measures against).
    pub fn run_legacy(&mut self, mut fuel: u64) -> Exit {
        loop {
            if fuel == 0 {
                return Exit::Fault(MachineFault::OutOfFuel);
            }
            fuel -= 1;
            if let Some(exit) = self.step() {
                return exit;
            }
        }
    }

    fn run_superblocks(&mut self, mut fuel: u64) -> Exit {
        // Same-line fetch fast path. Within this call nothing but our own
        // fetches touches the I-cache (data costs go to the D-cache, and
        // code patches cannot happen mid-run), so a fetch from the line of
        // the previous *charged* fetch is a guaranteed MRU hit: charging it
        // moves MRU→MRU (no LRU state change) and a hit never touches the
        // shared L2. We can therefore skip the cache-model walk entirely —
        // byte-identical accounting to [`Machine::fetch_cost`], at a
        // fraction of the cost.
        let line_shift = self.icache.as_ref().map(Cache::line_shift);
        let mut last_line = u64::MAX; // conservatively cold at entry

        // Per-instruction `insns`/`insn_base`/`icache_accesses` accounting
        // is accumulated here and flushed at every exit path — identical
        // totals, three fewer memory read-modify-writes per instruction.
        let mut executed: u64 = 0;
        macro_rules! exit_with {
            ($e:expr) => {{
                self.stats.insns += executed;
                self.stats.cycles += executed * self.cost.insn_base;
                if self.icache.is_some() {
                    self.stats.icache_accesses += executed;
                }
                return $e;
            }};
        }
        loop {
            let entry = self.pc;
            let block = match self.sb.blocks.get(&entry) {
                Some(b) => Arc::clone(b),
                None => match self.decode_superblock(entry) {
                    Some(b) => b,
                    None => {
                        // Undecodable word at the entry itself. Charge the
                        // fetch exactly as the per-instruction engine does
                        // before reporting the fault.
                        if fuel == 0 {
                            exit_with!(Exit::Fault(MachineFault::OutOfFuel));
                        }
                        executed += 1;
                        self.fetch_walk(entry);
                        let word = self.mem.read_u32_aligned(entry);
                        exit_with!(Exit::Fault(MachineFault::IllegalInstruction {
                            pc: entry,
                            word
                        }));
                    }
                },
            };
            // Re-enter the same block without a map probe while control
            // keeps returning to its entry — the common case for tight
            // loops, which dominate the experiment kernels. Code patches
            // cannot happen mid-run, so the cached `Arc` cannot go stale.
            loop {
                // Only the final instruction of a block can transfer
                // control, so `self.pc` walks `entry, entry+4, …` while the
                // block runs and the loop needs no per-instruction dispatch.
                for &insn in &block.insns {
                    if fuel == 0 {
                        exit_with!(Exit::Fault(MachineFault::OutOfFuel));
                    }
                    fuel -= 1;
                    executed += 1;
                    let pc = self.pc;
                    match line_shift {
                        Some(shift) if pc >> shift == last_line => {}
                        Some(shift) => {
                            last_line = pc >> shift;
                            self.fetch_walk(pc);
                        }
                        None => {}
                    }
                    if let Some(exit) = self.exec_insn(pc, insn) {
                        exit_with!(exit);
                    }
                }
                if self.pc != entry {
                    break;
                }
            }
        }
    }

    /// Decodes the straight-line run starting at `entry` into a cached
    /// superblock. Returns `None` (and caches nothing) if the entry word
    /// itself does not decode.
    fn decode_superblock(&mut self, entry: u64) -> Option<Arc<Superblock>> {
        let mut insns = Vec::new();
        let mut pc = entry;
        loop {
            let word = self.mem.read_u32_aligned(pc);
            let insn = match decode(word) {
                Ok(i) => i,
                // Stop *before* an undecodable word; executing the prefix
                // falls through to it and faults with exact accounting.
                Err(_) => break,
            };
            insns.push(insn);
            let ends_block = matches!(
                insn,
                Insn::Br { .. } | Insn::Jmp { .. } | Insn::CallPal { .. }
            );
            if ends_block || insns.len() == SB_MAX_INSNS {
                break;
            }
            pc += 4;
        }
        if insns.is_empty() {
            return None;
        }
        let block = Arc::new(Superblock { entry, insns });
        for page in (block.entry >> SB_PAGE_SHIFT)..=((block.end() - 1) >> SB_PAGE_SHIFT) {
            self.sb.by_page.entry(page).or_default().push(entry);
        }
        self.sb.blocks.insert(entry, Arc::clone(&block));
        Some(block)
    }
}

impl Default for Machine {
    fn default() -> Machine {
        Machine::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bridge_alpha::builder::CodeBuilder;
    use bridge_alpha::insn::{BrOp, JumpKind, OpFn};

    const BASE: u64 = 0x8000_0000;

    fn run_fragment(build: impl FnOnce(&mut CodeBuilder)) -> (Machine, Exit) {
        let mut b = CodeBuilder::new(BASE);
        build(&mut b);
        let words = b.finish().expect("fragment builds");
        let mut m = Machine::without_caches(CostModel::flat());
        m.write_code(BASE, &words);
        m.set_pc(BASE);
        let exit = m.run(100_000);
        (m, exit)
    }

    #[test]
    fn arithmetic_loop() {
        // r1 = 10; r2 = 0; while (r1 != 0) { r2 += r1; r1 -= 1 } → r2 = 55
        let (m, exit) = run_fragment(|b| {
            b.load_imm32(Reg::R1, 10);
            b.load_imm32(Reg::R2, 0);
            let top = b.new_label();
            b.bind(top);
            b.op(OpFn::Addq, Reg::R2, Reg::R1, Reg::R2);
            b.op_lit(OpFn::Subq, Reg::R1, 1, Reg::R1);
            b.br_label(BrOp::Bne, Reg::R1, top);
            b.call_pal(PAL_HALT);
        });
        assert_eq!(exit, Exit::Halted);
        assert_eq!(m.reg(Reg::R2), 55);
    }

    #[test]
    fn aligned_memory_roundtrip() {
        let (m, exit) = run_fragment(|b| {
            b.load_imm32(Reg::R1, 0x1000);
            b.load_imm32(Reg::R2, -123);
            b.mem(MemOp::Stl, Reg::R2, 0, Reg::R1);
            b.mem(MemOp::Ldl, Reg::R3, 0, Reg::R1);
            b.mem(MemOp::Ldq, Reg::R4, 0x40, Reg::R1); // untouched → 0
            b.call_pal(PAL_HALT);
        });
        assert_eq!(exit, Exit::Halted);
        assert_eq!(m.reg(Reg::R3), (-123i64) as u64); // ldl sign-extends
        assert_eq!(m.reg(Reg::R4), 0);
    }

    #[test]
    fn misaligned_ldl_traps() {
        let (m, exit) = run_fragment(|b| {
            b.load_imm32(Reg::R1, 0x1002);
            b.mem(MemOp::Ldl, Reg::R2, 0, Reg::R1);
            b.call_pal(PAL_HALT);
        });
        let info = exit.unaligned().expect("should trap");
        assert_eq!(info.addr, 0x1002);
        assert_eq!(info.size, 4);
        assert!(!info.is_store);
        // PC still points at the faulting ldl.
        assert_eq!(m.pc(), info.pc);
        assert_eq!(m.stats().unaligned_traps, 1);
        assert!(m.stats().cycles >= m.cost().unaligned_trap);
    }

    #[test]
    fn misaligned_store_traps_with_store_flag() {
        let (_, exit) = run_fragment(|b| {
            b.load_imm32(Reg::R1, 0x1001);
            b.mem(MemOp::Stw, Reg::R2, 0, Reg::R1);
            b.call_pal(PAL_HALT);
        });
        let info = exit.unaligned().expect("should trap");
        assert!(info.is_store);
        assert_eq!(info.size, 2);
    }

    #[test]
    fn ldq_u_never_traps() {
        let (m, exit) = run_fragment(|b| {
            b.load_imm32(Reg::R1, 0x1007);
            b.mem(MemOp::LdqU, Reg::R2, 0, Reg::R1);
            b.call_pal(PAL_HALT);
        });
        assert_eq!(exit, Exit::Halted);
        assert_eq!(m.reg(Reg::R2), 0);
        assert_eq!(m.stats().unaligned_traps, 0);
    }

    #[test]
    fn mda_sequence_loads_unaligned_value() {
        use bridge_alpha::mda_seq::{emit_unaligned_load, AccessWidth, SeqTemps};
        let mut b = CodeBuilder::new(BASE);
        b.load_imm32(Reg::R2, 0x2001);
        emit_unaligned_load(
            &mut b,
            AccessWidth::W4,
            Reg::R1,
            Reg::R2,
            0,
            true,
            &SeqTemps::default(),
        );
        b.call_pal(PAL_HALT);
        let words = b.finish().unwrap();
        let mut m = Machine::without_caches(CostModel::flat());
        m.mem_mut().write_int(0x2001, 4, 0x8899_AABB);
        m.write_code(BASE, &words);
        m.set_pc(BASE);
        assert_eq!(m.run(1000), Exit::Halted);
        assert_eq!(m.reg(Reg::R1), 0x8899_AABBu32 as i32 as i64 as u64);
        assert_eq!(m.stats().unaligned_traps, 0);
    }

    #[test]
    fn monitor_exit_advances_pc() {
        let (m, exit) = run_fragment(|b| {
            b.load_imm32(Reg::R16, 0x40_0000);
            b.call_pal(PAL_EXIT_MONITOR);
        });
        assert_eq!(exit, Exit::Monitor);
        assert_eq!(m.reg(Reg::R16), 0x40_0000);
        // PC is after the call_pal: 2 insns for load_imm32? (one lda) + pal
        assert_eq!(m.pc() & 3, 0);
    }

    #[test]
    fn request_monitor_exit() {
        let (m, exit) = run_fragment(|b| {
            b.load_imm32(Reg::R16, 0x1234);
            b.call_pal(bridge_alpha::PAL_REQUEST_MONITOR);
        });
        assert_eq!(exit, Exit::Request);
        assert_eq!(m.reg(Reg::R16), 0x1234);
    }

    #[test]
    fn unknown_pal_faults() {
        let (_, exit) = run_fragment(|b| b.call_pal(0x3FF));
        assert!(matches!(
            exit,
            Exit::Fault(MachineFault::UnknownPal { func: 0x3FF, .. })
        ));
    }

    #[test]
    fn illegal_instruction_faults() {
        let mut m = Machine::without_caches(CostModel::flat());
        m.write_code(BASE, &[0x07u32 << 26]);
        m.set_pc(BASE);
        assert!(matches!(
            m.run(10),
            Exit::Fault(MachineFault::IllegalInstruction { pc: BASE, .. })
        ));
    }

    #[test]
    fn fuel_exhaustion() {
        let mut b = CodeBuilder::new(BASE);
        let top = b.new_label();
        b.bind(top);
        b.br_label(BrOp::Br, Reg::ZERO, top);
        let words = b.finish().unwrap();
        let mut m = Machine::without_caches(CostModel::flat());
        m.write_code(BASE, &words);
        m.set_pc(BASE);
        assert_eq!(m.run(100), Exit::Fault(MachineFault::OutOfFuel));
    }

    #[test]
    fn jump_and_link() {
        // Placed low so the absolute target fits load_imm32's i32 range.
        let base = 0x10_0000u64;
        let mut b = CodeBuilder::new(base);
        b.load_imm32(Reg::R5, (base + 4 * 4) as i32); // target: final halt
        b.jump(JumpKind::Jsr, Reg::R26, Reg::R5);
        b.call_pal(PAL_HALT); // skipped
        b.call_pal(PAL_HALT); // skipped
        b.call_pal(PAL_HALT); // jump target
        let words = b.finish().unwrap();
        assert_eq!(words.len(), 6, "ldah+lda, jsr, three halts");
        let mut m = Machine::without_caches(CostModel::flat());
        m.write_code(base, &words);
        m.set_pc(base);
        assert_eq!(m.run(100), Exit::Halted);
        // Link register holds the return address (after the jsr at +8).
        assert_eq!(m.reg(Reg::R26), base + 3 * 4);
        // Only the jump target executed: ldah+lda+jsr+halt.
        assert_eq!(m.stats().insns, 4);
    }

    #[test]
    fn cmov_conditional_write() {
        let (m, exit) = run_fragment(|b| {
            b.load_imm32(Reg::R1, 0); // condition: zero
            b.load_imm32(Reg::R2, 7);
            b.load_imm32(Reg::R3, 100);
            b.op(OpFn::Cmoveq, Reg::R1, Reg::R2, Reg::R3); // taken: r3 = 7
            b.op(OpFn::Cmovne, Reg::R1, Reg::R2, Reg::R4); // not taken
            b.call_pal(PAL_HALT);
        });
        assert_eq!(exit, Exit::Halted);
        assert_eq!(m.reg(Reg::R3), 7);
        assert_eq!(m.reg(Reg::R4), 0);
    }

    #[test]
    fn r31_is_hardwired_zero() {
        let (m, exit) = run_fragment(|b| {
            b.load_imm32(Reg::R1, 55);
            b.op(OpFn::Addq, Reg::R1, Reg::R1, Reg::R31); // write discarded
            b.op(OpFn::Addq, Reg::R31, Reg::R31, Reg::R2); // 0 + 0
            b.call_pal(PAL_HALT);
        });
        assert_eq!(exit, Exit::Halted);
        assert_eq!(m.reg(Reg::R31), 0);
        assert_eq!(m.reg(Reg::R2), 0);
    }

    #[test]
    fn patching_takes_effect_on_next_fetch() {
        // A loop that exits only after its body is patched from nop to
        // "subq r1, 1, r1" — emulates the exception handler's patch.
        let mut b = CodeBuilder::new(BASE);
        b.load_imm32(Reg::R1, 1);
        let top = b.new_label();
        b.bind(top);
        b.emit(bridge_alpha::Insn::NOP); // will be patched
        b.br_label(BrOp::Bne, Reg::R1, top);
        b.call_pal(PAL_HALT);
        let words = b.finish().unwrap();
        let mut m = Machine::without_caches(CostModel::flat());
        m.write_code(BASE, &words);
        m.set_pc(BASE);
        // Run a few instructions: the loop spins.
        for _ in 0..10 {
            assert!(m.step().is_none());
        }
        // Patch the nop (at BASE + 4, after the 1-insn load_imm32).
        let patched = bridge_alpha::encode::encode(&bridge_alpha::Insn::Op {
            op: OpFn::Subq,
            ra: Reg::R1,
            rb: bridge_alpha::Rb::Lit(1),
            rc: Reg::R1,
        });
        m.patch_code_word(BASE + 4, patched);
        assert_eq!(m.run(100), Exit::Halted);
        assert_eq!(m.reg(Reg::R1), 0);
    }

    /// The ISSUE's correctness-critical regression: with the superblock
    /// engine, patch a word of a *cached, previously executed* block via
    /// `write_code` and the next execution must fetch the patched word.
    #[test]
    fn superblock_cache_serves_patched_word() {
        // r1 = 2; top: nop; bne r1, top — spins forever until the nop is
        // patched to "subq r1, 1, r1".
        let mut b = CodeBuilder::new(BASE);
        b.load_imm32(Reg::R1, 2);
        let top = b.new_label();
        b.bind(top);
        b.emit(bridge_alpha::Insn::NOP);
        b.br_label(BrOp::Bne, Reg::R1, top);
        b.call_pal(PAL_HALT);
        let words = b.finish().unwrap();
        let mut m = Machine::without_caches(CostModel::flat());
        m.set_superblocks(true);
        m.write_code(BASE, &words);
        m.set_pc(BASE);
        // The loop spins: blocks get decoded and cached.
        assert_eq!(m.run(50), Exit::Fault(MachineFault::OutOfFuel));
        assert!(m.superblock_count() > 0, "blocks should be cached");
        let before = m.superblock_count();
        // Patch the nop (at BASE + 4) inside the cached loop body.
        let patched = bridge_alpha::encode::encode(&bridge_alpha::Insn::Op {
            op: OpFn::Subq,
            ra: Reg::R1,
            rb: bridge_alpha::Rb::Lit(1),
            rc: Reg::R1,
        });
        m.patch_code_word(BASE + 4, patched);
        assert!(
            m.superblock_count() < before,
            "patch must invalidate the overlapping superblock"
        );
        // If the stale block were served, this would still spin (OutOfFuel).
        assert_eq!(m.run(100), Exit::Halted);
        assert_eq!(m.reg(Reg::R1), 0);
    }

    /// Both engines must produce identical architectural state *and*
    /// identical counters/cycles on the same program.
    #[test]
    fn engines_agree_on_state_and_cycles() {
        let mut b = CodeBuilder::new(BASE);
        b.load_imm32(Reg::R1, 200);
        b.load_imm32(Reg::R2, 0x1000);
        b.load_imm32(Reg::R3, 0);
        let top = b.new_label();
        b.bind(top);
        b.mem(MemOp::Stq, Reg::R1, 0, Reg::R2);
        b.mem(MemOp::Ldq, Reg::R4, 0, Reg::R2);
        b.op(OpFn::Addq, Reg::R3, Reg::R4, Reg::R3);
        b.op_lit(OpFn::Addq, Reg::R2, 8, Reg::R2);
        b.op_lit(OpFn::Subq, Reg::R1, 1, Reg::R1);
        b.br_label(BrOp::Bne, Reg::R1, top);
        b.call_pal(PAL_HALT);
        let words = b.finish().unwrap();

        let run_engine = |superblocks: bool| {
            let mut m = Machine::new(); // full ES40 caches + cost model
            m.set_superblocks(superblocks);
            m.write_code(BASE, &words);
            m.set_pc(BASE);
            let exit = m.run(100_000);
            assert_eq!(exit, Exit::Halted);
            (*m.stats(), m.reg(Reg::R3), m.pc())
        };
        let (fast, fast_r3, fast_pc) = run_engine(true);
        let (slow, slow_r3, slow_pc) = run_engine(false);
        assert_eq!(fast_r3, slow_r3);
        assert_eq!(fast_pc, slow_pc);
        assert_eq!(fast.insns, slow.insns);
        assert_eq!(fast.cycles, slow.cycles);
        assert_eq!(fast.icache_misses, slow.icache_misses);
        assert_eq!(fast.dcache_misses, slow.dcache_misses);
        assert_eq!(fast.l2_misses, slow.l2_misses);
    }

    /// Unaligned traps must report the same context (and leave the PC on
    /// the faulting instruction) under the superblock engine, since the EH
    /// mechanisms resume from exactly that state.
    #[test]
    fn superblock_engine_trap_context() {
        let mut b = CodeBuilder::new(BASE);
        b.load_imm32(Reg::R1, 0x1002);
        b.emit(bridge_alpha::Insn::NOP); // mid-block padding
        b.mem(MemOp::Ldl, Reg::R2, 0, Reg::R1);
        b.call_pal(PAL_HALT);
        let words = b.finish().unwrap();
        let mut m = Machine::without_caches(CostModel::flat());
        m.set_superblocks(true);
        m.write_code(BASE, &words);
        m.set_pc(BASE);
        let exit = m.run(1000);
        let info = exit.unaligned().expect("should trap");
        assert_eq!(info.addr, 0x1002);
        assert_eq!(m.pc(), info.pc, "PC stays on the faulting instruction");
        assert_eq!(info.insn_word, m.mem().read_u32(info.pc));
        // Resuming without a fix re-traps at the same spot.
        assert!(m.run(1000).unaligned().is_some());
    }

    /// Fuel exhaustion mid-superblock must stop with exact instruction
    /// accounting, not round up to the block boundary.
    #[test]
    fn superblock_fuel_is_exact() {
        let mut b = CodeBuilder::new(BASE);
        for _ in 0..10 {
            b.emit(bridge_alpha::Insn::NOP);
        }
        b.call_pal(PAL_HALT);
        let words = b.finish().unwrap();
        let mut m = Machine::without_caches(CostModel::flat());
        m.set_superblocks(true);
        m.write_code(BASE, &words);
        m.set_pc(BASE);
        assert_eq!(m.run(7), Exit::Fault(MachineFault::OutOfFuel));
        assert_eq!(m.stats().insns, 7);
        assert_eq!(m.pc(), BASE + 7 * 4);
        // Resume with enough fuel: finishes the remaining 4 instructions.
        assert_eq!(m.run(100), Exit::Halted);
        assert_eq!(m.stats().insns, 11);
    }

    #[test]
    fn cycle_accounting_flat_model() {
        let (m, _) = run_fragment(|b| {
            b.load_imm32(Reg::R1, 1);
            b.call_pal(PAL_HALT);
        });
        // flat model: 1 cycle per instruction, 2 instructions.
        assert_eq!(m.stats().cycles, 2);
        assert_eq!(m.stats().insns, 2);
    }

    #[test]
    fn cache_stats_populated_with_caches_enabled() {
        let mut b = CodeBuilder::new(BASE);
        b.load_imm32(Reg::R1, 0x1000);
        b.mem(MemOp::Ldl, Reg::R2, 0, Reg::R1);
        b.call_pal(PAL_HALT);
        let words = b.finish().unwrap();
        let mut m = Machine::new();
        m.write_code(BASE, &words);
        m.set_pc(BASE);
        assert_eq!(m.run(100), Exit::Halted);
        assert!(m.stats().icache_accesses >= 3);
        assert_eq!(m.stats().dcache_accesses, 1);
        assert!(m.stats().icache_misses >= 1); // cold caches
        assert!(m.stats().cycles > m.stats().insns); // miss penalties landed
    }
}
