//! The host CPU: fetches, decodes and executes encoded Alpha words from
//! simulated memory, with alignment enforcement and cycle accounting.

use crate::cache::Cache;
use crate::cost::CostModel;
use crate::mem::Memory;
use crate::stats::Stats;
use crate::trap::{Exit, MachineFault, UnalignedInfo};
use bridge_alpha::insn::{Insn, MemOp, Rb};
use bridge_alpha::reg::Reg;
use bridge_alpha::{decode, op, PAL_EXIT_MONITOR, PAL_HALT, PAL_REQUEST_MONITOR};
use std::collections::HashMap;

/// The simulated Alpha machine.
///
/// Executes real encoded instruction words out of its [`Memory`], so the
/// DBT's code patching takes effect on the very next fetch of the patched
/// address. See the crate docs for an example.
#[derive(Debug, Clone)]
pub struct Machine {
    mem: Memory,
    regs: [u64; 32],
    pc: u64,
    cost: CostModel,
    icache: Option<Cache>,
    dcache: Option<Cache>,
    l2: Option<Cache>,
    stats: Stats,
    /// Decoded-instruction cache. Sound because *all* code writes go
    /// through [`Machine::write_code`], which invalidates it; guest stores
    /// cannot reach the code-cache region (it lies above the 32-bit guest
    /// address space). Purely a simulator speedup — no cycle effect.
    decoded: HashMap<u64, Insn>,
}

impl Machine {
    /// Machine with the ES40 cost model and cache geometry.
    pub fn new() -> Machine {
        Machine::with_cost(CostModel::es40())
    }

    /// Machine with a custom cost model and the ES40 cache geometry.
    pub fn with_cost(cost: CostModel) -> Machine {
        Machine {
            mem: Memory::new(),
            regs: [0; 32],
            pc: 0,
            cost,
            icache: Some(Cache::es40_l1()),
            dcache: Some(Cache::es40_l1()),
            l2: Some(Cache::es40_l2()),
            stats: Stats::new(),
            decoded: HashMap::new(),
        }
    }

    /// Machine without cache modelling (cycle counts become purely
    /// instruction-proportional; useful for deterministic tests).
    pub fn without_caches(cost: CostModel) -> Machine {
        Machine {
            icache: None,
            dcache: None,
            l2: None,
            ..Machine::with_cost(cost)
        }
    }

    /// The cost model in use.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Shared access to memory.
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Mutable access to memory (guest data, image loading).
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Reads an integer register (`R31` reads as zero).
    #[inline]
    pub fn reg(&self, r: Reg) -> u64 {
        if r.is_zero() {
            0
        } else {
            self.regs[r.index()]
        }
    }

    /// Writes an integer register (`R31` writes are discarded).
    #[inline]
    pub fn set_reg(&mut self, r: Reg, v: u64) {
        if !r.is_zero() {
            self.regs[r.index()] = v;
        }
    }

    /// Current program counter.
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Sets the program counter.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is not 4-aligned.
    pub fn set_pc(&mut self, pc: u64) {
        assert_eq!(pc & 3, 0, "pc must be 4-aligned");
        self.pc = pc;
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Charges extra cycles (used by the DBT engine for its runtime
    /// services: interpretation, translation, handler work).
    pub fn charge(&mut self, cycles: u64) {
        self.stats.cycles += cycles;
    }

    /// Adds an externally raised misalignment trap to the counters (the OS
    /// fixup path, where the engine emulates the access in software rather
    /// than resuming through patched code).
    pub fn count_external_trap(&mut self) {
        self.stats.unaligned_traps += 1;
    }

    /// Writes instruction words at `addr` (4-aligned) and invalidates the
    /// corresponding I-cache lines, as the DBT's code-cache writes must.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 4-aligned.
    pub fn write_code(&mut self, addr: u64, words: &[u32]) {
        assert_eq!(addr & 3, 0, "code must be 4-aligned");
        for (i, &w) in words.iter().enumerate() {
            let a = addr + 4 * i as u64;
            self.mem.write_u32(a, w);
            self.decoded.remove(&a);
            if let Some(ic) = &mut self.icache {
                ic.invalidate(a);
            }
        }
    }

    /// Overwrites a single instruction word (the exception handler's patch
    /// primitive) and invalidates its I-cache line.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 4-aligned.
    pub fn patch_code_word(&mut self, addr: u64, word: u32) {
        self.write_code(addr, &[word]);
    }

    /// Flushes all cache state (used between benchmark runs).
    pub fn flush_caches(&mut self) {
        for c in [&mut self.icache, &mut self.dcache, &mut self.l2]
            .into_iter()
            .flatten()
        {
            c.flush();
        }
    }

    fn fetch_cost(&mut self, pc: u64) {
        self.stats.cycles += self.cost.insn_base;
        if let Some(ic) = &mut self.icache {
            self.stats.icache_accesses += 1;
            if !ic.access(pc) {
                self.stats.icache_misses += 1;
                self.stats.cycles += self.cost.l1_miss;
                if let Some(l2) = &mut self.l2 {
                    self.stats.l2_accesses += 1;
                    if !l2.access(pc) {
                        self.stats.l2_misses += 1;
                        self.stats.cycles += self.cost.l2_miss;
                    }
                }
            }
        }
    }

    fn data_cost(&mut self, addr: u64, is_store: bool) {
        self.stats.cycles += if is_store {
            self.cost.store_extra
        } else {
            self.cost.load_extra
        };
        if let Some(dc) = &mut self.dcache {
            self.stats.dcache_accesses += 1;
            if !dc.access(addr) {
                self.stats.dcache_misses += 1;
                self.stats.cycles += self.cost.l1_miss;
                if let Some(l2) = &mut self.l2 {
                    self.stats.l2_accesses += 1;
                    if !l2.access(addr) {
                        self.stats.l2_misses += 1;
                        self.stats.cycles += self.cost.l2_miss;
                    }
                }
            }
        }
    }

    /// Executes one instruction. Returns `None` to continue, or the exit /
    /// trap that stopped the machine. On an [`Exit::Unaligned`] the PC still
    /// addresses the faulting instruction.
    pub fn step(&mut self) -> Option<Exit> {
        let pc = self.pc;
        self.fetch_cost(pc);
        self.stats.insns += 1;
        let insn = match self.decoded.get(&pc) {
            Some(i) => *i,
            None => {
                let word = self.mem.read_u32(pc);
                match decode(word) {
                    Ok(i) => {
                        self.decoded.insert(pc, i);
                        i
                    }
                    Err(_) => {
                        return Some(Exit::Fault(MachineFault::IllegalInstruction { pc, word }));
                    }
                }
            }
        };

        match insn {
            Insn::Mem { op, ra, rb, disp } => {
                let ea = self.reg(rb).wrapping_add(disp as i64 as u64);
                match op {
                    MemOp::Lda => self.set_reg(ra, ea),
                    MemOp::Ldah => {
                        let v = self.reg(rb).wrapping_add(((disp as i64) << 16) as u64);
                        self.set_reg(ra, v);
                    }
                    _ => {
                        let align = op.required_alignment();
                        if align > 1 && ea & u64::from(align - 1) != 0 {
                            self.stats.unaligned_traps += 1;
                            self.stats.cycles += self.cost.unaligned_trap;
                            return Some(Exit::Unaligned(UnalignedInfo {
                                pc,
                                addr: ea,
                                size: op.size(),
                                is_store: op.is_store(),
                                // The handler reads the faulting word from
                                // the exception context.
                                insn_word: self.mem.read_u32(pc),
                            }));
                        }
                        let access_addr = match op {
                            MemOp::LdqU | MemOp::StqU => ea & !7,
                            _ => ea,
                        };
                        self.data_cost(access_addr, op.is_store());
                        if op.is_store() {
                            self.stats.stores += 1;
                            let v = self.reg(ra);
                            self.mem.write_int(access_addr, op.size(), v);
                        } else {
                            self.stats.loads += 1;
                            let raw = self.mem.read_int(access_addr, op.size());
                            let v = match op {
                                MemOp::Ldl => raw as u32 as i32 as i64 as u64,
                                _ => raw,
                            };
                            self.set_reg(ra, v);
                        }
                    }
                }
                self.pc = pc.wrapping_add(4);
            }
            Insn::Br { op, ra, disp } => {
                let link = pc.wrapping_add(4);
                let taken = op.taken(self.reg(ra));
                if op.is_unconditional() {
                    self.set_reg(ra, link);
                }
                if taken {
                    self.stats.taken_branches += 1;
                    self.stats.cycles += self.cost.branch_taken_extra;
                    self.pc = bridge_alpha::builder::branch_target(pc, disp);
                } else {
                    self.pc = link;
                }
            }
            Insn::Jmp { ra, rb, .. } => {
                let link = pc.wrapping_add(4);
                let target = self.reg(rb) & !3;
                self.set_reg(ra, link);
                self.stats.taken_branches += 1;
                self.stats.cycles += self.cost.branch_taken_extra;
                self.pc = target;
            }
            Insn::Op { op, ra, rb, rc } => {
                let av = self.reg(ra);
                let bv = match rb {
                    Rb::Reg(r) => self.reg(r),
                    Rb::Lit(l) => u64::from(l),
                };
                if op.is_cmov() {
                    if op.cmov_taken(av) {
                        self.set_reg(rc, bv);
                    }
                } else {
                    self.set_reg(rc, op::eval(op, av, bv));
                }
                self.pc = pc.wrapping_add(4);
            }
            Insn::CallPal { func } => {
                self.pc = pc.wrapping_add(4);
                return match func {
                    PAL_HALT => Some(Exit::Halted),
                    PAL_EXIT_MONITOR => Some(Exit::Monitor),
                    PAL_REQUEST_MONITOR => Some(Exit::Request),
                    _ => Some(Exit::Fault(MachineFault::UnknownPal { pc, func })),
                };
            }
        }
        None
    }

    /// Runs until an exit, a trap, or `fuel` instructions have executed.
    pub fn run(&mut self, mut fuel: u64) -> Exit {
        loop {
            if fuel == 0 {
                return Exit::Fault(MachineFault::OutOfFuel);
            }
            fuel -= 1;
            if let Some(exit) = self.step() {
                return exit;
            }
        }
    }
}

impl Default for Machine {
    fn default() -> Machine {
        Machine::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bridge_alpha::builder::CodeBuilder;
    use bridge_alpha::insn::{BrOp, JumpKind, OpFn};

    const BASE: u64 = 0x8000_0000;

    fn run_fragment(build: impl FnOnce(&mut CodeBuilder)) -> (Machine, Exit) {
        let mut b = CodeBuilder::new(BASE);
        build(&mut b);
        let words = b.finish().expect("fragment builds");
        let mut m = Machine::without_caches(CostModel::flat());
        m.write_code(BASE, &words);
        m.set_pc(BASE);
        let exit = m.run(100_000);
        (m, exit)
    }

    #[test]
    fn arithmetic_loop() {
        // r1 = 10; r2 = 0; while (r1 != 0) { r2 += r1; r1 -= 1 } → r2 = 55
        let (m, exit) = run_fragment(|b| {
            b.load_imm32(Reg::R1, 10);
            b.load_imm32(Reg::R2, 0);
            let top = b.new_label();
            b.bind(top);
            b.op(OpFn::Addq, Reg::R2, Reg::R1, Reg::R2);
            b.op_lit(OpFn::Subq, Reg::R1, 1, Reg::R1);
            b.br_label(BrOp::Bne, Reg::R1, top);
            b.call_pal(PAL_HALT);
        });
        assert_eq!(exit, Exit::Halted);
        assert_eq!(m.reg(Reg::R2), 55);
    }

    #[test]
    fn aligned_memory_roundtrip() {
        let (m, exit) = run_fragment(|b| {
            b.load_imm32(Reg::R1, 0x1000);
            b.load_imm32(Reg::R2, -123);
            b.mem(MemOp::Stl, Reg::R2, 0, Reg::R1);
            b.mem(MemOp::Ldl, Reg::R3, 0, Reg::R1);
            b.mem(MemOp::Ldq, Reg::R4, 0x40, Reg::R1); // untouched → 0
            b.call_pal(PAL_HALT);
        });
        assert_eq!(exit, Exit::Halted);
        assert_eq!(m.reg(Reg::R3), (-123i64) as u64); // ldl sign-extends
        assert_eq!(m.reg(Reg::R4), 0);
    }

    #[test]
    fn misaligned_ldl_traps() {
        let (m, exit) = run_fragment(|b| {
            b.load_imm32(Reg::R1, 0x1002);
            b.mem(MemOp::Ldl, Reg::R2, 0, Reg::R1);
            b.call_pal(PAL_HALT);
        });
        let info = exit.unaligned().expect("should trap");
        assert_eq!(info.addr, 0x1002);
        assert_eq!(info.size, 4);
        assert!(!info.is_store);
        // PC still points at the faulting ldl.
        assert_eq!(m.pc(), info.pc);
        assert_eq!(m.stats().unaligned_traps, 1);
        assert!(m.stats().cycles >= m.cost().unaligned_trap);
    }

    #[test]
    fn misaligned_store_traps_with_store_flag() {
        let (_, exit) = run_fragment(|b| {
            b.load_imm32(Reg::R1, 0x1001);
            b.mem(MemOp::Stw, Reg::R2, 0, Reg::R1);
            b.call_pal(PAL_HALT);
        });
        let info = exit.unaligned().expect("should trap");
        assert!(info.is_store);
        assert_eq!(info.size, 2);
    }

    #[test]
    fn ldq_u_never_traps() {
        let (m, exit) = run_fragment(|b| {
            b.load_imm32(Reg::R1, 0x1007);
            b.mem(MemOp::LdqU, Reg::R2, 0, Reg::R1);
            b.call_pal(PAL_HALT);
        });
        assert_eq!(exit, Exit::Halted);
        assert_eq!(m.reg(Reg::R2), 0);
        assert_eq!(m.stats().unaligned_traps, 0);
    }

    #[test]
    fn mda_sequence_loads_unaligned_value() {
        use bridge_alpha::mda_seq::{emit_unaligned_load, AccessWidth, SeqTemps};
        let mut b = CodeBuilder::new(BASE);
        b.load_imm32(Reg::R2, 0x2001);
        emit_unaligned_load(
            &mut b,
            AccessWidth::W4,
            Reg::R1,
            Reg::R2,
            0,
            true,
            &SeqTemps::default(),
        );
        b.call_pal(PAL_HALT);
        let words = b.finish().unwrap();
        let mut m = Machine::without_caches(CostModel::flat());
        m.mem_mut().write_int(0x2001, 4, 0x8899_AABB);
        m.write_code(BASE, &words);
        m.set_pc(BASE);
        assert_eq!(m.run(1000), Exit::Halted);
        assert_eq!(m.reg(Reg::R1), 0x8899_AABBu32 as i32 as i64 as u64);
        assert_eq!(m.stats().unaligned_traps, 0);
    }

    #[test]
    fn monitor_exit_advances_pc() {
        let (m, exit) = run_fragment(|b| {
            b.load_imm32(Reg::R16, 0x40_0000);
            b.call_pal(PAL_EXIT_MONITOR);
        });
        assert_eq!(exit, Exit::Monitor);
        assert_eq!(m.reg(Reg::R16), 0x40_0000);
        // PC is after the call_pal: 2 insns for load_imm32? (one lda) + pal
        assert_eq!(m.pc() & 3, 0);
    }

    #[test]
    fn request_monitor_exit() {
        let (m, exit) = run_fragment(|b| {
            b.load_imm32(Reg::R16, 0x1234);
            b.call_pal(bridge_alpha::PAL_REQUEST_MONITOR);
        });
        assert_eq!(exit, Exit::Request);
        assert_eq!(m.reg(Reg::R16), 0x1234);
    }

    #[test]
    fn unknown_pal_faults() {
        let (_, exit) = run_fragment(|b| b.call_pal(0x3FF));
        assert!(matches!(
            exit,
            Exit::Fault(MachineFault::UnknownPal { func: 0x3FF, .. })
        ));
    }

    #[test]
    fn illegal_instruction_faults() {
        let mut m = Machine::without_caches(CostModel::flat());
        m.write_code(BASE, &[0x07u32 << 26]);
        m.set_pc(BASE);
        assert!(matches!(
            m.run(10),
            Exit::Fault(MachineFault::IllegalInstruction { pc: BASE, .. })
        ));
    }

    #[test]
    fn fuel_exhaustion() {
        let mut b = CodeBuilder::new(BASE);
        let top = b.new_label();
        b.bind(top);
        b.br_label(BrOp::Br, Reg::ZERO, top);
        let words = b.finish().unwrap();
        let mut m = Machine::without_caches(CostModel::flat());
        m.write_code(BASE, &words);
        m.set_pc(BASE);
        assert_eq!(m.run(100), Exit::Fault(MachineFault::OutOfFuel));
    }

    #[test]
    fn jump_and_link() {
        // Placed low so the absolute target fits load_imm32's i32 range.
        let base = 0x10_0000u64;
        let mut b = CodeBuilder::new(base);
        b.load_imm32(Reg::R5, (base + 4 * 4) as i32); // target: final halt
        b.jump(JumpKind::Jsr, Reg::R26, Reg::R5);
        b.call_pal(PAL_HALT); // skipped
        b.call_pal(PAL_HALT); // skipped
        b.call_pal(PAL_HALT); // jump target
        let words = b.finish().unwrap();
        assert_eq!(words.len(), 6, "ldah+lda, jsr, three halts");
        let mut m = Machine::without_caches(CostModel::flat());
        m.write_code(base, &words);
        m.set_pc(base);
        assert_eq!(m.run(100), Exit::Halted);
        // Link register holds the return address (after the jsr at +8).
        assert_eq!(m.reg(Reg::R26), base + 3 * 4);
        // Only the jump target executed: ldah+lda+jsr+halt.
        assert_eq!(m.stats().insns, 4);
    }

    #[test]
    fn cmov_conditional_write() {
        let (m, exit) = run_fragment(|b| {
            b.load_imm32(Reg::R1, 0); // condition: zero
            b.load_imm32(Reg::R2, 7);
            b.load_imm32(Reg::R3, 100);
            b.op(OpFn::Cmoveq, Reg::R1, Reg::R2, Reg::R3); // taken: r3 = 7
            b.op(OpFn::Cmovne, Reg::R1, Reg::R2, Reg::R4); // not taken
            b.call_pal(PAL_HALT);
        });
        assert_eq!(exit, Exit::Halted);
        assert_eq!(m.reg(Reg::R3), 7);
        assert_eq!(m.reg(Reg::R4), 0);
    }

    #[test]
    fn r31_is_hardwired_zero() {
        let (m, exit) = run_fragment(|b| {
            b.load_imm32(Reg::R1, 55);
            b.op(OpFn::Addq, Reg::R1, Reg::R1, Reg::R31); // write discarded
            b.op(OpFn::Addq, Reg::R31, Reg::R31, Reg::R2); // 0 + 0
            b.call_pal(PAL_HALT);
        });
        assert_eq!(exit, Exit::Halted);
        assert_eq!(m.reg(Reg::R31), 0);
        assert_eq!(m.reg(Reg::R2), 0);
    }

    #[test]
    fn patching_takes_effect_on_next_fetch() {
        // A loop that exits only after its body is patched from nop to
        // "subq r1, 1, r1" — emulates the exception handler's patch.
        let mut b = CodeBuilder::new(BASE);
        b.load_imm32(Reg::R1, 1);
        let top = b.new_label();
        b.bind(top);
        b.emit(bridge_alpha::Insn::NOP); // will be patched
        b.br_label(BrOp::Bne, Reg::R1, top);
        b.call_pal(PAL_HALT);
        let words = b.finish().unwrap();
        let mut m = Machine::without_caches(CostModel::flat());
        m.write_code(BASE, &words);
        m.set_pc(BASE);
        // Run a few instructions: the loop spins.
        for _ in 0..10 {
            assert!(m.step().is_none());
        }
        // Patch the nop (at BASE + 4, after the 1-insn load_imm32).
        let patched = bridge_alpha::encode::encode(&bridge_alpha::Insn::Op {
            op: OpFn::Subq,
            ra: Reg::R1,
            rb: bridge_alpha::Rb::Lit(1),
            rc: Reg::R1,
        });
        m.patch_code_word(BASE + 4, patched);
        assert_eq!(m.run(100), Exit::Halted);
        assert_eq!(m.reg(Reg::R1), 0);
    }

    #[test]
    fn cycle_accounting_flat_model() {
        let (m, _) = run_fragment(|b| {
            b.load_imm32(Reg::R1, 1);
            b.call_pal(PAL_HALT);
        });
        // flat model: 1 cycle per instruction, 2 instructions.
        assert_eq!(m.stats().cycles, 2);
        assert_eq!(m.stats().insns, 2);
    }

    #[test]
    fn cache_stats_populated_with_caches_enabled() {
        let mut b = CodeBuilder::new(BASE);
        b.load_imm32(Reg::R1, 0x1000);
        b.mem(MemOp::Ldl, Reg::R2, 0, Reg::R1);
        b.call_pal(PAL_HALT);
        let words = b.finish().unwrap();
        let mut m = Machine::new();
        m.write_code(BASE, &words);
        m.set_pc(BASE);
        assert_eq!(m.run(100), Exit::Halted);
        assert!(m.stats().icache_accesses >= 3);
        assert_eq!(m.stats().dcache_accesses, 1);
        assert!(m.stats().icache_misses >= 1); // cold caches
        assert!(m.stats().cycles > m.stats().insns); // miss penalties landed
    }
}
