//! Execution statistics counters.

use std::fmt;

/// Counters accumulated by the host machine (and added to by the DBT engine
/// for its runtime services).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Total cycles charged.
    pub cycles: u64,
    /// Host instructions executed.
    pub insns: u64,
    /// Host loads executed (including `ldq_u`).
    pub loads: u64,
    /// Host stores executed (including `stq_u`).
    pub stores: u64,
    /// Taken branches and jumps.
    pub taken_branches: u64,
    /// Misalignment traps raised.
    pub unaligned_traps: u64,
    /// I-cache accesses.
    pub icache_accesses: u64,
    /// I-cache misses.
    pub icache_misses: u64,
    /// D-cache accesses.
    pub dcache_accesses: u64,
    /// D-cache misses.
    pub dcache_misses: u64,
    /// L2 accesses (from either L1).
    pub l2_accesses: u64,
    /// L2 misses.
    pub l2_misses: u64,
}

impl Stats {
    /// Zeroed counters.
    pub fn new() -> Stats {
        Stats::default()
    }

    /// Adds another counter set into this one.
    pub fn merge(&mut self, other: &Stats) {
        self.cycles += other.cycles;
        self.insns += other.insns;
        self.loads += other.loads;
        self.stores += other.stores;
        self.taken_branches += other.taken_branches;
        self.unaligned_traps += other.unaligned_traps;
        self.icache_accesses += other.icache_accesses;
        self.icache_misses += other.icache_misses;
        self.dcache_accesses += other.dcache_accesses;
        self.dcache_misses += other.dcache_misses;
        self.l2_accesses += other.l2_accesses;
        self.l2_misses += other.l2_misses;
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cycles={} insns={} loads={} stores={} taken={} traps={}",
            self.cycles,
            self.insns,
            self.loads,
            self.stores,
            self.taken_branches,
            self.unaligned_traps
        )?;
        write!(
            f,
            "icache {}/{} miss, dcache {}/{} miss, l2 {}/{} miss",
            self.icache_misses,
            self.icache_accesses,
            self.dcache_misses,
            self.dcache_accesses,
            self.l2_misses,
            self.l2_accesses
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = Stats {
            cycles: 10,
            insns: 5,
            ..Stats::new()
        };
        let b = Stats {
            cycles: 7,
            insns: 2,
            unaligned_traps: 1,
            ..Stats::new()
        };
        a.merge(&b);
        assert_eq!(a.cycles, 17);
        assert_eq!(a.insns, 7);
        assert_eq!(a.unaligned_traps, 1);
    }

    #[test]
    fn display_nonempty() {
        assert!(!Stats::new().to_string().is_empty());
    }

    /// Canary: if a counter is added to `Stats` but not to `merge`, the
    /// size assertion forces this test to be revisited, and the distinct
    /// per-field values prove every existing field is actually summed
    /// (a copy-paste of the wrong field would double one value and drop
    /// another).
    #[test]
    fn merge_sums_every_field() {
        const FIELDS: usize = 12;
        assert_eq!(
            std::mem::size_of::<Stats>(),
            FIELDS * std::mem::size_of::<u64>(),
            "Stats gained or lost a field; update merge() and this test"
        );
        let distinct = |offset: u64| Stats {
            cycles: offset + 1,
            insns: offset + 2,
            loads: offset + 3,
            stores: offset + 4,
            taken_branches: offset + 5,
            unaligned_traps: offset + 6,
            icache_accesses: offset + 7,
            icache_misses: offset + 8,
            dcache_accesses: offset + 9,
            dcache_misses: offset + 10,
            l2_accesses: offset + 11,
            l2_misses: offset + 12,
        };
        let mut a = distinct(0);
        a.merge(&distinct(100));
        // Field i holds i + (100 + i): every field summed, none swapped.
        let expected = Stats {
            cycles: 102,
            insns: 104,
            loads: 106,
            stores: 108,
            taken_branches: 110,
            unaligned_traps: 112,
            icache_accesses: 114,
            icache_misses: 116,
            dcache_accesses: 118,
            dcache_misses: 120,
            l2_accesses: 122,
            l2_misses: 124,
        };
        assert_eq!(a, expected);
    }
}
