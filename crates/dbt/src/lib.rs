//! DigitalBridge-RS: a dynamic binary translator migrating x86 binaries to
//! Alpha, built to reproduce **"An Evaluation of Misaligned Data Access
//! Handling Mechanisms in Dynamic Binary Translation Systems"** (Li, Wu,
//! Hsu — CGO 2009).
//!
//! # Architecture (the paper's Figures 4 and 9)
//!
//! The engine is a classic two-phase DBT:
//!
//! 1. **Phase 1 — interpretation with light profiling.** Guest basic blocks
//!    are interpreted ([`interp`]); each block accrues heat, and every
//!    memory access is profiled for misalignment ([`profile`]).
//! 2. **Phase 2 — translation.** When a block's heat reaches the
//!    configurable threshold, the [`translator`] lowers it to Alpha code in
//!    the [`codecache`], where the host [`Machine`](bridge_sim::Machine)
//!    executes it for the rest of the run (with direct block chaining).
//!
//! A **misalignment exception handler** ([`exception`]) is registered with
//! the simulated OS: when translated code traps on a misaligned access, the
//! active [`config::MdaStrategy`] decides what happens —
//! software fixup (the profiling-based mechanisms), or patching the
//! offending instruction into a branch to an **MDA code sequence** stub (the
//! paper's proposed exception-handling mechanism), optionally with code
//! rearrangement, block retranslation, and multi-version code.
//!
//! # Strategies evaluated
//!
//! | Strategy | Initial translation of a memory op | On runtime MDA trap |
//! |---|---|---|
//! | `Direct` | always the MDA sequence | (cannot trap) |
//! | `StaticProfiling` | sequence iff site is in the training profile | OS software fixup, every time |
//! | `DynamicProfiling` | sequence iff site misaligned during phase 1 | OS software fixup, every time |
//! | `ExceptionHandling` | always a plain access | patch to a stub (or rearrange) |
//! | `Dpeh` | sequence iff site misaligned during phase 1 | patch; optional retranslation & multi-version |
//!
//! # Example
//!
//! ```
//! use bridge_dbt::{Dbt, DbtConfig, GuestProgram};
//! use bridge_dbt::config::MdaStrategy;
//! use bridge_x86::asm::Assembler;
//! use bridge_x86::insn::{AluOp, Ext, MemRef, Width};
//! use bridge_x86::cond::Cond;
//! use bridge_x86::reg::Reg32::*;
//!
//! // A loop summing a misaligned array.
//! let mut a = Assembler::new(0x40_0000);
//! a.mov_ri(Ebx, 0x10_0002); // misaligned base
//! a.mov_ri(Ecx, 100);
//! let top = a.here_label();
//! a.alu_rm(AluOp::Add, Eax, MemRef::base_disp(Ebx, 0));
//! a.alu_ri(AluOp::Sub, Ecx, 1);
//! a.jcc(Cond::Ne, top);
//! a.hlt();
//! let program = GuestProgram::new(0x40_0000, a.finish().unwrap());
//!
//! let cfg = DbtConfig::new(MdaStrategy::Dpeh);
//! let mut dbt = Dbt::new(cfg);
//! dbt.load(&program);
//! let report = dbt.run(1_000_000).expect("program halts");
//! assert_eq!(report.final_state.reg(Eax), 0); // array was zero-filled
//! assert!(report.blocks_translated >= 1);
//! ```

pub mod cfg;
pub mod codecache;
pub mod config;
pub mod dump;
pub mod engine;
pub mod exception;
pub mod image;
pub mod interp;
pub mod profile;
pub mod regmap;
pub mod report;
pub mod shared;
pub mod translator;

pub use config::{DbtConfig, MdaStrategy};
pub use engine::{Dbt, DbtError, GuestProgram};
pub use image::{ImageError, ImageKey, ImageStore, TranslationImage};
pub use profile::{Profile, SiteId, StaticProfile};
pub use report::RunReport;
pub use shared::{SharedCacheStats, SharedCodeCache};
