//! Static control-flow discovery over a guest image.
//!
//! FX!32 — the system whose profile-guided approach the paper's Static
//! Profiling mechanism models — was an *offline* translator: it walked the
//! binary and translated everything it could reach before execution. This
//! module provides that reachability walk; combined with
//! [`DbtConfig::pretranslate`](crate::config::DbtConfig::pretranslate) it
//! turns the engine's Static Profiling mode into a faithful
//! translate-ahead-of-time pipeline (the paper's Figure 3).

use bridge_sim::mem::Memory;
use bridge_x86::decode::decode;
use bridge_x86::insn::Insn;
use std::collections::{BTreeSet, VecDeque};

/// Result of a discovery walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Discovery {
    /// Basic-block entry addresses, sorted.
    pub block_entries: Vec<u32>,
    /// Addresses where decoding failed (walk stopped there).
    pub decode_failures: Vec<u32>,
}

/// Walks direct control flow from `entry`, returning every reachable
/// basic-block entry.
///
/// Successors followed: branch targets and fall-throughs of `jcc`, `jmp`
/// targets, `call` targets and their return points. `ret` and `hlt`
/// terminate paths (indirect control flow cannot be discovered statically —
/// exactly why FX!32 paired its static translator with a runtime).
pub fn discover_blocks(
    mem: &Memory,
    entry: u32,
    max_block_insns: usize,
    max_blocks: usize,
) -> Discovery {
    let mut seen: BTreeSet<u32> = BTreeSet::new();
    let mut failures = Vec::new();
    let mut work: VecDeque<u32> = VecDeque::new();
    work.push_back(entry);

    while let Some(block_entry) = work.pop_front() {
        if seen.len() >= max_blocks || !seen.insert(block_entry) {
            continue;
        }
        // Walk the block to its end.
        let mut pc = block_entry;
        let mut insns = 0usize;
        loop {
            let mut buf = [0u8; 16];
            mem.read_bytes(u64::from(pc), &mut buf);
            let d = match decode(&buf, pc) {
                Ok(d) => d,
                Err(_) => {
                    failures.push(pc);
                    break;
                }
            };
            let fall = pc.wrapping_add(d.len);
            insns += 1;
            match d.insn {
                Insn::Jcc { target, .. } => {
                    work.push_back(target);
                    work.push_back(fall);
                    break;
                }
                Insn::Jmp { target } => {
                    work.push_back(target);
                    break;
                }
                Insn::Call { target } => {
                    work.push_back(target);
                    work.push_back(fall); // the return point
                    break;
                }
                Insn::Ret | Insn::Hlt => break,
                _ => {
                    if insns >= max_block_insns {
                        work.push_back(fall); // translator cuts here too
                        break;
                    }
                    pc = fall;
                }
            }
        }
    }

    Discovery {
        block_entries: seen.into_iter().collect(),
        decode_failures: failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bridge_x86::asm::Assembler;
    use bridge_x86::cond::Cond;
    use bridge_x86::insn::AluOp;
    use bridge_x86::reg::Reg32::*;

    fn image(build: impl FnOnce(&mut Assembler)) -> Memory {
        let mut a = Assembler::new(0x40_0000);
        build(&mut a);
        let img = a.finish().unwrap();
        let mut mem = Memory::new();
        mem.write_bytes(0x40_0000, &img);
        mem
    }

    #[test]
    fn discovers_loop_and_exit_blocks() {
        let mem = image(|a| {
            a.mov_ri(Ecx, 10); // block 1
            let top = a.here_label(); // block 2
            a.alu_ri(AluOp::Sub, Ecx, 1);
            a.jcc(Cond::Ne, top);
            a.hlt(); // block 3
        });
        let d = discover_blocks(&mem, 0x40_0000, 64, 1000);
        assert_eq!(d.block_entries.len(), 3);
        assert!(d.decode_failures.is_empty());
        assert!(d.block_entries.contains(&0x40_0000));
        assert!(d.block_entries.contains(&0x40_0005)); // loop head
    }

    #[test]
    fn discovers_through_calls_and_returns() {
        let mem = image(|a| {
            let f = a.new_label();
            a.call(f); // block 1 → f and return point
            a.hlt(); // block 2 (return point)
            a.bind(f);
            a.ret(); // block 3 (function body)
        });
        let d = discover_blocks(&mem, 0x40_0000, 64, 1000);
        assert_eq!(d.block_entries.len(), 3);
    }

    #[test]
    fn records_decode_failures_without_spreading() {
        let mut mem = image(|a| {
            let bad = a.new_label();
            a.jmp(bad);
            a.bind(bad);
            a.nop(); // will be overwritten with garbage
            a.hlt();
        });
        mem.write_u8(0x40_0005, 0xCC);
        let d = discover_blocks(&mem, 0x40_0000, 64, 1000);
        assert_eq!(d.decode_failures, vec![0x40_0005]);
        assert!(d.block_entries.contains(&0x40_0000));
    }

    #[test]
    fn respects_block_budget() {
        // An unrolled chain of jmp → jmp → … capped by max_blocks.
        let mem = image(|a| {
            for _ in 0..50 {
                let l = a.new_label();
                a.jmp(l);
                a.bind(l);
            }
            a.hlt();
        });
        let d = discover_blocks(&mem, 0x40_0000, 64, 10);
        assert_eq!(d.block_entries.len(), 10);
    }

    #[test]
    fn long_straight_line_splits_at_max_insns() {
        let mem = image(|a| {
            for _ in 0..10 {
                a.nop();
            }
            a.hlt();
        });
        let d = discover_blocks(&mem, 0x40_0000, 4, 1000);
        // 11 instructions in chunks of 4 → entries at 0, 4, 8 (then the
        // final chunk reaches hlt).
        assert!(d.block_entries.len() >= 3, "{d:?}");
    }
}
