//! The code cache: translated-block storage, the block table, exception
//! stubs, block chaining and invalidation.
//!
//! Layout within the host address space (see [`crate::regmap`]):
//!
//! ```text
//! CODE_CACHE_ADDR ──┬───────────────────────┬──────────────────────┐
//!                   │ translated blocks ... │ exception stubs ...  │
//!                   └───────────────────────┴──────────────────────┘
//!                        code region             stub region
//! ```
//!
//! Stubs live in their own region at the tail — deliberately far from the
//! blocks that branch to them, reproducing the code-locality cost the paper
//! attributes to the exception-handling method (§IV-A) and that code
//! rearrangement wins back.

use crate::profile::SiteId;
use crate::translator::TranslatedBlock;
use std::collections::HashMap;

/// A chainable exit of an installed block.
#[derive(Debug, Clone, Copy)]
pub struct ExitSlot {
    /// Host address of the patch point (first word of the exit stub).
    pub host_addr: u64,
    /// Guest target the exit transfers to.
    pub target: u32,
    /// The word originally at `host_addr`, restored when unchaining.
    pub original_word: u32,
    /// Whether the slot is currently chained to a block.
    pub chained: bool,
}

/// An installed translated block.
#[derive(Debug, Clone)]
pub struct Block {
    /// Guest address of the block entry.
    pub guest_pc: u32,
    /// Host address of the block's first word.
    pub host_addr: u64,
    /// Length in words.
    pub words_len: u32,
    /// Guest instructions covered.
    pub guest_insn_count: u32,
    /// Guest PCs of the covered instructions.
    pub guest_pcs: Vec<u32>,
    /// `(guest pc, word index)` of each instruction's first word.
    pub insn_starts: Vec<(u32, u32)>,
    /// Map from trappable host instruction address to its site.
    pub site_at_host: HashMap<u64, SiteId>,
    /// Chainable exits.
    pub exit_slots: Vec<ExitSlot>,
    /// Host addresses of IBTC-miss `call_pal exit_monitor` words (empty
    /// unless translated with in-code-cache dispatch).
    pub indirect_exits: Vec<u64>,
    /// Misalignment traps taken inside this block since (re)translation.
    pub trap_count: u32,
    /// How many times the block has been retranslated.
    pub retrans_count: u32,
}

impl Block {
    /// Builds the installed-block record for a translation product whose
    /// words were written at `host_addr`. `exit_original_words` are the
    /// original first words of each exit stub (restored when unchaining).
    /// Shared between the private install path and shared-cache installs,
    /// which reuse another engine's product at the same address.
    pub fn from_tb(tb: &TranslatedBlock, host_addr: u64, exit_original_words: Vec<u32>) -> Block {
        assert_eq!(tb.exits.len(), exit_original_words.len());
        let exit_slots = tb
            .exits
            .iter()
            .zip(exit_original_words)
            .map(|(e, w)| ExitSlot {
                host_addr: e.host_addr,
                target: e.target,
                original_word: w,
                chained: false,
            })
            .collect();
        Block {
            guest_pc: tb.guest_pc,
            host_addr,
            words_len: tb.words.len() as u32,
            guest_insn_count: tb.guest_insn_count,
            guest_pcs: tb.guest_pcs.clone(),
            insn_starts: tb.insn_starts.clone(),
            site_at_host: tb.trap_sites.iter().copied().collect(),
            exit_slots,
            indirect_exits: tb.indirect_exits.clone(),
            trap_count: 0,
            retrans_count: 0,
        }
    }
}

/// Why an allocation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheFull {
    /// The block region is exhausted.
    Code,
    /// The stub region is exhausted.
    Stubs,
}

impl std::fmt::Display for CacheFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheFull::Code => write!(f, "code region full"),
            CacheFull::Stubs => write!(f, "stub region full"),
        }
    }
}

impl std::error::Error for CacheFull {}

/// The code cache and block table.
#[derive(Debug)]
pub struct CodeCache {
    code_base: u64,
    code_limit: u64,
    code_next: u64,
    stub_base: u64,
    stub_limit: u64,
    stub_next: u64,
    blocks: HashMap<u32, Block>,
    /// guest target → chain slots waiting for that target to be translated.
    pending_chains: HashMap<u32, Vec<(u32, usize)>>, // (source block pc, slot index)
    /// Number of whole-cache flushes performed.
    pub flush_count: u64,
}

impl CodeCache {
    /// Creates a cache at `base` with the given region sizes.
    pub fn new(base: u64, code_bytes: u64, stub_bytes: u64) -> CodeCache {
        CodeCache {
            code_base: base,
            code_limit: base + code_bytes,
            code_next: base,
            stub_base: base + code_bytes,
            stub_limit: base + code_bytes + stub_bytes,
            stub_next: base + code_bytes,
            blocks: HashMap::new(),
            pending_chains: HashMap::new(),
            flush_count: 0,
        }
    }

    /// Number of installed blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Bytes of code currently allocated.
    pub fn code_bytes_used(&self) -> u64 {
        self.code_next - self.code_base
    }

    /// Bytes of stubs currently allocated.
    pub fn stub_bytes_used(&self) -> u64 {
        self.stub_next - self.stub_base
    }

    /// The address the next [`CodeCache::alloc_block`] will return (blocks
    /// are translated against this base before allocation).
    pub fn next_code_addr(&self) -> u64 {
        self.code_next
    }

    /// Looks up the installed block for a guest PC.
    pub fn block(&self, guest_pc: u32) -> Option<&Block> {
        self.blocks.get(&guest_pc)
    }

    /// Mutable lookup.
    pub fn block_mut(&mut self, guest_pc: u32) -> Option<&mut Block> {
        self.blocks.get_mut(&guest_pc)
    }

    /// Finds the block containing a host address (used to attribute traps).
    pub fn block_at_host(&self, host_addr: u64) -> Option<&Block> {
        self.blocks.values().find(|b| {
            host_addr >= b.host_addr && host_addr < b.host_addr + 4 * u64::from(b.words_len)
        })
    }

    /// Reserves space for a block of `words` length.
    ///
    /// # Errors
    ///
    /// [`CacheFull::Code`] when the region is exhausted; the engine then
    /// flushes the whole cache (the Dynamo policy the paper contrasts its
    /// block-granularity invalidation with).
    pub fn alloc_block(&mut self, words: usize) -> Result<u64, CacheFull> {
        let bytes = 4 * words as u64;
        if self.code_next + bytes > self.code_limit {
            return Err(CacheFull::Code);
        }
        let addr = self.code_next;
        self.code_next += bytes;
        Ok(addr)
    }

    /// Reserves space for an exception stub of `words` length.
    ///
    /// # Errors
    ///
    /// [`CacheFull::Stubs`] when the stub region is exhausted.
    pub fn alloc_stub(&mut self, words: usize) -> Result<u64, CacheFull> {
        let bytes = 4 * words as u64;
        if self.stub_next + bytes > self.stub_limit {
            return Err(CacheFull::Stubs);
        }
        let addr = self.stub_next;
        self.stub_next += bytes;
        Ok(addr)
    }

    /// Installs a translated block whose words were written at `host_addr`
    /// (previously obtained from [`CodeCache::alloc_block`]). `exit_words`
    /// are the original first words of each exit stub (for unchaining).
    pub fn install(&mut self, tb: &TranslatedBlock, host_addr: u64, exit_original_words: Vec<u32>) {
        self.blocks.insert(
            tb.guest_pc,
            Block::from_tb(tb, host_addr, exit_original_words),
        );
    }

    /// Registers an exit slot as waiting for `target` to be translated.
    pub fn add_pending_chain(&mut self, source_pc: u32, slot_index: usize, target: u32) {
        self.pending_chains
            .entry(target)
            .or_default()
            .push((source_pc, slot_index));
    }

    /// Takes the pending chain slots for a newly translated target.
    pub fn take_pending_chains(&mut self, target: u32) -> Vec<(u32, usize)> {
        self.pending_chains.remove(&target).unwrap_or_default()
    }

    /// Removes a block from the table, returning it (the engine restores
    /// the incoming chain patches and re-registers them as pending).
    pub fn remove_block(&mut self, guest_pc: u32) -> Option<Block> {
        // Drop this block's own pending registrations.
        for slots in self.pending_chains.values_mut() {
            slots.retain(|(src, _)| *src != guest_pc);
        }
        self.pending_chains.retain(|_, v| !v.is_empty());
        self.blocks.remove(&guest_pc)
    }

    /// Incoming chained exit slots pointing at `target`, as
    /// `(source block pc, slot index)` pairs.
    pub fn chained_into(&self, target: u32) -> Vec<(u32, usize)> {
        let mut out = Vec::new();
        for b in self.blocks.values() {
            for (i, s) in b.exit_slots.iter().enumerate() {
                if s.chained && s.target == target {
                    out.push((b.guest_pc, i));
                }
            }
        }
        out
    }

    /// Empties the cache entirely (Dynamo-style flush on exhaustion).
    pub fn flush(&mut self) {
        self.blocks.clear();
        self.pending_chains.clear();
        self.code_next = self.code_base;
        self.stub_next = self.stub_base;
        self.flush_count += 1;
    }

    /// Iterates over installed blocks.
    pub fn iter_blocks(&self) -> impl Iterator<Item = &Block> {
        self.blocks.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translator::ExitStub;

    fn dummy_tb(guest_pc: u32, words: usize, exits: Vec<ExitStub>) -> TranslatedBlock {
        TranslatedBlock {
            guest_pc,
            guest_end: guest_pc + 10,
            guest_insn_count: 3,
            words: vec![0; words],
            trap_sites: vec![(0x1_0000_0010, SiteId::new(guest_pc + 2, 0))],
            exits,
            indirect_exits: vec![],
            guest_pcs: vec![guest_pc, guest_pc + 2, guest_pc + 7],
            insn_starts: vec![(guest_pc, 0), (guest_pc + 2, 2), (guest_pc + 7, 5)],
        }
    }

    #[test]
    fn alloc_and_install() {
        let mut cc = CodeCache::new(0x1_0000_0000, 4096, 1024);
        let tb = dummy_tb(0x400000, 8, vec![]);
        let addr = cc.alloc_block(tb.words.len()).unwrap();
        assert_eq!(addr, 0x1_0000_0000);
        cc.install(&tb, addr, vec![]);
        assert_eq!(cc.block_count(), 1);
        let b = cc.block(0x400000).unwrap();
        assert_eq!(b.host_addr, addr);
        assert_eq!(cc.code_bytes_used(), 32);
        // Site lookup by host address.
        assert_eq!(
            b.site_at_host.get(&0x1_0000_0010),
            Some(&SiteId::new(0x400002, 0))
        );
    }

    #[test]
    fn code_region_exhaustion() {
        let mut cc = CodeCache::new(0x1_0000_0000, 64, 64);
        assert!(cc.alloc_block(16).is_ok());
        assert_eq!(cc.alloc_block(1), Err(CacheFull::Code));
        assert!(cc.alloc_stub(16).is_ok());
        assert_eq!(cc.alloc_stub(1), Err(CacheFull::Stubs));
    }

    #[test]
    fn stubs_are_far_from_code() {
        let mut cc = CodeCache::new(0x1_0000_0000, 1 << 20, 1 << 20);
        let block = cc.alloc_block(16).unwrap();
        let stub = cc.alloc_stub(16).unwrap();
        assert!(stub - block >= (1 << 20) - 64);
    }

    #[test]
    fn pending_chains_roundtrip() {
        let mut cc = CodeCache::new(0x1_0000_0000, 4096, 1024);
        cc.add_pending_chain(0x400000, 0, 0x400100);
        cc.add_pending_chain(0x400050, 1, 0x400100);
        let slots = cc.take_pending_chains(0x400100);
        assert_eq!(slots.len(), 2);
        assert!(cc.take_pending_chains(0x400100).is_empty());
    }

    #[test]
    fn remove_block_drops_its_pending_registrations() {
        let mut cc = CodeCache::new(0x1_0000_0000, 4096, 1024);
        let tb = dummy_tb(0x400000, 4, vec![]);
        let addr = cc.alloc_block(4).unwrap();
        cc.install(&tb, addr, vec![]);
        cc.add_pending_chain(0x400000, 0, 0x400100);
        let removed = cc.remove_block(0x400000).unwrap();
        assert_eq!(removed.guest_pc, 0x400000);
        assert!(cc.take_pending_chains(0x400100).is_empty());
    }

    #[test]
    fn chained_into_finds_sources() {
        let mut cc = CodeCache::new(0x1_0000_0000, 4096, 1024);
        let exits = vec![ExitStub {
            host_addr: 0x1_0000_0020,
            target: 0x400100,
        }];
        let tb = dummy_tb(0x400000, 16, exits);
        let addr = cc.alloc_block(16).unwrap();
        cc.install(&tb, addr, vec![0xDEAD_BEEF]);
        assert!(cc.chained_into(0x400100).is_empty());
        cc.block_mut(0x400000).unwrap().exit_slots[0].chained = true;
        assert_eq!(cc.chained_into(0x400100), vec![(0x400000, 0)]);
    }

    #[test]
    fn flush_resets_everything() {
        let mut cc = CodeCache::new(0x1_0000_0000, 4096, 1024);
        let tb = dummy_tb(0x400000, 8, vec![]);
        let addr = cc.alloc_block(8).unwrap();
        cc.install(&tb, addr, vec![]);
        cc.alloc_stub(4).unwrap();
        cc.flush();
        assert_eq!(cc.block_count(), 0);
        assert_eq!(cc.code_bytes_used(), 0);
        assert_eq!(cc.stub_bytes_used(), 0);
        assert_eq!(cc.flush_count, 1);
    }

    #[test]
    fn block_at_host_attribution() {
        let mut cc = CodeCache::new(0x1_0000_0000, 4096, 1024);
        let tb = dummy_tb(0x400000, 8, vec![]);
        let addr = cc.alloc_block(8).unwrap();
        cc.install(&tb, addr, vec![]);
        assert!(cc.block_at_host(addr).is_some());
        assert!(cc.block_at_host(addr + 28).is_some());
        assert!(cc.block_at_host(addr + 32).is_none());
    }
}
