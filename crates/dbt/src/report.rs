//! Run reports: everything the experiments need to print the paper's
//! tables and figures.

use crate::profile::Profile;
use bridge_sim::stats::Stats;
use bridge_x86::state::CpuState;
use std::fmt;

/// The result of a completed DBT run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Guest-visible final state (flags are not synchronized from
    /// translated code; compare registers and memory).
    pub final_state: CpuState,
    /// Host machine statistics, including total cycles and trap counts.
    pub stats: Stats,
    /// Guest instructions executed by the phase-1 interpreter.
    pub guest_insns_interpreted: u64,
    /// Estimated guest instructions executed as translated code (block
    /// entries × block length; chained executions are counted via host
    /// block entries where observable).
    pub blocks_translated: u64,
    /// Block retranslations performed (§IV-C).
    pub retranslations: u64,
    /// Sites patched by the exception handler (§IV).
    pub patched_sites: u64,
    /// Blocks rearranged inline by the handler (§IV-A).
    pub rearrangements: u64,
    /// Figure 8 adaptive reversions (sites converted back to plain
    /// accesses after a long aligned streak).
    pub reversions: u64,
    /// Misaligned accesses fixed up in software by the OS-style handler
    /// (per occurrence — the profiling-based mechanisms' failure mode).
    pub os_fixups: u64,
    /// Exit slots chained into direct branches.
    pub chains: u64,
    /// Monitor round-trips out of translated code (`Exit::Monitor`). This
    /// is the count in-code-cache dispatch exists to shrink.
    pub monitor_exits: u64,
    /// Dynamic transfers resolved by the inline IBTC probe without leaving
    /// the code cache.
    pub ibtc_hits: u64,
    /// Dynamic-target exits that missed the IBTC and paid the monitor.
    pub ibtc_misses: u64,
    /// Returns resolved by the shadow return stack (an IBTC probe was not
    /// even needed).
    pub ras_hits: u64,
    /// Guest instructions retired by translated code — exact when the run
    /// used [`DbtConfig::count_retired`], zero otherwise.
    ///
    /// [`DbtConfig::count_retired`]: crate::config::DbtConfig::count_retired
    pub guest_insns_retired: u64,
    /// Whole-cache flushes forced by exhaustion.
    pub cache_flushes: u64,
    /// Blocks permanently left to the interpreter (translator fallback).
    pub interp_only_blocks: u64,
    /// Monitor dispatches resolved by the next-TB hint without a
    /// block-table lookup. Deterministic (a pure host-side memo), so it
    /// is safe in the report the determinism tests compare.
    pub hint_hits: u64,
    /// Monitor dispatches to a translated block that needed the
    /// block-table lookup (the hint missed). `hint_hits + hint_misses`
    /// is the total TB-lookup demand the hint is measured against;
    /// dispatches to untranslated blocks count in neither.
    pub hint_misses: u64,
    /// The accumulated profile (Table I columns, Figure 15 ratios).
    pub profile: Profile,
}

impl RunReport {
    /// Total cycles of the run (the paper's execution-time metric).
    pub fn cycles(&self) -> u64 {
        self.stats.cycles
    }

    /// Total misalignment traps delivered (Table III's undetected MDAs
    /// under dynamic profiling are exactly these).
    pub fn traps(&self) -> u64 {
        self.stats.unaligned_traps
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "cycles            {:>16}", self.cycles())?;
        writeln!(f, "traps             {:>16}", self.traps())?;
        writeln!(f, "os fixups         {:>16}", self.os_fixups)?;
        writeln!(f, "patched sites     {:>16}", self.patched_sites)?;
        writeln!(f, "rearrangements    {:>16}", self.rearrangements)?;
        writeln!(f, "reversions        {:>16}", self.reversions)?;
        writeln!(f, "retranslations    {:>16}", self.retranslations)?;
        writeln!(f, "blocks translated {:>16}", self.blocks_translated)?;
        writeln!(f, "chains            {:>16}", self.chains)?;
        writeln!(f, "monitor exits     {:>16}", self.monitor_exits)?;
        writeln!(f, "ibtc hits         {:>16}", self.ibtc_hits)?;
        writeln!(f, "ibtc misses       {:>16}", self.ibtc_misses)?;
        writeln!(f, "ras hits          {:>16}", self.ras_hits)?;
        writeln!(f, "cache flushes     {:>16}", self.cache_flushes)?;
        writeln!(f, "interp-only       {:>16}", self.interp_only_blocks)?;
        writeln!(f, "hint hits         {:>16}", self.hint_hits)?;
        writeln!(f, "hint misses       {:>16}", self.hint_misses)?;
        writeln!(f, "interp insns      {:>16}", self.guest_insns_interpreted)?;
        writeln!(f, "retired insns     {:>16}", self.guest_insns_retired)?;
        writeln!(f, "guest mdas seen   {:>16}", self.profile.mdas)?;
        write!(f, "host: {}", self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_key_counters() {
        let r = RunReport {
            final_state: CpuState::new(0),
            stats: Stats {
                cycles: 123,
                unaligned_traps: 4,
                ..Stats::new()
            },
            guest_insns_interpreted: 10,
            blocks_translated: 2,
            retranslations: 1,
            patched_sites: 3,
            rearrangements: 0,
            reversions: 0,
            os_fixups: 7,
            chains: 5,
            monitor_exits: 42,
            ibtc_hits: 9,
            ibtc_misses: 2,
            ras_hits: 6,
            guest_insns_retired: 11,
            cache_flushes: 8,
            interp_only_blocks: 0,
            hint_hits: 13,
            hint_misses: 4,
            profile: Profile::new(),
        };
        let s = r.to_string();
        assert!(s.contains("123"));
        assert!(s.contains("traps"));
        // Every dispatch counter the BENCH dispatch section reads must be
        // visible in the human-readable report too.
        assert!(s.contains("monitor exits"));
        assert!(s.contains("ibtc hits"));
        assert!(s.contains("ibtc misses"));
        assert!(s.contains("ras hits"));
        assert!(s.contains("chains"));
        assert!(s.contains("retired insns"));
        assert!(s.contains("cache flushes"));
        assert!(s.contains("hint hits"));
        assert!(s.contains("hint misses"));
        // And their values actually flow through to the text.
        for val in ["42", "9", "2", "6", "5", "11", "8", "13"] {
            assert!(s.contains(val), "missing counter value {val} in:\n{s}");
        }
        assert_eq!(r.cycles(), 123);
        assert_eq!(r.traps(), 4);
    }
}
