//! The shared translation cache: the `SharedState` half of the
//! SharedState/PerCpuState split (tcg-rs model).
//!
//! # Model
//!
//! Each [`Dbt`](crate::Dbt) owns a simulated machine whose memory holds
//! both guest code and translated host code, so executors cannot share
//! mapped code pages the way a native DBT would. What they *can* share is
//! the translation **product**: the emitted words, the site/exit metadata,
//! and — crucially — the host address the block was emitted for. The
//! [`SharedCodeCache`] centralizes address allocation and keeps one entry
//! per `(guest PC, site-plan vector, dispatch options)` translation
//! variant; every executor that validates against an entry installs the
//! same pristine words at the same address in its own memory. Translation
//! work is paid once per variant fleet-wide; the *simulated* translation
//! charge is still paid by every engine, so shared-cache runs are
//! byte-identical to private-cache runs (the determinism tests pin this).
//!
//! Executors running the same deterministic workload request blocks in
//! the same order with the same sizes, so the central bump allocator
//! reproduces exactly the layout each private engine would have chosen —
//! which keeps the simulated I-cache behaviour, and therefore cycles,
//! identical between modes.
//!
//! # Concurrency
//!
//! The hot dispatch path takes no lock at all: it is one `Acquire` load
//! of the generation counter (see [`SharedCodeCache::generation`]).
//! Lookups and inserts take the short state mutex; actual translation
//! happens under a separate translation mutex (one translation in flight
//! fleet-wide, the classic QEMU `tb_lock` discipline) with a
//! double-checked lookup so racing executors never translate the same
//! variant twice.
//!
//! # Coherence
//!
//! Cross-engine `write_guest_code` publishes the patch to an append-only
//! log and invalidates overlapping entries; every invalidation or
//! eviction bumps the generation counter. Executors compare the
//! generation once per dispatch and, on mismatch, apply pending guest
//! patches to their own memory and drop local installs whose shared entry
//! is no longer valid — no stale block executes past its next dispatch.

use crate::profile::SiteId;
use crate::regmap::CODE_CACHE_ADDR;
use crate::translator::{DispatchOpts, PlanFn, SiteAccess, SitePlan, TranslatedBlock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// The per-site decisions a translation was produced under, in plan-query
/// order. An entry is valid for an executor only if re-evaluating the
/// executor's own plan function over these sites yields the same
/// decisions — strategy state (forced sites, profiles) is re-validated,
/// never assumed.
pub type PlanVector = Vec<(SiteId, SiteAccess, SitePlan)>;

/// One shared translation product: pristine words plus metadata at a
/// centrally allocated host address.
#[derive(Debug)]
pub struct SharedBlock {
    /// The translation product (words are emitted for `host_addr`).
    pub tb: TranslatedBlock,
    /// The fleet-wide host address of the block.
    pub host_addr: u64,
    /// Which local (re)translation of this guest PC the entry serves: an
    /// engine's first translation of a PC is variant 0, the translation
    /// after its first invalidation is variant 1, and so on. Keying on
    /// the variant makes a retranslation allocate fresh space even when
    /// its site plans come out identical to an older translation's — a
    /// private engine would have bumped its allocator, so a shared hit at
    /// the old address would change code layout (and with it the
    /// simulated I-cache behaviour). Deterministic replicas reach the
    /// same variant numbers in the same order, so sharing across the
    /// fleet is unaffected.
    pub variant: u32,
    /// The decisions the block was translated under.
    pub plans: PlanVector,
    /// The dispatch features the block was emitted with.
    pub opts: DispatchOpts,
    /// Whether the entry was restored from a persistent AOT image
    /// ([`SharedCodeCache::restore`]) rather than translated this process
    /// — engines attribute installs served by such entries to the image.
    pub preloaded: bool,
    /// Cleared on eviction or invalidation; installers must re-check.
    valid: AtomicBool,
    /// LRU stamp: the global use tick at last lookup/install.
    last_use: AtomicU64,
}

impl SharedBlock {
    /// Whether the entry is still current (not evicted or invalidated).
    pub fn is_valid(&self) -> bool {
        self.valid.load(Ordering::Acquire)
    }

    fn bytes(&self) -> u64 {
        4 * self.tb.words.len() as u64
    }
}

/// One published guest-code patch, applied by every executor at its next
/// generation sync.
#[derive(Debug, Clone)]
pub struct GuestPatch {
    /// Guest address the patch starts at.
    pub addr: u32,
    /// The new bytes.
    pub bytes: Vec<u8>,
}

/// Monotonic operational counters (host-side; never charged to simulated
/// cycles). Snapshot via [`SharedCodeCache::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SharedCacheStats {
    /// Lookups that validated an existing entry.
    pub hits: u64,
    /// Lookups that found no valid matching entry.
    pub misses: u64,
    /// Entries inserted (actual translations performed fleet-wide).
    pub insertions: u64,
    /// Entries evicted under capacity pressure.
    pub evictions: u64,
    /// Entries invalidated by published guest-code writes.
    pub invalidations: u64,
    /// Bytes currently held by valid entries.
    pub bytes_used: u64,
    /// Capacity in bytes.
    pub capacity_bytes: u64,
}

#[derive(Debug)]
struct SharedState {
    /// Variants per guest PC (usually one; strategies that force sites
    /// mid-run add more).
    entries: HashMap<u32, Vec<Arc<SharedBlock>>>,
    /// Bump pointer for fresh allocations (replicates private layout
    /// while capacity lasts).
    next: u64,
    /// Coalesced free ranges `(addr, bytes)` reclaimed by eviction,
    /// sorted by address.
    free: Vec<(u64, u64)>,
    /// Published guest-code patches, append-only; executors track how
    /// many they have applied.
    patch_log: Vec<GuestPatch>,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
    invalidations: u64,
    bytes_used: u64,
}

/// The result of a shared allocation: the address, plus the guest PCs of
/// any entries evicted to make room (the caller traces them).
#[derive(Debug)]
pub struct SharedAlloc {
    /// Allocated host address.
    pub addr: u64,
    /// Guest PCs evicted by this allocation, in eviction (LRU) order.
    pub evicted: Vec<u32>,
}

/// The shared, read-mostly translation cache (see the module docs).
pub struct SharedCodeCache {
    base: u64,
    limit: u64,
    /// Bumped (`Release`) on every eviction, invalidation and published
    /// guest patch; executors compare with one `Acquire` load per
    /// dispatch.
    generation: AtomicU64,
    /// Global LRU tick source.
    use_tick: AtomicU64,
    state: Mutex<SharedState>,
    /// Held across translate-and-insert so one translation is in flight
    /// fleet-wide (QEMU's `tb_lock` discipline).
    translate_mutex: Mutex<()>,
}

impl std::fmt::Debug for SharedCodeCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("SharedCodeCache")
            .field("base", &self.base)
            .field("capacity", &(self.limit - self.base))
            .field("generation", &self.generation())
            .field("stats", &s)
            .finish()
    }
}

impl SharedCodeCache {
    /// A shared cache over the standard code-cache region, holding at
    /// most `code_bytes` of translated words. Engines attaching to it
    /// must reserve at least `code_bytes` in their own code region
    /// (allocated addresses are handed to every executor verbatim).
    pub fn new(code_bytes: u64) -> Arc<SharedCodeCache> {
        Arc::new(SharedCodeCache {
            base: CODE_CACHE_ADDR,
            limit: CODE_CACHE_ADDR + code_bytes,
            generation: AtomicU64::new(0),
            use_tick: AtomicU64::new(0),
            state: Mutex::new(SharedState {
                entries: HashMap::new(),
                next: CODE_CACHE_ADDR,
                free: Vec::new(),
                patch_log: Vec::new(),
                hits: 0,
                misses: 0,
                insertions: 0,
                evictions: 0,
                invalidations: 0,
                bytes_used: 0,
            }),
            translate_mutex: Mutex::new(()),
        })
    }

    /// Capacity of the shared code region in bytes. Engines attaching to
    /// this cache must configure at least this much local code space, or
    /// shared allocations could land in their stub regions.
    pub fn capacity(&self) -> u64 {
        self.limit - self.base
    }

    /// The current coherence generation. One `Acquire` load — this is the
    /// whole lock-free dispatch fast path: while the value an executor
    /// cached is unchanged, nothing it installed can have gone stale.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    fn bump_generation(&self) {
        self.generation.fetch_add(1, Ordering::Release);
    }

    fn lock(&self) -> MutexGuard<'_, SharedState> {
        self.state.lock().expect("shared cache lock never poisoned")
    }

    /// Operational counters snapshot.
    pub fn stats(&self) -> SharedCacheStats {
        let s = self.lock();
        SharedCacheStats {
            hits: s.hits,
            misses: s.misses,
            insertions: s.insertions,
            evictions: s.evictions,
            invalidations: s.invalidations,
            bytes_used: s.bytes_used,
            capacity_bytes: self.limit - self.base,
        }
    }

    /// Serializes translation work fleet-wide. Callers take this, re-run
    /// [`SharedCodeCache::lookup`] (double-check), and only then
    /// translate.
    pub fn translate_lock(&self) -> MutexGuard<'_, ()> {
        self.translate_mutex
            .lock()
            .expect("translate lock never poisoned")
    }

    /// Finds a valid entry for `guest_pc` at the caller's translation
    /// variant whose dispatch options match and whose recorded plan
    /// vector re-validates against the caller's plan function. Stamps the
    /// entry's LRU tick on a hit.
    pub fn lookup(
        &self,
        guest_pc: u32,
        variant: u32,
        opts: DispatchOpts,
        plan: &mut PlanFn<'_>,
    ) -> Option<Arc<SharedBlock>> {
        let mut s = self.lock();
        let found = s.entries.get(&guest_pc).and_then(|variants| {
            variants
                .iter()
                .find(|e| {
                    e.is_valid()
                        && e.variant == variant
                        && e.opts == opts
                        && e.plans
                            .iter()
                            .all(|&(site, acc, decided)| plan(site, acc) == decided)
                })
                .cloned()
        });
        match &found {
            Some(e) => {
                s.hits += 1;
                e.last_use.store(
                    self.use_tick.fetch_add(1, Ordering::Relaxed),
                    Ordering::Relaxed,
                );
            }
            None => s.misses += 1,
        }
        found
    }

    /// The address the next allocation will most likely land at, for
    /// translating against before the block's size is known. If the final
    /// allocation differs (first-fit into an evicted hole), the caller
    /// retranslates at the final address — host-side work only.
    pub fn candidate_addr(&self) -> u64 {
        let s = self.lock();
        if s.next < self.limit {
            s.next
        } else {
            s.free.first().map_or(s.next, |&(addr, _)| addr)
        }
    }

    /// Allocates `words` of code space, evicting least-recently-used
    /// entries under capacity pressure (clearing their valid bit, freeing
    /// their ranges and bumping the generation once per eviction).
    ///
    /// Returns `None` when the block cannot fit even with every entry
    /// evicted.
    pub fn alloc(&self, words: usize) -> Option<SharedAlloc> {
        let bytes = 4 * words as u64;
        if bytes > self.limit - self.base {
            return None;
        }
        let mut s = self.lock();
        let mut evicted = Vec::new();
        loop {
            // Bump first: while capacity lasts, layout replicates what
            // every private engine would have chosen.
            if s.next + bytes <= self.limit {
                let addr = s.next;
                s.next += bytes;
                return Some(SharedAlloc { addr, evicted });
            }
            // First-fit over reclaimed holes.
            if let Some(i) = s.free.iter().position(|&(_, len)| len >= bytes) {
                let (addr, len) = s.free[i];
                if len == bytes {
                    s.free.remove(i);
                } else {
                    s.free[i] = (addr + bytes, len - bytes);
                }
                return Some(SharedAlloc { addr, evicted });
            }
            // Evict the LRU valid entry and retry.
            match self.evict_lru(&mut s) {
                Some(pc) => evicted.push(pc),
                None => return None,
            }
        }
    }

    /// Clears the valid bit of the least-recently-used entry, frees its
    /// range and bumps the generation. Returns its guest PC.
    fn evict_lru(&self, s: &mut SharedState) -> Option<u32> {
        let victim = s
            .entries
            .values()
            .flatten()
            .filter(|e| e.is_valid())
            .min_by_key(|e| (e.last_use.load(Ordering::Relaxed), e.host_addr))
            .cloned()?;
        victim.valid.store(false, Ordering::Release);
        s.bytes_used -= victim.bytes();
        s.evictions += 1;
        Self::free_range(&mut s.free, victim.host_addr, victim.bytes());
        self.bump_generation();
        Some(victim.tb.guest_pc)
    }

    /// Returns `(addr, bytes)` to the free list, coalescing neighbours.
    fn free_range(free: &mut Vec<(u64, u64)>, addr: u64, bytes: u64) {
        let i = free.partition_point(|&(a, _)| a < addr);
        free.insert(i, (addr, bytes));
        // Coalesce with the successor, then the predecessor.
        if i + 1 < free.len() && free[i].0 + free[i].1 == free[i + 1].0 {
            free[i].1 += free[i + 1].1;
            free.remove(i + 1);
        }
        if i > 0 && free[i - 1].0 + free[i - 1].1 == free[i].0 {
            free[i - 1].1 += free[i].1;
            free.remove(i);
        }
    }

    /// Publishes a translation product at its allocated address. The
    /// caller holds the translate lock and obtained `host_addr` from
    /// [`SharedCodeCache::alloc`]; `tb.words` were emitted for it.
    pub fn insert(
        &self,
        tb: TranslatedBlock,
        host_addr: u64,
        variant: u32,
        plans: PlanVector,
        opts: DispatchOpts,
    ) -> Arc<SharedBlock> {
        let entry = Arc::new(SharedBlock {
            host_addr,
            variant,
            plans,
            opts,
            preloaded: false,
            valid: AtomicBool::new(true),
            last_use: AtomicU64::new(self.use_tick.fetch_add(1, Ordering::Relaxed)),
            tb,
        });
        let mut s = self.lock();
        s.bytes_used += entry.bytes();
        s.insertions += 1;
        s.entries
            .entry(entry.tb.guest_pc)
            .or_default()
            .push(Arc::clone(&entry));
        entry
    }

    /// Every valid entry, sorted by host address — which, in a cache that
    /// never evicted or invalidated (the bump-only layout a clean
    /// deterministic run produces), is exactly insertion order. This is
    /// the capture order for persistent translation images
    /// ([`crate::image::TranslationImage`]).
    pub fn snapshot_entries(&self) -> Vec<Arc<SharedBlock>> {
        let s = self.lock();
        let mut entries: Vec<Arc<SharedBlock>> = s
            .entries
            .values()
            .flatten()
            .filter(|e| e.is_valid())
            .cloned()
            .collect();
        entries.sort_by_key(|e| e.host_addr);
        entries
    }

    /// Restores one captured translation product during warm start,
    /// marking it [`SharedBlock::preloaded`]. Entries must arrive in host
    /// address order starting at the cache base with no gaps — the layout
    /// a bump-only cold run produces and the only layout
    /// [`crate::image::TranslationImage::capture`] will serialize — so a
    /// restored cache is bit-for-bit the state a cold fleet would have
    /// reached after translating the same blocks.
    ///
    /// # Errors
    ///
    /// Rejects out-of-order or overlapping addresses and entries past the
    /// capacity limit; the cache is left exactly as it was before the
    /// failing call (earlier restored entries remain — callers discard
    /// the whole cache on error, never serve from a half-load).
    pub fn restore(
        &self,
        tb: TranslatedBlock,
        host_addr: u64,
        variant: u32,
        plans: PlanVector,
        opts: DispatchOpts,
    ) -> Result<Arc<SharedBlock>, &'static str> {
        let bytes = 4 * tb.words.len() as u64;
        let mut s = self.lock();
        if host_addr != s.next {
            return Err("image entry breaks the bump layout");
        }
        if host_addr + bytes > self.limit {
            return Err("image exceeds the cache capacity");
        }
        let entry = Arc::new(SharedBlock {
            host_addr,
            variant,
            plans,
            opts,
            preloaded: true,
            valid: AtomicBool::new(true),
            last_use: AtomicU64::new(self.use_tick.fetch_add(1, Ordering::Relaxed)),
            tb,
        });
        s.next = host_addr + bytes;
        s.bytes_used += entry.bytes();
        s.insertions += 1;
        s.entries
            .entry(entry.tb.guest_pc)
            .or_default()
            .push(Arc::clone(&entry));
        Ok(entry)
    }

    /// Publishes a guest-code rewrite fleet-wide: appends the patch to
    /// the log, invalidates every entry whose block may decode bytes from
    /// `[addr, addr+len)` (the 16-byte x86 decode window, matching
    /// [`Dbt::write_guest_code`](crate::Dbt::write_guest_code)), frees
    /// their ranges and bumps the generation. Every executor applies the
    /// patch to its own memory at its next dispatch. Returns the guest
    /// PCs invalidated.
    pub fn write_guest_code(&self, addr: u32, bytes: &[u8]) -> Vec<u32> {
        let start = addr;
        let end = addr.wrapping_add(bytes.len() as u32);
        let mut s = self.lock();
        s.patch_log.push(GuestPatch {
            addr,
            bytes: bytes.to_vec(),
        });
        let mut dropped = Vec::new();
        for variants in s.entries.values() {
            for e in variants {
                if e.is_valid()
                    && e.tb
                        .guest_pcs
                        .iter()
                        .any(|&p| p < end && p.wrapping_add(16) > start)
                {
                    e.valid.store(false, Ordering::Release);
                    dropped.push(Arc::clone(e));
                }
            }
        }
        for e in &dropped {
            s.bytes_used -= e.bytes();
            s.invalidations += 1;
            Self::free_range(&mut s.free, e.host_addr, e.bytes());
        }
        self.bump_generation();
        dropped.into_iter().map(|e| e.tb.guest_pc).collect()
    }

    /// The guest patches published after the first `seen` entries, with
    /// the new log length (the caller's next `seen`).
    pub fn patches_since(&self, seen: usize) -> (Vec<GuestPatch>, usize) {
        let s = self.lock();
        (
            s.patch_log[seen.min(s.patch_log.len())..].to_vec(),
            s.patch_log.len(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translator::ExitStub;

    fn tb(guest_pc: u32, words: usize) -> TranslatedBlock {
        TranslatedBlock {
            guest_pc,
            guest_end: guest_pc + 8,
            guest_insn_count: 2,
            words: vec![0x47FF_041F; words],
            trap_sites: vec![],
            exits: Vec::<ExitStub>::new(),
            indirect_exits: vec![],
            guest_pcs: vec![guest_pc, guest_pc + 4],
            insn_starts: vec![(guest_pc, 0), (guest_pc + 4, 1)],
        }
    }

    fn no_plans(_: SiteId, _: SiteAccess) -> SitePlan {
        SitePlan::Normal
    }

    #[test]
    fn bump_allocation_replicates_private_layout() {
        let sh = SharedCodeCache::new(4096);
        let a = sh.alloc(8).unwrap();
        let b = sh.alloc(16).unwrap();
        assert_eq!(a.addr, CODE_CACHE_ADDR);
        assert_eq!(b.addr, CODE_CACHE_ADDR + 32);
        assert!(a.evicted.is_empty() && b.evicted.is_empty());
    }

    #[test]
    fn lookup_validates_plans_and_opts() {
        let sh = SharedCodeCache::new(4096);
        let site = SiteId::new(0x400004, 0);
        let acc = SiteAccess {
            width: bridge_x86::insn::Width::W4,
            is_store: false,
        };
        let a = sh.alloc(4).unwrap();
        sh.insert(
            tb(0x400000, 4),
            a.addr,
            0,
            vec![(site, acc, SitePlan::Sequence)],
            DispatchOpts::default(),
        );
        // Matching plans hit.
        let mut seq = |_: SiteId, _: SiteAccess| SitePlan::Sequence;
        assert!(sh
            .lookup(0x400000, 0, DispatchOpts::default(), &mut seq)
            .is_some());
        // Diverged strategy state misses.
        let mut normal = no_plans;
        assert!(sh
            .lookup(0x400000, 0, DispatchOpts::default(), &mut normal)
            .is_none());
        // Different dispatch options miss.
        let opts = DispatchOpts {
            ibtc: true,
            ..DispatchOpts::default()
        };
        assert!(sh.lookup(0x400000, 0, opts, &mut seq).is_none());
        let st = sh.stats();
        assert_eq!((st.hits, st.misses), (1, 2));
    }

    #[test]
    fn lru_eviction_is_deterministic_and_coalesces() {
        // Capacity for exactly two 8-word blocks.
        let sh = SharedCodeCache::new(64);
        for pc in [0x40_0000u32, 0x40_0010] {
            let a = sh.alloc(8).unwrap();
            sh.insert(tb(pc, 8), a.addr, 0, vec![], DispatchOpts::default());
        }
        // Touch the first block so the second becomes LRU.
        let mut p = no_plans;
        assert!(sh
            .lookup(0x40_0000, 0, DispatchOpts::default(), &mut p)
            .is_some());
        let gen_before = sh.generation();
        let a = sh.alloc(8).unwrap();
        assert_eq!(a.evicted, vec![0x40_0010], "LRU entry evicted first");
        assert_eq!(a.addr, CODE_CACHE_ADDR + 32, "hole reused first-fit");
        assert_eq!(sh.generation(), gen_before + 1, "eviction bumps generation");
        sh.insert(tb(0x40_0020, 8), a.addr, 0, vec![], DispatchOpts::default());
        // Evicting both remaining entries coalesces into one big hole.
        let b = sh.alloc(16).unwrap();
        assert_eq!(b.evicted, vec![0x40_0000, 0x40_0020]);
        assert_eq!(b.addr, CODE_CACHE_ADDR);
        assert_eq!(sh.stats().evictions, 3);
    }

    #[test]
    fn oversized_block_is_rejected() {
        let sh = SharedCodeCache::new(64);
        assert!(sh.alloc(17).is_none());
        assert!(sh.alloc(16).is_some());
    }

    #[test]
    fn write_guest_code_invalidates_and_logs() {
        let sh = SharedCodeCache::new(4096);
        let a = sh.alloc(8).unwrap();
        let entry = sh.insert(tb(0x40_0000, 8), a.addr, 0, vec![], DispatchOpts::default());
        let b = sh.alloc(8).unwrap();
        sh.insert(tb(0x50_0000, 8), b.addr, 0, vec![], DispatchOpts::default());
        let gen = sh.generation();
        let dropped = sh.write_guest_code(0x40_0004, &[0x90]);
        assert_eq!(dropped, vec![0x40_0000], "overlapping entry invalidated");
        assert!(!entry.is_valid());
        assert!(sh.generation() > gen);
        let (patches, seen) = sh.patches_since(0);
        assert_eq!(patches.len(), 1);
        assert_eq!(patches[0].addr, 0x40_0004);
        assert_eq!(seen, 1);
        assert!(sh.patches_since(seen).0.is_empty());
        // The far entry survived; a fresh lookup still hits it.
        let mut p = no_plans;
        assert!(sh
            .lookup(0x50_0000, 0, DispatchOpts::default(), &mut p)
            .is_some());
        assert!(sh
            .lookup(0x40_0000, 0, DispatchOpts::default(), &mut p)
            .is_none());
    }
}
