//! The basic-block translator: lowers decoded x86 instructions to Alpha
//! code.
//!
//! # Design notes
//!
//! * **Register convention** — see [`crate::regmap`]. Guest GPR values are
//!   held sign-extended to 64 bits (the form `addl`/`ldl` produce).
//! * **Condition codes** are handled lazily, as real DBTs do: each
//!   flag-setting guest instruction snapshots its operands into
//!   `FLAG_A`/`FLAG_B` (only when a later `jcc` in the same block will
//!   consume them — dead flags cost nothing), and the `jcc` materializes
//!   exactly the condition it needs with 1–5 Alpha instructions. Flags do
//!   not cross basic-block boundaries; a block whose `jcc` has no in-block
//!   setter is rejected with [`TranslateError::FlagsCrossBlock`] and stays
//!   interpreted (a standard DBT fallback).
//! * **Memory sites** are the heart of the paper: for every guest memory
//!   access the translator asks the active strategy for a [`SitePlan`] —
//!   emit a plain (trappable) Alpha access, the branch-free MDA sequence,
//!   or alignment-checked multi-version code (§IV-D).
//! * **Block exits** set the next guest PC in `R16` and execute
//!   `call_pal exit_monitor`; constant-target exits are recorded so the
//!   engine can chain them into direct branches once the target block
//!   exists.

use crate::profile::SiteId;
use crate::regmap::{
    host_gpr, ibtc_slot_offset, mmx_host_reg, mmx_spill_offset, streak_counter_offset, ADDR_TMP,
    COND_TMP, DISPATCH_BASE_REG, EXIT_PC_REG, FLAG_A, FLAG_B, FLAG_KIND_ADD, FLAG_KIND_CLEARED,
    FLAG_KIND_LOGIC, FLAG_KIND_REG, FLAG_KIND_SHIFT, FLAG_KIND_SUB, IBTC_HIT_CTR, IMM_TMP,
    RAS_HIT_CTR, RAS_OFFSET, RAS_PTR_REG, RETIRE_CTR, STATE_BASE_REG, VALUE_TMP,
};
use bridge_alpha::builder::{BuildError, CodeBuilder};
use bridge_alpha::insn::{BrOp, JumpKind, MemOp, OpFn};
use bridge_alpha::mda_seq::{emit_unaligned_load, emit_unaligned_store, AccessWidth, SeqTemps};
use bridge_alpha::reg::Reg;
use bridge_alpha::{PAL_EXIT_MONITOR, PAL_HALT, PAL_REQUEST_MONITOR};
use bridge_sim::mem::Memory;
use bridge_x86::cond::Cond;
use bridge_x86::decode::{decode as decode_x86, DecodeError};
use bridge_x86::insn::{AluOp, Ext, Insn, MemRef, Scale, ShiftOp, Width};
use bridge_x86::reg::Reg32;
use std::fmt;

/// How a memory site is translated (the strategy's per-site decision).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SitePlan {
    /// A single plain Alpha memory instruction; traps if misaligned.
    Normal,
    /// The branch-free MDA code sequence; never traps, always slower than
    /// an aligned plain access.
    Sequence,
    /// Alignment check selecting between the plain instruction and the
    /// sequence at run time (multi-version code, §IV-D).
    MultiVersion,
    /// The paper's Figure 8 "truly adaptive" code: like
    /// [`SitePlan::MultiVersion`], but the aligned path counts consecutive
    /// aligned executions in a per-site streak counter and asks the monitor
    /// (via `call_pal request_monitor`) to revert the site to a plain
    /// access once the streak reaches `threshold`; the misaligned path
    /// resets the streak.
    Adaptive {
        /// Aligned-streak length that triggers reversion.
        threshold: u8,
    },
}

/// Description of a memory access the strategy decides on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteAccess {
    /// Access width.
    pub width: Width,
    /// Whether it is a store.
    pub is_store: bool,
}

/// Callback deciding the plan for each site.
pub type PlanFn<'a> = dyn FnMut(SiteId, SiteAccess) -> SitePlan + 'a;

/// In-code-cache dispatch features the translator should emit (mirrors the
/// corresponding [`DbtConfig`](crate::config::DbtConfig) toggles).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DispatchOpts {
    /// Emit the inline IBTC probe at every dynamic-target exit (`ret`),
    /// falling into the monitor only on a probe miss.
    pub ibtc: bool,
    /// With `ibtc`: push a shadow return stack entry on `call`, pop it on
    /// `ret` before the IBTC probe.
    pub shadow_ras: bool,
    /// Bump the retired-guest-instruction counter register at block entry.
    pub count_retired: bool,
}

/// Why a block could not be translated (the engine keeps interpreting it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TranslateError {
    /// Guest bytes did not decode.
    Decode {
        /// Address of the undecodable instruction.
        pc: u32,
        /// Decoder diagnosis.
        err: DecodeError,
    },
    /// A conditional branch whose flags were set in a previous block.
    FlagsCrossBlock {
        /// Address of the consuming `jcc`.
        pc: u32,
    },
    /// Internal emission failure (label misuse — a translator bug).
    Build(BuildError),
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslateError::Decode { pc, err } => write!(f, "decode error at {pc:#x}: {err}"),
            TranslateError::FlagsCrossBlock { pc } => {
                write!(f, "jcc at {pc:#x} consumes flags from a previous block")
            }
            TranslateError::Build(e) => write!(f, "emission error: {e}"),
        }
    }
}

impl std::error::Error for TranslateError {}

impl From<BuildError> for TranslateError {
    fn from(e: BuildError) -> TranslateError {
        TranslateError::Build(e)
    }
}

/// A constant-target block exit, recorded for chaining.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExitStub {
    /// Host address of the stub's first word (the chain patch point).
    pub host_addr: u64,
    /// Guest address the exit transfers to.
    pub target: u32,
}

/// A translated basic block ready to be installed in the code cache.
#[derive(Debug, Clone)]
pub struct TranslatedBlock {
    /// Guest address of the block's first instruction.
    pub guest_pc: u32,
    /// Guest address just past the block's last instruction.
    pub guest_end: u32,
    /// Number of guest instructions covered.
    pub guest_insn_count: u32,
    /// Encoded Alpha words, to be written at the base address given to
    /// [`translate_block`].
    pub words: Vec<u32>,
    /// Host address of each *trappable* (plain) memory instruction,
    /// with its site identity.
    pub trap_sites: Vec<(u64, SiteId)>,
    /// Constant-target exits, in emission order.
    pub exits: Vec<ExitStub>,
    /// Host addresses of the `call_pal exit_monitor` words reached only on
    /// an IBTC probe miss (dynamic-target exits). The engine classifies a
    /// monitor exit through one of these as an IBTC miss rather than a
    /// chainable constant-target exit.
    pub indirect_exits: Vec<u64>,
    /// Guest PCs of all instructions in the block (for profile reset on
    /// retranslation).
    pub guest_pcs: Vec<u32>,
    /// `(guest pc, word index)` of each instruction's first emitted word —
    /// lets the rearrangement handler resume mid-block after relocating.
    pub insn_starts: Vec<(u32, u32)>,
}

/// Decodes and translates the basic block starting at `guest_pc`, emitting
/// code for host address `base`.
///
/// `plan` is consulted once per memory site, in program order.
///
/// # Errors
///
/// See [`TranslateError`]; on error the engine falls back to interpretation
/// for this block.
pub fn translate_block(
    mem: &Memory,
    guest_pc: u32,
    base: u64,
    max_insns: usize,
    plan: &mut PlanFn<'_>,
    opts: DispatchOpts,
) -> Result<TranslatedBlock, TranslateError> {
    // ---- Decode the guest block. ----
    let mut insns: Vec<(u32, Insn, u32)> = Vec::new();
    let mut pc = guest_pc;
    loop {
        let mut buf = [0u8; 16];
        mem.read_bytes(u64::from(pc), &mut buf);
        let d = decode_x86(&buf, pc).map_err(|err| TranslateError::Decode { pc, err })?;
        insns.push((pc, d.insn, d.len));
        pc = pc.wrapping_add(d.len);
        if d.insn.ends_block() || insns.len() >= max_insns {
            break;
        }
    }
    let guest_end = pc;

    // ---- Flag liveness: does setter at index i feed a later jcc? ----
    let flag_live = compute_flag_liveness(&insns);

    // Reject blocks whose flag consumer has no in-block setter.
    let mut have_flags = false;
    for (ipc, insn, _) in &insns {
        if sets_flags(insn) {
            have_flags = true;
        }
        if consumes_flags(insn) && !have_flags {
            return Err(TranslateError::FlagsCrossBlock { pc: *ipc });
        }
    }

    // ---- Emit. ----
    let mut t = Emitter {
        b: CodeBuilder::new(base),
        flag_kind: FlagKind::Cleared,
        trap_sites: Vec::new(),
        exits: Vec::new(),
        indirect_exits: Vec::new(),
        opts,
    };

    if opts.count_retired {
        // One word at block entry: chained entries and IBTC transfers land
        // here, while mid-block trap resumes (which already counted) skip
        // it. max_block_insns ≤ 64 always fits the 16-bit displacement.
        t.b.lda(RETIRE_CTR, insns.len() as i16, RETIRE_CTR);
    }

    let mut insn_starts = Vec::with_capacity(insns.len());
    for (i, (ipc, insn, len)) in insns.iter().enumerate() {
        let fall = ipc.wrapping_add(*len);
        let live = flag_live[i];
        insn_starts.push((*ipc, t.b.len() as u32));
        t.emit_insn(*ipc, insn, fall, live, plan)?;
    }

    // A block cut by max_insns ends without a control transfer: fall
    // through to the next guest pc.
    if !insns.last().expect("nonempty block").1.ends_block() {
        t.emit_exit(guest_end);
    }

    let guest_pcs = insns.iter().map(|(p, _, _)| *p).collect();
    let guest_insn_count = insns.len() as u32;
    let words = t.b.finish()?;
    Ok(TranslatedBlock {
        guest_pc,
        guest_end,
        guest_insn_count,
        words,
        trap_sites: t.trap_sites,
        exits: t.exits,
        indirect_exits: t.indirect_exits,
        guest_pcs,
        insn_starts,
    })
}

fn sets_flags(insn: &Insn) -> bool {
    match insn {
        Insn::AluRR { .. }
        | Insn::AluRI { .. }
        | Insn::AluRM { .. }
        | Insn::AluMR { .. }
        | Insn::ImulRR { .. }
        | Insn::ImulRM { .. } => true,
        Insn::Shift { amount, .. } => amount & 31 != 0,
        Insn::Neg { .. } => true,
        _ => false,
    }
}

fn consumes_flags(insn: &Insn) -> bool {
    matches!(
        insn,
        Insn::Jcc { .. } | Insn::Setcc { .. } | Insn::Cmovcc { .. }
    )
}

/// For each instruction index, whether — if it sets flags — those flags are
/// live: consumed by a later `jcc` in this block, or escaping the block
/// (the *last* setter is always live so the engine can reconstruct exact
/// EFLAGS for interpreter-executed successors).
fn compute_flag_liveness(insns: &[(u32, Insn, u32)]) -> Vec<bool> {
    let mut live = vec![false; insns.len()];
    let mut pending_setter: Option<usize> = None;
    for (i, (_, insn, _)) in insns.iter().enumerate() {
        if consumes_flags(insn) {
            if let Some(s) = pending_setter {
                live[s] = true;
            }
        }
        if sets_flags(insn) {
            pending_setter = Some(i);
        }
    }
    if let Some(s) = pending_setter {
        live[s] = true; // flags escape the block
    }
    live
}

/// Lazy condition-code classification of the most recent flag setter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FlagKind {
    /// `FLAG_A + FLAG_B` (add).
    Add,
    /// `FLAG_A - FLAG_B` (sub/cmp).
    Sub,
    /// Result value in `FLAG_A`; CF=OF=0 (and/or/xor/test).
    Logic,
    /// Result in `FLAG_A`, carry bit in `FLAG_B`; OF=0 (shifts).
    Shift,
    /// All flags cleared (imul).
    Cleared,
}

/// A materialized condition: either statically known or a register to
/// branch on.
enum CondVal {
    Static(bool),
    /// Branch taken iff `reg` is nonzero (when `if_nonzero`) / zero.
    Dynamic {
        reg: Reg,
        if_nonzero: bool,
    },
}

struct Emitter {
    b: CodeBuilder,
    flag_kind: FlagKind,
    trap_sites: Vec<(u64, SiteId)>,
    exits: Vec<ExitStub>,
    indirect_exits: Vec<u64>,
    opts: DispatchOpts,
}

impl Emitter {
    /// Writes the lazy-flag kind tag so the engine can reconstruct EFLAGS
    /// after the block (see [`crate::regmap::FLAG_KIND_REG`]).
    fn tag_flags(&mut self, kind: FlagKind) {
        let id = match kind {
            FlagKind::Cleared => FLAG_KIND_CLEARED,
            FlagKind::Add => FLAG_KIND_ADD,
            FlagKind::Sub => FLAG_KIND_SUB,
            FlagKind::Logic => FLAG_KIND_LOGIC,
            FlagKind::Shift => FLAG_KIND_SHIFT,
        };
        self.b.lda(FLAG_KIND_REG, i16::from(id), Reg::ZERO);
        self.flag_kind = kind;
    }
    /// Emits a constant-target exit stub: `R16 ← target; call_pal
    /// exit_monitor`, and records it for chaining.
    fn emit_exit(&mut self, target: u32) {
        let host_addr = self.b.here();
        self.b.load_imm32(EXIT_PC_REG, target as i32);
        self.b.call_pal(PAL_EXIT_MONITOR);
        self.exits.push(ExitStub { host_addr, target });
    }

    /// Pushes a shadow-return-stack entry for return address `VALUE_TMP`
    /// (canonical sign-extended form, still live from the `call`'s stack
    /// store). The host field is snapshotted from the return address's IBTC
    /// slot — zero when the slot holds a different guest PC — so a stale or
    /// never-filled snapshot makes the `ret` fall back to the IBTC probe
    /// rather than jump anywhere wrong.
    fn emit_ras_push(&mut self, fall: u32) {
        let b = &mut self.b;
        // Advance and wrap the byte offset within the 256-byte RAS region.
        b.lda(RAS_PTR_REG, 16, RAS_PTR_REG);
        b.op_lit(OpFn::Zapnot, RAS_PTR_REG, 0x01, RAS_PTR_REG);
        b.op(OpFn::Addq, RAS_PTR_REG, DISPATCH_BASE_REG, IMM_TMP);
        b.mem(MemOp::Stq, VALUE_TMP, RAS_OFFSET, IMM_TMP);
        // Snapshot the return address's current IBTC entry; zero the host
        // if the direct-mapped slot belongs to some other guest PC.
        b.mem(
            MemOp::Ldq,
            COND_TMP,
            ibtc_slot_offset(fall),
            DISPATCH_BASE_REG,
        );
        b.op(OpFn::Cmpeq, COND_TMP, VALUE_TMP, COND_TMP);
        b.mem(
            MemOp::Ldq,
            ADDR_TMP,
            ibtc_slot_offset(fall) + 8,
            DISPATCH_BASE_REG,
        );
        b.op(OpFn::Cmoveq, COND_TMP, Reg::ZERO, ADDR_TMP);
        b.mem(MemOp::Stq, ADDR_TMP, RAS_OFFSET + 8, IMM_TMP);
    }

    /// Emits the dynamic-target block exit used by `ret`: optional shadow
    /// return stack pop, then the inline IBTC probe, then — only on a probe
    /// miss — the monitor exit. The guest target is in `EXIT_PC_REG`
    /// (canonical sign-extended form, matching the stored tags).
    fn emit_dynamic_exit(&mut self) {
        if !self.opts.ibtc {
            self.b.call_pal(PAL_EXIT_MONITOR);
            return;
        }
        let probe_l = self.b.new_label();
        let miss_l = self.b.new_label();
        if self.opts.shadow_ras {
            let b = &mut self.b;
            b.op(OpFn::Addq, RAS_PTR_REG, DISPATCH_BASE_REG, IMM_TMP);
            b.mem(MemOp::Ldq, COND_TMP, RAS_OFFSET, IMM_TMP);
            b.mem(MemOp::Ldq, ADDR_TMP, RAS_OFFSET + 8, IMM_TMP);
            // Pop unconditionally: on mismatch the stack is out of sync
            // anyway, and popping resynchronizes the common case.
            b.lda(RAS_PTR_REG, -16, RAS_PTR_REG);
            b.op_lit(OpFn::Zapnot, RAS_PTR_REG, 0x01, RAS_PTR_REG);
            b.op(OpFn::Cmpeq, COND_TMP, EXIT_PC_REG, COND_TMP);
            b.br_label(BrOp::Beq, COND_TMP, probe_l);
            b.br_label(BrOp::Beq, ADDR_TMP, probe_l);
            b.lda(RAS_HIT_CTR, 1, RAS_HIT_CTR);
            b.jump(JumpKind::Jmp, Reg::ZERO, ADDR_TMP);
        }
        self.b.bind(probe_l);
        {
            let b = &mut self.b;
            // index = (guest_pc & (IBTC_ENTRIES-1)) * IBTC_ENTRY_BYTES:
            // keep the low 10 bits, scaled by 16, via a shift pair (x86
            // PCs are byte-aligned, so no bits are discarded first).
            b.op_lit(OpFn::Sll, EXIT_PC_REG, 54, ADDR_TMP);
            b.op_lit(OpFn::Srl, ADDR_TMP, 50, ADDR_TMP);
            b.op(OpFn::Addq, ADDR_TMP, DISPATCH_BASE_REG, ADDR_TMP);
            b.mem(MemOp::Ldq, COND_TMP, 0, ADDR_TMP);
            b.op(OpFn::Cmpeq, COND_TMP, EXIT_PC_REG, COND_TMP);
            b.br_label(BrOp::Beq, COND_TMP, miss_l);
            b.mem(MemOp::Ldq, ADDR_TMP, 8, ADDR_TMP);
            b.br_label(BrOp::Beq, ADDR_TMP, miss_l);
            b.lda(IBTC_HIT_CTR, 1, IBTC_HIT_CTR);
            b.jump(JumpKind::Jmp, Reg::ZERO, ADDR_TMP);
        }
        self.b.bind(miss_l);
        let pal_addr = self.b.here();
        self.b.call_pal(PAL_EXIT_MONITOR);
        self.indirect_exits.push(pal_addr);
    }

    /// Computes the effective address of `m` (guest u32 semantics,
    /// zero-extended to a host address) into [`ADDR_TMP`]. Returns the
    /// displacement left for the memory instruction to fold in.
    fn emit_ea(&mut self, m: &MemRef) -> i16 {
        let b = &mut self.b;
        match (m.base, m.index) {
            (None, None) => {
                b.load_imm32(ADDR_TMP, m.disp);
                b.op_lit(OpFn::Zapnot, ADDR_TMP, 0x0F, ADDR_TMP);
                0
            }
            (Some(base), None) => {
                // Common case: zero-extend the base, fold a small disp into
                // the memory instruction (leaving headroom for the MDA
                // sequence's `disp + width - 1`).
                if (-16384..16376).contains(&m.disp) {
                    b.op_lit(OpFn::Zapnot, host_gpr(base), 0x0F, ADDR_TMP);
                    m.disp as i16
                } else {
                    b.load_imm32(IMM_TMP, m.disp);
                    b.op(OpFn::Addl, host_gpr(base), IMM_TMP, ADDR_TMP);
                    b.op_lit(OpFn::Zapnot, ADDR_TMP, 0x0F, ADDR_TMP);
                    0
                }
            }
            (base, Some((index, scale))) => {
                let hi = host_gpr(index);
                // index*scale (+ base) as a sign-extended 32-bit sum.
                match (base, scale) {
                    (Some(bs), Scale::S1) => b.op(OpFn::Addl, host_gpr(bs), hi, ADDR_TMP),
                    (Some(bs), Scale::S4) => b.op(OpFn::S4addl, hi, host_gpr(bs), ADDR_TMP),
                    (Some(bs), sc) => {
                        b.op_lit(OpFn::Sll, hi, sc.bits(), ADDR_TMP);
                        b.op(OpFn::Addl, ADDR_TMP, host_gpr(bs), ADDR_TMP);
                    }
                    (None, Scale::S1) => b.op(OpFn::Addl, hi, Reg::ZERO, ADDR_TMP),
                    (None, sc) => {
                        b.op_lit(OpFn::Sll, hi, sc.bits(), ADDR_TMP);
                        b.op(OpFn::Addl, ADDR_TMP, Reg::ZERO, ADDR_TMP);
                    }
                }
                if m.disp != 0 {
                    if let Ok(d16) = i16::try_from(m.disp) {
                        b.lda(ADDR_TMP, d16, ADDR_TMP);
                    } else {
                        b.load_imm32(IMM_TMP, m.disp);
                        b.op(OpFn::Addq, ADDR_TMP, IMM_TMP, ADDR_TMP);
                    }
                    b.op(OpFn::Addl, Reg::ZERO, ADDR_TMP, ADDR_TMP);
                }
                b.op_lit(OpFn::Zapnot, ADDR_TMP, 0x0F, ADDR_TMP);
                0
            }
        }
    }

    /// Emits a plan-gated load of `width` at `disp(ADDR_TMP)` into `dst`
    /// (a host register), with x86 `ext` semantics for narrow widths
    /// (W4 is sign-extended — the canonical form; W8 raw).
    fn emit_load(
        &mut self,
        site: SiteId,
        width: Width,
        ext: Ext,
        dst: Reg,
        disp: i16,
        plan: &mut PlanFn<'_>,
    ) {
        let decision = plan(
            site,
            SiteAccess {
                width,
                is_store: false,
            },
        );
        match width {
            Width::W1 => {
                // Byte accesses can never be misaligned; always plain.
                self.b.mem(MemOp::Ldbu, dst, disp, ADDR_TMP);
                if ext == Ext::Sign {
                    self.b.op_lit(OpFn::Sll, dst, 56, dst);
                    self.b.op_lit(OpFn::Sra, dst, 56, dst);
                }
                return;
            }
            Width::W2 | Width::W4 | Width::W8 => {}
        }
        let aw = AccessWidth::from_bytes(width.bytes()).expect("non-byte width");
        let emit_plain = |e: &mut Emitter, record: bool| {
            let host = e.b.here();
            match width {
                Width::W2 => e.b.mem(MemOp::Ldwu, dst, disp, ADDR_TMP),
                Width::W4 => e.b.mem(MemOp::Ldl, dst, disp, ADDR_TMP),
                Width::W8 => e.b.mem(MemOp::Ldq, dst, disp, ADDR_TMP),
                Width::W1 => unreachable!(),
            }
            if record {
                e.trap_sites.push((host, site));
            }
        };
        let emit_seq = |e: &mut Emitter| {
            let sext = width == Width::W4; // ldl semantics; W2 extension below
            emit_unaligned_load(
                &mut e.b,
                aw,
                dst,
                ADDR_TMP,
                disp,
                sext,
                &SeqTemps::default(),
            );
        };
        match decision {
            SitePlan::Normal => emit_plain(self, true),
            SitePlan::Sequence => emit_seq(self),
            SitePlan::MultiVersion => {
                self.emit_alignment_check(width, disp);
                let seq_l = self.b.new_label();
                let done_l = self.b.new_label();
                self.b.br_label(BrOp::Bne, COND_TMP, seq_l);
                emit_plain(self, false); // guarded: cannot trap
                self.b.br_label(BrOp::Br, Reg::ZERO, done_l);
                self.b.bind(seq_l);
                emit_seq(self);
                self.b.bind(done_l);
            }
            SitePlan::Adaptive { threshold } => {
                self.emit_adaptive(
                    site,
                    width,
                    disp,
                    threshold,
                    &mut |e| emit_plain(e, false),
                    &mut |e| emit_seq(e),
                );
            }
        }
        // x86 extension semantics for 2-byte loads (ldwu zero-extends).
        if width == Width::W2 && ext == Ext::Sign {
            self.b.op_lit(OpFn::Sll, dst, 48, dst);
            self.b.op_lit(OpFn::Sra, dst, 48, dst);
        }
    }

    /// Emits a plan-gated store of `src` (host register, low `width` bytes)
    /// at `disp(ADDR_TMP)`.
    fn emit_store(
        &mut self,
        site: SiteId,
        width: Width,
        src: Reg,
        disp: i16,
        plan: &mut PlanFn<'_>,
    ) {
        let decision = plan(
            site,
            SiteAccess {
                width,
                is_store: true,
            },
        );
        if width == Width::W1 {
            self.b.mem(MemOp::Stb, src, disp, ADDR_TMP);
            return;
        }
        let aw = AccessWidth::from_bytes(width.bytes()).expect("non-byte width");
        let emit_plain = |e: &mut Emitter, record: bool| {
            let host = e.b.here();
            match width {
                Width::W2 => e.b.mem(MemOp::Stw, src, disp, ADDR_TMP),
                Width::W4 => e.b.mem(MemOp::Stl, src, disp, ADDR_TMP),
                Width::W8 => e.b.mem(MemOp::Stq, src, disp, ADDR_TMP),
                Width::W1 => unreachable!(),
            }
            if record {
                e.trap_sites.push((host, site));
            }
        };
        match decision {
            SitePlan::Normal => emit_plain(self, true),
            SitePlan::Sequence => {
                emit_unaligned_store(&mut self.b, aw, src, ADDR_TMP, disp, &SeqTemps::default());
            }
            SitePlan::MultiVersion => {
                self.emit_alignment_check(width, disp);
                let seq_l = self.b.new_label();
                let done_l = self.b.new_label();
                self.b.br_label(BrOp::Bne, COND_TMP, seq_l);
                emit_plain(self, false);
                self.b.br_label(BrOp::Br, Reg::ZERO, done_l);
                self.b.bind(seq_l);
                emit_unaligned_store(&mut self.b, aw, src, ADDR_TMP, disp, &SeqTemps::default());
                self.b.bind(done_l);
            }
            SitePlan::Adaptive { threshold } => {
                self.emit_adaptive(
                    site,
                    width,
                    disp,
                    threshold,
                    &mut |e| emit_plain(e, false),
                    &mut |e| {
                        emit_unaligned_store(
                            &mut e.b,
                            aw,
                            src,
                            ADDR_TMP,
                            disp,
                            &SeqTemps::default(),
                        );
                    },
                );
            }
        }
    }

    /// Leaves the address of `site`'s aligned-streak counter in
    /// [`IMM_TMP`] (state-block relative; see
    /// [`streak_counter_offset`]).
    fn emit_counter_addr(&mut self, site: SiteId) {
        let off = streak_counter_offset(site.pc, site.slot);
        let lo = off as i16;
        let hi = ((off - i64::from(lo)) >> 16) as i16;
        self.b.ldah(IMM_TMP, hi, STATE_BASE_REG);
        if lo != 0 {
            self.b.lda(IMM_TMP, lo, IMM_TMP);
        }
    }

    /// Emits the Figure 8 adaptive body shared by loads and stores:
    /// alignment check, streak bookkeeping, reversion request, and the
    /// two access paths supplied by the callers.
    fn emit_adaptive(
        &mut self,
        site: SiteId,
        width: Width,
        disp: i16,
        threshold: u8,
        emit_plain: &mut dyn FnMut(&mut Emitter),
        emit_seq: &mut dyn FnMut(&mut Emitter),
    ) {
        self.emit_alignment_check(width, disp);
        let seq_l = self.b.new_label();
        let op_l = self.b.new_label();
        let done_l = self.b.new_label();
        self.b.br_label(BrOp::Bne, COND_TMP, seq_l);
        // Aligned path: bump the consecutive-aligned streak counter.
        self.emit_counter_addr(site);
        self.b.mem(MemOp::Ldl, COND_TMP, 0, IMM_TMP);
        self.b.op_lit(OpFn::Addl, COND_TMP, 1, COND_TMP);
        self.b.mem(MemOp::Stl, COND_TMP, 0, IMM_TMP);
        self.b.op_lit(OpFn::Cmple, COND_TMP, threshold, COND_TMP);
        self.b.br_label(BrOp::Bne, COND_TMP, op_l);
        // Streak exceeded: "br BT monitor" — request reversion of this
        // site to a plain access.
        self.b.load_imm32(EXIT_PC_REG, site.pc as i32);
        self.b.call_pal(PAL_REQUEST_MONITOR);
        self.b.bind(op_l);
        emit_plain(self);
        self.b.br_label(BrOp::Br, Reg::ZERO, done_l);
        self.b.bind(seq_l);
        // Misaligned path: reset the streak and run the MDA sequence.
        self.emit_counter_addr(site);
        self.b.mem(MemOp::Stl, Reg::ZERO, 0, IMM_TMP);
        emit_seq(self);
        self.b.bind(done_l);
    }

    /// Leaves `(ADDR_TMP + disp) & (width-1)` in [`COND_TMP`] — nonzero when
    /// the access would be misaligned (Figure 8's `and`/`bne` check).
    fn emit_alignment_check(&mut self, width: Width, disp: i16) {
        let mask = (width.bytes() - 1) as u8;
        if disp == 0 {
            self.b.op_lit(OpFn::And, ADDR_TMP, mask, COND_TMP);
        } else {
            self.b.lda(COND_TMP, disp, ADDR_TMP);
            self.b.op_lit(OpFn::And, COND_TMP, mask, COND_TMP);
        }
    }

    /// Snapshots ALU operands into the flag registers when live and emits
    /// the operation. `a_reg`/`b_reg` hold the operand values; `write_to`
    /// receives the result for write-back ops.
    fn emit_alu(&mut self, op: AluOp, a_reg: Reg, b_reg: Reg, write_to: Option<Reg>, live: bool) {
        let (kind, alpha_op) = match op {
            AluOp::Add => (FlagKind::Add, Some(OpFn::Addl)),
            AluOp::Sub => (FlagKind::Sub, Some(OpFn::Subl)),
            AluOp::Cmp => (FlagKind::Sub, None),
            AluOp::And | AluOp::Test => (FlagKind::Logic, Some(OpFn::And)),
            AluOp::Or => (FlagKind::Logic, Some(OpFn::Bis)),
            AluOp::Xor => (FlagKind::Logic, Some(OpFn::Xor)),
        };
        if live {
            self.tag_flags(kind);
            match kind {
                FlagKind::Add | FlagKind::Sub => {
                    self.b.mov(a_reg, FLAG_A);
                    self.b.mov(b_reg, FLAG_B);
                    if let (Some(f), Some(dst)) = (alpha_op, write_to.filter(|_| op.writes_back()))
                    {
                        self.b.op(f, FLAG_A, FLAG_B, dst);
                    }
                }
                FlagKind::Logic => {
                    let f = alpha_op.expect("logic ops have an Alpha op");
                    self.b.op(f, a_reg, b_reg, FLAG_A);
                    if let Some(dst) = write_to.filter(|_| op.writes_back()) {
                        self.b.mov(FLAG_A, dst);
                    }
                }
                _ => unreachable!(),
            }
        } else if let (Some(f), Some(dst)) = (alpha_op, write_to.filter(|_| op.writes_back())) {
            self.b.op(f, a_reg, b_reg, dst);
        }
    }

    /// Materializes `cond` from the lazy flag state.
    fn emit_cond(&mut self, cond: Cond) -> CondVal {
        use Cond::*;
        let b = &mut self.b;
        match self.flag_kind {
            FlagKind::Sub => match cond {
                E => {
                    b.op(OpFn::Cmpeq, FLAG_A, FLAG_B, COND_TMP);
                    CondVal::Dynamic {
                        reg: COND_TMP,
                        if_nonzero: true,
                    }
                }
                Ne => {
                    b.op(OpFn::Cmpeq, FLAG_A, FLAG_B, COND_TMP);
                    CondVal::Dynamic {
                        reg: COND_TMP,
                        if_nonzero: false,
                    }
                }
                L | Ge => {
                    b.op(OpFn::Cmplt, FLAG_A, FLAG_B, COND_TMP);
                    CondVal::Dynamic {
                        reg: COND_TMP,
                        if_nonzero: cond == L,
                    }
                }
                Le | G => {
                    b.op(OpFn::Cmple, FLAG_A, FLAG_B, COND_TMP);
                    CondVal::Dynamic {
                        reg: COND_TMP,
                        if_nonzero: cond == Le,
                    }
                }
                B | Ae => {
                    b.op_lit(OpFn::Zapnot, FLAG_A, 0x0F, COND_TMP);
                    b.op_lit(OpFn::Zapnot, FLAG_B, 0x0F, IMM_TMP);
                    b.op(OpFn::Cmpult, COND_TMP, IMM_TMP, COND_TMP);
                    CondVal::Dynamic {
                        reg: COND_TMP,
                        if_nonzero: cond == B,
                    }
                }
                Be | A => {
                    b.op_lit(OpFn::Zapnot, FLAG_A, 0x0F, COND_TMP);
                    b.op_lit(OpFn::Zapnot, FLAG_B, 0x0F, IMM_TMP);
                    b.op(OpFn::Cmpule, COND_TMP, IMM_TMP, COND_TMP);
                    CondVal::Dynamic {
                        reg: COND_TMP,
                        if_nonzero: cond == Be,
                    }
                }
                S | Ns => {
                    b.op(OpFn::Subl, FLAG_A, FLAG_B, COND_TMP);
                    b.op(OpFn::Cmplt, COND_TMP, Reg::ZERO, COND_TMP);
                    CondVal::Dynamic {
                        reg: COND_TMP,
                        if_nonzero: cond == S,
                    }
                }
            },
            FlagKind::Add => match cond {
                E | Ne => {
                    b.op(OpFn::Addl, FLAG_A, FLAG_B, COND_TMP);
                    b.op(OpFn::Cmpeq, COND_TMP, Reg::ZERO, COND_TMP);
                    CondVal::Dynamic {
                        reg: COND_TMP,
                        if_nonzero: cond == E,
                    }
                }
                S | Ns => {
                    b.op(OpFn::Addl, FLAG_A, FLAG_B, COND_TMP);
                    b.op(OpFn::Cmplt, COND_TMP, Reg::ZERO, COND_TMP);
                    CondVal::Dynamic {
                        reg: COND_TMP,
                        if_nonzero: cond == S,
                    }
                }
                L | Ge => {
                    // Exact signed sum in 64 bits: SF != OF ⇔ sum < 0.
                    b.op(OpFn::Addq, FLAG_A, FLAG_B, COND_TMP);
                    b.op(OpFn::Cmplt, COND_TMP, Reg::ZERO, COND_TMP);
                    CondVal::Dynamic {
                        reg: COND_TMP,
                        if_nonzero: cond == L,
                    }
                }
                Le | G => {
                    b.op(OpFn::Addq, FLAG_A, FLAG_B, COND_TMP);
                    b.op(OpFn::Cmple, COND_TMP, Reg::ZERO, COND_TMP);
                    CondVal::Dynamic {
                        reg: COND_TMP,
                        if_nonzero: cond == Le,
                    }
                }
                B | Ae => {
                    // Carry out of the 32-bit unsigned add.
                    b.op_lit(OpFn::Zapnot, FLAG_A, 0x0F, COND_TMP);
                    b.op_lit(OpFn::Zapnot, FLAG_B, 0x0F, IMM_TMP);
                    b.op(OpFn::Addq, COND_TMP, IMM_TMP, COND_TMP);
                    b.op_lit(OpFn::Srl, COND_TMP, 32, COND_TMP);
                    CondVal::Dynamic {
                        reg: COND_TMP,
                        if_nonzero: cond == B,
                    }
                }
                Be | A => {
                    b.op_lit(OpFn::Zapnot, FLAG_A, 0x0F, COND_TMP);
                    b.op_lit(OpFn::Zapnot, FLAG_B, 0x0F, IMM_TMP);
                    b.op(OpFn::Addq, COND_TMP, IMM_TMP, COND_TMP);
                    b.op_lit(OpFn::Srl, COND_TMP, 32, COND_TMP);
                    // ZF: the 32-bit result is zero.
                    b.op(OpFn::Addl, FLAG_A, FLAG_B, IMM_TMP);
                    b.op(OpFn::Cmpeq, IMM_TMP, Reg::ZERO, IMM_TMP);
                    b.op(OpFn::Bis, COND_TMP, IMM_TMP, COND_TMP);
                    CondVal::Dynamic {
                        reg: COND_TMP,
                        if_nonzero: cond == Be,
                    }
                }
            },
            FlagKind::Logic => match cond {
                E | Ne => {
                    b.op(OpFn::Cmpeq, FLAG_A, Reg::ZERO, COND_TMP);
                    CondVal::Dynamic {
                        reg: COND_TMP,
                        if_nonzero: cond == E,
                    }
                }
                S | Ns | L | Ge => {
                    // OF = 0, so L ≡ S and Ge ≡ Ns.
                    b.op(OpFn::Cmplt, FLAG_A, Reg::ZERO, COND_TMP);
                    CondVal::Dynamic {
                        reg: COND_TMP,
                        if_nonzero: cond == S || cond == L,
                    }
                }
                Le | G => {
                    b.op(OpFn::Cmple, FLAG_A, Reg::ZERO, COND_TMP);
                    CondVal::Dynamic {
                        reg: COND_TMP,
                        if_nonzero: cond == Le,
                    }
                }
                B => CondVal::Static(false),
                Ae => CondVal::Static(true),
                Be | A => {
                    b.op(OpFn::Cmpeq, FLAG_A, Reg::ZERO, COND_TMP);
                    CondVal::Dynamic {
                        reg: COND_TMP,
                        if_nonzero: cond == Be,
                    }
                }
            },
            FlagKind::Shift => match cond {
                E | Ne => {
                    b.op(OpFn::Cmpeq, FLAG_A, Reg::ZERO, COND_TMP);
                    CondVal::Dynamic {
                        reg: COND_TMP,
                        if_nonzero: cond == E,
                    }
                }
                S | Ns | L | Ge => {
                    b.op(OpFn::Cmplt, FLAG_A, Reg::ZERO, COND_TMP);
                    CondVal::Dynamic {
                        reg: COND_TMP,
                        if_nonzero: cond == S || cond == L,
                    }
                }
                Le | G => {
                    b.op(OpFn::Cmple, FLAG_A, Reg::ZERO, COND_TMP);
                    CondVal::Dynamic {
                        reg: COND_TMP,
                        if_nonzero: cond == Le,
                    }
                }
                B | Ae => CondVal::Dynamic {
                    reg: FLAG_B,
                    if_nonzero: cond == B,
                },
                Be | A => {
                    b.op(OpFn::Cmpeq, FLAG_A, Reg::ZERO, COND_TMP);
                    b.op(OpFn::Bis, COND_TMP, FLAG_B, COND_TMP);
                    CondVal::Dynamic {
                        reg: COND_TMP,
                        if_nonzero: cond == Be,
                    }
                }
            },
            FlagKind::Cleared => {
                // ZF=SF=CF=OF=0.
                let taken = matches!(cond, Ne | Ae | A | Ns | Ge | G);
                CondVal::Static(taken)
            }
        }
    }

    /// Materializes `cond` as a 0/1 value in [`COND_TMP`].
    fn emit_cond_value(&mut self, cond: Cond) {
        match self.emit_cond(cond) {
            CondVal::Static(b) => self.b.lda(COND_TMP, i16::from(b), Reg::ZERO),
            CondVal::Dynamic {
                reg,
                if_nonzero: true,
            } => {
                self.b.op(OpFn::Cmpult, Reg::ZERO, reg, COND_TMP);
            }
            CondVal::Dynamic {
                reg,
                if_nonzero: false,
            } => {
                self.b.op(OpFn::Cmpeq, reg, Reg::ZERO, COND_TMP);
            }
        }
    }

    fn emit_insn(
        &mut self,
        pc: u32,
        insn: &Insn,
        fall: u32,
        live: bool,
        plan: &mut PlanFn<'_>,
    ) -> Result<(), TranslateError> {
        match *insn {
            Insn::MovRI { dst, imm } => self.b.load_imm32(host_gpr(dst), imm),
            Insn::MovRR { dst, src } => self.b.mov(host_gpr(src), host_gpr(dst)),
            Insn::Load {
                width,
                ext,
                dst,
                src,
            } => {
                let disp = self.emit_ea(&src);
                self.emit_load(SiteId::new(pc, 0), width, ext, host_gpr(dst), disp, plan);
            }
            Insn::Store { width, src, dst } => {
                let disp = self.emit_ea(&dst);
                self.emit_store(SiteId::new(pc, 0), width, host_gpr(src), disp, plan);
            }
            Insn::MovqLoad { dst, src } => {
                let disp = self.emit_ea(&src);
                match mmx_host_reg(dst) {
                    Some(h) => {
                        self.emit_load(SiteId::new(pc, 0), Width::W8, Ext::Zero, h, disp, plan);
                    }
                    None => {
                        self.emit_load(
                            SiteId::new(pc, 0),
                            Width::W8,
                            Ext::Zero,
                            VALUE_TMP,
                            disp,
                            plan,
                        );
                        self.b
                            .mem(MemOp::Stq, VALUE_TMP, mmx_spill_offset(dst), STATE_BASE_REG);
                    }
                }
            }
            Insn::MovqStore { src, dst } => {
                let disp = self.emit_ea(&dst);
                let h = match mmx_host_reg(src) {
                    Some(h) => h,
                    None => {
                        self.b
                            .mem(MemOp::Ldq, VALUE_TMP, mmx_spill_offset(src), STATE_BASE_REG);
                        VALUE_TMP
                    }
                };
                self.emit_store(SiteId::new(pc, 0), Width::W8, h, disp, plan);
            }
            Insn::Lea { dst, src } => {
                let d = host_gpr(dst);
                match (src.base, src.index) {
                    (None, None) => self.b.load_imm32(d, src.disp),
                    (Some(base), None) => {
                        if src.disp == 0 {
                            self.b.mov(host_gpr(base), d);
                        } else if let Ok(d16) = i16::try_from(src.disp) {
                            self.b.lda(d, d16, host_gpr(base));
                            self.b.op(OpFn::Addl, Reg::ZERO, d, d);
                        } else {
                            self.b.load_imm32(IMM_TMP, src.disp);
                            self.b.op(OpFn::Addl, host_gpr(base), IMM_TMP, d);
                        }
                    }
                    (base, Some((index, scale))) => {
                        let hi = host_gpr(index);
                        match (base, scale) {
                            (Some(bs), Scale::S1) => self.b.op(OpFn::Addl, host_gpr(bs), hi, d),
                            (Some(bs), Scale::S4) => self.b.op(OpFn::S4addl, hi, host_gpr(bs), d),
                            (Some(bs), sc) => {
                                self.b.op_lit(OpFn::Sll, hi, sc.bits(), d);
                                self.b.op(OpFn::Addl, d, host_gpr(bs), d);
                            }
                            (None, Scale::S1) => self.b.op(OpFn::Addl, hi, Reg::ZERO, d),
                            (None, sc) => {
                                self.b.op_lit(OpFn::Sll, hi, sc.bits(), d);
                                self.b.op(OpFn::Addl, d, Reg::ZERO, d);
                            }
                        }
                        if src.disp != 0 {
                            if let Ok(d16) = i16::try_from(src.disp) {
                                self.b.lda(d, d16, d);
                            } else {
                                self.b.load_imm32(IMM_TMP, src.disp);
                                self.b.op(OpFn::Addq, d, IMM_TMP, d);
                            }
                            self.b.op(OpFn::Addl, Reg::ZERO, d, d);
                        }
                    }
                }
            }
            Insn::AluRR { op, dst, src } => {
                self.emit_alu(op, host_gpr(dst), host_gpr(src), Some(host_gpr(dst)), live);
            }
            Insn::AluRI { op, dst, imm } => {
                if live {
                    self.b.load_imm32(FLAG_B, imm);
                    self.emit_alu(op, host_gpr(dst), FLAG_B, Some(host_gpr(dst)), live);
                } else if (0..=255).contains(&imm) && op.writes_back() {
                    let f = match op {
                        AluOp::Add => OpFn::Addl,
                        AluOp::Sub => OpFn::Subl,
                        AluOp::And => OpFn::And,
                        AluOp::Or => OpFn::Bis,
                        AluOp::Xor => OpFn::Xor,
                        AluOp::Cmp | AluOp::Test => unreachable!("no write-back"),
                    };
                    self.b.op_lit(f, host_gpr(dst), imm as u8, host_gpr(dst));
                } else if op.writes_back() {
                    self.b.load_imm32(IMM_TMP, imm);
                    self.emit_alu(op, host_gpr(dst), IMM_TMP, Some(host_gpr(dst)), live);
                }
                // Dead cmp/test with immediate: nothing at all.
            }
            Insn::AluRM { op, dst, src } => {
                let disp = self.emit_ea(&src);
                self.emit_load(
                    SiteId::new(pc, 0),
                    Width::W4,
                    Ext::Zero,
                    VALUE_TMP,
                    disp,
                    plan,
                );
                self.emit_alu(op, host_gpr(dst), VALUE_TMP, Some(host_gpr(dst)), live);
            }
            Insn::AluMR { op, dst, src } => {
                let disp = self.emit_ea(&dst);
                self.emit_load(
                    SiteId::new(pc, 0),
                    Width::W4,
                    Ext::Zero,
                    VALUE_TMP,
                    disp,
                    plan,
                );
                self.emit_alu(op, VALUE_TMP, host_gpr(src), Some(VALUE_TMP), live);
                if op.writes_back() {
                    self.emit_store(SiteId::new(pc, 1), Width::W4, VALUE_TMP, disp, plan);
                }
            }
            Insn::Shift { op, dst, amount } => {
                let amt = amount & 31;
                if amt == 0 {
                    return Ok(());
                }
                let d = host_gpr(dst);
                if live {
                    // Carry bit from the pre-shift value.
                    let cf_bit = match op {
                        ShiftOp::Shl => 32 - amt,
                        ShiftOp::Shr | ShiftOp::Sar => amt - 1,
                    };
                    if cf_bit == 0 {
                        self.b.op_lit(OpFn::And, d, 1, FLAG_B);
                    } else {
                        self.b.op_lit(OpFn::Srl, d, cf_bit, FLAG_B);
                        self.b.op_lit(OpFn::And, FLAG_B, 1, FLAG_B);
                    }
                }
                match op {
                    ShiftOp::Shl => {
                        self.b.op_lit(OpFn::Sll, d, amt, d);
                        self.b.op(OpFn::Addl, Reg::ZERO, d, d);
                    }
                    ShiftOp::Shr => {
                        self.b.op_lit(OpFn::Zapnot, d, 0x0F, d);
                        self.b.op_lit(OpFn::Srl, d, amt, d);
                    }
                    ShiftOp::Sar => {
                        self.b.op_lit(OpFn::Sra, d, amt, d);
                    }
                }
                if live {
                    self.b.mov(d, FLAG_A);
                    self.tag_flags(FlagKind::Shift);
                }
            }
            Insn::ImulRR { dst, src } => {
                self.b
                    .op(OpFn::Mull, host_gpr(dst), host_gpr(src), host_gpr(dst));
                if live {
                    self.tag_flags(FlagKind::Cleared);
                }
            }
            Insn::ImulRM { dst, src } => {
                let disp = self.emit_ea(&src);
                self.emit_load(
                    SiteId::new(pc, 0),
                    Width::W4,
                    Ext::Zero,
                    VALUE_TMP,
                    disp,
                    plan,
                );
                self.b
                    .op(OpFn::Mull, host_gpr(dst), VALUE_TMP, host_gpr(dst));
                if live {
                    self.tag_flags(FlagKind::Cleared);
                }
            }
            Insn::Push { src } => {
                // Address and stored value use the *old* esp (x86 `push
                // %esp` stores the pre-decrement value).
                let esp = host_gpr(Reg32::Esp);
                self.b.lda(ADDR_TMP, -4, esp);
                self.b.op_lit(OpFn::Zapnot, ADDR_TMP, 0x0F, ADDR_TMP);
                self.emit_store(SiteId::new(pc, 0), Width::W4, host_gpr(src), 0, plan);
                self.b.op_lit(OpFn::Subl, esp, 4, esp);
            }
            Insn::Neg { dst } => {
                // neg r32 ≡ sub with a zero left operand (CF = r32 != 0).
                self.emit_alu(
                    AluOp::Sub,
                    Reg::ZERO,
                    host_gpr(dst),
                    Some(host_gpr(dst)),
                    live,
                );
            }
            Insn::Not { dst } => {
                // ornot zero, x → !x; complement preserves the canonical
                // sign-extended form. No flags.
                let d = host_gpr(dst);
                self.b.op(OpFn::Ornot, Reg::ZERO, d, d);
            }
            Insn::Xchg { a, b } => {
                if a != b {
                    let (ha, hb) = (host_gpr(a), host_gpr(b));
                    self.b.mov(ha, IMM_TMP);
                    self.b.mov(hb, ha);
                    self.b.mov(IMM_TMP, hb);
                }
            }
            Insn::Pop { dst } => {
                let esp = host_gpr(Reg32::Esp);
                self.b.op_lit(OpFn::Zapnot, esp, 0x0F, ADDR_TMP);
                if dst == Reg32::Esp {
                    // `pop %esp`: the loaded value *is* the new esp; the
                    // increment is architecturally discarded.
                    self.emit_load(SiteId::new(pc, 0), Width::W4, Ext::Zero, esp, 0, plan);
                } else {
                    // Load first: a trap must arrive before any guest state
                    // changes, so the handler can resume by re-execution.
                    self.emit_load(
                        SiteId::new(pc, 0),
                        Width::W4,
                        Ext::Zero,
                        host_gpr(dst),
                        0,
                        plan,
                    );
                    self.b.op_lit(OpFn::Addl, esp, 4, esp);
                }
            }
            Insn::Setcc { cond, dst } => {
                self.emit_cond_value(cond);
                let d = host_gpr(dst);
                self.b.op_lit(OpFn::Zap, d, 0x01, d); // clear the low byte
                self.b.op(OpFn::Bis, d, COND_TMP, d);
            }
            Insn::Cmovcc { cond, dst, src } => {
                self.emit_cond_value(cond);
                self.b
                    .op(OpFn::Cmovne, COND_TMP, host_gpr(src), host_gpr(dst));
            }
            Insn::RepMovsd => {
                // Inline copy loop. Both memory sites are plan-gated, so a
                // misaligned glibc-style memcpy can run entirely on MDA
                // sequences after one trap (or immediately, under DPEH).
                let esi = host_gpr(Reg32::Esi);
                let edi = host_gpr(Reg32::Edi);
                let ecx = host_gpr(Reg32::Ecx);
                let done = self.b.new_label();
                let top = self.b.new_label();
                self.b.br_label(BrOp::Beq, ecx, done);
                self.b.bind(top);
                self.b.op_lit(OpFn::Zapnot, esi, 0x0F, ADDR_TMP);
                self.emit_load(SiteId::new(pc, 0), Width::W4, Ext::Zero, VALUE_TMP, 0, plan);
                self.b.op_lit(OpFn::Zapnot, edi, 0x0F, ADDR_TMP);
                self.emit_store(SiteId::new(pc, 1), Width::W4, VALUE_TMP, 0, plan);
                self.b.op_lit(OpFn::Addl, esi, 4, esi);
                self.b.op_lit(OpFn::Addl, edi, 4, edi);
                self.b.op_lit(OpFn::Subl, ecx, 1, ecx);
                self.b.br_label(BrOp::Bne, ecx, top);
                self.b.bind(done);
            }
            Insn::Jcc { cond, target } => match self.emit_cond(cond) {
                CondVal::Static(true) => self.emit_exit(target),
                CondVal::Static(false) => self.emit_exit(fall),
                CondVal::Dynamic { reg, if_nonzero } => {
                    let taken_l = self.b.new_label();
                    let brop = if if_nonzero { BrOp::Bne } else { BrOp::Beq };
                    self.b.br_label(brop, reg, taken_l);
                    self.emit_exit(fall);
                    self.b.bind(taken_l);
                    self.emit_exit(target);
                }
            },
            Insn::Jmp { target } => self.emit_exit(target),
            Insn::Call { target } => {
                // The return address rides in VALUE_TMP, not IMM_TMP: the
                // adaptive store path uses IMM_TMP for counter addressing.
                let esp = host_gpr(Reg32::Esp);
                self.b.load_imm32(VALUE_TMP, fall as i32);
                self.b.lda(ADDR_TMP, -4, esp);
                self.b.op_lit(OpFn::Zapnot, ADDR_TMP, 0x0F, ADDR_TMP);
                self.emit_store(SiteId::new(pc, 0), Width::W4, VALUE_TMP, 0, plan);
                self.b.op_lit(OpFn::Subl, esp, 4, esp);
                if self.opts.ibtc && self.opts.shadow_ras {
                    // VALUE_TMP still holds the sign-extended return
                    // address from the stack store above.
                    self.emit_ras_push(fall);
                }
                self.emit_exit(target);
            }
            Insn::Ret => {
                let esp = host_gpr(Reg32::Esp);
                self.b.op_lit(OpFn::Zapnot, esp, 0x0F, ADDR_TMP);
                self.emit_load(
                    SiteId::new(pc, 0),
                    Width::W4,
                    Ext::Zero,
                    EXIT_PC_REG,
                    0,
                    plan,
                );
                self.b.op_lit(OpFn::Addl, esp, 4, esp);
                // Dynamic target: not chainable, but IBTC-probeable.
                self.emit_dynamic_exit();
            }
            Insn::Nop => {}
            Insn::Hlt => {
                self.b.load_imm32(EXIT_PC_REG, fall as i32);
                self.b.call_pal(PAL_HALT);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bridge_x86::asm::Assembler;
    use bridge_x86::encode::encode_to_vec;

    fn assemble_at(entry: u32, build: impl FnOnce(&mut Assembler)) -> Memory {
        let mut a = Assembler::new(entry);
        build(&mut a);
        let image = a.finish().expect("assembles");
        let mut mem = Memory::new();
        mem.write_bytes(u64::from(entry), &image);
        mem
    }

    fn all_normal(_: SiteId, _: SiteAccess) -> SitePlan {
        SitePlan::Normal
    }

    const BASE: u64 = crate::regmap::CODE_CACHE_ADDR;

    #[test]
    fn translates_straight_line_block() {
        let mem = assemble_at(0x40_0000, |a| {
            a.mov_ri(Reg32::Eax, 5);
            a.mov_rr(Reg32::Ebx, Reg32::Eax);
            a.hlt();
        });
        let tb = translate_block(
            &mem,
            0x40_0000,
            BASE,
            64,
            &mut all_normal,
            DispatchOpts::default(),
        )
        .expect("translates");
        assert_eq!(tb.guest_insn_count, 3);
        assert!(tb.trap_sites.is_empty());
        assert!(tb.exits.is_empty()); // hlt is not a chainable exit
        assert!(!tb.words.is_empty());
    }

    #[test]
    fn plan_callback_sees_each_site_in_order() {
        let mem = assemble_at(0x40_0000, |a| {
            a.load(Width::W4, Ext::Zero, Reg32::Eax, MemRef::abs(0x1000));
            a.alu_mr(AluOp::Add, MemRef::abs(0x2000), Reg32::Eax); // RMW: 2 sites
            a.hlt();
        });
        let mut seen = Vec::new();
        let mut plan = |site: SiteId, acc: SiteAccess| {
            seen.push((site, acc.is_store));
            SitePlan::Normal
        };
        let tb = translate_block(
            &mem,
            0x40_0000,
            BASE,
            64,
            &mut plan,
            DispatchOpts::default(),
        )
        .unwrap();
        assert_eq!(seen.len(), 3);
        assert_eq!(seen[0].0.slot, 0);
        assert!(!seen[0].1);
        assert_eq!(seen[1].0.slot, 0);
        assert!(!seen[1].1);
        assert_eq!(seen[2].0.slot, 1);
        assert!(seen[2].1);
        assert_eq!(tb.trap_sites.len(), 3);
    }

    #[test]
    fn sequence_plan_has_no_trap_sites() {
        let mem = assemble_at(0x40_0000, |a| {
            a.load(Width::W4, Ext::Zero, Reg32::Eax, MemRef::abs(0x1002));
            a.hlt();
        });
        let mut plan = |_: SiteId, _: SiteAccess| SitePlan::Sequence;
        let tb = translate_block(
            &mem,
            0x40_0000,
            BASE,
            64,
            &mut plan,
            DispatchOpts::default(),
        )
        .unwrap();
        assert!(tb.trap_sites.is_empty());
        // Sequence is longer than a plain load.
        let mut plan2 = |_: SiteId, _: SiteAccess| SitePlan::Normal;
        let tb2 = translate_block(
            &mem,
            0x40_0000,
            BASE,
            64,
            &mut plan2,
            DispatchOpts::default(),
        )
        .unwrap();
        assert!(tb.words.len() > tb2.words.len());
    }

    #[test]
    fn multiversion_emits_both_paths() {
        let mem = assemble_at(0x40_0000, |a| {
            a.load(
                Width::W4,
                Ext::Zero,
                Reg32::Eax,
                MemRef::base_disp(Reg32::Ebx, 0),
            );
            a.hlt();
        });
        let mut plan = |_: SiteId, _: SiteAccess| SitePlan::MultiVersion;
        let tb = translate_block(
            &mem,
            0x40_0000,
            BASE,
            64,
            &mut plan,
            DispatchOpts::default(),
        )
        .unwrap();
        let mut plan2 = |_: SiteId, _: SiteAccess| SitePlan::Sequence;
        let tb_seq = translate_block(
            &mem,
            0x40_0000,
            BASE,
            64,
            &mut plan2,
            DispatchOpts::default(),
        )
        .unwrap();
        // Multi-version contains the sequence *and* the check + plain path.
        assert!(tb.words.len() > tb_seq.words.len());
        assert!(tb.trap_sites.is_empty(), "guarded plain path cannot trap");
    }

    #[test]
    fn jcc_without_setter_is_rejected() {
        let entry = 0x40_0000u32;
        // Hand-build: a block that *starts* with jcc (flags from elsewhere).
        let jcc = encode_to_vec(
            &Insn::Jcc {
                cond: Cond::E,
                target: entry,
            },
            entry,
        )
        .unwrap();
        let mut mem = Memory::new();
        mem.write_bytes(u64::from(entry), &jcc);
        let err = translate_block(
            &mem,
            entry,
            BASE,
            64,
            &mut all_normal,
            DispatchOpts::default(),
        )
        .unwrap_err();
        assert_eq!(err, TranslateError::FlagsCrossBlock { pc: entry });
    }

    #[test]
    fn decode_error_is_reported() {
        let mut mem = Memory::new();
        mem.write_bytes(0x40_0000, &[0xCC]);
        let err = translate_block(
            &mem,
            0x40_0000,
            BASE,
            64,
            &mut all_normal,
            DispatchOpts::default(),
        )
        .unwrap_err();
        assert!(matches!(err, TranslateError::Decode { pc: 0x40_0000, .. }));
    }

    #[test]
    fn jcc_records_two_chainable_exits() {
        let mem = assemble_at(0x40_0000, |a| {
            a.alu_ri(AluOp::Sub, Reg32::Ecx, 1);
            let top = a.new_label();
            a.bind(top); // degenerate: jcc to next insn
            a.jcc(Cond::Ne, top);
        });
        let tb = translate_block(
            &mem,
            0x40_0000,
            BASE,
            64,
            &mut all_normal,
            DispatchOpts::default(),
        )
        .unwrap();
        assert_eq!(tb.exits.len(), 2);
        // Exit targets: fallthrough and the branch target.
        let targets: Vec<u32> = tb.exits.iter().map(|e| e.target).collect();
        assert!(targets.contains(&tb.guest_end));
    }

    #[test]
    fn max_insns_cuts_block_with_fallthrough_exit() {
        let mem = assemble_at(0x40_0000, |a| {
            for _ in 0..10 {
                a.nop();
            }
            a.hlt();
        });
        let tb = translate_block(
            &mem,
            0x40_0000,
            BASE,
            4,
            &mut all_normal,
            DispatchOpts::default(),
        )
        .unwrap();
        assert_eq!(tb.guest_insn_count, 4);
        assert_eq!(tb.exits.len(), 1);
        assert_eq!(tb.exits[0].target, 0x40_0004);
    }

    #[test]
    fn dead_flags_cost_nothing() {
        // Two versions: flags consumed vs not.
        let mem_dead = assemble_at(0x40_0000, |a| {
            a.alu_ri(AluOp::Add, Reg32::Eax, 1);
            a.hlt();
        });
        let mem_live = assemble_at(0x40_0000, |a| {
            a.alu_ri(AluOp::Add, Reg32::Eax, 1);
            let l = a.here_label();
            a.jcc(Cond::Ne, l); // consumes flags (degenerate self-target)
        });
        let dead = translate_block(
            &mem_dead,
            0x40_0000,
            BASE,
            1,
            &mut all_normal,
            DispatchOpts::default(),
        )
        .unwrap();
        let live = translate_block(
            &mem_live,
            0x40_0000,
            BASE,
            64,
            &mut all_normal,
            DispatchOpts::default(),
        )
        .unwrap();
        // Dead add with a small immediate is a single addl-literal… plus the
        // fallthrough exit stub.
        assert!(dead.words.len() < live.words.len());
    }

    #[test]
    fn ret_emits_ibtc_probe_and_records_indirect_exit() {
        let mem = assemble_at(0x40_0000, |a| {
            a.ret();
        });
        let plain = translate_block(
            &mem,
            0x40_0000,
            BASE,
            64,
            &mut all_normal,
            DispatchOpts::default(),
        )
        .unwrap();
        assert!(plain.indirect_exits.is_empty());
        let ibtc_only = DispatchOpts {
            ibtc: true,
            ..DispatchOpts::default()
        };
        let probed =
            translate_block(&mem, 0x40_0000, BASE, 64, &mut all_normal, ibtc_only).unwrap();
        assert_eq!(probed.indirect_exits.len(), 1);
        assert!(probed.words.len() > plain.words.len(), "probe adds code");
        // The recorded pal word sits inside the block's host range.
        let pal = probed.indirect_exits[0];
        assert!(pal >= BASE && pal < BASE + 4 * probed.words.len() as u64);
        // Adding the shadow return stack lengthens the exit further.
        let full = DispatchOpts {
            ibtc: true,
            shadow_ras: true,
            ..DispatchOpts::default()
        };
        let ras = translate_block(&mem, 0x40_0000, BASE, 64, &mut all_normal, full).unwrap();
        assert!(ras.words.len() > probed.words.len());
    }

    #[test]
    fn call_pushes_ras_only_with_shadow_ras() {
        let mem = assemble_at(0x40_0000, |a| {
            let callee = a.new_label();
            a.call(callee);
            a.hlt();
            a.bind(callee);
            a.ret();
        });
        let full = DispatchOpts {
            ibtc: true,
            shadow_ras: true,
            ..DispatchOpts::default()
        };
        let ibtc_only = DispatchOpts {
            ibtc: true,
            ..DispatchOpts::default()
        };
        let with_ras = translate_block(&mem, 0x40_0000, BASE, 64, &mut all_normal, full).unwrap();
        let without =
            translate_block(&mem, 0x40_0000, BASE, 64, &mut all_normal, ibtc_only).unwrap();
        assert!(with_ras.words.len() > without.words.len());
        // The constant-target exit stays chainable either way.
        assert_eq!(with_ras.exits.len(), 1);
        assert_eq!(with_ras.exits[0].target, with_ras.guest_end + 1); // past hlt
        assert!(with_ras.indirect_exits.is_empty());
    }

    #[test]
    fn count_retired_prepends_one_word() {
        let mem = assemble_at(0x40_0000, |a| {
            a.nop();
            a.hlt();
        });
        let base_tb = translate_block(
            &mem,
            0x40_0000,
            BASE,
            64,
            &mut all_normal,
            DispatchOpts::default(),
        )
        .unwrap();
        let counted = DispatchOpts {
            count_retired: true,
            ..DispatchOpts::default()
        };
        let tb = translate_block(&mem, 0x40_0000, BASE, 64, &mut all_normal, counted).unwrap();
        assert_eq!(tb.words.len(), base_tb.words.len() + 1);
        // insn_starts shift past the counter word.
        assert_eq!(tb.insn_starts[0], (0x40_0000, 1));
    }

    #[test]
    fn dispatch_off_is_byte_identical() {
        // The default opts must not perturb emission at all — the paper's
        // experiment tables rely on it.
        let mem = assemble_at(0x40_0000, |a| {
            a.mov_ri(Reg32::Eax, 7);
            a.push(Reg32::Eax);
            a.pop(Reg32::Ebx);
            a.hlt();
        });
        let a1 = translate_block(
            &mem,
            0x40_0000,
            BASE,
            64,
            &mut all_normal,
            DispatchOpts::default(),
        )
        .unwrap();
        let a2 = translate_block(
            &mem,
            0x40_0000,
            BASE,
            64,
            &mut all_normal,
            DispatchOpts {
                ibtc: false,
                shadow_ras: true,
                count_retired: false,
            },
        )
        .unwrap();
        assert_eq!(a1.words, a2.words, "shadow_ras alone is inert");
    }

    #[test]
    fn guest_pcs_recorded() {
        let mem = assemble_at(0x40_0000, |a| {
            a.mov_ri(Reg32::Eax, 1); // 5 bytes
            a.nop(); // 1 byte
            a.hlt();
        });
        let tb = translate_block(
            &mem,
            0x40_0000,
            BASE,
            64,
            &mut all_normal,
            DispatchOpts::default(),
        )
        .unwrap();
        assert_eq!(tb.guest_pcs, vec![0x40_0000, 0x40_0005, 0x40_0006]);
        assert_eq!(tb.guest_end, 0x40_0007);
    }
}
