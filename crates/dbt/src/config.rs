//! DBT configuration: strategy selection and tuning knobs (the paper's
//! Table II).

use crate::profile::StaticProfile;
use crate::shared::SharedCodeCache;
use bridge_metrics::Registry;
pub use bridge_trace::{SpanConfig, TraceConfig, WatchConfig};
use std::sync::Arc;

/// The MDA handling mechanism under evaluation (the paper's §III–IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MdaStrategy {
    /// QEMU-style: every non-byte memory operation becomes the MDA code
    /// sequence (§III-A). Never traps; pays the sequence everywhere.
    Direct,
    /// FX!32-style: a training run's profile decides which sites get the
    /// sequence (§III-B). Requires [`DbtConfig::static_profile`]. Sites the
    /// training run missed trap on every dynamic MDA and are fixed up in
    /// software by the OS handler.
    StaticProfiling,
    /// IA-32 EL-style: phase-1 profiling decides (§III-C). Sites that never
    /// misaligned during the profiling window trap on every dynamic MDA.
    DynamicProfiling,
    /// The paper's proposed mechanism (§IV): translate everything as
    /// aligned; on the first trap at a site, patch it into a branch to an
    /// MDA-sequence stub in the code cache. Optionally rearrange code to
    /// restore locality ([`DbtConfig::rearrange`]).
    ExceptionHandling,
    /// Dynamic Profiling + Exception Handling (§IV-B): phase-1 profiling
    /// catches the early sites at translation time; the exception handler
    /// catches the rest. Supports [`DbtConfig::retranslate`] (§IV-C) and
    /// [`DbtConfig::multiversion`] (§IV-D).
    Dpeh,
}

impl MdaStrategy {
    /// All five mechanisms, in the paper's presentation order.
    pub const ALL: [MdaStrategy; 5] = [
        MdaStrategy::Direct,
        MdaStrategy::StaticProfiling,
        MdaStrategy::DynamicProfiling,
        MdaStrategy::ExceptionHandling,
        MdaStrategy::Dpeh,
    ];

    /// Human-readable name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            MdaStrategy::Direct => "Direct Method",
            MdaStrategy::StaticProfiling => "Static Profiling",
            MdaStrategy::DynamicProfiling => "Dynamic Profiling",
            MdaStrategy::ExceptionHandling => "Exception Handling",
            MdaStrategy::Dpeh => "DPEH",
        }
    }

    /// Short machine-friendly slug (CLI flags, span scopes, flame
    /// frames) — the same spellings `trace_report --strategy` accepts.
    pub fn slug(self) -> &'static str {
        match self {
            MdaStrategy::Direct => "direct",
            MdaStrategy::StaticProfiling => "static",
            MdaStrategy::DynamicProfiling => "dynamic",
            MdaStrategy::ExceptionHandling => "eh",
            MdaStrategy::Dpeh => "dpeh",
        }
    }
}

impl std::fmt::Display for MdaStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Full engine configuration.
#[derive(Debug, Clone)]
pub struct DbtConfig {
    /// The mechanism under evaluation.
    pub strategy: MdaStrategy,
    /// Heating threshold: a block is translated after this many
    /// interpretations (the paper sweeps 10–5000 in Figure 10; 50 is the
    /// balance point).
    pub hot_threshold: u64,
    /// Training-run profile for [`MdaStrategy::StaticProfiling`]. Held
    /// behind an [`Arc`] so a multi-guest service can build the profile
    /// once and hand every guest the same immutable artifact by reference
    /// (FX!32's database model); single-guest callers pass an owned
    /// profile and never notice.
    pub static_profile: Option<Arc<StaticProfile>>,
    /// Exception handling: reposition MDA code inline (retranslating the
    /// block) instead of branching to a distant stub (§IV-A, Figure 6/11).
    pub rearrange: bool,
    /// DPEH: invalidate and retranslate a block once
    /// [`DbtConfig::retranslate_threshold`] traps have hit it (§IV-C,
    /// Figure 13).
    pub retranslate: bool,
    /// Trap count per block that triggers retranslation (the paper uses 4).
    pub retranslate_threshold: u32,
    /// Cap on retranslations per block, to bound thrashing on adversarial
    /// phase behaviour (not in the paper; documented in DESIGN.md).
    pub max_retranslations: u32,
    /// DPEH: emit alignment-checked two-version code for sites whose
    /// profile shows both aligned and misaligned executions (§IV-D,
    /// Figure 14).
    pub multiversion: bool,
    /// Minimum samples in each class before a site is considered mixed.
    pub multiversion_min_samples: u64,
    /// DPEH: emit the paper's Figure 8 "truly adaptive" code instead of
    /// plain MDA sequences — an alignment-checked sequence that counts
    /// consecutive aligned executions and asks the monitor to revert the
    /// site to a plain access once the streak reaches
    /// [`DbtConfig::reversion_threshold`]. The paper describes this method
    /// in §IV-D and argues it is not worth its overhead; this option exists
    /// to measure that claim.
    pub adaptive_reversion: bool,
    /// Consecutive aligned executions before an adaptive site reverts
    /// (Figure 8 uses 1000; must fit an Alpha 8-bit operate literal).
    pub reversion_threshold: u8,
    /// Link translated blocks directly (branch chaining). On by default,
    /// as in DigitalBridge.
    pub chaining: bool,
    /// In-code-cache dispatch: emit an inline IBTC probe at every
    /// `ret`/computed-target exit so translated→translated transfers stay
    /// inside the code cache, and backpatch exit stubs lazily the first
    /// time the monitor sees the target translated. Off by default so the
    /// paper's experiments reproduce byte-identically (see DESIGN.md
    /// "Dispatch").
    pub in_cache_dispatch: bool,
    /// With [`DbtConfig::in_cache_dispatch`]: also push a shadow return
    /// stack entry on translated `call` and pop it on `ret`, falling back
    /// to the IBTC probe on tag mismatch. No effect unless
    /// `in_cache_dispatch` is on.
    pub shadow_ras: bool,
    /// Emit a retired-guest-instruction counter increment at every block
    /// entry, so [`RunReport::guest_insns_retired`] is exact. Off by
    /// default (one extra host instruction per block).
    ///
    /// [`RunReport::guest_insns_retired`]: crate::report::RunReport::guest_insns_retired
    pub count_retired: bool,
    /// Structured tracing ([`bridge_trace`]): `Some` attaches an enabled
    /// [`Tracer`](bridge_trace::Tracer) recording per-site telemetry, phase
    /// timelines and a bounded event ring, read back afterwards via
    /// [`Dbt::trace_snapshot`](crate::Dbt::trace_snapshot). `None` (the
    /// default) installs the no-op tracer; tracing never charges simulated
    /// cycles, so results are identical either way.
    pub trace: Option<TraceConfig>,
    /// Hierarchical span recording ([`bridge_trace::span`]): `Some`
    /// attaches an enabled
    /// [`SpanRecorder`](bridge_trace::SpanRecorder) that measures
    /// translate / execute / trap-fixup / image-restore intervals per TB
    /// under a per-run root span, read back afterwards via
    /// [`Dbt::span_snapshot`](crate::Dbt::span_snapshot). Spans never
    /// charge simulated cycles — results are byte-identical with or
    /// without them (asserted by the perf harness span leg).
    pub spans: Option<SpanConfig>,
    /// Continuous per-site re-divergence watch
    /// ([`bridge_trace::watch`]): `Some` attaches a
    /// [`SiteWatch`](bridge_trace::SiteWatch) fed from the engine's
    /// event stream and advanced by simulated cycles, read back
    /// afterwards via [`Dbt::watch_snapshot`](crate::Dbt::watch_snapshot)
    /// or [`Dbt::take_watch`](crate::Dbt::take_watch). Watching never
    /// charges simulated cycles — results are byte-identical with or
    /// without it (asserted across all strategies by the perf harness
    /// watch leg).
    pub watch: Option<WatchConfig>,
    /// Shared metrics registry ([`bridge_metrics`]): `Some` makes the
    /// engine bump host-side counters (traps, patches, fixups, flushes,
    /// translations) on its cold paths. Like tracing, metrics never charge
    /// simulated cycles — results are identical with or without them. The
    /// `Arc` lets a multi-guest service aggregate every engine into one
    /// registry.
    pub metrics: Option<Arc<Registry>>,
    /// Fleet-shared translation cache ([`SharedCodeCache`]): `Some`
    /// makes this engine one vCPU executor over a shared read-mostly
    /// translation cache — installs are served from fleet entries when a
    /// valid one exists (translation happens once per variant fleet-wide)
    /// and guest-code patches publish to every attached engine. The
    /// engine still pays the full *simulated* translation charge on every
    /// install, so results are byte-identical to a private-cache run; the
    /// saving is host-side translation work. The cache's capacity must
    /// not exceed [`DbtConfig::code_bytes`]. `None` (the default) keeps
    /// the cache fully private.
    pub shared_cache: Option<Arc<SharedCodeCache>>,
    /// Translate every statically reachable block before execution starts,
    /// as FX!32's offline translator did (Figure 3's pre-execution phase).
    /// Most useful with [`MdaStrategy::StaticProfiling`].
    pub pretranslate: bool,
    /// Bytes reserved for translated blocks.
    pub code_bytes: u64,
    /// Bytes reserved for exception-handler stubs.
    pub stub_bytes: u64,
    /// Maximum guest instructions translated into one block.
    pub max_block_insns: usize,
}

impl DbtConfig {
    /// Configuration with the paper's defaults for a given strategy
    /// (threshold 50, retranslation threshold 4, chaining on, options off).
    pub fn new(strategy: MdaStrategy) -> DbtConfig {
        DbtConfig {
            strategy,
            hot_threshold: 50,
            static_profile: None,
            rearrange: false,
            retranslate: false,
            retranslate_threshold: 4,
            max_retranslations: 8,
            multiversion: false,
            multiversion_min_samples: 2,
            adaptive_reversion: false,
            reversion_threshold: 200,
            chaining: true,
            in_cache_dispatch: false,
            shadow_ras: true,
            count_retired: false,
            trace: None,
            spans: None,
            watch: None,
            metrics: None,
            shared_cache: None,
            pretranslate: false,
            code_bytes: 2 * 1024 * 1024,
            stub_bytes: 1024 * 1024,
            max_block_insns: 64,
        }
    }

    /// Builder-style: set the heating threshold.
    pub fn with_threshold(mut self, threshold: u64) -> DbtConfig {
        self.hot_threshold = threshold;
        self
    }

    /// Builder-style: supply a training profile (implies nothing about the
    /// strategy; only [`MdaStrategy::StaticProfiling`] consults it).
    /// Accepts an owned [`StaticProfile`] or a shared `Arc<StaticProfile>`,
    /// so single-guest callers and the sharded service use the same entry
    /// point.
    pub fn with_static_profile(mut self, profile: impl Into<Arc<StaticProfile>>) -> DbtConfig {
        self.static_profile = Some(profile.into());
        self
    }

    /// Builder-style: enable code rearrangement.
    pub fn with_rearrange(mut self, on: bool) -> DbtConfig {
        self.rearrange = on;
        self
    }

    /// Builder-style: enable retranslation.
    pub fn with_retranslate(mut self, on: bool) -> DbtConfig {
        self.retranslate = on;
        self
    }

    /// Builder-style: enable multi-version code.
    pub fn with_multiversion(mut self, on: bool) -> DbtConfig {
        self.multiversion = on;
        self
    }

    /// Builder-style: enable Figure 8 adaptive reversion.
    pub fn with_adaptive_reversion(mut self, on: bool) -> DbtConfig {
        self.adaptive_reversion = on;
        self
    }

    /// Builder-style: enable or disable block chaining.
    pub fn with_chaining(mut self, on: bool) -> DbtConfig {
        self.chaining = on;
        self
    }

    /// Builder-style: enable FX!32-style offline pretranslation.
    pub fn with_pretranslate(mut self, on: bool) -> DbtConfig {
        self.pretranslate = on;
        self
    }

    /// Builder-style: enable in-code-cache dispatch (IBTC + lazy chaining).
    pub fn with_in_cache_dispatch(mut self, on: bool) -> DbtConfig {
        self.in_cache_dispatch = on;
        self
    }

    /// Builder-style: enable or disable the shadow return stack.
    pub fn with_shadow_ras(mut self, on: bool) -> DbtConfig {
        self.shadow_ras = on;
        self
    }

    /// Builder-style: enable the exact retired-instruction counter.
    pub fn with_count_retired(mut self, on: bool) -> DbtConfig {
        self.count_retired = on;
        self
    }

    /// Builder-style: attach structured tracing with the given bounds.
    pub fn with_trace(mut self, trace: TraceConfig) -> DbtConfig {
        self.trace = Some(trace);
        self
    }

    /// Builder-style: attach hierarchical span recording with the given
    /// bounds.
    pub fn with_spans(mut self, spans: SpanConfig) -> DbtConfig {
        self.spans = Some(spans);
        self
    }

    /// Builder-style: attach a continuous per-site re-divergence watch
    /// with the given rolling-window parameters.
    pub fn with_watch(mut self, watch: WatchConfig) -> DbtConfig {
        self.watch = Some(watch);
        self
    }

    /// Builder-style: attach a shared metrics registry the engine bumps
    /// its event counters into.
    pub fn with_metrics(mut self, registry: Arc<Registry>) -> DbtConfig {
        self.metrics = Some(registry);
        self
    }

    /// Builder-style: attach a fleet-shared translation cache, making
    /// this engine one vCPU executor over it.
    pub fn with_shared_cache(mut self, cache: Arc<SharedCodeCache>) -> DbtConfig {
        self.shared_cache = Some(cache);
        self
    }
}

impl Default for DbtConfig {
    fn default() -> DbtConfig {
        DbtConfig::new(MdaStrategy::Dpeh)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = DbtConfig::new(MdaStrategy::Dpeh);
        assert_eq!(c.hot_threshold, 50);
        assert_eq!(c.retranslate_threshold, 4);
        assert!(c.chaining);
        assert!(!c.rearrange && !c.retranslate && !c.multiversion);
        // In-cache dispatch is an opt-in: the paper's tables must
        // reproduce byte-identically with the defaults.
        assert!(!c.in_cache_dispatch);
        assert!(!c.count_retired);
        assert!(c.trace.is_none(), "tracing is opt-in");
        assert!(c.spans.is_none(), "span recording is opt-in");
        assert!(c.watch.is_none(), "re-divergence watch is opt-in");
        assert!(c.metrics.is_none(), "metrics are opt-in");
        assert!(c.shared_cache.is_none(), "shared cache is opt-in");
    }

    #[test]
    fn span_builder_attaches_config() {
        let c = DbtConfig::new(MdaStrategy::ExceptionHandling)
            .with_spans(SpanConfig::default().with_ring_capacity(128));
        assert_eq!(c.spans.as_ref().unwrap().ring_capacity, 128);
        assert!(
            !c.spans.as_ref().unwrap().wall_clock,
            "engine spans stay pure"
        );
    }

    #[test]
    fn strategy_slugs_are_cli_spellings() {
        let slugs: Vec<&str> = MdaStrategy::ALL.iter().map(|s| s.slug()).collect();
        assert_eq!(slugs, ["direct", "static", "dynamic", "eh", "dpeh"]);
    }

    #[test]
    fn shared_cache_builder_attaches() {
        let sh = SharedCodeCache::new(1 << 20);
        let c = DbtConfig::new(MdaStrategy::Dpeh).with_shared_cache(Arc::clone(&sh));
        assert!(Arc::ptr_eq(c.shared_cache.as_ref().unwrap(), &sh));
    }

    #[test]
    fn metrics_builder_attaches_registry() {
        let registry = Arc::new(Registry::new());
        let c = DbtConfig::new(MdaStrategy::Dpeh).with_metrics(Arc::clone(&registry));
        c.metrics.as_ref().unwrap().counter("probe").inc();
        assert_eq!(registry.counter("probe").get(), 1, "same shared registry");
    }

    #[test]
    fn trace_builder_attaches_config() {
        let c = DbtConfig::new(MdaStrategy::ExceptionHandling)
            .with_trace(TraceConfig::default().with_bucket_cycles(1 << 12));
        assert_eq!(c.trace.as_ref().unwrap().bucket_cycles, 1 << 12);
    }

    #[test]
    fn dispatch_builders_chain() {
        let c = DbtConfig::new(MdaStrategy::Dpeh)
            .with_in_cache_dispatch(true)
            .with_shadow_ras(false)
            .with_count_retired(true);
        assert!(c.in_cache_dispatch);
        assert!(!c.shadow_ras);
        assert!(c.count_retired);
    }

    #[test]
    fn builder_chains() {
        let c = DbtConfig::new(MdaStrategy::ExceptionHandling)
            .with_threshold(500)
            .with_rearrange(true)
            .with_chaining(false);
        assert_eq!(c.hot_threshold, 500);
        assert!(c.rearrange);
        assert!(!c.chaining);
    }

    #[test]
    fn strategy_names() {
        assert_eq!(MdaStrategy::ALL.len(), 5);
        for s in MdaStrategy::ALL {
            assert!(!s.name().is_empty());
        }
        assert_eq!(MdaStrategy::Dpeh.to_string(), "DPEH");
    }
}
