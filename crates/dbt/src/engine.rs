//! The DBT engine: dispatch loop, guest-state synchronization, strategy
//! dispatch on misalignment traps, block chaining, retranslation and code
//! rearrangement.

use crate::codecache::{Block, CodeCache};
use crate::config::{DbtConfig, MdaStrategy};
use crate::exception::{self, HandlerError};
use crate::interp::{self, InterpError};
use crate::profile::{Profile, SiteId, StaticProfile};
use crate::regmap::{
    host_gpr, ibtc_slot_addr, ibtc_tag, CODE_CACHE_ADDR, DISPATCH_BASE_ADDR, DISPATCH_BASE_REG,
    EXIT_PC_REG, FLAG_A, FLAG_B, FLAG_KIND_ADD, FLAG_KIND_DIRECT, FLAG_KIND_LOGIC, FLAG_KIND_REG,
    FLAG_KIND_SHIFT, FLAG_KIND_SUB, IBTC_BYTES, IBTC_HIT_CTR, MMX_IN_REGS, MMX_REGS, RAS_BYTES,
    RAS_ENTRIES, RAS_ENTRY_BYTES, RAS_HIT_CTR, RETIRE_CTR, STATE_BASE_REG, STATE_BLOCK_ADDR,
};
use crate::report::RunReport;
use crate::shared::{PlanVector, SharedBlock, SharedCodeCache};
use crate::translator::{self, DispatchOpts, SiteAccess, SitePlan, TranslatedBlock};
use bridge_alpha::builder::branch_disp;
use bridge_alpha::encode::encode as encode_alpha;
use bridge_alpha::insn::{BrOp, Insn as AInsn};
use bridge_alpha::reg::Reg;
use bridge_metrics::{Counter, Gauge, Registry};
use bridge_sim::cost::CostModel;
use bridge_sim::cpu::Machine;
use bridge_sim::trap::{Exit, MachineFault, UnalignedInfo};
use bridge_trace::{SiteWatch, SpanId, SpanKind, SpanRecorder, TraceEvent, TraceSink, Tracer};
use bridge_x86::insn::Width;
use bridge_x86::reg::Reg32;
use bridge_x86::state::CpuState;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

/// Fuel units charged per interpreted guest instruction (an interpreted
/// instruction is roughly this many host instructions of work).
const INTERP_FUEL_PER_INSN: u64 = 8;

/// Entries in the direct-mapped next-TB dispatch hint (QEMU's
/// `tb_jmp_cache` shape): one `(guest pc, host entry)` pair per slot,
/// probed before the block-table lookup on every monitor dispatch.
const HINT_ENTRIES: usize = 256;

/// A guest program image.
#[derive(Debug, Clone)]
pub struct GuestProgram {
    base: u32,
    entry: u32,
    image: Vec<u8>,
}

impl GuestProgram {
    /// Program loaded at `base` with entry at its first byte.
    pub fn new(base: u32, image: Vec<u8>) -> GuestProgram {
        GuestProgram {
            base,
            entry: base,
            image,
        }
    }

    /// Overrides the entry point.
    pub fn with_entry(mut self, entry: u32) -> GuestProgram {
        self.entry = entry;
        self
    }

    /// Load address.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Entry point.
    pub fn entry(&self) -> u32 {
        self.entry
    }

    /// Image bytes.
    pub fn image(&self) -> &[u8] {
        &self.image
    }
}

/// Engine failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbtError {
    /// `run` called before `load`.
    NotLoaded,
    /// The fuel budget ran out before the guest executed `hlt`.
    FuelExhausted,
    /// The host machine faulted (a translator or engine bug).
    Machine(MachineFault),
    /// The interpreter hit undecodable guest bytes.
    Interp(InterpError),
    /// The exception handler failed (an engine bug).
    Handler(HandlerError),
    /// An internal invariant was violated.
    Internal(&'static str),
}

impl fmt::Display for DbtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbtError::NotLoaded => write!(f, "no guest program loaded"),
            DbtError::FuelExhausted => write!(f, "fuel exhausted before guest halt"),
            DbtError::Machine(m) => write!(f, "host machine fault: {m}"),
            DbtError::Interp(e) => write!(f, "interpreter error: {e}"),
            DbtError::Handler(e) => write!(f, "exception handler error: {e}"),
            DbtError::Internal(s) => write!(f, "internal invariant violated: {s}"),
        }
    }
}

impl std::error::Error for DbtError {}

impl From<InterpError> for DbtError {
    fn from(e: InterpError) -> DbtError {
        DbtError::Interp(e)
    }
}

impl From<HandlerError> for DbtError {
    fn from(e: HandlerError) -> DbtError {
        DbtError::Handler(e)
    }
}

/// How to resume after the misalignment handler ran.
enum Resume {
    /// Continue on the host machine; optionally redirect to a host address.
    Machine(Option<u64>),
    /// Return to the dispatcher and interpret from this guest PC.
    Interp(u32),
}

/// Pre-resolved counter handles into a shared [`Registry`], so the
/// engine's bump sites skip the registry's name map entirely. All bumps
/// happen on cold paths (trap handling, patching, translation, flushes)
/// and never charge simulated cycles — a metered run's report is
/// byte-identical to an unmetered one.
struct EngineMetrics {
    traps: Arc<Counter>,
    os_fixups: Arc<Counter>,
    patches: Arc<Counter>,
    flushes: Arc<Counter>,
    /// Actual translations performed by this engine. With a shared cache
    /// attached, installs served from the cache do NOT count here, so the
    /// fleet-wide value measures real translation work (the reduction the
    /// perf harness asserts on); [`RunReport::blocks_translated`] keeps
    /// counting every install.
    translations: Arc<Counter>,
    hint_hits: Arc<Counter>,
    hint_misses: Arc<Counter>,
    cc_hits: Arc<Counter>,
    cc_misses: Arc<Counter>,
    cc_evictions: Arc<Counter>,
    cc_bytes: Arc<Gauge>,
    /// Installs served by blocks restored from a persistent AOT image
    /// (the warm-start reuse the artifact pipeline exists to create).
    image_hits: Arc<Counter>,
}

impl EngineMetrics {
    fn new(r: &Registry) -> EngineMetrics {
        EngineMetrics {
            traps: r.counter("dbt.traps"),
            os_fixups: r.counter("dbt.os_fixups"),
            patches: r.counter("dbt.patches"),
            flushes: r.counter("dbt.cache_flushes"),
            translations: r.counter("dbt.blocks_translated"),
            hint_hits: r.counter("dispatch.hint_hits"),
            hint_misses: r.counter("dispatch.hint_misses"),
            cc_hits: r.counter("dbt.code_cache.hits"),
            cc_misses: r.counter("dbt.code_cache.misses"),
            cc_evictions: r.counter("dbt.code_cache.evictions"),
            cc_bytes: r.gauge("dbt.code_cache.bytes"),
            image_hits: r.counter("dbt.image.block_hits"),
        }
    }
}

/// The dynamic binary translator.
pub struct Dbt {
    cfg: DbtConfig,
    machine: Machine,
    state: CpuState,
    profile: Profile,
    cache: CodeCache,
    /// host block start → guest pc, for trap attribution.
    host_blocks: BTreeMap<u64, u32>,
    interp_only: HashSet<u32>,
    /// Sites the exception handler has converted to MDA sequences; they
    /// stay sequences across retranslations until explicitly reverted.
    forced_sequence: HashSet<SiteId>,
    /// Sites the Figure 8 adaptive code has reverted to plain accesses.
    forced_normal: HashSet<SiteId>,
    decode_cache: interp::DecodeCache,
    loaded: bool,
    guest_insns_interpreted: u64,
    blocks_translated: u64,
    retranslations: u64,
    patched_sites: u64,
    rearrangements: u64,
    reversions: u64,
    os_fixups: u64,
    chains: u64,
    monitor_exits: u64,
    ibtc_misses: u64,
    /// Last observed values of the in-machine hit counter registers, so
    /// each `run_machine` round can charge exactly the new hits.
    seen_ibtc_hits: u64,
    seen_ras_hits: u64,
    /// Last observed retired-instruction counter, for the tracer's guest
    /// progress series (only advances with `count_retired`).
    seen_retired: u64,
    /// Structured event recorder; the no-op tracer unless
    /// [`DbtConfig::trace`] is set. Recording never charges simulated
    /// cycles, so traced and untraced runs are identical.
    tracer: Tracer,
    /// Hierarchical span recorder; the no-op recorder unless
    /// [`DbtConfig::spans`] is set. Like the tracer, recording never
    /// charges simulated cycles.
    spans: SpanRecorder,
    /// Continuous per-site re-divergence watch; `None` unless
    /// [`DbtConfig::watch`] is set. Fed from the same event funnel as
    /// the tracer and advanced by simulated cycles at progress points —
    /// pure observation, never charges cycles.
    watch: Option<SiteWatch>,
    /// Counter handles into [`DbtConfig::metrics`], when attached.
    metrics: Option<EngineMetrics>,
    /// The fleet-shared translation cache, when attached
    /// ([`DbtConfig::shared_cache`]); `None` runs fully private.
    shared: Option<Arc<SharedCodeCache>>,
    /// Shared entries this engine has installed locally, for the stale
    /// sweep at each coherence sync.
    shared_installs: HashMap<u32, Arc<SharedBlock>>,
    /// Local (re)translation count per guest PC — the shared-cache
    /// variant key (see [`SharedBlock::variant`]).
    install_counts: HashMap<u32, u32>,
    /// Shared-cache generation at the last sync.
    seen_shared_gen: u64,
    /// Shared guest-patch log entries already applied locally.
    seen_patch_seq: usize,
    /// Direct-mapped next-TB dispatch hint: `(guest pc, host entry)`,
    /// host 0 = empty. A pure host-side memo — hits skip the block-table
    /// lookup but charge exactly the same simulated cycles.
    hint: Vec<(u32, u64)>,
    hint_hits: u64,
    hint_misses: u64,
}

impl Dbt {
    /// Engine with the ES40 cost model and cache hierarchy.
    pub fn new(cfg: DbtConfig) -> Dbt {
        Dbt::with_machine(cfg, Machine::new())
    }

    /// Engine over a custom host machine (cost model, cache configuration).
    pub fn with_machine(cfg: DbtConfig, machine: Machine) -> Dbt {
        let cache = CodeCache::new(CODE_CACHE_ADDR, cfg.code_bytes, cfg.stub_bytes);
        let tracer = match &cfg.trace {
            Some(tc) => Tracer::new(tc),
            None => Tracer::disabled(),
        };
        let spans = match &cfg.spans {
            Some(sc) => {
                let mut s = SpanRecorder::new(sc);
                s.set_scope(cfg.strategy.slug());
                s
            }
            None => SpanRecorder::disabled(),
        };
        let watch = cfg.watch.map(SiteWatch::new);
        let metrics = cfg.metrics.as_deref().map(EngineMetrics::new);
        let shared = cfg.shared_cache.clone();
        if let Some(sh) = &shared {
            assert!(
                sh.capacity() <= cfg.code_bytes,
                "shared cache capacity exceeds the engine's code region \
                 (shared allocations would overlap the stub region)"
            );
        }
        Dbt {
            cfg,
            machine,
            state: CpuState::new(0),
            profile: Profile::new(),
            cache,
            host_blocks: BTreeMap::new(),
            interp_only: HashSet::new(),
            forced_sequence: HashSet::new(),
            forced_normal: HashSet::new(),
            decode_cache: interp::DecodeCache::new(),
            loaded: false,
            guest_insns_interpreted: 0,
            blocks_translated: 0,
            retranslations: 0,
            patched_sites: 0,
            rearrangements: 0,
            reversions: 0,
            os_fixups: 0,
            chains: 0,
            monitor_exits: 0,
            ibtc_misses: 0,
            seen_ibtc_hits: 0,
            seen_ras_hits: 0,
            seen_retired: 0,
            tracer,
            spans,
            watch,
            metrics,
            shared,
            shared_installs: HashMap::new(),
            install_counts: HashMap::new(),
            seen_shared_gen: 0,
            seen_patch_seq: 0,
            hint: vec![(0, 0); HINT_ENTRIES],
            hint_hits: 0,
            hint_misses: 0,
        }
    }

    /// Loads a guest program, resetting guest state.
    pub fn load(&mut self, prog: &GuestProgram) {
        self.machine
            .mem_mut()
            .write_bytes(u64::from(prog.base), prog.image());
        self.state = CpuState::new(prog.entry());
        self.machine.set_reg(STATE_BASE_REG, STATE_BLOCK_ADDR);
        self.machine.set_reg(DISPATCH_BASE_REG, DISPATCH_BASE_ADDR);
        self.loaded = true;
    }

    /// Presets the guest stack pointer.
    pub fn set_stack(&mut self, esp: u32) {
        self.state.set_reg(Reg32::Esp, esp);
    }

    /// Writes guest data memory (arrays the program will access).
    pub fn write_guest_memory(&mut self, addr: u32, bytes: &[u8]) {
        self.machine.mem_mut().write_bytes(u64::from(addr), bytes);
    }

    /// Rewrites guest *code* bytes, keeping every translation structure
    /// coherent: translated blocks overlapping `[addr, addr+len)` are
    /// invalidated (which also unchains incoming links and purges their
    /// IBTC/shadow-return-stack entries), and the interpreter's decode
    /// cache drops the range. The next execution of the region re-decodes
    /// the new bytes.
    ///
    /// With a shared cache attached, the patch is additionally published
    /// fleet-wide: overlapping shared entries are invalidated and every
    /// other executor applies the same byte rewrite to its own guest
    /// memory at its next dispatch (see [`SharedCodeCache`]).
    pub fn write_guest_code(&mut self, addr: u32, bytes: &[u8]) {
        if let Some(sh) = &self.shared {
            let sh = Arc::clone(sh);
            sh.write_guest_code(addr, bytes);
            // The sync applies our own patch (and any earlier unseen
            // ones) locally, in publish order.
            self.sync_shared();
        } else {
            self.apply_guest_code(addr, bytes);
        }
    }

    /// The local half of a guest-code rewrite: invalidate overlapping
    /// translations, write the bytes, drop the decode-cache range.
    fn apply_guest_code(&mut self, addr: u32, bytes: &[u8]) {
        let start = addr;
        let end = addr.wrapping_add(bytes.len() as u32);
        // An x86 instruction decodes at most 16 bytes, so an instruction
        // starting within 16 bytes before the range may overlap it.
        let overlapping: Vec<u32> = self
            .cache
            .iter_blocks()
            .filter(|b| {
                b.guest_pcs
                    .iter()
                    .any(|&p| p < end && p.wrapping_add(16) > start)
            })
            .map(|b| b.guest_pc)
            .collect();
        for pc in overlapping {
            self.invalidate_block(pc, false);
        }
        self.machine.mem_mut().write_bytes(u64::from(addr), bytes);
        self.decode_cache.invalidate_range(start, end);
    }

    /// Resets the guest program counter so a halted program can be re-run
    /// (e.g. after [`Dbt::write_guest_code`]); all translations, profiles
    /// and statistics carry over.
    pub fn restart_at(&mut self, entry: u32) {
        self.state.eip = entry;
    }

    /// The host machine (statistics, memory inspection).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The accumulated profile.
    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    /// The engine configuration.
    pub fn config(&self) -> &DbtConfig {
        &self.cfg
    }

    /// A snapshot of the structured trace, with the run's per-site
    /// execution profile (dynamic executions, misaligned executions)
    /// folded into the telemetry table. `None` unless the engine was
    /// configured with [`DbtConfig::trace`].
    pub fn trace_snapshot(&self) -> Option<Tracer> {
        if !self.tracer.is_enabled() {
            return None;
        }
        let mut t = self.tracer.clone();
        for (site, stats) in self.profile.iter_sites() {
            t.merge_profile_site(site.pc, stats.execs, stats.mdas);
        }
        Some(t)
    }

    /// Records one trace event at the current simulated cycle count. A
    /// single predictable branch when tracing is off. The re-divergence
    /// watch rides the same funnel, so every site-relevant event the
    /// tracer can see, the watch sees too.
    #[inline(always)]
    fn trace(&mut self, event: TraceEvent) {
        let cycles = self.machine.stats().cycles;
        if let Some(w) = &mut self.watch {
            w.observe(cycles, &event);
        }
        self.tracer.record(cycles, event);
    }

    /// Advances the watch's rolling windows to the current simulated
    /// cycle count (no event), so quiet sites converge on time.
    #[inline(always)]
    fn watch_advance(&mut self) {
        if let Some(w) = &mut self.watch {
            w.advance(self.machine.stats().cycles);
        }
    }

    /// A sealed snapshot of the re-divergence watch: rolling windows are
    /// closed (the final partial window counts) and verdicts finalized.
    /// The engine's own watch keeps running — snapshots are cheap reads
    /// for monitoring mid-run. `None` unless the engine was configured
    /// with [`DbtConfig::watch`].
    pub fn watch_snapshot(&self) -> Option<SiteWatch> {
        self.watch.as_ref().map(|w| {
            let mut snap = w.clone();
            snap.seal();
            snap
        })
    }

    /// Takes the watch out of the engine, sealed, leaving `None`
    /// (subsequent runs observe nothing). The clone-free variant of
    /// [`Dbt::watch_snapshot`] for callers done with the engine.
    pub fn take_watch(&mut self) -> Option<SiteWatch> {
        self.watch.take().map(|mut w| {
            w.seal();
            w
        })
    }

    /// A snapshot of the hierarchical span recorder (completed spans,
    /// scope, drop counter). `None` unless the engine was configured with
    /// [`DbtConfig::spans`]. Spans from a run that ended in an error keep
    /// their root open; completed subtrees are still present.
    pub fn span_snapshot(&self) -> Option<SpanRecorder> {
        self.spans.is_enabled().then(|| self.spans.clone())
    }

    /// Takes the span recorder out of the engine, leaving a disabled one
    /// (subsequent runs record nothing). The clone-free variant of
    /// [`Dbt::span_snapshot`] for callers done with the engine — a
    /// profiler harvesting thousands of execute spans per run should not
    /// pay a full ring copy to read them.
    pub fn take_span_recorder(&mut self) -> Option<SpanRecorder> {
        self.spans
            .is_enabled()
            .then(|| std::mem::replace(&mut self.spans, SpanRecorder::disabled()))
    }

    /// Opens a span at the current simulated cycle count.
    #[inline(always)]
    fn span_start(&mut self, kind: SpanKind, guest_pc: Option<u32>) -> SpanId {
        self.spans
            .start(self.machine.stats().cycles, kind, guest_pc)
    }

    /// Closes a span at the current simulated cycle count.
    #[inline(always)]
    fn span_end(&mut self, id: SpanId) {
        self.spans.end(id, self.machine.stats().cycles);
    }

    /// Attaches a streaming trace sink: ring evictions flow to it in
    /// order, so arbitrarily long runs keep a full-fidelity event stream
    /// under the ring's bounded memory. Returns `false` when the engine
    /// is not tracing ([`DbtConfig::trace`] unset). Sink I/O is host-side
    /// only and never charges simulated cycles.
    pub fn attach_trace_sink(&mut self, sink: Box<dyn TraceSink>) -> bool {
        self.tracer.set_sink(sink)
    }

    /// Completes an attached streaming sink: drains the retained ring
    /// tail into it and writes the aggregate footer. `None` when no sink
    /// is attached; see [`Tracer::finish_sink`].
    pub fn finish_trace_sink(&mut self) -> Option<Result<bridge_trace::SinkSummary, String>> {
        self.tracer.finish_sink()
    }

    /// Recovers the bytes of a finished in-memory streaming sink (see
    /// [`Tracer::take_sink_output`]).
    pub fn take_trace_sink_output(&mut self) -> Option<Vec<u8>> {
        self.tracer.take_sink_output()
    }

    /// Iterates over the currently installed translated blocks (for the
    /// [`crate::dump`] listings and diagnostics).
    pub fn code_cache_blocks(&self) -> impl Iterator<Item = &crate::codecache::Block> {
        self.cache.iter_blocks()
    }

    fn state_to_machine(&mut self) {
        for r in Reg32::ALL {
            let v = self.state.reg(r) as i32 as i64 as u64; // canonical sign-extended
            self.machine.set_reg(host_gpr(r), v);
        }
        for (i, hr) in MMX_REGS.iter().enumerate() {
            self.machine.set_reg(*hr, self.state.mm[i]);
        }
        for i in MMX_IN_REGS..8 {
            self.machine
                .mem_mut()
                .write_u64(STATE_BLOCK_ADDR + 8 * i as u64, self.state.mm[i]);
        }
        self.machine.set_reg(STATE_BASE_REG, STATE_BLOCK_ADDR);
        self.machine.set_reg(DISPATCH_BASE_REG, DISPATCH_BASE_ADDR);
        // Pack the interpreter's flags into the lazy-flag registers so they
        // survive translated blocks that set no flags of their own.
        let f = self.state.flags;
        let packed =
            u64::from(f.zf) | u64::from(f.sf) << 1 | u64::from(f.cf) << 2 | u64::from(f.of) << 3;
        self.machine
            .set_reg(FLAG_KIND_REG, u64::from(FLAG_KIND_DIRECT));
        self.machine.set_reg(FLAG_A, packed);
        self.machine.set_reg(FLAG_B, 0);
    }

    fn machine_to_state(&mut self) {
        for r in Reg32::ALL {
            self.state.set_reg(r, self.machine.reg(host_gpr(r)) as u32);
        }
        for (i, hr) in MMX_REGS.iter().enumerate() {
            self.state.mm[i] = self.machine.reg(*hr);
        }
        for i in MMX_IN_REGS..8 {
            self.state.mm[i] = self.machine.mem().read_u64(STATE_BLOCK_ADDR + 8 * i as u64);
        }
        self.state.flags = self.flags_from_machine();
    }

    /// Reconstructs exact EFLAGS from the lazy-flag registers (the kind tag
    /// every live flag setter writes, plus its operand snapshots).
    fn flags_from_machine(&self) -> bridge_x86::state::Flags {
        use bridge_x86::exec::alu;
        use bridge_x86::insn::AluOp;
        use bridge_x86::state::Flags;
        let kind = self.machine.reg(FLAG_KIND_REG) as u8;
        let a = self.machine.reg(FLAG_A) as u32;
        let b = self.machine.reg(FLAG_B) as u32;
        match kind {
            FLAG_KIND_ADD => alu(AluOp::Add, a, b).1,
            FLAG_KIND_SUB => alu(AluOp::Sub, a, b).1,
            FLAG_KIND_LOGIC => Flags {
                zf: a == 0,
                sf: (a as i32) < 0,
                cf: false,
                of: false,
            },
            FLAG_KIND_SHIFT => Flags {
                zf: a == 0,
                sf: (a as i32) < 0,
                cf: b & 1 != 0,
                of: false,
            },
            FLAG_KIND_DIRECT => Flags {
                zf: a & 1 != 0,
                sf: a & 2 != 0,
                cf: a & 4 != 0,
                of: a & 8 != 0,
            },
            _ => Flags::default(), // FLAG_KIND_CLEARED
        }
    }

    /// Runs the loaded program to `hlt`, within a fuel budget (roughly host
    /// instructions; each interpreted guest instruction costs several fuel
    /// units).
    ///
    /// # Errors
    ///
    /// See [`DbtError`]. Programs that do not halt exhaust the fuel.
    pub fn run(&mut self, fuel: u64) -> Result<RunReport, DbtError> {
        if !self.loaded {
            return Err(DbtError::NotLoaded);
        }
        let run_span = self.span_start(SpanKind::Run, Some(self.state.eip));
        if self.cfg.pretranslate && self.blocks_translated == 0 {
            self.pretranslate()?;
        }
        let mut remaining = fuel;
        let mut in_machine = false;
        let mut pc = self.state.eip;

        loop {
            // Shared-cache coherence point: a single atomic load and
            // compare unless another executor evicted or patched.
            self.sync_shared();
            // Next-TB hint first — a hit skips the block-table lookup
            // entirely (same simulated cost; the saving is host work).
            let host = match self.hint_probe(pc) {
                Some(h) => Some(h),
                None => {
                    let found = self.cache.block(pc).map(|b| b.host_addr);
                    if let Some(h) = found {
                        self.hint_fill(pc, h);
                    }
                    found
                }
            };
            if let Some(host_entry) = host {
                if self.cfg.in_cache_dispatch {
                    // Every monitor dispatch seeds the IBTC, so the next
                    // dynamic transfer to this guest PC stays in-cache.
                    self.ibtc_fill(pc, host_entry);
                }
                if !in_machine {
                    self.state_to_machine();
                    in_machine = true;
                }
                self.machine.set_pc(host_entry);
                // One execute span per in-cache segment; trap-fixup spans
                // opened inside `run_machine` nest under it.
                let exec_span = self.span_start(SpanKind::Execute, Some(pc));
                let outcome = self.run_machine(&mut remaining);
                self.span_end(exec_span);
                match outcome? {
                    MachineOutcome::Dispatch(next) => {
                        pc = next;
                    }
                    MachineOutcome::SwitchToInterp(next) => {
                        self.machine_to_state();
                        in_machine = false;
                        pc = next;
                    }
                    MachineOutcome::Halted(final_pc) => {
                        self.machine_to_state();
                        self.state.eip = final_pc;
                        self.span_end(run_span);
                        return Ok(self.build_report());
                    }
                }
            } else {
                if in_machine {
                    self.machine_to_state();
                    in_machine = false;
                }
                self.state.eip = pc;
                let cost = self.machine.cost().clone();
                let out = {
                    // Split borrows: interpreter needs machine memory and
                    // the profile simultaneously.
                    let Dbt {
                        machine,
                        state,
                        profile,
                        decode_cache,
                        ..
                    } = self;
                    interp::interp_block_cached(
                        state,
                        machine.mem_mut(),
                        profile,
                        &cost,
                        decode_cache,
                    )?
                };
                self.machine.charge(out.cycles);
                self.guest_insns_interpreted += out.guest_insns;
                self.tracer
                    .progress(self.machine.stats().cycles, out.guest_insns);
                self.watch_advance();
                let spent = out.guest_insns.saturating_mul(INTERP_FUEL_PER_INSN);
                if spent >= remaining {
                    return Err(DbtError::FuelExhausted);
                }
                remaining -= spent;
                if out.halted {
                    self.span_end(run_span);
                    return Ok(self.build_report());
                }
                let heat = self.profile.heat_block(pc);
                if heat >= self.cfg.hot_threshold && !self.interp_only.contains(&pc) {
                    self.translate_and_install(pc, 0)?;
                }
                pc = out.next_pc;
            }
        }
    }

    /// FX!32-style offline pass: statically discovers every directly
    /// reachable basic block from the entry point and translates it before
    /// execution (translation costs are charged as usual). Indirectly
    /// reached blocks still go through the two-phase runtime. Returns the
    /// number of blocks translated.
    ///
    /// # Errors
    ///
    /// Propagates code-cache exhaustion that survives a flush.
    pub fn pretranslate(&mut self) -> Result<usize, DbtError> {
        let discovery = crate::cfg::discover_blocks(
            self.machine.mem(),
            self.state.eip,
            self.cfg.max_block_insns,
            8192,
        );
        let mut translated = 0usize;
        for pc in discovery.block_entries {
            if self.cache.block(pc).is_none()
                && !self.interp_only.contains(&pc)
                && self.translate_and_install(pc, 0)?
            {
                translated += 1;
            }
        }
        Ok(translated)
    }

    /// Runs the host machine until it needs the engine.
    fn run_machine(&mut self, remaining: &mut u64) -> Result<MachineOutcome, DbtError> {
        loop {
            if *remaining == 0 {
                return Err(DbtError::FuelExhausted);
            }
            let before = self.machine.stats().insns;
            let exit = self.machine.run(*remaining);
            let executed = self.machine.stats().insns - before;
            *remaining = remaining.saturating_sub(executed);
            if self.cfg.in_cache_dispatch {
                self.charge_in_cache_hits();
            }
            self.watch_advance();
            if self.tracer.is_enabled() && self.cfg.count_retired {
                let now = self.machine.reg(RETIRE_CTR);
                self.tracer.progress(
                    self.machine.stats().cycles,
                    now.wrapping_sub(self.seen_retired),
                );
                self.seen_retired = now;
            }
            match exit {
                Exit::Monitor => {
                    self.monitor_exits += 1;
                    let d = self.machine.cost().dispatch;
                    self.machine.charge(d);
                    let next = self.machine.reg(EXIT_PC_REG) as u32;
                    self.trace(TraceEvent::MonitorExit { next_pc: next });
                    if self.cfg.in_cache_dispatch {
                        self.classify_monitor_exit(next);
                    }
                    return Ok(MachineOutcome::Dispatch(next));
                }
                Exit::Halted => {
                    let final_pc = self.machine.reg(EXIT_PC_REG) as u32;
                    return Ok(MachineOutcome::Halted(final_pc));
                }
                Exit::Request => {
                    let gpc = self.handle_reversion_request()?;
                    return Ok(MachineOutcome::SwitchToInterp(gpc));
                }
                Exit::Unaligned(info) => match self.handle_trap(info)? {
                    Resume::Machine(None) => continue,
                    Resume::Machine(Some(host)) => {
                        self.machine.set_pc(host);
                        continue;
                    }
                    Resume::Interp(gpc) => return Ok(MachineOutcome::SwitchToInterp(gpc)),
                },
                Exit::Fault(MachineFault::OutOfFuel) => return Err(DbtError::FuelExhausted),
                Exit::Fault(f) => return Err(DbtError::Machine(f)),
            }
        }
    }

    /// The registered misalignment exception handler.
    fn handle_trap(&mut self, info: UnalignedInfo) -> Result<Resume, DbtError> {
        let block_pc = self
            .host_blocks
            .range(..=info.pc)
            .next_back()
            .map(|(_, g)| *g)
            .ok_or(DbtError::Internal("trap outside any translated block"))?;
        let site = {
            let block = self
                .cache
                .block(block_pc)
                .ok_or(DbtError::Internal("host map points at a missing block"))?;
            *block
                .site_at_host
                .get(&info.pc)
                .ok_or(DbtError::Internal("trap at an unrecorded site"))?
        };
        self.profile.record_trap_mda(site);
        if let Some(m) = &self.metrics {
            m.traps.inc();
        }
        let trap_cost = self.machine.cost().unaligned_trap;
        self.trace(TraceEvent::Trap {
            site_pc: site.pc,
            slot: site.slot,
            cycles: trap_cost,
        });

        // The trap-fixup span covers the whole handling episode — trap
        // delivery through the strategy's response (including any nested
        // retranslation, which opens its own translate child span).
        let span = self.span_start(SpanKind::TrapFixup, Some(site.pc));
        let resume = self.trap_response(block_pc, site, &info);
        self.span_end(span);
        resume
    }

    /// The active strategy's response to a delivered misalignment trap.
    fn trap_response(
        &mut self,
        block_pc: u32,
        site: SiteId,
        info: &UnalignedInfo,
    ) -> Result<Resume, DbtError> {
        match self.cfg.strategy {
            MdaStrategy::Direct => Err(DbtError::Internal("direct method cannot trap")),
            MdaStrategy::StaticProfiling | MdaStrategy::DynamicProfiling => {
                self.os_fixup(info)?;
                let fixup_cost = self.machine.cost().unaligned_fixup;
                self.trace(TraceEvent::OsFixup {
                    site_pc: site.pc,
                    cycles: fixup_cost,
                });
                Ok(Resume::Machine(None))
            }
            MdaStrategy::ExceptionHandling => {
                if self.cfg.rearrange {
                    self.rearrange_block(block_pc, site)
                } else {
                    self.patch_site(block_pc, site, info)
                }
            }
            MdaStrategy::Dpeh => {
                if self.cfg.rearrange {
                    return self.rearrange_block(block_pc, site);
                }
                let resume = self.patch_site(block_pc, site, info)?;
                if let Some(block) = self.cache.block(block_pc) {
                    if self.cfg.retranslate
                        && block.trap_count >= self.cfg.retranslate_threshold
                        && block.retrans_count < self.cfg.max_retranslations
                    {
                        self.invalidate_block(block_pc, true);
                        return Ok(Resume::Interp(site.pc));
                    }
                }
                Ok(resume)
            }
        }
    }

    /// Handles a Figure 8 reversion request: the adaptive code at the site
    /// whose guest PC is in `R16` observed a long aligned streak, so both
    /// of its access slots revert to plain accesses and the containing
    /// block is retranslated (the next dispatch re-heats it through one
    /// interpretation). Returns the guest PC to resume interpretation at.
    fn handle_reversion_request(&mut self) -> Result<u32, DbtError> {
        let site_pc = self.machine.reg(EXIT_PC_REG) as u32;
        let host_pc = self.machine.pc();
        let block_pc = self
            .host_blocks
            .range(..=host_pc)
            .next_back()
            .map(|(_, g)| *g)
            .ok_or(DbtError::Internal("reversion request outside any block"))?;
        for slot in 0..2 {
            let site = SiteId::new(site_pc, slot);
            self.forced_normal.insert(site);
            self.forced_sequence.remove(&site);
        }
        self.invalidate_block(block_pc, false);
        let c = self.machine.cost().patch_base;
        self.machine.charge(c);
        self.reversions += 1;
        self.trace(TraceEvent::Reversion { site_pc });
        Ok(site_pc)
    }

    /// The OS software fixup path (profiling-based strategies): emulate the
    /// access and resume after the faulting instruction — paid on *every*
    /// MDA at undetected sites.
    fn os_fixup(&mut self, info: &UnalignedInfo) -> Result<(), DbtError> {
        let fa = exception::decode_faulting(info)?;
        if fa.is_store {
            let v = self.machine.reg(fa.ra);
            self.machine.mem_mut().write_int(info.addr, info.size, v);
        } else {
            let raw = self.machine.mem().read_int(info.addr, info.size);
            let v = if fa.sign_extend {
                raw as u32 as i32 as i64 as u64
            } else {
                raw
            };
            self.machine.set_reg(fa.ra, v);
        }
        let c = self.machine.cost().unaligned_fixup;
        self.machine.charge(c);
        self.machine.set_pc(info.pc + 4);
        self.os_fixups += 1;
        if let Some(m) = &self.metrics {
            m.os_fixups.inc();
        }
        Ok(())
    }

    /// Exception-handling patch: build a stub and redirect the faulting
    /// instruction to it (Figure 5).
    fn patch_site(
        &mut self,
        block_pc: u32,
        site: SiteId,
        info: &UnalignedInfo,
    ) -> Result<Resume, DbtError> {
        let fa = exception::decode_faulting(info)?;
        let len = exception::stub_len(&fa);
        let stub_addr = match self.cache.alloc_stub(len) {
            Ok(a) => a,
            Err(_) => {
                // Stub region exhausted: flush everything and restart this
                // block through the interpreter.
                self.flush_cache();
                return Ok(Resume::Interp(site.pc));
            }
        };
        let words = exception::build_stub(&fa, stub_addr, info.pc + 4)?;
        self.machine.write_code(stub_addr, &words);
        let patch = exception::patch_word(info.pc, stub_addr)?;
        self.machine.patch_code_word(info.pc, patch);
        let cost = self.machine.cost();
        let charge = cost.patch_base + cost.patch_per_word * (len as u64 + 1);
        self.machine.charge(charge);
        if let Some(block) = self.cache.block_mut(block_pc) {
            block.trap_count += 1;
        }
        self.forced_sequence.insert(site);
        self.forced_normal.remove(&site);
        self.patched_sites += 1;
        if let Some(m) = &self.metrics {
            m.patches.inc();
        }
        self.trace(TraceEvent::EhPatch {
            site_pc: site.pc,
            slot: site.slot,
            cycles: charge,
        });
        Ok(Resume::Machine(None))
    }

    /// Code rearrangement (§IV-A): retranslate the block with every
    /// handler-discovered site inlined as an MDA sequence, preserving
    /// spatial locality at the price of relocation work.
    fn rearrange_block(&mut self, block_pc: u32, site: SiteId) -> Result<Resume, DbtError> {
        let retrans_count = match self.cache.block(block_pc) {
            Some(b) => b.retrans_count,
            None => return Err(DbtError::Internal("rearranging a missing block")),
        };
        self.forced_sequence.insert(site);
        self.forced_normal.remove(&site);
        self.invalidate_block(block_pc, false);
        if !self.translate_and_install(block_pc, retrans_count)? {
            // Translation now fails (cannot happen in practice — it
            // succeeded before); fall back to interpretation.
            return Ok(Resume::Interp(site.pc));
        }
        // Charge relocation on top of translation (target-address fixup
        // over the block body).
        let (resume, words_len) = {
            let block = self
                .cache
                .block(block_pc)
                .ok_or(DbtError::Internal("rearranged block vanished"))?;
            let off = block
                .insn_starts
                .iter()
                .find(|(g, _)| *g == site.pc)
                .map(|(_, w)| *w)
                .ok_or(DbtError::Internal(
                    "faulting pc missing from rearranged block",
                ))?;
            (block.host_addr + 4 * u64::from(off), block.words_len)
        };
        let cost = self.machine.cost();
        let charge = cost.patch_base + cost.patch_per_word * u64::from(words_len);
        self.machine.charge(charge);
        self.rearrangements += 1;
        if let Some(m) = &self.metrics {
            m.patches.inc();
        }
        self.trace(TraceEvent::Rearrangement {
            block_pc,
            site_pc: site.pc,
            cycles: charge,
        });
        Ok(Resume::Machine(Some(resume)))
    }

    /// The dispatch features the translator should emit for this config.
    fn dispatch_opts(&self) -> DispatchOpts {
        DispatchOpts {
            ibtc: self.cfg.in_cache_dispatch,
            shadow_ras: self.cfg.in_cache_dispatch && self.cfg.shadow_ras,
            count_retired: self.cfg.count_retired,
        }
    }

    /// Writes `pc → host` into the direct-mapped IBTC slot (skipping the
    /// write when the slot already holds exactly this entry).
    fn ibtc_fill(&mut self, pc: u32, host: u64) {
        let slot = ibtc_slot_addr(pc);
        let tag = ibtc_tag(pc);
        let mem = self.machine.mem_mut();
        if mem.read_u64(slot) == tag && mem.read_u64(slot + 8) == host {
            return;
        }
        mem.write_u64(slot, tag);
        mem.write_u64(slot + 8, host);
    }

    /// Charges the cheap in-cache cost for every IBTC/RAS-resolved transfer
    /// the machine performed since the last call (the emitted probe bumps a
    /// counter register per hit).
    fn charge_in_cache_hits(&mut self) {
        let ibtc_now = self.machine.reg(IBTC_HIT_CTR);
        let ras_now = self.machine.reg(RAS_HIT_CTR);
        let ibtc = ibtc_now.wrapping_sub(self.seen_ibtc_hits);
        let ras = ras_now.wrapping_sub(self.seen_ras_hits);
        let delta = ibtc + ras;
        if delta > 0 {
            let c = self.machine.cost().in_cache_dispatch * delta;
            self.machine.charge(c);
            self.trace(TraceEvent::InCacheHits { ibtc, ras });
        }
        self.seen_ibtc_hits = ibtc_now;
        self.seen_ras_hits = ras_now;
    }

    /// Attributes a monitor exit to the pal word that raised it: an IBTC
    /// probe miss (counted), or a constant-target exit stub — which is
    /// lazily chained on this first use if its target is already
    /// translated (with in-cache dispatch the engine does not keep a
    /// pending-chain registry; exits chain when actually taken).
    fn classify_monitor_exit(&mut self, next: u32) {
        // CallPal advances the machine pc past the pal word before exiting.
        let pal_addr = self.machine.pc().wrapping_sub(4);
        let Some(block_pc) = self
            .host_blocks
            .range(..=pal_addr)
            .next_back()
            .map(|(_, g)| *g)
        else {
            return;
        };
        let Some(block) = self.cache.block(block_pc) else {
            return;
        };
        if pal_addr >= block.host_addr + 4 * u64::from(block.words_len) {
            return; // exit from a stub, not a block body
        }
        if block.indirect_exits.contains(&pal_addr) {
            self.ibtc_misses += 1;
            self.trace(TraceEvent::IbtcMiss { next_pc: next });
            return;
        }
        // A constant-target exit stub is load_imm32 (1–2 words) + call_pal.
        let slot_idx = block.exit_slots.iter().position(|s| {
            !s.chained && s.target == next && s.host_addr < pal_addr && pal_addr <= s.host_addr + 8
        });
        if let (Some(i), true) = (slot_idx, self.cfg.chaining) {
            let target_host = if next == block_pc {
                Some(block.host_addr)
            } else {
                self.cache.block(next).map(|b| b.host_addr)
            };
            if let Some(t) = target_host {
                self.chain_slot(block_pc, i, t);
            }
        }
    }

    /// Purges dispatch structures that may reference a removed block: its
    /// own IBTC slot (tag-checked — the direct-mapped slot may by now
    /// belong to another guest PC) and any shadow-return-stack host
    /// snapshot pointing into its host range.
    fn dispatch_purge(&mut self, block: &Block) {
        let slot = ibtc_slot_addr(block.guest_pc);
        let mem = self.machine.mem_mut();
        if mem.read_u64(slot) == ibtc_tag(block.guest_pc) {
            mem.write_u64(slot, 0);
            mem.write_u64(slot + 8, 0);
        }
        let lo = block.host_addr;
        let hi = block.host_addr + 4 * u64::from(block.words_len);
        let ras_base = DISPATCH_BASE_ADDR + IBTC_BYTES;
        for i in 0..RAS_ENTRIES {
            let host_at = ras_base + i * RAS_ENTRY_BYTES + 8;
            let h = mem.read_u64(host_at);
            if h >= lo && h < hi {
                mem.write_u64(host_at, 0);
            }
        }
    }

    /// Zeroes the whole IBTC and shadow return stack (cache flush).
    fn dispatch_flush(&mut self) {
        let mem = self.machine.mem_mut();
        for off in (0..IBTC_BYTES + RAS_BYTES).step_by(8) {
            mem.write_u64(DISPATCH_BASE_ADDR + off, 0);
        }
    }

    /// Removes a block: unchains incoming links and (optionally, for
    /// retranslation) resets its profile so the next profiling window sees
    /// only current behaviour.
    fn invalidate_block(&mut self, block_pc: u32, reset_profile: bool) {
        let incoming = self.cache.chained_into(block_pc);
        let Some(block) = self.cache.remove_block(block_pc) else {
            return;
        };
        self.host_blocks.remove(&block.host_addr);
        self.hint_drop(block_pc);
        self.shared_installs.remove(&block_pc);
        if self.cfg.in_cache_dispatch {
            self.dispatch_purge(&block);
        }
        for (src, slot_idx) in incoming {
            if src == block_pc {
                continue; // the removed block's own slot is dead code
            }
            if let Some(sb) = self.cache.block_mut(src) {
                let slot = &mut sb.exit_slots[slot_idx];
                let (addr, orig) = (slot.host_addr, slot.original_word);
                slot.chained = false;
                self.machine.patch_code_word(addr, orig);
                if !self.cfg.in_cache_dispatch {
                    // Lazy mode re-chains on first use instead.
                    self.cache.add_pending_chain(src, slot_idx, block_pc);
                }
            }
        }
        if reset_profile {
            let pcs: HashSet<u32> = block.guest_pcs.iter().copied().collect();
            self.profile.reset_block(block_pc, &pcs);
            // Re-decide the block's sites from the fresh profiling window.
            self.forced_sequence.retain(|s| !pcs.contains(&s.pc));
            self.forced_normal.retain(|s| !pcs.contains(&s.pc));
            self.retranslations += 1;
        }
        let c = self.machine.cost().invalidate_block;
        self.machine.charge(c);
        self.trace(TraceEvent::CacheInvalidate { block_pc });
        if reset_profile {
            self.trace(TraceEvent::Retranslation { block_pc });
        }
    }

    /// Empties the code cache entirely (allocation pressure).
    fn flush_cache(&mut self) {
        let blocks = self.cache.block_count() as u64;
        self.cache.flush();
        self.host_blocks.clear();
        self.hint.fill((0, 0));
        self.shared_installs.clear();
        if self.cfg.in_cache_dispatch {
            self.dispatch_flush();
        }
        let c = self.machine.cost().invalidate_block * blocks;
        self.machine.charge(c);
        self.machine.flush_caches();
        if let Some(m) = &self.metrics {
            m.flushes.inc();
        }
        self.trace(TraceEvent::CacheFlush { blocks });
    }

    /// Translates `block_pc` with the active strategy's site plans and
    /// installs it. Returns `false` if the block is untranslatable (it is
    /// then permanently interpreted).
    fn translate_and_install(
        &mut self,
        block_pc: u32,
        retrans_count: u32,
    ) -> Result<bool, DbtError> {
        let span = self.span_start(SpanKind::Translate, Some(block_pc));
        let installed = if self.shared.is_some() {
            self.translate_and_install_shared(block_pc, retrans_count)
        } else {
            self.translate_and_install_private(block_pc, retrans_count)
        };
        self.span_end(span);
        installed
    }

    /// The private-cache install path (the original single-engine one).
    fn translate_and_install_private(
        &mut self,
        block_pc: u32,
        retrans_count: u32,
    ) -> Result<bool, DbtError> {
        for _attempt in 0..2 {
            let base = self.cache.next_code_addr();
            let tb = {
                let strategy = self.cfg.strategy;
                let multiversion = self.cfg.multiversion;
                let mv_min = self.cfg.multiversion_min_samples;
                let adaptive = self
                    .cfg
                    .adaptive_reversion
                    .then_some(self.cfg.reversion_threshold);
                let profile = &self.profile;
                let static_profile = self.cfg.static_profile.as_deref();
                let forced_seq = &self.forced_sequence;
                let forced_normal = &self.forced_normal;
                let mut plan = move |site: SiteId, acc: SiteAccess| -> SitePlan {
                    decide_plan(
                        strategy,
                        multiversion,
                        mv_min,
                        adaptive,
                        profile,
                        static_profile,
                        forced_seq,
                        forced_normal,
                        site,
                        acc,
                    )
                };
                translator::translate_block(
                    self.machine.mem(),
                    block_pc,
                    base,
                    self.cfg.max_block_insns,
                    &mut plan,
                    self.dispatch_opts(),
                )
            };
            let tb = match tb {
                Ok(tb) => tb,
                Err(_) => {
                    self.interp_only.insert(block_pc);
                    return Ok(false);
                }
            };
            match self.cache.alloc_block(tb.words.len()) {
                Ok(addr) => {
                    debug_assert_eq!(addr, base);
                    self.install_block(&tb, addr, retrans_count);
                    if let Some(m) = &self.metrics {
                        m.translations.inc();
                    }
                    return Ok(true);
                }
                Err(_) => {
                    self.flush_cache();
                    // retry once with a clean cache
                }
            }
        }
        Err(DbtError::Internal("block larger than the code region"))
    }

    /// The shared-cache install path: validate-and-reuse a fleet entry
    /// when one exists, otherwise translate once under the fleet-wide
    /// translate lock and publish the product. Either way the engine pays
    /// the full simulated translation charge in [`Dbt::install_block`] —
    /// only *host* translation work is elided, so shared-cache runs stay
    /// byte-identical to private ones.
    fn translate_and_install_shared(
        &mut self,
        block_pc: u32,
        retrans_count: u32,
    ) -> Result<bool, DbtError> {
        let sh = Arc::clone(self.shared.as_ref().expect("shared mode"));
        // Bring local bookkeeping current before touching shared space:
        // another executor's evictions may have reclaimed addresses our
        // stale local installs still occupy.
        self.sync_shared();
        let variant = self.install_counts.get(&block_pc).copied().unwrap_or(0);
        if let Some(e) = self.shared_lookup(&sh, block_pc, variant) {
            self.install_shared(&e, retrans_count, true);
            return Ok(true);
        }
        // Miss: translate under the fleet lock, double-checking first so
        // racing executors never translate the same variant twice.
        let guard = sh.translate_lock();
        if let Some(e) = self.shared_lookup(&sh, block_pc, variant) {
            drop(guard);
            self.install_shared(&e, retrans_count, true);
            return Ok(true);
        }
        let base = sh.candidate_addr();
        let Some((tb, plans)) = self.translate_recording(block_pc, base) else {
            self.interp_only.insert(block_pc);
            return Ok(false);
        };
        let alloc = match sh.alloc(tb.words.len()) {
            Some(a) => a,
            None => {
                return Err(DbtError::Internal(
                    "block larger than the shared code region",
                ))
            }
        };
        for &pc in &alloc.evicted {
            if let Some(m) = &self.metrics {
                m.cc_evictions.inc();
            }
            self.trace(TraceEvent::CacheEvict { block_pc: pc });
        }
        if !alloc.evicted.is_empty() {
            // Our own local installs may sit in the reclaimed space.
            self.sync_shared();
        }
        let tb = if alloc.addr == base {
            tb
        } else {
            // First-fit handed us a reclaimed hole, not the bump address
            // we translated against; re-emit for the final address
            // (host-side work only — translation is deterministic).
            match self.translate_recording(block_pc, alloc.addr) {
                Some((tb, _)) => tb,
                None => {
                    self.interp_only.insert(block_pc);
                    return Ok(false);
                }
            }
        };
        let entry = sh.insert(tb, alloc.addr, variant, plans, self.dispatch_opts());
        drop(guard);
        if let Some(m) = &self.metrics {
            m.translations.inc();
        }
        self.install_shared(&entry, retrans_count, false);
        Ok(true)
    }

    /// Installs a shared entry into this engine's memory and block table,
    /// recording it for the coherence stale sweep.
    fn install_shared(&mut self, entry: &Arc<SharedBlock>, retrans_count: u32, hit: bool) {
        if let Some(m) = &self.metrics {
            if hit {
                m.cc_hits.inc();
            } else {
                m.cc_misses.inc();
            }
            if hit && entry.preloaded {
                m.image_hits.inc();
            }
        }
        let restore_span = if hit && entry.preloaded {
            self.trace(TraceEvent::ImageHit {
                block_pc: entry.tb.guest_pc,
            });
            self.span_start(SpanKind::ImageRestore, Some(entry.tb.guest_pc))
        } else {
            SpanId::NONE
        };
        self.install_block(&entry.tb, entry.host_addr, retrans_count);
        self.span_end(restore_span);
        self.shared_installs
            .insert(entry.tb.guest_pc, Arc::clone(entry));
        *self.install_counts.entry(entry.tb.guest_pc).or_insert(0) += 1;
        if let (Some(m), Some(sh)) = (&self.metrics, &self.shared) {
            m.cc_bytes.set(sh.stats().bytes_used as i64);
        }
    }

    /// Translates `block_pc` against `base` with the active strategy's
    /// plan function, recording every per-site decision — the validation
    /// key other executors re-check before reusing the product. `None`
    /// when the block is untranslatable.
    fn translate_recording(
        &mut self,
        block_pc: u32,
        base: u64,
    ) -> Option<(TranslatedBlock, PlanVector)> {
        let strategy = self.cfg.strategy;
        let multiversion = self.cfg.multiversion;
        let mv_min = self.cfg.multiversion_min_samples;
        let adaptive = self
            .cfg
            .adaptive_reversion
            .then_some(self.cfg.reversion_threshold);
        let profile = &self.profile;
        let static_profile = self.cfg.static_profile.as_deref();
        let forced_seq = &self.forced_sequence;
        let forced_normal = &self.forced_normal;
        let mut plans: PlanVector = Vec::new();
        let mut plan = |site: SiteId, acc: SiteAccess| -> SitePlan {
            let p = decide_plan(
                strategy,
                multiversion,
                mv_min,
                adaptive,
                profile,
                static_profile,
                forced_seq,
                forced_normal,
                site,
                acc,
            );
            plans.push((site, acc, p));
            p
        };
        let tb = translator::translate_block(
            self.machine.mem(),
            block_pc,
            base,
            self.cfg.max_block_insns,
            &mut plan,
            self.dispatch_opts(),
        )
        .ok()?;
        Some((tb, plans))
    }

    /// Shared-cache lookup with this engine's current plan function as
    /// the validator (see [`SharedCodeCache::lookup`]).
    fn shared_lookup(
        &self,
        sh: &SharedCodeCache,
        block_pc: u32,
        variant: u32,
    ) -> Option<Arc<SharedBlock>> {
        let strategy = self.cfg.strategy;
        let multiversion = self.cfg.multiversion;
        let mv_min = self.cfg.multiversion_min_samples;
        let adaptive = self
            .cfg
            .adaptive_reversion
            .then_some(self.cfg.reversion_threshold);
        let profile = &self.profile;
        let static_profile = self.cfg.static_profile.as_deref();
        let forced_seq = &self.forced_sequence;
        let forced_normal = &self.forced_normal;
        let mut plan = |site: SiteId, acc: SiteAccess| -> SitePlan {
            decide_plan(
                strategy,
                multiversion,
                mv_min,
                adaptive,
                profile,
                static_profile,
                forced_seq,
                forced_normal,
                site,
                acc,
            )
        };
        sh.lookup(block_pc, variant, self.dispatch_opts(), &mut plan)
    }

    /// Brings per-CPU state current with the shared cache: applies guest
    /// patches published by other executors and drops local installs
    /// whose shared entry was evicted or invalidated. The fast path —
    /// generation unchanged — is one atomic load and a compare; no lock.
    fn sync_shared(&mut self) {
        let Some(sh) = &self.shared else {
            return;
        };
        let gen = sh.generation();
        if gen == self.seen_shared_gen {
            return;
        }
        let sh = Arc::clone(sh);
        self.seen_shared_gen = gen;
        let (patches, seen) = sh.patches_since(self.seen_patch_seq);
        self.seen_patch_seq = seen;
        for p in patches {
            self.apply_guest_code(p.addr, &p.bytes);
        }
        let stale: Vec<u32> = self
            .shared_installs
            .iter()
            .filter(|(_, e)| !e.is_valid())
            .map(|(&pc, _)| pc)
            .collect();
        for pc in stale {
            self.shared_installs.remove(&pc);
            self.invalidate_block(pc, false);
        }
    }

    /// Probes the next-TB hint for a dispatch to `pc`.
    #[inline]
    fn hint_probe(&mut self, pc: u32) -> Option<u64> {
        let (hpc, host) = self.hint[(pc as usize) & (HINT_ENTRIES - 1)];
        if host != 0 && hpc == pc {
            self.hint_hits += 1;
            if let Some(m) = &self.metrics {
                m.hint_hits.inc();
            }
            Some(host)
        } else {
            None
        }
    }

    /// Fills the hint slot after a block-table lookup found `pc`
    /// translated (a dispatch the hint failed to eliminate).
    fn hint_fill(&mut self, pc: u32, host: u64) {
        self.hint_misses += 1;
        if let Some(m) = &self.metrics {
            m.hint_misses.inc();
        }
        self.hint[(pc as usize) & (HINT_ENTRIES - 1)] = (pc, host);
    }

    /// Drops the hint slot for an invalidated block.
    fn hint_drop(&mut self, pc: u32) {
        let slot = &mut self.hint[(pc as usize) & (HINT_ENTRIES - 1)];
        if slot.0 == pc {
            *slot = (0, 0);
        }
    }

    fn install_block(&mut self, tb: &TranslatedBlock, addr: u64, retrans_count: u32) {
        self.machine.write_code(addr, &tb.words);
        let originals: Vec<u32> = tb
            .exits
            .iter()
            .map(|e| tb.words[((e.host_addr - addr) / 4) as usize])
            .collect();
        self.cache.install(tb, addr, originals);
        self.host_blocks.insert(addr, tb.guest_pc);
        if let Some(b) = self.cache.block_mut(tb.guest_pc) {
            b.retrans_count = retrans_count;
        }
        let cost = self.machine.cost();
        let charge = cost.translate_per_block
            + cost.translate_per_guest_insn * u64::from(tb.guest_insn_count);
        self.machine.charge(charge);
        if self.blocks_translated == 0 {
            // First translation: the run leaves the interpret-and-profile
            // phase (profiling decisions freeze under DPEH).
            self.trace(TraceEvent::PhaseTransition {
                guest_pc: tb.guest_pc,
            });
        }
        self.blocks_translated += 1;
        self.trace(TraceEvent::BlockTranslated {
            guest_pc: tb.guest_pc,
        });

        if self.cfg.chaining {
            // Outgoing exits whose targets already exist.
            for (i, exit) in tb.exits.iter().enumerate() {
                let target_host = if exit.target == tb.guest_pc {
                    Some(addr)
                } else {
                    self.cache.block(exit.target).map(|b| b.host_addr)
                };
                match target_host {
                    Some(t) => self.chain_slot(tb.guest_pc, i, t),
                    None if !self.cfg.in_cache_dispatch => {
                        self.cache.add_pending_chain(tb.guest_pc, i, exit.target);
                    }
                    // Lazy mode: the exit chains the first time it is
                    // actually taken (classify_monitor_exit).
                    None => {}
                }
            }
            // Incoming exits waiting for this block.
            for (src, slot_idx) in self.cache.take_pending_chains(tb.guest_pc) {
                if self.cache.block(src).is_some() {
                    self.chain_slot(src, slot_idx, addr);
                }
            }
        }
    }

    /// Patches one exit slot into a direct branch to `target_host`.
    fn chain_slot(&mut self, block_pc: u32, slot_idx: usize, target_host: u64) {
        let Some(block) = self.cache.block_mut(block_pc) else {
            return;
        };
        let slot = &mut block.exit_slots[slot_idx];
        if slot.chained {
            return;
        }
        let disp = branch_disp(slot.host_addr, target_host)
            .expect("code cache regions are within branch range");
        let word = encode_alpha(&AInsn::Br {
            op: BrOp::Br,
            ra: Reg::ZERO,
            disp,
        });
        let addr = slot.host_addr;
        let target_pc = slot.target;
        slot.chained = true;
        self.machine.patch_code_word(addr, word);
        let c = self.machine.cost().patch_per_word;
        self.machine.charge(c);
        self.chains += 1;
        self.trace(TraceEvent::ChainBackpatch {
            block_pc,
            target_pc,
        });
    }

    fn build_report(&self) -> RunReport {
        RunReport {
            final_state: self.state.clone(),
            stats: *self.machine.stats(),
            guest_insns_interpreted: self.guest_insns_interpreted,
            blocks_translated: self.blocks_translated,
            retranslations: self.retranslations,
            patched_sites: self.patched_sites,
            rearrangements: self.rearrangements,
            reversions: self.reversions,
            os_fixups: self.os_fixups,
            chains: self.chains,
            monitor_exits: self.monitor_exits,
            ibtc_hits: self.machine.reg(IBTC_HIT_CTR),
            ibtc_misses: self.ibtc_misses,
            ras_hits: self.machine.reg(RAS_HIT_CTR),
            guest_insns_retired: self.machine.reg(RETIRE_CTR),
            cache_flushes: self.cache.flush_count,
            interp_only_blocks: self.interp_only.len() as u64,
            hint_hits: self.hint_hits,
            hint_misses: self.hint_misses,
            profile: self.profile.clone(),
        }
    }
}

enum MachineOutcome {
    /// Monitor exit: dispatch to this guest PC.
    Dispatch(u32),
    /// The handler asked for interpretation from this guest PC.
    SwitchToInterp(u32),
    /// Guest `hlt`, with the final guest PC.
    Halted(u32),
}

/// The per-site translation decision for each strategy (the table in the
/// crate docs). `adaptive` carries the Figure 8 reversion threshold when
/// that option is on; it upgrades would-be sequences to adaptive code.
#[allow(clippy::too_many_arguments)]
fn decide_plan(
    strategy: MdaStrategy,
    multiversion: bool,
    mv_min: u64,
    adaptive: Option<u8>,
    profile: &Profile,
    static_profile: Option<&StaticProfile>,
    forced_seq: &HashSet<SiteId>,
    forced_normal: &HashSet<SiteId>,
    site: SiteId,
    acc: SiteAccess,
) -> SitePlan {
    if acc.width == Width::W1 {
        return SitePlan::Normal; // bytes cannot misalign
    }
    let sequence = || match adaptive {
        Some(threshold) if strategy == MdaStrategy::Dpeh => SitePlan::Adaptive { threshold },
        _ => SitePlan::Sequence,
    };
    if forced_seq.contains(&site) {
        return sequence();
    }
    if forced_normal.contains(&site) {
        return SitePlan::Normal;
    }
    match strategy {
        MdaStrategy::Direct => SitePlan::Sequence,
        MdaStrategy::StaticProfiling => {
            if static_profile.is_some_and(|p| p.contains(site)) {
                SitePlan::Sequence
            } else {
                SitePlan::Normal
            }
        }
        MdaStrategy::DynamicProfiling => {
            if profile.saw_mda(site) {
                SitePlan::Sequence
            } else {
                SitePlan::Normal
            }
        }
        MdaStrategy::ExceptionHandling => SitePlan::Normal,
        MdaStrategy::Dpeh => {
            let s = profile.site(site);
            if s.mdas == 0 {
                SitePlan::Normal
            } else if multiversion && s.mdas >= mv_min && s.execs - s.mdas >= mv_min {
                SitePlan::MultiVersion
            } else {
                sequence()
            }
        }
    }
}

/// Convenience: interpret a program start-to-finish with full profiling —
/// the golden reference for equivalence tests, the training runs for
/// static profiling, and the Table I measurement.
///
/// Returns the final state and profile.
///
/// # Errors
///
/// [`DbtError::Interp`] on undecodable guest bytes;
/// [`DbtError::FuelExhausted`] if `max_insns` guest instructions run
/// without a `hlt`.
pub fn profile_program(
    prog: &GuestProgram,
    data: &[(u32, Vec<u8>)],
    stack: Option<u32>,
    cost: &CostModel,
    max_insns: u64,
) -> Result<(CpuState, Profile), DbtError> {
    let mut mem = bridge_sim::mem::Memory::new();
    mem.write_bytes(u64::from(prog.base()), prog.image());
    for (addr, bytes) in data {
        mem.write_bytes(u64::from(*addr), bytes);
    }
    let mut state = CpuState::new(prog.entry());
    if let Some(esp) = stack {
        state.set_reg(Reg32::Esp, esp);
    }
    let mut profile = Profile::new();
    let halted = interp::run_interp_only(&mut state, &mut mem, &mut profile, cost, max_insns)?;
    if !halted {
        return Err(DbtError::FuelExhausted);
    }
    Ok((state, profile))
}

/// Compares two guest states for architectural equivalence: registers, MMX
/// state and condition flags (the engine reconstructs exact EFLAGS from the
/// lazy-flag registers whenever control leaves translated code).
pub fn states_equivalent(a: &CpuState, b: &CpuState) -> bool {
    a.regs == b.regs && a.mm == b.mm && a.flags == b.flags
}

#[cfg(test)]
mod tests {
    use super::*;
    use bridge_x86::asm::Assembler;
    use bridge_x86::cond::Cond;
    use bridge_x86::insn::{AluOp, MemRef};
    use bridge_x86::reg::Reg32::*;
    use bridge_x86::reg::RegMm;

    fn program(build: impl FnOnce(&mut Assembler)) -> GuestProgram {
        let mut a = Assembler::new(0x40_0000);
        build(&mut a);
        GuestProgram::new(0x40_0000, a.finish().unwrap())
    }

    fn run_with(cfg: DbtConfig, prog: &GuestProgram) -> RunReport {
        let mut dbt = Dbt::with_machine(cfg, Machine::without_caches(CostModel::flat()));
        dbt.load(prog);
        dbt.set_stack(0x00F0_0000);
        dbt.run(200_000_000).expect("program halts")
    }

    fn sum_loop_program(base_addr: i32, iters: i32) -> GuestProgram {
        program(|a| {
            a.mov_ri(Ebx, base_addr);
            a.mov_ri(Ecx, iters);
            a.mov_ri(Eax, 0);
            let top = a.here_label();
            a.alu_rm(AluOp::Add, Eax, MemRef::base_disp(Ebx, 0));
            a.alu_ri(AluOp::Sub, Ecx, 1);
            a.jcc(Cond::Ne, top);
            a.hlt();
        })
    }

    #[test]
    fn all_strategies_agree_with_reference() {
        let prog = sum_loop_program(0x10_0002, 300); // misaligned hot loop
        let (ref_state, _) = profile_program(
            &prog,
            &[(0x10_0002, 7u32.to_le_bytes().to_vec())],
            Some(0x00F0_0000),
            &CostModel::flat(),
            1_000_000,
        )
        .unwrap();

        for strategy in MdaStrategy::ALL {
            let mut cfg = DbtConfig::new(strategy).with_threshold(10);
            if strategy == MdaStrategy::StaticProfiling {
                cfg = cfg.with_static_profile(StaticProfile::new());
            }
            let mut dbt = Dbt::with_machine(cfg, Machine::without_caches(CostModel::flat()));
            dbt.load(&prog);
            dbt.set_stack(0x00F0_0000);
            dbt.write_guest_memory(0x10_0002, &7u32.to_le_bytes());
            let report = dbt.run(200_000_000).expect("halts");
            assert!(
                states_equivalent(&report.final_state, &ref_state),
                "{strategy:?}: {:?} vs {:?}",
                report.final_state.regs,
                ref_state.regs
            );
            assert_eq!(report.final_state.reg(Eax), 2100, "{strategy:?}");
        }
    }

    #[test]
    fn direct_never_traps() {
        let prog = sum_loop_program(0x10_0001, 200);
        let report = run_with(DbtConfig::new(MdaStrategy::Direct).with_threshold(5), &prog);
        assert_eq!(report.traps(), 0);
        assert!(report.blocks_translated >= 1);
    }

    #[test]
    fn exception_handling_traps_once_per_site() {
        let prog = sum_loop_program(0x10_0001, 500);
        let report = run_with(
            DbtConfig::new(MdaStrategy::ExceptionHandling).with_threshold(5),
            &prog,
        );
        // One trappable MDA site → exactly one trap, then patched.
        assert_eq!(report.traps(), 1);
        assert_eq!(report.patched_sites, 1);
        assert_eq!(report.os_fixups, 0);
    }

    #[test]
    fn dynamic_profiling_catches_hot_site_without_traps() {
        let prog = sum_loop_program(0x10_0001, 500);
        let report = run_with(
            DbtConfig::new(MdaStrategy::DynamicProfiling).with_threshold(50),
            &prog,
        );
        // The site misaligns during the 50 profiling iterations, so the
        // translation uses the sequence: zero traps.
        assert_eq!(report.traps(), 0);
        assert_eq!(report.os_fixups, 0);
    }

    #[test]
    fn dynamic_profiling_pays_per_occurrence_on_late_sites() {
        // Phase change: aligned for the first 100 iterations, misaligned
        // for the next 400 — profiling at threshold 10 sees only aligned.
        let prog = program(|a| {
            a.mov_ri(Ebx, 0x10_0000); // aligned base
            a.mov_ri(Ecx, 500);
            let top = a.here_label();
            a.alu_rm(AluOp::Add, Eax, MemRef::base_disp(Ebx, 0));
            // at iteration 400 remaining (i.e. after 100 done): switch base
            a.alu_ri(AluOp::Cmp, Ecx, 400);
            let skip = a.new_label();
            a.jcc(Cond::Ne, skip);
            a.mov_ri(Ebx, 0x10_0101); // misaligned base
            a.bind(skip);
            a.alu_ri(AluOp::Sub, Ecx, 1);
            a.jcc(Cond::Ne, top);
            a.hlt();
        });
        let report = run_with(
            DbtConfig::new(MdaStrategy::DynamicProfiling).with_threshold(10),
            &prog,
        );
        // Hundreds of per-occurrence fixups: the paper's Table III effect.
        assert!(report.os_fixups > 100, "fixups: {}", report.os_fixups);
        assert_eq!(report.traps(), report.os_fixups);

        // Exception handling patches it once instead.
        let report_eh = run_with(
            DbtConfig::new(MdaStrategy::ExceptionHandling).with_threshold(10),
            &prog,
        );
        assert!(report_eh.traps() <= 3, "traps: {}", report_eh.traps());
        assert!(report_eh.cycles() < report.cycles());
    }

    #[test]
    fn static_profile_from_train_run() {
        let prog = sum_loop_program(0x10_0001, 500);
        // Training run with the same behaviour.
        let (_, train_profile) =
            profile_program(&prog, &[], Some(0x00F0_0000), &CostModel::flat(), 1_000_000).unwrap();
        let cfg = DbtConfig::new(MdaStrategy::StaticProfiling)
            .with_threshold(5)
            .with_static_profile(train_profile.to_static_profile());
        let report = run_with(cfg, &prog);
        assert_eq!(report.traps(), 0, "train profile covers the site");
    }

    #[test]
    fn chaining_reduces_monitor_exits() {
        let prog = sum_loop_program(0x10_0000, 2000);
        let chained = run_with(
            DbtConfig::new(MdaStrategy::ExceptionHandling).with_threshold(5),
            &prog,
        );
        let unchained = run_with(
            DbtConfig::new(MdaStrategy::ExceptionHandling)
                .with_threshold(5)
                .with_chaining(false),
            &prog,
        );
        assert!(chained.chains >= 1);
        assert_eq!(unchained.chains, 0);
        assert!(
            chained.cycles() < unchained.cycles(),
            "chaining must pay off"
        );
    }

    #[test]
    fn retranslation_triggers_on_repeated_traps() {
        // Four sites, all aligned during the profiling window, then all
        // misaligned after a phase change: each traps once after
        // translation, so the block accumulates 4 traps and is
        // retranslated (the paper's Figure 7 flow, threshold 4).
        let prog = program(|a| {
            a.mov_ri(Ebx, 0x10_0000); // aligned base for phase 1
            a.mov_ri(Ecx, 600);
            let top = a.here_label();
            a.alu_rm(AluOp::Add, Eax, MemRef::base_disp(Ebx, 0));
            a.alu_rm(AluOp::Add, Edx, MemRef::base_disp(Ebx, 8));
            a.alu_rm(AluOp::Add, Esi, MemRef::base_disp(Ebx, 16));
            a.alu_rm(AluOp::Add, Edi, MemRef::base_disp(Ebx, 24));
            a.alu_ri(AluOp::Cmp, Ecx, 500);
            let skip = a.new_label();
            a.jcc(Cond::Ne, skip);
            a.mov_ri(Ebx, 0x10_0201); // phase 2: misaligned base
            a.bind(skip);
            a.alu_ri(AluOp::Sub, Ecx, 1);
            a.jcc(Cond::Ne, top);
            a.hlt();
        });
        let cfg = DbtConfig::new(MdaStrategy::Dpeh)
            .with_threshold(10)
            .with_retranslate(true);
        let report = run_with(cfg, &prog);
        assert!(report.retranslations >= 1, "report: {report}");

        // Without retranslation the same program just patches the sites.
        let cfg2 = DbtConfig::new(MdaStrategy::Dpeh).with_threshold(10);
        let report2 = run_with(cfg2, &prog);
        assert_eq!(report2.retranslations, 0);
        assert!(report2.patched_sites >= 4, "report: {report2}");
    }

    #[test]
    fn multiversion_handles_mixed_sites_without_traps() {
        // A site that is aligned half the time: multi-version code executes
        // the plain path when aligned and the sequence when not.
        let prog = program(|a| {
            a.mov_ri(Ebx, 0x10_0000);
            a.mov_ri(Esi, 0x10_0102);
            a.mov_ri(Ecx, 600);
            let top = a.here_label();
            a.alu_rm(AluOp::Add, Eax, MemRef::base_disp(Ebx, 0));
            a.mov_rr(Edx, Ebx);
            a.mov_rr(Ebx, Esi);
            a.mov_rr(Esi, Edx);
            a.alu_ri(AluOp::Sub, Ecx, 1);
            a.jcc(Cond::Ne, top);
            a.hlt();
        });
        let cfg = DbtConfig::new(MdaStrategy::Dpeh)
            .with_threshold(20)
            .with_multiversion(true);
        let report = run_with(cfg, &prog);
        assert_eq!(
            report.traps(),
            0,
            "multi-version code never traps: {report}"
        );
    }

    #[test]
    fn rearrangement_inlines_instead_of_stubs() {
        let prog = sum_loop_program(0x10_0001, 800);
        let cfg = DbtConfig::new(MdaStrategy::ExceptionHandling)
            .with_threshold(5)
            .with_rearrange(true);
        let report = run_with(cfg, &prog);
        assert!(report.rearrangements >= 1);
        assert_eq!(report.patched_sites, 0, "no stub patches when rearranging");
        // Still only one trap.
        assert_eq!(report.traps(), 1);
    }

    #[test]
    fn tracer_attributes_trap_and_patch_to_the_site() {
        let prog = sum_loop_program(0x10_0001, 500);
        let cfg = DbtConfig::new(MdaStrategy::ExceptionHandling)
            .with_threshold(5)
            .with_trace(bridge_trace::TraceConfig::default().with_bucket_cycles(64));
        let mut dbt = Dbt::with_machine(cfg, Machine::without_caches(CostModel::flat()));
        dbt.load(&prog);
        dbt.set_stack(0x00F0_0000);
        let report = dbt.run(200_000_000).expect("halts");
        let trace = dbt.trace_snapshot().expect("tracing is on");

        // The one trappable site: one trap, one patch, discovery before fix.
        let (_, site) = trace
            .sites()
            .find(|(_, s)| s.traps > 0)
            .expect("the misaligned add shows up in the site table");
        assert_eq!(site.traps, 1);
        assert_eq!(site.patches, 1);
        assert!(site.discovery_to_fix_cycles().is_some());
        assert!(site.mdas > 0 && site.execs >= site.mdas);
        assert!(site.cycles_attributed > 0);
        // The trap-rate timeline converges: no traps after the patch.
        assert!(trace.timeline().trap_rate_converged());
        // Event stream saw the phase transition and the patch.
        let kinds: Vec<&str> = trace.events().map(|r| r.event.kind()).collect();
        assert!(kinds.contains(&"phase"));
        assert!(kinds.contains(&"patch"));
        assert_eq!(trace.dropped(), 0);

        // An identical untraced run produces the same cycles and counters:
        // recording never charges simulated time.
        let plain = run_with(
            DbtConfig::new(MdaStrategy::ExceptionHandling).with_threshold(5),
            &prog,
        );
        assert_eq!(plain.cycles(), report.cycles());
        assert_eq!(plain.stats, report.stats);
        assert!(states_equivalent(&plain.final_state, &report.final_state));
    }

    #[test]
    fn trace_snapshot_is_none_by_default() {
        let prog = sum_loop_program(0x10_0001, 100);
        let mut dbt = Dbt::with_machine(
            DbtConfig::new(MdaStrategy::Dpeh).with_threshold(5),
            Machine::without_caches(CostModel::flat()),
        );
        dbt.load(&prog);
        dbt.set_stack(0x00F0_0000);
        dbt.run(200_000_000).expect("halts");
        assert!(dbt.trace_snapshot().is_none());
    }

    #[test]
    fn pretranslation_discovers_and_translates_everything() {
        let prog = sum_loop_program(0x10_0001, 300);
        // Offline mode: no interpretation before translated execution.
        let mut cfg = DbtConfig::new(MdaStrategy::StaticProfiling)
            .with_pretranslate(true)
            .with_static_profile(StaticProfile::new());
        cfg.hot_threshold = u64::MAX; // runtime heating would never fire
        let mut dbt = Dbt::with_machine(cfg, Machine::without_caches(CostModel::flat()));
        dbt.load(&prog);
        dbt.set_stack(0x00F0_0000);
        dbt.write_guest_memory(0x10_0001, &7u32.to_le_bytes());
        let report = dbt.run(200_000_000).expect("halts");
        // All blocks translated ahead of time; nothing interpreted.
        assert!(report.blocks_translated >= 2, "{report}");
        assert_eq!(report.guest_insns_interpreted, 0, "{report}");
        assert_eq!(report.final_state.reg(Eax), 2100);
        // Empty train profile → per-occurrence fixups on the MDA site.
        assert!(report.os_fixups > 0);
    }

    #[test]
    fn adaptive_reversion_converts_back_to_plain_access() {
        // The site misaligns during profiling (so DPEH would emit a
        // sequence) but then turns permanently aligned: the Figure 8
        // adaptive code must observe the aligned streak and revert it.
        let prog = program(|a| {
            a.mov_ri(Ebx, 0x10_0002); // misaligned in phase 1
            a.mov_ri(Ecx, 3000);
            let top = a.here_label();
            a.alu_rm(AluOp::Add, Eax, MemRef::base_disp(Ebx, 0));
            a.alu_ri(AluOp::Cmp, Ecx, 2900);
            let skip = a.new_label();
            a.jcc(Cond::Ne, skip);
            a.mov_ri(Ebx, 0x10_0000); // phase 2: permanently aligned
            a.bind(skip);
            a.alu_ri(AluOp::Sub, Ecx, 1);
            a.jcc(Cond::Ne, top);
            a.hlt();
        });
        let cfg = DbtConfig::new(MdaStrategy::Dpeh)
            .with_threshold(10)
            .with_adaptive_reversion(true);
        let report = run_with(cfg, &prog);
        assert!(
            report.reversions >= 1,
            "streak must trigger reversion: {report}"
        );

        // And the result matches the plain-DPEH run.
        let plain = run_with(DbtConfig::new(MdaStrategy::Dpeh).with_threshold(10), &prog);
        assert_eq!(report.final_state.regs, plain.final_state.regs);
        assert_eq!(plain.reversions, 0);
    }

    #[test]
    fn adaptive_reversion_roundtrip_with_renewed_misalignment() {
        // Misaligned → long aligned streak (revert) → misaligned again:
        // the reverted plain access traps and is re-patched to a sequence.
        let prog = program(|a| {
            a.mov_ri(Ebx, 0x10_0002);
            a.mov_ri(Ecx, 3000);
            let top = a.here_label();
            a.alu_rm(AluOp::Add, Eax, MemRef::base_disp(Ebx, 0));
            a.alu_ri(AluOp::Cmp, Ecx, 2900);
            let s1 = a.new_label();
            a.jcc(Cond::Ne, s1);
            a.mov_ri(Ebx, 0x10_0000); // aligned phase
            a.bind(s1);
            a.alu_ri(AluOp::Cmp, Ecx, 300);
            let s2 = a.new_label();
            a.jcc(Cond::Ne, s2);
            a.mov_ri(Ebx, 0x10_0002); // misaligned again
            a.bind(s2);
            a.alu_ri(AluOp::Sub, Ecx, 1);
            a.jcc(Cond::Ne, top);
            a.hlt();
        });
        let cfg = DbtConfig::new(MdaStrategy::Dpeh)
            .with_threshold(10)
            .with_adaptive_reversion(true);
        let report = run_with(cfg, &prog);
        assert!(report.reversions >= 1, "{report}");
        assert!(
            report.traps() >= 1,
            "the reverted site must trap when misalignment returns: {report}"
        );
        let plain = run_with(DbtConfig::new(MdaStrategy::Dpeh).with_threshold(10), &prog);
        assert_eq!(report.final_state.regs, plain.final_state.regs);
    }

    #[test]
    fn os_fixup_handles_every_width() {
        // 2-, 4- and 8-byte misaligned stores and loads fixed up in
        // software under static profiling with an empty training profile.
        let prog = program(|a| {
            a.mov_ri(Ebx, 0x10_0001);
            a.mov_ri(Ecx, 60);
            a.mov_ri(Eax, 0x1234_5678);
            let top = a.here_label();
            a.store(bridge_x86::insn::Width::W2, Eax, MemRef::base_disp(Ebx, 0));
            a.store(bridge_x86::insn::Width::W4, Eax, MemRef::base_disp(Ebx, 8));
            a.movq_load(RegMm::Mm0, MemRef::base_disp(Ebx, 8));
            a.movq_store(RegMm::Mm0, MemRef::base_disp(Ebx, 16));
            a.alu_ri(AluOp::Sub, Ecx, 1);
            a.jcc(Cond::Ne, top);
            a.hlt();
        });
        let mut dbt = Dbt::with_machine(
            DbtConfig::new(MdaStrategy::StaticProfiling)
                .with_threshold(5)
                .with_static_profile(StaticProfile::new()),
            Machine::without_caches(CostModel::flat()),
        );
        dbt.load(&prog);
        dbt.set_stack(0x00F0_0000);
        let report = dbt.run(100_000_000).expect("halts");
        assert!(report.os_fixups > 100, "{report}");
        // Fixed-up stores really landed.
        assert_eq!(dbt.machine().mem().read_int(0x10_0001, 2), 0x5678);
        assert_eq!(dbt.machine().mem().read_int(0x10_0009, 4), 0x1234_5678);
        assert_eq!(dbt.machine().mem().read_int(0x10_0011, 8), 0x1234_5678);
        assert_eq!(report.final_state.mm(RegMm::Mm0), 0x1234_5678);
    }

    #[test]
    fn fuel_exhaustion_is_reported() {
        let prog = program(|a| {
            let top = a.here_label();
            a.jmp(top);
        });
        let mut dbt = Dbt::with_machine(
            DbtConfig::new(MdaStrategy::ExceptionHandling),
            Machine::without_caches(CostModel::flat()),
        );
        dbt.load(&prog);
        assert!(matches!(dbt.run(10_000), Err(DbtError::FuelExhausted)));
    }

    #[test]
    fn not_loaded_is_an_error() {
        let mut dbt = Dbt::new(DbtConfig::default());
        assert!(matches!(dbt.run(1000), Err(DbtError::NotLoaded)));
    }

    #[test]
    fn call_ret_across_blocks() {
        let prog = program(|a| {
            let func = a.new_label();
            a.mov_ri(Eax, 1);
            a.call(func);
            a.alu_ri(AluOp::Add, Eax, 100);
            a.hlt();
            a.bind(func);
            a.alu_ri(AluOp::Add, Eax, 10);
            a.ret();
        });
        for strategy in MdaStrategy::ALL {
            let mut cfg = DbtConfig::new(strategy).with_threshold(1);
            if strategy == MdaStrategy::StaticProfiling {
                cfg = cfg.with_static_profile(StaticProfile::new());
            }
            let report = run_with(cfg, &prog);
            assert_eq!(report.final_state.reg(Eax), 111, "{strategy:?}");
        }
    }

    /// A call/ret-heavy loop: `iters` calls through a tiny callee, the
    /// worst case for monitor-exit dispatch (every `ret` is dynamic).
    fn call_ret_loop_program(iters: i32) -> GuestProgram {
        program(|a| {
            let func = a.new_label();
            a.mov_ri(Ecx, iters);
            a.mov_ri(Eax, 0);
            let top = a.here_label();
            a.call(func);
            a.alu_ri(AluOp::Sub, Ecx, 1);
            a.jcc(Cond::Ne, top);
            a.hlt();
            a.bind(func);
            a.alu_ri(AluOp::Add, Eax, 1);
            a.ret();
        })
    }

    #[test]
    fn in_cache_dispatch_cuts_monitor_exits() {
        let prog = call_ret_loop_program(2000);
        let off = run_with(
            DbtConfig::new(MdaStrategy::ExceptionHandling).with_threshold(5),
            &prog,
        );
        let on = run_with(
            DbtConfig::new(MdaStrategy::ExceptionHandling)
                .with_threshold(5)
                .with_in_cache_dispatch(true),
            &prog,
        );
        assert_eq!(on.final_state.reg(Eax), 2000);
        assert_eq!(on.final_state.regs, off.final_state.regs);
        assert!(
            on.monitor_exits * 2 <= off.monitor_exits,
            "monitor exits: {} on vs {} off",
            on.monitor_exits,
            off.monitor_exits
        );
        assert!(on.ras_hits + on.ibtc_hits > 1000, "{on}");
        assert!(on.cycles() < off.cycles(), "in-cache dispatch must pay off");
        assert_eq!(off.ras_hits + off.ibtc_hits, 0, "off means off");
    }

    #[test]
    fn shadow_ras_resolves_returns_before_ibtc() {
        let prog = call_ret_loop_program(1500);
        let with_ras = run_with(
            DbtConfig::new(MdaStrategy::Dpeh)
                .with_threshold(5)
                .with_in_cache_dispatch(true),
            &prog,
        );
        let without_ras = run_with(
            DbtConfig::new(MdaStrategy::Dpeh)
                .with_threshold(5)
                .with_in_cache_dispatch(true)
                .with_shadow_ras(false),
            &prog,
        );
        assert_eq!(with_ras.final_state.regs, without_ras.final_state.regs);
        assert!(with_ras.ras_hits > 1000, "{with_ras}");
        assert_eq!(without_ras.ras_hits, 0);
        assert!(without_ras.ibtc_hits > 1000, "{without_ras}");
    }

    #[test]
    fn count_retired_matches_across_dispatch_modes() {
        let prog = call_ret_loop_program(800);
        let mk = |dispatch: bool| {
            DbtConfig::new(MdaStrategy::ExceptionHandling)
                .with_threshold(5)
                .with_in_cache_dispatch(dispatch)
                .with_count_retired(true)
        };
        let off = run_with(mk(false), &prog);
        let on = run_with(mk(true), &prog);
        assert!(on.guest_insns_retired > 0);
        assert_eq!(
            on.guest_insns_retired + on.guest_insns_interpreted,
            off.guest_insns_retired + off.guest_insns_interpreted,
            "total guest instructions must not depend on the dispatch path"
        );
    }

    #[test]
    fn write_guest_code_invalidates_chained_blocks() {
        // Entry block falls into a hot loop whose body we rewrite in
        // place; the write must drop the stale translations (and any
        // chains into them) so the new semantics take effect.
        let prog = program(|a| {
            a.mov_ri(Eax, 0);
            a.mov_ri(Ecx, 50);
            let top = a.here_label();
            a.alu_ri(AluOp::Add, Eax, 10);
            a.alu_ri(AluOp::Sub, Ecx, 1);
            a.jcc(Cond::Ne, top);
            a.hlt();
        });
        let add_pc = 0x40_000A; // after the two 5-byte movs
        for strategy in MdaStrategy::ALL {
            for dispatch in [false, true] {
                let mut cfg = DbtConfig::new(strategy)
                    .with_threshold(1)
                    .with_in_cache_dispatch(dispatch);
                if strategy == MdaStrategy::StaticProfiling {
                    cfg = cfg.with_static_profile(StaticProfile::new());
                }
                let mut dbt = Dbt::with_machine(cfg, Machine::without_caches(CostModel::flat()));
                dbt.load(&prog);
                dbt.set_stack(0x00F0_0000);
                let r = dbt.run(200_000_000).expect("halts");
                assert_eq!(r.final_state.reg(Eax), 500, "{strategy:?}");
                assert!(
                    dbt.code_cache_blocks().any(|b| b.guest_pc == add_pc),
                    "{strategy:?}: loop block must be translated"
                );
                // Re-assemble the add with a different immediate (same
                // 6-byte 0x81-form encoding, so the rest is intact).
                let mut asm = Assembler::new(add_pc);
                asm.alu_ri(AluOp::Add, Eax, 32);
                let bytes = asm.finish().unwrap();
                dbt.write_guest_code(add_pc, &bytes);
                assert!(
                    dbt.code_cache_blocks().all(|b| b.guest_pc != add_pc),
                    "{strategy:?}: stale block must be gone"
                );
                // No surviving chain may bypass the monitor into stale code.
                for b in dbt.code_cache_blocks() {
                    for s in &b.exit_slots {
                        assert!(
                            !(s.chained && s.target == add_pc),
                            "{strategy:?}: stale chain into rewritten code"
                        );
                    }
                }
                dbt.restart_at(0x40_0000);
                let r = dbt.run(200_000_000).expect("halts");
                assert_eq!(
                    r.final_state.reg(Eax),
                    50 * 32,
                    "{strategy:?} dispatch={dispatch}: rewritten code must run"
                );
            }
        }
    }

    #[test]
    fn flush_clears_ibtc_and_ras() {
        // Tiny code region: translation pressure forces whole-cache
        // flushes; afterwards no IBTC/RAS entry may survive (the run would
        // jump into freed code). Correct final state is the witness.
        let prog = call_ret_loop_program(1200);
        let mut cfg = DbtConfig::new(MdaStrategy::ExceptionHandling)
            .with_threshold(3)
            .with_in_cache_dispatch(true);
        cfg.code_bytes = 160; // too small for the whole working set
        let mut dbt = Dbt::with_machine(cfg, Machine::without_caches(CostModel::flat()));
        dbt.load(&prog);
        dbt.set_stack(0x00F0_0000);
        let r = dbt.run(400_000_000).expect("halts");
        assert!(r.cache_flushes >= 1, "flushes: {}", r.cache_flushes);
        assert_eq!(r.final_state.reg(Eax), 1200);
    }

    #[test]
    fn movq_8byte_mda_handled() {
        let prog = program(|a| {
            a.mov_ri(Ebx, 0x10_0003); // 8-byte misaligned
            a.mov_ri(Ecx, 300);
            let top = a.here_label();
            a.movq_load(RegMm::Mm0, MemRef::base_disp(Ebx, 0));
            a.movq_store(RegMm::Mm0, MemRef::base_disp(Ebx, 16));
            a.alu_ri(AluOp::Sub, Ecx, 1);
            a.jcc(Cond::Ne, top);
            a.hlt();
        });
        let mut dbt = Dbt::with_machine(
            DbtConfig::new(MdaStrategy::Dpeh).with_threshold(10),
            Machine::without_caches(CostModel::flat()),
        );
        dbt.load(&prog);
        dbt.write_guest_memory(0x10_0003, &0xAABB_CCDD_EEFF_0011u64.to_le_bytes());
        let report = dbt.run(100_000_000).expect("halts");
        assert_eq!(report.traps(), 0, "profiled 8-byte MDAs get sequences");
        assert_eq!(
            dbt.machine().mem().read_int(0x10_0013, 8),
            0xAABB_CCDD_EEFF_0011
        );
        assert_eq!(report.final_state.mm(RegMm::Mm0), 0xAABB_CCDD_EEFF_0011);
    }
}
