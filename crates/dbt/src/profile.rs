//! Execution and misalignment profiles (the paper's "Execution Profile" box
//! in Figures 3 and 4).

use std::collections::{HashMap, HashSet};

/// Identity of one static memory-access site: the guest instruction address
/// plus the access slot within it (read-modify-write instructions have a
/// load slot 0 and a store slot 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SiteId {
    /// Guest address of the instruction.
    pub pc: u32,
    /// Access slot within the instruction (0 or 1).
    pub slot: u8,
}

impl SiteId {
    /// Site for an instruction's first (or only) access.
    pub fn new(pc: u32, slot: u8) -> SiteId {
        SiteId { pc, slot }
    }
}

/// Per-site dynamic statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SiteStats {
    /// Dynamic executions of this access.
    pub execs: u64,
    /// How many of them were misaligned.
    pub mdas: u64,
}

impl SiteStats {
    /// Fraction of executions that were misaligned (0.0 if never executed).
    pub fn mda_ratio(&self) -> f64 {
        if self.execs == 0 {
            0.0
        } else {
            self.mdas as f64 / self.execs as f64
        }
    }
}

/// The profile a run accumulates: per-site misalignment statistics, block
/// heat, and whole-program counters (Table I's columns).
#[derive(Debug, Clone, Default)]
pub struct Profile {
    sites: HashMap<SiteId, SiteStats>,
    block_heat: HashMap<u32, u64>,
    /// Total guest instructions executed (interpreted or translated-block
    /// equivalents when known).
    pub guest_insns: u64,
    /// Total dynamic memory accesses observed.
    pub mem_accesses: u64,
    /// Total dynamic misaligned accesses observed.
    pub mdas: u64,
}

impl Profile {
    /// Empty profile.
    pub fn new() -> Profile {
        Profile::default()
    }

    /// Records one dynamic access at `site`.
    #[inline]
    pub fn record_access(&mut self, site: SiteId, misaligned: bool) {
        let s = self.sites.entry(site).or_default();
        s.execs += 1;
        self.mem_accesses += 1;
        if misaligned {
            s.mdas += 1;
            self.mdas += 1;
        }
    }

    /// Records an MDA discovered via a runtime trap (no execs counterpart —
    /// translated-code aligned executions are not individually profiled).
    #[inline]
    pub fn record_trap_mda(&mut self, site: SiteId) {
        let s = self.sites.entry(site).or_default();
        s.execs += 1;
        s.mdas += 1;
    }

    /// Statistics for one site.
    pub fn site(&self, site: SiteId) -> SiteStats {
        self.sites.get(&site).copied().unwrap_or_default()
    }

    /// Whether the site misaligned at least once so far — the criterion the
    /// paper's dynamic-profiling translator uses ("if the instruction has
    /// performed MDA once during the profiling stage", §III-C).
    pub fn saw_mda(&self, site: SiteId) -> bool {
        self.site(site).mdas > 0
    }

    /// Iterates over all sites with their statistics.
    pub fn iter_sites(&self) -> impl Iterator<Item = (SiteId, SiteStats)> + '_ {
        self.sites.iter().map(|(k, v)| (*k, *v))
    }

    /// Number of distinct instructions that performed at least one MDA —
    /// the paper's **NMI** column in Table I (slot-level sites collapsed to
    /// instructions).
    pub fn nmi(&self) -> usize {
        let pcs: HashSet<u32> = self
            .sites
            .iter()
            .filter(|(_, s)| s.mdas > 0)
            .map(|(id, _)| id.pc)
            .collect();
        pcs.len()
    }

    /// MDA ratio over all memory accesses — Table I's **Ratio** column.
    pub fn mda_ratio(&self) -> f64 {
        if self.mem_accesses == 0 {
            0.0
        } else {
            self.mdas as f64 / self.mem_accesses as f64
        }
    }

    /// Bumps a block's heat counter; returns the new value.
    pub fn heat_block(&mut self, pc: u32) -> u64 {
        let h = self.block_heat.entry(pc).or_insert(0);
        *h += 1;
        *h
    }

    /// A block's current heat.
    pub fn block_heat(&self, pc: u32) -> u64 {
        self.block_heat.get(&pc).copied().unwrap_or(0)
    }

    /// Resets the heat and per-site statistics of every site whose PC is in
    /// `pcs` — used when a block is invalidated for retranslation so the
    /// new profiling window observes only the program's *current*
    /// behaviour.
    pub fn reset_block(&mut self, block_pc: u32, pcs: &HashSet<u32>) {
        self.block_heat.insert(block_pc, 0);
        self.sites.retain(|id, _| !pcs.contains(&id.pc));
    }

    /// Extracts the set of MDA sites as a training profile for static
    /// profiling.
    pub fn to_static_profile(&self) -> StaticProfile {
        StaticProfile {
            mda_sites: self
                .sites
                .iter()
                .filter(|(_, s)| s.mdas > 0)
                .map(|(id, _)| *id)
                .collect(),
        }
    }
}

/// A training-run profile for [`MdaStrategy::StaticProfiling`]: the set of
/// sites that misaligned at least once during the training run.
///
/// [`MdaStrategy::StaticProfiling`]: crate::config::MdaStrategy::StaticProfiling
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StaticProfile {
    mda_sites: HashSet<SiteId>,
}

impl StaticProfile {
    /// Empty profile (every site translated as aligned).
    pub fn new() -> StaticProfile {
        StaticProfile::default()
    }

    /// Builds a profile from an explicit site list.
    pub fn from_sites<I: IntoIterator<Item = SiteId>>(sites: I) -> StaticProfile {
        StaticProfile {
            mda_sites: sites.into_iter().collect(),
        }
    }

    /// Whether the training run saw an MDA at this site.
    pub fn contains(&self, site: SiteId) -> bool {
        self.mda_sites.contains(&site)
    }

    /// Number of flagged sites.
    pub fn len(&self) -> usize {
        self.mda_sites.len()
    }

    /// Whether no site was flagged.
    pub fn is_empty(&self) -> bool {
        self.mda_sites.is_empty()
    }

    /// The flagged sites in `(pc, slot)` order — the deterministic
    /// serialization order for persistent artifacts.
    pub fn sorted_sites(&self) -> Vec<SiteId> {
        let mut sites: Vec<SiteId> = self.mda_sites.iter().copied().collect();
        sites.sort();
        sites
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_ratios() {
        let mut p = Profile::new();
        let s1 = SiteId::new(0x100, 0);
        let s2 = SiteId::new(0x200, 0);
        for _ in 0..3 {
            p.record_access(s1, true);
        }
        p.record_access(s1, false);
        p.record_access(s2, false);
        assert_eq!(p.site(s1).execs, 4);
        assert_eq!(p.site(s1).mdas, 3);
        assert!((p.site(s1).mda_ratio() - 0.75).abs() < 1e-12);
        assert!(p.saw_mda(s1));
        assert!(!p.saw_mda(s2));
        assert_eq!(p.mem_accesses, 5);
        assert_eq!(p.mdas, 3);
        assert_eq!(p.nmi(), 1);
        assert!((p.mda_ratio() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn nmi_counts_instructions_not_slots() {
        let mut p = Profile::new();
        p.record_access(SiteId::new(0x100, 0), true);
        p.record_access(SiteId::new(0x100, 1), true); // same instruction, RMW store
        p.record_access(SiteId::new(0x200, 0), true);
        assert_eq!(p.nmi(), 2);
    }

    #[test]
    fn block_heat_accumulates() {
        let mut p = Profile::new();
        assert_eq!(p.heat_block(0x400), 1);
        assert_eq!(p.heat_block(0x400), 2);
        assert_eq!(p.block_heat(0x400), 2);
        assert_eq!(p.block_heat(0x999), 0);
    }

    #[test]
    fn reset_block_clears_sites_and_heat() {
        let mut p = Profile::new();
        p.heat_block(0x400);
        p.record_access(SiteId::new(0x404, 0), true);
        p.record_access(SiteId::new(0x800, 0), true);
        let pcs: HashSet<u32> = [0x404].into_iter().collect();
        p.reset_block(0x400, &pcs);
        assert_eq!(p.block_heat(0x400), 0);
        assert!(!p.saw_mda(SiteId::new(0x404, 0)));
        assert!(p.saw_mda(SiteId::new(0x800, 0)));
        // Whole-program counters are preserved (Table I reporting).
        assert_eq!(p.mdas, 2);
    }

    #[test]
    fn static_profile_extraction() {
        let mut p = Profile::new();
        p.record_access(SiteId::new(0x1, 0), true);
        p.record_access(SiteId::new(0x2, 0), false);
        let sp = p.to_static_profile();
        assert_eq!(sp.len(), 1);
        assert!(sp.contains(SiteId::new(0x1, 0)));
        assert!(!sp.contains(SiteId::new(0x2, 0)));
        assert!(!sp.is_empty());
        assert!(StaticProfile::new().is_empty());
    }

    #[test]
    fn trap_recording() {
        let mut p = Profile::new();
        p.record_trap_mda(SiteId::new(0x10, 0));
        assert!(p.saw_mda(SiteId::new(0x10, 0)));
        assert_eq!(p.site(SiteId::new(0x10, 0)).execs, 1);
    }
}
