//! The guest→host register convention.
//!
//! Matches the paper's description: guest GPRs live permanently in low Alpha
//! registers (`%eax`→`R1`, `%ebx`→`R2` in its Figure 2 example maps to our
//! ordered mapping below), and `R21`–`R30` are translation temporaries.
//!
//! Guest 32-bit register values are kept **sign-extended to 64 bits**
//! (the canonical form `addl`/`ldl` produce), so signed comparisons work
//! directly; unsigned comparisons zero-extend via `zapnot` first.

use bridge_alpha::reg::Reg;
use bridge_x86::reg::{Reg32, RegMm};

/// Host register holding a guest GPR: `%eax..%edi` → `R1..R8`.
pub fn host_gpr(r: Reg32) -> Reg {
    Reg::from_index(1 + r.index())
}

/// Base register of the in-memory guest state block (MMX spill area).
pub const STATE_BASE_REG: Reg = Reg::R9;

/// Lazy condition-code state: the *kind tag* of the most recent
/// flag-setting guest instruction. Every live flag setter writes one of the
/// `FLAG_KIND_*` values here, so the engine can reconstruct exact EFLAGS
/// from `FLAG_A`/`FLAG_B` whenever control leaves translated code — even
/// across chained blocks that set no flags themselves.
pub const FLAG_KIND_REG: Reg = Reg::R0;

/// Kind tag: all flags cleared (`imul`).
pub const FLAG_KIND_CLEARED: u8 = 0;
/// Kind tag: flags of `FLAG_A + FLAG_B` (add).
pub const FLAG_KIND_ADD: u8 = 1;
/// Kind tag: flags of `FLAG_A - FLAG_B` (sub/cmp).
pub const FLAG_KIND_SUB: u8 = 2;
/// Kind tag: flags of the result value in `FLAG_A`; CF=OF=0 (logic ops).
pub const FLAG_KIND_LOGIC: u8 = 3;
/// Kind tag: result in `FLAG_A`, carry bit in `FLAG_B`; OF=0 (shifts).
pub const FLAG_KIND_SHIFT: u8 = 4;
/// Kind tag: `FLAG_A` holds packed `zf | sf<<1 | cf<<2 | of<<3` bits —
/// written only by the engine when entering translated code, so the flags
/// the interpreter left behind survive flag-neutral translated blocks.
pub const FLAG_KIND_DIRECT: u8 = 5;

/// Lazy condition-code state: left operand snapshot.
pub const FLAG_A: Reg = Reg::R10;
/// Lazy condition-code state: right operand snapshot (or carry bit for
/// shifts).
pub const FLAG_B: Reg = Reg::R11;

/// Effective-address scratch.
pub const ADDR_TMP: Reg = Reg::R12;
/// Memory-value scratch (RMW forms, `imul` memory operand).
pub const VALUE_TMP: Reg = Reg::R13;
/// Condition materialization scratch.
pub const COND_TMP: Reg = Reg::R14;
/// Immediate / secondary scratch.
pub const IMM_TMP: Reg = Reg::R15;

/// Dispatcher communication: translated code leaves the next guest PC here
/// before `call_pal exit_monitor`.
pub const EXIT_PC_REG: Reg = Reg::R16;

/// Host registers caching the hot MMX registers `mm0..mm3`; `mm4..mm7`
/// live in the state block.
pub const MMX_REGS: [Reg; 4] = [Reg::R17, Reg::R18, Reg::R19, Reg::R20];

/// Number of MMX registers cached in host registers.
pub const MMX_IN_REGS: usize = MMX_REGS.len();

/// Host address of the guest state block (8-aligned; outside the guest's
/// 32-bit address space).
pub const STATE_BLOCK_ADDR: u64 = 0x2_0000_0000;

/// Byte offset of an MMX register slot within the state block.
pub fn mmx_spill_offset(r: RegMm) -> i16 {
    (r.index() as i16) * 8
}

/// Byte offset (from the state block base in [`STATE_BASE_REG`]) of the
/// aligned-streak counter used by the Figure 8 adaptive code for the site
/// at `(pc, slot)`. Counters live in a sparse region above the MMX spill
/// area; the paged host memory allocates them on demand.
pub fn streak_counter_offset(pc: u32, slot: u8) -> i64 {
    0x1000 + i64::from(pc & 0x003F_FFFF) * 8 + i64::from(slot) * 4
}

/// Host register caching an MMX register, if it is one of the hot four.
pub fn mmx_host_reg(r: RegMm) -> Option<Reg> {
    MMX_REGS.get(r.index()).copied()
}

/// Base host address of the translated-code region (outside the guest's
/// 32-bit address space, so guest data can never collide with host code).
pub const CODE_CACHE_ADDR: u64 = 0x1_0000_0000;

// ---------------------------------------------------------------------------
// In-code-cache dispatch (IBTC + shadow return stack).
//
// The registers below are *persistent* across translated blocks and monitor
// round-trips: they must not collide with the guest GPRs (R1–R8), the state
// registers (R0, R9–R11), the transient translation temporaries (R12–R16),
// the cached MMX registers (R17–R20), or the MDA-sequence/exception-stub
// scratch registers (`SeqTemps::default()` uses R21–R25). That leaves
// R26–R30.
// ---------------------------------------------------------------------------

/// Base register of the dispatch data region (IBTC + shadow return stack),
/// set by the engine on every translated-code entry.
pub const DISPATCH_BASE_REG: Reg = Reg::R26;

/// Shadow-return-stack top-of-stack byte offset (always a multiple of
/// [`RAS_ENTRY_BYTES`] in `[0, RAS_BYTES)`), relative to
/// `DISPATCH_BASE + RAS_OFFSET`.
pub const RAS_PTR_REG: Reg = Reg::R27;

/// Counter of IBTC-resolved in-cache transfers, bumped by the emitted probe
/// on its hit path and read back by the engine.
pub const IBTC_HIT_CTR: Reg = Reg::R28;

/// Counter of shadow-return-stack-resolved transfers.
pub const RAS_HIT_CTR: Reg = Reg::R29;

/// Counter of guest instructions retired in translated code (bumped once
/// per block entry by `guest_insn_count`; only emitted under
/// `DbtConfig::count_retired`).
pub const RETIRE_CTR: Reg = Reg::R30;

/// Host address of the dispatch data region. The IBTC occupies
/// `[DISPATCH_BASE_ADDR, DISPATCH_BASE_ADDR + IBTC_BYTES)`; the shadow
/// return stack follows at [`RAS_OFFSET`]. Both are plain data to the host
/// machine — never executed, never invalidated by `write_code`.
pub const DISPATCH_BASE_ADDR: u64 = 0x3_0000_0000;

/// Number of direct-mapped IBTC entries (a power of two; the emitted probe
/// masks the guest PC with `IBTC_ENTRIES - 1`).
pub const IBTC_ENTRIES: u64 = 1024;

/// Bytes per IBTC entry: `{ tag: u64, host_entry: u64 }`. The tag is the
/// guest PC in the canonical sign-extended-i32 form translated code
/// produces (`ldl`/`load_imm32`), so the probe's `cmpeq` never needs to
/// re-canonicalize.
pub const IBTC_ENTRY_BYTES: u64 = 16;

/// Total IBTC bytes.
pub const IBTC_BYTES: u64 = IBTC_ENTRIES * IBTC_ENTRY_BYTES;

/// Byte offset of the shadow return stack within the dispatch region
/// (small enough to fold into a 16-bit memory displacement).
pub const RAS_OFFSET: i16 = IBTC_BYTES as i16;

/// Number of shadow-return-stack entries (a power of two; pushes wrap).
/// Sixteen matches hardware return-address-stack depths, and keeps the
/// whole stack within one byte of offset so the emitted wrap is a single
/// `zapnot ptr, 0x01`.
pub const RAS_ENTRIES: u64 = 16;

/// Bytes per shadow-return-stack entry: `{ tag: u64, host_entry: u64 }`,
/// same layout as an IBTC entry.
pub const RAS_ENTRY_BYTES: u64 = 16;

/// Total shadow-return-stack bytes.
pub const RAS_BYTES: u64 = RAS_ENTRIES * RAS_ENTRY_BYTES;

/// The IBTC tag for a guest PC: the canonical sign-extended-i32 form that
/// `ldl` and `load_imm32` leave in registers.
pub fn ibtc_tag(pc: u32) -> u64 {
    pc as i32 as i64 as u64
}

/// Host address of the direct-mapped IBTC slot for a guest PC. Matches the
/// emitted probe's index extraction: `(pc & (IBTC_ENTRIES-1)) *
/// IBTC_ENTRY_BYTES` (x86 PCs are byte-aligned, so no bits are discarded).
pub fn ibtc_slot_addr(pc: u32) -> u64 {
    DISPATCH_BASE_ADDR + (u64::from(pc) & (IBTC_ENTRIES - 1)) * IBTC_ENTRY_BYTES
}

/// Byte offset of a guest PC's IBTC slot from [`DISPATCH_BASE_REG`]
/// (always fits a 16-bit memory displacement: max `1023 * 16 + 8`).
pub fn ibtc_slot_offset(pc: u32) -> i16 {
    ((u64::from(pc) & (IBTC_ENTRIES - 1)) * IBTC_ENTRY_BYTES) as i16
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpr_mapping_is_dense_and_low() {
        assert_eq!(host_gpr(Reg32::Eax), Reg::R1);
        assert_eq!(host_gpr(Reg32::Ebx), Reg::R4); // ebx is register #3
        assert_eq!(host_gpr(Reg32::Edi), Reg::R8);
        // All guest GPRs map to distinct host registers.
        let mut seen = std::collections::HashSet::new();
        for r in Reg32::ALL {
            assert!(seen.insert(host_gpr(r)));
        }
    }

    #[test]
    fn temporaries_do_not_collide_with_state() {
        let reserved = [
            STATE_BASE_REG,
            FLAG_A,
            FLAG_B,
            ADDR_TMP,
            VALUE_TMP,
            COND_TMP,
            IMM_TMP,
            EXIT_PC_REG,
            DISPATCH_BASE_REG,
            RAS_PTR_REG,
            IBTC_HIT_CTR,
            RAS_HIT_CTR,
            RETIRE_CTR,
        ];
        for r in Reg32::ALL {
            assert!(!reserved.contains(&host_gpr(r)));
            assert!(!MMX_REGS.contains(&host_gpr(r)));
        }
        let mut all: Vec<Reg> = reserved.into_iter().chain(MMX_REGS).collect();
        let before = all.len();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), before, "reserved registers must be distinct");
    }

    #[test]
    fn mmx_split() {
        assert_eq!(mmx_host_reg(RegMm::Mm0), Some(Reg::R17));
        assert_eq!(mmx_host_reg(RegMm::Mm3), Some(Reg::R20));
        assert_eq!(mmx_host_reg(RegMm::Mm4), None);
        assert_eq!(mmx_spill_offset(RegMm::Mm7), 56);
    }

    #[test]
    fn address_spaces_disjoint() {
        assert!(CODE_CACHE_ADDR > u64::from(u32::MAX));
        assert!(STATE_BLOCK_ADDR > u64::from(u32::MAX));
        assert_eq!(STATE_BLOCK_ADDR & 7, 0);
        assert!(DISPATCH_BASE_ADDR > u64::from(u32::MAX));
        assert_eq!(DISPATCH_BASE_ADDR & 7, 0);
    }

    #[test]
    fn dispatch_registers_survive_mda_sequences() {
        // The MDA sequences and exception stubs clobber SeqTemps; the
        // persistent dispatch registers must be outside that set.
        let temps = bridge_alpha::mda_seq::SeqTemps::default();
        let clobbered = [temps.t1, temps.t2, temps.t3, temps.t4, temps.t5];
        for r in [
            DISPATCH_BASE_REG,
            RAS_PTR_REG,
            IBTC_HIT_CTR,
            RAS_HIT_CTR,
            RETIRE_CTR,
        ] {
            assert!(!clobbered.contains(&r), "{r:?} is MDA-sequence scratch");
        }
    }

    #[test]
    fn ibtc_layout_round_trips() {
        // Slot offsets fit a 16-bit displacement and match the slot address.
        for pc in [0u32, 1, 0x40_0000, 0x40_03FF, u32::MAX] {
            let off = ibtc_slot_offset(pc);
            assert!(off >= 0);
            assert_eq!(DISPATCH_BASE_ADDR + off as u64, ibtc_slot_addr(pc));
            assert!(i64::from(off) + 8 < i64::from(i16::MAX));
        }
        // Adjacent byte addresses map to distinct slots (x86 PCs are
        // byte-aligned).
        assert_ne!(ibtc_slot_addr(0x40_0001), ibtc_slot_addr(0x40_0002));
        // The RAS sits immediately after the IBTC, within lda range.
        assert_eq!(i64::from(RAS_OFFSET), IBTC_BYTES as i64);
        assert!(IBTC_BYTES + RAS_BYTES < i64::from(i16::MAX) as u64 * 2);
        // Tags are the canonical sign-extended form.
        assert_eq!(ibtc_tag(0x8000_0000), 0xFFFF_FFFF_8000_0000);
        assert_eq!(ibtc_tag(0x40_0000), 0x40_0000);
    }
}
