//! The guest→host register convention.
//!
//! Matches the paper's description: guest GPRs live permanently in low Alpha
//! registers (`%eax`→`R1`, `%ebx`→`R2` in its Figure 2 example maps to our
//! ordered mapping below), and `R21`–`R30` are translation temporaries.
//!
//! Guest 32-bit register values are kept **sign-extended to 64 bits**
//! (the canonical form `addl`/`ldl` produce), so signed comparisons work
//! directly; unsigned comparisons zero-extend via `zapnot` first.

use bridge_alpha::reg::Reg;
use bridge_x86::reg::{Reg32, RegMm};

/// Host register holding a guest GPR: `%eax..%edi` → `R1..R8`.
pub fn host_gpr(r: Reg32) -> Reg {
    Reg::from_index(1 + r.index())
}

/// Base register of the in-memory guest state block (MMX spill area).
pub const STATE_BASE_REG: Reg = Reg::R9;

/// Lazy condition-code state: the *kind tag* of the most recent
/// flag-setting guest instruction. Every live flag setter writes one of the
/// `FLAG_KIND_*` values here, so the engine can reconstruct exact EFLAGS
/// from `FLAG_A`/`FLAG_B` whenever control leaves translated code — even
/// across chained blocks that set no flags themselves.
pub const FLAG_KIND_REG: Reg = Reg::R0;

/// Kind tag: all flags cleared (`imul`).
pub const FLAG_KIND_CLEARED: u8 = 0;
/// Kind tag: flags of `FLAG_A + FLAG_B` (add).
pub const FLAG_KIND_ADD: u8 = 1;
/// Kind tag: flags of `FLAG_A - FLAG_B` (sub/cmp).
pub const FLAG_KIND_SUB: u8 = 2;
/// Kind tag: flags of the result value in `FLAG_A`; CF=OF=0 (logic ops).
pub const FLAG_KIND_LOGIC: u8 = 3;
/// Kind tag: result in `FLAG_A`, carry bit in `FLAG_B`; OF=0 (shifts).
pub const FLAG_KIND_SHIFT: u8 = 4;
/// Kind tag: `FLAG_A` holds packed `zf | sf<<1 | cf<<2 | of<<3` bits —
/// written only by the engine when entering translated code, so the flags
/// the interpreter left behind survive flag-neutral translated blocks.
pub const FLAG_KIND_DIRECT: u8 = 5;

/// Lazy condition-code state: left operand snapshot.
pub const FLAG_A: Reg = Reg::R10;
/// Lazy condition-code state: right operand snapshot (or carry bit for
/// shifts).
pub const FLAG_B: Reg = Reg::R11;

/// Effective-address scratch.
pub const ADDR_TMP: Reg = Reg::R12;
/// Memory-value scratch (RMW forms, `imul` memory operand).
pub const VALUE_TMP: Reg = Reg::R13;
/// Condition materialization scratch.
pub const COND_TMP: Reg = Reg::R14;
/// Immediate / secondary scratch.
pub const IMM_TMP: Reg = Reg::R15;

/// Dispatcher communication: translated code leaves the next guest PC here
/// before `call_pal exit_monitor`.
pub const EXIT_PC_REG: Reg = Reg::R16;

/// Host registers caching the hot MMX registers `mm0..mm3`; `mm4..mm7`
/// live in the state block.
pub const MMX_REGS: [Reg; 4] = [Reg::R17, Reg::R18, Reg::R19, Reg::R20];

/// Number of MMX registers cached in host registers.
pub const MMX_IN_REGS: usize = MMX_REGS.len();

/// Host address of the guest state block (8-aligned; outside the guest's
/// 32-bit address space).
pub const STATE_BLOCK_ADDR: u64 = 0x2_0000_0000;

/// Byte offset of an MMX register slot within the state block.
pub fn mmx_spill_offset(r: RegMm) -> i16 {
    (r.index() as i16) * 8
}

/// Byte offset (from the state block base in [`STATE_BASE_REG`]) of the
/// aligned-streak counter used by the Figure 8 adaptive code for the site
/// at `(pc, slot)`. Counters live in a sparse region above the MMX spill
/// area; the paged host memory allocates them on demand.
pub fn streak_counter_offset(pc: u32, slot: u8) -> i64 {
    0x1000 + i64::from(pc & 0x003F_FFFF) * 8 + i64::from(slot) * 4
}

/// Host register caching an MMX register, if it is one of the hot four.
pub fn mmx_host_reg(r: RegMm) -> Option<Reg> {
    MMX_REGS.get(r.index()).copied()
}

/// Base host address of the translated-code region (outside the guest's
/// 32-bit address space, so guest data can never collide with host code).
pub const CODE_CACHE_ADDR: u64 = 0x1_0000_0000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpr_mapping_is_dense_and_low() {
        assert_eq!(host_gpr(Reg32::Eax), Reg::R1);
        assert_eq!(host_gpr(Reg32::Ebx), Reg::R4); // ebx is register #3
        assert_eq!(host_gpr(Reg32::Edi), Reg::R8);
        // All guest GPRs map to distinct host registers.
        let mut seen = std::collections::HashSet::new();
        for r in Reg32::ALL {
            assert!(seen.insert(host_gpr(r)));
        }
    }

    #[test]
    fn temporaries_do_not_collide_with_state() {
        let reserved = [
            STATE_BASE_REG,
            FLAG_A,
            FLAG_B,
            ADDR_TMP,
            VALUE_TMP,
            COND_TMP,
            IMM_TMP,
            EXIT_PC_REG,
        ];
        for r in Reg32::ALL {
            assert!(!reserved.contains(&host_gpr(r)));
            assert!(!MMX_REGS.contains(&host_gpr(r)));
        }
        let mut all: Vec<Reg> = reserved.into_iter().chain(MMX_REGS).collect();
        let before = all.len();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), before, "reserved registers must be distinct");
    }

    #[test]
    fn mmx_split() {
        assert_eq!(mmx_host_reg(RegMm::Mm0), Some(Reg::R17));
        assert_eq!(mmx_host_reg(RegMm::Mm3), Some(Reg::R20));
        assert_eq!(mmx_host_reg(RegMm::Mm4), None);
        assert_eq!(mmx_spill_offset(RegMm::Mm7), 56);
    }

    #[test]
    fn address_spaces_disjoint() {
        assert!(CODE_CACHE_ADDR > u64::from(u32::MAX));
        assert!(STATE_BLOCK_ADDR > u64::from(u32::MAX));
        assert_eq!(STATE_BLOCK_ADDR & 7, 0);
    }
}
