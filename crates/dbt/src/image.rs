//! Persistent AOT translation images: the serialized form of a kernel's
//! shared translation cache.
//!
//! The paper's whole premise is that translation-time work — strategy
//! selection, profiling, retranslation — is paid at runtime. Elevator
//! (PAPERS.md) shows a deterministic translator can pay it once, offline.
//! Our engine asserts byte-determinism of its translation products (the
//! shared-cache tests prove shared-vs-private byte identity), which makes
//! the product safe to persist: a [`TranslationImage`] captures every
//! entry of a [`SharedCodeCache`] — TB words, metadata, the centrally
//! allocated host addresses, the per-site MDA plan vectors and dispatch
//! options — plus the FX!32-style training [`StaticProfile`], keyed by a
//! guest-image content hash and the artifact format version. A warm
//! process restores the image into a fresh cache and every engine's first
//! dispatch validates-and-reuses instead of translating; because engines
//! still pay the full *simulated* translation charge on install, warm
//! runs are byte-identical to cold ones — only host-side translator work
//! disappears.
//!
//! Per-engine dispatch state (IBTC, shadow return stack, chain patches)
//! is deliberately **not** serialized: it lives in each engine's
//! simulated memory and is rebuilt identically during execution.
//!
//! # Format
//!
//! A zero-dependency little-endian binary: a fixed header (magic,
//! format version, key), length-prefixed sections each with its own
//! checksum, and a whole-file checksum trailer:
//!
//! ```text
//! header   "DBTI" | version u32 | guest_hash u64 | strategy u8 | pad[3]
//!          | hot_threshold u64 | code_bytes u64 | section_count u32
//! section  tag u32 ("BLKS" / "PROF") | len u64 | checksum u64 | payload
//! trailer  file_checksum u64   (over everything before it)
//! ```
//!
//! # Validation
//!
//! [`TranslationImage::from_bytes`] verifies magic, version, section
//! structure, every section checksum and the file checksum;
//! [`ImageStore::load`] additionally verifies the key (guest hash,
//! strategy, threshold). Any failure rejects the whole artifact —
//! corrupt or stale images are never half-loaded; callers fall back to
//! fresh translation.

use crate::config::MdaStrategy;
use crate::profile::{SiteId, StaticProfile};
use crate::shared::{PlanVector, SharedCodeCache};
use crate::translator::{DispatchOpts, ExitStub, SiteAccess, SitePlan, TranslatedBlock};
use bridge_sim::hashing::FxHasher;
use bridge_x86::insn::Width;
use std::fmt;
use std::hash::Hasher as _;
use std::path::{Path, PathBuf};

/// File magic: the first four bytes of every artifact.
pub const IMAGE_MAGIC: [u8; 4] = *b"DBTI";

/// Artifact format version. Bump on any layout change: a loader only
/// accepts its own version, so stale artifacts from older engines are
/// rejected (and rebuilt), never misparsed.
pub const IMAGE_VERSION: u32 = 1;

/// Artifact file extension.
pub const IMAGE_EXT: &str = "dbti";

const SEC_BLOCKS: u32 = u32::from_le_bytes(*b"BLKS");
const SEC_PROFILE: u32 = u32::from_le_bytes(*b"PROF");

/// Why an artifact was rejected (or could not be produced). Every load
/// failure is total: the caller sees one of these and a pristine cache,
/// never a partial load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImageError {
    /// The file does not start with [`IMAGE_MAGIC`].
    BadMagic,
    /// The file's format version is not [`IMAGE_VERSION`].
    BadVersion {
        /// Version found in the header.
        found: u32,
    },
    /// The file ended before a declared structure was complete.
    Truncated,
    /// A section's payload does not match its stored checksum.
    SectionChecksum {
        /// Section name ("blocks" or "profile").
        section: &'static str,
    },
    /// The whole-file checksum trailer does not match.
    FileChecksum,
    /// The artifact is well-formed but keyed for different content: the
    /// guest image hash, strategy or threshold differ from the request.
    KeyMismatch {
        /// Which key field diverged.
        field: &'static str,
    },
    /// The artifact was built for a different cache capacity, so its
    /// recorded layout cannot be reproduced.
    Capacity {
        /// Capacity recorded in the artifact.
        expected: u64,
        /// Capacity of the cache being populated.
        found: u64,
    },
    /// Structurally invalid content (bad enum tag, impossible count,
    /// layout-breaking addresses).
    Malformed(&'static str),
    /// No artifact exists for the key.
    Missing,
    /// The source cache saw evictions, invalidations or guest patches —
    /// its layout is not the pure bump layout an image can replay.
    UnstableCache,
    /// Host I/O failed (message carries the `std::io::Error` text).
    Io(String),
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageError::BadMagic => write!(f, "not a translation image (bad magic)"),
            ImageError::BadVersion { found } => {
                write!(
                    f,
                    "format version {found} (this engine reads {IMAGE_VERSION})"
                )
            }
            ImageError::Truncated => write!(f, "truncated artifact"),
            ImageError::SectionChecksum { section } => {
                write!(f, "checksum mismatch in {section} section")
            }
            ImageError::FileChecksum => write!(f, "file checksum mismatch"),
            ImageError::KeyMismatch { field } => write!(f, "stale artifact: {field} differs"),
            ImageError::Capacity { expected, found } => {
                write!(f, "cache capacity {found} differs from image's {expected}")
            }
            ImageError::Malformed(what) => write!(f, "malformed artifact: {what}"),
            ImageError::Missing => write!(f, "no artifact for key"),
            ImageError::UnstableCache => {
                write!(
                    f,
                    "source cache layout unstable (evictions or invalidations)"
                )
            }
            ImageError::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl ImageError {
    /// Short machine-readable tag, stable across versions — the reject
    /// code carried by `TraceEvent::ImageReject` and printed by audits.
    pub fn code(&self) -> u32 {
        match self {
            ImageError::BadMagic => 1,
            ImageError::BadVersion { .. } => 2,
            ImageError::Truncated => 3,
            ImageError::SectionChecksum { .. } => 4,
            ImageError::FileChecksum => 5,
            ImageError::KeyMismatch { .. } => 6,
            ImageError::Capacity { .. } => 7,
            ImageError::Malformed(_) => 8,
            ImageError::Missing => 9,
            ImageError::UnstableCache => 10,
            ImageError::Io(_) => 11,
        }
    }
}

/// What an artifact is keyed by: the guest image content and the
/// translation context. Two runs with equal keys are deterministic
/// replicas, so one's translation products serve the other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ImageKey {
    /// Content hash of the guest image (code, data, entry, stack) —
    /// see [`content_hash`].
    pub guest_hash: u64,
    /// The MDA strategy the blocks were translated under.
    pub strategy: MdaStrategy,
    /// The heating threshold of the translation context.
    pub hot_threshold: u64,
}

impl ImageKey {
    /// The canonical artifact file name for this key:
    /// `dbti-<hash>-<strategy>-t<threshold>.dbti`.
    pub fn file_name(&self) -> String {
        format!(
            "dbti-{:016x}-{}-t{}.{IMAGE_EXT}",
            self.guest_hash,
            strategy_tag(self.strategy),
            self.hot_threshold
        )
    }
}

/// Short stable strategy tag used in file names and audit listings.
pub fn strategy_tag(s: MdaStrategy) -> &'static str {
    match s {
        MdaStrategy::Direct => "direct",
        MdaStrategy::StaticProfiling => "static",
        MdaStrategy::DynamicProfiling => "dynamic",
        MdaStrategy::ExceptionHandling => "eh",
        MdaStrategy::Dpeh => "dpeh",
    }
}

/// Deterministic content hash over the parts of a guest image (each part
/// is hashed with its length, so `["ab","c"]` and `["a","bc"]` differ).
pub fn content_hash(parts: &[&[u8]]) -> u64 {
    let mut h = FxHasher::default();
    for p in parts {
        h.write_u64(p.len() as u64);
        h.write(p);
    }
    h.finish()
}

fn checksum(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(bytes);
    h.finish()
}

/// One captured translation product: everything
/// [`SharedCodeCache::restore`] needs to recreate the entry.
#[derive(Debug, Clone)]
pub struct ImageBlock {
    /// The translation product (words emitted for `host_addr`).
    pub tb: TranslatedBlock,
    /// The centrally allocated host address.
    pub host_addr: u64,
    /// Per-PC translation variant (see `SharedBlock::variant`).
    pub variant: u32,
    /// The per-site decisions the block was translated under — the
    /// validation key every consumer re-checks before reuse.
    pub plans: PlanVector,
    /// The dispatch features the block was emitted with.
    pub opts: DispatchOpts,
}

/// A persistent, versioned AOT artifact: one translation context's
/// complete code cache plus the training profile (see the module docs).
#[derive(Debug, Clone)]
pub struct TranslationImage {
    /// The artifact key.
    pub key: ImageKey,
    /// Capacity (bytes) of the cache the blocks were laid out for.
    pub code_bytes: u64,
    /// Captured entries in host-address (= translation) order.
    pub blocks: Vec<ImageBlock>,
    /// The FX!32-style training profile, when the context had built one
    /// (static-profiling guests); `None` otherwise.
    pub profile: Option<Vec<SiteId>>,
}

impl TranslationImage {
    /// Captures a cache's current contents as an artifact.
    ///
    /// # Errors
    ///
    /// [`ImageError::UnstableCache`] when the cache ever evicted,
    /// invalidated or logged a guest patch — such layouts are not the
    /// pure bump layout a warm restore can replay byte-identically.
    pub fn capture(
        cache: &SharedCodeCache,
        key: ImageKey,
        profile: Option<&StaticProfile>,
    ) -> Result<TranslationImage, ImageError> {
        let stats = cache.stats();
        if stats.evictions != 0 || stats.invalidations != 0 || !cache.patches_since(0).0.is_empty()
        {
            return Err(ImageError::UnstableCache);
        }
        let blocks = cache
            .snapshot_entries()
            .iter()
            .map(|e| ImageBlock {
                tb: e.tb.clone(),
                host_addr: e.host_addr,
                variant: e.variant,
                plans: e.plans.clone(),
                opts: e.opts,
            })
            .collect();
        Ok(TranslationImage {
            key,
            code_bytes: cache.capacity(),
            blocks,
            profile: profile.map(StaticProfile::sorted_sites),
        })
    }

    /// Restores every captured entry into `cache`, which must be fresh
    /// (nothing inserted) and sized exactly as the source was.
    /// Returns the number of blocks restored.
    ///
    /// # Errors
    ///
    /// [`ImageError::Capacity`] on a capacity mismatch and
    /// [`ImageError::Malformed`] when the recorded layout cannot be
    /// replayed. On error the caller must discard `cache` — entries
    /// restored before the failure remain (never serve a half-load).
    pub fn populate(&self, cache: &SharedCodeCache) -> Result<usize, ImageError> {
        if cache.capacity() != self.code_bytes {
            return Err(ImageError::Capacity {
                expected: self.code_bytes,
                found: cache.capacity(),
            });
        }
        if cache.stats().insertions != 0 {
            return Err(ImageError::Malformed("target cache is not empty"));
        }
        for b in &self.blocks {
            cache
                .restore(
                    b.tb.clone(),
                    b.host_addr,
                    b.variant,
                    b.plans.clone(),
                    b.opts,
                )
                .map_err(ImageError::Malformed)?;
        }
        Ok(self.blocks.len())
    }

    /// The training profile as a [`StaticProfile`], when one was stored.
    pub fn static_profile(&self) -> Option<StaticProfile> {
        self.profile
            .as_ref()
            .map(|sites| StaticProfile::from_sites(sites.iter().copied()))
    }

    /// Total emitted code words across all blocks.
    pub fn total_words(&self) -> usize {
        self.blocks.iter().map(|b| b.tb.words.len()).sum()
    }

    /// Serializes the artifact (deterministic: equal images yield equal
    /// bytes).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + 16 * self.total_words());
        out.extend_from_slice(&IMAGE_MAGIC);
        put_u32(&mut out, IMAGE_VERSION);
        put_u64(&mut out, self.key.guest_hash);
        out.push(strategy_to_u8(self.key.strategy));
        out.extend_from_slice(&[0u8; 3]);
        put_u64(&mut out, self.key.hot_threshold);
        put_u64(&mut out, self.code_bytes);
        put_u32(&mut out, 2); // section count

        let blocks = self.blocks_payload();
        put_section(&mut out, SEC_BLOCKS, &blocks);
        let profile = self.profile_payload();
        put_section(&mut out, SEC_PROFILE, &profile);

        let crc = checksum(&out);
        put_u64(&mut out, crc);
        out
    }

    fn blocks_payload(&self) -> Vec<u8> {
        let mut p = Vec::new();
        put_u32(&mut p, self.blocks.len() as u32);
        for b in &self.blocks {
            put_u32(&mut p, b.tb.guest_pc);
            put_u32(&mut p, b.tb.guest_end);
            put_u32(&mut p, b.tb.guest_insn_count);
            put_u32(&mut p, b.variant);
            put_u64(&mut p, b.host_addr);
            p.push(opts_to_u8(b.opts));
            put_u32(&mut p, b.tb.words.len() as u32);
            for &w in &b.tb.words {
                put_u32(&mut p, w);
            }
            put_u32(&mut p, b.tb.trap_sites.len() as u32);
            for &(addr, site) in &b.tb.trap_sites {
                put_u64(&mut p, addr);
                put_u32(&mut p, site.pc);
                p.push(site.slot);
            }
            put_u32(&mut p, b.tb.exits.len() as u32);
            for e in &b.tb.exits {
                put_u64(&mut p, e.host_addr);
                put_u32(&mut p, e.target);
            }
            put_u32(&mut p, b.tb.indirect_exits.len() as u32);
            for &a in &b.tb.indirect_exits {
                put_u64(&mut p, a);
            }
            put_u32(&mut p, b.tb.guest_pcs.len() as u32);
            for &pc in &b.tb.guest_pcs {
                put_u32(&mut p, pc);
            }
            put_u32(&mut p, b.tb.insn_starts.len() as u32);
            for &(pc, w) in &b.tb.insn_starts {
                put_u32(&mut p, pc);
                put_u32(&mut p, w);
            }
            put_u32(&mut p, b.plans.len() as u32);
            for &(site, acc, plan) in &b.plans {
                put_u32(&mut p, site.pc);
                p.push(site.slot);
                p.push(width_to_u8(acc.width));
                p.push(u8::from(acc.is_store));
                let (tag, threshold) = plan_to_u8(plan);
                p.push(tag);
                p.push(threshold);
            }
        }
        p
    }

    fn profile_payload(&self) -> Vec<u8> {
        let mut p = Vec::new();
        match &self.profile {
            None => p.push(0),
            Some(sites) => {
                p.push(1);
                put_u32(&mut p, sites.len() as u32);
                for s in sites {
                    put_u32(&mut p, s.pc);
                    p.push(s.slot);
                }
            }
        }
        p
    }

    /// Parses and fully validates an artifact: magic, version, section
    /// structure, per-section checksums, file checksum.
    ///
    /// # Errors
    ///
    /// See [`ImageError`]; on any error nothing of the artifact is used.
    pub fn from_bytes(bytes: &[u8]) -> Result<TranslationImage, ImageError> {
        if bytes.len() < 4 {
            return Err(ImageError::Truncated);
        }
        if bytes[..4] != IMAGE_MAGIC {
            return Err(ImageError::BadMagic);
        }
        // Trailer first: the file checksum covers everything before it,
        // so a flipped byte anywhere is caught even if it also happens
        // to land in a section payload.
        if bytes.len() < 12 {
            // Magic plus the 8-byte trailer is the smallest possible file.
            return Err(ImageError::Truncated);
        }
        let body_len = bytes.len() - 8;
        let stored = u64::from_le_bytes(bytes[body_len..].try_into().expect("eight trailer bytes"));
        if checksum(&bytes[..body_len]) != stored {
            // Distinguish a clean truncation (bad structure below) from
            // corruption only as far as structure parsing allows; the
            // file checksum is the outer gate.
            if parse_body(&bytes[4..body_len]).is_err() {
                return parse_body(&bytes[4..body_len]).map(|_| unreachable!());
            }
            return Err(ImageError::FileChecksum);
        }
        parse_body(&bytes[4..body_len])
    }

    /// Validates that the artifact serves `key`.
    ///
    /// # Errors
    ///
    /// [`ImageError::KeyMismatch`] naming the first diverging field.
    pub fn validate_key(&self, key: ImageKey) -> Result<(), ImageError> {
        if self.key.guest_hash != key.guest_hash {
            return Err(ImageError::KeyMismatch {
                field: "guest_hash",
            });
        }
        if self.key.strategy != key.strategy {
            return Err(ImageError::KeyMismatch { field: "strategy" });
        }
        if self.key.hot_threshold != key.hot_threshold {
            return Err(ImageError::KeyMismatch {
                field: "hot_threshold",
            });
        }
        Ok(())
    }

    /// Writes the artifact atomically to `path`: the bytes go to a
    /// *uniquely named* temp file in the same directory, are flushed to
    /// disk, and the temp file is renamed over the target. A writer
    /// killed or stalled mid-stream therefore only ever leaves its own
    /// orphan temp file behind — the canonical path never holds a torn
    /// artifact. The previous fixed `.tmp` name meant two savers (or a
    /// zombie writer with the inode still open) shared one file, so a
    /// straggler's late writes could corrupt an already-published
    /// artifact.
    ///
    /// # Errors
    ///
    /// Propagates host I/O failures (the temp file is removed on error).
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        use std::io::Write as _;
        static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut name = path
            .file_name()
            .map(|n| n.to_os_string())
            .unwrap_or_default();
        name.push(format!(".{}.{seq}.tmp", std::process::id()));
        let tmp = path.with_file_name(name);
        let publish = (|| {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&self.to_bytes())?;
            // Durability before visibility: rename must not publish a
            // name whose bytes are still in the page cache only.
            f.sync_all()?;
            std::fs::rename(&tmp, path)
        })();
        if publish.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        publish
    }

    /// Reads and fully validates the artifact at `path` (no key check —
    /// see [`ImageStore::load`] for keyed loads).
    ///
    /// # Errors
    ///
    /// [`ImageError::Io`] on read failure, otherwise as
    /// [`TranslationImage::from_bytes`].
    pub fn load_file(path: &Path) -> Result<TranslationImage, ImageError> {
        let bytes = std::fs::read(path).map_err(|e| ImageError::Io(e.to_string()))?;
        TranslationImage::from_bytes(&bytes)
    }
}

fn parse_body(body: &[u8]) -> Result<TranslationImage, ImageError> {
    let mut c = Cursor { b: body, pos: 0 };
    let version = c.u32()?;
    if version != IMAGE_VERSION {
        return Err(ImageError::BadVersion { found: version });
    }
    let guest_hash = c.u64()?;
    let strategy = strategy_from_u8(c.u8()?)?;
    c.skip(3)?;
    let hot_threshold = c.u64()?;
    let code_bytes = c.u64()?;
    let sections = c.u32()?;
    if sections != 2 {
        return Err(ImageError::Malformed("unexpected section count"));
    }
    let blocks_payload = read_section(&mut c, SEC_BLOCKS, "blocks")?;
    let profile_payload = read_section(&mut c, SEC_PROFILE, "profile")?;
    if c.pos != c.b.len() {
        return Err(ImageError::Malformed("trailing bytes after sections"));
    }
    let blocks = parse_blocks(blocks_payload)?;
    let profile = parse_profile(profile_payload)?;
    Ok(TranslationImage {
        key: ImageKey {
            guest_hash,
            strategy,
            hot_threshold,
        },
        code_bytes,
        blocks,
        profile,
    })
}

fn read_section<'a>(
    c: &mut Cursor<'a>,
    expect_tag: u32,
    name: &'static str,
) -> Result<&'a [u8], ImageError> {
    let tag = c.u32()?;
    if tag != expect_tag {
        return Err(ImageError::Malformed("unexpected section tag"));
    }
    let len = c.u64()? as usize;
    let stored = c.u64()?;
    let payload = c.take(len)?;
    if checksum(payload) != stored {
        return Err(ImageError::SectionChecksum { section: name });
    }
    Ok(payload)
}

fn parse_blocks(payload: &[u8]) -> Result<Vec<ImageBlock>, ImageError> {
    let mut c = Cursor { b: payload, pos: 0 };
    let count = c.u32()? as usize;
    let mut blocks = Vec::with_capacity(count.min(4096));
    let mut prev_end = 0u64;
    for _ in 0..count {
        let guest_pc = c.u32()?;
        let guest_end = c.u32()?;
        let guest_insn_count = c.u32()?;
        let variant = c.u32()?;
        let host_addr = c.u64()?;
        let opts = opts_from_u8(c.u8()?)?;
        let n = c.u32()? as usize;
        let mut words = Vec::with_capacity(n.min(65536));
        for _ in 0..n {
            words.push(c.u32()?);
        }
        if words.is_empty() {
            return Err(ImageError::Malformed("empty block"));
        }
        if host_addr < prev_end {
            return Err(ImageError::Malformed("blocks out of layout order"));
        }
        prev_end = host_addr + 4 * words.len() as u64;
        let n = c.u32()? as usize;
        let mut trap_sites = Vec::with_capacity(n.min(65536));
        for _ in 0..n {
            let addr = c.u64()?;
            let pc = c.u32()?;
            let slot = c.u8()?;
            trap_sites.push((addr, SiteId::new(pc, slot)));
        }
        let n = c.u32()? as usize;
        let mut exits = Vec::with_capacity(n.min(65536));
        for _ in 0..n {
            let host_addr = c.u64()?;
            let target = c.u32()?;
            exits.push(ExitStub { host_addr, target });
        }
        let n = c.u32()? as usize;
        let mut indirect_exits = Vec::with_capacity(n.min(65536));
        for _ in 0..n {
            indirect_exits.push(c.u64()?);
        }
        let n = c.u32()? as usize;
        let mut guest_pcs = Vec::with_capacity(n.min(65536));
        for _ in 0..n {
            guest_pcs.push(c.u32()?);
        }
        let n = c.u32()? as usize;
        let mut insn_starts = Vec::with_capacity(n.min(65536));
        for _ in 0..n {
            let pc = c.u32()?;
            let w = c.u32()?;
            insn_starts.push((pc, w));
        }
        let n = c.u32()? as usize;
        let mut plans: PlanVector = Vec::with_capacity(n.min(65536));
        for _ in 0..n {
            let pc = c.u32()?;
            let slot = c.u8()?;
            let width = width_from_u8(c.u8()?)?;
            let is_store = match c.u8()? {
                0 => false,
                1 => true,
                _ => return Err(ImageError::Malformed("bad is_store flag")),
            };
            let tag = c.u8()?;
            let threshold = c.u8()?;
            plans.push((
                SiteId::new(pc, slot),
                SiteAccess { width, is_store },
                plan_from_u8(tag, threshold)?,
            ));
        }
        blocks.push(ImageBlock {
            tb: TranslatedBlock {
                guest_pc,
                guest_end,
                guest_insn_count,
                words,
                trap_sites,
                exits,
                indirect_exits,
                guest_pcs,
                insn_starts,
            },
            host_addr,
            variant,
            plans,
            opts,
        });
    }
    if c.pos != c.b.len() {
        return Err(ImageError::Malformed("trailing bytes in blocks section"));
    }
    Ok(blocks)
}

fn parse_profile(payload: &[u8]) -> Result<Option<Vec<SiteId>>, ImageError> {
    let mut c = Cursor { b: payload, pos: 0 };
    let present = c.u8()?;
    let out = match present {
        0 => None,
        1 => {
            let count = c.u32()? as usize;
            let mut sites = Vec::with_capacity(count.min(65536));
            for _ in 0..count {
                let pc = c.u32()?;
                let slot = c.u8()?;
                sites.push(SiteId::new(pc, slot));
            }
            Some(sites)
        }
        _ => return Err(ImageError::Malformed("bad profile presence flag")),
    };
    if c.pos != c.b.len() {
        return Err(ImageError::Malformed("trailing bytes in profile section"));
    }
    Ok(out)
}

/// A directory of artifacts keyed by [`ImageKey::file_name`]: the
/// on-disk half of warm start. `bridge-serve` saves into one after cold
/// batches and loads from it at startup; `dbt_image` and
/// `trace_report --images` audit it.
#[derive(Debug, Clone)]
pub struct ImageStore {
    dir: PathBuf,
}

impl ImageStore {
    /// A store rooted at `dir` (created on first save, not here — an
    /// empty or missing directory is a valid, empty store).
    pub fn new(dir: impl Into<PathBuf>) -> ImageStore {
        ImageStore { dir: dir.into() }
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The path an artifact for `key` lives at.
    pub fn path_for(&self, key: ImageKey) -> PathBuf {
        self.dir.join(key.file_name())
    }

    /// Persists an artifact under its key's canonical name, creating the
    /// directory if needed. Returns the path written.
    ///
    /// # Errors
    ///
    /// Propagates host I/O failures.
    pub fn save(&self, image: &TranslationImage) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(&self.dir)?;
        let path = self.path_for(image.key);
        image.save(&path)?;
        Ok(path)
    }

    /// Loads and fully validates the artifact for `key`: file present,
    /// magic/version/checksums good, key matching.
    ///
    /// # Errors
    ///
    /// [`ImageError::Missing`] when no file exists for the key, otherwise
    /// any validation failure (see [`ImageError`]).
    pub fn load(&self, key: ImageKey) -> Result<TranslationImage, ImageError> {
        let path = self.path_for(key);
        if !path.exists() {
            return Err(ImageError::Missing);
        }
        let image = TranslationImage::load_file(&path)?;
        image.validate_key(key)?;
        Ok(image)
    }

    /// Every `.dbti` file in the store, sorted by file name, each with
    /// its validation outcome — the audit listing behind
    /// `trace_report --images`.
    pub fn list(&self) -> Vec<(PathBuf, Result<TranslationImage, ImageError>)> {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut paths: Vec<PathBuf> = entries
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == IMAGE_EXT))
            .collect();
        paths.sort();
        paths
            .into_iter()
            .map(|p| {
                let r = TranslationImage::load_file(&p);
                (p, r)
            })
            .collect()
    }
}

struct Cursor<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ImageError> {
        let end = self.pos.checked_add(n).ok_or(ImageError::Truncated)?;
        if end > self.b.len() {
            return Err(ImageError::Truncated);
        }
        let s = &self.b[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn skip(&mut self, n: usize) -> Result<(), ImageError> {
        self.take(n).map(|_| ())
    }

    fn u8(&mut self) -> Result<u8, ImageError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ImageError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("four bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, ImageError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("eight bytes"),
        ))
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_section(out: &mut Vec<u8>, tag: u32, payload: &[u8]) {
    put_u32(out, tag);
    put_u64(out, payload.len() as u64);
    put_u64(out, checksum(payload));
    out.extend_from_slice(payload);
}

fn strategy_to_u8(s: MdaStrategy) -> u8 {
    match s {
        MdaStrategy::Direct => 0,
        MdaStrategy::StaticProfiling => 1,
        MdaStrategy::DynamicProfiling => 2,
        MdaStrategy::ExceptionHandling => 3,
        MdaStrategy::Dpeh => 4,
    }
}

fn strategy_from_u8(v: u8) -> Result<MdaStrategy, ImageError> {
    Ok(match v {
        0 => MdaStrategy::Direct,
        1 => MdaStrategy::StaticProfiling,
        2 => MdaStrategy::DynamicProfiling,
        3 => MdaStrategy::ExceptionHandling,
        4 => MdaStrategy::Dpeh,
        _ => return Err(ImageError::Malformed("bad strategy tag")),
    })
}

fn opts_to_u8(o: DispatchOpts) -> u8 {
    u8::from(o.ibtc) | u8::from(o.shadow_ras) << 1 | u8::from(o.count_retired) << 2
}

fn opts_from_u8(v: u8) -> Result<DispatchOpts, ImageError> {
    if v & !0b111 != 0 {
        return Err(ImageError::Malformed("bad dispatch options"));
    }
    Ok(DispatchOpts {
        ibtc: v & 1 != 0,
        shadow_ras: v & 2 != 0,
        count_retired: v & 4 != 0,
    })
}

fn width_to_u8(w: Width) -> u8 {
    match w {
        Width::W1 => 0,
        Width::W2 => 1,
        Width::W4 => 2,
        Width::W8 => 3,
    }
}

fn width_from_u8(v: u8) -> Result<Width, ImageError> {
    Ok(match v {
        0 => Width::W1,
        1 => Width::W2,
        2 => Width::W4,
        3 => Width::W8,
        _ => return Err(ImageError::Malformed("bad access width")),
    })
}

fn plan_to_u8(p: SitePlan) -> (u8, u8) {
    match p {
        SitePlan::Normal => (0, 0),
        SitePlan::Sequence => (1, 0),
        SitePlan::MultiVersion => (2, 0),
        SitePlan::Adaptive { threshold } => (3, threshold),
    }
}

fn plan_from_u8(tag: u8, threshold: u8) -> Result<SitePlan, ImageError> {
    Ok(match tag {
        0 => SitePlan::Normal,
        1 => SitePlan::Sequence,
        2 => SitePlan::MultiVersion,
        3 => SitePlan::Adaptive { threshold },
        _ => return Err(ImageError::Malformed("bad site plan tag")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regmap::CODE_CACHE_ADDR;

    fn tb(guest_pc: u32, words: usize) -> TranslatedBlock {
        TranslatedBlock {
            guest_pc,
            guest_end: guest_pc + 8,
            guest_insn_count: 2,
            words: vec![0x47FF_041F; words],
            trap_sites: vec![(0x1000, SiteId::new(guest_pc + 4, 0))],
            exits: vec![ExitStub {
                host_addr: 0x2000,
                target: guest_pc + 8,
            }],
            indirect_exits: vec![0x3000],
            guest_pcs: vec![guest_pc, guest_pc + 4],
            insn_starts: vec![(guest_pc, 0), (guest_pc + 4, 1)],
        }
    }

    fn key() -> ImageKey {
        ImageKey {
            guest_hash: 0xDEAD_BEEF_F00D,
            strategy: MdaStrategy::Dpeh,
            hot_threshold: 50,
        }
    }

    fn populated_cache() -> std::sync::Arc<SharedCodeCache> {
        let sh = SharedCodeCache::new(4096);
        for (i, pc) in [0x40_0000u32, 0x40_0010, 0x40_0020].iter().enumerate() {
            let words = 4 + i;
            let a = sh.alloc(words).unwrap();
            let plans: PlanVector = vec![(
                SiteId::new(pc + 4, 0),
                SiteAccess {
                    width: Width::W4,
                    is_store: i % 2 == 0,
                },
                if i == 0 {
                    SitePlan::Sequence
                } else {
                    SitePlan::Adaptive { threshold: 8 }
                },
            )];
            sh.insert(
                tb(*pc, words),
                a.addr,
                0,
                plans,
                DispatchOpts {
                    ibtc: true,
                    shadow_ras: i == 1,
                    count_retired: false,
                },
            );
        }
        sh
    }

    fn sample() -> TranslationImage {
        let profile = StaticProfile::from_sites([SiteId::new(0x40_0004, 0), SiteId::new(0x9, 1)]);
        TranslationImage::capture(&populated_cache(), key(), Some(&profile)).unwrap()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let img = sample();
        let bytes = img.to_bytes();
        let back = TranslationImage::from_bytes(&bytes).unwrap();
        assert_eq!(back.key, img.key);
        assert_eq!(back.code_bytes, 4096);
        assert_eq!(back.blocks.len(), 3);
        for (a, b) in img.blocks.iter().zip(&back.blocks) {
            assert_eq!(a.host_addr, b.host_addr);
            assert_eq!(a.variant, b.variant);
            assert_eq!(a.opts, b.opts);
            assert_eq!(a.plans, b.plans);
            assert_eq!(a.tb.words, b.tb.words);
            assert_eq!(a.tb.trap_sites, b.tb.trap_sites);
            assert_eq!(a.tb.exits, b.tb.exits);
            assert_eq!(a.tb.indirect_exits, b.tb.indirect_exits);
            assert_eq!(a.tb.guest_pcs, b.tb.guest_pcs);
            assert_eq!(a.tb.insn_starts, b.tb.insn_starts);
        }
        assert_eq!(back.profile, img.profile);
        assert_eq!(back.to_bytes(), bytes, "serialization is deterministic");
    }

    #[test]
    fn profile_sites_roundtrip_sorted() {
        let img = sample();
        let p = img.static_profile().unwrap();
        assert_eq!(p.len(), 2);
        assert!(p.contains(SiteId::new(0x40_0004, 0)));
        assert!(p.contains(SiteId::new(0x9, 1)));
        assert_eq!(img.profile.as_ref().unwrap()[0], SiteId::new(0x9, 1));
    }

    #[test]
    fn populate_restores_the_exact_layout() {
        let img = sample();
        let fresh = SharedCodeCache::new(4096);
        assert_eq!(img.populate(&fresh).unwrap(), 3);
        let entries = fresh.snapshot_entries();
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[0].host_addr, CODE_CACHE_ADDR);
        assert!(entries.iter().all(|e| e.preloaded));
        // The bump pointer resumed exactly past the restored entries: a
        // fresh allocation lands where a cold run's next block would.
        let next = fresh.alloc(2).unwrap();
        let last = &entries[2];
        assert_eq!(next.addr, last.host_addr + 4 * last.tb.words.len() as u64);
        // Lookups validate against the restored plan vectors.
        let mut plan = |site: SiteId, _: SiteAccess| {
            if site == SiteId::new(0x40_0004, 0) {
                SitePlan::Sequence
            } else {
                SitePlan::Adaptive { threshold: 8 }
            }
        };
        let opts = DispatchOpts {
            ibtc: true,
            shadow_ras: false,
            count_retired: false,
        };
        assert!(fresh.lookup(0x40_0000, 0, opts, &mut plan).is_some());
        assert!(
            fresh.lookup(0x40_0010, 0, opts, &mut plan).is_none(),
            "diverged dispatch options must not validate"
        );
    }

    #[test]
    fn populate_rejects_capacity_mismatch_and_dirty_cache() {
        let img = sample();
        let wrong = SharedCodeCache::new(8192);
        assert!(matches!(
            img.populate(&wrong),
            Err(ImageError::Capacity {
                expected: 4096,
                found: 8192
            })
        ));
        let dirty = SharedCodeCache::new(4096);
        let a = dirty.alloc(4).unwrap();
        dirty.insert(tb(0x1000, 4), a.addr, 0, vec![], DispatchOpts::default());
        assert!(matches!(
            img.populate(&dirty),
            Err(ImageError::Malformed(_))
        ));
    }

    #[test]
    fn capture_refuses_unstable_layouts() {
        let sh = populated_cache();
        sh.write_guest_code(0x40_0004, &[0x90]);
        assert_eq!(
            TranslationImage::capture(&sh, key(), None).unwrap_err(),
            ImageError::UnstableCache
        );
    }

    #[test]
    fn truncation_is_detected_at_every_length() {
        let bytes = sample().to_bytes();
        for len in 0..bytes.len() {
            let err = TranslationImage::from_bytes(&bytes[..len]).unwrap_err();
            assert!(
                matches!(
                    err,
                    ImageError::Truncated
                        | ImageError::BadMagic
                        | ImageError::FileChecksum
                        | ImageError::SectionChecksum { .. }
                        | ImageError::Malformed(_)
                ),
                "prefix of {len} bytes must be rejected, got {err:?}"
            );
        }
    }

    #[test]
    fn every_flipped_byte_is_rejected() {
        let bytes = sample().to_bytes();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(
                TranslationImage::from_bytes(&bad).is_err(),
                "flipping byte {i} must be caught"
            );
        }
    }

    #[test]
    fn version_and_magic_are_enforced() {
        let bytes = sample().to_bytes();
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        assert_eq!(
            TranslationImage::from_bytes(&wrong_magic).unwrap_err(),
            ImageError::BadMagic
        );
        // A future version with a correct file checksum is still refused.
        let mut newer = bytes.clone();
        newer[4..8].copy_from_slice(&(IMAGE_VERSION + 1).to_le_bytes());
        let body = newer.len() - 8;
        let crc = checksum(&newer[..body]);
        newer[body..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(
            TranslationImage::from_bytes(&newer).unwrap_err(),
            ImageError::BadVersion {
                found: IMAGE_VERSION + 1
            }
        );
    }

    #[test]
    fn store_roundtrip_and_key_validation() {
        let dir = std::env::temp_dir().join(format!("dbti-store-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ImageStore::new(&dir);
        assert_eq!(store.load(key()).unwrap_err(), ImageError::Missing);
        assert!(store.list().is_empty(), "missing dir is an empty store");

        let img = sample();
        let path = store.save(&img).unwrap();
        assert_eq!(path, store.path_for(key()));
        let loaded = store.load(key()).unwrap();
        assert_eq!(loaded.blocks.len(), 3);

        // A different threshold keys a different file; loading the same
        // bytes under the wrong key is a stale-artifact rejection.
        let stale = ImageKey {
            hot_threshold: 10,
            ..key()
        };
        assert_eq!(store.load(stale).unwrap_err(), ImageError::Missing);
        std::fs::copy(&path, store.path_for(stale)).unwrap();
        assert_eq!(
            store.load(stale).unwrap_err(),
            ImageError::KeyMismatch {
                field: "hot_threshold"
            }
        );

        let listed = store.list();
        assert_eq!(listed.len(), 2);
        assert!(listed.iter().any(|(_, r)| r.is_ok()));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn content_hash_is_length_prefixed() {
        assert_ne!(
            content_hash(&[b"ab", b"c"]),
            content_hash(&[b"a", b"bc"]),
            "part boundaries must matter"
        );
        assert_eq!(content_hash(&[b"ab", b"c"]), content_hash(&[b"ab", b"c"]));
    }

    #[test]
    fn reject_codes_are_stable() {
        assert_eq!(ImageError::BadMagic.code(), 1);
        assert_eq!(ImageError::Missing.code(), 9);
        assert_eq!(ImageError::Io("x".into()).code(), 11);
    }
}
