//! Phase-1 interpreter: executes guest basic blocks with light MDA
//! profiling (the left-hand side of the paper's Figure 4).

use crate::profile::{Profile, SiteId};
use bridge_sim::cost::CostModel;
use bridge_sim::mem::Memory;
use bridge_x86::decode::{decode, DecodeError, Decoded};
use bridge_x86::exec::{execute, Next};
use bridge_x86::state::CpuState;
use std::collections::HashMap;
use std::fmt;

/// A decode cache for the interpreter. Guest code only changes through
/// [`Dbt::write_guest_code`], which invalidates the affected range here
/// (and the translated blocks over it), so decoded instructions are cached
/// by guest PC. Purely a simulator-side speedup: the cycle model already
/// charges the full per-instruction interpretation cost.
///
/// [`Dbt::write_guest_code`]: crate::engine::Dbt::write_guest_code
#[derive(Debug, Default)]
pub struct DecodeCache {
    map: HashMap<u32, Decoded>,
}

impl DecodeCache {
    /// Empty cache.
    pub fn new() -> DecodeCache {
        DecodeCache::default()
    }

    /// Drops every cached decode that may have read a byte in
    /// `[start, end)` (the decoder reads up to 16 bytes from its PC).
    pub fn invalidate_range(&mut self, start: u32, end: u32) {
        self.map
            .retain(|&pc, _| pc >= end || pc.wrapping_add(16) <= start);
    }

    fn get_or_decode(&mut self, mem: &Memory, pc: u32) -> Result<Decoded, InterpError> {
        if let Some(d) = self.map.get(&pc) {
            return Ok(*d);
        }
        let mut buf = [0u8; 16];
        mem.read_bytes(u64::from(pc), &mut buf);
        let d = decode(&buf, pc).map_err(|err| InterpError::Decode { pc, err })?;
        self.map.insert(pc, d);
        Ok(d)
    }
}

/// Outcome of interpreting one basic block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterpOutcome {
    /// Guest PC the block transfers to (undefined when `halted`).
    pub next_pc: u32,
    /// Whether the block ended in `hlt`.
    pub halted: bool,
    /// Guest instructions executed.
    pub guest_insns: u64,
    /// Cycles the interpretation cost (per the cost model).
    pub cycles: u64,
}

/// Interpretation failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterpError {
    /// Undecodable guest bytes.
    Decode {
        /// Address of the undecodable instruction.
        pc: u32,
        /// Decoder diagnosis.
        err: DecodeError,
    },
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::Decode { pc, err } => write!(f, "decode error at {pc:#x}: {err}"),
        }
    }
}

impl std::error::Error for InterpError {}

/// Interprets one basic block starting at `state.eip`, updating guest state
/// and memory, recording every memory access (with its misalignment) in
/// `profile`, and pricing the work with `cost`.
///
/// # Errors
///
/// [`InterpError::Decode`] if the guest bytes do not decode.
pub fn interp_block(
    state: &mut CpuState,
    mem: &mut Memory,
    profile: &mut Profile,
    cost: &CostModel,
) -> Result<InterpOutcome, InterpError> {
    interp_block_cached(state, mem, profile, cost, &mut DecodeCache::new())
}

/// [`interp_block`] with a caller-owned decode cache (the engine keeps one
/// for the life of a run).
///
/// # Errors
///
/// [`InterpError::Decode`] if the guest bytes do not decode.
pub fn interp_block_cached(
    state: &mut CpuState,
    mem: &mut Memory,
    profile: &mut Profile,
    cost: &CostModel,
    cache: &mut DecodeCache,
) -> Result<InterpOutcome, InterpError> {
    let mut insns = 0u64;
    let mut cycles = 0u64;
    loop {
        let pc = state.eip;
        let d = cache.get_or_decode(mem, pc)?;
        let result = execute(&d.insn, d.len, state, mem);
        insns += 1;
        cycles += cost.interp_per_guest_insn;
        profile.guest_insns += 1;
        for (slot, acc) in result.accesses.iter().enumerate() {
            cycles += cost.interp_per_mem_access;
            profile.record_access(SiteId::new(pc, slot as u8), acc.misaligned());
        }
        match result.next {
            Next::Halt => {
                return Ok(InterpOutcome {
                    next_pc: state.eip,
                    halted: true,
                    guest_insns: insns,
                    cycles,
                });
            }
            Next::Jump(t) => {
                return Ok(InterpOutcome {
                    next_pc: t,
                    halted: false,
                    guest_insns: insns,
                    cycles,
                });
            }
            Next::Fall => {
                if d.insn.ends_block() {
                    // Untaken conditional branch ends the block too.
                    return Ok(InterpOutcome {
                        next_pc: state.eip,
                        halted: false,
                        guest_insns: insns,
                        cycles,
                    });
                }
            }
        }
    }
}

/// Runs the whole program interpretively (the golden reference used by the
/// equivalence tests, the training runs for static profiling, and the
/// Table I measurement).
///
/// # Errors
///
/// [`InterpError::Decode`] on undecodable bytes. Returns `Ok(false)` if
/// `max_insns` ran out before `hlt`.
pub fn run_interp_only(
    state: &mut CpuState,
    mem: &mut Memory,
    profile: &mut Profile,
    cost: &CostModel,
    max_insns: u64,
) -> Result<bool, InterpError> {
    let mut budget = max_insns;
    let mut cache = DecodeCache::new();
    loop {
        let out = interp_block_cached(state, mem, profile, cost, &mut cache)?;
        if out.halted {
            return Ok(true);
        }
        if out.guest_insns >= budget {
            return Ok(false);
        }
        budget -= out.guest_insns;
        state.eip = out.next_pc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bridge_x86::asm::Assembler;
    use bridge_x86::cond::Cond;
    use bridge_x86::insn::{AluOp, Ext, MemRef, Width};
    use bridge_x86::reg::Reg32::*;

    fn setup(build: impl FnOnce(&mut Assembler)) -> (CpuState, Memory) {
        let entry = 0x40_0000;
        let mut a = Assembler::new(entry);
        build(&mut a);
        let image = a.finish().unwrap();
        let mut mem = Memory::new();
        mem.write_bytes(u64::from(entry), &image);
        (CpuState::new(entry), mem)
    }

    #[test]
    fn block_stops_at_branch() {
        let (mut st, mut mem) = setup(|a| {
            a.mov_ri(Eax, 1);
            a.alu_ri(AluOp::Add, Eax, 1);
            let l = a.new_label();
            a.jmp(l);
            a.bind(l);
            a.hlt();
        });
        let mut p = Profile::new();
        let cost = CostModel::flat();
        let out = interp_block(&mut st, &mut mem, &mut p, &cost).unwrap();
        assert!(!out.halted);
        assert_eq!(out.guest_insns, 3);
        assert_eq!(st.reg(Eax), 2);
        st.eip = out.next_pc;
        let out2 = interp_block(&mut st, &mut mem, &mut p, &cost).unwrap();
        assert!(out2.halted);
    }

    #[test]
    fn untaken_jcc_ends_block() {
        let (mut st, mut mem) = setup(|a| {
            a.alu_ri(AluOp::Cmp, Eax, 1); // eax=0 → not equal
            let l = a.new_label();
            a.jcc(Cond::E, l);
            a.nop();
            a.bind(l);
            a.hlt();
        });
        let mut p = Profile::new();
        let out = interp_block(&mut st, &mut mem, &mut p, &CostModel::flat()).unwrap();
        assert!(!out.halted);
        assert_eq!(
            out.guest_insns, 2,
            "block ends at the jcc even when untaken"
        );
    }

    #[test]
    fn profiles_misalignment_per_site() {
        let (mut st, mut mem) = setup(|a| {
            a.mov_ri(Ebx, 0x1002);
            a.load(Width::W4, Ext::Zero, Eax, MemRef::base_disp(Ebx, 0)); // MDA
            a.load(Width::W4, Ext::Zero, Ecx, MemRef::abs(0x2000)); // aligned
            a.hlt();
        });
        let mut p = Profile::new();
        interp_block(&mut st, &mut mem, &mut p, &CostModel::flat()).unwrap();
        assert_eq!(p.mem_accesses, 2);
        assert_eq!(p.mdas, 1);
        assert_eq!(p.nmi(), 1);
        let mda_site = SiteId::new(0x40_0005, 0);
        assert!(p.saw_mda(mda_site));
    }

    #[test]
    fn cycles_follow_cost_model() {
        let (mut st, mut mem) = setup(|a| {
            a.load(Width::W4, Ext::Zero, Eax, MemRef::abs(0x2000));
            a.hlt();
        });
        let mut p = Profile::new();
        let cost = CostModel::flat();
        let out = interp_block(&mut st, &mut mem, &mut p, &cost).unwrap();
        assert_eq!(
            out.cycles,
            2 * cost.interp_per_guest_insn + cost.interp_per_mem_access
        );
    }

    #[test]
    fn run_to_halt_and_budget() {
        let (mut st, mut mem) = setup(|a| {
            a.mov_ri(Ecx, 10);
            let top = a.here_label();
            a.alu_ri(AluOp::Sub, Ecx, 1);
            a.jcc(Cond::Ne, top);
            a.hlt();
        });
        let mut p = Profile::new();
        let cost = CostModel::flat();
        let halted = run_interp_only(&mut st, &mut mem, &mut p, &cost, 1_000_000).unwrap();
        assert!(halted);
        assert_eq!(st.reg(Ecx), 0);

        let (mut st2, mut mem2) = setup(|a| {
            let top = a.here_label();
            a.jmp(top);
        });
        let halted2 = run_interp_only(&mut st2, &mut mem2, &mut p, &cost, 100).unwrap();
        assert!(!halted2);
    }

    #[test]
    fn decode_error_reported() {
        let mut mem = Memory::new();
        mem.write_bytes(0x40_0000, &[0xCC]);
        let mut st = CpuState::new(0x40_0000);
        let mut p = Profile::new();
        let err = interp_block(&mut st, &mut mem, &mut p, &CostModel::flat()).unwrap_err();
        assert!(matches!(err, InterpError::Decode { pc: 0x40_0000, .. }));
    }
}
