//! Human-readable dumps of translated code: side-by-side guest/host
//! listings of installed blocks — the first tool anyone debugging a DBT
//! reaches for.

use crate::codecache::Block;
use crate::engine::Dbt;
use bridge_alpha::disasm as alpha_disasm;
use bridge_sim::mem::Memory;
use bridge_x86::decode::decode as decode_x86;
use bridge_x86::disasm as x86_disasm;
use std::fmt::Write as _;

/// Renders one installed block: each guest instruction followed by the
/// Alpha instructions it was lowered to, with site and exit annotations.
pub fn dump_block(mem: &Memory, block: &Block) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "block {:#010x} → host {:#x} ({} guest insns, {} words, {} traps)",
        block.guest_pc, block.host_addr, block.guest_insn_count, block.words_len, block.trap_count
    );

    // Word index where each guest instruction's code starts (and ends).
    for (i, (gpc, start_word)) in block.insn_starts.iter().enumerate() {
        let end_word = block
            .insn_starts
            .get(i + 1)
            .map(|(_, w)| *w)
            .unwrap_or(block.words_len);

        // Guest line.
        let mut buf = [0u8; 16];
        mem.read_bytes(u64::from(*gpc), &mut buf);
        match decode_x86(&buf, *gpc) {
            Ok(d) => {
                let _ = writeln!(
                    out,
                    "  {gpc:#010x}  {}",
                    x86_disasm::format_insn(&d.insn, *gpc)
                );
            }
            Err(_) => {
                let _ = writeln!(out, "  {gpc:#010x}  <undecodable>");
            }
        }

        // Host lines.
        for w in *start_word..end_word {
            let addr = block.host_addr + 4 * u64::from(w);
            let word = mem.read_u32(addr);
            let text = match bridge_alpha::decode(word) {
                Ok(insn) => alpha_disasm::format_insn(&insn, addr),
                Err(_) => format!(".word {word:#010x}"),
            };
            let site = if block.site_at_host.contains_key(&addr) {
                "  ; MDA site"
            } else {
                ""
            };
            let _ = writeln!(out, "      {addr:#012x}  {text}{site}");
        }
    }

    // Tail: exit stubs and epilogue emitted after the last instruction.
    if let Some(e) = block.exit_slots.first() {
        let _ = writeln!(
            out,
            "  exits: {}",
            block
                .exit_slots
                .iter()
                .map(|s| format!(
                    "{:#x}→{:#x}{}",
                    s.host_addr,
                    s.target,
                    if s.chained { " (chained)" } else { "" }
                ))
                .collect::<Vec<_>>()
                .join(", ")
        );
        let _ = e;
    }
    out
}

/// Renders every installed block of an engine, sorted by guest PC.
pub fn dump_all(dbt: &Dbt) -> String {
    let mut blocks: Vec<&Block> = dbt.code_cache_blocks().collect();
    blocks.sort_by_key(|b| b.guest_pc);
    let mut out = String::new();
    for b in blocks {
        out.push_str(&dump_block(dbt.machine().mem(), b));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DbtConfig, MdaStrategy};
    use crate::engine::GuestProgram;
    use bridge_sim::cost::CostModel;
    use bridge_sim::cpu::Machine;
    use bridge_x86::asm::Assembler;
    use bridge_x86::cond::Cond;
    use bridge_x86::insn::{AluOp, MemRef};
    use bridge_x86::reg::Reg32::*;

    #[test]
    fn dump_shows_guest_and_host_sides() {
        let mut a = Assembler::new(0x40_0000);
        a.mov_ri(Ebx, 0x10_0002);
        a.mov_ri(Ecx, 50);
        let top = a.here_label();
        a.alu_rm(AluOp::Add, Eax, MemRef::base_disp(Ebx, 0));
        a.alu_ri(AluOp::Sub, Ecx, 1);
        a.jcc(Cond::Ne, top);
        a.hlt();
        let prog = GuestProgram::new(0x40_0000, a.finish().unwrap());

        let mut dbt = crate::Dbt::with_machine(
            DbtConfig::new(MdaStrategy::Dpeh).with_threshold(5),
            Machine::without_caches(CostModel::flat()),
        );
        dbt.load(&prog);
        dbt.run(10_000_000).expect("halts");

        let text = dump_all(&dbt);
        // Guest mnemonics and host mnemonics both present.
        assert!(text.contains("addl"), "{text}");
        assert!(text.contains("subl"), "{text}");
        assert!(text.contains("ldq_u") || text.contains("ldl"), "{text}");
        assert!(text.contains("exits:"), "{text}");
        assert!(text.contains("block 0x"), "{text}");
    }

    #[test]
    fn dump_shows_adaptive_code() {
        let mut a = Assembler::new(0x40_0000);
        a.mov_ri(Ebx, 0x10_0002); // misaligned → DPEH would emit a sequence
        a.mov_ri(Ecx, 60);
        let top = a.here_label();
        a.alu_rm(AluOp::Add, Eax, MemRef::base_disp(Ebx, 0));
        a.alu_ri(AluOp::Sub, Ecx, 1);
        a.jcc(Cond::Ne, top);
        a.hlt();
        let prog = GuestProgram::new(0x40_0000, a.finish().unwrap());
        let mut dbt = crate::Dbt::with_machine(
            DbtConfig::new(MdaStrategy::Dpeh)
                .with_threshold(5)
                .with_adaptive_reversion(true),
            Machine::without_caches(CostModel::flat()),
        );
        dbt.load(&prog);
        dbt.run(50_000_000).expect("halts");
        let text = dump_all(&dbt);
        // The Figure 8 body is visible: the reversion request and the
        // streak-counter traffic off the state-block base register (r9).
        assert!(text.contains("call_pal request_monitor"), "{text}");
        assert!(text.contains("(r9)"), "{text}");
    }

    #[test]
    fn dump_marks_trap_sites() {
        let mut a = Assembler::new(0x40_0000);
        a.mov_ri(Ebx, 0x10_0000); // aligned → EH leaves it a plain ldl site
        a.mov_ri(Ecx, 20);
        let top = a.here_label();
        a.alu_rm(AluOp::Add, Eax, MemRef::base_disp(Ebx, 0));
        a.alu_ri(AluOp::Sub, Ecx, 1);
        a.jcc(Cond::Ne, top);
        a.hlt();
        let prog = GuestProgram::new(0x40_0000, a.finish().unwrap());
        let mut dbt = crate::Dbt::with_machine(
            DbtConfig::new(MdaStrategy::ExceptionHandling).with_threshold(5),
            Machine::without_caches(CostModel::flat()),
        );
        dbt.load(&prog);
        dbt.run(10_000_000).expect("halts");
        assert!(dump_all(&dbt).contains("; MDA site"));
    }
}
