//! The misalignment exception handler (the paper's §IV).
//!
//! When translated code traps, the handler receives the faulting PC and the
//! instruction word from the exception context (exactly the steps the paper
//! lists): it **decodes the offending memory instruction**, **generates the
//! MDA code sequence** for it, **allocates code-cache memory** for the stub,
//! and **patches** the offending instruction into a branch to the stub, with
//! a branch back to `pc + 4` at the stub's end (Figure 5).

use bridge_alpha::builder::{branch_disp, CodeBuilder};
use bridge_alpha::insn::{BrOp, Insn, MemOp};
use bridge_alpha::mda_seq::{
    emit_unaligned_load, emit_unaligned_store, unaligned_load_len, unaligned_store_len,
    AccessWidth, SeqTemps,
};
use bridge_alpha::reg::Reg;
use bridge_alpha::{decode, encode};
use bridge_sim::trap::UnalignedInfo;
use std::fmt;

/// The decoded faulting access, reconstructed from the exception context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultingAccess {
    /// Access width.
    pub width: AccessWidth,
    /// Whether it is a store.
    pub is_store: bool,
    /// Whether the load sign-extends (`ldl`).
    pub sign_extend: bool,
    /// Data register.
    pub ra: Reg,
    /// Base register.
    pub rb: Reg,
    /// Displacement.
    pub disp: i16,
}

/// Handler failures (all indicate an engine bug, not a program condition).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandlerError {
    /// The faulting word did not decode to a trappable memory instruction.
    NotAMemoryAccess {
        /// The faulting word.
        word: u32,
    },
    /// The stub is out of branch range from the patch point.
    StubOutOfRange,
}

impl fmt::Display for HandlerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HandlerError::NotAMemoryAccess { word } => {
                write!(
                    f,
                    "faulting word {word:#010x} is not a trappable memory access"
                )
            }
            HandlerError::StubOutOfRange => write!(f, "stub out of branch range"),
        }
    }
}

impl std::error::Error for HandlerError {}

/// Step 1 of the handler: analyse the faulting instruction from the
/// exception context.
///
/// # Errors
///
/// [`HandlerError::NotAMemoryAccess`] if the word is not an alignment-
/// trappable memory instruction (an engine invariant violation).
pub fn decode_faulting(info: &UnalignedInfo) -> Result<FaultingAccess, HandlerError> {
    let insn = decode(info.insn_word).map_err(|_| HandlerError::NotAMemoryAccess {
        word: info.insn_word,
    })?;
    match insn {
        Insn::Mem { op, ra, rb, disp } if op.required_alignment() > 1 => {
            let width = AccessWidth::from_bytes(op.size()).expect("trappable ops are 2/4/8 bytes");
            Ok(FaultingAccess {
                width,
                is_store: op.is_store(),
                sign_extend: op == MemOp::Ldl,
                ra,
                rb,
                disp,
            })
        }
        _ => Err(HandlerError::NotAMemoryAccess {
            word: info.insn_word,
        }),
    }
}

/// Number of words the stub for `fa` will occupy (sequence + branch back).
pub fn stub_len(fa: &FaultingAccess) -> usize {
    let seq = if fa.is_store {
        unaligned_store_len(fa.width)
    } else {
        unaligned_load_len(fa.width, fa.sign_extend)
    };
    seq + 1
}

/// Step 2 of the handler: generate the MDA code sequence stub at
/// `stub_addr`, ending with a branch back to `resume_addr` (= faulting pc
/// + 4).
///
/// # Errors
///
/// [`HandlerError::StubOutOfRange`] if the return branch cannot reach.
pub fn build_stub(
    fa: &FaultingAccess,
    stub_addr: u64,
    resume_addr: u64,
) -> Result<Vec<u32>, HandlerError> {
    let mut b = CodeBuilder::new(stub_addr);
    let temps = SeqTemps::default();
    if fa.is_store {
        emit_unaligned_store(&mut b, fa.width, fa.ra, fa.rb, fa.disp, &temps);
    } else {
        emit_unaligned_load(
            &mut b,
            fa.width,
            fa.ra,
            fa.rb,
            fa.disp,
            fa.sign_extend,
            &temps,
        );
    }
    let br_addr = b.here();
    branch_disp(br_addr, resume_addr).ok_or(HandlerError::StubOutOfRange)?;
    b.br_abs(BrOp::Br, Reg::ZERO, resume_addr);
    let words = b.finish().expect("stub has no labels");
    debug_assert_eq!(words.len(), stub_len(fa));
    Ok(words)
}

/// Step 3 of the handler: the word that patches the faulting instruction
/// into `br stub_addr` (Figure 5's `pc1: br pc2`).
///
/// # Errors
///
/// [`HandlerError::StubOutOfRange`] if the stub cannot be reached.
pub fn patch_word(fault_pc: u64, stub_addr: u64) -> Result<u32, HandlerError> {
    let disp = branch_disp(fault_pc, stub_addr).ok_or(HandlerError::StubOutOfRange)?;
    Ok(encode::encode(&Insn::Br {
        op: BrOp::Br,
        ra: Reg::ZERO,
        disp,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bridge_alpha::insn::{OpFn, Rb};
    use bridge_alpha::{Reg as AReg, PAL_HALT};
    use bridge_sim::cost::CostModel;
    use bridge_sim::cpu::Machine;
    use bridge_sim::trap::Exit;

    fn info_for(op: MemOp, ra: AReg, rb: AReg, disp: i16, addr: u64) -> UnalignedInfo {
        let word = encode::encode(&Insn::Mem { op, ra, rb, disp });
        UnalignedInfo {
            pc: 0x1_0000_0000,
            addr,
            size: op.size(),
            is_store: op.is_store(),
            insn_word: word,
        }
    }

    #[test]
    fn decodes_faulting_loads_and_stores() {
        let fa = decode_faulting(&info_for(MemOp::Ldl, AReg::R3, AReg::R7, 10, 0x1002)).unwrap();
        assert_eq!(fa.width, AccessWidth::W4);
        assert!(!fa.is_store);
        assert!(fa.sign_extend);
        assert_eq!((fa.ra, fa.rb, fa.disp), (AReg::R3, AReg::R7, 10));

        let fa = decode_faulting(&info_for(MemOp::Stq, AReg::R5, AReg::R6, -8, 0x1001)).unwrap();
        assert_eq!(fa.width, AccessWidth::W8);
        assert!(fa.is_store);
        assert!(!fa.sign_extend);
    }

    #[test]
    fn rejects_non_memory_words() {
        let word = encode::encode(&Insn::Op {
            op: OpFn::Addq,
            ra: AReg::R1,
            rb: Rb::Reg(AReg::R2),
            rc: AReg::R3,
        });
        let info = UnalignedInfo {
            pc: 0,
            addr: 0,
            size: 0,
            is_store: false,
            insn_word: word,
        };
        assert_eq!(
            decode_faulting(&info),
            Err(HandlerError::NotAMemoryAccess { word })
        );
        // ldq_u cannot trap either.
        let w2 = encode::encode(&Insn::Mem {
            op: MemOp::LdqU,
            ra: AReg::R1,
            rb: AReg::R2,
            disp: 0,
        });
        let info2 = UnalignedInfo {
            insn_word: w2,
            ..info
        };
        assert!(decode_faulting(&info2).is_err());
    }

    /// End-to-end patch test: run code that traps, apply the handler's
    /// patch, and check execution completes with the right value —
    /// reproducing the paper's Figure 5 exactly.
    #[test]
    fn figure5_patch_roundtrip() {
        const CODE: u64 = 0x1_0000_0000;
        const STUB: u64 = 0x1_0010_0000;

        let mut b = CodeBuilder::new(CODE);
        b.load_imm32(AReg::R2, 0x2000);
        b.mem(MemOp::Ldl, AReg::R1, 2, AReg::R2); // pc1: ldl r1, 2(r2) — misaligned
        b.call_pal(PAL_HALT);
        let words = b.finish().unwrap();

        let mut m = Machine::without_caches(CostModel::flat());
        m.mem_mut().write_int(0x2002, 4, 0xF00D_CAFE);
        m.write_code(CODE, &words);
        m.set_pc(CODE);

        // First run traps at pc1.
        let exit = m.run(100);
        let info = *exit.unaligned().expect("must trap");
        assert_eq!(info.addr, 0x2002);

        // Handler: decode, build stub, patch.
        let fa = decode_faulting(&info).unwrap();
        let stub = build_stub(&fa, STUB, info.pc + 4).unwrap();
        m.write_code(STUB, &stub);
        m.patch_code_word(info.pc, patch_word(info.pc, STUB).unwrap());

        // Resume at the same pc: now a br to the stub; the program halts
        // with the unaligned value loaded and sign-extended.
        assert_eq!(m.run(100), Exit::Halted);
        assert_eq!(m.reg(AReg::R1), 0xF00D_CAFEu32 as i32 as i64 as u64);
        // Exactly one trap in total: the patched path never traps again.
        m.set_pc(CODE);
        assert_eq!(m.run(100), Exit::Halted);
        assert_eq!(m.stats().unaligned_traps, 1);
    }

    #[test]
    fn store_stub_roundtrip() {
        const CODE: u64 = 0x1_0000_0000;
        const STUB: u64 = 0x1_0000_4000;
        let mut b = CodeBuilder::new(CODE);
        b.load_imm32(AReg::R2, 0x3000);
        b.load_imm32(AReg::R1, 0x0BAD_BEEF);
        b.mem(MemOp::Stl, AReg::R1, 1, AReg::R2); // misaligned store
        b.call_pal(PAL_HALT);
        let words = b.finish().unwrap();

        let mut m = Machine::without_caches(CostModel::flat());
        m.write_code(CODE, &words);
        m.set_pc(CODE);
        let info = *m.run(100).unaligned().expect("traps");
        let fa = decode_faulting(&info).unwrap();
        assert!(fa.is_store);
        let stub = build_stub(&fa, STUB, info.pc + 4).unwrap();
        m.write_code(STUB, &stub);
        m.patch_code_word(info.pc, patch_word(info.pc, STUB).unwrap());
        assert_eq!(m.run(200), Exit::Halted);
        assert_eq!(m.mem().read_int(0x3001, 4), 0x0BAD_BEEF);
        // Neighbours untouched.
        assert_eq!(m.mem().read_u8(0x3000), 0);
        assert_eq!(m.mem().read_u8(0x3005), 0);
    }

    #[test]
    fn out_of_range_stub_rejected() {
        let fa = FaultingAccess {
            width: AccessWidth::W4,
            is_store: false,
            sign_extend: true,
            ra: AReg::R1,
            rb: AReg::R2,
            disp: 0,
        };
        // 2^31 away: unreachable by a 21-bit branch.
        assert_eq!(
            build_stub(&fa, 0x1_0000_0000, 0x2_0000_0000).unwrap_err(),
            HandlerError::StubOutOfRange
        );
        assert!(patch_word(0x1_0000_0000, 0x2_0000_0000).is_err());
    }

    #[test]
    fn stub_lengths_match() {
        for (is_store, width, sext) in [
            (false, AccessWidth::W2, false),
            (false, AccessWidth::W4, true),
            (false, AccessWidth::W8, false),
            (true, AccessWidth::W2, false),
            (true, AccessWidth::W4, false),
            (true, AccessWidth::W8, false),
        ] {
            let fa = FaultingAccess {
                width,
                is_store,
                sign_extend: sext,
                ra: AReg::R1,
                rb: AReg::R2,
                disp: 4,
            };
            let stub = build_stub(&fa, 0x1_0000_0000, 0x1_0000_1000).unwrap();
            assert_eq!(stub.len(), stub_len(&fa));
        }
    }
}
