//! Guest ISA for DigitalBridge-RS: a 32-bit x86 subset.
//!
//! This crate models the *source* architecture of the binary-translation
//! system evaluated in "An Evaluation of Misaligned Data Access Handling
//! Mechanisms in Dynamic Binary Translation Systems" (CGO 2009). x86 is the
//! canonical architecture **without** alignment restrictions: any load or
//! store may reference a misaligned address and the hardware completes it
//! (possibly slower), so binaries compiled for x86 freely contain misaligned
//! data accesses (MDAs).
//!
//! The crate provides four layers:
//!
//! * an instruction model ([`Insn`], [`MemRef`], [`Reg32`], …),
//! * real machine-code [`encode`](encode::encode) / [`decode`](decode::decode)
//!   for that subset (ModRM/SIB/prefix handling, the same byte patterns a
//!   real x86 assembler would emit),
//! * a label-based [`asm::Assembler`] used by the synthetic
//!   workload generators, and
//! * reference execution semantics ([`exec::execute`]) over a [`GuestMem`],
//!   used both by the DBT's phase-1 interpreter and as the golden model that
//!   translated Alpha code is checked against.
//!
//! The subset covers the operations that produce essentially all data
//! traffic in the paper's workloads: 1/2/4-byte loads and stores with full
//! base+index*scale+disp addressing, 8-byte MMX `movq` transfers (the
//! double-precision-style accesses that dominate MDAs in 410.bwaves or
//! 433.milc), ALU register/memory forms including read-modify-write,
//! push/pop/call/ret (stack traffic is misaligned whenever `%esp` is), and
//! conditional control flow over a ZF/SF/CF/OF flags subset.
//!
//! # Example
//!
//! ```
//! use bridge_x86::asm::Assembler;
//! use bridge_x86::insn::{MemRef, Width, Ext};
//! use bridge_x86::reg::Reg32::*;
//!
//! let mut a = Assembler::new(0x40_0000);
//! a.mov_ri(Eax, 0x1234);
//! a.load(Width::W4, Ext::Zero, Ecx, MemRef::base_disp(Eax, 2)); // misaligned!
//! a.hlt();
//! let image = a.finish().expect("assembly succeeds");
//! assert!(!image.is_empty());
//! ```

pub mod asm;
pub mod cond;
pub mod decode;
pub mod disasm;
pub mod encode;
pub mod exec;
pub mod insn;
pub mod reg;
pub mod state;

pub use asm::Assembler;
pub use cond::Cond;
pub use decode::{decode, DecodeError, Decoded};
pub use encode::{encode, EncodeError};
pub use exec::{execute, AccessList, GuestMem, MemAccess, Next, StepResult};
pub use insn::{AluOp, Ext, Insn, MemRef, Scale, ShiftOp, Width};
pub use reg::{Reg32, RegMm};
pub use state::{CpuState, Flags};
