//! Condition codes for conditional branches.

use crate::state::Flags;
use std::fmt;

/// x86 condition codes supported by the subset's `Jcc` instruction.
///
/// The numeric value of each variant is the x86 condition-code nibble, so
/// `0x0F 0x80 + cc` is the corresponding 32-bit-displacement `Jcc` opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Cond {
    /// Below (unsigned `<`): CF.
    B = 0x2,
    /// Above or equal (unsigned `>=`): !CF.
    Ae = 0x3,
    /// Equal / zero: ZF.
    E = 0x4,
    /// Not equal / not zero: !ZF.
    Ne = 0x5,
    /// Below or equal (unsigned `<=`): CF || ZF.
    Be = 0x6,
    /// Above (unsigned `>`): !CF && !ZF.
    A = 0x7,
    /// Sign (negative): SF.
    S = 0x8,
    /// Not sign (non-negative): !SF.
    Ns = 0x9,
    /// Less (signed `<`): SF != OF.
    L = 0xC,
    /// Greater or equal (signed `>=`): SF == OF.
    Ge = 0xD,
    /// Less or equal (signed `<=`): ZF || SF != OF.
    Le = 0xE,
    /// Greater (signed `>`): !ZF && SF == OF.
    G = 0xF,
}

impl Cond {
    /// All supported condition codes.
    pub const ALL: [Cond; 12] = [
        Cond::B,
        Cond::Ae,
        Cond::E,
        Cond::Ne,
        Cond::Be,
        Cond::A,
        Cond::S,
        Cond::Ns,
        Cond::L,
        Cond::Ge,
        Cond::Le,
        Cond::G,
    ];

    /// The condition-code nibble used in the `0F 8x` opcode.
    #[inline]
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Decodes a condition-code nibble; `None` for unsupported codes
    /// (O/NO/P/NP are outside the subset).
    pub fn from_code(code: u8) -> Option<Cond> {
        Some(match code {
            0x2 => Cond::B,
            0x3 => Cond::Ae,
            0x4 => Cond::E,
            0x5 => Cond::Ne,
            0x6 => Cond::Be,
            0x7 => Cond::A,
            0x8 => Cond::S,
            0x9 => Cond::Ns,
            0xC => Cond::L,
            0xD => Cond::Ge,
            0xE => Cond::Le,
            0xF => Cond::G,
            _ => return None,
        })
    }

    /// Evaluates the condition against a flags state.
    #[inline]
    pub fn eval(self, f: Flags) -> bool {
        match self {
            Cond::B => f.cf,
            Cond::Ae => !f.cf,
            Cond::E => f.zf,
            Cond::Ne => !f.zf,
            Cond::Be => f.cf || f.zf,
            Cond::A => !f.cf && !f.zf,
            Cond::S => f.sf,
            Cond::Ns => !f.sf,
            Cond::L => f.sf != f.of,
            Cond::Ge => f.sf == f.of,
            Cond::Le => f.zf || f.sf != f.of,
            Cond::G => !f.zf && f.sf == f.of,
        }
    }

    /// The logically opposite condition (`jX` ⇔ `jNX`).
    pub fn negate(self) -> Cond {
        match self {
            Cond::B => Cond::Ae,
            Cond::Ae => Cond::B,
            Cond::E => Cond::Ne,
            Cond::Ne => Cond::E,
            Cond::Be => Cond::A,
            Cond::A => Cond::Be,
            Cond::S => Cond::Ns,
            Cond::Ns => Cond::S,
            Cond::L => Cond::Ge,
            Cond::Ge => Cond::L,
            Cond::Le => Cond::G,
            Cond::G => Cond::Le,
        }
    }

    /// AT&T-style mnemonic suffix, e.g. `"ne"` for [`Cond::Ne`].
    pub fn suffix(self) -> &'static str {
        match self {
            Cond::B => "b",
            Cond::Ae => "ae",
            Cond::E => "e",
            Cond::Ne => "ne",
            Cond::Be => "be",
            Cond::A => "a",
            Cond::S => "s",
            Cond::Ns => "ns",
            Cond::L => "l",
            Cond::Ge => "ge",
            Cond::Le => "le",
            Cond::G => "g",
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.suffix())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(zf: bool, sf: bool, cf: bool, of: bool) -> Flags {
        Flags { zf, sf, cf, of }
    }

    #[test]
    fn code_roundtrip() {
        for c in Cond::ALL {
            assert_eq!(Cond::from_code(c.code()), Some(c));
        }
        assert_eq!(Cond::from_code(0x0), None);
        assert_eq!(Cond::from_code(0xA), None);
    }

    #[test]
    fn negation_is_involutive_and_opposite() {
        let samples = [
            flags(false, false, false, false),
            flags(true, false, false, false),
            flags(false, true, false, true),
            flags(true, true, true, false),
            flags(false, false, true, true),
        ];
        for c in Cond::ALL {
            assert_eq!(c.negate().negate(), c);
            for f in samples {
                assert_eq!(c.eval(f), !c.negate().eval(f), "{c:?} vs {:?}", f);
            }
        }
    }

    #[test]
    fn signed_comparisons() {
        // After `cmp a, b` with a < b (signed, no overflow): SF=1, OF=0.
        let lt = flags(false, true, true, false);
        assert!(Cond::L.eval(lt));
        assert!(Cond::Le.eval(lt));
        assert!(!Cond::G.eval(lt));
        assert!(!Cond::Ge.eval(lt));
        // Equal: ZF=1.
        let eq = flags(true, false, false, false);
        assert!(Cond::E.eval(eq));
        assert!(Cond::Le.eval(eq));
        assert!(Cond::Ge.eval(eq));
        assert!(!Cond::L.eval(eq));
    }

    #[test]
    fn unsigned_comparisons() {
        // a < b unsigned: CF=1.
        let below = flags(false, false, true, false);
        assert!(Cond::B.eval(below));
        assert!(Cond::Be.eval(below));
        assert!(!Cond::A.eval(below));
        assert!(!Cond::Ae.eval(below));
    }
}
