//! Machine-code decoder for the x86 subset.
//!
//! The decoder accepts exactly the canonical encodings produced by
//! [`encode`](crate::encode::encode) and reports a descriptive error for
//! anything else, so a translation system built on it fails loudly rather
//! than silently mistranslating.

use crate::cond::Cond;
use crate::insn::{AluOp, Ext, Insn, MemRef, Scale, ShiftOp, Width};
use crate::reg::{Reg32, RegMm};
use std::fmt;

/// A successfully decoded instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decoded {
    /// The instruction.
    pub insn: Insn,
    /// Encoded length in bytes.
    pub len: u32,
}

/// Decoding failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Fewer bytes available than the instruction needs.
    Truncated,
    /// An opcode byte outside the subset.
    UnknownOpcode(u8),
    /// A `0F`-prefixed opcode outside the subset.
    UnknownOpcode0F(u8),
    /// A structurally valid but unsupported or non-canonical form.
    Invalid(&'static str),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "instruction bytes truncated"),
            DecodeError::UnknownOpcode(b) => write!(f, "unknown opcode {b:#04x}"),
            DecodeError::UnknownOpcode0F(b) => write!(f, "unknown opcode 0f {b:#04x}"),
            DecodeError::Invalid(what) => write!(f, "invalid instruction form: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn u8(&mut self) -> Result<u8, DecodeError> {
        let b = *self.bytes.get(self.pos).ok_or(DecodeError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn i8(&mut self) -> Result<i8, DecodeError> {
        Ok(self.u8()? as i8)
    }

    fn i32(&mut self) -> Result<i32, DecodeError> {
        let end = self.pos.checked_add(4).ok_or(DecodeError::Truncated)?;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or(DecodeError::Truncated)?;
        self.pos = end;
        Ok(i32::from_le_bytes(slice.try_into().expect("4 bytes")))
    }
}

/// Result of parsing a ModRM byte: either a register or a memory operand.
enum Rm {
    Reg(Reg32),
    Mem(MemRef),
}

/// Parses ModRM (+SIB +disp); returns the reg-field value and the r/m
/// operand.
fn parse_modrm(c: &mut Cursor<'_>) -> Result<(u8, Rm), DecodeError> {
    let byte = c.u8()?;
    let mode = byte >> 6;
    let reg = (byte >> 3) & 7;
    let rm = byte & 7;

    if mode == 3 {
        return Ok((reg, Rm::Reg(Reg32::from_index(rm as usize))));
    }

    let mem = if rm == 0b100 {
        // SIB byte.
        let sib = c.u8()?;
        let scale = Scale::from_bits(sib >> 6);
        let index_bits = (sib >> 3) & 7;
        let base_bits = sib & 7;
        let index = if index_bits == 0b100 {
            None
        } else {
            Some((Reg32::from_index(index_bits as usize), scale))
        };
        let (base, disp) = if base_bits == 0b101 && mode == 0 {
            (None, c.i32()?)
        } else {
            let base = Some(Reg32::from_index(base_bits as usize));
            let disp = match mode {
                0 => 0,
                1 => c.i8()? as i32,
                _ => c.i32()?,
            };
            (base, disp)
        };
        MemRef { base, index, disp }
    } else if rm == 0b101 && mode == 0 {
        MemRef::abs(c.i32()? as u32)
    } else {
        let base = Reg32::from_index(rm as usize);
        let disp = match mode {
            0 => 0,
            1 => c.i8()? as i32,
            _ => c.i32()?,
        };
        MemRef::base_disp(base, disp)
    };
    Ok((reg, Rm::Mem(mem)))
}

fn alu_from_mr_opcode(op: u8) -> Option<AluOp> {
    Some(match op {
        0x01 => AluOp::Add,
        0x09 => AluOp::Or,
        0x21 => AluOp::And,
        0x29 => AluOp::Sub,
        0x31 => AluOp::Xor,
        0x39 => AluOp::Cmp,
        0x85 => AluOp::Test,
        _ => return None,
    })
}

fn alu_from_rm_opcode(op: u8) -> Option<AluOp> {
    Some(match op {
        0x03 => AluOp::Add,
        0x0B => AluOp::Or,
        0x23 => AluOp::And,
        0x2B => AluOp::Sub,
        0x33 => AluOp::Xor,
        0x3B => AluOp::Cmp,
        _ => return None,
    })
}

/// Decodes one instruction from `bytes`, located at guest address `addr`
/// (needed to resolve relative branch targets to absolute addresses).
///
/// # Errors
///
/// Returns a [`DecodeError`] if the bytes are truncated or outside the
/// canonical subset.
pub fn decode(bytes: &[u8], addr: u32) -> Result<Decoded, DecodeError> {
    let mut c = Cursor { bytes, pos: 0 };
    let insn = decode_inner(&mut c, addr)?;
    Ok(Decoded {
        insn,
        len: c.pos as u32,
    })
}

fn decode_inner(c: &mut Cursor<'_>, addr: u32) -> Result<Insn, DecodeError> {
    let opcode = c.u8()?;
    match opcode {
        0x66 => {
            // Operand-size prefix: only the 2-byte store form is in the subset.
            let next = c.u8()?;
            if next != 0x89 {
                return Err(DecodeError::Invalid("66 prefix is only valid before 89"));
            }
            let (reg, rm) = parse_modrm(c)?;
            match rm {
                Rm::Mem(mem) => Ok(Insn::Store {
                    width: Width::W2,
                    src: Reg32::from_index(reg as usize),
                    dst: mem,
                }),
                Rm::Reg(_) => Err(DecodeError::Invalid("16-bit register move unsupported")),
            }
        }
        0x0F => {
            let op2 = c.u8()?;
            match op2 {
                0xB6 | 0xB7 | 0xBE | 0xBF => {
                    let (width, ext) = match op2 {
                        0xB6 => (Width::W1, Ext::Zero),
                        0xB7 => (Width::W2, Ext::Zero),
                        0xBE => (Width::W1, Ext::Sign),
                        _ => (Width::W2, Ext::Sign),
                    };
                    let (reg, rm) = parse_modrm(c)?;
                    match rm {
                        Rm::Mem(mem) => Ok(Insn::Load {
                            width,
                            ext,
                            dst: Reg32::from_index(reg as usize),
                            src: mem,
                        }),
                        Rm::Reg(_) => Err(DecodeError::Invalid(
                            "movzx/movsx from register unsupported",
                        )),
                    }
                }
                0xAF => {
                    let (reg, rm) = parse_modrm(c)?;
                    let dst = Reg32::from_index(reg as usize);
                    match rm {
                        Rm::Reg(src) => Ok(Insn::ImulRR { dst, src }),
                        Rm::Mem(src) => Ok(Insn::ImulRM { dst, src }),
                    }
                }
                0x6F => {
                    let (reg, rm) = parse_modrm(c)?;
                    match rm {
                        Rm::Mem(mem) => Ok(Insn::MovqLoad {
                            dst: RegMm::from_index(reg as usize),
                            src: mem,
                        }),
                        Rm::Reg(_) => Err(DecodeError::Invalid("movq mm,mm unsupported")),
                    }
                }
                0x7F => {
                    let (reg, rm) = parse_modrm(c)?;
                    match rm {
                        Rm::Mem(mem) => Ok(Insn::MovqStore {
                            src: RegMm::from_index(reg as usize),
                            dst: mem,
                        }),
                        Rm::Reg(_) => Err(DecodeError::Invalid("movq mm,mm unsupported")),
                    }
                }
                0x40..=0x4F => {
                    let cond = Cond::from_code(op2 - 0x40)
                        .ok_or(DecodeError::Invalid("unsupported condition code"))?;
                    let (reg, rm) = parse_modrm(c)?;
                    match rm {
                        Rm::Reg(src) => Ok(Insn::Cmovcc {
                            cond,
                            dst: Reg32::from_index(reg as usize),
                            src,
                        }),
                        Rm::Mem(_) => Err(DecodeError::Invalid("cmov from memory unsupported")),
                    }
                }
                0x90..=0x9F => {
                    let cond = Cond::from_code(op2 - 0x90)
                        .ok_or(DecodeError::Invalid("unsupported condition code"))?;
                    let (digit, rm) = parse_modrm(c)?;
                    if digit != 0 {
                        return Err(DecodeError::Invalid("setcc reg field must be 0"));
                    }
                    match rm {
                        Rm::Reg(dst) if dst.has_low_byte() => Ok(Insn::Setcc { cond, dst }),
                        Rm::Reg(_) => {
                            Err(DecodeError::Invalid("setcc destination needs a low byte"))
                        }
                        Rm::Mem(_) => Err(DecodeError::Invalid("setcc to memory unsupported")),
                    }
                }
                0x80..=0x8F => {
                    let cond = Cond::from_code(op2 - 0x80)
                        .ok_or(DecodeError::Invalid("unsupported condition code"))?;
                    let rel = c.i32()?;
                    let target = addr.wrapping_add(c.pos as u32).wrapping_add(rel as u32);
                    Ok(Insn::Jcc { cond, target })
                }
                other => Err(DecodeError::UnknownOpcode0F(other)),
            }
        }
        0xB8..=0xBF => Ok(Insn::MovRI {
            dst: Reg32::from_index((opcode - 0xB8) as usize),
            imm: c.i32()?,
        }),
        0x89 => {
            let (reg, rm) = parse_modrm(c)?;
            let src = Reg32::from_index(reg as usize);
            match rm {
                Rm::Reg(dst) => Ok(Insn::MovRR { dst, src }),
                Rm::Mem(mem) => Ok(Insn::Store {
                    width: Width::W4,
                    src,
                    dst: mem,
                }),
            }
        }
        0x8B => {
            let (reg, rm) = parse_modrm(c)?;
            match rm {
                Rm::Mem(mem) => Ok(Insn::Load {
                    width: Width::W4,
                    ext: Ext::Zero,
                    dst: Reg32::from_index(reg as usize),
                    src: mem,
                }),
                Rm::Reg(_) => Err(DecodeError::Invalid("canonical mov r,r uses 89")),
            }
        }
        0x88 => {
            let (reg, rm) = parse_modrm(c)?;
            let src = Reg32::from_index(reg as usize);
            if !src.has_low_byte() {
                return Err(DecodeError::Invalid("byte store from high register"));
            }
            match rm {
                Rm::Mem(mem) => Ok(Insn::Store {
                    width: Width::W1,
                    src,
                    dst: mem,
                }),
                Rm::Reg(_) => Err(DecodeError::Invalid("8-bit register move unsupported")),
            }
        }
        0x8D => {
            let (reg, rm) = parse_modrm(c)?;
            match rm {
                Rm::Mem(mem) => Ok(Insn::Lea {
                    dst: Reg32::from_index(reg as usize),
                    src: mem,
                }),
                Rm::Reg(_) => Err(DecodeError::Invalid("lea requires memory operand")),
            }
        }
        0x01 | 0x09 | 0x21 | 0x29 | 0x31 | 0x39 | 0x85 => {
            let op = alu_from_mr_opcode(opcode).expect("matched above");
            let (reg, rm) = parse_modrm(c)?;
            let src = Reg32::from_index(reg as usize);
            match rm {
                Rm::Reg(dst) => Ok(Insn::AluRR { op, dst, src }),
                Rm::Mem(mem) => Ok(Insn::AluMR { op, dst: mem, src }),
            }
        }
        0x03 | 0x0B | 0x23 | 0x2B | 0x33 | 0x3B => {
            let op = alu_from_rm_opcode(opcode).expect("matched above");
            let (reg, rm) = parse_modrm(c)?;
            match rm {
                Rm::Mem(mem) => Ok(Insn::AluRM {
                    op,
                    dst: Reg32::from_index(reg as usize),
                    src: mem,
                }),
                Rm::Reg(_) => Err(DecodeError::Invalid("canonical reg-reg ALU uses MR form")),
            }
        }
        0x81 => {
            let (digit, rm) = parse_modrm(c)?;
            let dst = match rm {
                Rm::Reg(r) => r,
                Rm::Mem(_) => return Err(DecodeError::Invalid("ALU imm to memory unsupported")),
            };
            let op = match digit {
                0 => AluOp::Add,
                1 => AluOp::Or,
                4 => AluOp::And,
                5 => AluOp::Sub,
                6 => AluOp::Xor,
                7 => AluOp::Cmp,
                _ => return Err(DecodeError::Invalid("unsupported 81 /digit")),
            };
            Ok(Insn::AluRI {
                op,
                dst,
                imm: c.i32()?,
            })
        }
        0xF7 => {
            let (digit, rm) = parse_modrm(c)?;
            let dst = match rm {
                Rm::Reg(r) => r,
                Rm::Mem(_) => return Err(DecodeError::Invalid("F7 group on memory unsupported")),
            };
            match digit {
                0 => Ok(Insn::AluRI {
                    op: AluOp::Test,
                    dst,
                    imm: c.i32()?,
                }),
                2 => Ok(Insn::Not { dst }),
                3 => Ok(Insn::Neg { dst }),
                _ => Err(DecodeError::Invalid("unsupported F7 /digit")),
            }
        }
        0x87 => {
            let (reg, rm) = parse_modrm(c)?;
            match rm {
                Rm::Reg(b) => Ok(Insn::Xchg {
                    a: Reg32::from_index(reg as usize),
                    b,
                }),
                Rm::Mem(_) => Err(DecodeError::Invalid("xchg with memory unsupported")),
            }
        }
        0xC1 => {
            let (digit, rm) = parse_modrm(c)?;
            let dst = match rm {
                Rm::Reg(r) => r,
                Rm::Mem(_) => return Err(DecodeError::Invalid("memory shift unsupported")),
            };
            let op = match digit {
                4 => ShiftOp::Shl,
                5 => ShiftOp::Shr,
                7 => ShiftOp::Sar,
                _ => return Err(DecodeError::Invalid("unsupported C1 /digit")),
            };
            Ok(Insn::Shift {
                op,
                dst,
                amount: c.u8()?,
            })
        }
        0x50..=0x57 => Ok(Insn::Push {
            src: Reg32::from_index((opcode - 0x50) as usize),
        }),
        0x58..=0x5F => Ok(Insn::Pop {
            dst: Reg32::from_index((opcode - 0x58) as usize),
        }),
        0xE9 => {
            let rel = c.i32()?;
            let target = addr.wrapping_add(c.pos as u32).wrapping_add(rel as u32);
            Ok(Insn::Jmp { target })
        }
        0xE8 => {
            let rel = c.i32()?;
            let target = addr.wrapping_add(c.pos as u32).wrapping_add(rel as u32);
            Ok(Insn::Call { target })
        }
        0xF3 => {
            let next = c.u8()?;
            if next == 0xA5 {
                Ok(Insn::RepMovsd)
            } else {
                Err(DecodeError::Invalid(
                    "rep prefix is only valid before movsd",
                ))
            }
        }
        0xC3 => Ok(Insn::Ret),
        0x90 => Ok(Insn::Nop),
        0xF4 => Ok(Insn::Hlt),
        other => Err(DecodeError::UnknownOpcode(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode_to_vec;

    fn roundtrip(insn: Insn) {
        let addr = 0x40_1000;
        let bytes = encode_to_vec(&insn, addr).expect("encodable");
        let d = decode(&bytes, addr).expect("decodable");
        assert_eq!(d.insn, insn, "bytes: {bytes:02x?}");
        assert_eq!(d.len as usize, bytes.len());
    }

    #[test]
    fn roundtrip_representative_instructions() {
        use crate::insn::Scale;
        use Reg32::*;
        let mems = [
            MemRef::abs(0x601000),
            MemRef::base_disp(Ebx, 0),
            MemRef::base_disp(Ebp, 0),
            MemRef::base_disp(Esp, -8),
            MemRef::base_disp(Esi, 0x1234),
            MemRef::base_index(Ebx, Esi, Scale::S4, 3),
            MemRef::base_index(Ebp, Ecx, Scale::S1, 0),
            MemRef::index_disp(Edi, Scale::S8, 0x100),
            MemRef::base_index(Esp, Edx, Scale::S2, 5),
        ];
        for m in mems {
            roundtrip(Insn::Load {
                width: Width::W4,
                ext: Ext::Zero,
                dst: Eax,
                src: m,
            });
            roundtrip(Insn::Load {
                width: Width::W2,
                ext: Ext::Sign,
                dst: Edi,
                src: m,
            });
            roundtrip(Insn::Load {
                width: Width::W1,
                ext: Ext::Zero,
                dst: Ecx,
                src: m,
            });
            roundtrip(Insn::Store {
                width: Width::W4,
                src: Edx,
                dst: m,
            });
            roundtrip(Insn::Store {
                width: Width::W2,
                src: Esi,
                dst: m,
            });
            roundtrip(Insn::Store {
                width: Width::W1,
                src: Ebx,
                dst: m,
            });
            roundtrip(Insn::MovqLoad {
                dst: RegMm::Mm2,
                src: m,
            });
            roundtrip(Insn::MovqStore {
                src: RegMm::Mm7,
                dst: m,
            });
            roundtrip(Insn::Lea { dst: Ebp, src: m });
            roundtrip(Insn::AluRM {
                op: AluOp::Add,
                dst: Eax,
                src: m,
            });
            roundtrip(Insn::AluMR {
                op: AluOp::Sub,
                dst: m,
                src: Ecx,
            });
            roundtrip(Insn::AluMR {
                op: AluOp::Test,
                dst: m,
                src: Ecx,
            });
            roundtrip(Insn::ImulRM { dst: Edx, src: m });
        }
        for op in AluOp::ALL {
            roundtrip(Insn::AluRR {
                op,
                dst: Esi,
                src: Ebp,
            });
            roundtrip(Insn::AluRI {
                op,
                dst: Edx,
                imm: -44,
            });
        }
        for cond in Cond::ALL {
            roundtrip(Insn::Jcc {
                cond,
                target: 0x40_0f00,
            });
        }
        roundtrip(Insn::MovRI {
            dst: Esp,
            imm: 0x00ff_0000,
        });
        roundtrip(Insn::MovRR { dst: Eax, src: Edi });
        roundtrip(Insn::Shift {
            op: ShiftOp::Shl,
            dst: Eax,
            amount: 3,
        });
        roundtrip(Insn::Shift {
            op: ShiftOp::Sar,
            dst: Ebx,
            amount: 31,
        });
        roundtrip(Insn::ImulRR { dst: Eax, src: Ebx });
        roundtrip(Insn::Push { src: Ebp });
        roundtrip(Insn::Pop { dst: Edi });
        roundtrip(Insn::Jmp { target: 0x3f_fff0 });
        roundtrip(Insn::Call { target: 0x41_0000 });
        roundtrip(Insn::Ret);
        roundtrip(Insn::Nop);
        roundtrip(Insn::Hlt);
    }

    #[test]
    fn truncated_input() {
        assert_eq!(decode(&[], 0), Err(DecodeError::Truncated));
        assert_eq!(decode(&[0xB8, 0x01], 0), Err(DecodeError::Truncated));
        assert_eq!(decode(&[0x8B], 0), Err(DecodeError::Truncated));
    }

    #[test]
    fn unknown_opcodes() {
        assert_eq!(decode(&[0xCC], 0), Err(DecodeError::UnknownOpcode(0xCC)));
        assert_eq!(
            decode(&[0x0F, 0x05], 0),
            Err(DecodeError::UnknownOpcode0F(0x05))
        );
    }

    #[test]
    fn non_canonical_and_unsupported_forms_are_rejected() {
        use DecodeError::Invalid;
        let cases: &[(&[u8], &str)] = &[
            // 66 prefix before anything but 89.
            (&[0x66, 0x8B, 0x00], "66 prefix is only valid before 89"),
            // 16-bit register-register move.
            (&[0x66, 0x89, 0xC1], "16-bit register move unsupported"),
            // mov r,r through 8B (canonical form is 89).
            (&[0x8B, 0xC1], "canonical mov r,r uses 89"),
            // 8-bit register move.
            (&[0x88, 0xC1], "8-bit register move unsupported"),
            // lea with a register operand.
            (&[0x8D, 0xC1], "lea requires memory operand"),
            // reg-reg ALU through the RM opcode family.
            (&[0x03, 0xC1], "canonical reg-reg ALU uses MR form"),
            // 81 /2 (adc) is outside the subset.
            (&[0x81, 0xD1, 0, 0, 0, 0], "unsupported 81 /digit"),
            // F7 /4 (mul) is outside the subset.
            (&[0xF7, 0xE1, 0, 0, 0, 0], "unsupported F7 /digit"),
            // C1 /0 (rol) is outside the subset.
            (&[0xC1, 0xC1, 3], "unsupported C1 /digit"),
            // rep prefix before anything but movsd.
            (&[0xF3, 0x90], "rep prefix is only valid before movsd"),
            // movzx from a register.
            (&[0x0F, 0xB6, 0xC1], "movzx/movsx from register unsupported"),
            // movq between MMX registers.
            (&[0x0F, 0x6F, 0xC1], "movq mm,mm unsupported"),
        ];
        for (bytes, why) in cases {
            assert_eq!(decode(bytes, 0), Err(Invalid(why)), "{bytes:02x?}");
        }
    }

    #[test]
    fn figure2_example_decodes() {
        // The paper's running example: mov 0x2(%ebx), %eax
        let d = decode(&[0x8B, 0x43, 0x02], 0x40_0000).unwrap();
        assert_eq!(
            d.insn,
            Insn::Load {
                width: Width::W4,
                ext: Ext::Zero,
                dst: Reg32::Eax,
                src: MemRef::base_disp(Reg32::Ebx, 2),
            }
        );
    }
}
