//! AT&T-style disassembler for the x86 subset, used for debugging dumps and
//! the DBT's side-by-side translation listings.

use crate::decode::decode;
use crate::insn::{Ext, Insn, Width};
use std::fmt::Write as _;

fn width_suffix(width: Width) -> &'static str {
    match width {
        Width::W1 => "b",
        Width::W2 => "w",
        Width::W4 => "l",
        Width::W8 => "q",
    }
}

/// Formats a single instruction at `addr` in AT&T syntax (source before
/// destination, `%`-prefixed registers, `$`-prefixed immediates).
pub fn format_insn(insn: &Insn, _addr: u32) -> String {
    let mut s = String::new();
    match *insn {
        Insn::MovRI { dst, imm } => {
            let _ = write!(s, "movl ${imm:#x}, {dst}");
        }
        Insn::MovRR { dst, src } => {
            let _ = write!(s, "movl {src}, {dst}");
        }
        Insn::Load {
            width,
            ext,
            dst,
            src,
        } => match (width, ext) {
            (Width::W4, _) => {
                let _ = write!(s, "movl {src}, {dst}");
            }
            (w, Ext::Zero) => {
                let _ = write!(s, "movz{}l {src}, {dst}", width_suffix(w));
            }
            (w, Ext::Sign) => {
                let _ = write!(s, "movs{}l {src}, {dst}", width_suffix(w));
            }
        },
        Insn::Store { width, src, dst } => {
            let _ = write!(s, "mov{} {src}, {dst}", width_suffix(width));
        }
        Insn::MovqLoad { dst, src } => {
            let _ = write!(s, "movq {src}, {dst}");
        }
        Insn::MovqStore { src, dst } => {
            let _ = write!(s, "movq {src}, {dst}");
        }
        Insn::Lea { dst, src } => {
            let _ = write!(s, "leal {src}, {dst}");
        }
        Insn::AluRR { op, dst, src } => {
            let _ = write!(s, "{op}l {src}, {dst}");
        }
        Insn::AluRI { op, dst, imm } => {
            let _ = write!(s, "{op}l ${imm:#x}, {dst}");
        }
        Insn::AluRM { op, dst, src } => {
            let _ = write!(s, "{op}l {src}, {dst}");
        }
        Insn::AluMR { op, dst, src } => {
            let _ = write!(s, "{op}l {src}, {dst}");
        }
        Insn::Shift { op, dst, amount } => {
            let _ = write!(s, "{op}l ${amount}, {dst}");
        }
        Insn::ImulRR { dst, src } => {
            let _ = write!(s, "imull {src}, {dst}");
        }
        Insn::ImulRM { dst, src } => {
            let _ = write!(s, "imull {src}, {dst}");
        }
        Insn::Push { src } => {
            let _ = write!(s, "pushl {src}");
        }
        Insn::Pop { dst } => {
            let _ = write!(s, "popl {dst}");
        }
        Insn::Jcc { cond, target } => {
            let _ = write!(s, "j{cond} {target:#x}");
        }
        Insn::Jmp { target } => {
            let _ = write!(s, "jmp {target:#x}");
        }
        Insn::Call { target } => {
            let _ = write!(s, "call {target:#x}");
        }
        Insn::Neg { dst } => {
            let _ = write!(s, "negl {dst}");
        }
        Insn::Not { dst } => {
            let _ = write!(s, "notl {dst}");
        }
        Insn::Xchg { a, b } => {
            let _ = write!(s, "xchgl {b}, {a}");
        }
        Insn::Setcc { cond, dst } => {
            let _ = write!(s, "set{cond} {dst}");
        }
        Insn::Cmovcc { cond, dst, src } => {
            let _ = write!(s, "cmov{cond}l {src}, {dst}");
        }
        Insn::RepMovsd => s.push_str("rep movsd"),
        Insn::Ret => s.push_str("ret"),
        Insn::Nop => s.push_str("nop"),
        Insn::Hlt => s.push_str("hlt"),
    }
    s
}

/// Disassembles a byte image starting at `base`, one line per instruction.
/// Undecodable bytes are shown as `.byte` and skipped one at a time.
pub fn disassemble(bytes: &[u8], base: u32) -> String {
    let mut out = String::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let addr = base.wrapping_add(pos as u32);
        match decode(&bytes[pos..], addr) {
            Ok(d) => {
                let raw: Vec<String> = bytes[pos..pos + d.len as usize]
                    .iter()
                    .map(|b| format!("{b:02x}"))
                    .collect();
                let _ = writeln!(
                    out,
                    "{addr:#010x}:  {:<24} {}",
                    raw.join(" "),
                    format_insn(&d.insn, addr)
                );
                pos += d.len as usize;
            }
            Err(_) => {
                let _ = writeln!(
                    out,
                    "{addr:#010x}:  {:02x}                       .byte",
                    bytes[pos]
                );
                pos += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;
    use crate::cond::Cond;
    use crate::insn::{AluOp, MemRef, ShiftOp};
    use crate::reg::{Reg32, RegMm};

    #[test]
    fn formats_core_instructions() {
        assert_eq!(
            format_insn(
                &Insn::MovRI {
                    dst: Reg32::Eax,
                    imm: 0x10
                },
                0
            ),
            "movl $0x10, %eax"
        );
        assert_eq!(
            format_insn(
                &Insn::Load {
                    width: Width::W4,
                    ext: Ext::Zero,
                    dst: Reg32::Eax,
                    src: MemRef::base_disp(Reg32::Ebx, 2),
                },
                0
            ),
            "movl 0x2(%ebx), %eax"
        );
        assert_eq!(
            format_insn(
                &Insn::Load {
                    width: Width::W2,
                    ext: Ext::Sign,
                    dst: Reg32::Ecx,
                    src: MemRef::abs(0x100),
                },
                0
            ),
            "movswl 0x100(), %ecx"
        );
        assert_eq!(
            format_insn(
                &Insn::AluRR {
                    op: AluOp::Add,
                    dst: Reg32::Eax,
                    src: Reg32::Ebx
                },
                0
            ),
            "addl %ebx, %eax"
        );
        assert_eq!(
            format_insn(
                &Insn::Shift {
                    op: ShiftOp::Sar,
                    dst: Reg32::Edx,
                    amount: 3
                },
                0
            ),
            "sarl $3, %edx"
        );
        assert_eq!(
            format_insn(
                &Insn::Jcc {
                    cond: Cond::Ne,
                    target: 0x400100
                },
                0x400000
            ),
            "jne 0x400100"
        );
        assert_eq!(
            format_insn(
                &Insn::MovqLoad {
                    dst: RegMm::Mm1,
                    src: MemRef::base_disp(Reg32::Esi, 8)
                },
                0
            ),
            "movq 0x8(%esi), %mm1"
        );
        assert_eq!(format_insn(&Insn::Ret, 0), "ret");
    }

    #[test]
    fn disassembles_an_image() {
        let mut a = Assembler::new(0x40_0000);
        a.mov_ri(Reg32::Ecx, 5);
        let top = a.here_label();
        a.alu_ri(AluOp::Sub, Reg32::Ecx, 1);
        a.jcc(Cond::Ne, top);
        a.hlt();
        let image = a.finish().unwrap();
        let text = disassemble(&image, 0x40_0000);
        assert_eq!(text.lines().count(), 4);
        assert!(text.contains("movl $0x5, %ecx"));
        assert!(text.contains("subl $0x1, %ecx"));
        assert!(text.contains("jne 0x400005"));
        assert!(text.contains("hlt"));
    }

    #[test]
    fn bad_bytes_become_byte_directives() {
        let text = disassemble(&[0xCC, 0x90], 0);
        assert!(text.contains(".byte"));
        assert!(text.contains("nop"));
    }
}
