//! A small label-based assembler for building guest programs.
//!
//! Used by the synthetic workload generators and by tests to construct x86
//! images without hand-writing byte sequences.
//!
//! # Example
//!
//! ```
//! use bridge_x86::asm::Assembler;
//! use bridge_x86::insn::{AluOp, MemRef, Width, Ext};
//! use bridge_x86::cond::Cond;
//! use bridge_x86::reg::Reg32::*;
//!
//! // for (ecx = 10; ecx != 0; ecx--) eax += [0x1002];  (misaligned load)
//! let mut a = Assembler::new(0x40_0000);
//! a.mov_ri(Ecx, 10);
//! let top = a.here_label();
//! a.alu_rm(AluOp::Add, Eax, MemRef::abs(0x1002));
//! a.alu_ri(AluOp::Sub, Ecx, 1);
//! a.jcc(Cond::Ne, top);
//! a.hlt();
//! let image = a.finish().expect("assembles");
//! assert!(image.len() > 10);
//! ```

use crate::cond::Cond;
use crate::encode::{encode, EncodeError};
use crate::insn::{AluOp, Ext, Insn, MemRef, ShiftOp, Width};
use crate::reg::{Reg32, RegMm};
use std::fmt;

/// A forward- or backward-referencable code label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Assembly errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// An instruction could not be encoded.
    Encode(EncodeError),
    /// `finish` was called while a label was still unbound.
    UnboundLabel(Label),
    /// A label was bound twice.
    Rebound(Label),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::Encode(e) => write!(f, "encode error: {e}"),
            AsmError::UnboundLabel(l) => write!(f, "label {:?} never bound", l),
            AsmError::Rebound(l) => write!(f, "label {:?} bound twice", l),
        }
    }
}

impl std::error::Error for AsmError {}

impl From<EncodeError> for AsmError {
    fn from(e: EncodeError) -> AsmError {
        AsmError::Encode(e)
    }
}

struct Fixup {
    /// Byte offset of the instruction within the image.
    insn_off: usize,
    /// Encoded instruction length (the rel32 is its last 4 bytes).
    insn_len: u32,
    label: Label,
}

/// Builds an x86 machine-code image at a fixed base address.
pub struct Assembler {
    base: u32,
    code: Vec<u8>,
    labels: Vec<Option<u32>>,
    fixups: Vec<Fixup>,
    first_error: Option<AsmError>,
}

impl Assembler {
    /// New assembler producing an image whose first byte will live at guest
    /// address `base`.
    pub fn new(base: u32) -> Assembler {
        Assembler {
            base,
            code: Vec::new(),
            labels: Vec::new(),
            fixups: Vec::new(),
            first_error: None,
        }
    }

    /// The base address given at construction.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Guest address of the next instruction to be emitted.
    pub fn here(&self) -> u32 {
        self.base + self.code.len() as u32
    }

    /// Creates a fresh unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    pub fn bind(&mut self, label: Label) {
        if self.labels[label.0].is_some() {
            self.set_error(AsmError::Rebound(label));
            return;
        }
        self.labels[label.0] = Some(self.here());
    }

    /// Creates a label already bound to the current position.
    pub fn here_label(&mut self) -> Label {
        let l = self.new_label();
        self.bind(l);
        l
    }

    /// Address a bound label resolves to, if bound.
    pub fn label_addr(&self, label: Label) -> Option<u32> {
        self.labels[label.0]
    }

    fn set_error(&mut self, e: AsmError) {
        if self.first_error.is_none() {
            self.first_error = Some(e);
        }
    }

    /// Emits an arbitrary instruction. Branch targets inside `insn` must be
    /// absolute addresses; prefer the labelled helpers for control flow.
    pub fn emit(&mut self, insn: Insn) {
        let addr = self.here();
        if let Err(e) = encode(&insn, addr, &mut self.code) {
            self.set_error(e.into());
        }
    }

    fn emit_branch(&mut self, insn: Insn, label: Label) {
        let insn_off = self.code.len();
        let addr = self.here();
        match encode(&insn, addr, &mut self.code) {
            Ok(len) => self.fixups.push(Fixup {
                insn_off,
                insn_len: len,
                label,
            }),
            Err(e) => self.set_error(e.into()),
        }
    }

    /// `mov dst, imm`
    pub fn mov_ri(&mut self, dst: Reg32, imm: i32) {
        self.emit(Insn::MovRI { dst, imm });
    }

    /// `mov dst, src`
    pub fn mov_rr(&mut self, dst: Reg32, src: Reg32) {
        self.emit(Insn::MovRR { dst, src });
    }

    /// Memory load (`mov`/`movzx`/`movsx` depending on width and extension).
    pub fn load(&mut self, width: Width, ext: Ext, dst: Reg32, src: MemRef) {
        self.emit(Insn::Load {
            width,
            ext,
            dst,
            src,
        });
    }

    /// Memory store of the low `width` bytes of `src`.
    pub fn store(&mut self, width: Width, src: Reg32, dst: MemRef) {
        self.emit(Insn::Store { width, src, dst });
    }

    /// 8-byte MMX load.
    pub fn movq_load(&mut self, dst: RegMm, src: MemRef) {
        self.emit(Insn::MovqLoad { dst, src });
    }

    /// 8-byte MMX store.
    pub fn movq_store(&mut self, src: RegMm, dst: MemRef) {
        self.emit(Insn::MovqStore { src, dst });
    }

    /// `lea dst, src`
    pub fn lea(&mut self, dst: Reg32, src: MemRef) {
        self.emit(Insn::Lea { dst, src });
    }

    /// Register-register ALU.
    pub fn alu_rr(&mut self, op: AluOp, dst: Reg32, src: Reg32) {
        self.emit(Insn::AluRR { op, dst, src });
    }

    /// Register-immediate ALU.
    pub fn alu_ri(&mut self, op: AluOp, dst: Reg32, imm: i32) {
        self.emit(Insn::AluRI { op, dst, imm });
    }

    /// Register ← register op memory.
    pub fn alu_rm(&mut self, op: AluOp, dst: Reg32, src: MemRef) {
        self.emit(Insn::AluRM { op, dst, src });
    }

    /// Memory ← memory op register (read-modify-write unless `cmp`/`test`).
    pub fn alu_mr(&mut self, op: AluOp, dst: MemRef, src: Reg32) {
        self.emit(Insn::AluMR { op, dst, src });
    }

    /// Shift by immediate.
    pub fn shift(&mut self, op: ShiftOp, dst: Reg32, amount: u8) {
        self.emit(Insn::Shift { op, dst, amount });
    }

    /// `imul dst, src`
    pub fn imul_rr(&mut self, dst: Reg32, src: Reg32) {
        self.emit(Insn::ImulRR { dst, src });
    }

    /// `imul dst, m32`
    pub fn imul_rm(&mut self, dst: Reg32, src: MemRef) {
        self.emit(Insn::ImulRM { dst, src });
    }

    /// `push src`
    pub fn push(&mut self, src: Reg32) {
        self.emit(Insn::Push { src });
    }

    /// `pop dst`
    pub fn pop(&mut self, dst: Reg32) {
        self.emit(Insn::Pop { dst });
    }

    /// `setcc dst` — condition into the low byte of `dst`.
    pub fn setcc(&mut self, cond: Cond, dst: Reg32) {
        self.emit(Insn::Setcc { cond, dst });
    }

    /// `cmovcc dst, src` — conditional register move.
    pub fn cmovcc(&mut self, cond: Cond, dst: Reg32, src: Reg32) {
        self.emit(Insn::Cmovcc { cond, dst, src });
    }

    /// Conditional branch to a label.
    pub fn jcc(&mut self, cond: Cond, target: Label) {
        self.emit_branch(Insn::Jcc { cond, target: 0 }, target);
    }

    /// Unconditional branch to a label.
    pub fn jmp(&mut self, target: Label) {
        self.emit_branch(Insn::Jmp { target: 0 }, target);
    }

    /// Call a label.
    pub fn call(&mut self, target: Label) {
        self.emit_branch(Insn::Call { target: 0 }, target);
    }

    /// `ret`
    pub fn ret(&mut self) {
        self.emit(Insn::Ret);
    }

    /// `nop`
    pub fn nop(&mut self) {
        self.emit(Insn::Nop);
    }

    /// `hlt` — guest program exit.
    pub fn hlt(&mut self) {
        self.emit(Insn::Hlt);
    }

    /// Resolves all label fixups and returns the image bytes.
    ///
    /// # Errors
    ///
    /// Returns the first error encountered while emitting, or
    /// [`AsmError::UnboundLabel`] if a referenced label was never bound.
    pub fn finish(mut self) -> Result<Vec<u8>, AsmError> {
        if let Some(e) = self.first_error.take() {
            return Err(e);
        }
        for f in &self.fixups {
            let target = self.labels[f.label.0].ok_or(AsmError::UnboundLabel(f.label))?;
            let insn_addr = self.base + f.insn_off as u32;
            let rel = target.wrapping_sub(insn_addr.wrapping_add(f.insn_len));
            let patch_at = f.insn_off + f.insn_len as usize - 4;
            self.code[patch_at..patch_at + 4].copy_from_slice(&rel.to_le_bytes());
        }
        Ok(self.code)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode;

    #[test]
    fn forward_and_backward_labels() {
        let mut a = Assembler::new(0x1000);
        let end = a.new_label();
        let top = a.here_label();
        a.alu_ri(AluOp::Sub, Reg32::Ecx, 1);
        a.jcc(Cond::E, end);
        a.jmp(top);
        a.bind(end);
        a.hlt();
        let code = a.finish().unwrap();

        // Walk the image and confirm the branches resolve correctly.
        let mut addr = 0x1000u32;
        let mut pos = 0usize;
        let mut decoded = Vec::new();
        while pos < code.len() {
            let d = decode(&code[pos..], addr).unwrap();
            decoded.push(d.insn);
            pos += d.len as usize;
            addr += d.len;
        }
        assert!(matches!(decoded[1], Insn::Jcc { cond: Cond::E, target } if target == addr - 1));
        assert!(matches!(decoded[2], Insn::Jmp { target: 0x1000 }));
        assert!(matches!(decoded[3], Insn::Hlt));
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut a = Assembler::new(0);
        let l = a.new_label();
        a.jmp(l);
        assert!(matches!(a.finish(), Err(AsmError::UnboundLabel(_))));
    }

    #[test]
    fn rebound_label_is_an_error() {
        let mut a = Assembler::new(0);
        let l = a.here_label();
        a.nop();
        a.bind(l);
        a.hlt();
        assert!(matches!(a.finish(), Err(AsmError::Rebound(_))));
    }

    #[test]
    fn encode_errors_surface_at_finish() {
        let mut a = Assembler::new(0);
        a.store(Width::W1, Reg32::Edi, MemRef::abs(0x100)); // no low byte
        a.hlt();
        assert!(matches!(a.finish(), Err(AsmError::Encode(_))));
    }

    #[test]
    fn here_tracks_addresses() {
        let mut a = Assembler::new(0x40_0000);
        assert_eq!(a.here(), 0x40_0000);
        a.mov_ri(Reg32::Eax, 1); // 5 bytes
        assert_eq!(a.here(), 0x40_0005);
        a.nop();
        assert_eq!(a.here(), 0x40_0006);
    }

    #[test]
    fn call_ret_roundtrip_assembles() {
        let mut a = Assembler::new(0x2000);
        let func = a.new_label();
        a.call(func);
        a.hlt();
        a.bind(func);
        a.ret();
        let code = a.finish().unwrap();
        let d = decode(&code, 0x2000).unwrap();
        assert!(matches!(d.insn, Insn::Call { target } if target == 0x2000 + 6));
    }
}
