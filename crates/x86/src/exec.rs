//! Reference execution semantics for the x86 subset.
//!
//! [`execute`] is the golden model: the DBT's phase-1 interpreter runs it
//! directly, and translated Alpha code is required (and property-tested) to
//! produce identical guest-visible state.

use crate::insn::{AluOp, Ext, Insn, ShiftOp, Width};
use crate::state::{CpuState, Flags};

/// Memory as seen by the guest: byte-addressable, with **no alignment
/// restriction** — this is precisely the x86 property the paper's problem
/// stems from.
///
/// Values are exchanged as zero-extended `u64` regardless of width; `store`
/// writes only the low `width` bytes.
pub trait GuestMem {
    /// Loads `width` bytes at `addr` (little-endian), zero-extended.
    fn load(&mut self, addr: u32, width: Width) -> u64;
    /// Stores the low `width` bytes of `value` at `addr` (little-endian).
    fn store(&mut self, addr: u32, width: Width, value: u64);
}

impl<M: GuestMem + ?Sized> GuestMem for &mut M {
    fn load(&mut self, addr: u32, width: Width) -> u64 {
        (**self).load(addr, width)
    }
    fn store(&mut self, addr: u32, width: Width, value: u64) {
        (**self).store(addr, width, value)
    }
}

/// One dynamic memory access performed by an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Effective address.
    pub addr: u32,
    /// Access width.
    pub width: Width,
    /// `true` for stores.
    pub store: bool,
}

impl MemAccess {
    /// Whether this access is misaligned (crosses a natural boundary).
    #[inline]
    pub fn misaligned(&self) -> bool {
        self.width.misaligned(self.addr)
    }
}

/// The memory accesses of one executed instruction (at most two: RMW forms).
///
/// Stored as a plain array plus a length — no `Option` tags — because this
/// sits on the interpreter's per-instruction hot path: slots beyond `len`
/// are simply dead values.
#[derive(Debug, Clone, Copy)]
pub struct AccessList {
    items: [MemAccess; 2],
    len: u8,
}

impl PartialEq for AccessList {
    fn eq(&self, other: &AccessList) -> bool {
        // Only live slots count — slots beyond `len` are dead values.
        self.items[..self.len as usize] == other.items[..other.len as usize]
    }
}

impl Eq for AccessList {}

impl Default for AccessList {
    fn default() -> AccessList {
        const EMPTY: MemAccess = MemAccess {
            addr: 0,
            width: Width::W1,
            store: false,
        };
        AccessList {
            items: [EMPTY; 2],
            len: 0,
        }
    }
}

impl AccessList {
    #[inline]
    fn push(&mut self, a: MemAccess) {
        self.items[self.len as usize] = a;
        self.len += 1;
    }

    /// Number of accesses (0..=2).
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether no memory was touched.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over the accesses in execution order.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = MemAccess> + '_ {
        self.items[..self.len as usize].iter().copied()
    }
}

/// Where control goes after an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Next {
    /// Fall through to the next sequential instruction.
    Fall,
    /// Control transfer to an absolute guest address (taken branch, call,
    /// return).
    Jump(u32),
    /// The program executed `hlt`.
    Halt,
}

/// Outcome of executing one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepResult {
    /// Control-flow outcome. `eip` has already been updated to match.
    pub next: Next,
    /// Memory accesses performed.
    pub accesses: AccessList,
}

fn flags_add(a: u32, b: u32) -> (u32, Flags) {
    let res = a.wrapping_add(b);
    (
        res,
        Flags {
            zf: res == 0,
            sf: (res as i32) < 0,
            cf: res < a,
            of: ((a ^ res) & (b ^ res)) >> 31 != 0,
        },
    )
}

fn flags_sub(a: u32, b: u32) -> (u32, Flags) {
    let res = a.wrapping_sub(b);
    (
        res,
        Flags {
            zf: res == 0,
            sf: (res as i32) < 0,
            cf: a < b,
            of: ((a ^ b) & (a ^ res)) >> 31 != 0,
        },
    )
}

fn flags_logic(res: u32) -> Flags {
    Flags {
        zf: res == 0,
        sf: (res as i32) < 0,
        cf: false,
        of: false,
    }
}

/// Applies a two-operand ALU op, returning the (possibly discarded) result
/// and the new flags.
pub fn alu(op: AluOp, a: u32, b: u32) -> (u32, Flags) {
    match op {
        AluOp::Add => flags_add(a, b),
        AluOp::Sub | AluOp::Cmp => flags_sub(a, b),
        AluOp::And | AluOp::Test => {
            let r = a & b;
            (r, flags_logic(r))
        }
        AluOp::Or => {
            let r = a | b;
            (r, flags_logic(r))
        }
        AluOp::Xor => {
            let r = a ^ b;
            (r, flags_logic(r))
        }
    }
}

/// Applies a shift, returning the result and new flags.
///
/// A shift count of zero (after masking to 5 bits) leaves flags unchanged,
/// as on hardware. OF is architecturally undefined for counts > 1; this
/// model (and the translator, identically) leaves it cleared.
pub fn shift(op: ShiftOp, a: u32, amount: u8, old: Flags) -> (u32, Flags) {
    let amt = (amount & 31) as u32;
    if amt == 0 {
        return (a, old);
    }
    let (res, cf) = match op {
        ShiftOp::Shl => (a.wrapping_shl(amt), (a >> (32 - amt)) & 1 != 0),
        ShiftOp::Shr => (a.wrapping_shr(amt), (a >> (amt - 1)) & 1 != 0),
        ShiftOp::Sar => (
            ((a as i32) >> amt) as u32,
            ((a as i32) >> (amt - 1)) & 1 != 0,
        ),
    };
    (
        res,
        Flags {
            zf: res == 0,
            sf: (res as i32) < 0,
            cf,
            of: false,
        },
    )
}

fn extend(value: u64, width: Width, ext: Ext) -> u32 {
    match (width, ext) {
        (Width::W4, _) => value as u32,
        (Width::W2, Ext::Zero) => value as u16 as u32,
        (Width::W2, Ext::Sign) => value as u16 as i16 as i32 as u32,
        (Width::W1, Ext::Zero) => value as u8 as u32,
        (Width::W1, Ext::Sign) => value as u8 as i8 as i32 as u32,
        (Width::W8, _) => unreachable!("W8 loads use the MMX path"),
    }
}

/// Executes one decoded instruction of encoded length `len` located at
/// `state.eip`, updating `state` (including `eip`) and `mem`.
///
/// Returns the control-flow outcome and the memory accesses performed, which
/// the caller can inspect for MDA profiling.
pub fn execute(insn: &Insn, len: u32, state: &mut CpuState, mem: &mut impl GuestMem) -> StepResult {
    let mut acc = AccessList::default();
    let fall = state.eip.wrapping_add(len);
    let mut next = Next::Fall;

    match *insn {
        Insn::MovRI { dst, imm } => state.set_reg(dst, imm as u32),
        Insn::MovRR { dst, src } => {
            let v = state.reg(src);
            state.set_reg(dst, v);
        }
        Insn::Load {
            width,
            ext,
            dst,
            src,
        } => {
            let addr = src.effective(&state.regs);
            let raw = mem.load(addr, width);
            acc.push(MemAccess {
                addr,
                width,
                store: false,
            });
            state.set_reg(dst, extend(raw, width, ext));
        }
        Insn::Store { width, src, dst } => {
            let addr = dst.effective(&state.regs);
            mem.store(addr, width, state.reg(src) as u64);
            acc.push(MemAccess {
                addr,
                width,
                store: true,
            });
        }
        Insn::MovqLoad { dst, src } => {
            let addr = src.effective(&state.regs);
            let raw = mem.load(addr, Width::W8);
            acc.push(MemAccess {
                addr,
                width: Width::W8,
                store: false,
            });
            state.set_mm(dst, raw);
        }
        Insn::MovqStore { src, dst } => {
            let addr = dst.effective(&state.regs);
            mem.store(addr, Width::W8, state.mm(src));
            acc.push(MemAccess {
                addr,
                width: Width::W8,
                store: true,
            });
        }
        Insn::Lea { dst, src } => {
            let ea = src.effective(&state.regs);
            state.set_reg(dst, ea);
        }
        Insn::AluRR { op, dst, src } => {
            let (res, f) = alu(op, state.reg(dst), state.reg(src));
            if op.writes_back() {
                state.set_reg(dst, res);
            }
            state.flags = f;
        }
        Insn::AluRI { op, dst, imm } => {
            let (res, f) = alu(op, state.reg(dst), imm as u32);
            if op.writes_back() {
                state.set_reg(dst, res);
            }
            state.flags = f;
        }
        Insn::AluRM { op, dst, src } => {
            let addr = src.effective(&state.regs);
            let m = mem.load(addr, Width::W4) as u32;
            acc.push(MemAccess {
                addr,
                width: Width::W4,
                store: false,
            });
            let (res, f) = alu(op, state.reg(dst), m);
            if op.writes_back() {
                state.set_reg(dst, res);
            }
            state.flags = f;
        }
        Insn::AluMR { op, dst, src } => {
            let addr = dst.effective(&state.regs);
            let m = mem.load(addr, Width::W4) as u32;
            acc.push(MemAccess {
                addr,
                width: Width::W4,
                store: false,
            });
            let (res, f) = alu(op, m, state.reg(src));
            if op.writes_back() {
                mem.store(addr, Width::W4, res as u64);
                acc.push(MemAccess {
                    addr,
                    width: Width::W4,
                    store: true,
                });
            }
            state.flags = f;
        }
        Insn::Shift { op, dst, amount } => {
            let (res, f) = shift(op, state.reg(dst), amount, state.flags);
            state.set_reg(dst, res);
            state.flags = f;
        }
        Insn::ImulRR { dst, src } => {
            let res = state.reg(dst).wrapping_mul(state.reg(src));
            state.set_reg(dst, res);
            state.flags = Flags::default();
        }
        Insn::ImulRM { dst, src } => {
            let addr = src.effective(&state.regs);
            let m = mem.load(addr, Width::W4) as u32;
            acc.push(MemAccess {
                addr,
                width: Width::W4,
                store: false,
            });
            let res = state.reg(dst).wrapping_mul(m);
            state.set_reg(dst, res);
            state.flags = Flags::default();
        }
        Insn::Push { src } => {
            let sp = state.reg(crate::reg::Reg32::Esp).wrapping_sub(4);
            mem.store(sp, Width::W4, state.reg(src) as u64);
            acc.push(MemAccess {
                addr: sp,
                width: Width::W4,
                store: true,
            });
            state.set_reg(crate::reg::Reg32::Esp, sp);
        }
        Insn::Pop { dst } => {
            let sp = state.reg(crate::reg::Reg32::Esp);
            let v = mem.load(sp, Width::W4) as u32;
            acc.push(MemAccess {
                addr: sp,
                width: Width::W4,
                store: false,
            });
            state.set_reg(crate::reg::Reg32::Esp, sp.wrapping_add(4));
            state.set_reg(dst, v);
        }
        Insn::Neg { dst } => {
            let (res, f) = alu(AluOp::Sub, 0, state.reg(dst));
            state.set_reg(dst, res);
            state.flags = f;
        }
        Insn::Not { dst } => {
            let v = !state.reg(dst);
            state.set_reg(dst, v);
        }
        Insn::Xchg { a, b } => {
            let (va, vb) = (state.reg(a), state.reg(b));
            state.set_reg(a, vb);
            state.set_reg(b, va);
        }
        Insn::Setcc { cond, dst } => {
            let bit = u32::from(cond.eval(state.flags));
            let v = (state.reg(dst) & !0xFF) | bit;
            state.set_reg(dst, v);
        }
        Insn::Cmovcc { cond, dst, src } => {
            if cond.eval(state.flags) {
                let v = state.reg(src);
                state.set_reg(dst, v);
            }
        }
        Insn::RepMovsd => {
            // One iteration per architectural step (hardware makes REP
            // interruptible the same way).
            let count = state.reg(crate::reg::Reg32::Ecx);
            if count != 0 {
                let src = state.reg(crate::reg::Reg32::Esi);
                let dst = state.reg(crate::reg::Reg32::Edi);
                let v = mem.load(src, Width::W4);
                acc.push(MemAccess {
                    addr: src,
                    width: Width::W4,
                    store: false,
                });
                mem.store(dst, Width::W4, v);
                acc.push(MemAccess {
                    addr: dst,
                    width: Width::W4,
                    store: true,
                });
                state.set_reg(crate::reg::Reg32::Esi, src.wrapping_add(4));
                state.set_reg(crate::reg::Reg32::Edi, dst.wrapping_add(4));
                state.set_reg(crate::reg::Reg32::Ecx, count - 1);
                if count > 1 {
                    next = Next::Jump(state.eip); // repeat in place
                }
            }
        }
        Insn::Jcc { cond, target } => {
            if cond.eval(state.flags) {
                next = Next::Jump(target);
            }
        }
        Insn::Jmp { target } => next = Next::Jump(target),
        Insn::Call { target } => {
            let sp = state.reg(crate::reg::Reg32::Esp).wrapping_sub(4);
            mem.store(sp, Width::W4, fall as u64);
            acc.push(MemAccess {
                addr: sp,
                width: Width::W4,
                store: true,
            });
            state.set_reg(crate::reg::Reg32::Esp, sp);
            next = Next::Jump(target);
        }
        Insn::Ret => {
            let sp = state.reg(crate::reg::Reg32::Esp);
            let v = mem.load(sp, Width::W4) as u32;
            acc.push(MemAccess {
                addr: sp,
                width: Width::W4,
                store: false,
            });
            state.set_reg(crate::reg::Reg32::Esp, sp.wrapping_add(4));
            next = Next::Jump(v);
        }
        Insn::Nop => {}
        Insn::Hlt => next = Next::Halt,
    }

    state.eip = match next {
        Next::Fall => fall,
        Next::Jump(t) => t,
        Next::Halt => fall,
    };
    StepResult {
        next,
        accesses: acc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cond::Cond;
    use crate::insn::MemRef;
    use crate::reg::{Reg32, RegMm};
    use std::collections::HashMap;

    /// Simple byte-map memory for tests.
    #[derive(Default)]
    struct MapMem(HashMap<u32, u8>);

    impl GuestMem for MapMem {
        fn load(&mut self, addr: u32, width: Width) -> u64 {
            let mut v = 0u64;
            for i in 0..width.bytes() {
                v |= u64::from(*self.0.get(&addr.wrapping_add(i)).unwrap_or(&0)) << (8 * i);
            }
            v
        }
        fn store(&mut self, addr: u32, width: Width, value: u64) {
            for i in 0..width.bytes() {
                self.0
                    .insert(addr.wrapping_add(i), (value >> (8 * i)) as u8);
            }
        }
    }

    fn run_one(insn: Insn, st: &mut CpuState, mem: &mut MapMem) -> StepResult {
        execute(&insn, 4, st, mem)
    }

    #[test]
    fn mov_and_alu() {
        let mut st = CpuState::new(0);
        let mut mem = MapMem::default();
        run_one(
            Insn::MovRI {
                dst: Reg32::Eax,
                imm: 5,
            },
            &mut st,
            &mut mem,
        );
        run_one(
            Insn::MovRI {
                dst: Reg32::Ebx,
                imm: 7,
            },
            &mut st,
            &mut mem,
        );
        run_one(
            Insn::AluRR {
                op: AluOp::Add,
                dst: Reg32::Eax,
                src: Reg32::Ebx,
            },
            &mut st,
            &mut mem,
        );
        assert_eq!(st.reg(Reg32::Eax), 12);
        assert!(!st.flags.zf);
        run_one(
            Insn::AluRI {
                op: AluOp::Sub,
                dst: Reg32::Eax,
                imm: 12,
            },
            &mut st,
            &mut mem,
        );
        assert!(st.flags.zf);
        assert_eq!(st.reg(Reg32::Eax), 0);
    }

    #[test]
    fn add_carry_and_overflow() {
        let (_, f) = alu(AluOp::Add, u32::MAX, 1);
        assert!(f.cf && f.zf && !f.of);
        let (_, f) = alu(AluOp::Add, 0x7fff_ffff, 1);
        assert!(f.of && !f.cf && f.sf);
        let (_, f) = alu(AluOp::Sub, 0, 1);
        assert!(f.cf && f.sf && !f.of);
        let (_, f) = alu(AluOp::Sub, i32::MIN as u32, 1);
        assert!(f.of && !f.cf);
    }

    #[test]
    fn shift_semantics() {
        let old = Flags {
            zf: true,
            sf: true,
            cf: true,
            of: true,
        };
        // Count 0 preserves flags.
        let (r, f) = shift(ShiftOp::Shl, 0xff, 0, old);
        assert_eq!((r, f), (0xff, old));
        // Count 32 masks to 0 and also preserves.
        let (r, f) = shift(ShiftOp::Shl, 0xff, 32, old);
        assert_eq!((r, f), (0xff, old));
        let (r, f) = shift(ShiftOp::Shl, 0x8000_0001, 1, old);
        assert_eq!(r, 2);
        assert!(f.cf && !f.zf);
        let (r, f) = shift(ShiftOp::Sar, 0x8000_0000, 31, old);
        assert_eq!(r, 0xffff_ffff);
        assert!(f.sf && !f.cf);
        let (r, f) = shift(ShiftOp::Shr, 0x8000_0000, 31, old);
        assert_eq!(r, 1);
        assert!(!f.sf && !f.cf);
    }

    #[test]
    fn load_extension() {
        let mut st = CpuState::new(0);
        let mut mem = MapMem::default();
        mem.store(0x100, Width::W2, 0x8001);
        run_one(
            Insn::Load {
                width: Width::W2,
                ext: Ext::Zero,
                dst: Reg32::Eax,
                src: MemRef::abs(0x100),
            },
            &mut st,
            &mut mem,
        );
        assert_eq!(st.reg(Reg32::Eax), 0x8001);
        run_one(
            Insn::Load {
                width: Width::W2,
                ext: Ext::Sign,
                dst: Reg32::Ebx,
                src: MemRef::abs(0x100),
            },
            &mut st,
            &mut mem,
        );
        assert_eq!(st.reg(Reg32::Ebx), 0xffff_8001);
    }

    #[test]
    fn rmw_reports_two_accesses() {
        let mut st = CpuState::new(0);
        let mut mem = MapMem::default();
        mem.store(0x101, Width::W4, 10); // misaligned location
        st.set_reg(Reg32::Ecx, 32);
        let r = run_one(
            Insn::AluMR {
                op: AluOp::Add,
                dst: MemRef::abs(0x101),
                src: Reg32::Ecx,
            },
            &mut st,
            &mut mem,
        );
        assert_eq!(r.accesses.len(), 2);
        let both: Vec<_> = r.accesses.iter().collect();
        assert!(!both[0].store && both[1].store);
        assert!(both[0].misaligned() && both[1].misaligned());
        assert_eq!(mem.load(0x101, Width::W4), 42);
    }

    #[test]
    fn push_pop_call_ret() {
        let mut st = CpuState::new(0x40_0000);
        let mut mem = MapMem::default();
        st.set_reg(Reg32::Esp, 0x1000);
        st.set_reg(Reg32::Eax, 99);
        run_one(Insn::Push { src: Reg32::Eax }, &mut st, &mut mem);
        assert_eq!(st.reg(Reg32::Esp), 0xffc);
        run_one(Insn::Pop { dst: Reg32::Ebx }, &mut st, &mut mem);
        assert_eq!(st.reg(Reg32::Ebx), 99);
        assert_eq!(st.reg(Reg32::Esp), 0x1000);

        st.eip = 0x40_0000;
        let r = execute(&Insn::Call { target: 0x40_1000 }, 5, &mut st, &mut mem);
        assert_eq!(r.next, Next::Jump(0x40_1000));
        assert_eq!(st.eip, 0x40_1000);
        let r = run_one(Insn::Ret, &mut st, &mut mem);
        assert_eq!(r.next, Next::Jump(0x40_0005));
        assert_eq!(st.eip, 0x40_0005);
    }

    #[test]
    fn misaligned_stack_traffic_detected() {
        let mut st = CpuState::new(0);
        let mut mem = MapMem::default();
        st.set_reg(Reg32::Esp, 0x1001); // misaligned stack pointer
        let r = run_one(Insn::Push { src: Reg32::Eax }, &mut st, &mut mem);
        assert!(r.accesses.iter().next().unwrap().misaligned());
    }

    #[test]
    fn conditional_branches() {
        let mut st = CpuState::new(0x100);
        let mut mem = MapMem::default();
        st.flags.zf = true;
        let r = run_one(
            Insn::Jcc {
                cond: Cond::E,
                target: 0x200,
            },
            &mut st,
            &mut mem,
        );
        assert_eq!(r.next, Next::Jump(0x200));
        assert_eq!(st.eip, 0x200);
        let r = run_one(
            Insn::Jcc {
                cond: Cond::Ne,
                target: 0x300,
            },
            &mut st,
            &mut mem,
        );
        assert_eq!(r.next, Next::Fall);
        assert_eq!(st.eip, 0x204);
    }

    #[test]
    fn movq_is_8_bytes() {
        let mut st = CpuState::new(0);
        let mut mem = MapMem::default();
        mem.store(0x203, Width::W8, 0x1122_3344_5566_7788);
        let r = run_one(
            Insn::MovqLoad {
                dst: RegMm::Mm0,
                src: MemRef::abs(0x203),
            },
            &mut st,
            &mut mem,
        );
        assert_eq!(st.mm(RegMm::Mm0), 0x1122_3344_5566_7788);
        let a = r.accesses.iter().next().unwrap();
        assert_eq!(a.width, Width::W8);
        assert!(a.misaligned());
    }

    #[test]
    fn halt() {
        let mut st = CpuState::new(0x10);
        let mut mem = MapMem::default();
        let r = execute(&Insn::Hlt, 1, &mut st, &mut mem);
        assert_eq!(r.next, Next::Halt);
    }

    #[test]
    fn neg_flags_match_sub_from_zero() {
        let mut st = CpuState::new(0);
        let mut mem = MapMem::default();
        st.set_reg(Reg32::Eax, 5);
        run_one(Insn::Neg { dst: Reg32::Eax }, &mut st, &mut mem);
        assert_eq!(st.reg(Reg32::Eax), (-5i32) as u32);
        assert!(st.flags.cf, "CF set for nonzero operand");
        assert!(st.flags.sf);
        st.set_reg(Reg32::Ebx, 0);
        run_one(Insn::Neg { dst: Reg32::Ebx }, &mut st, &mut mem);
        assert!(!st.flags.cf, "CF clear for zero operand");
        assert!(st.flags.zf);
        // neg of i32::MIN overflows.
        st.set_reg(Reg32::Ecx, i32::MIN as u32);
        run_one(Insn::Neg { dst: Reg32::Ecx }, &mut st, &mut mem);
        assert_eq!(st.reg(Reg32::Ecx), i32::MIN as u32);
        assert!(st.flags.of);
    }

    #[test]
    fn not_preserves_flags() {
        let mut st = CpuState::new(0);
        let mut mem = MapMem::default();
        st.flags = Flags {
            zf: true,
            sf: true,
            cf: true,
            of: true,
        };
        st.set_reg(Reg32::Eax, 0x00FF_00FF);
        run_one(Insn::Not { dst: Reg32::Eax }, &mut st, &mut mem);
        assert_eq!(st.reg(Reg32::Eax), 0xFF00_FF00);
        assert_eq!(
            st.flags,
            Flags {
                zf: true,
                sf: true,
                cf: true,
                of: true
            }
        );
    }

    #[test]
    fn xchg_swaps_without_flags() {
        let mut st = CpuState::new(0);
        let mut mem = MapMem::default();
        st.set_reg(Reg32::Eax, 1);
        st.set_reg(Reg32::Ebx, 2);
        st.flags.zf = true;
        run_one(
            Insn::Xchg {
                a: Reg32::Eax,
                b: Reg32::Ebx,
            },
            &mut st,
            &mut mem,
        );
        assert_eq!((st.reg(Reg32::Eax), st.reg(Reg32::Ebx)), (2, 1));
        assert!(st.flags.zf);
        // Self-exchange is the identity.
        run_one(
            Insn::Xchg {
                a: Reg32::Eax,
                b: Reg32::Eax,
            },
            &mut st,
            &mut mem,
        );
        assert_eq!(st.reg(Reg32::Eax), 2);
    }

    #[test]
    fn setcc_writes_only_the_low_byte() {
        let mut st = CpuState::new(0);
        let mut mem = MapMem::default();
        st.set_reg(Reg32::Eax, 0xAABB_CCDDu32 as i32 as u32);
        st.flags.zf = true;
        run_one(
            Insn::Setcc {
                cond: Cond::E,
                dst: Reg32::Eax,
            },
            &mut st,
            &mut mem,
        );
        assert_eq!(st.reg(Reg32::Eax), 0xAABB_CC01);
        run_one(
            Insn::Setcc {
                cond: Cond::Ne,
                dst: Reg32::Eax,
            },
            &mut st,
            &mut mem,
        );
        assert_eq!(st.reg(Reg32::Eax), 0xAABB_CC00);
    }

    #[test]
    fn cmov_moves_conditionally() {
        let mut st = CpuState::new(0);
        let mut mem = MapMem::default();
        st.set_reg(Reg32::Eax, 1);
        st.set_reg(Reg32::Ebx, 99);
        st.flags.zf = false;
        run_one(
            Insn::Cmovcc {
                cond: Cond::E,
                dst: Reg32::Eax,
                src: Reg32::Ebx,
            },
            &mut st,
            &mut mem,
        );
        assert_eq!(st.reg(Reg32::Eax), 1, "condition false: no move");
        st.flags.zf = true;
        run_one(
            Insn::Cmovcc {
                cond: Cond::E,
                dst: Reg32::Eax,
                src: Reg32::Ebx,
            },
            &mut st,
            &mut mem,
        );
        assert_eq!(st.reg(Reg32::Eax), 99);
    }

    #[test]
    fn rep_movsd_iterates_in_place() {
        let mut st = CpuState::new(0x100);
        let mut mem = MapMem::default();
        mem.store(0x1001, Width::W4, 0xAAAA_AAAA);
        mem.store(0x1005, Width::W4, 0xBBBB_BBBB);
        st.set_reg(Reg32::Esi, 0x1001); // misaligned source
        st.set_reg(Reg32::Edi, 0x2000);
        st.set_reg(Reg32::Ecx, 2);
        // First iteration repeats at the same eip.
        let r = execute(&Insn::RepMovsd, 2, &mut st, &mut mem);
        assert_eq!(r.next, Next::Jump(0x100));
        assert_eq!(st.eip, 0x100);
        assert_eq!(st.reg(Reg32::Ecx), 1);
        assert!(r.accesses.iter().next().unwrap().misaligned());
        // Second (final) iteration falls through.
        let r = execute(&Insn::RepMovsd, 2, &mut st, &mut mem);
        assert_eq!(r.next, Next::Fall);
        assert_eq!(st.eip, 0x102);
        assert_eq!(st.reg(Reg32::Ecx), 0);
        assert_eq!(mem.load(0x2000, Width::W4), 0xAAAA_AAAA);
        assert_eq!(mem.load(0x2004, Width::W4), 0xBBBB_BBBB);
        // With ecx = 0 it is a no-op.
        let r = execute(&Insn::RepMovsd, 2, &mut st, &mut mem);
        assert_eq!(r.next, Next::Fall);
        assert!(r.accesses.is_empty());
    }
}
