//! The instruction model for the x86 subset.

use crate::cond::Cond;
use crate::reg::{Reg32, RegMm};
use std::fmt;

/// Access width of a memory operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Width {
    /// 1 byte. Byte accesses can never be misaligned.
    W1,
    /// 2 bytes (word).
    W2,
    /// 4 bytes (longword / doubleword).
    W4,
    /// 8 bytes (quadword, via MMX `movq`).
    W8,
}

impl Width {
    /// Width in bytes.
    #[inline]
    pub fn bytes(self) -> u32 {
        match self {
            Width::W1 => 1,
            Width::W2 => 2,
            Width::W4 => 4,
            Width::W8 => 8,
        }
    }

    /// Whether an access of this width at `addr` is misaligned on a machine
    /// with natural-boundary alignment restrictions.
    #[inline]
    pub fn misaligned(self, addr: u32) -> bool {
        addr & (self.bytes() - 1) != 0
    }
}

impl fmt::Display for Width {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.bytes())
    }
}

/// Extension applied by a narrow load when writing a 32-bit destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ext {
    /// Zero-extension (`movzx`).
    Zero,
    /// Sign-extension (`movsx`).
    Sign,
}

/// Index scale factor of a memory operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Scale {
    /// `index * 1`
    S1 = 0,
    /// `index * 2`
    S2 = 1,
    /// `index * 4`
    S4 = 2,
    /// `index * 8`
    S8 = 3,
}

impl Scale {
    /// Multiplier value (1, 2, 4 or 8).
    #[inline]
    pub fn factor(self) -> u32 {
        1 << (self as u8)
    }

    /// The two-bit SIB encoding of this scale.
    #[inline]
    pub fn bits(self) -> u8 {
        self as u8
    }

    /// Scale from SIB bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits >= 4`.
    pub fn from_bits(bits: u8) -> Scale {
        match bits {
            0 => Scale::S1,
            1 => Scale::S2,
            2 => Scale::S4,
            3 => Scale::S8,
            _ => panic!("scale bits out of range: {bits}"),
        }
    }
}

/// A memory operand: `disp(base, index, scale)`.
///
/// Any combination of base and index may be absent; a bare displacement is an
/// absolute address. `%esp` cannot be an index register (SIB restriction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRef {
    /// Base register, if any.
    pub base: Option<Reg32>,
    /// Index register and scale, if any.
    pub index: Option<(Reg32, Scale)>,
    /// Constant displacement.
    pub disp: i32,
}

impl MemRef {
    /// Absolute-address operand: `[disp]`.
    pub fn abs(disp: u32) -> MemRef {
        MemRef {
            base: None,
            index: None,
            disp: disp as i32,
        }
    }

    /// Base-plus-displacement operand: `[base + disp]`.
    pub fn base_disp(base: Reg32, disp: i32) -> MemRef {
        MemRef {
            base: Some(base),
            index: None,
            disp,
        }
    }

    /// Fully general operand: `[base + index*scale + disp]`.
    pub fn base_index(base: Reg32, index: Reg32, scale: Scale, disp: i32) -> MemRef {
        MemRef {
            base: Some(base),
            index: Some((index, scale)),
            disp,
        }
    }

    /// Index-only operand: `[index*scale + disp]`.
    pub fn index_disp(index: Reg32, scale: Scale, disp: i32) -> MemRef {
        MemRef {
            base: None,
            index: Some((index, scale)),
            disp,
        }
    }

    /// Whether the operand is valid: `%esp` may not be used as an index.
    pub fn is_valid(&self) -> bool {
        !matches!(self.index, Some((Reg32::Esp, _)))
    }

    /// Computes the effective address given register values (wrapping
    /// 32-bit arithmetic, as on hardware).
    #[inline]
    pub fn effective(&self, regs: &[u32; 8]) -> u32 {
        let mut ea = self.disp as u32;
        if let Some(b) = self.base {
            ea = ea.wrapping_add(regs[b.index()]);
        }
        if let Some((i, s)) = self.index {
            ea = ea.wrapping_add(regs[i.index()].wrapping_mul(s.factor()));
        }
        ea
    }
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}(", self.disp)?;
        if let Some(b) = self.base {
            write!(f, "{b}")?;
        }
        if let Some((i, s)) = self.index {
            write!(f, ",{i},{}", s.factor())?;
        }
        write!(f, ")")
    }
}

/// Two-operand ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Addition; sets ZF/SF/CF/OF.
    Add,
    /// Subtraction; sets ZF/SF/CF/OF.
    Sub,
    /// Bitwise AND; clears CF/OF.
    And,
    /// Bitwise OR; clears CF/OF.
    Or,
    /// Bitwise XOR; clears CF/OF.
    Xor,
    /// Compare: subtraction without writeback.
    Cmp,
    /// Test: AND without writeback.
    Test,
}

impl AluOp {
    /// All ALU operations.
    pub const ALL: [AluOp; 7] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Cmp,
        AluOp::Test,
    ];

    /// Whether the operation writes its destination (false for `cmp`/`test`).
    #[inline]
    pub fn writes_back(self) -> bool {
        !matches!(self, AluOp::Cmp | AluOp::Test)
    }

    /// Mnemonic, e.g. `"add"`.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Cmp => "cmp",
            AluOp::Test => "test",
        }
    }
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Shift operations (immediate count only in the subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShiftOp {
    /// Logical left shift.
    Shl,
    /// Logical right shift.
    Shr,
    /// Arithmetic right shift.
    Sar,
}

impl ShiftOp {
    /// ModRM `/digit` used by the `C1` opcode group.
    #[inline]
    pub fn digit(self) -> u8 {
        match self {
            ShiftOp::Shl => 4,
            ShiftOp::Shr => 5,
            ShiftOp::Sar => 7,
        }
    }

    /// Mnemonic, e.g. `"shl"`.
    pub fn mnemonic(self) -> &'static str {
        match self {
            ShiftOp::Shl => "shl",
            ShiftOp::Shr => "shr",
            ShiftOp::Sar => "sar",
        }
    }
}

impl fmt::Display for ShiftOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// One decoded instruction of the x86 subset.
///
/// Branch targets are stored as **absolute** guest addresses; the decoder
/// resolves relative displacements against the instruction's address, and
/// the encoder converts back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Insn {
    /// `mov r32, imm32`
    MovRI {
        /// Destination register.
        dst: Reg32,
        /// Immediate value.
        imm: i32,
    },
    /// `mov r32, r32`
    MovRR {
        /// Destination register.
        dst: Reg32,
        /// Source register.
        src: Reg32,
    },
    /// Memory load into a 32-bit register: `mov`/`movzx`/`movsx`.
    ///
    /// `ext` selects zero- or sign-extension for 1- and 2-byte widths and is
    /// ignored for [`Width::W4`]. [`Width::W8`] is expressed via
    /// [`Insn::MovqLoad`] instead.
    Load {
        /// Access width (1, 2 or 4 bytes).
        width: Width,
        /// Zero- or sign-extension for narrow widths.
        ext: Ext,
        /// Destination register.
        dst: Reg32,
        /// Source memory operand.
        src: MemRef,
    },
    /// Memory store from a 32-bit register (low `width` bytes).
    ///
    /// For [`Width::W1`] the source must have an addressable low byte
    /// (`%eax`/`%ecx`/`%edx`/`%ebx`).
    Store {
        /// Access width (1, 2 or 4 bytes).
        width: Width,
        /// Source register.
        src: Reg32,
        /// Destination memory operand.
        dst: MemRef,
    },
    /// 8-byte MMX load: `movq mm, m64`.
    MovqLoad {
        /// Destination MMX register.
        dst: RegMm,
        /// Source memory operand.
        src: MemRef,
    },
    /// 8-byte MMX store: `movq m64, mm`.
    MovqStore {
        /// Source MMX register.
        src: RegMm,
        /// Destination memory operand.
        dst: MemRef,
    },
    /// `lea r32, m` — address computation, no memory access.
    Lea {
        /// Destination register.
        dst: Reg32,
        /// Address expression.
        src: MemRef,
    },
    /// ALU with register destination and register source.
    AluRR {
        /// Operation.
        op: AluOp,
        /// Destination (and left operand).
        dst: Reg32,
        /// Source (right operand).
        src: Reg32,
    },
    /// ALU with register destination and immediate source.
    AluRI {
        /// Operation.
        op: AluOp,
        /// Destination (and left operand).
        dst: Reg32,
        /// Immediate right operand.
        imm: i32,
    },
    /// ALU with register destination and 4-byte memory source:
    /// `op r32, m32` (one load).
    AluRM {
        /// Operation.
        op: AluOp,
        /// Destination (and left operand).
        dst: Reg32,
        /// Memory right operand.
        src: MemRef,
    },
    /// ALU with 4-byte memory destination and register source:
    /// `op m32, r32` (a load and, unless `cmp`/`test`, a store).
    AluMR {
        /// Operation.
        op: AluOp,
        /// Memory destination (and left operand).
        dst: MemRef,
        /// Register right operand.
        src: Reg32,
    },
    /// Shift by an immediate count.
    Shift {
        /// Operation.
        op: ShiftOp,
        /// Destination register.
        dst: Reg32,
        /// Shift count; only the low 5 bits are used, as on hardware.
        amount: u8,
    },
    /// `imul r32, r32` — 32x32→32 signed multiply (flags left cleared; see
    /// crate semantics notes).
    ImulRR {
        /// Destination (and left operand).
        dst: Reg32,
        /// Source (right operand).
        src: Reg32,
    },
    /// `imul r32, m32` — multiply with 4-byte memory source.
    ImulRM {
        /// Destination (and left operand).
        dst: Reg32,
        /// Memory right operand.
        src: MemRef,
    },
    /// `push r32` — 4-byte store at `%esp - 4`.
    Push {
        /// Source register.
        src: Reg32,
    },
    /// `pop r32` — 4-byte load at `%esp`.
    Pop {
        /// Destination register.
        dst: Reg32,
    },
    /// `neg r32` — two's-complement negation; flags as `sub 0, r32`
    /// (CF set iff the operand was nonzero).
    Neg {
        /// Register negated in place.
        dst: Reg32,
    },
    /// `not r32` — bitwise complement; no flags affected.
    Not {
        /// Register complemented in place.
        dst: Reg32,
    },
    /// `xchg r32, r32` — register swap; no flags affected.
    Xchg {
        /// First register.
        a: Reg32,
        /// Second register.
        b: Reg32,
    },
    /// `setcc r8` — writes 1 or 0 to the low byte of `dst` according to a
    /// condition; upper bytes preserved, flags unchanged. The destination
    /// must have an addressable low byte (`%eax..%ebx`).
    Setcc {
        /// Condition evaluated.
        cond: Cond,
        /// Destination register (low byte written).
        dst: Reg32,
    },
    /// `cmovcc r32, r32` — conditional register move; flags unchanged.
    Cmovcc {
        /// Condition evaluated.
        cond: Cond,
        /// Destination register.
        dst: Reg32,
        /// Source register.
        src: Reg32,
    },
    /// `rep movsd` — copy `%ecx` doublewords from `[%esi]` to `[%edi]`
    /// (forward direction; the subset has no direction flag). Architecturally
    /// an iteration at a time: each execution copies one doubleword,
    /// advances `%esi`/`%edi` by 4, decrements `%ecx`, and repeats at the
    /// same address until `%ecx` is zero — the glibc `memcpy` inner loop
    /// that the paper identifies as a major shared-library MDA source.
    RepMovsd,
    /// Conditional branch to an absolute guest address.
    Jcc {
        /// Branch condition.
        cond: Cond,
        /// Absolute target address.
        target: u32,
    },
    /// Unconditional branch to an absolute guest address.
    Jmp {
        /// Absolute target address.
        target: u32,
    },
    /// Call: pushes the return address then branches.
    Call {
        /// Absolute target address.
        target: u32,
    },
    /// Return: pops the return address and branches to it.
    Ret,
    /// No operation.
    Nop,
    /// Halt: terminates the guest program (used as the exit convention).
    Hlt,
}

impl Insn {
    /// Whether this instruction ends a basic block (control transfer or
    /// halt).
    pub fn ends_block(&self) -> bool {
        matches!(
            self,
            Insn::Jcc { .. } | Insn::Jmp { .. } | Insn::Call { .. } | Insn::Ret | Insn::Hlt
        )
    }

    /// Memory accesses this instruction performs, as `(width, is_store)`
    /// pairs in execution order, without computing addresses.
    ///
    /// Read-modify-write forms report a load then a store. `push`, `pop`,
    /// `call` and `ret` report their implicit stack accesses.
    pub fn access_shape(&self) -> AccessShape {
        match self {
            Insn::Load { width, .. } => AccessShape::one(*width, false),
            Insn::Store { width, .. } => AccessShape::one(*width, true),
            Insn::MovqLoad { .. } => AccessShape::one(Width::W8, false),
            Insn::MovqStore { .. } => AccessShape::one(Width::W8, true),
            Insn::AluRM { .. } | Insn::ImulRM { .. } => AccessShape::one(Width::W4, false),
            Insn::AluMR { op, .. } => {
                if op.writes_back() {
                    AccessShape::two(Width::W4, false, Width::W4, true)
                } else {
                    AccessShape::one(Width::W4, false)
                }
            }
            Insn::RepMovsd => AccessShape::two(Width::W4, false, Width::W4, true),
            Insn::Push { .. } | Insn::Call { .. } => AccessShape::one(Width::W4, true),
            Insn::Pop { .. } | Insn::Ret => AccessShape::one(Width::W4, false),
            _ => AccessShape::none(),
        }
    }

    /// Whether this instruction references memory at all.
    pub fn touches_memory(&self) -> bool {
        self.access_shape().len > 0
    }
}

/// Static shape of an instruction's memory traffic: up to two accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessShape {
    /// `(width, is_store)` for each access, valid up to `len`.
    pub acc: [(Width, bool); 2],
    /// Number of valid entries (0, 1 or 2).
    pub len: u8,
}

impl AccessShape {
    fn none() -> AccessShape {
        AccessShape {
            acc: [(Width::W1, false); 2],
            len: 0,
        }
    }

    fn one(w: Width, st: bool) -> AccessShape {
        AccessShape {
            acc: [(w, st), (Width::W1, false)],
            len: 1,
        }
    }

    fn two(w0: Width, s0: bool, w1: Width, s1: bool) -> AccessShape {
        AccessShape {
            acc: [(w0, s0), (w1, s1)],
            len: 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_misalignment() {
        assert!(!Width::W1.misaligned(0x1001));
        assert!(Width::W2.misaligned(0x1001));
        assert!(!Width::W2.misaligned(0x1002));
        assert!(Width::W4.misaligned(0x1002));
        assert!(!Width::W4.misaligned(0x1004));
        assert!(Width::W8.misaligned(0x1004));
        assert!(!Width::W8.misaligned(0x1008));
    }

    #[test]
    fn memref_effective_address() {
        let mut regs = [0u32; 8];
        regs[Reg32::Ebx.index()] = 0x1000;
        regs[Reg32::Esi.index()] = 3;
        let m = MemRef::base_index(Reg32::Ebx, Reg32::Esi, Scale::S4, 2);
        assert_eq!(m.effective(&regs), 0x1000 + 12 + 2);
        let a = MemRef::abs(0xdead_0000);
        assert_eq!(a.effective(&regs), 0xdead_0000);
    }

    #[test]
    fn esp_index_invalid() {
        assert!(!MemRef::index_disp(Reg32::Esp, Scale::S1, 0).is_valid());
        assert!(MemRef::base_disp(Reg32::Esp, 0).is_valid());
    }

    #[test]
    fn access_shapes() {
        let rmw = Insn::AluMR {
            op: AluOp::Add,
            dst: MemRef::abs(0x100),
            src: Reg32::Eax,
        };
        let shape = rmw.access_shape();
        assert_eq!(shape.len, 2);
        assert_eq!(shape.acc[0], (Width::W4, false));
        assert_eq!(shape.acc[1], (Width::W4, true));

        let cmp = Insn::AluMR {
            op: AluOp::Cmp,
            dst: MemRef::abs(0x100),
            src: Reg32::Eax,
        };
        assert_eq!(cmp.access_shape().len, 1);

        assert!(!Insn::Nop.touches_memory());
        assert!(Insn::Ret.touches_memory());
        assert!(Insn::Push { src: Reg32::Eax }.touches_memory());
    }

    #[test]
    fn block_enders() {
        assert!(Insn::Hlt.ends_block());
        assert!(Insn::Ret.ends_block());
        assert!(Insn::Jmp { target: 0 }.ends_block());
        assert!(!Insn::Nop.ends_block());
        assert!(!Insn::Push { src: Reg32::Eax }.ends_block());
    }

    #[test]
    fn scale_factors() {
        assert_eq!(Scale::S1.factor(), 1);
        assert_eq!(Scale::S8.factor(), 8);
        for bits in 0..4u8 {
            assert_eq!(Scale::from_bits(bits).bits(), bits);
        }
    }
}
