//! Machine-code encoder for the x86 subset.
//!
//! Encodings are the canonical forms a real assembler would pick (smallest
//! displacement, `89 /r` for register-register moves, …) so that
//! [`decode`](crate::decode::decode) ∘ [`encode`] is the identity on
//! [`Insn`] values.

use crate::insn::{AluOp, Ext, Insn, MemRef, Width};
use crate::reg::Reg32;
use std::fmt;

/// Errors produced when an [`Insn`] has no encoding in the subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodeError {
    /// The memory operand uses `%esp` as an index register.
    InvalidMemRef,
    /// A 1-byte store from a register without an addressable low byte.
    ByteStoreNeedsLowByte(Reg32),
    /// `test r32, m32` has no reg-destination encoding; use the
    /// memory-destination form ([`Insn::AluMR`]) instead.
    TestHasNoRmForm,
    /// An 8-bit-register or other form outside the subset.
    Unsupported(&'static str),
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::InvalidMemRef => write!(f, "%esp cannot be an index register"),
            EncodeError::ByteStoreNeedsLowByte(r) => {
                write!(f, "1-byte store requires %eax..%ebx source, got {r}")
            }
            EncodeError::TestHasNoRmForm => {
                write!(
                    f,
                    "test with memory source must use the memory-destination form"
                )
            }
            EncodeError::Unsupported(what) => write!(f, "unsupported encoding: {what}"),
        }
    }
}

impl std::error::Error for EncodeError {}

fn modrm(mode: u8, reg: u8, rm: u8) -> u8 {
    (mode << 6) | (reg << 3) | rm
}

/// Emits a ModRM (+ optional SIB + displacement) sequence addressing `mem`,
/// with `reg_field` in the ModRM reg slot.
fn emit_mem(reg_field: u8, mem: &MemRef, out: &mut Vec<u8>) -> Result<(), EncodeError> {
    if !mem.is_valid() {
        return Err(EncodeError::InvalidMemRef);
    }
    let disp = mem.disp;
    let disp_fits_i8 = i8::try_from(disp).is_ok();

    match (mem.base, mem.index) {
        (None, None) => {
            // Absolute: mod=00 rm=101 disp32.
            out.push(modrm(0, reg_field, 0b101));
            out.extend_from_slice(&disp.to_le_bytes());
        }
        (Some(base), None) if base != Reg32::Esp => {
            let rm = base.index() as u8;
            if disp == 0 && base != Reg32::Ebp {
                out.push(modrm(0, reg_field, rm));
            } else if disp_fits_i8 {
                out.push(modrm(1, reg_field, rm));
                out.push(disp as i8 as u8);
            } else {
                out.push(modrm(2, reg_field, rm));
                out.extend_from_slice(&disp.to_le_bytes());
            }
        }
        (base, index) => {
            // SIB required: %esp base, or any indexed form.
            let (scale_bits, index_bits) = match index {
                Some((idx, scale)) => (scale.bits(), idx.index() as u8),
                None => (0, 0b100),
            };
            match base {
                None => {
                    // No base: mod=00, SIB base=101, disp32.
                    out.push(modrm(0, reg_field, 0b100));
                    out.push((scale_bits << 6) | (index_bits << 3) | 0b101);
                    out.extend_from_slice(&disp.to_le_bytes());
                }
                Some(b) => {
                    let base_bits = b.index() as u8;
                    if disp == 0 && b != Reg32::Ebp {
                        out.push(modrm(0, reg_field, 0b100));
                        out.push((scale_bits << 6) | (index_bits << 3) | base_bits);
                    } else if disp_fits_i8 {
                        out.push(modrm(1, reg_field, 0b100));
                        out.push((scale_bits << 6) | (index_bits << 3) | base_bits);
                        out.push(disp as i8 as u8);
                    } else {
                        out.push(modrm(2, reg_field, 0b100));
                        out.push((scale_bits << 6) | (index_bits << 3) | base_bits);
                        out.extend_from_slice(&disp.to_le_bytes());
                    }
                }
            }
        }
    }
    Ok(())
}

fn alu_mr_opcode(op: AluOp) -> u8 {
    // `op r/m32, r32` opcode family.
    match op {
        AluOp::Add => 0x01,
        AluOp::Or => 0x09,
        AluOp::And => 0x21,
        AluOp::Sub => 0x29,
        AluOp::Xor => 0x31,
        AluOp::Cmp => 0x39,
        AluOp::Test => 0x85,
    }
}

fn alu_rm_opcode(op: AluOp) -> Option<u8> {
    // `op r32, r/m32` opcode family; `test` has none.
    Some(match op {
        AluOp::Add => 0x03,
        AluOp::Or => 0x0B,
        AluOp::And => 0x23,
        AluOp::Sub => 0x2B,
        AluOp::Xor => 0x33,
        AluOp::Cmp => 0x3B,
        AluOp::Test => return None,
    })
}

fn alu_imm_digit(op: AluOp) -> Option<u8> {
    Some(match op {
        AluOp::Add => 0,
        AluOp::Or => 1,
        AluOp::And => 4,
        AluOp::Sub => 5,
        AluOp::Xor => 6,
        AluOp::Cmp => 7,
        AluOp::Test => return None, // encoded as F7 /0
    })
}

/// Length in bytes of the encoding of a control-transfer instruction, needed
/// for relative-displacement computation.
fn branch_len(insn: &Insn) -> u32 {
    match insn {
        Insn::Jcc { .. } => 6,
        Insn::Jmp { .. } | Insn::Call { .. } => 5,
        _ => unreachable!("not a relative branch"),
    }
}

/// Encodes `insn`, assumed to be located at guest address `addr`, appending
/// its bytes to `out`. Returns the encoded length.
///
/// # Errors
///
/// Returns an [`EncodeError`] for operand combinations outside the subset
/// (see the error variants).
pub fn encode(insn: &Insn, addr: u32, out: &mut Vec<u8>) -> Result<u32, EncodeError> {
    let start = out.len();
    match insn {
        Insn::MovRI { dst, imm } => {
            out.push(0xB8 + dst.index() as u8);
            out.extend_from_slice(&imm.to_le_bytes());
        }
        Insn::MovRR { dst, src } => {
            out.push(0x89);
            out.push(modrm(3, src.index() as u8, dst.index() as u8));
        }
        Insn::Load {
            width,
            ext,
            dst,
            src,
        } => match (width, ext) {
            (Width::W4, _) => {
                out.push(0x8B);
                emit_mem(dst.index() as u8, src, out)?;
            }
            (Width::W2, Ext::Zero) => {
                out.extend_from_slice(&[0x0F, 0xB7]);
                emit_mem(dst.index() as u8, src, out)?;
            }
            (Width::W2, Ext::Sign) => {
                out.extend_from_slice(&[0x0F, 0xBF]);
                emit_mem(dst.index() as u8, src, out)?;
            }
            (Width::W1, Ext::Zero) => {
                out.extend_from_slice(&[0x0F, 0xB6]);
                emit_mem(dst.index() as u8, src, out)?;
            }
            (Width::W1, Ext::Sign) => {
                out.extend_from_slice(&[0x0F, 0xBE]);
                emit_mem(dst.index() as u8, src, out)?;
            }
            (Width::W8, _) => return Err(EncodeError::Unsupported("8-byte GPR load")),
        },
        Insn::Store { width, src, dst } => match width {
            Width::W4 => {
                out.push(0x89);
                emit_mem(src.index() as u8, dst, out)?;
            }
            Width::W2 => {
                out.push(0x66);
                out.push(0x89);
                emit_mem(src.index() as u8, dst, out)?;
            }
            Width::W1 => {
                if !src.has_low_byte() {
                    return Err(EncodeError::ByteStoreNeedsLowByte(*src));
                }
                out.push(0x88);
                emit_mem(src.index() as u8, dst, out)?;
            }
            Width::W8 => return Err(EncodeError::Unsupported("8-byte GPR store")),
        },
        Insn::MovqLoad { dst, src } => {
            out.extend_from_slice(&[0x0F, 0x6F]);
            emit_mem(dst.index() as u8, src, out)?;
        }
        Insn::MovqStore { src, dst } => {
            out.extend_from_slice(&[0x0F, 0x7F]);
            emit_mem(src.index() as u8, dst, out)?;
        }
        Insn::Lea { dst, src } => {
            out.push(0x8D);
            emit_mem(dst.index() as u8, src, out)?;
        }
        Insn::AluRR { op, dst, src } => {
            out.push(alu_mr_opcode(*op));
            out.push(modrm(3, src.index() as u8, dst.index() as u8));
        }
        Insn::AluRI { op, dst, imm } => match alu_imm_digit(*op) {
            Some(digit) => {
                out.push(0x81);
                out.push(modrm(3, digit, dst.index() as u8));
                out.extend_from_slice(&imm.to_le_bytes());
            }
            None => {
                // test r32, imm32
                out.push(0xF7);
                out.push(modrm(3, 0, dst.index() as u8));
                out.extend_from_slice(&imm.to_le_bytes());
            }
        },
        Insn::AluRM { op, dst, src } => {
            let opcode = alu_rm_opcode(*op).ok_or(EncodeError::TestHasNoRmForm)?;
            out.push(opcode);
            emit_mem(dst.index() as u8, src, out)?;
        }
        Insn::AluMR { op, dst, src } => {
            out.push(alu_mr_opcode(*op));
            emit_mem(src.index() as u8, dst, out)?;
        }
        Insn::Shift { op, dst, amount } => {
            out.push(0xC1);
            out.push(modrm(3, op.digit(), dst.index() as u8));
            out.push(*amount);
        }
        Insn::ImulRR { dst, src } => {
            out.extend_from_slice(&[0x0F, 0xAF]);
            out.push(modrm(3, dst.index() as u8, src.index() as u8));
        }
        Insn::ImulRM { dst, src } => {
            out.extend_from_slice(&[0x0F, 0xAF]);
            emit_mem(dst.index() as u8, src, out)?;
        }
        Insn::Setcc { cond, dst } => {
            if !dst.has_low_byte() {
                return Err(EncodeError::ByteStoreNeedsLowByte(*dst));
            }
            out.push(0x0F);
            out.push(0x90 + cond.code());
            out.push(modrm(3, 0, dst.index() as u8));
        }
        Insn::Cmovcc { cond, dst, src } => {
            out.push(0x0F);
            out.push(0x40 + cond.code());
            out.push(modrm(3, dst.index() as u8, src.index() as u8));
        }
        Insn::Neg { dst } => {
            out.push(0xF7);
            out.push(modrm(3, 3, dst.index() as u8));
        }
        Insn::Not { dst } => {
            out.push(0xF7);
            out.push(modrm(3, 2, dst.index() as u8));
        }
        Insn::Xchg { a, b } => {
            out.push(0x87);
            out.push(modrm(3, a.index() as u8, b.index() as u8));
        }
        Insn::Push { src } => out.push(0x50 + src.index() as u8),
        Insn::Pop { dst } => out.push(0x58 + dst.index() as u8),
        Insn::Jcc { cond, target } => {
            let rel = target.wrapping_sub(addr.wrapping_add(branch_len(insn)));
            out.push(0x0F);
            out.push(0x80 + cond.code());
            out.extend_from_slice(&rel.to_le_bytes());
        }
        Insn::Jmp { target } => {
            let rel = target.wrapping_sub(addr.wrapping_add(branch_len(insn)));
            out.push(0xE9);
            out.extend_from_slice(&rel.to_le_bytes());
        }
        Insn::Call { target } => {
            let rel = target.wrapping_sub(addr.wrapping_add(branch_len(insn)));
            out.push(0xE8);
            out.extend_from_slice(&rel.to_le_bytes());
        }
        Insn::RepMovsd => out.extend_from_slice(&[0xF3, 0xA5]),
        Insn::Ret => out.push(0xC3),
        Insn::Nop => out.push(0x90),
        Insn::Hlt => out.push(0xF4),
    }
    Ok((out.len() - start) as u32)
}

/// Convenience wrapper: encodes into a fresh vector.
///
/// # Errors
///
/// Same as [`encode`].
pub fn encode_to_vec(insn: &Insn, addr: u32) -> Result<Vec<u8>, EncodeError> {
    let mut v = Vec::with_capacity(8);
    encode(insn, addr, &mut v)?;
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cond::Cond;
    use crate::insn::Scale;
    use crate::reg::RegMm;

    fn enc(insn: Insn) -> Vec<u8> {
        encode_to_vec(&insn, 0x40_0000).expect("encodable")
    }

    #[test]
    fn mov_ri_is_b8_plus_r() {
        assert_eq!(
            enc(Insn::MovRI {
                dst: Reg32::Eax,
                imm: 0x12345678
            }),
            vec![0xB8, 0x78, 0x56, 0x34, 0x12]
        );
        assert_eq!(
            enc(Insn::MovRI {
                dst: Reg32::Edi,
                imm: -1
            })[0],
            0xBF
        );
    }

    #[test]
    fn mov_rr_uses_89() {
        // mov %ebx, %eax  (AT&T: src=%ebx? here dst=eax src=ebx) => 89 D8
        assert_eq!(
            enc(Insn::MovRR {
                dst: Reg32::Eax,
                src: Reg32::Ebx
            }),
            vec![0x89, 0xD8]
        );
    }

    #[test]
    fn load_disp8_form() {
        // mov 0x2(%ebx), %eax => 8B 43 02 (the paper's Figure 2 example)
        assert_eq!(
            enc(Insn::Load {
                width: Width::W4,
                ext: Ext::Zero,
                dst: Reg32::Eax,
                src: MemRef::base_disp(Reg32::Ebx, 2),
            }),
            vec![0x8B, 0x43, 0x02]
        );
    }

    #[test]
    fn absolute_address_form() {
        // mov 0x1000, %ecx => 8B 0D 00 10 00 00
        assert_eq!(
            enc(Insn::Load {
                width: Width::W4,
                ext: Ext::Zero,
                dst: Reg32::Ecx,
                src: MemRef::abs(0x1000),
            }),
            vec![0x8B, 0x0D, 0x00, 0x10, 0x00, 0x00]
        );
    }

    #[test]
    fn sib_form_with_index() {
        // mov (%ebx,%esi,4), %eax => 8B 04 B3
        assert_eq!(
            enc(Insn::Load {
                width: Width::W4,
                ext: Ext::Zero,
                dst: Reg32::Eax,
                src: MemRef::base_index(Reg32::Ebx, Reg32::Esi, Scale::S4, 0),
            }),
            vec![0x8B, 0x04, 0xB3]
        );
    }

    #[test]
    fn esp_base_needs_sib() {
        // mov 4(%esp), %eax => 8B 44 24 04
        assert_eq!(
            enc(Insn::Load {
                width: Width::W4,
                ext: Ext::Zero,
                dst: Reg32::Eax,
                src: MemRef::base_disp(Reg32::Esp, 4),
            }),
            vec![0x8B, 0x44, 0x24, 0x04]
        );
    }

    #[test]
    fn ebp_base_zero_disp_uses_disp8() {
        // mov (%ebp), %eax => 8B 45 00
        assert_eq!(
            enc(Insn::Load {
                width: Width::W4,
                ext: Ext::Zero,
                dst: Reg32::Eax,
                src: MemRef::base_disp(Reg32::Ebp, 0),
            }),
            vec![0x8B, 0x45, 0x00]
        );
    }

    #[test]
    fn store_widths() {
        assert_eq!(
            enc(Insn::Store {
                width: Width::W2,
                src: Reg32::Ecx,
                dst: MemRef::abs(0x10)
            })[0],
            0x66
        );
        assert_eq!(
            enc(Insn::Store {
                width: Width::W1,
                src: Reg32::Edx,
                dst: MemRef::abs(0x10)
            })[0],
            0x88
        );
    }

    #[test]
    fn byte_store_rejects_high_regs() {
        let err = encode_to_vec(
            &Insn::Store {
                width: Width::W1,
                src: Reg32::Esi,
                dst: MemRef::abs(0x10),
            },
            0,
        )
        .unwrap_err();
        assert_eq!(err, EncodeError::ByteStoreNeedsLowByte(Reg32::Esi));
    }

    #[test]
    fn esp_index_rejected() {
        let err = encode_to_vec(
            &Insn::Lea {
                dst: Reg32::Eax,
                src: MemRef::index_disp(Reg32::Esp, Scale::S2, 0),
            },
            0,
        )
        .unwrap_err();
        assert_eq!(err, EncodeError::InvalidMemRef);
    }

    #[test]
    fn test_rm_form_rejected() {
        let err = encode_to_vec(
            &Insn::AluRM {
                op: AluOp::Test,
                dst: Reg32::Eax,
                src: MemRef::abs(0),
            },
            0,
        )
        .unwrap_err();
        assert_eq!(err, EncodeError::TestHasNoRmForm);
    }

    #[test]
    fn branch_relative_displacement() {
        // jmp to self+5 => rel 0
        assert_eq!(enc(Insn::Jmp { target: 0x40_0005 }), vec![0xE9, 0, 0, 0, 0]);
        // jcc backward
        let b = enc(Insn::Jcc {
            cond: Cond::Ne,
            target: 0x40_0000,
        });
        assert_eq!(&b[..2], &[0x0F, 0x85]);
        assert_eq!(i32::from_le_bytes(b[2..6].try_into().unwrap()), -6);
    }

    #[test]
    fn movq_forms() {
        assert_eq!(
            enc(Insn::MovqLoad {
                dst: RegMm::Mm1,
                src: MemRef::abs(0x20)
            })[..2],
            [0x0F, 0x6F]
        );
        assert_eq!(
            enc(Insn::MovqStore {
                src: RegMm::Mm1,
                dst: MemRef::abs(0x20)
            })[..2],
            [0x0F, 0x7F]
        );
    }

    #[test]
    fn single_byte_insns() {
        assert_eq!(enc(Insn::Push { src: Reg32::Ebp }), vec![0x55]);
        assert_eq!(enc(Insn::Pop { dst: Reg32::Ebp }), vec![0x5D]);
        assert_eq!(enc(Insn::Ret), vec![0xC3]);
        assert_eq!(enc(Insn::Nop), vec![0x90]);
        assert_eq!(enc(Insn::Hlt), vec![0xF4]);
    }
}
