//! Architectural guest state: registers, flags and instruction pointer.

use crate::reg::{Reg32, RegMm};
use std::fmt;

/// The flags subset tracked by the interpreter and reproduced by translated
/// code: zero, sign, carry and overflow.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Flags {
    /// Zero flag.
    pub zf: bool,
    /// Sign flag.
    pub sf: bool,
    /// Carry flag.
    pub cf: bool,
    /// Overflow flag.
    pub of: bool,
}

impl fmt::Display for Flags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}{}{}{}]",
            if self.zf { 'Z' } else { '-' },
            if self.sf { 'S' } else { '-' },
            if self.cf { 'C' } else { '-' },
            if self.of { 'O' } else { '-' },
        )
    }
}

/// Complete guest-visible CPU state for the x86 subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CpuState {
    /// The eight GPRs, indexed by [`Reg32::index`].
    pub regs: [u32; 8],
    /// The eight MMX registers, indexed by [`RegMm::index`].
    pub mm: [u64; 8],
    /// Instruction pointer.
    pub eip: u32,
    /// Condition flags.
    pub flags: Flags,
}

impl CpuState {
    /// Fresh state with all registers zero and execution starting at
    /// `entry`.
    pub fn new(entry: u32) -> CpuState {
        CpuState {
            regs: [0; 8],
            mm: [0; 8],
            eip: entry,
            flags: Flags::default(),
        }
    }

    /// Reads a GPR.
    #[inline]
    pub fn reg(&self, r: Reg32) -> u32 {
        self.regs[r.index()]
    }

    /// Writes a GPR.
    #[inline]
    pub fn set_reg(&mut self, r: Reg32, v: u32) {
        self.regs[r.index()] = v;
    }

    /// Reads an MMX register.
    #[inline]
    pub fn mm(&self, r: RegMm) -> u64 {
        self.mm[r.index()]
    }

    /// Writes an MMX register.
    #[inline]
    pub fn set_mm(&mut self, r: RegMm, v: u64) {
        self.mm[r.index()] = v;
    }
}

impl Default for CpuState {
    fn default() -> CpuState {
        CpuState::new(0)
    }
}

impl fmt::Display for CpuState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "eip={:#010x} flags={}", self.eip, self.flags)?;
        for r in Reg32::ALL {
            write!(f, "{}={:#010x} ", r, self.reg(r))?;
        }
        writeln!(f)?;
        for r in RegMm::ALL {
            if self.mm(r) != 0 {
                write!(f, "{}={:#018x} ", r, self.mm(r))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_state() {
        let s = CpuState::new(0x40_0000);
        assert_eq!(s.eip, 0x40_0000);
        assert!(s.regs.iter().all(|&r| r == 0));
        assert_eq!(s.flags, Flags::default());
    }

    #[test]
    fn reg_accessors() {
        let mut s = CpuState::default();
        s.set_reg(Reg32::Esi, 77);
        assert_eq!(s.reg(Reg32::Esi), 77);
        s.set_mm(RegMm::Mm5, 0xdead_beef_0bad_f00d);
        assert_eq!(s.mm(RegMm::Mm5), 0xdead_beef_0bad_f00d);
    }

    #[test]
    fn display_is_nonempty() {
        let s = CpuState::default();
        assert!(!s.to_string().is_empty());
        assert_eq!(Flags::default().to_string(), "[----]");
    }
}
