//! General-purpose and MMX register names for the x86 subset.

use std::fmt;

/// The eight 32-bit general-purpose registers, in hardware encoding order.
///
/// The discriminant of each variant is its x86 register number as used in
/// ModRM/SIB bytes and in `B8+r`-style opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Reg32 {
    /// Accumulator (`%eax`).
    Eax = 0,
    /// Counter (`%ecx`).
    Ecx = 1,
    /// Data (`%edx`).
    Edx = 2,
    /// Base (`%ebx`).
    Ebx = 3,
    /// Stack pointer (`%esp`).
    Esp = 4,
    /// Frame pointer (`%ebp`).
    Ebp = 5,
    /// Source index (`%esi`).
    Esi = 6,
    /// Destination index (`%edi`).
    Edi = 7,
}

impl Reg32 {
    /// All registers in hardware encoding order.
    pub const ALL: [Reg32; 8] = [
        Reg32::Eax,
        Reg32::Ecx,
        Reg32::Edx,
        Reg32::Ebx,
        Reg32::Esp,
        Reg32::Ebp,
        Reg32::Esi,
        Reg32::Edi,
    ];

    /// Hardware register number (0..8) as used in instruction encodings.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Register for a hardware number.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 8`.
    #[inline]
    pub fn from_index(idx: usize) -> Reg32 {
        Self::ALL[idx]
    }

    /// Whether this register has a directly addressable low byte
    /// (`%al`/`%cl`/`%dl`/`%bl`); required for 1-byte stores in the subset.
    #[inline]
    pub fn has_low_byte(self) -> bool {
        (self as u8) < 4
    }

    /// AT&T-style register name, e.g. `"%eax"`.
    pub fn name(self) -> &'static str {
        match self {
            Reg32::Eax => "%eax",
            Reg32::Ecx => "%ecx",
            Reg32::Edx => "%edx",
            Reg32::Ebx => "%ebx",
            Reg32::Esp => "%esp",
            Reg32::Ebp => "%ebp",
            Reg32::Esi => "%esi",
            Reg32::Edi => "%edi",
        }
    }
}

impl fmt::Display for Reg32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The eight 64-bit MMX registers, used by the subset's `movq` load/store.
///
/// These model the 8-byte data path through which double-precision-style
/// misaligned accesses flow in the floating-point-heavy SPEC programs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum RegMm {
    /// MMX register 0.
    Mm0 = 0,
    /// MMX register 1.
    Mm1 = 1,
    /// MMX register 2.
    Mm2 = 2,
    /// MMX register 3.
    Mm3 = 3,
    /// MMX register 4.
    Mm4 = 4,
    /// MMX register 5.
    Mm5 = 5,
    /// MMX register 6.
    Mm6 = 6,
    /// MMX register 7.
    Mm7 = 7,
}

impl RegMm {
    /// All MMX registers in hardware encoding order.
    pub const ALL: [RegMm; 8] = [
        RegMm::Mm0,
        RegMm::Mm1,
        RegMm::Mm2,
        RegMm::Mm3,
        RegMm::Mm4,
        RegMm::Mm5,
        RegMm::Mm6,
        RegMm::Mm7,
    ];

    /// Hardware register number (0..8).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Register for a hardware number.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 8`.
    #[inline]
    pub fn from_index(idx: usize) -> RegMm {
        Self::ALL[idx]
    }
}

impl fmt::Display for RegMm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%mm{}", self.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg32_index_roundtrip() {
        for (i, r) in Reg32::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
            assert_eq!(Reg32::from_index(i), *r);
        }
    }

    #[test]
    fn regmm_index_roundtrip() {
        for (i, r) in RegMm::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
            assert_eq!(RegMm::from_index(i), *r);
        }
    }

    #[test]
    fn low_byte_registers() {
        assert!(Reg32::Eax.has_low_byte());
        assert!(Reg32::Ebx.has_low_byte());
        assert!(!Reg32::Esp.has_low_byte());
        assert!(!Reg32::Edi.has_low_byte());
    }

    #[test]
    fn display_names() {
        assert_eq!(Reg32::Eax.to_string(), "%eax");
        assert_eq!(RegMm::Mm3.to_string(), "%mm3");
    }
}
