//! Synthetic SPEC stand-in workloads for DigitalBridge-RS.
//!
//! The paper evaluates MDA handling on SPEC CPU2000/CPU2006 binaries
//! compiled with pathscale 2.4. Neither the benchmarks nor the compiler are
//! redistributable here, so this crate builds **synthetic guest programs
//! calibrated per benchmark** to the paper's own measurements:
//!
//! * [`spec`] carries the full Table I (all 54 benchmarks: NMI, MDA count,
//!   MDA ratio), the Table III column (MDAs a threshold-50 dynamic profile
//!   misses — late/phase-changing sites), and the Table IV column (MDAs a
//!   `train`-input profile misses — input-dependent sites).
//! * [`gen`] lowers a [`gen::WorkloadSpec`] to an x86 guest
//!   program whose *dynamic* behaviour reproduces those knobs: overall MDA
//!   ratio, number of MDA sites, fraction of MDA volume from
//!   late-activating sites, fraction from input-dependent sites (`train`
//!   vs `ref`), mixed-alignment sites, and 8-byte accesses for the
//!   FP-dominated benchmarks.
//! * [`kernels`] provides hand-written guest kernels (unaligned memcpy,
//!   strided sums, pointer chasing) used by examples and tests.
//!
//! The mechanisms under evaluation are sensitive to exactly these knobs —
//! *when* and *how often* each static site misaligns — which is what makes
//! the substitution behaviour-preserving (see DESIGN.md §4).
//!
//! # Example
//!
//! ```
//! use bridge_workloads::spec::{benchmark, InputSet, Scale};
//! use bridge_workloads::gen::build;
//!
//! let bench = benchmark("410.bwaves").expect("in the catalog");
//! let spec = bench.workload(Scale::test());
//! let w = build(&spec, InputSet::Ref);
//! assert!(w.program.image().len() > 40);
//! ```

pub mod gen;
pub mod kernels;
pub mod rng;
pub mod spec;

pub use gen::{build, Workload, WorkloadSpec};
pub use spec::{benchmark, selected_benchmarks, InputSet, Scale, SpecBenchmark, Suite, CATALOG};
