//! The synthetic workload generator: lowers a [`WorkloadSpec`] to a guest
//! x86 program whose dynamic misalignment behaviour matches the paper's
//! per-benchmark measurements.
//!
//! # Program shape
//!
//! ```text
//! outer loop (N iterations, counted down in %ecx):
//!   inner loop (I iterations): k always-aligned sites   ← dilution to hit
//!   every 2^p-th iteration:                               Table I's ratio
//!     early sites   — misaligned from the start (after a warmup)
//!     late sites    — misaligned only after the phase switch  (Table III)
//!     input sites   — misaligned only under the `ref` input   (Table IV)
//!     mixed sites   — alternate aligned/misaligned            (Figure 15)
//! ```
//!
//! Site shapes rotate through load / read-modify-write / store forms, and
//! FP-suite benchmarks use 8-byte `movq` accesses for their MDA sites.

use crate::spec::{InputSet, Scale, SpecBenchmark};
use bridge_dbt::engine::GuestProgram;
use bridge_x86::asm::Assembler;
use bridge_x86::cond::Cond;
use bridge_x86::insn::{AluOp, Ext, MemRef, Scale as XScale, Width};
use bridge_x86::reg::{Reg32, RegMm};

/// Guest address of the program image.
pub const IMAGE_BASE: u32 = 0x0040_0000;
/// Guest address of the input-configuration word (the `train`/`ref` knob).
pub const CONFIG_ADDR: u32 = 0x0010_0000;
/// Base of the always-aligned data region.
pub const ALIGNED_REGION: u32 = 0x0012_0000;
/// Base of the indexed data region.
pub const IDX_REGION: u32 = 0x0014_0000;
/// Base of the MDA data region (sites address `base + site*64`).
pub const MDA_REGION: u32 = 0x0020_0000;
/// Guest stack top.
pub const STACK_TOP: u32 = 0x00F0_0000;

/// Parameters of one synthetic workload (see module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadSpec {
    /// Benchmark name this models.
    pub name: String,
    /// Outer loop iterations `N`.
    pub outer_iters: u32,
    /// Inner (aligned) loop iterations `I`.
    pub inner_iters: u32,
    /// Always-aligned sites per inner iteration `k`.
    pub inner_sites: u32,
    /// The MDA body runs on every `2^p`-th outer iteration.
    pub dilution_pow2: u32,
    /// Sites misaligned from the start (after `warmup_iters`).
    pub early_sites: u32,
    /// Outer iterations before the early sites start misaligning.
    pub warmup_iters: u32,
    /// Sites that misalign only after `switch_at` (phase change).
    pub late_sites: u32,
    /// Outer iteration at which the late sites switch to misaligned.
    pub switch_at: u32,
    /// Sites misaligned only under [`InputSet::Ref`].
    pub input_dep_sites: u32,
    /// Sites whose alignment alternates every MDA-body execution.
    pub mixed_sites: u32,
    /// Use 8-byte `movq` accesses for MDA sites (FP suites).
    pub wide: bool,
}

impl WorkloadSpec {
    /// Total static MDA sites (the synthetic analogue of a scaled-down
    /// Table I NMI).
    pub fn mda_sites(&self) -> u32 {
        self.early_sites + self.late_sites + self.input_dep_sites + self.mixed_sites
    }

    /// Rough count of dynamic memory accesses the `Ref` run performs.
    pub fn approx_mem_ops(&self) -> u64 {
        let n = u64::from(self.outer_iters);
        let aligned = n * u64::from(self.inner_iters) * u64::from(self.inner_sites);
        let mda = (n * u64::from(self.mda_sites())) >> self.dilution_pow2;
        aligned + mda
    }

    /// Rough count of guest instructions the `Ref` run executes.
    pub fn approx_guest_insns(&self) -> u64 {
        let n = u64::from(self.outer_iters);
        let inner = n * u64::from(self.inner_iters) * (u64::from(self.inner_sites) + 2);
        let mda = ((n * u64::from(self.mda_sites())) >> self.dilution_pow2) * 2;
        inner + mda + n * 8
    }

    /// Derives the workload for a catalog benchmark at a given scale. The
    /// calibration rules (documented in DESIGN.md §4):
    ///
    /// * MDA sites `m` ≈ `√NMI`, clamped to 2..=20 (a scaled NMI);
    /// * the inner-loop dilution is solved so the dynamic MDA ratio equals
    ///   Table I's Ratio column;
    /// * late/input-dependent site counts and the phase-switch point are
    ///   solved so the fraction of MDA volume invisible to a threshold-50
    ///   dynamic profile (resp. a `train` profile) matches Table III
    ///   (resp. Table IV).
    pub fn derive(b: &SpecBenchmark, scale: Scale) -> WorkloadSpec {
        let n = scale.outer_iters;
        let m = ((b.nmi as f64).sqrt().round() as u32).clamp(2, 20);
        let r = b.ratio();

        // Partition the m sites.
        let late_frac = b.late_fraction();
        let train_frac = b.train_miss_fraction();
        let mut late = if late_frac > 1e-4 {
            ((late_frac * f64::from(m) / 0.75).ceil() as u32).clamp(1, m)
        } else {
            0
        };
        let mut input_dep = if train_frac > 1e-4 {
            ((train_frac * f64::from(m)).round() as u32).clamp(1, m)
        } else {
            0
        };
        let mut mixed = u32::from(b.mixed);
        // Keep the partition within m (priority: late, then input, mixed).
        while late + input_dep + mixed > m {
            if mixed > 0 {
                mixed -= 1;
            } else if input_dep > 1 || (input_dep > 0 && late >= m) {
                input_dep -= 1;
            } else {
                late -= 1;
            }
        }
        let early = m - late - input_dep - mixed;

        // Phase-switch point: post-switch late volume should be
        // `late_frac` of total MDA volume.
        let switch_at = if late == 0 {
            n
        } else {
            let post = (late_frac * f64::from(m) * f64::from(n) / f64::from(late)) as u32;
            n.saturating_sub(post)
                .clamp(n / 8, n.saturating_sub(n / 10))
        };

        // Dilution: aligned volume per iteration to hit the ratio.
        let k = 4u32;
        let mut p = 0u32;
        let per_mda = (1.0 - r) / r; // aligned ops wanted per MDA op
        let mut aligned_per_iter = per_mda * f64::from(m);
        while aligned_per_iter / f64::from(k) > 400.0 && p < 12 {
            p += 1;
            aligned_per_iter /= 2.0;
        }
        let inner_iters = ((aligned_per_iter / f64::from(k)).round() as u32).max(1);

        WorkloadSpec {
            name: b.name.to_string(),
            outer_iters: n,
            inner_iters,
            inner_sites: k,
            dilution_pow2: p,
            early_sites: early,
            warmup_iters: b.warmup_iters.min(n / 4),
            late_sites: late,
            switch_at,
            input_dep_sites: input_dep,
            mixed_sites: mixed,
            wide: b.suite.is_fp(),
        }
    }
}

/// A generated workload, ready to load into a DBT or interpreter.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The guest program image.
    pub program: GuestProgram,
    /// Data segments `(address, bytes)` the program reads and writes.
    pub data: Vec<(u32, Vec<u8>)>,
    /// Initial stack pointer.
    pub stack_top: u32,
}

impl Workload {
    /// Loads the program and its data into a DBT engine.
    pub fn load_into(&self, dbt: &mut bridge_dbt::Dbt) {
        dbt.load(&self.program);
        dbt.set_stack(self.stack_top);
        for (addr, bytes) in &self.data {
            dbt.write_guest_memory(*addr, bytes);
        }
    }
}

/// Deterministic data-region contents: a SplitMix64 stream seeded per
/// region, so every rebuild of the same workload produces identical bytes.
fn pattern_bytes(len: usize, seed: u8) -> Vec<u8> {
    crate::rng::SplitMix64::new(0xD1B5_4A32_D192_ED03 ^ u64::from(seed)).bytes(len)
}

/// Emits one MDA site accessing `base_reg + site_index*64`, rotating
/// through load / RMW / store shapes (8-byte `movq` shapes when `wide`).
fn emit_mda_site(a: &mut Assembler, base: Reg32, site_index: u32, wide: bool) {
    let m = MemRef::base_disp(base, (site_index * 64) as i32);
    match (site_index % 4, wide) {
        (3, false) => a.store(Width::W4, Reg32::Eax, m),
        (3, true) => a.movq_store(RegMm::Mm0, m),
        (1, false) => a.alu_mr(AluOp::Add, m, Reg32::Eax), // RMW: two accesses
        (_, false) => a.alu_rm(AluOp::Add, Reg32::Eax, m),
        (_, true) => a.movq_load(RegMm::Mm0, m),
    }
}

/// Builds the guest program and data for a workload under an input set.
///
/// The `train`/`ref` distinction is carried entirely by the data (the
/// configuration word the program loads at startup), exactly like a real
/// program whose allocator alignment depends on its input.
pub fn build(spec: &WorkloadSpec, input: InputSet) -> Workload {
    let n = spec.outer_iters;
    let mut a = Assembler::new(IMAGE_BASE);

    // --- Prologue: bases and counters. ---
    let early_base = if spec.warmup_iters == 0 && spec.early_sites > 0 {
        MDA_REGION + 1
    } else {
        MDA_REGION
    };
    a.mov_ri(Reg32::Ebx, early_base as i32);
    a.mov_ri(Reg32::Edi, MDA_REGION as i32); // late: aligned until the switch
    a.mov_ri(Reg32::Ebp, MDA_REGION as i32); // mixed: starts aligned
    a.load(Width::W4, Ext::Zero, Reg32::Esi, MemRef::abs(CONFIG_ADDR));
    a.mov_ri(Reg32::Eax, 0);
    a.mov_ri(Reg32::Ecx, n as i32);

    let outer_top = a.here_label();

    // --- Inner aligned loop. ---
    a.mov_ri(Reg32::Edx, spec.inner_iters as i32);
    let inner_top = a.here_label();
    for s in 0..spec.inner_sites.saturating_sub(1) {
        a.alu_rm(AluOp::Add, Reg32::Eax, MemRef::abs(ALIGNED_REGION + s * 64));
    }
    // One indexed site for addressing-mode coverage (always aligned).
    a.alu_rm(
        AluOp::Add,
        Reg32::Eax,
        MemRef::index_disp(Reg32::Edx, XScale::S4, IDX_REGION as i32),
    );
    a.alu_ri(AluOp::Sub, Reg32::Edx, 1);
    a.jcc(Cond::Ne, inner_top);

    // --- Dilution guard. ---
    let after_mda = a.new_label();
    if spec.dilution_pow2 > 0 {
        let mask = (1i32 << spec.dilution_pow2) - 1;
        a.alu_ri(AluOp::Test, Reg32::Ecx, mask);
        a.jcc(Cond::Ne, after_mda);
    }

    // --- MDA body. ---
    let mut site = 0u32;
    for _ in 0..spec.early_sites {
        emit_mda_site(&mut a, Reg32::Ebx, site, spec.wide);
        site += 1;
    }
    for _ in 0..spec.late_sites {
        emit_mda_site(&mut a, Reg32::Edi, site, spec.wide);
        site += 1;
    }
    for _ in 0..spec.input_dep_sites {
        emit_mda_site(&mut a, Reg32::Esi, site, spec.wide);
        site += 1;
    }
    for _ in 0..spec.mixed_sites {
        emit_mda_site(&mut a, Reg32::Ebp, site, spec.wide);
        site += 1;
    }
    if spec.mixed_sites > 0 {
        // Flip the mixed base between aligned and odd.
        a.alu_ri(AluOp::Xor, Reg32::Ebp, 1);
    }
    a.bind(after_mda);

    // --- Warmup end: early sites switch to misaligned. ---
    if spec.warmup_iters > 0 && spec.early_sites > 0 {
        let skip = a.new_label();
        a.alu_ri(AluOp::Cmp, Reg32::Ecx, (n - spec.warmup_iters) as i32);
        a.jcc(Cond::Ne, skip);
        a.mov_ri(Reg32::Ebx, (MDA_REGION + 1) as i32);
        a.bind(skip);
    }

    // --- Phase switch: late sites become misaligned. ---
    if spec.late_sites > 0 && spec.switch_at < n {
        let skip = a.new_label();
        a.alu_ri(AluOp::Cmp, Reg32::Ecx, (n - spec.switch_at) as i32);
        a.jcc(Cond::Ne, skip);
        a.mov_ri(Reg32::Edi, (MDA_REGION + 1) as i32);
        a.bind(skip);
    }

    a.alu_ri(AluOp::Sub, Reg32::Ecx, 1);
    a.jcc(Cond::Ne, outer_top);
    a.hlt();

    let image = a.finish().expect("workload assembles");

    // --- Data segments. ---
    let config: u32 = match input {
        InputSet::Train => MDA_REGION,
        InputSet::Ref => {
            if spec.input_dep_sites > 0 {
                MDA_REGION + 1
            } else {
                MDA_REGION
            }
        }
    };
    let mda_len = (spec.mda_sites() as usize) * 64 + 16;
    let data = vec![
        (CONFIG_ADDR, config.to_le_bytes().to_vec()),
        (
            ALIGNED_REGION,
            pattern_bytes((spec.inner_sites as usize) * 64 + 8, 11),
        ),
        (
            IDX_REGION,
            pattern_bytes((spec.inner_iters as usize + 2) * 4, 29),
        ),
        (MDA_REGION, pattern_bytes(mda_len.max(64), 43)),
    ];

    Workload {
        program: GuestProgram::new(IMAGE_BASE, image),
        data,
        stack_top: STACK_TOP,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::benchmark;
    use bridge_dbt::engine::profile_program;
    use bridge_sim::cost::CostModel;

    fn interp_profile(
        spec: &WorkloadSpec,
        input: InputSet,
    ) -> (bridge_x86::state::CpuState, bridge_dbt::Profile) {
        let w = build(spec, input);
        profile_program(
            &w.program,
            &w.data,
            Some(w.stack_top),
            &CostModel::flat(),
            200_000_000,
        )
        .expect("halts")
    }

    #[test]
    fn derive_produces_sane_parameters() {
        for b in crate::spec::CATALOG.iter() {
            let s = WorkloadSpec::derive(b, Scale::test());
            assert!(s.mda_sites() >= 2, "{}", b.name);
            assert!(s.mda_sites() <= 20, "{}", b.name);
            assert!(s.inner_iters >= 1 && s.inner_iters <= 401, "{}", b.name);
            assert!(s.switch_at <= s.outer_iters, "{}", b.name);
            assert_eq!(s.wide, b.suite.is_fp(), "{}", b.name);
        }
    }

    #[test]
    fn ratio_calibration_holds() {
        for name in ["188.ammp", "410.bwaves", "164.gzip", "400.perlbench"] {
            let b = benchmark(name).unwrap();
            let spec = b.workload(Scale::test());
            let (_, profile) = interp_profile(&spec, InputSet::Ref);
            let measured = profile.mda_ratio();
            let target = b.ratio();
            assert!(
                measured > target * 0.4 && measured < target * 2.5,
                "{name}: measured {measured:.5} vs target {target:.5}"
            );
        }
    }

    #[test]
    fn nmi_matches_site_count() {
        let b = benchmark("433.milc").unwrap();
        let spec = b.workload(Scale::test());
        let (_, profile) = interp_profile(&spec, InputSet::Ref);
        // Every MDA site (and only those) performs MDAs under Ref. Mixed
        // sites count too; RMW sites are one instruction.
        assert_eq!(profile.nmi() as u32, spec.mda_sites());
    }

    #[test]
    fn train_and_ref_inputs_differ_exactly_on_input_dep_sites() {
        let b = benchmark("252.eon").unwrap(); // large Table IV miss
        let spec = b.workload(Scale::test());
        assert!(spec.input_dep_sites > 0);
        let (_, train) = interp_profile(&spec, InputSet::Train);
        let (_, reff) = interp_profile(&spec, InputSet::Ref);
        assert!(
            reff.mdas > train.mdas,
            "ref {} vs train {}",
            reff.mdas,
            train.mdas
        );
        assert_eq!(
            reff.nmi() as u32 - train.nmi() as u32,
            spec.input_dep_sites,
            "the extra NMI under ref is exactly the input-dependent sites"
        );
    }

    #[test]
    fn late_sites_misalign_only_after_switch() {
        let b = benchmark("410.bwaves").unwrap(); // huge Table III miss
        let spec = b.workload(Scale::test());
        assert!(spec.late_sites > 0);
        assert!(spec.switch_at > 0 && spec.switch_at < spec.outer_iters);
        let (_, profile) = interp_profile(&spec, InputSet::Ref);
        // Late sites have both aligned (pre-switch) and misaligned
        // (post-switch) executions.
        let mut saw_partial = false;
        for (_, stats) in profile.iter_sites() {
            if stats.mdas > 0 && stats.mdas < stats.execs {
                saw_partial = true;
            }
        }
        assert!(saw_partial, "phase-changing sites must exist");
    }

    #[test]
    fn program_state_deterministic_across_rebuilds() {
        let b = benchmark("164.gzip").unwrap();
        let spec = b.workload(Scale::test());
        let (s1, p1) = interp_profile(&spec, InputSet::Ref);
        let (s2, p2) = interp_profile(&spec, InputSet::Ref);
        assert_eq!(s1.regs, s2.regs);
        assert_eq!(p1.mdas, p2.mdas);
    }

    #[test]
    fn wide_benchmarks_use_8_byte_mdas() {
        let b = benchmark("470.lbm").unwrap();
        let spec = b.workload(Scale::test());
        assert!(spec.wide);
        let w = build(&spec, InputSet::Ref);
        // The image contains movq opcodes (0F 6F / 0F 7F).
        let img = w.program.image();
        let has_movq = img
            .windows(2)
            .any(|p| p == [0x0F, 0x6F] || p == [0x0F, 0x7F]);
        assert!(has_movq);
    }

    #[test]
    fn approximations_are_in_the_ballpark() {
        let b = benchmark("482.sphinx3").unwrap();
        let spec = b.workload(Scale::test());
        let (_, profile) = interp_profile(&spec, InputSet::Ref);
        let approx = spec.approx_mem_ops();
        let measured = profile.mem_accesses;
        assert!(
            measured > approx / 2 && measured < approx * 2,
            "approx {approx} vs measured {measured}"
        );
    }
}
