//! The SPEC CPU2000 / CPU2006 catalog with the paper's measurements, and
//! the per-benchmark derivation of synthetic workload parameters.

use crate::gen::WorkloadSpec;

/// Benchmark suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPEC CPU2000 integer.
    Int2000,
    /// SPEC CPU2000 floating point.
    Fp2000,
    /// SPEC CPU2006 integer.
    Int2006,
    /// SPEC CPU2006 floating point.
    Fp2006,
}

impl Suite {
    /// Whether 8-byte (double-precision-style) accesses dominate the MDA
    /// traffic.
    pub fn is_fp(self) -> bool {
        matches!(self, Suite::Fp2000 | Suite::Fp2006)
    }
}

/// Input set selection (the paper profiles with `train` and evaluates with
/// `ref`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InputSet {
    /// Training input: input-dependent sites stay aligned.
    Train,
    /// Reference input: input-dependent sites misalign.
    Ref,
}

/// Workload size preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Outer loop iterations of the generated program.
    pub outer_iters: u32,
}

impl Scale {
    /// Tiny runs for unit/integration tests.
    pub fn test() -> Scale {
        Scale { outer_iters: 240 }
    }

    /// Default experiment scale (seconds per benchmark).
    pub fn quick() -> Scale {
        Scale { outer_iters: 2_000 }
    }

    /// Full experiment scale, large enough for the paper's threshold sweep
    /// up to 5000 to be meaningful.
    pub fn paper() -> Scale {
        Scale {
            outer_iters: 20_000,
        }
    }
}

/// One benchmark row of the paper's Table I, with the Table III / Table IV
/// columns where the benchmark is in the 21-benchmark evaluation set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpecBenchmark {
    /// SPEC name, e.g. `"410.bwaves"`.
    pub name: &'static str,
    /// Suite membership.
    pub suite: Suite,
    /// Table I **NMI**: static instructions that performed ≥1 MDA.
    pub nmi: u32,
    /// Table I: dynamic MDAs with the `ref` input.
    pub paper_mdas: f64,
    /// Table I **Ratio**: MDAs / all memory accesses, in percent.
    pub ratio_percent: f64,
    /// Whether the paper evaluates this benchmark in Figures 10–16
    /// ("significant number of MDAs").
    pub selected: bool,
    /// Table III: MDAs a threshold-50 dynamic profile fails to detect
    /// (late / phase-changing sites). `None` for unselected benchmarks.
    pub undetected_dynamic: Option<f64>,
    /// Table IV: MDAs remaining when profiling with the `train` input
    /// (input-dependent sites). `None` for unselected benchmarks.
    pub undetected_train: Option<f64>,
    /// Whether some MDA sites have mixed alignment (Figure 15's
    /// "frequently aligned" ~4.5%; calibration choice documented in
    /// EXPERIMENTS.md).
    pub mixed: bool,
    /// Outer iterations before the *early* sites start misaligning (models
    /// benchmarks like 400.perlbench that "definitely need a threshold
    /// greater than 10" in Figure 10).
    pub warmup_iters: u32,
}

impl SpecBenchmark {
    /// Table I ratio as a fraction. Rows printed as `0.00%` are given a
    /// small positive floor so their (tiny) MDA populations still exist.
    pub fn ratio(&self) -> f64 {
        (self.ratio_percent / 100.0).max(2e-5)
    }

    /// Fraction of MDA volume invisible to a threshold-50 dynamic profile.
    pub fn late_fraction(&self) -> f64 {
        match self.undetected_dynamic {
            Some(u) if self.paper_mdas > 0.0 => (u / self.paper_mdas).clamp(0.0, 0.9),
            _ => 0.0,
        }
    }

    /// Fraction of MDA volume invisible to a `train`-input profile.
    pub fn train_miss_fraction(&self) -> f64 {
        match self.undetected_train {
            Some(u) if self.paper_mdas > 0.0 => (u / self.paper_mdas).clamp(0.0, 0.9),
            _ => 0.0,
        }
    }

    /// Derives the synthetic workload parameters for this benchmark (see
    /// module docs and DESIGN.md §4 for the calibration rules).
    pub fn workload(&self, scale: Scale) -> WorkloadSpec {
        WorkloadSpec::derive(self, scale)
    }
}

macro_rules! bench {
    ($name:literal, $suite:ident, $nmi:literal, $mdas:literal, $ratio:literal) => {
        SpecBenchmark {
            name: $name,
            suite: Suite::$suite,
            nmi: $nmi,
            paper_mdas: $mdas as f64,
            ratio_percent: $ratio,
            selected: false,
            undetected_dynamic: None,
            undetected_train: None,
            mixed: false,
            warmup_iters: 0,
        }
    };
    ($name:literal, $suite:ident, $nmi:literal, $mdas:literal, $ratio:literal,
     t3 = $t3:literal, t4 = $t4:literal $(, mixed = $mixed:literal)? $(, warmup = $w:literal)?) => {
        SpecBenchmark {
            name: $name,
            suite: Suite::$suite,
            nmi: $nmi,
            paper_mdas: $mdas as f64,
            ratio_percent: $ratio,
            selected: true,
            undetected_dynamic: Some($t3 as f64),
            undetected_train: Some($t4 as f64),
            mixed: false $(|| $mixed)?,
            warmup_iters: 0 $(+ $w)?,
        }
    };
}

/// The paper's Table I — all 54 SPEC CPU2000/CPU2006 benchmarks — with the
/// Table III/IV columns attached to the 21 evaluated benchmarks.
pub const CATALOG: [SpecBenchmark; 54] = [
    // --- CPU2000 integer ---
    bench!(
        "164.gzip",
        Int2000,
        80,
        406_431_686u64,
        0.52,
        t3 = 156_000_000u64,
        t4 = 46u64,
        warmup = 0
    ),
    bench!("175.vpr", Int2000, 134, 2_762_730u64, 0.01),
    bench!("176.gcc", Int2000, 154, 37_894_632u64, 0.06),
    bench!("181.mcf", Int2000, 16, 1_649_912u64, 0.02),
    bench!("186.crafty", Int2000, 20, 4_950u64, 0.00),
    bench!("197.parser", Int2000, 16, 291_054u64, 0.00),
    bench!(
        "252.eon",
        Int2000,
        3096,
        8_523_707_162u64,
        9.63,
        t3 = 24_630u64,
        t4 = 3_220_000_000u64
    ),
    bench!("253.perlbmk", Int2000, 270, 148_689_820u64, 0.23),
    bench!("254.gap", Int2000, 14, 1_128_048u64, 0.00),
    bench!("255.vortex", Int2000, 90, 12_361_950u64, 0.03),
    bench!("256.bzip2", Int2000, 44, 25_233_188u64, 0.04),
    bench!("300.twolf", Int2000, 98, 441_176_894u64, 0.92),
    // --- CPU2000 floating point ---
    bench!("168.wupwise", Fp2000, 132, 9_682u64, 0.00),
    bench!("171.swim", Fp2000, 284, 49_605_944u64, 0.03),
    bench!("172.mgrid", Fp2000, 78, 1_772_430u64, 0.00),
    bench!("173.applu", Fp2000, 306, 2_243_041_896u64, 1.60),
    bench!("177.mesa", Fp2000, 54, 9_370u64, 0.00),
    bench!(
        "178.galgel",
        Fp2000,
        5282,
        492_949_052u64,
        0.27,
        t3 = 3_436u64,
        t4 = 4_930_086u64
    ),
    bench!(
        "179.art",
        Fp2000,
        1024,
        21_244_446_764u64,
        38.33,
        t3 = 312_000_000u64,
        t4 = 3_600_000_000u64
    ),
    bench!("183.equake", Fp2000, 30, 524u64, 0.00),
    bench!("187.facerec", Fp2000, 112, 6_240_872u64, 0.01),
    bench!(
        "188.ammp",
        Fp2000,
        1134,
        73_194_953_020u64,
        43.12,
        t3 = 0u64,
        t4 = 0u64
    ),
    bench!("189.lucas", Fp2000, 64, 17_383_280u64, 0.02),
    bench!("191.fma3d", Fp2000, 398, 5_383_029_436u64, 3.36),
    bench!(
        "200.sixtrack",
        Fp2000,
        1324,
        8_673_947_498u64,
        4.21,
        t3 = 235_950u64,
        t4 = 0u64
    ),
    bench!("301.apsi", Fp2000, 356, 1_568_299_486u64, 0.86),
    // --- CPU2006 integer ---
    bench!(
        "400.perlbench",
        Int2006,
        77,
        1_469_188_415u64,
        0.26,
        t3 = 57_874_640u64,
        t4 = 1_244_769u64,
        warmup = 30
    ),
    bench!("401.bzip2", Int2006, 45, 82_641_256u64, 0.01),
    bench!("403.gcc", Int2006, 53, 32_624u64, 0.00),
    bench!("429.mcf", Int2006, 10, 883_518u64, 0.00),
    bench!("445.gobmk", Int2006, 76, 1_741_956u64, 0.00),
    bench!("456.hmmer", Int2006, 127, 13_757_509u64, 0.00),
    bench!("458.sjeng", Int2006, 9, 1_303u64, 0.00),
    bench!("462.libquantum", Int2006, 9, 435u64, 0.00),
    bench!(
        "464.h264ref",
        Int2006,
        96,
        138_883_221u64,
        0.01,
        t3 = 9_347u64,
        t4 = 1_020u64,
        mixed = true
    ),
    bench!(
        "471.omnetpp",
        Int2006,
        394,
        6_303_605_195u64,
        3.37,
        t3 = 38_979u64,
        t4 = 48_638_638u64,
        mixed = true
    ),
    bench!("473.astar", Int2006, 32, 758u64, 0.00),
    bench!(
        "483.xalancbmk",
        Int2006,
        53,
        5_749_815_279u64,
        1.60,
        t3 = 8_320_000_000u64,
        t4 = 12_761u64
    ),
    // --- CPU2006 floating point ---
    bench!(
        "410.bwaves",
        Fp2006,
        602,
        99_916_961_773u64,
        12.67,
        t3 = 41_500_000_000u64,
        t4 = 0u64
    ),
    bench!("416.gamess", Fp2006, 424, 13_073_700u64, 0.00),
    bench!(
        "433.milc",
        Fp2006,
        3825,
        67_272_361_837u64,
        12.09,
        t3 = 134_000_000u64,
        t4 = 6u64,
        mixed = true
    ),
    bench!(
        "434.zeusmp",
        Fp2006,
        3484,
        87_873_451_026u64,
        4.14,
        t3 = 1_716u64,
        t4 = 644_100u64
    ),
    bench!(
        "435.gromacs",
        Fp2006,
        197,
        123_577_765u64,
        0.01,
        t3 = 1_820u64,
        t4 = 0u64
    ),
    bench!("436.cactusADM", Fp2006, 48, 1_745_161u64, 0.00),
    bench!(
        "437.leslie3d",
        Fp2006,
        205,
        23_645_192_624u64,
        2.54,
        t3 = 1_716u64,
        t4 = 21_168u64
    ),
    bench!("444.namd", Fp2006, 103, 10_516_106u64, 0.00),
    bench!(
        "450.soplex",
        Fp2006,
        538,
        13_446_836_143u64,
        5.71,
        t3 = 933_000_000u64,
        t4 = 4_030_000_000u64,
        mixed = true
    ),
    bench!(
        "453.povray",
        Fp2006,
        918,
        36_294_822_277u64,
        8.30,
        t3 = 241_000_000u64,
        t4 = 0u64,
        mixed = true
    ),
    bench!(
        "454.calculix",
        Fp2006,
        139,
        478_592_675u64,
        0.02,
        t3 = 2_609u64,
        t4 = 183_000_000u64
    ),
    bench!("459.GemsFDTD", Fp2006, 3304, 31_740_862u64, 0.00),
    bench!(
        "465.tonto",
        Fp2006,
        1748,
        38_717_125_228u64,
        3.80,
        t3 = 116_450u64,
        t4 = 262u64
    ),
    bench!(
        "470.lbm",
        Fp2006,
        8,
        7_124_766_678u64,
        1.14,
        t3 = 0u64,
        t4 = 0u64
    ),
    bench!("481.wrf", Fp2006, 92, 49_694_156u64, 0.00),
    bench!(
        "482.sphinx3",
        Fp2006,
        115,
        3_118_790_131u64,
        0.31,
        t3 = 1u64,
        t4 = 0u64
    ),
];

/// Looks up a benchmark by its SPEC name.
pub fn benchmark(name: &str) -> Option<&'static SpecBenchmark> {
    CATALOG.iter().find(|b| b.name == name)
}

/// The 21 benchmarks the paper evaluates in Figures 10–16, in catalog
/// order.
pub fn selected_benchmarks() -> impl Iterator<Item = &'static SpecBenchmark> {
    CATALOG.iter().filter(|b| b.selected)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_54_rows_and_21_selected() {
        assert_eq!(CATALOG.len(), 54);
        assert_eq!(selected_benchmarks().count(), 21);
    }

    #[test]
    fn lookup_by_name() {
        let b = benchmark("410.bwaves").unwrap();
        assert_eq!(b.nmi, 602);
        assert!(b.selected);
        assert!(b.suite.is_fp());
        assert!(benchmark("999.nonesuch").is_none());
    }

    #[test]
    fn table_i_spot_checks() {
        // The paper's headline rows.
        let bwaves = benchmark("410.bwaves").unwrap();
        assert!((bwaves.ratio_percent - 12.67).abs() < 1e-9);
        let ammp = benchmark("188.ammp").unwrap();
        assert!((ammp.ratio_percent - 43.12).abs() < 1e-9);
        let libq = benchmark("462.libquantum").unwrap();
        assert_eq!(libq.paper_mdas as u64, 435);
        assert!(!libq.selected);
    }

    #[test]
    fn fractions_are_calibrated() {
        let gzip = benchmark("164.gzip").unwrap();
        // Table III: 1.56E8 of 4.06E8 MDAs escape a threshold-50 profile.
        assert!((gzip.late_fraction() - 0.3838).abs() < 0.01);
        // Table IV: essentially everything is caught by train.
        assert!(gzip.train_miss_fraction() < 1e-6);

        let eon = benchmark("252.eon").unwrap();
        assert!(eon.late_fraction() < 1e-4, "eon's dynamic profile is fine");
        assert!((eon.train_miss_fraction() - 0.3778).abs() < 0.01);

        let xalanc = benchmark("483.xalancbmk").unwrap();
        assert_eq!(xalanc.late_fraction(), 0.9, "clamped at 0.9");

        let ammp = benchmark("188.ammp").unwrap();
        assert_eq!(ammp.late_fraction(), 0.0);
        assert_eq!(ammp.train_miss_fraction(), 0.0);
    }

    #[test]
    fn ratio_floor_for_zero_rows() {
        let crafty = benchmark("186.crafty").unwrap();
        assert!(crafty.ratio() > 0.0);
        assert!(crafty.ratio() < 1e-4);
    }

    #[test]
    fn scales_ordered() {
        assert!(Scale::test().outer_iters < Scale::quick().outer_iters);
        assert!(Scale::quick().outer_iters < Scale::paper().outer_iters);
    }

    #[test]
    fn selected_set_matches_table_iii() {
        let names: Vec<&str> = selected_benchmarks().map(|b| b.name).collect();
        for expected in [
            "164.gzip",
            "252.eon",
            "178.galgel",
            "179.art",
            "188.ammp",
            "200.sixtrack",
            "400.perlbench",
            "464.h264ref",
            "471.omnetpp",
            "483.xalancbmk",
            "410.bwaves",
            "433.milc",
            "434.zeusmp",
            "435.gromacs",
            "437.leslie3d",
            "450.soplex",
            "453.povray",
            "454.calculix",
            "465.tonto",
            "470.lbm",
            "482.sphinx3",
        ] {
            assert!(names.contains(&expected), "{expected} missing");
        }
    }
}
