//! Hand-written guest kernels used by examples and tests.
//!
//! Unlike the calibrated SPEC stand-ins in [`gen`](crate::gen), these are
//! small, readable programs exhibiting the classic sources of misaligned
//! accesses: unaligned `memcpy`, packed-struct traversal, and stack
//! misalignment.

use crate::gen::STACK_TOP;
use bridge_dbt::engine::GuestProgram;
use bridge_x86::asm::Assembler;
use bridge_x86::cond::Cond;
use bridge_x86::insn::{AluOp, Ext, MemRef, Scale, Width};
use bridge_x86::reg::Reg32::*;

/// Where kernels are loaded.
pub const KERNEL_BASE: u32 = 0x0040_0000;

/// A kernel program plus its data.
#[derive(Debug, Clone)]
pub struct Kernel {
    /// The program.
    pub program: GuestProgram,
    /// Data segments.
    pub data: Vec<(u32, Vec<u8>)>,
    /// Initial stack pointer.
    pub stack_top: u32,
}

impl Kernel {
    /// Loads the kernel into a DBT engine.
    pub fn load_into(&self, dbt: &mut bridge_dbt::Dbt) {
        dbt.load(&self.program);
        dbt.set_stack(self.stack_top);
        for (addr, bytes) in &self.data {
            dbt.write_guest_memory(*addr, bytes);
        }
    }
}

/// Word-at-a-time `memcpy(dst, src, len)` where `src` is misaligned —
/// glibc-style copies are a classic MDA source the paper observes in
/// `libc.so.6`.
///
/// Copies `len` bytes (a multiple of 4) from `src` to `dst` in 4-byte
/// chunks. Returns with `%eax` = number of words copied.
pub fn memcpy_unaligned(src: u32, dst: u32, len: u32) -> Kernel {
    assert_eq!(len % 4, 0, "len must be a multiple of 4");
    let mut a = Assembler::new(KERNEL_BASE);
    a.mov_ri(Esi, src as i32);
    a.mov_ri(Edi, dst as i32);
    a.mov_ri(Ecx, (len / 4) as i32);
    a.mov_ri(Eax, 0);
    let top = a.here_label();
    a.load(
        Width::W4,
        Ext::Zero,
        Edx,
        MemRef::base_index(Esi, Eax, Scale::S4, 0),
    );
    a.store(Width::W4, Edx, MemRef::base_index(Edi, Eax, Scale::S4, 0));
    a.alu_ri(AluOp::Add, Eax, 1);
    a.alu_ri(AluOp::Sub, Ecx, 1);
    a.jcc(Cond::Ne, top);
    a.hlt();
    let image = a.finish().expect("kernel assembles");

    let payload: Vec<u8> = (0..len)
        .map(|i| (i as u8).wrapping_mul(7).wrapping_add(3))
        .collect();
    Kernel {
        program: GuestProgram::new(KERNEL_BASE, image),
        data: vec![(src, payload)],
        stack_top: STACK_TOP,
    }
}

/// Sums `count` packed records of `stride` bytes whose 4-byte field sits at
/// `field_off` — the packed-struct traversal pattern (think network packets
/// or on-disk records) that misaligns when `stride` is not a multiple of 4.
///
/// Result in `%eax`.
pub fn packed_struct_sum(base: u32, stride: u32, field_off: u32, count: u32) -> Kernel {
    let mut a = Assembler::new(KERNEL_BASE);
    a.mov_ri(Ebx, (base + field_off) as i32);
    a.mov_ri(Ecx, count as i32);
    a.mov_ri(Eax, 0);
    let top = a.here_label();
    a.alu_rm(AluOp::Add, Eax, MemRef::base_disp(Ebx, 0));
    a.alu_ri(AluOp::Add, Ebx, stride as i32);
    a.alu_ri(AluOp::Sub, Ecx, 1);
    a.jcc(Cond::Ne, top);
    a.hlt();
    let image = a.finish().expect("kernel assembles");

    // Fill each record's field with 1 so the expected sum is `count`.
    let mut data = vec![0u8; (stride * count + field_off + 4) as usize];
    for i in 0..count {
        let off = (i * stride + field_off) as usize;
        data[off..off + 4].copy_from_slice(&1u32.to_le_bytes());
    }
    Kernel {
        program: GuestProgram::new(KERNEL_BASE, image),
        data: vec![(base, data)],
        stack_top: STACK_TOP,
    }
}

/// A call-heavy kernel running on a deliberately misaligned stack: every
/// `push`, `call` and `ret` performs a misaligned 4-byte access.
///
/// Computes `iterations * 3` in `%eax` via a helper function.
pub fn misaligned_stack(iterations: u32) -> Kernel {
    let mut a = Assembler::new(KERNEL_BASE);
    let func = a.new_label();
    let done = a.new_label();
    // Misalign the stack by 2.
    a.mov_ri(Esp, (STACK_TOP - 2) as i32);
    a.mov_ri(Eax, 0);
    a.mov_ri(Ecx, iterations as i32);
    let top = a.here_label();
    a.call(func);
    a.alu_ri(AluOp::Sub, Ecx, 1);
    a.jcc(Cond::Ne, top);
    a.jmp(done);
    a.bind(func);
    a.push(Ebx);
    a.alu_ri(AluOp::Add, Eax, 3);
    a.pop(Ebx);
    a.ret();
    a.bind(done);
    a.hlt();
    let image = a.finish().expect("kernel assembles");
    Kernel {
        program: GuestProgram::new(KERNEL_BASE, image),
        data: vec![],
        stack_top: STACK_TOP - 2,
    }
}

/// Chases a linked list whose nodes were allocated two bytes off natural
/// alignment: every `next`-pointer and payload access misaligns — the
/// pointer-heavy 471.omnetpp pattern (the paper's "dynamically allocated
/// data may or may not be aligned"). Sums `count` payloads into `%eax`.
pub fn linked_list_chase(base: u32, count: u32) -> Kernel {
    const NODE: u32 = 12; // 4B next + 4B payload + 4B padding
    let mut a = Assembler::new(KERNEL_BASE);
    a.mov_ri(Ebx, (base + 2) as i32); // first node, misaligned by 2
    a.mov_ri(Ecx, count as i32);
    a.mov_ri(Eax, 0);
    let top = a.here_label();
    a.alu_rm(AluOp::Add, Eax, MemRef::base_disp(Ebx, 4)); // payload
    a.load(Width::W4, Ext::Zero, Ebx, MemRef::base_disp(Ebx, 0)); // next
    a.alu_ri(AluOp::Sub, Ecx, 1);
    a.jcc(Cond::Ne, top);
    a.hlt();
    let image = a.finish().expect("kernel assembles");

    // Lay the nodes out back-to-back; each points at the next, the last
    // wraps to the first (the loop is bounded by %ecx anyway).
    let mut data = vec![0u8; (NODE * count + 8) as usize];
    for i in 0..count {
        let off = (i * NODE) as usize;
        let next = base + 2 + ((i + 1) % count) * NODE;
        data[off..off + 4].copy_from_slice(&next.to_le_bytes());
        data[off + 4..off + 8].copy_from_slice(&2u32.to_le_bytes());
    }
    Kernel {
        program: GuestProgram::new(KERNEL_BASE, image),
        data: vec![(base + 2, data)],
        stack_top: STACK_TOP,
    }
}

/// Byte-wise string scan (`strlen`-style): demonstrates that byte accesses
/// can never misalign — the whole kernel produces **zero** MDAs no matter
/// how the string is placed. Returns the length in `%eax`.
pub fn byte_string_scan(addr: u32, len: u32) -> Kernel {
    let mut a = Assembler::new(KERNEL_BASE);
    a.mov_ri(Ebx, addr as i32);
    a.mov_ri(Eax, 0);
    let top = a.here_label();
    a.load(
        Width::W1,
        Ext::Zero,
        Edx,
        MemRef::base_index(Ebx, Eax, Scale::S1, 0),
    );
    a.alu_ri(AluOp::Cmp, Edx, 0);
    let done = a.new_label();
    a.jcc(Cond::E, done);
    a.alu_ri(AluOp::Add, Eax, 1);
    a.jmp(top);
    a.bind(done);
    a.hlt();
    let image = a.finish().expect("kernel assembles");

    let mut data = vec![b'x'; len as usize];
    data.push(0);
    Kernel {
        program: GuestProgram::new(KERNEL_BASE, image),
        data: vec![(addr, data)],
        stack_top: STACK_TOP,
    }
}

/// Column-major traversal of a row-major matrix of packed 6-byte cells —
/// the dense-FP pattern (433.milc-style) where every other column access
/// misaligns. Sums `rows × cols` 4-byte fields into `%eax`.
pub fn packed_matrix_column_sum(base: u32, rows: u32, cols: u32) -> Kernel {
    const CELL: u32 = 6;
    let row_bytes = cols * CELL;
    let mut a = Assembler::new(KERNEL_BASE);
    a.mov_ri(Eax, 0);
    a.mov_ri(Esi, 0); // column index
    let col_top = a.here_label();
    // %ebx = &matrix[0][col]
    a.mov_ri(Ebx, base as i32);
    a.mov_rr(Edx, Esi);
    a.imul_rm(Edx, MemRef::abs(base.wrapping_sub(8))); // cell size from memory
    a.alu_rr(AluOp::Add, Ebx, Edx);
    a.mov_ri(Ecx, rows as i32);
    let row_top = a.here_label();
    a.alu_rm(AluOp::Add, Eax, MemRef::base_disp(Ebx, 0));
    a.alu_ri(AluOp::Add, Ebx, row_bytes as i32);
    a.alu_ri(AluOp::Sub, Ecx, 1);
    a.jcc(Cond::Ne, row_top);
    a.alu_ri(AluOp::Add, Esi, 1);
    a.alu_ri(AluOp::Cmp, Esi, cols as i32);
    a.jcc(Cond::Ne, col_top);
    a.hlt();
    let image = a.finish().expect("kernel assembles");

    let mut cell_size = vec![0u8; 8];
    cell_size[..4].copy_from_slice(&CELL.to_le_bytes());
    let mut data = vec![0u8; (rows * row_bytes + 8) as usize];
    for r in 0..rows {
        for c in 0..cols {
            let off = (r * row_bytes + c * CELL) as usize;
            data[off..off + 4].copy_from_slice(&1u32.to_le_bytes());
        }
    }
    Kernel {
        program: GuestProgram::new(KERNEL_BASE, image),
        data: vec![(base.wrapping_sub(8), cell_size), (base, data)],
        stack_top: STACK_TOP,
    }
}

/// The real thing: `rep movsd` from a misaligned source — glibc's
/// `memcpy` inner loop, the paper's §II observation that even
/// alignment-optimized applications inherit MDAs from `libc.so.6`.
/// Copies `len` bytes (multiple of 4); `%eax` is set to 1 afterwards.
pub fn rep_movsd_memcpy(src: u32, dst: u32, len: u32) -> Kernel {
    assert_eq!(len % 4, 0, "len must be a multiple of 4");
    let mut a = Assembler::new(KERNEL_BASE);
    a.mov_ri(Esi, src as i32);
    a.mov_ri(Edi, dst as i32);
    a.mov_ri(Ecx, (len / 4) as i32);
    a.emit(bridge_x86::insn::Insn::RepMovsd);
    a.mov_ri(Eax, 1);
    a.hlt();
    let image = a.finish().expect("kernel assembles");
    let payload: Vec<u8> = (0..len)
        .map(|i| (i as u8).wrapping_mul(11).wrapping_add(5))
        .collect();
    Kernel {
        program: GuestProgram::new(KERNEL_BASE, image),
        data: vec![(src, payload)],
        stack_top: STACK_TOP,
    }
}

/// A phase-change workload: a sum loop whose base pointer is aligned for
/// the first `aligned_iters` iterations and misaligned for the remaining
/// `misaligned_iters` — the access pattern that defeats profiling-window
/// mechanisms (the site looks aligned while it is hot, then misaligns
/// forever after; Table III's undetected-MDA effect). Under exception
/// handling the late site traps once and is patched; under dynamic
/// profiling every late access pays a software fixup. Returns with `%eax`
/// holding the running sum.
pub fn phase_change_sum(aligned_iters: u32, misaligned_iters: u32) -> Kernel {
    let aligned_base: u32 = 0x0010_0000;
    let misaligned_base: u32 = 0x0010_0101;
    let total = aligned_iters
        .checked_add(misaligned_iters)
        .expect("iteration count fits u32");
    assert!(total > 0, "at least one iteration");
    let mut a = Assembler::new(KERNEL_BASE);
    a.mov_ri(Ebx, aligned_base as i32);
    a.mov_ri(Ecx, total as i32);
    a.mov_ri(Eax, 0);
    let top = a.here_label();
    // With exactly `misaligned_iters` iterations left, switch to the odd
    // base before loading, so the aligned/misaligned split is exact.
    a.alu_ri(AluOp::Cmp, Ecx, misaligned_iters as i32);
    let skip = a.new_label();
    a.jcc(Cond::Ne, skip);
    a.mov_ri(Ebx, misaligned_base as i32);
    a.bind(skip);
    a.alu_rm(AluOp::Add, Eax, MemRef::base_disp(Ebx, 0));
    a.alu_ri(AluOp::Sub, Ecx, 1);
    a.jcc(Cond::Ne, top);
    a.hlt();
    let image = a.finish().expect("kernel assembles");
    Kernel {
        program: GuestProgram::new(KERNEL_BASE, image),
        data: vec![
            (aligned_base, 3u32.to_le_bytes().to_vec()),
            (misaligned_base, 7u32.to_le_bytes().to_vec()),
        ],
        stack_top: STACK_TOP,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bridge_dbt::engine::profile_program;
    use bridge_sim::cost::CostModel;

    fn run_reference(k: &Kernel) -> (bridge_x86::state::CpuState, bridge_dbt::Profile) {
        profile_program(
            &k.program,
            &k.data,
            Some(k.stack_top),
            &CostModel::flat(),
            10_000_000,
        )
        .expect("kernel halts")
    }

    #[test]
    fn phase_change_splits_exactly() {
        let k = phase_change_sum(100, 50);
        let (state, profile) = run_reference(&k);
        assert_eq!(state.reg(Eax), 100 * 3 + 50 * 7);
        assert_eq!(profile.mem_accesses, 150);
        assert_eq!(profile.mdas, 50, "exactly the late-phase loads misalign");
    }

    #[test]
    fn memcpy_copies_and_misaligns() {
        let k = memcpy_unaligned(0x10_0001, 0x20_0000, 64);
        let (state, profile) = run_reference(&k);
        assert_eq!(state.reg(Eax), 16);
        // Every load is misaligned; every store is aligned.
        assert_eq!(profile.mdas, 16);
        assert_eq!(profile.mem_accesses, 32);
    }

    #[test]
    fn packed_struct_sum_counts() {
        // stride 6, field at 0: addresses 0, 6, 12, 18 … half misaligned.
        let k = packed_struct_sum(0x10_0000, 6, 0, 10);
        let (state, profile) = run_reference(&k);
        assert_eq!(state.reg(Eax), 10);
        assert_eq!(profile.mem_accesses, 10);
        assert_eq!(profile.mdas, 5, "addresses ≡ 2 mod 4 are misaligned");
    }

    #[test]
    fn linked_list_chase_misaligns_every_access() {
        let k = linked_list_chase(0x10_0000, 16);
        let (state, profile) = run_reference(&k);
        assert_eq!(state.reg(Eax), 32, "16 payloads of 2");
        // Payload load + next-pointer load per node, all at +2 (mod 4).
        assert_eq!(profile.mem_accesses, 32);
        assert_eq!(profile.mdas, 32);
    }

    #[test]
    fn byte_scan_never_misaligns() {
        for misplace in [0u32, 1, 3, 7] {
            let k = byte_string_scan(0x10_0001 + misplace, 37);
            let (state, profile) = run_reference(&k);
            assert_eq!(state.reg(Eax), 37);
            assert_eq!(profile.mdas, 0, "byte accesses cannot misalign");
        }
    }

    #[test]
    fn matrix_column_sum_counts_and_misaligns_half() {
        let k = packed_matrix_column_sum(0x10_0000, 8, 6);
        let (state, profile) = run_reference(&k);
        assert_eq!(state.reg(Eax), 48);
        // 6-byte cells: columns at offsets 0,6,12,… → half the field
        // addresses are ≡ 2 (mod 4).
        let data_accesses = 48;
        assert!(profile.mdas >= data_accesses / 2 - 6);
        assert!(profile.mdas <= data_accesses / 2 + 6);
    }

    #[test]
    fn rep_movsd_copies_and_misaligns() {
        let k = rep_movsd_memcpy(0x10_0001, 0x20_0000, 64);
        let (state, profile) = run_reference(&k);
        assert_eq!(state.reg(Eax), 1);
        assert_eq!(state.reg(Ecx), 0);
        assert_eq!(state.reg(Esi), 0x10_0001 + 64);
        // 16 misaligned loads + 16 aligned stores.
        assert_eq!(profile.mem_accesses, 32);
        assert_eq!(profile.mdas, 16);
        // One static instruction performed all the MDAs (NMI = 1).
        assert_eq!(profile.nmi(), 1);
    }

    #[test]
    fn rep_movsd_through_the_dbt_for_every_strategy() {
        use bridge_dbt::config::MdaStrategy;
        use bridge_dbt::{Dbt, DbtConfig, StaticProfile};
        let k = rep_movsd_memcpy(0x10_0003, 0x20_0000, 256);
        let (ref_state, _) = run_reference(&k);
        for strategy in MdaStrategy::ALL {
            let mut cfg = DbtConfig::new(strategy).with_threshold(4);
            if strategy == MdaStrategy::StaticProfiling {
                cfg = cfg.with_static_profile(StaticProfile::new());
            }
            let mut dbt = Dbt::new(cfg);
            k.load_into(&mut dbt);
            let report = dbt.run(1_000_000_000).expect("halts");
            assert_eq!(report.final_state.regs, ref_state.regs, "{strategy:?}");
            let mut copied = vec![0u8; 256];
            dbt.machine().mem().read_bytes(0x20_0000, &mut copied);
            let expect: Vec<u8> = (0..256u32)
                .map(|i| (i as u8).wrapping_mul(11).wrapping_add(5))
                .collect();
            assert_eq!(copied, expect, "{strategy:?}");
        }
    }

    #[test]
    fn kernels_run_identically_under_the_dbt() {
        use bridge_dbt::config::MdaStrategy;
        use bridge_dbt::{Dbt, DbtConfig};
        for kernel in [
            linked_list_chase(0x10_0000, 12),
            byte_string_scan(0x10_0003, 21),
            packed_matrix_column_sum(0x10_0000, 5, 4),
        ] {
            let (ref_state, _) = run_reference(&kernel);
            let mut dbt = Dbt::new(DbtConfig::new(MdaStrategy::Dpeh).with_threshold(3));
            kernel.load_into(&mut dbt);
            let report = dbt.run(1_000_000_000).expect("halts");
            assert_eq!(report.final_state.reg(Eax), ref_state.reg(Eax));
        }
    }

    #[test]
    fn misaligned_stack_traffic() {
        let k = misaligned_stack(8);
        let (state, profile) = run_reference(&k);
        assert_eq!(state.reg(Eax), 24);
        // call + push + pop + ret per iteration, all misaligned by 2.
        assert_eq!(profile.mdas, 32);
    }
}
