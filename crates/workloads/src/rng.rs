//! A small in-tree deterministic PRNG for workload data generation.
//!
//! The workload generator must produce identical guest images and data
//! segments on every run and on every platform — the experiment tables are
//! diffed byte-for-byte across runs — so it cannot depend on an external
//! randomness crate whose algorithm or defaults may drift. SplitMix64
//! (Steele, Lea & Flood, OOPSLA 2014) is tiny, splittable by construction
//! (every seed gives an independent stream) and passes BigCrush.

/// SplitMix64: a 64-bit deterministic generator seeded per workload region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Generator seeded with `seed`. Equal seeds give equal streams.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64 pseudo-random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32 pseudo-random bits (high half of [`Self::next_u64`]).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `buf` with pseudo-random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// A vector of `len` pseudo-random bytes.
    pub fn bytes(&mut self, len: usize) -> Vec<u8> {
        let mut v = vec![0u8; len];
        self.fill_bytes(&mut v);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector() {
        // First outputs of SplitMix64 with seed 1234567 (from the public
        // reference implementation).
        let mut r = SplitMix64::new(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
        assert_eq!(r.next_u64(), 9817491932198370423);
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let mut r = SplitMix64::new(43);
        assert_ne!(a[0], r.next_u64(), "different seeds diverge immediately");
    }

    #[test]
    fn fill_bytes_matches_stream() {
        let mut r1 = SplitMix64::new(7);
        let mut r2 = SplitMix64::new(7);
        let mut buf = [0u8; 11];
        r1.fill_bytes(&mut buf);
        let w0 = r2.next_u64().to_le_bytes();
        let w1 = r2.next_u64().to_le_bytes();
        assert_eq!(&buf[..8], &w0);
        assert_eq!(&buf[8..], &w1[..3]);
    }

    #[test]
    fn bytes_are_not_constant() {
        let mut r = SplitMix64::new(99);
        let v = r.bytes(256);
        assert_eq!(v.len(), 256);
        assert!(v.iter().any(|&b| b != v[0]), "distribution sanity");
    }
}
