//! Alpha integer registers.

use std::fmt;

macro_rules! regs {
    ($($name:ident = $num:expr),+ $(,)?) => {
        /// The 32 Alpha integer registers. `R31` always reads as zero and
        /// ignores writes.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        #[repr(u8)]
        pub enum Reg {
            $(
                #[doc = concat!("Integer register ", stringify!($num), ".")]
                $name = $num,
            )+
        }

        impl Reg {
            /// All registers in numeric order.
            pub const ALL: [Reg; 32] = [$(Reg::$name),+];
        }
    };
}

regs! {
    R0 = 0, R1 = 1, R2 = 2, R3 = 3, R4 = 4, R5 = 5, R6 = 6, R7 = 7,
    R8 = 8, R9 = 9, R10 = 10, R11 = 11, R12 = 12, R13 = 13, R14 = 14, R15 = 15,
    R16 = 16, R17 = 17, R18 = 18, R19 = 19, R20 = 20, R21 = 21, R22 = 22, R23 = 23,
    R24 = 24, R25 = 25, R26 = 26, R27 = 27, R28 = 28, R29 = 29, R30 = 30, R31 = 31,
}

impl Reg {
    /// The always-zero register.
    pub const ZERO: Reg = Reg::R31;

    /// Register number (0..32).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Register for a number.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 32`.
    #[inline]
    pub fn from_index(idx: usize) -> Reg {
        Self::ALL[idx]
    }

    /// Whether this is the hardwired zero register.
    #[inline]
    pub fn is_zero(self) -> bool {
        self == Reg::R31
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            write!(f, "zero")
        } else {
            write!(f, "r{}", self.index())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for (i, r) in Reg::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
            assert_eq!(Reg::from_index(i), *r);
        }
    }

    #[test]
    fn zero_register() {
        assert!(Reg::R31.is_zero());
        assert!(!Reg::R0.is_zero());
        assert_eq!(Reg::ZERO, Reg::R31);
        assert_eq!(Reg::R31.to_string(), "zero");
        assert_eq!(Reg::R7.to_string(), "r7");
    }
}
