//! A label-based code builder for emitting Alpha code fragments.
//!
//! The DBT's translator and exception handler build code through this type:
//! it tracks the fragment's base host address, resolves intra-fragment
//! branch labels, and produces encoded instruction words ready to be written
//! into simulated memory.

use crate::encode::encode;
use crate::insn::{BrOp, Insn, JumpKind, MemOp, OpFn, Rb};
use crate::reg::Reg;
use std::fmt;

/// A branch label within a fragment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Builder errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildError {
    /// `finish` found a label that was referenced but never bound.
    UnboundLabel(Label),
    /// A label was bound twice.
    Rebound(Label),
    /// A branch displacement exceeded the signed 21-bit instruction range.
    BranchOutOfRange {
        /// Branch instruction index within the fragment.
        at: usize,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnboundLabel(l) => write!(f, "label {l:?} never bound"),
            BuildError::Rebound(l) => write!(f, "label {l:?} bound twice"),
            BuildError::BranchOutOfRange { at } => {
                write!(f, "branch displacement out of range at instruction {at}")
            }
        }
    }
}

impl std::error::Error for BuildError {}

struct Fixup {
    /// Index of the branch instruction within `insns`.
    at: usize,
    label: Label,
}

/// Emits a sequence of Alpha instructions with label resolution.
pub struct CodeBuilder {
    base: u64,
    insns: Vec<Insn>,
    labels: Vec<Option<usize>>,
    fixups: Vec<Fixup>,
}

impl CodeBuilder {
    /// New builder for a fragment whose first word will live at host
    /// address `base` (must be 4-aligned).
    ///
    /// # Panics
    ///
    /// Panics if `base` is not 4-aligned.
    pub fn new(base: u64) -> CodeBuilder {
        assert_eq!(base & 3, 0, "code must be 4-aligned");
        CodeBuilder {
            base,
            insns: Vec::new(),
            labels: Vec::new(),
            fixups: Vec::new(),
        }
    }

    /// Host address of the next instruction to be emitted.
    pub fn here(&self) -> u64 {
        self.base + 4 * self.insns.len() as u64
    }

    /// Base address given at construction.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.insns.len()
    }

    /// Whether nothing has been emitted yet.
    pub fn is_empty(&self) -> bool {
        self.insns.is_empty()
    }

    /// Creates a fresh unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound (a builder bug, not an input
    /// error).
    pub fn bind(&mut self, label: Label) {
        assert!(self.labels[label.0].is_none(), "label bound twice");
        self.labels[label.0] = Some(self.insns.len());
    }

    /// Emits an arbitrary instruction.
    pub fn emit(&mut self, insn: Insn) {
        self.insns.push(insn);
    }

    /// `lda ra, disp(rb)`
    pub fn lda(&mut self, ra: Reg, disp: i16, rb: Reg) {
        self.emit(Insn::Mem {
            op: MemOp::Lda,
            ra,
            rb,
            disp,
        });
    }

    /// `ldah ra, disp(rb)`
    pub fn ldah(&mut self, ra: Reg, disp: i16, rb: Reg) {
        self.emit(Insn::Mem {
            op: MemOp::Ldah,
            ra,
            rb,
            disp,
        });
    }

    /// Emits code to set `ra` to `imm` sign-extended to 64 bits, using
    /// `ldah`/`lda` and — for the 17-bit-carry corner (e.g. `0x7FFF8000..`)
    /// where the pair alone overshoots in bits 32+ — one canonicalizing
    /// `addl`.
    pub fn load_imm32(&mut self, ra: Reg, imm: i32) {
        let low = imm as i16;
        let high = ((imm as i64 - low as i64) >> 16) as i16; // truncating cast is the fixup below
        if high != 0 {
            self.ldah(ra, high, Reg::ZERO);
            if low != 0 {
                self.lda(ra, low, ra);
            }
        } else {
            self.lda(ra, low, Reg::ZERO);
        }
        let exact = ((high as i64) << 16) + low as i64;
        if exact != imm as i64 {
            // Low 32 bits are correct by modular arithmetic; re-sign-extend.
            self.op(OpFn::Addl, Reg::ZERO, ra, ra);
        }
    }

    /// Memory access helper.
    pub fn mem(&mut self, op: MemOp, ra: Reg, disp: i16, rb: Reg) {
        self.emit(Insn::Mem { op, ra, rb, disp });
    }

    /// Operate with register `rb`.
    pub fn op(&mut self, op: OpFn, ra: Reg, rb: Reg, rc: Reg) {
        self.emit(Insn::Op {
            op,
            ra,
            rb: Rb::Reg(rb),
            rc,
        });
    }

    /// Operate with literal `rb`.
    pub fn op_lit(&mut self, op: OpFn, ra: Reg, lit: u8, rc: Reg) {
        self.emit(Insn::Op {
            op,
            ra,
            rb: Rb::Lit(lit),
            rc,
        });
    }

    /// `mov src, dst` (`bis src, src, dst`); elided when `src == dst`.
    pub fn mov(&mut self, src: Reg, dst: Reg) {
        if src != dst {
            self.op(OpFn::Bis, src, src, dst);
        }
    }

    /// Branch to a label.
    pub fn br_label(&mut self, op: BrOp, ra: Reg, label: Label) {
        self.fixups.push(Fixup {
            at: self.insns.len(),
            label,
        });
        self.emit(Insn::Br { op, ra, disp: 0 });
    }

    /// Branch to an absolute host address (e.g. into another fragment).
    ///
    /// # Panics
    ///
    /// Panics if the displacement does not fit the signed 21-bit range —
    /// callers guarantee code-cache proximity.
    pub fn br_abs(&mut self, op: BrOp, ra: Reg, target: u64) {
        let disp = branch_disp(self.here(), target).expect("branch target within range");
        self.emit(Insn::Br { op, ra, disp });
    }

    /// `jmp`/`jsr`/`ret` through a register.
    pub fn jump(&mut self, kind: JumpKind, ra: Reg, rb: Reg) {
        self.emit(Insn::Jmp { kind, ra, rb });
    }

    /// `call_pal func`
    pub fn call_pal(&mut self, func: u32) {
        self.emit(Insn::CallPal { func });
    }

    /// Resolves labels and returns the encoded instruction words.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] for unbound labels or out-of-range branch
    /// displacements.
    pub fn finish(self) -> Result<Vec<u32>, BuildError> {
        let insns = self.finish_insns()?;
        Ok(insns.iter().map(encode).collect())
    }

    /// Resolves labels and returns the instruction list (used by tests and
    /// the disassembler-driven debugging utilities).
    ///
    /// # Errors
    ///
    /// Same as [`CodeBuilder::finish`].
    pub fn finish_insns(mut self) -> Result<Vec<Insn>, BuildError> {
        for f in &self.fixups {
            let target_idx = self.labels[f.label.0].ok_or(BuildError::UnboundLabel(f.label))?;
            // Branch displacement counts instructions from pc+4.
            let disp = target_idx as i64 - (f.at as i64 + 1);
            if !(-(1 << 20)..(1 << 20)).contains(&disp) {
                return Err(BuildError::BranchOutOfRange { at: f.at });
            }
            match &mut self.insns[f.at] {
                Insn::Br { disp: d, .. } => *d = disp as i32,
                other => unreachable!("fixup on non-branch {other:?}"),
            }
        }
        Ok(self.insns)
    }
}

/// Computes the branch displacement (in instructions) from a branch at
/// `br_addr` to `target`, if representable in the signed 21-bit field.
pub fn branch_disp(br_addr: u64, target: u64) -> Option<i32> {
    debug_assert_eq!(br_addr & 3, 0);
    debug_assert_eq!(target & 3, 0);
    let disp = (target as i64 - (br_addr as i64 + 4)) / 4;
    if (-(1 << 20)..(1 << 20)).contains(&disp) {
        Some(disp as i32)
    } else {
        None
    }
}

/// Resolves the target address of a branch instruction located at `br_addr`
/// with instruction displacement `disp`.
pub fn branch_target(br_addr: u64, disp: i32) -> u64 {
    (br_addr as i64 + 4 + 4 * disp as i64) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode;

    #[test]
    fn label_resolution_forward_and_back() {
        let mut b = CodeBuilder::new(0x1000);
        let end = b.new_label();
        let top = b.new_label();
        b.bind(top);
        b.op_lit(OpFn::Subq, Reg::R1, 1, Reg::R1);
        b.br_label(BrOp::Beq, Reg::R1, end);
        b.br_label(BrOp::Br, Reg::ZERO, top);
        b.bind(end);
        b.call_pal(crate::PAL_HALT);
        let insns = b.finish_insns().unwrap();
        assert_eq!(
            insns[1],
            Insn::Br {
                op: BrOp::Beq,
                ra: Reg::R1,
                disp: 1
            }
        );
        assert_eq!(
            insns[2],
            Insn::Br {
                op: BrOp::Br,
                ra: Reg::ZERO,
                disp: -3
            }
        );
    }

    #[test]
    fn unbound_label_errors() {
        let mut b = CodeBuilder::new(0);
        let l = b.new_label();
        b.br_label(BrOp::Br, Reg::ZERO, l);
        assert!(matches!(b.finish(), Err(BuildError::UnboundLabel(_))));
    }

    #[test]
    fn load_imm32_values() {
        for imm in [
            0i32,
            1,
            -1,
            0x7FFF,
            -0x8000,
            0x8000,
            0x12345678,
            -0x12345678,
            i32::MAX,
            i32::MIN,
        ] {
            let mut b = CodeBuilder::new(0);
            b.load_imm32(Reg::R5, imm);
            let insns = b.finish_insns().unwrap();
            // Simulate lda/ldah semantics.
            let mut r5: u64 = 0;
            for insn in insns {
                match insn {
                    Insn::Mem {
                        op: MemOp::Lda,
                        rb,
                        disp,
                        ..
                    } => {
                        let base = if rb == Reg::ZERO { 0 } else { r5 };
                        r5 = base.wrapping_add(disp as i64 as u64);
                    }
                    Insn::Mem {
                        op: MemOp::Ldah,
                        rb,
                        disp,
                        ..
                    } => {
                        let base = if rb == Reg::ZERO { 0 } else { r5 };
                        r5 = base.wrapping_add(((disp as i64) << 16) as u64);
                    }
                    Insn::Op {
                        op: OpFn::Addl,
                        ra: Reg::R31,
                        ..
                    } => {
                        r5 = crate::op::eval(OpFn::Addl, 0, r5);
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            assert_eq!(r5, imm as i64 as u64, "imm {imm:#x}");
        }
    }

    #[test]
    fn absolute_branch_displacement() {
        let mut b = CodeBuilder::new(0x1000);
        b.br_abs(BrOp::Br, Reg::ZERO, 0x1010);
        let insns = b.finish_insns().unwrap();
        assert_eq!(
            insns[0],
            Insn::Br {
                op: BrOp::Br,
                ra: Reg::ZERO,
                disp: 3
            }
        );
        assert_eq!(branch_target(0x1000, 3), 0x1010);
    }

    #[test]
    fn branch_disp_range() {
        assert_eq!(branch_disp(0x1000, 0x1004), Some(0));
        assert_eq!(branch_disp(0x1000, 0x1000), Some(-1));
        assert!(branch_disp(0, 4 + 4 * ((1 << 20) - 1)).is_some());
        assert!(branch_disp(0, 4 + 4 * (1 << 20)).is_none());
    }

    #[test]
    fn words_decode_back() {
        let mut b = CodeBuilder::new(0x2000);
        b.mem(MemOp::LdqU, Reg::R1, 2, Reg::R2);
        b.op(OpFn::Extll, Reg::R1, Reg::R22, Reg::R1);
        b.mov(Reg::R3, Reg::R4);
        b.call_pal(crate::PAL_EXIT_MONITOR);
        let words = b.finish().unwrap();
        assert_eq!(
            decode(words[0]).unwrap(),
            Insn::Mem {
                op: MemOp::LdqU,
                ra: Reg::R1,
                rb: Reg::R2,
                disp: 2
            }
        );
        assert_eq!(
            decode(words[2]).unwrap(),
            Insn::Op {
                op: OpFn::Bis,
                ra: Reg::R3,
                rb: Rb::Reg(Reg::R3),
                rc: Reg::R4
            }
        );
        assert_eq!(
            decode(words[3]).unwrap(),
            Insn::CallPal {
                func: crate::PAL_EXIT_MONITOR
            }
        );
    }
}
