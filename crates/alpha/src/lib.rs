//! Host ISA for DigitalBridge-RS: an Alpha AXP subset.
//!
//! This crate models the *target* architecture of the binary-translation
//! system from "An Evaluation of Misaligned Data Access Handling Mechanisms
//! in Dynamic Binary Translation Systems" (CGO 2009). Alpha is the canonical
//! architecture **with** alignment restrictions: `ldl`/`stl`/`ldq`/`stq`/
//! `ldwu`/`stw` trap when their effective address is not naturally aligned,
//! and the trap costs on the order of a thousand cycles once the OS and the
//! registered handler are involved.
//!
//! Alpha also provides the byte-manipulation instructions (`ldq_u`, `stq_u`,
//! `ext*`, `ins*`, `msk*`) from which a compiler — or a binary translator —
//! builds the **MDA code sequence**: a branch-free sequence that performs an
//! unaligned access without ever trapping (the paper's Figure 2).
//! [`mda_seq`] emits exactly those sequences.
//!
//! Layers provided:
//!
//! * instruction model ([`Insn`], [`Reg`], [`OpFn`], …),
//! * real 32-bit instruction-word [`encode`](encode::encode) /
//!   [`decode`](decode::decode) (memory, branch, operate and PALcode
//!   formats),
//! * pure evaluation of operate functions ([`op::eval`]) shared by the host
//!   simulator and unit tests,
//! * a label-based [`builder::CodeBuilder`] used by the DBT's
//!   translator, and
//! * the canonical unaligned load/store sequences ([`mda_seq`]).
//!
//! # Example: the paper's Figure 2 sequence
//!
//! ```
//! use bridge_alpha::builder::CodeBuilder;
//! use bridge_alpha::mda_seq::{self, AccessWidth, SeqTemps};
//! use bridge_alpha::reg::Reg;
//!
//! let mut b = CodeBuilder::new(0x8000_0000);
//! // Unaligned 4-byte load of 2(R2) into R1, sign-extended like ldl.
//! mda_seq::emit_unaligned_load(
//!     &mut b,
//!     AccessWidth::W4,
//!     Reg::R1,
//!     Reg::R2,
//!     2,
//!     true,
//!     &SeqTemps::default(),
//! );
//! let words = b.finish().expect("no unresolved labels");
//! assert_eq!(words.len(), 7); // ldq_u x2, lda, extll, extlh, bis, addl
//! ```

pub mod builder;
pub mod decode;
pub mod disasm;
pub mod encode;
pub mod insn;
pub mod mda_seq;
pub mod op;
pub mod reg;

pub use builder::CodeBuilder;
pub use decode::{decode, DecodeError};
pub use encode::encode;
pub use insn::{BrOp, Insn, JumpKind, MemOp, OpFn, Rb};
pub use reg::Reg;

/// PALcode function: halt the machine (end of simulation).
///
/// Deliberately nonzero so that a wild jump into zero-filled memory (whose
/// words decode as `call_pal 0`) faults loudly instead of halting
/// "successfully".
pub const PAL_HALT: u32 = 0x0001;

/// PALcode function used by the DBT runtime convention: leave translated
/// code and return to the dispatcher. The next guest PC is in
/// [`reg::Reg::R16`] by convention.
pub const PAL_EXIT_MONITOR: u32 = 0x0080;

/// PALcode function used by the DBT runtime convention: request a service
/// from the monitor (the paper's Figure 8 "br BT monitor" — e.g. reverting
/// an MDA sequence back to a plain access). The guest PC of the requesting
/// site is in [`reg::Reg::R16`].
pub const PAL_REQUEST_MONITOR: u32 = 0x0081;
