//! Disassembler for the Alpha subset, for debugging and test diagnostics.

use crate::builder::branch_target;
use crate::decode::decode;
use crate::insn::{Insn, MemOp};
use crate::{PAL_EXIT_MONITOR, PAL_HALT, PAL_REQUEST_MONITOR};
use std::fmt::Write as _;

/// Formats a single instruction at `addr` in roughly the style of
/// `objdump`.
pub fn format_insn(insn: &Insn, addr: u64) -> String {
    let mut s = String::new();
    match *insn {
        Insn::Mem { op, ra, rb, disp } => {
            if op == MemOp::Lda && rb == crate::Reg::ZERO {
                let _ = write!(s, "lda {ra}, {disp}");
            } else {
                let _ = write!(s, "{} {ra}, {disp}({rb})", op.mnemonic());
            }
        }
        Insn::Br { op, ra, disp } => {
            let target = branch_target(addr, disp);
            if op.is_unconditional() && ra.is_zero() {
                let _ = write!(s, "{} {target:#x}", op.mnemonic());
            } else {
                let _ = write!(s, "{} {ra}, {target:#x}", op.mnemonic());
            }
        }
        Insn::Jmp { kind, ra, rb } => {
            let _ = write!(s, "{} {ra}, ({rb})", kind.mnemonic());
        }
        Insn::Op { op, ra, rb, rc } => {
            let _ = write!(s, "{} {ra}, {rb}, {rc}", op.mnemonic());
        }
        Insn::CallPal { func } => {
            let name = match func {
                PAL_HALT => "halt",
                PAL_EXIT_MONITOR => "exit_monitor",
                PAL_REQUEST_MONITOR => "request_monitor",
                _ => "",
            };
            if name.is_empty() {
                let _ = write!(s, "call_pal {func:#x}");
            } else {
                let _ = write!(s, "call_pal {name}");
            }
        }
    }
    s
}

/// Disassembles a sequence of instruction words starting at `base`,
/// one line per word. Undecodable words are shown as `.word`.
pub fn disassemble(words: &[u32], base: u64) -> String {
    let mut out = String::new();
    for (i, &w) in words.iter().enumerate() {
        let addr = base + 4 * i as u64;
        match decode(w) {
            Ok(insn) => {
                let _ = writeln!(out, "{addr:#010x}:  {w:08x}  {}", format_insn(&insn, addr));
            }
            Err(_) => {
                let _ = writeln!(out, "{addr:#010x}:  {w:08x}  .word {w:#010x}");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::{BrOp, JumpKind, OpFn, Rb};
    use crate::reg::Reg;

    #[test]
    fn formats_each_class() {
        assert_eq!(
            format_insn(
                &Insn::Mem {
                    op: MemOp::LdqU,
                    ra: Reg::R1,
                    rb: Reg::R2,
                    disp: 2
                },
                0x1000
            ),
            "ldq_u r1, 2(r2)"
        );
        assert_eq!(
            format_insn(
                &Insn::Br {
                    op: BrOp::Br,
                    ra: Reg::ZERO,
                    disp: 3
                },
                0x1000
            ),
            "br 0x1010"
        );
        assert_eq!(
            format_insn(
                &Insn::Br {
                    op: BrOp::Bne,
                    ra: Reg::R4,
                    disp: -2
                },
                0x1000
            ),
            "bne r4, 0xffc"
        );
        assert_eq!(
            format_insn(
                &Insn::Op {
                    op: OpFn::Extll,
                    ra: Reg::R1,
                    rb: Rb::Reg(Reg::R22),
                    rc: Reg::R1
                },
                0
            ),
            "extll r1, r22, r1"
        );
        assert_eq!(
            format_insn(
                &Insn::Op {
                    op: OpFn::And,
                    ra: Reg::R3,
                    rb: Rb::Lit(7),
                    rc: Reg::R5
                },
                0
            ),
            "and r3, #7, r5"
        );
        assert_eq!(
            format_insn(
                &Insn::Jmp {
                    kind: JumpKind::Ret,
                    ra: Reg::ZERO,
                    rb: Reg::R26
                },
                0
            ),
            "ret zero, (r26)"
        );
        assert_eq!(
            format_insn(&Insn::CallPal { func: PAL_HALT }, 0),
            "call_pal halt"
        );
        assert_eq!(
            format_insn(
                &Insn::CallPal {
                    func: PAL_EXIT_MONITOR
                },
                0
            ),
            "call_pal exit_monitor"
        );
    }

    #[test]
    fn every_operate_mnemonic_formats() {
        for op in OpFn::ALL {
            let text = format_insn(
                &Insn::Op {
                    op,
                    ra: Reg::R1,
                    rb: Rb::Reg(Reg::R2),
                    rc: Reg::R3,
                },
                0,
            );
            assert!(text.starts_with(op.mnemonic()), "{op:?}: {text}");
            assert!(text.contains("r1") && text.contains("r2") && text.contains("r3"));
        }
    }

    #[test]
    fn every_memory_mnemonic_formats() {
        use crate::insn::MemOp::*;
        for op in [
            Lda, Ldah, Ldbu, Ldwu, Ldl, Ldq, LdqU, Stb, Stw, Stl, Stq, StqU,
        ] {
            let text = format_insn(
                &Insn::Mem {
                    op,
                    ra: Reg::R5,
                    rb: Reg::R6,
                    disp: -4,
                },
                0,
            );
            assert!(text.starts_with(op.mnemonic()), "{op:?}: {text}");
        }
    }

    #[test]
    fn disassemble_handles_bad_words() {
        let words = [crate::encode::encode(&Insn::NOP), 0x07u32 << 26];
        let text = disassemble(&words, 0x2000);
        assert!(text.contains("bis zero, zero, zero"));
        assert!(text.contains(".word"));
        assert_eq!(text.lines().count(), 2);
    }
}
