//! The canonical Alpha **MDA code sequences**: branch-free unaligned loads
//! and stores built from `ldq_u`/`stq_u` and the byte-manipulation
//! instructions, exactly as in the paper's Figure 2 (loads) and the Alpha
//! Architecture Handbook (stores).
//!
//! A misalignment exception handler performs the same accesses in software;
//! the point of translating a memory operation *into* one of these sequences
//! is to pay ~7–11 straight-line instructions instead of a ~1000-cycle trap
//! on every execution.

use crate::builder::CodeBuilder;
use crate::insn::{MemOp, OpFn};
use crate::reg::Reg;

/// Widths for which an access can be misaligned (bytes never are).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessWidth {
    /// 2 bytes.
    W2,
    /// 4 bytes.
    W4,
    /// 8 bytes.
    W8,
}

impl AccessWidth {
    /// Width in bytes.
    pub fn bytes(self) -> u32 {
        match self {
            AccessWidth::W2 => 2,
            AccessWidth::W4 => 4,
            AccessWidth::W8 => 8,
        }
    }

    /// Access width for a byte count.
    pub fn from_bytes(bytes: u32) -> Option<AccessWidth> {
        Some(match bytes {
            2 => AccessWidth::W2,
            4 => AccessWidth::W4,
            8 => AccessWidth::W8,
            _ => return None,
        })
    }

    fn ext_low(self) -> OpFn {
        match self {
            AccessWidth::W2 => OpFn::Extwl,
            AccessWidth::W4 => OpFn::Extll,
            AccessWidth::W8 => OpFn::Extql,
        }
    }

    fn ext_high(self) -> OpFn {
        match self {
            AccessWidth::W2 => OpFn::Extwh,
            AccessWidth::W4 => OpFn::Extlh,
            AccessWidth::W8 => OpFn::Extqh,
        }
    }

    fn ins_low(self) -> OpFn {
        match self {
            AccessWidth::W2 => OpFn::Inswl,
            AccessWidth::W4 => OpFn::Insll,
            AccessWidth::W8 => OpFn::Insql,
        }
    }

    fn ins_high(self) -> OpFn {
        match self {
            AccessWidth::W2 => OpFn::Inswh,
            AccessWidth::W4 => OpFn::Inslh,
            AccessWidth::W8 => OpFn::Insqh,
        }
    }

    fn msk_low(self) -> OpFn {
        match self {
            AccessWidth::W2 => OpFn::Mskwl,
            AccessWidth::W4 => OpFn::Mskll,
            AccessWidth::W8 => OpFn::Mskql,
        }
    }

    fn msk_high(self) -> OpFn {
        match self {
            AccessWidth::W2 => OpFn::Mskwh,
            AccessWidth::W4 => OpFn::Msklh,
            AccessWidth::W8 => OpFn::Mskqh,
        }
    }
}

/// Temporary registers used by the sequences. The DBT reserves R21–R30 as
/// translation temporaries (matching the paper's register convention), so
/// the defaults draw from that range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeqTemps {
    /// First scratch (low quadword).
    pub t1: Reg,
    /// Second scratch (high quadword).
    pub t2: Reg,
    /// Effective-address scratch.
    pub t3: Reg,
    /// Store-merge scratch.
    pub t4: Reg,
    /// Store-merge scratch.
    pub t5: Reg,
}

impl Default for SeqTemps {
    fn default() -> SeqTemps {
        SeqTemps {
            t1: Reg::R21,
            t2: Reg::R22,
            t3: Reg::R23,
            t4: Reg::R24,
            t5: Reg::R25,
        }
    }
}

/// Number of instructions [`emit_unaligned_load`] produces for a width.
pub fn unaligned_load_len(width: AccessWidth, sign_extend: bool) -> usize {
    match (width, sign_extend) {
        (AccessWidth::W2, false) => 6,
        (AccessWidth::W2, true) => 8,
        (AccessWidth::W4, false) => 6,
        (AccessWidth::W4, true) => 7,
        (AccessWidth::W8, _) => 6,
    }
}

/// Number of instructions [`emit_unaligned_store`] produces.
pub fn unaligned_store_len(_width: AccessWidth) -> usize {
    11
}

/// Emits the branch-free unaligned-load sequence: `ra ← width bytes at
/// disp(rb)`.
///
/// For [`AccessWidth::W4`] with `sign_extend`, the result matches `ldl`
/// (sign-extended to 64 bits) — this is the exact 7-instruction sequence of
/// the paper's Figure 2. Without `sign_extend` the value is zero-extended
/// (the `movzx` path). [`AccessWidth::W8`] ignores `sign_extend`.
///
/// `ra` may equal `rb`; temporaries must be distinct from both.
///
/// # Panics
///
/// Panics if `disp` is within 8 bytes of `i16::MAX` (the sequence addresses
/// `disp + width - 1`) or if a temporary aliases `ra`/`rb`.
pub fn emit_unaligned_load(
    b: &mut CodeBuilder,
    width: AccessWidth,
    ra: Reg,
    rb: Reg,
    disp: i16,
    sign_extend: bool,
    t: &SeqTemps,
) {
    assert!(
        disp.checked_add(width.bytes() as i16).is_some(),
        "displacement near i16::MAX"
    );
    for tmp in [t.t1, t.t2, t.t3] {
        assert_ne!(tmp, ra, "temps must not alias operands");
        assert_ne!(tmp, rb, "temps must not alias operands");
    }
    let start = b.len();
    let last = disp + (width.bytes() - 1) as i16;
    b.mem(MemOp::LdqU, t.t1, disp, rb); // quad containing the first byte
    b.mem(MemOp::LdqU, t.t2, last, rb); // quad containing the last byte
    b.lda(t.t3, disp, rb); // effective address (low 3 bits select)
    b.op(width.ext_low(), t.t1, t.t3, t.t1);
    b.op(width.ext_high(), t.t2, t.t3, t.t2);
    match (width, sign_extend) {
        (AccessWidth::W4, true) => {
            b.op(OpFn::Bis, t.t1, t.t2, t.t1);
            // Sign-extend longword → quadword, as ldl would.
            b.op(OpFn::Addl, Reg::ZERO, t.t1, ra);
        }
        (AccessWidth::W2, true) => {
            b.op(OpFn::Bis, t.t1, t.t2, t.t1);
            b.op_lit(OpFn::Sll, t.t1, 48, t.t1);
            b.op_lit(OpFn::Sra, t.t1, 48, ra);
        }
        _ => {
            b.op(OpFn::Bis, t.t1, t.t2, ra);
        }
    }
    debug_assert_eq!(b.len() - start, unaligned_load_len(width, sign_extend));
}

/// Emits the branch-free unaligned-store sequence: `width bytes at disp(rb)
/// ← low bytes of rs`.
///
/// The high quadword is stored before the low one, so that when the access
/// does not actually span two quadwords the final (low) `stq_u` rewrites the
/// complete, correct value.
///
/// # Panics
///
/// Panics if `disp` is within 8 bytes of `i16::MAX` or if a temporary
/// aliases `rs`/`rb`.
pub fn emit_unaligned_store(
    b: &mut CodeBuilder,
    width: AccessWidth,
    rs: Reg,
    rb: Reg,
    disp: i16,
    t: &SeqTemps,
) {
    assert!(
        disp.checked_add(width.bytes() as i16).is_some(),
        "displacement near i16::MAX"
    );
    for tmp in [t.t1, t.t2, t.t3, t.t4, t.t5] {
        assert_ne!(tmp, rs, "temps must not alias operands");
        assert_ne!(tmp, rb, "temps must not alias operands");
    }
    let start = b.len();
    let last = disp + (width.bytes() - 1) as i16;
    b.lda(t.t3, disp, rb); // effective address
    b.mem(MemOp::LdqU, t.t1, last, rb); // high quad (or same quad)
    b.mem(MemOp::LdqU, t.t2, disp, rb); // low quad
    b.op(width.ins_high(), rs, t.t3, t.t4); // bytes spilling into high quad
    b.op(width.ins_low(), rs, t.t3, t.t5); // bytes within low quad
    b.op(width.msk_high(), t.t1, t.t3, t.t1);
    b.op(width.msk_low(), t.t2, t.t3, t.t2);
    b.op(OpFn::Bis, t.t1, t.t4, t.t1);
    b.op(OpFn::Bis, t.t2, t.t5, t.t2);
    b.mem(MemOp::StqU, t.t1, last, rb); // high first …
    b.mem(MemOp::StqU, t.t2, disp, rb); // … low last (see doc comment)
    debug_assert_eq!(b.len() - start, unaligned_store_len(width));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::{Insn, Rb};

    /// A tiny interpreter over a byte buffer for validating the sequences
    /// without the full host simulator (which lives in `bridge-sim`).
    fn run_seq(insns: &[Insn], regs: &mut [u64; 32], mem: &mut [u8]) {
        for insn in insns {
            match *insn {
                Insn::Mem { op, ra, rb, disp } => {
                    let addr = regs[rb.index()].wrapping_add(disp as i64 as u64);
                    match op {
                        MemOp::Lda => regs[ra.index()] = addr,
                        MemOp::LdqU => {
                            let a = (addr & !7) as usize;
                            regs[ra.index()] =
                                u64::from_le_bytes(mem[a..a + 8].try_into().unwrap());
                        }
                        MemOp::StqU => {
                            let a = (addr & !7) as usize;
                            mem[a..a + 8].copy_from_slice(&regs[ra.index()].to_le_bytes());
                        }
                        other => panic!("unexpected mem op {other:?}"),
                    }
                }
                Insn::Op { op, ra, rb, rc } => {
                    let av = regs[ra.index()];
                    let bv = match rb {
                        Rb::Reg(r) => regs[r.index()],
                        Rb::Lit(l) => u64::from(l),
                    };
                    regs[rc.index()] = crate::op::eval(op, av, bv);
                }
                other => panic!("unexpected insn {other:?}"),
            }
            regs[31] = 0;
        }
    }

    fn check_load(width: AccessWidth, sign_extend: bool, offset: u64) {
        let mut mem = vec![0u8; 64];
        for (i, b) in mem.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(37).wrapping_add(11);
        }
        let mut regs = [0u64; 32];
        regs[2] = 16 + offset; // rb = R2

        let mut b = CodeBuilder::new(0x1000);
        emit_unaligned_load(
            &mut b,
            width,
            Reg::R1,
            Reg::R2,
            0,
            sign_extend,
            &SeqTemps::default(),
        );
        let insns = b.finish_insns().unwrap();
        run_seq(&insns, &mut regs, &mut mem);

        let n = width.bytes() as usize;
        let raw: u64 = mem[16 + offset as usize..16 + offset as usize + n]
            .iter()
            .rev()
            .fold(0u64, |acc, &byte| (acc << 8) | u64::from(byte));
        let expect = if sign_extend {
            match width {
                AccessWidth::W2 => raw as u16 as i16 as i64 as u64,
                AccessWidth::W4 => raw as u32 as i32 as i64 as u64,
                AccessWidth::W8 => raw,
            }
        } else {
            raw
        };
        assert_eq!(
            regs[1], expect,
            "width {width:?} sext {sign_extend} offset {offset}"
        );
    }

    #[test]
    fn unaligned_load_all_offsets() {
        for offset in 0..8 {
            for width in [AccessWidth::W2, AccessWidth::W4, AccessWidth::W8] {
                check_load(width, false, offset);
                check_load(width, true, offset);
            }
        }
    }

    fn check_store(width: AccessWidth, offset: u64) {
        let mut mem = vec![0xAAu8; 64];
        let mut regs = [0u64; 32];
        regs[2] = 16 + offset;
        regs[4] = 0x1122_3344_5566_7788; // rs = R4

        let mut b = CodeBuilder::new(0x1000);
        emit_unaligned_store(&mut b, width, Reg::R4, Reg::R2, 0, &SeqTemps::default());
        let insns = b.finish_insns().unwrap();
        run_seq(&insns, &mut regs, &mut mem);

        let n = width.bytes() as usize;
        let start = 16 + offset as usize;
        for (i, &byte) in mem.iter().enumerate() {
            if (start..start + n).contains(&i) {
                let want = (regs[4] >> (8 * (i - start))) as u8;
                assert_eq!(byte, want, "data byte {i} width {width:?} offset {offset}");
            } else {
                assert_eq!(
                    byte, 0xAA,
                    "byte {i} clobbered, width {width:?} offset {offset}"
                );
            }
        }
    }

    #[test]
    fn unaligned_store_all_offsets() {
        for offset in 0..8 {
            for width in [AccessWidth::W2, AccessWidth::W4, AccessWidth::W8] {
                check_store(width, offset);
            }
        }
    }

    #[test]
    fn figure2_shape() {
        // The paper's Figure 2: a 4-byte sign-extending load is
        // ldq_u, ldq_u, lda, extll, extlh, or, addl — 7 instructions.
        let mut b = CodeBuilder::new(0x1000);
        emit_unaligned_load(
            &mut b,
            AccessWidth::W4,
            Reg::R1,
            Reg::R2,
            2,
            true,
            &SeqTemps::default(),
        );
        let insns = b.finish_insns().unwrap();
        assert_eq!(insns.len(), 7);
        assert!(matches!(
            insns[0],
            Insn::Mem {
                op: MemOp::LdqU,
                disp: 2,
                ..
            }
        ));
        assert!(matches!(
            insns[1],
            Insn::Mem {
                op: MemOp::LdqU,
                disp: 5,
                ..
            }
        ));
        assert!(matches!(
            insns[2],
            Insn::Mem {
                op: MemOp::Lda,
                disp: 2,
                ..
            }
        ));
        assert!(matches!(
            insns[3],
            Insn::Op {
                op: OpFn::Extll,
                ..
            }
        ));
        assert!(matches!(
            insns[4],
            Insn::Op {
                op: OpFn::Extlh,
                ..
            }
        ));
        assert!(matches!(insns[5], Insn::Op { op: OpFn::Bis, .. }));
        assert!(matches!(
            insns[6],
            Insn::Op {
                op: OpFn::Addl,
                ra: Reg::R31,
                ..
            }
        ));
    }

    #[test]
    fn ra_may_alias_rb_for_loads() {
        // Load through the same register that receives the result.
        let mut mem = vec![0u8; 64];
        mem[21..25].copy_from_slice(&0x0BAD_F00Du32.to_le_bytes());
        let mut regs = [0u64; 32];
        regs[2] = 21;
        let mut b = CodeBuilder::new(0x1000);
        emit_unaligned_load(
            &mut b,
            AccessWidth::W4,
            Reg::R2,
            Reg::R2,
            0,
            true,
            &SeqTemps::default(),
        );
        let insns = b.finish_insns().unwrap();
        run_seq(&insns, &mut regs, &mut mem);
        assert_eq!(regs[2], 0x0BAD_F00D);
    }

    #[test]
    #[should_panic(expected = "temps must not alias")]
    fn temp_aliasing_is_rejected() {
        let mut b = CodeBuilder::new(0x1000);
        let t = SeqTemps {
            t1: Reg::R2,
            ..SeqTemps::default()
        };
        emit_unaligned_load(&mut b, AccessWidth::W4, Reg::R1, Reg::R2, 0, true, &t);
    }
}
