//! 32-bit instruction-word decoder for the Alpha subset.

use crate::insn::{BrOp, Insn, JumpKind, MemOp, OpFn, Rb};
use crate::reg::Reg;
use std::fmt;

/// Decoding failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// A primary opcode outside the subset.
    UnknownOpcode(u8),
    /// An operate function code outside the subset.
    UnknownFunction {
        /// Primary opcode.
        opcode: u8,
        /// Function code.
        func: u8,
    },
    /// A jump-format hint outside the subset.
    UnknownJumpKind(u8),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            DecodeError::UnknownFunction { opcode, func } => {
                write!(f, "unknown function {func:#04x} under opcode {opcode:#04x}")
            }
            DecodeError::UnknownJumpKind(k) => write!(f, "unknown jump kind {k}"),
        }
    }
}

impl std::error::Error for DecodeError {}

#[inline]
fn ra_of(word: u32) -> Reg {
    Reg::from_index(((word >> 21) & 31) as usize)
}

#[inline]
fn rb_of(word: u32) -> Reg {
    Reg::from_index(((word >> 16) & 31) as usize)
}

#[inline]
fn rc_of(word: u32) -> Reg {
    Reg::from_index((word & 31) as usize)
}

/// Decodes one instruction word.
///
/// # Errors
///
/// Returns a [`DecodeError`] for any word outside the subset — the host
/// simulator turns this into an illegal-instruction machine fault.
pub fn decode(word: u32) -> Result<Insn, DecodeError> {
    let opcode = (word >> 26) as u8;
    match opcode {
        0x00 => Ok(Insn::CallPal {
            func: word & 0x03FF_FFFF,
        }),
        0x08 | 0x09 | 0x0A..=0x0F | 0x28 | 0x29 | 0x2C | 0x2D => {
            let op = MemOp::from_opcode(opcode).expect("matched memory opcode");
            Ok(Insn::Mem {
                op,
                ra: ra_of(word),
                rb: rb_of(word),
                disp: word as u16 as i16,
            })
        }
        0x1A => {
            let bits = ((word >> 14) & 0b11) as u8;
            let kind = JumpKind::from_bits(bits).ok_or(DecodeError::UnknownJumpKind(bits))?;
            Ok(Insn::Jmp {
                kind,
                ra: ra_of(word),
                rb: rb_of(word),
            })
        }
        0x10..=0x13 => {
            let func = ((word >> 5) & 0x7F) as u8;
            let op = OpFn::from_parts(opcode, func)
                .ok_or(DecodeError::UnknownFunction { opcode, func })?;
            let rb = if word & (1 << 12) != 0 {
                Rb::Lit(((word >> 13) & 0xFF) as u8)
            } else {
                Rb::Reg(rb_of(word))
            };
            Ok(Insn::Op {
                op,
                ra: ra_of(word),
                rb,
                rc: rc_of(word),
            })
        }
        0x30 | 0x34 | 0x38..=0x3F => {
            let op = BrOp::from_opcode(opcode).expect("matched branch opcode");
            // Sign-extend the 21-bit displacement.
            let disp = ((word & 0x001F_FFFF) << 11) as i32 >> 11;
            Ok(Insn::Br {
                op,
                ra: ra_of(word),
                disp,
            })
        }
        other => Err(DecodeError::UnknownOpcode(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;

    fn roundtrip(insn: Insn) {
        let word = encode(&insn);
        assert_eq!(decode(word), Ok(insn), "word {word:#010x}");
    }

    #[test]
    fn roundtrip_every_format() {
        use MemOp::*;
        for op in [
            Lda, Ldah, Ldbu, Ldwu, Ldl, Ldq, LdqU, Stb, Stw, Stl, Stq, StqU,
        ] {
            roundtrip(Insn::Mem {
                op,
                ra: Reg::R7,
                rb: Reg::R15,
                disp: -1234,
            });
            roundtrip(Insn::Mem {
                op,
                ra: Reg::R31,
                rb: Reg::R0,
                disp: 32767,
            });
        }
        for op in [
            BrOp::Br,
            BrOp::Bsr,
            BrOp::Beq,
            BrOp::Bne,
            BrOp::Blt,
            BrOp::Ble,
            BrOp::Bgt,
            BrOp::Bge,
            BrOp::Blbc,
            BrOp::Blbs,
        ] {
            roundtrip(Insn::Br {
                op,
                ra: Reg::R3,
                disp: -100_000,
            });
            roundtrip(Insn::Br {
                op,
                ra: Reg::R3,
                disp: 0xF_FFFF,
            });
        }
        for op in OpFn::ALL {
            roundtrip(Insn::Op {
                op,
                ra: Reg::R1,
                rb: Rb::Reg(Reg::R2),
                rc: Reg::R3,
            });
            roundtrip(Insn::Op {
                op,
                ra: Reg::R1,
                rb: Rb::Lit(255),
                rc: Reg::R3,
            });
            roundtrip(Insn::Op {
                op,
                ra: Reg::R31,
                rb: Rb::Lit(0),
                rc: Reg::R31,
            });
        }
        for kind in [JumpKind::Jmp, JumpKind::Jsr, JumpKind::Ret] {
            roundtrip(Insn::Jmp {
                kind,
                ra: Reg::R26,
                rb: Reg::R27,
            });
        }
        roundtrip(Insn::CallPal { func: 0 });
        roundtrip(Insn::CallPal { func: 0x80 });
        roundtrip(Insn::CallPal { func: 0x03FF_FFFF });
    }

    #[test]
    fn branch_displacement_sign_extension() {
        let w = encode(&Insn::Br {
            op: BrOp::Br,
            ra: Reg::R31,
            disp: -1,
        });
        match decode(w).unwrap() {
            Insn::Br { disp, .. } => assert_eq!(disp, -1),
            other => panic!("wrong decode: {other:?}"),
        }
        let max = (1 << 20) - 1;
        let min = -(1 << 20);
        for d in [max, min, 0, 1, -1] {
            roundtrip(Insn::Br {
                op: BrOp::Bne,
                ra: Reg::R9,
                disp: d,
            });
        }
    }

    #[test]
    fn unknown_words_rejected() {
        assert!(decode(0x3Fu32 << 26).is_ok()); // bgt is 0x3F — valid
        assert_eq!(decode(0x07u32 << 26), Err(DecodeError::UnknownOpcode(0x07)));
        // opcode 0x10 with unused function 0x7F
        let bad = (0x10u32 << 26) | (0x7F << 5);
        assert_eq!(
            decode(bad),
            Err(DecodeError::UnknownFunction {
                opcode: 0x10,
                func: 0x7F
            })
        );
        // jump with hint bits 3
        let bad_jmp = (0x1Au32 << 26) | (3 << 14);
        assert_eq!(decode(bad_jmp), Err(DecodeError::UnknownJumpKind(3)));
    }
}
